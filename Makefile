GO ?= go

.PHONY: all build test race vet check bench clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
