GO ?= go

.PHONY: all build test race vet fmt lint check bench bench-smoke bench-nrhs clean obs-smoke service-smoke crash-drill cluster-drill compare-baseline chaos prof-overhead-guard

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Formatting gate: fails listing the unformatted files (fix with gofmt -w).
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi

# staticcheck when installed, a loud skip when not — no new dependencies.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
		else echo "staticcheck not installed; skipping"; fi

check: fmt build lint test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./...

# Quick pass over the hot-path kernel benchmarks (docs/performance.md): a
# few iterations each, -benchmem so an alloc regression in the steady-state
# solve loop shows up as non-zero allocs/op.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SpMV|FusedBlas1|PCGIteration|EngineDot' \
		-benchtime 10x -benchmem \
		./internal/sparse/ ./internal/kernels/ ./internal/krylov/

# Multi-RHS amortization check (docs/performance.md, "Batched solving"):
# the SpMM and block-PCG benchmarks across block widths (per-RHS ns drops
# with k), plus the fsaibench -nrhs campaign, which also proves the block
# solve's columns bit-identical to the scalar solves. The campaign's
# deterministic metrics are gated against the committed multi-RHS baseline
# (regenerate with `go run ./cmd/fsaibench -nrhs 8 -metrics-out
# BENCH_nrhs_baseline.json`), and the candidate's per-RHS numbers are
# appended to BENCH_history.json via fsaicompare -record.
bench-nrhs:
	$(GO) test -run '^$$' -bench 'SpMM|BlockPCGIteration' \
		-benchtime 10x -benchmem ./internal/sparse/ ./internal/krylov/
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/fsaibench -nrhs 8 -metrics-out "$$tmp/nrhs.json" && \
	$(GO) run ./cmd/fsaicompare -record BENCH_history.json \
		BENCH_nrhs_baseline.json "$$tmp/nrhs.json"

# Start fsaisolve with the observability server on a generated matrix and
# scrape /metrics, /debug/solve (incl. SSE), /debug/pprof/ and /runs.
obs-smoke:
	./scripts/obs_smoke.sh

# Start the fsaid solve daemon on a free port, register a matrix, run a
# cold then a warm solve, and assert the preconditioner cache made the warm
# solve skip setup (plus 429 backpressure and graceful shutdown).
service-smoke:
	./scripts/service_smoke.sh

# Crash-recovery drill: cold solve into a durable -data-dir, SIGKILL the
# daemon mid-solve, restart and assert a warm bit-identical solve from the
# recovered store, then bit-flip the stored factor and assert it is
# quarantined without taking the daemon down (docs/robustness.md).
crash-drill:
	./scripts/crash_drill.sh

# Distributed-fleet drill: three store-backed shards behind a consistent-hash
# router, register/solve through the router, hot-factor replication to the
# replica, SIGKILL the primary mid-traffic with zero failed client requests
# and a bit-identical failover solve, shard restart and rebalance, and a
# routed-vs-direct warm overhead record into BENCH_history.json
# (docs/cluster.md).
cluster-drill:
	./scripts/cluster_drill.sh

# Perf-regression gate: reproduce the committed BENCH_baseline.json run and
# diff the deterministic metrics with fsaicompare.
compare-baseline:
	./scripts/compare_baseline.sh

# Continuous-profiling overhead gate (docs/observability.md): measure the
# sampler's per-window bookkeeping under load and fail if the projected
# overhead at the default window/gap cadence reaches 2%. Run without -short
# (the test skips under -short); -count=1 defeats the test cache so the
# timing is from this machine, now.
prof-overhead-guard:
	$(GO) test -run 'TestSamplerOverheadBudget' -count=1 -v ./internal/prof/

# Fault-injection chaos suite: seeded injectors corrupting SpMV outputs,
# diagonals and computed factors, with the recovery chain proving detection,
# attribution and recovery under the race detector (docs/robustness.md).
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/resilience/ \
		./internal/krylov/ ./internal/parallel/

clean:
	$(GO) clean ./...
