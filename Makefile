GO ?= go

.PHONY: all build test race vet check bench clean obs-smoke compare-baseline chaos

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# Start fsaisolve with the observability server on a generated matrix and
# scrape /metrics, /debug/solve (incl. SSE), /debug/pprof/ and /runs.
obs-smoke:
	./scripts/obs_smoke.sh

# Perf-regression gate: reproduce the committed BENCH_baseline.json run and
# diff the deterministic metrics with fsaicompare.
compare-baseline:
	./scripts/compare_baseline.sh

# Fault-injection chaos suite: seeded injectors corrupting SpMV outputs,
# diagonals and computed factors, with the recovery chain proving detection,
# attribution and recovery under the race detector (docs/robustness.md).
chaos:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/resilience/ \
		./internal/krylov/ ./internal/parallel/

clean:
	$(GO) clean ./...
