package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Error("Median mutated input")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{2, -5, 7, 0}
	if Min(xs) != -5 || Max(xs) != 7 {
		t.Errorf("min=%g max=%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty extrema")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0, 0.5, 1, 2.5, 9.9, 10, 11, -3}, 10, 0, 10)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 8 {
		t.Fatalf("histogram lost values: %d", total)
	}
	if h.Counts[0] != 3 { // 0, 0.5, and clamped -3
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 3 { // 9.9, clamped 10 and 11
		t.Errorf("bin 9 = %d", h.Counts[9])
	}
	if !strings.Contains(h.BinLabel(0), "[0,1)") {
		t.Errorf("label %q", h.BinLabel(0))
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4, 5, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Error("degenerate range lost values")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 2}, 2, 0, 4)
	out := h.Render(10)
	if !strings.Contains(out, "##########") {
		t.Errorf("full bar missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Errorf("want 2 lines:\n%s", out)
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"a", "b"}, []float64{10, -5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %v", lines)
	}
	if !strings.Contains(lines[0], "+10.00") || !strings.Contains(lines[1], "-5.00") {
		t.Errorf("values missing:\n%s", out)
	}
	// Negative bars appear before the axis, positive after.
	axisPos := strings.Index(lines[0], "|")
	if !strings.Contains(lines[0][axisPos:], "#") {
		t.Error("positive bar not after axis")
	}
	if !strings.Contains(lines[1][:strings.Index(lines[1], "|")], "#") {
		t.Error("negative bar not before axis")
	}
}

func TestBarChartPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	BarChart([]string{"a"}, []float64{1, 2}, 10)
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart([]string{"a"}, []float64{0}, 10)
	if out == "" || strings.Contains(out, "NaN") {
		t.Errorf("zero chart broken: %q", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"name", "value"},
		{"x", "1"},
		{"longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing header rule")
	}
	// Columns aligned: "value" and "1" start at the same offset.
	if strings.Index(lines[0], "value") != strings.Index(lines[2], "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}

func TestHistogramPanicsOnBadBins(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewHistogram(nil, 0, 0, 1)
}

func TestConvergencePlot(t *testing.T) {
	h1 := []float64{1, 0.1, 0.01, 0.001}
	h2 := []float64{1, 0.5, 0.25, 0.12, 0.06, 0.03, 0.01}
	out := ConvergencePlot([]string{"fast", "slow"}, [][]float64{h1, h2}, 30, 4)
	if !strings.Contains(out, "1e-00") || !strings.Contains(out, "1e-04") {
		t.Errorf("decade axis missing:\n%s", out)
	}
	if !strings.Contains(out, "* = fast") || !strings.Contains(out, "o = slow") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "iters=7") {
		t.Errorf("iteration axis missing:\n%s", out)
	}
	// Empty input renders empty.
	if ConvergencePlot(nil, nil, 30, 4) != "" {
		t.Error("empty plot should be empty")
	}
	// Zero/negative residuals are clamped, not NaN.
	out = ConvergencePlot([]string{"z"}, [][]float64{{1, 0}}, 10, 3)
	if strings.Contains(out, "NaN") {
		t.Error("NaN leaked into plot")
	}
}

func TestConvergencePlotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	ConvergencePlot([]string{"a"}, nil, 10, 3)
}

func TestMeanNaNSafety(t *testing.T) {
	// Mean propagates NaN (documents behaviour; guards against silent
	// filtering being added without tests noticing).
	if !math.IsNaN(Mean([]float64{1, math.NaN()})) {
		t.Error("NaN should propagate")
	}
}
