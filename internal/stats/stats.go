// Package stats provides the summary statistics and text rendering used to
// reproduce the paper's tables and figures: averages, medians, histograms
// (Figures 3, 4, 7) and ASCII bar charts (Figures 2, 5, 6).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Min and Max return extrema (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Histogram bins values into nbins equal-width bins over [lo, hi]; values
// outside the range are clamped into the edge bins, so every value counts.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a histogram of xs with nbins bins over [lo, hi].
func NewHistogram(xs []float64, nbins int, lo, hi float64) *Histogram {
	if nbins < 1 {
		panic("stats: nbins must be >= 1")
	}
	if hi <= lo {
		hi = lo + 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}

// BinLabel returns a "[lo,hi)" label for bin b.
func (h *Histogram) BinLabel(b int) string {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return fmt.Sprintf("[%.3g,%.3g)", h.Lo+float64(b)*w, h.Lo+float64(b+1)*w)
}

// Render draws the histogram as ASCII rows "label | ####### count".
func (h *Histogram) Render(width int) string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		max = 1
	}
	var sb strings.Builder
	for b, c := range h.Counts {
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(max)*float64(width))))
		fmt.Fprintf(&sb, "%16s | %-*s %d\n", h.BinLabel(b), width, bar, c)
	}
	return sb.String()
}

// BarChart renders per-item signed values (e.g. per-matrix % time decrease,
// Figures 2/5/6) as horizontal ASCII bars around a zero axis.
func BarChart(labels []string, values []float64, width int) string {
	if len(labels) != len(values) {
		panic("stats: BarChart labels/values mismatch")
	}
	maxAbs := 0.0
	for _, v := range values {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	half := width / 2
	var sb strings.Builder
	for i, v := range values {
		n := int(math.Round(math.Abs(v) / maxAbs * float64(half)))
		var left, right string
		if v >= 0 {
			left = strings.Repeat(" ", half)
			right = strings.Repeat("#", n)
		} else {
			left = strings.Repeat(" ", half-n) + strings.Repeat("#", n)
			right = ""
		}
		fmt.Fprintf(&sb, "%20s %s|%-*s %+7.2f\n", labels[i], left, half, right, v)
	}
	return sb.String()
}

// ConvergencePlot renders residual histories (one per labeled series) as an
// ASCII semilog plot: rows are decades of the relative residual, columns
// are iterations (downsampled to fit width). Each series is drawn with its
// own glyph; the legend maps glyphs to labels.
func ConvergencePlot(labels []string, histories [][]float64, width, decades int) string {
	if len(labels) != len(histories) {
		panic("stats: ConvergencePlot labels/histories mismatch")
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}
	maxIter := 0
	for _, h := range histories {
		if len(h) > maxIter {
			maxIter = len(h)
		}
	}
	if maxIter == 0 || decades < 1 {
		return ""
	}
	grid := make([][]byte, decades+1)
	for r := range grid {
		grid[r] = make([]byte, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for s, h := range histories {
		g := glyphs[s%len(glyphs)]
		for i, v := range h {
			col := i * (width - 1) / maxIter
			if v <= 0 {
				v = 1e-300
			}
			row := int(-math.Log10(v))
			if row < 0 {
				row = 0
			}
			if row > decades {
				row = decades
			}
			grid[row][col] = g
		}
	}
	var sb strings.Builder
	for r, line := range grid {
		fmt.Fprintf(&sb, "1e-%02d |%s|\n", r, string(line))
	}
	fmt.Fprintf(&sb, "%6s 0%siters=%d\n", "", strings.Repeat(" ", width-10), maxIter)
	for s, l := range labels {
		fmt.Fprintf(&sb, "  %c = %s\n", glyphs[s%len(glyphs)], l)
	}
	return sb.String()
}

// Table renders rows of cells with aligned columns; the first row is the
// header, separated by a rule.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	ncol := 0
	for _, r := range rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	for _, r := range rows {
		for c, cell := range r {
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for c := 0; c < ncol; c++ {
			cell := ""
			if c < len(r) {
				cell = r[c]
			}
			if c > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[c], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(ncol-1)) + "\n")
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return sb.String()
}
