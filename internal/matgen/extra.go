package matgen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Additional generators beyond the 72-matrix campaign suite, for users
// composing their own studies.

// Anisotropic3D returns the 7-point discretization of a 3D diffusion
// operator with per-axis strengths (kx, ky, kz); the unit-stride (k)
// direction carries kz. Strong anisotropy stretches the spectrum like the
// hard CFD cases.
func Anisotropic3D(nx, ny, nz int, kx, ky, kz float64) *sparse.CSR {
	n := nx * ny * nz
	b := sparse.NewCOO(n, n, 7*n)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				c := id(i, j, k)
				b.Add(c, c, 2*(kx+ky+kz))
				if i > 0 {
					b.Add(c, id(i-1, j, k), -kx)
				}
				if i < nx-1 {
					b.Add(c, id(i+1, j, k), -kx)
				}
				if j > 0 {
					b.Add(c, id(i, j-1, k), -ky)
				}
				if j < ny-1 {
					b.Add(c, id(i, j+1, k), -ky)
				}
				if k > 0 {
					b.Add(c, id(i, j, k-1), -kz)
				}
				if k < nz-1 {
					b.Add(c, id(i, j, k+1), -kz)
				}
			}
		}
	}
	return b.ToCSR()
}

// ShiftedHelmholtz2D returns K + sigma·h²·I for the 2D Laplacian stencil K
// with mesh width h = 1/(nx+1): the positive-shift Helmholtz operator of
// implicit time stepping (qa8fm-class acoustics problems). sigma > 0 keeps
// it SPD; larger sigma means better conditioning.
func ShiftedHelmholtz2D(nx, ny int, sigma float64) *sparse.CSR {
	k := Laplace2D(nx, ny)
	h := 1.0 / float64(nx+1)
	return k.AddDiag(sigma * h * h)
}

// HighContrast2D returns a 5-point diffusion operator whose conductivity
// alternates between 1 and `contrast` on thin horizontal layers of the
// given period — a classic multiscale hardener whose condition number
// scales with the contrast.
func HighContrast2D(nx, ny, period int, contrast float64) *sparse.CSR {
	n := nx * ny
	b := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*ny + j }
	coef := func(i int) float64 {
		if period > 0 && (i/period)%2 == 1 {
			return contrast
		}
		return 1
	}
	harm := func(a, c float64) float64 { return 2 * a * c / (a + c) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			diag := coef(i) * 0.05 // Dirichlet-ish closure keeps SPD
			if i > 0 {
				w := harm(coef(i), coef(i-1))
				b.Add(c, id(i-1, j), -w)
				diag += w
			}
			if i < nx-1 {
				w := harm(coef(i), coef(i+1))
				b.Add(c, id(i+1, j), -w)
				diag += w
			}
			if j > 0 {
				b.Add(c, id(i, j-1), -coef(i))
				diag += coef(i)
			}
			if j < ny-1 {
				b.Add(c, id(i, j+1), -coef(i))
				diag += coef(i)
			}
			b.Add(c, c, diag)
		}
	}
	return b.ToCSR()
}

// RandomSPD returns B·Bᵀ + delta·I for a random sparse B with the given
// entries per row: an unstructured SPD matrix with no mesh locality at all
// — the stress case where cache-friendly fill is numerically useless and
// the filter must remove it (see the ordering ablation).
func RandomSPD(n, perRow int, delta float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewCOO(n, n, n*perRow*perRow)
	// Accumulate B Bᵀ via random row supports.
	rows := make([][]int, n)
	vals := make([][]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < perRow; k++ {
			rows[i] = append(rows[i], rng.Intn(n))
			vals[i] = append(vals[i], rng.NormFloat64()/math.Sqrt(float64(perRow)))
		}
	}
	// (B Bᵀ)(i,j) = Σ_c B(i,c) B(j,c): bucket B's entries by column and
	// emit all pairwise products per bucket.
	type entry struct {
		row int
		v   float64
	}
	buckets := make(map[int][]entry)
	for i := 0; i < n; i++ {
		for k, c := range rows[i] {
			buckets[c] = append(buckets[c], entry{i, vals[i][k]})
		}
	}
	for _, es := range buckets {
		for _, a := range es {
			for _, c := range es {
				b.Add(a.row, c.row, a.v*c.v)
			}
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, delta)
	}
	return b.ToCSR()
}
