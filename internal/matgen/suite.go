package matgen

import (
	"fmt"
	"math/rand"

	"repro/internal/sparse"
)

// Spec describes one matrix of the evaluation suite: the synthetic analogue
// of one row of the paper's Table 1.
type Spec struct {
	// ID is the 1-based matrix identifier used on figure axes.
	ID int
	// Name is a short generator-derived name (the suite is synthetic; names
	// do not claim to be the SuiteSparse originals).
	Name string
	// Type is the application family, using the paper's Table 1 vocabulary.
	Type string
	// Gen builds the matrix. Deterministic.
	Gen func() *sparse.CSR
}

// Generate builds the matrix.
func (s Spec) Generate() *sparse.CSR { return s.Gen() }

// RHS generates the right-hand side the paper prescribes: uniform random
// values in [-1, 1], normalized by the matrix max-norm, deterministic per
// matrix ID.
func (s Spec) RHS(a *sparse.CSR) []float64 {
	rng := rand.New(rand.NewSource(int64(7919 * (s.ID + 1))))
	b := make([]float64, a.Rows)
	norm := a.MaxNorm()
	if norm == 0 {
		norm = 1
	}
	for i := range b {
		b[i] = (2*rng.Float64() - 1) / norm
	}
	return b
}

// Suite returns the 72-matrix evaluation suite. The families and the
// difficulty mix (CG iteration counts from ~10 to several thousands) mirror
// the paper's Table 1 selection; sizes are scaled down so the full campaign
// runs on one node in minutes. Matrices are deterministic: generating the
// suite twice yields identical matrices.
func Suite() []Spec {
	specs := []Spec{
		// --- Structural: FEM elasticity with increasing stiffness contrast
		// (shipsec/nasasrb/oilpan/bcsstk analogues). Block-structured rows;
		// larger contrast means worse conditioning, more CG iterations.
		{Type: "Structural", Name: "elas36x36-s2", Gen: func() *sparse.CSR { return Elasticity2D(36, 36, 2) }},
		{Type: "Structural", Name: "elas48x24-s5", Gen: func() *sparse.CSR { return Elasticity2D(48, 24, 5) }},
		{Type: "Structural", Name: "elas32x32-s20", Gen: func() *sparse.CSR { return Elasticity2D(32, 32, 20) }},
		{Type: "Structural", Name: "elas28x28-s100", Gen: func() *sparse.CSR { return Elasticity2D(28, 28, 100) }},
		{Type: "Structural", Name: "elas24x24-s400", Gen: func() *sparse.CSR { return Elasticity2D(24, 24, 400) }},
		{Type: "Structural", Name: "elas40x20-s10", Gen: func() *sparse.CSR { return Elasticity2D(40, 20, 10) }},
		{Type: "Structural", Name: "elas20x20-s1000", Gen: func() *sparse.CSR { return Elasticity2D(20, 20, 1000) }},
		{Type: "Structural", Name: "elas48x16-s3", Gen: func() *sparse.CSR { return Elasticity2D(48, 16, 3) }},
		{Type: "Structural", Name: "elas30x30-s50", Gen: func() *sparse.CSR { return Elasticity2D(30, 30, 50) }},
		{Type: "Structural", Name: "elas26x26-s200", Gen: func() *sparse.CSR { return Elasticity2D(26, 26, 200) }},
		{Type: "Structural", Name: "elas36x18-s8", Gen: func() *sparse.CSR { return Elasticity2D(36, 18, 8) }},
		{Type: "Structural", Name: "elas16x16-s2000", Gen: func() *sparse.CSR { return Elasticity2D(16, 16, 2000) }},
		{Type: "Structural", Name: "elas34x17-s30", Gen: func() *sparse.CSR { return Elasticity2D(34, 17, 30) }},
		{Type: "Structural", Name: "elas22x22-s800", Gen: func() *sparse.CSR { return Elasticity2D(22, 22, 800) }},
		{Type: "Structural", Name: "elas44x22-s15", Gen: func() *sparse.CSR { return Elasticity2D(44, 22, 15) }},
		// Banded random stiffness (bcsstk/nasa-style rows with gaps inside
		// the band — the pattern class where in-line fill is cheapest).
		{Type: "Structural", Name: "band2200-bw12-d2", Gen: func() *sparse.CSR { return BandedSPD(2200, 12, 2, 101) }},
		{Type: "Structural", Name: "band1800-bw16-d1", Gen: func() *sparse.CSR { return BandedSPD(1800, 16, 1, 102) }},
		{Type: "Structural", Name: "band1400-bw24-d0.5", Gen: func() *sparse.CSR { return BandedSPD(1400, 24, 0.5, 103) }},
		{Type: "Structural", Name: "band1200-bw8-d0.25", Gen: func() *sparse.CSR { return BandedSPD(1200, 8, 0.25, 104) }},
		{Type: "Structural", Name: "band2500-bw6-d4", Gen: func() *sparse.CSR { return BandedSPD(2500, 6, 4, 105) }},
		{Type: "Structural", Name: "band1500-bw20-d0.125", Gen: func() *sparse.CSR { return BandedSPD(1500, 20, 0.125, 106) }},
		{Type: "Structural", Name: "band1000-bw32-d1", Gen: func() *sparse.CSR { return BandedSPD(1000, 32, 1, 107) }},
		{Type: "Structural", Name: "band800-bw10-d0.06", Gen: func() *sparse.CSR { return BandedSPD(800, 10, 0.0625, 108) }},
		{Type: "Structural", Name: "band2000-bw14-d8", Gen: func() *sparse.CSR { return BandedSPD(2000, 14, 8, 109) }},
		{Type: "Structural", Name: "band500-bw32-d0.5", Gen: func() *sparse.CSR { return BandedSPD(500, 32, 0.5, 110) }},
		{Type: "Structural", Name: "band900-bw18-d0.4", Gen: func() *sparse.CSR { return BandedSPD(900, 18, 0.4, 111) }},
		{Type: "Structural", Name: "band1300-bw22-d0.2", Gen: func() *sparse.CSR { return BandedSPD(1300, 22, 0.2, 112) }},
		{Type: "Structural", Name: "band1100-bw26-d1", Gen: func() *sparse.CSR { return BandedSPD(1100, 26, 1, 115) }},

		// --- CFD: anisotropic diffusion (cfd1/cfd2/parabolic_fem/
		// Pres_Poisson analogues). Harder as eps shrinks.
		{Type: "CFD", Name: "aniso72x72-e0.1", Gen: func() *sparse.CSR { return Anisotropic2D(72, 72, 0.1) }},
		{Type: "CFD", Name: "aniso64x64-e0.01", Gen: func() *sparse.CSR { return Anisotropic2D(64, 64, 0.01) }},
		{Type: "CFD", Name: "aniso56x56-e0.001", Gen: func() *sparse.CSR { return Anisotropic2D(56, 56, 0.001) }},
		{Type: "CFD", Name: "aniso96x48-e0.05", Gen: func() *sparse.CSR { return Anisotropic2D(96, 48, 0.05) }},
		{Type: "CFD", Name: "aniso60x60-e0.3", Gen: func() *sparse.CSR { return Anisotropic2D(60, 60, 0.3) }},
		{Type: "CFD", Name: "aniso48x48-e0.005", Gen: func() *sparse.CSR { return Anisotropic2D(48, 48, 0.005) }},
		{Type: "CFD", Name: "shallow72x72", Gen: func() *sparse.CSR { return MassMatrix2D(72, 72) }},

		// --- 2D/3D meshes (Dubcova/fv/nd3k analogues).
		{Type: "2D/3D", Name: "lap72x72", Gen: func() *sparse.CSR { return Laplace2D(72, 72) }},
		{Type: "2D/3D", Name: "lap64x64", Gen: func() *sparse.CSR { return Laplace2D(64, 64) }},
		{Type: "2D/3D", Name: "lap3d13", Gen: func() *sparse.CSR { return Laplace3D(13, 13, 13) }},
		{Type: "2D/3D", Name: "lap3d11", Gen: func() *sparse.CSR { return Laplace3D(11, 11, 11) }},
		{Type: "2D/3D", Name: "lap9-56x56", Gen: func() *sparse.CSR { return Laplace9(56, 56) }},
		{Type: "2D/3D", Name: "lap9-48x48", Gen: func() *sparse.CSR { return Laplace9(48, 48) }},
		{Type: "2D/3D", Name: "lap112x28", Gen: func() *sparse.CSR { return Laplace2D(112, 28) }},
		{Type: "2D/3D", Name: "lap3d18x9x9", Gen: func() *sparse.CSR { return Laplace3D(18, 9, 9) }},

		// --- Thermal: heterogeneous diffusion (thermal1/thermomech/ted_B).
		{Type: "Thermal", Name: "jump64x64-b8-j1e3", Gen: func() *sparse.CSR { return JumpCoefficient2D(64, 64, 8, 1e3, 201) }},
		{Type: "Thermal", Name: "jump56x56-b4-j1e4", Gen: func() *sparse.CSR { return JumpCoefficient2D(56, 56, 4, 1e4, 202) }},
		{Type: "Thermal", Name: "jump72x36-b6-j1e2", Gen: func() *sparse.CSR { return JumpCoefficient2D(72, 36, 6, 1e2, 203) }},
		{Type: "Thermal", Name: "mass1d6000", Gen: func() *sparse.CSR { return MassMatrix1D(6000, 1) }},
		{Type: "Thermal", Name: "jump40x40-b8-j1e5", Gen: func() *sparse.CSR { return JumpCoefficient2D(40, 40, 8, 1e5, 204) }},

		// --- Electromagnetics (offshore/2cubes_sphere analogues): 3D
		// meshes with a diagonal (mass) shift — well conditioned.
		{Type: "Electromagnetics", Name: "em3d12-shift3", Gen: func() *sparse.CSR { return Laplace3D(12, 12, 12).AddDiag(3) }},
		{Type: "Electromagnetics", Name: "em3d16x16x8-shift5", Gen: func() *sparse.CSR { return Laplace3D(16, 16, 8).AddDiag(5) }},

		// --- Acoustics (qa8fm/aft01): mass matrices, near-instant CG.
		{Type: "Acoustics", Name: "mass2d56x56", Gen: func() *sparse.CSR { return MassMatrix2D(56, 56) }},
		{Type: "Acoustics", Name: "aft-lap56-pot40", Gen: func() *sparse.CSR { return Obstacle2D(56, 56, 40, 301) }},

		// --- Materials (crystm): mass matrices of growing size.
		{Type: "Materials", Name: "mass2d40x40", Gen: func() *sparse.CSR { return MassMatrix2D(40, 40) }},
		{Type: "Materials", Name: "mass2d30x30", Gen: func() *sparse.CSR { return MassMatrix2D(30, 30) }},
		{Type: "Materials", Name: "mass1d4000", Gen: func() *sparse.CSR { return MassMatrix1D(4000, 0.01) }},

		// --- Optimization (jnlbrng/obstclae/torsion/minsurfo/gridgena):
		// shifted Laplacians with random potentials.
		{Type: "Optimization", Name: "obst56x56-p1", Gen: func() *sparse.CSR { return Obstacle2D(56, 56, 1, 401) }},
		{Type: "Optimization", Name: "obst64x32-p0.5", Gen: func() *sparse.CSR { return Obstacle2D(64, 32, 0.5, 402) }},
		{Type: "Optimization", Name: "obst48x48-p4", Gen: func() *sparse.CSR { return Obstacle2D(48, 48, 4, 403) }},
		{Type: "Optimization", Name: "grid60x60", Gen: func() *sparse.CSR { return Laplace2D(60, 60).AddDiag(0.05) }},
		{Type: "Optimization", Name: "obst40x40-p0.1", Gen: func() *sparse.CSR { return Obstacle2D(40, 40, 0.1, 404) }},
		{Type: "Optimization", Name: "cvx-band1600", Gen: func() *sparse.CSR { return BandedSPD(1600, 4, 0.05, 405) }},

		// --- Duplicate (the paper's torsion1/obstclae pair): an exact
		// duplicate spec, exercising determinism.
		{Type: "Duplicate", Name: "obst56x56-p1-dup", Gen: func() *sparse.CSR { return Obstacle2D(56, 56, 1, 401) }},

		// --- Random 2D/3D (wathen100/wathen120).
		{Type: "Random 2D/3D", Name: "wathen20x20", Gen: func() *sparse.CSR { return Wathen(20, 20, 501) }},
		{Type: "Random 2D/3D", Name: "wathen24x18", Gen: func() *sparse.CSR { return Wathen(24, 18, 502) }},

		// --- Circuit Simulation (G2_circuit): irregular graph Laplacians.
		{Type: "Circuit Simulation", Name: "circuit600-d4", Gen: func() *sparse.CSR { return GraphLaplacian(600, 4, 0.05, 601) }},
		{Type: "Circuit Simulation", Name: "circuit500-d5", Gen: func() *sparse.CSR { return GraphLaplacian(500, 5, 0.02, 602) }},

		// --- Model Reduction (gyro/gyro_k): wide sparse bands, harder.
		{Type: "Model Reduction", Name: "gyro-band700-bw36", Gen: func() *sparse.CSR { return BandedSPD(700, 36, 0.2, 701) }},
		{Type: "Model Reduction", Name: "gyro-band900-bw28", Gen: func() *sparse.CSR { return BandedSPD(900, 28, 0.3, 702) }},

		// --- DMR (t2dah_e-style): mesh with potential; wide-band variant.
		{Type: "DMR", Name: "dmr-lap48x48-pot10", Gen: func() *sparse.CSR { return Obstacle2D(48, 48, 10, 801) }},
		{Type: "DMR", Name: "dmr-band600-bw24", Gen: func() *sparse.CSR { return BandedSPD(600, 24, 0.4, 802) }},

		// --- Economic (finan512): block-sparse well-conditioned graph.
		{Type: "Economic", Name: "finan-graph800", Gen: func() *sparse.CSR { return GraphLaplacian(800, 6, 2, 901) }},

		// --- CG/V (bundle1): small dense-ish rows, very fast convergence.
		{Type: "CG/V", Name: "bundle-band500-bw24", Gen: func() *sparse.CSR { return BandedSPD(500, 24, 30, 902) }},
	}
	if len(specs) != 72 {
		panic(fmt.Sprintf("matgen: suite has %d specs, want 72", len(specs)))
	}
	for i := range specs {
		specs[i].ID = i + 1
	}
	return specs
}

// QuickSuite returns a small deterministic subset of the suite (one matrix
// per major family) for fast tests and -quick benchmark runs.
func QuickSuite() []Spec {
	all := Suite()
	pick := []string{
		"elas28x28-s100", "band1200-bw8-d0.25", "aniso56x56-e0.001",
		"lap64x64", "jump56x56-b4-j1e4", "mass2d40x40",
		"obst56x56-p1", "wathen20x20", "circuit500-d5", "gyro-band700-bw36",
	}
	var out []Spec
	for _, name := range pick {
		for _, s := range all {
			if s.Name == name {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// ByName returns the named suite spec and whether it exists.
func ByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
