// Package matgen generates deterministic symmetric positive definite test
// matrices covering the application families of the paper's 72-matrix
// SuiteSparse selection (Table 1): structural mechanics, CFD, thermal,
// electromagnetics, acoustics/materials (mass matrices), 2D/3D meshes,
// random FEM (Wathen), circuit simulation, optimization and model
// reduction.
//
// SuiteSparse itself is external data and the module is offline, so each
// family is reproduced by a generator that controls the two properties the
// FSAI experiments are sensitive to: the sparsity pattern (bandedness,
// block structure, irregularity) and the spectrum (condition number, hence
// CG iteration count). All generators are deterministic given their
// parameters and seed.
package matgen

import (
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Laplace2D returns the 5-point finite-difference Laplacian on an nx × ny
// grid with Dirichlet boundaries: the canonical "2D/3D" mesh matrix
// (Dubcova/fv/apache families). SPD with condition ~ O(n²/π²).
func Laplace2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	b := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			b.Add(c, c, 4)
			if i > 0 {
				b.Add(c, id(i-1, j), -1)
			}
			if i < nx-1 {
				b.Add(c, id(i+1, j), -1)
			}
			if j > 0 {
				b.Add(c, id(i, j-1), -1)
			}
			if j < ny-1 {
				b.Add(c, id(i, j+1), -1)
			}
		}
	}
	return b.ToCSR()
}

// Laplace3D returns the 7-point Laplacian on an nx × ny × nz grid
// (offshore/2cubes-style 3D discretizations).
func Laplace3D(nx, ny, nz int) *sparse.CSR {
	n := nx * ny * nz
	b := sparse.NewCOO(n, n, 7*n)
	id := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				c := id(i, j, k)
				b.Add(c, c, 6)
				if i > 0 {
					b.Add(c, id(i-1, j, k), -1)
				}
				if i < nx-1 {
					b.Add(c, id(i+1, j, k), -1)
				}
				if j > 0 {
					b.Add(c, id(i, j-1, k), -1)
				}
				if j < ny-1 {
					b.Add(c, id(i, j+1, k), -1)
				}
				if k > 0 {
					b.Add(c, id(i, j, k-1), -1)
				}
				if k < nz-1 {
					b.Add(c, id(i, j, k+1), -1)
				}
			}
		}
	}
	return b.ToCSR()
}

// Laplace9 returns the 9-point (compact) 2D Laplacian, a denser mesh
// stencil used by higher-order discretizations.
func Laplace9(nx, ny int) *sparse.CSR {
	n := nx * ny
	b := sparse.NewCOO(n, n, 9*n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			b.Add(c, c, 8.0/3)
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
						continue
					}
					w := -1.0 / 3
					if di != 0 && dj != 0 {
						w = -1.0 / 12
					}
					b.Add(c, id(ii, jj), w)
				}
			}
		}
	}
	return b.ToCSR()
}

// Anisotropic2D returns a 5-point discretization of an anisotropic
// diffusion operator: the anisotropy stretches the spectrum, emulating the
// harder CFD matrices (cfd1/cfd2/parabolic_fem). eps in (0,1]; smaller is
// harder. The strong coupling direction is the unit-stride (j) direction,
// the natural ordering choice for such solvers — inverse entries along the
// strong direction are then index-local.
func Anisotropic2D(nx, ny int, eps float64) *sparse.CSR {
	n := nx * ny
	b := sparse.NewCOO(n, n, 5*n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			b.Add(c, c, 2+2*eps)
			if i > 0 {
				b.Add(c, id(i-1, j), -eps)
			}
			if i < nx-1 {
				b.Add(c, id(i+1, j), -eps)
			}
			if j > 0 {
				b.Add(c, id(i, j-1), -1)
			}
			if j < ny-1 {
				b.Add(c, id(i, j+1), -1)
			}
		}
	}
	return b.ToCSR()
}

// JumpCoefficient2D returns a 5-point diffusion matrix whose conductivity
// jumps by factor jump on a checkerboard of blocks×blocks subdomains —
// the classic heterogeneous-media hardener (thermal/groundwater problems,
// thermal1-style iteration counts).
func JumpCoefficient2D(nx, ny, blocks int, jump float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := nx * ny
	coef := make([]float64, n)
	id := func(i, j int) int { return i*ny + j }
	bi := func(i, dim int) int { return i * blocks / dim }
	blockCoef := make([]float64, blocks*blocks)
	for k := range blockCoef {
		if rng.Intn(2) == 0 {
			blockCoef[k] = 1
		} else {
			blockCoef[k] = jump
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			coef[id(i, j)] = blockCoef[bi(i, nx)*blocks+bi(j, ny)]
		}
	}
	b := sparse.NewCOO(n, n, 5*n)
	harm := func(a, c float64) float64 { return 2 * a * c / (a + c) }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			diag := 0.0
			if i > 0 {
				w := harm(coef[c], coef[id(i-1, j)])
				b.Add(c, id(i-1, j), -w)
				diag += w
			}
			if i < nx-1 {
				w := harm(coef[c], coef[id(i+1, j)])
				b.Add(c, id(i+1, j), -w)
				diag += w
			}
			if j > 0 {
				w := harm(coef[c], coef[id(i, j-1)])
				b.Add(c, id(i, j-1), -w)
				diag += w
			}
			if j < ny-1 {
				w := harm(coef[c], coef[id(i, j+1)])
				b.Add(c, id(i, j+1), -w)
				diag += w
			}
			// Dirichlet closure keeps the matrix nonsingular.
			b.Add(c, c, diag+harm(coef[c], coef[c])*0.5)
		}
	}
	return b.ToCSR()
}

// Elasticity2D returns a 2-dof-per-node plane-strain-like operator on an
// nx × ny grid: each node carries (ux, uy) coupled to its neighbours with a
// vector stencil. The interleaved block structure mimics the structural
// matrices (shipsec/nasasrb/bcsstk families), whose rows come in small
// dense blocks. stiff scales the coupling contrast (conditioning).
func Elasticity2D(nx, ny int, stiff float64) *sparse.CSR {
	nodes := nx * ny
	n := 2 * nodes
	b := sparse.NewCOO(n, n, 18*n)
	id := func(i, j, d int) int { return 2*(i*ny+j) + d }
	lam, mu := stiff, 1.0
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for d := 0; d < 2; d++ {
				c := id(i, j, d)
				// Direction-dependent stretch/shear weights.
				var wx, wy float64
				if d == 0 {
					wx, wy = lam+2*mu, mu
				} else {
					wx, wy = mu, lam+2*mu
				}
				diag := 0.0
				if i > 0 {
					b.Add(c, id(i-1, j, d), -wx)
					diag += wx
				}
				if i < nx-1 {
					b.Add(c, id(i+1, j, d), -wx)
					diag += wx
				}
				if j > 0 {
					b.Add(c, id(i, j-1, d), -wy)
					diag += wy
				}
				if j < ny-1 {
					b.Add(c, id(i, j+1, d), -wy)
					diag += wy
				}
				// Symmetric cross coupling between ux and uy at diagonal
				// neighbours (keeps SPD via diagonal reinforcement below).
				cross := (lam + mu) / 4
				for _, dd := range [4][2]int{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}} {
					ii, jj := i+dd[0], j+dd[1]
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
						continue
					}
					s := cross * float64(dd[0]*dd[1])
					b.Add(c, id(ii, jj, 1-d), -s)
					diag += math.Abs(s)
				}
				b.Add(c, c, diag+mu*0.05)
			}
		}
	}
	return b.ToCSR()
}

// Wathen returns the classical Wathen matrix: the consistent mass matrix of
// an nx × ny mesh of 8-node serendipity elements with random density per
// element — the paper's "Random 2D/3D" wathen100/wathen120 entries. SPD,
// moderately conditioned.
func Wathen(nx, ny int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	// Node count of the serendipity mesh: corner + edge nodes.
	n := 3*nx*ny + 2*nx + 2*ny + 1
	// Reference element matrix, em = [e1 e2; e2ᵀ e1]/45 (Wathen 1987, as in
	// MATLAB's gallery('wathen',...)).
	e1 := [4][4]float64{
		{6, -6, 2, -8},
		{-6, 32, -6, 20},
		{2, -6, 6, -6},
		{-8, 20, -6, 32},
	}
	e2 := [4][4]float64{
		{3, -8, 2, -6},
		{-8, 16, -8, 20},
		{2, -8, 3, -8},
		{-6, 20, -8, 16},
	}
	var em [8][8]float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			em[r][c] = e1[r][c] / 45
			em[r][c+4] = e2[r][c] / 45
			em[r+4][c] = e2[c][r] / 45
			em[r+4][c+4] = e1[r][c] / 45
		}
	}
	b := sparse.NewCOO(n, n, 64*nx*ny)
	var nn [8]int
	for j := 1; j <= ny; j++ {
		for i := 1; i <= nx; i++ {
			// Global node numbers (1-based, gallery ordering).
			nn[0] = 3*nx*j + 2*i + 2*j + 1
			nn[1] = nn[0] - 1
			nn[2] = nn[1] - 1
			nn[3] = (3*j-1)*nx + 2*j + i - 1
			nn[4] = 3*nx*(j-1) + 2*i + 2*j - 3
			nn[5] = nn[4] + 1
			nn[6] = nn[5] + 1
			nn[7] = nn[3] + 1
			rho := 100 * rng.Float64() // random element density
			for r := 0; r < 8; r++ {
				for c := 0; c < 8; c++ {
					b.Add(nn[r]-1, nn[c]-1, rho*em[r][c])
				}
			}
		}
	}
	return b.ToCSR()
}

// MassMatrix1D returns the tridiagonal FEM mass matrix h/6·tridiag(1,4,1)
// of size n: extremely well conditioned (κ≈3), converging in ~10 CG
// iterations like the acoustics/materials entries (qa8fm, crystm, Muu).
func MassMatrix1D(n int, h float64) *sparse.CSR {
	b := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 4*h/6)
		if i > 0 {
			b.Add(i, i-1, h/6)
		}
		if i < n-1 {
			b.Add(i, i+1, h/6)
		}
	}
	return b.ToCSR()
}

// MassMatrix2D returns the 2D bilinear FEM mass matrix on an nx × ny grid
// (9-point, weights 4-2-1): κ ≈ 9, a well-conditioned "Materials" proxy.
func MassMatrix2D(nx, ny int) *sparse.CSR {
	n := nx * ny
	b := sparse.NewCOO(n, n, 9*n)
	id := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			c := id(i, j)
			b.Add(c, c, 16.0/36)
			for di := -1; di <= 1; di++ {
				for dj := -1; dj <= 1; dj++ {
					if di == 0 && dj == 0 {
						continue
					}
					ii, jj := i+di, j+dj
					if ii < 0 || ii >= nx || jj < 0 || jj >= ny {
						continue
					}
					w := 4.0 / 36
					if di != 0 && dj != 0 {
						w = 1.0 / 36
					}
					b.Add(c, id(ii, jj), w)
				}
			}
		}
	}
	return b.ToCSR()
}

// GraphLaplacian returns the Laplacian of a random sparse graph with n
// vertices and roughly deg edges per vertex, shifted by shift·I to make it
// positive definite: the circuit-simulation proxy (G2_circuit). Its
// irregular pattern exercises the cache extension on non-mesh structure.
func GraphLaplacian(n, deg int, shift float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewCOO(n, n, (deg+2)*n)
	diag := make([]float64, n)
	// Ring backbone keeps the graph connected and banded-ish.
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		w := 0.5 + rng.Float64()
		b.AddSym(i, j, -w)
		diag[i] += w
		diag[j] += w
	}
	// Random long-range edges.
	for i := 0; i < n; i++ {
		for e := 0; e < deg-2; e++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			w := 0.5 + rng.Float64()
			b.AddSym(i, j, -w)
			diag[i] += w
			diag[j] += w
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, diag[i]+shift)
	}
	return b.ToCSR()
}

// BandedSPD returns a symmetric banded matrix of bandwidth bw with random
// off-diagonal entries and diagonal dominance margin delta: the "model
// reduction"/gyro proxy with wide rows. Smaller delta is harder.
func BandedSPD(n, bw int, delta float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	b := sparse.NewCOO(n, n, (2*bw+1)*n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		for d := 1; d <= bw; d++ {
			j := i + d
			if j >= n {
				break
			}
			// Sparse band: keep ~half the positions.
			if rng.Intn(2) == 0 {
				continue
			}
			w := rng.Float64()*2 - 1
			b.AddSym(i, j, w)
			diag[i] += math.Abs(w)
			diag[j] += math.Abs(w)
		}
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, diag[i]+delta)
	}
	return b.ToCSR()
}

// Obstacle2D returns the 5-point Laplacian plus a random nonnegative
// diagonal potential up to pot: the bound-constrained-optimization proxies
// (jnlbrng1, obstclae, torsion1, minsurfo) with their easier spectra.
func Obstacle2D(nx, ny int, pot float64, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	base := Laplace2D(nx, ny)
	out := base.Clone()
	for i := 0; i < out.Rows; i++ {
		cols, vals := out.Row(i)
		for k, j := range cols {
			if j == i {
				vals[k] += pot * rng.Float64()
			}
		}
	}
	return out
}
