package matgen

import (
	"math"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/dense"
	"repro/internal/krylov"
	"repro/internal/sparse"
)

// checkSPD verifies symmetry and (for small matrices) positive definiteness
// via a dense Cholesky factorization.
func checkSPD(t *testing.T, name string, a *sparse.CSR) {
	t.Helper()
	if err := a.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if a.Rows != a.Cols {
		t.Fatalf("%s: not square (%dx%d)", name, a.Rows, a.Cols)
	}
	if !a.IsSymmetric(1e-10) {
		t.Fatalf("%s: not symmetric", name)
	}
	if a.Rows <= 700 {
		n := a.Rows
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		d := a.Extract(idx, nil)
		if err := dense.Cholesky(d, n); err != nil {
			t.Fatalf("%s: not positive definite: %v", name, err)
		}
	}
}

func TestGeneratorsAreSPD(t *testing.T) {
	cases := []struct {
		name string
		a    *sparse.CSR
	}{
		{"Laplace2D", Laplace2D(10, 12)},
		{"Laplace3D", Laplace3D(5, 6, 4)},
		{"Laplace9", Laplace9(9, 9)},
		{"Anisotropic2D", Anisotropic2D(10, 10, 0.01)},
		{"JumpCoefficient2D", JumpCoefficient2D(12, 12, 4, 1e3, 1)},
		{"Elasticity2D", Elasticity2D(8, 8, 100)},
		{"Wathen", Wathen(5, 4, 2)},
		{"MassMatrix1D", MassMatrix1D(50, 1)},
		{"MassMatrix2D", MassMatrix2D(9, 9)},
		{"GraphLaplacian", GraphLaplacian(120, 5, 0.1, 3)},
		{"BandedSPD", BandedSPD(100, 10, 0.5, 4)},
		{"Obstacle2D", Obstacle2D(10, 10, 2, 5)},
	}
	for _, c := range cases {
		checkSPD(t, c.name, c.a)
	}
}

func TestLaplace2DKnownValues(t *testing.T) {
	a := Laplace2D(3, 3)
	if a.Rows != 9 {
		t.Fatalf("rows=%d", a.Rows)
	}
	if a.At(4, 4) != 4 {
		t.Errorf("center diag = %g", a.At(4, 4))
	}
	// Center node couples to its 4 neighbours.
	for _, j := range []int{1, 3, 5, 7} {
		if a.At(4, j) != -1 {
			t.Errorf("a(4,%d)=%g", j, a.At(4, j))
		}
	}
	// Corner has 2 neighbours: nnz of row 0 = 3.
	if a.RowNNZ(0) != 3 {
		t.Errorf("corner row nnz=%d", a.RowNNZ(0))
	}
}

func TestLaplace3DStencilCount(t *testing.T) {
	a := Laplace3D(4, 4, 4)
	// Interior node has 7 entries.
	interior := (1*4+1)*4 + 1
	if a.RowNNZ(interior) != 7 {
		t.Errorf("interior row nnz=%d", a.RowNNZ(interior))
	}
}

func TestWathenSize(t *testing.T) {
	for _, c := range []struct{ nx, ny, want int }{
		{1, 1, 8}, {3, 3, 3*9 + 6 + 6 + 1}, {5, 4, 3*20 + 10 + 8 + 1},
	} {
		a := Wathen(c.nx, c.ny, 1)
		if a.Rows != c.want {
			t.Errorf("Wathen(%d,%d): %d rows, want %d", c.nx, c.ny, a.Rows, c.want)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a1 := BandedSPD(80, 8, 0.5, 42)
	a2 := BandedSPD(80, 8, 0.5, 42)
	if a1.NNZ() != a2.NNZ() {
		t.Fatal("nondeterministic structure")
	}
	for k := range a1.Val {
		if a1.Val[k] != a2.Val[k] {
			t.Fatal("nondeterministic values")
		}
	}
	a3 := BandedSPD(80, 8, 0.5, 43)
	same := a1.NNZ() == a3.NNZ()
	if same {
		same = false
		for k := range a1.Val {
			if a1.Val[k] != a3.Val[k] {
				same = false
				break
			}
			same = true
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestSuiteHas72DistinctMatrices(t *testing.T) {
	specs := Suite()
	if len(specs) != 72 {
		t.Fatalf("suite size %d", len(specs))
	}
	names := map[string]bool{}
	for i, s := range specs {
		if s.ID != i+1 {
			t.Errorf("spec %d has ID %d", i, s.ID)
		}
		if names[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if s.Type == "" {
			t.Errorf("%s: empty type", s.Name)
		}
	}
}

func TestSuiteMatricesAreSymmetricAndSized(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all 72 matrices")
	}
	for _, s := range Suite() {
		a := s.Generate()
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !a.IsSymmetric(1e-10) {
			t.Errorf("%s: not symmetric", s.Name)
		}
		if a.Rows < 200 || a.Rows > 12000 {
			t.Errorf("%s: %d rows outside the campaign range", s.Name, a.Rows)
		}
		if a.NNZ() < 3*a.Rows/2 {
			t.Errorf("%s: suspiciously sparse (%d nnz for %d rows)", s.Name, a.NNZ(), a.Rows)
		}
	}
}

func TestRHSNormalizedAndDeterministic(t *testing.T) {
	spec, ok := ByName("lap64x64")
	if !ok {
		t.Fatal("missing spec")
	}
	a := spec.Generate()
	b1 := spec.RHS(a)
	b2 := spec.RHS(a)
	maxAbs := 0.0
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("RHS not deterministic")
		}
		if v := math.Abs(b1[i]); v > maxAbs {
			maxAbs = v
		}
	}
	// Normalized to the matrix max norm: |b_i| <= 1/maxnorm.
	if maxAbs > 1/a.MaxNorm()+1e-15 {
		t.Errorf("RHS max %g exceeds 1/maxnorm %g", maxAbs, 1/a.MaxNorm())
	}
}

func TestDuplicateSpecIsExactDuplicate(t *testing.T) {
	orig, ok1 := ByName("obst56x56-p1")
	dup, ok2 := ByName("obst56x56-p1-dup")
	if !ok1 || !ok2 {
		t.Fatal("duplicate pair missing")
	}
	a, b := orig.Generate(), dup.Generate()
	if a.NNZ() != b.NNZ() {
		t.Fatal("duplicate differs in structure")
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatal("duplicate differs in values")
		}
	}
}

func TestQuickSuite(t *testing.T) {
	qs := QuickSuite()
	if len(qs) != 10 {
		t.Fatalf("quick suite size %d", len(qs))
	}
	types := map[string]bool{}
	for _, s := range qs {
		types[s.Type] = true
	}
	if len(types) < 6 {
		t.Errorf("quick suite covers only %d families", len(types))
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("definitely-not-a-matrix"); ok {
		t.Error("bogus name found")
	}
	s, ok := ByName("wathen20x20")
	if !ok || s.Name != "wathen20x20" {
		t.Error("lookup failed")
	}
}

func TestExtraGeneratorsAreSPD(t *testing.T) {
	cases := []struct {
		name string
		a    *sparse.CSR
	}{
		{"Anisotropic3D", Anisotropic3D(6, 5, 4, 1, 0.1, 0.01)},
		{"ShiftedHelmholtz2D", ShiftedHelmholtz2D(12, 12, 5)},
		{"HighContrast2D", HighContrast2D(14, 14, 3, 1e4)},
		{"RandomSPD", RandomSPD(150, 4, 0.5, 9)},
	}
	for _, c := range cases {
		checkSPD(t, c.name, c.a)
	}
}

func TestHighContrastHardensWithContrast(t *testing.T) {
	// More contrast, slower plain CG (conditioning scales with contrast).
	iters := func(contrast float64) int {
		a := HighContrast2D(24, 24, 4, contrast)
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, a.Rows)
		res := krylov.Solve(a, x, b, nil, krylov.DefaultOptions())
		if !res.Converged {
			t.Fatalf("contrast %g did not converge", contrast)
		}
		return res.Iterations
	}
	if lo, hi := iters(10), iters(1e4); hi <= lo {
		t.Errorf("contrast 1e4 (%d iters) should be harder than 10 (%d)", hi, lo)
	}
}

func TestRandomSPDHasNoLocalityGain(t *testing.T) {
	// On an unstructured RandomSPD matrix the cache extension's entries
	// are numerically useless: the filtered extension stays tiny.
	a := RandomSPD(300, 4, 1.5, 11)
	o := fsai.DefaultOptions()
	p, err := fsai.Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if p.ExtensionPct() > 30 {
		t.Errorf("random-structure extension kept %.1f%%, expected mostly filtered", p.ExtensionPct())
	}
}
