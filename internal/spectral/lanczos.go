// Package spectral estimates extreme eigenvalues of SPD operators with the
// Lanczos process. The reproduction uses it to measure what the FSAI
// pattern extension actually improves: the condition number of the
// preconditioned operator GᵀG·A, whose square root governs the CG
// iteration count (the mechanism behind every iteration column in the
// paper's tables).
package spectral

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/krylov"
	"repro/internal/sparse"
)

// Operator is a symmetric positive definite linear operator y = Op(x).
type Operator interface {
	Apply(y, x []float64)
	Dim() int
}

// MatOp wraps a CSR matrix as an Operator.
type MatOp struct{ A *sparse.CSR }

// Apply computes y = A x.
func (m MatOp) Apply(y, x []float64) { m.A.MulVec(y, x) }

// Dim returns the operator dimension.
func (m MatOp) Dim() int { return m.A.Rows }

// SandwichOp is the symmetrically preconditioned operator G·A·Gᵀ for a
// factorized preconditioner M = GᵀG. Its spectrum equals that of the
// preconditioned operator M·A = GᵀG·A (XY and YX share their nonzero
// spectrum, with X = Gᵀ and Y = G·A), and unlike M·A it is symmetric
// positive definite in the Euclidean inner product, so plain Lanczos
// applies directly.
type SandwichOp struct {
	A     *sparse.CSR
	G, GT *sparse.CSR

	t1, t2 []float64
}

// Apply computes y = G(A(Gᵀ x)).
func (p *SandwichOp) Apply(y, x []float64) {
	n := p.A.Rows
	if p.t1 == nil || len(p.t1) != n {
		p.t1 = make([]float64, n)
		p.t2 = make([]float64, n)
	}
	p.GT.MulVec(p.t1, x)
	p.A.MulVec(p.t2, p.t1)
	p.G.MulVec(y, p.t2)
}

// Dim returns the operator dimension.
func (p *SandwichOp) Dim() int { return p.A.Rows }

// Result reports an eigenvalue estimation.
type Result struct {
	Min, Max   float64
	Iterations int
}

// Cond returns the estimated condition number Max/Min.
func (r Result) Cond() float64 {
	if r.Min <= 0 {
		return math.Inf(1)
	}
	return r.Max / r.Min
}

// Extremes estimates the smallest and largest eigenvalues of the SPD
// operator with steps iterations of the Lanczos process started from a
// deterministic pseudo-random vector (seed). The tridiagonal Ritz values'
// extremes converge to the operator's extreme eigenvalues from inside, so
// Min is a (slight) overestimate and Max a (slight) underestimate — Cond
// is therefore a mild underestimate, consistent across the operators being
// compared.
func Extremes(op Operator, steps int, seed int64) (Result, error) {
	n := op.Dim()
	if steps < 1 {
		return Result{}, fmt.Errorf("spectral: steps %d < 1", steps)
	}
	if steps > n {
		steps = n
	}
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	vPrev := make([]float64, n)
	w := make([]float64, n)
	var alphas, betas []float64
	beta := 0.0
	for k := 0; k < steps; k++ {
		op.Apply(w, v)
		alpha := krylov.Dot(w, v)
		// w = w - alpha v - beta vPrev
		for i := range w {
			w[i] -= alpha*v[i] + beta*vPrev[i]
		}
		// Full reorthogonalization is overkill for extreme-value estimates;
		// one re-pass against v stabilizes the recurrence cheaply.
		c := krylov.Dot(w, v)
		for i := range w {
			w[i] -= c * v[i]
		}
		alphas = append(alphas, alpha+c)
		beta = krylov.Norm2(w)
		if beta < 1e-14 {
			break // invariant subspace found: Ritz values are exact
		}
		betas = append(betas, beta)
		copy(vPrev, v)
		for i := range v {
			v[i] = w[i] / beta
		}
	}
	lo, hi, err := tridiagExtremes(alphas, betas[:len(alphas)-1])
	if err != nil {
		return Result{}, err
	}
	return Result{Min: lo, Max: hi, Iterations: len(alphas)}, nil
}

func normalize(v []float64) {
	n := krylov.Norm2(v)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// tridiagExtremes returns the extreme eigenvalues of the symmetric
// tridiagonal matrix with diagonal d and off-diagonal e, by bisection on
// the Sturm sequence (the classic eigenvalue-count property).
func tridiagExtremes(d, e []float64) (lo, hi float64, err error) {
	m := len(d)
	if m == 0 {
		return 0, 0, fmt.Errorf("spectral: empty tridiagonal")
	}
	// Gershgorin bounds.
	glo, ghi := math.Inf(1), math.Inf(-1)
	for i := 0; i < m; i++ {
		r := 0.0
		if i > 0 {
			r += math.Abs(e[i-1])
		}
		if i < m-1 {
			r += math.Abs(e[i])
		}
		glo = math.Min(glo, d[i]-r)
		ghi = math.Max(ghi, d[i]+r)
	}
	count := func(x float64) int {
		// Number of eigenvalues < x via the Sturm sequence.
		cnt := 0
		q := d[0] - x
		if q < 0 {
			cnt++
		}
		for i := 1; i < m; i++ {
			if q == 0 {
				q = 1e-300
			}
			q = d[i] - x - e[i-1]*e[i-1]/q
			if q < 0 {
				cnt++
			}
		}
		return cnt
	}
	bisect := func(target int) float64 {
		a, b := glo-1e-12, ghi+1e-12
		for iter := 0; iter < 200 && b-a > 1e-12*(1+math.Abs(b)); iter++ {
			mid := (a + b) / 2
			if count(mid) >= target {
				b = mid
			} else {
				a = mid
			}
		}
		return (a + b) / 2
	}
	lo = bisect(1) // smallest eigenvalue: first x with count(x) >= 1
	hi = bisect(m) // largest: first x with all m eigenvalues below
	return lo, hi, nil
}

// CondOfMatrix estimates κ₂(A) for an SPD matrix.
func CondOfMatrix(a *sparse.CSR, steps int) (Result, error) {
	return Extremes(MatOp{A: a}, steps, 42)
}

// CondFSAI estimates κ₂ of the FSAI-preconditioned operator GᵀG·A via the
// similar symmetric sandwich G·A·Gᵀ.
func CondFSAI(a, g, gt *sparse.CSR, steps int) (Result, error) {
	return Extremes(&SandwichOp{A: a, G: g, GT: gt}, steps, 42)
}
