package spectral

import (
	"math"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func diagMatrix(vals []float64) *sparse.CSR {
	n := len(vals)
	b := sparse.NewCOO(n, n, n)
	for i, v := range vals {
		b.Add(i, i, v)
	}
	return b.ToCSR()
}

func TestExtremesDiagonal(t *testing.T) {
	// For a diagonal matrix the eigenvalues are explicit.
	vals := []float64{0.5, 1, 2, 3, 4, 10, 25}
	a := diagMatrix(vals)
	res, err := Extremes(MatOp{A: a}, len(vals), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Min-0.5) > 1e-6 || math.Abs(res.Max-25) > 1e-6 {
		t.Errorf("extremes [%g, %g], want [0.5, 25]", res.Min, res.Max)
	}
	if math.Abs(res.Cond()-50) > 1e-4 {
		t.Errorf("cond %g, want 50", res.Cond())
	}
}

func TestExtremesLaplacian1DAnalytic(t *testing.T) {
	// Eigenvalues of tridiag(-1,2,-1) of size n: 2-2cos(kπ/(n+1)).
	n := 40
	b := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	a := b.ToCSR()
	wantMin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	wantMax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	res, err := Extremes(MatOp{A: a}, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Min-wantMin) > 1e-4*wantMin {
		t.Errorf("min %g, want %g", res.Min, wantMin)
	}
	if math.Abs(res.Max-wantMax) > 1e-4*wantMax {
		t.Errorf("max %g, want %g", res.Max, wantMax)
	}
}

func TestExtremesUnderestimatesCondFromInside(t *testing.T) {
	// With few steps the Ritz extremes are inside the spectrum: Min >= λmin
	// and Max <= λmax.
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = 1 + float64(i)
	}
	a := diagMatrix(vals)
	res, err := Extremes(MatOp{A: a}, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Min < 1-1e-9 || res.Max > 200+1e-9 {
		t.Errorf("Ritz extremes [%g, %g] escaped the spectrum [1, 200]", res.Min, res.Max)
	}
	if res.Max < 150 {
		t.Errorf("max estimate %g too loose", res.Max)
	}
}

// TestFSAIReducesCondition is the spectral mechanism check of the entire
// paper: κ(G·A·Gᵀ) < κ(A), and the cache-aware extension reduces it
// further — which is *why* the iteration counts in Tables 1-5 fall.
func TestFSAIReducesCondition(t *testing.T) {
	a := matgen.Laplace2D(24, 24)
	steps := 60
	plain, err := CondOfMatrix(a, steps)
	if err != nil {
		t.Fatal(err)
	}
	cond := func(v fsai.Variant) float64 {
		o := fsai.DefaultOptions()
		o.Variant = v
		p, err := fsai.Compute(a, o)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CondFSAI(a, p.G, p.GT, steps)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cond()
	}
	kFSAI := cond(fsai.VariantFSAI)
	kFull := cond(fsai.VariantFull)
	t.Logf("κ(A)=%.1f κ(FSAI)=%.1f κ(FSAIE(full))=%.1f", plain.Cond(), kFSAI, kFull)
	if kFSAI >= plain.Cond() {
		t.Errorf("FSAI did not reduce the condition number: %g vs %g", kFSAI, plain.Cond())
	}
	if kFull >= kFSAI {
		t.Errorf("the extension did not reduce the condition number: %g vs %g", kFull, kFSAI)
	}
}

func TestExtremesErrors(t *testing.T) {
	a := diagMatrix([]float64{1, 2})
	if _, err := Extremes(MatOp{A: a}, 0, 1); err == nil {
		t.Error("steps 0 accepted")
	}
}

func TestExtremesEarlyInvariantSubspace(t *testing.T) {
	// Identity: Lanczos terminates after one step with the exact value.
	a := diagMatrix([]float64{3, 3, 3, 3})
	res, err := Extremes(MatOp{A: a}, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Min-3) > 1e-10 || math.Abs(res.Max-3) > 1e-10 {
		t.Errorf("extremes [%g, %g], want [3, 3]", res.Min, res.Max)
	}
	if res.Iterations > 2 {
		t.Errorf("should terminate early, took %d", res.Iterations)
	}
}
