// Package perfmodel prices solver and setup work on an arch.Arch machine
// model, turning (entry counts, line visits, cache misses, row counts) into
// simulated seconds and Gflop/s figures.
//
// The model encodes the first-order performance physics the paper's
// optimization exploits. An SpMV sweep y = Mx pays
//
//   - a small per-entry streaming cost (matrix values/indices arrive at
//     stride 1 and are fully prefetched — "there is some flexibility for
//     extending A without suffering a prohibitive performance penalty",
//     Section 4);
//   - a per-line-visit cost: every *distinct* cache line of x touched by a
//     row costs one gather/address-generation round. Entries that land in
//     an already-visited line of the same row ride along nearly free —
//     this is precisely the spatial locality the cache-friendly fill-in
//     engineers, and what makes extended patterns reach far higher Gflop/s
//     (Figure 4) at near-constant sweep time;
//   - a per-miss penalty for x accesses that leave the L1 (measured by the
//     cache simulator), the term random extensions blow up (Figure 3);
//   - a per-row loop overhead.
//
// The constants per machine are calibration constants of the reproduction:
// absolute times are indicative, relative comparisons are the deliverable.
package perfmodel

import "repro/internal/arch"

// CSR entry footprint: 8-byte value + 4-byte column index.
const entryBytes = 12

// Constants returns the pricing constants for machine a, derived from its
// headline parameters: per-entry streaming time from peak bandwidth,
// per-line-visit gather cost and per-miss stall from the line size and
// latency character of the machine.
type Constants struct {
	EntrySec     float64 // per stored entry (streaming, prefetched)
	LineVisitSec float64 // per distinct x-line touched within a row
	MissSec      float64 // per L1 x-miss
	RowSec       float64 // per row of the sweep
	VecByteSec   float64 // per byte of dense vector traffic
}

// ConstantsFor derives pricing constants from the machine model.
func ConstantsFor(a arch.Arch) Constants {
	return Constants{
		EntrySec:     entryBytes / a.MemBandwidth,
		LineVisitSec: a.GatherCost,
		MissSec:      a.MissLatency,
		RowSec:       a.RowOverhead,
		VecByteSec:   1 / a.MemBandwidth,
	}
}

// SpMVCost describes one SpMV sweep y = Mx for pricing.
type SpMVCost struct {
	NNZ        int    // stored entries of M
	Rows       int    // rows of M (output length)
	LineVisits int    // sum over rows of distinct x cache lines touched
	XMisses    uint64 // L1 misses on x accesses from the cache simulator
}

// SpMVTime returns the simulated seconds of one SpMV sweep on machine a.
func SpMVTime(a arch.Arch, c SpMVCost) float64 {
	k := ConstantsFor(a)
	return float64(c.NNZ)*k.EntrySec +
		float64(c.LineVisits)*k.LineVisitSec +
		float64(c.XMisses)*k.MissSec +
		float64(c.Rows)*k.RowSec +
		float64(c.Rows)*8*k.VecByteSec // streaming the output vector
}

// IterCost describes one PCG iteration for pricing.
type IterCost struct {
	A    SpMVCost // the y = Ap product
	G    SpMVCost // the t = Gr product of the preconditioner
	GT   SpMVCost // the z = Gᵀt product
	Rows int      // system size n (vector operations)
}

// IterTime returns the simulated seconds of one PCG iteration: three SpMV
// sweeps plus the dot products and AXPY updates, which stream ~10 vector
// reads/writes of length n per iteration.
func IterTime(a arch.Arch, c IterCost) float64 {
	k := ConstantsFor(a)
	t := SpMVTime(a, c.A) + SpMVTime(a, c.G) + SpMVTime(a, c.GT)
	t += float64(10*c.Rows*8) * k.VecByteSec
	return t
}

// SolveTime returns iterations × IterTime.
func SolveTime(a arch.Arch, c IterCost, iterations int) float64 {
	return float64(iterations) * IterTime(a, c)
}

// SetupCost describes preconditioner-construction work for pricing; the
// fields mirror fsai.SetupStats.
type SetupCost struct {
	DirectFlops  float64 // exact local solves
	PrecalcFlops float64 // loose-tolerance CG precalculation
	PatternOps   float64 // symbolic pattern entries visited
	Rows         int     // local systems set up (extraction/orchestration)
}

// SetupTime returns the simulated seconds of a preconditioner setup:
// numerical flops at the machine's effective dense-kernel rate, symbolic
// pattern work at a few bytes of traffic per visited entry.
func SetupTime(a arch.Arch, c SetupCost) float64 {
	return (c.DirectFlops+c.PrecalcFlops)/a.SetupFlops +
		c.PatternOps*16/a.MemBandwidth +
		float64(c.Rows)*5e-8 + // per-row extraction/orchestration
		1e-4 // fixed setup overhead
}

// PrecondGFlops returns the Gflop/s achieved by the preconditioning
// operation GᵀGp (the Figure 4 metric): 4 flops per stored entry of G
// (multiply-add in each of the two products) over the two sweeps' time.
func PrecondGFlops(a arch.Arch, g, gt SpMVCost) float64 {
	flops := 4 * float64(g.NNZ)
	t := SpMVTime(a, g) + SpMVTime(a, gt)
	if t <= 0 {
		return 0
	}
	return flops / t / 1e9
}
