package perfmodel

import (
	"testing"

	"repro/internal/arch"
)

func TestSpMVTimeMonotonicity(t *testing.T) {
	m := arch.Skylake()
	base := SpMVCost{NNZ: 10000, Rows: 1000, LineVisits: 5000, XMisses: 100}
	t0 := SpMVTime(m, base)
	if t0 <= 0 {
		t.Fatal("non-positive time")
	}
	more := base
	more.NNZ *= 2
	if SpMVTime(m, more) <= t0 {
		t.Error("more entries should cost more")
	}
	more = base
	more.XMisses *= 10
	if SpMVTime(m, more) <= t0 {
		t.Error("more misses should cost more")
	}
	more = base
	more.LineVisits *= 3
	if SpMVTime(m, more) <= t0 {
		t.Error("more line visits should cost more")
	}
}

// TestExtensionNearlyFree captures the paper's core performance claim in
// model terms: doubling nnz while keeping line visits and misses fixed
// (what the cache-friendly extension does) must cost far less than
// doubling nnz with proportional line-visit growth (what a random
// extension does).
func TestExtensionNearlyFree(t *testing.T) {
	m := arch.Skylake()
	base := SpMVCost{NNZ: 50000, Rows: 5000, LineVisits: 40000, XMisses: 5000}
	t0 := SpMVTime(m, base)

	friendly := base
	friendly.NNZ *= 2 // same visits, same misses
	tf := SpMVTime(m, friendly)

	random := base
	random.NNZ *= 2
	random.LineVisits += base.NNZ // every new entry touches its own line
	random.XMisses *= 3
	tr := SpMVTime(m, random)

	frOverhead := (tf - t0) / t0
	rnOverhead := (tr - t0) / t0
	if frOverhead > 0.35 {
		t.Errorf("cache-friendly doubling costs %.0f%%, want small", 100*frOverhead)
	}
	if rnOverhead < 2*frOverhead {
		t.Errorf("random extension (%.0f%%) should cost much more than friendly (%.0f%%)",
			100*rnOverhead, 100*frOverhead)
	}
}

func TestIterAndSolveTime(t *testing.T) {
	m := arch.POWER9()
	c := IterCost{
		A:    SpMVCost{NNZ: 20000, Rows: 2000, LineVisits: 9000, XMisses: 300},
		G:    SpMVCost{NNZ: 11000, Rows: 2000, LineVisits: 5000, XMisses: 250},
		GT:   SpMVCost{NNZ: 11000, Rows: 2000, LineVisits: 5500, XMisses: 260},
		Rows: 2000,
	}
	ti := IterTime(m, c)
	if ti <= 0 {
		t.Fatal("non-positive iteration time")
	}
	if SolveTime(m, c, 100) != 100*ti {
		t.Error("SolveTime must be iterations x IterTime")
	}
	// Iteration costs at least as much as its three sweeps.
	if ti < SpMVTime(m, c.A)+SpMVTime(m, c.G)+SpMVTime(m, c.GT) {
		t.Error("vector ops must add cost")
	}
}

func TestSetupTime(t *testing.T) {
	m := arch.Skylake()
	small := SetupTime(m, SetupCost{DirectFlops: 1e6})
	big := SetupTime(m, SetupCost{DirectFlops: 1e9, PrecalcFlops: 1e8, PatternOps: 1e6})
	if small <= 0 || big <= small {
		t.Errorf("setup times: small=%g big=%g", small, big)
	}
}

func TestPrecondGFlopsRange(t *testing.T) {
	// Sanity band: the modelled GᵀGp throughput should land in the regime
	// the paper reports (single-digit to ~40+ Gflop/s on Skylake).
	m := arch.Skylake()
	// Irregular baseline: visits ~ nnz.
	g := SpMVCost{NNZ: 50000, Rows: 5000, LineVisits: 45000, XMisses: 8000}
	base := PrecondGFlops(m, g, g)
	// Cache-friendly extended: double entries, same visits/misses.
	ge := g
	ge.NNZ = 100000
	ext := PrecondGFlops(m, ge, ge)
	if base < 2 || base > 40 {
		t.Errorf("baseline Gflop/s %g out of plausible band", base)
	}
	if ext <= base {
		t.Errorf("extended Gflop/s %g should exceed baseline %g", ext, base)
	}
	if ext > 60 {
		t.Errorf("extended Gflop/s %g unrealistically high", ext)
	}
	if PrecondGFlops(m, SpMVCost{}, SpMVCost{}) != 0 {
		t.Error("empty cost should yield 0")
	}
}

func TestArchModels(t *testing.T) {
	all := arch.All()
	if len(all) != 3 {
		t.Fatalf("want 3 machines")
	}
	for _, m := range all {
		if err := m.L1.Validate(); err != nil {
			t.Errorf("%s L1: %v", m.Name, err)
		}
		if err := m.L1Sim.Validate(); err != nil {
			t.Errorf("%s L1Sim: %v", m.Name, err)
		}
		if m.L1.LineBytes != m.LineBytes || m.L1Sim.LineBytes != m.LineBytes {
			t.Errorf("%s line sizes inconsistent", m.Name)
		}
		if m.ElemsPerLine() != m.LineBytes/8 {
			t.Errorf("%s ElemsPerLine", m.Name)
		}
		if m.MemBandwidth <= 0 || m.GatherCost <= 0 || m.MissLatency <= 0 || m.SetupFlops <= 0 {
			t.Errorf("%s has non-positive constants", m.Name)
		}
	}
	// The paper's line-size contrast.
	a64, _ := arch.ByName("A64FX")
	sky, _ := arch.ByName("Skylake")
	p9, _ := arch.ByName("POWER9")
	if a64.LineBytes != 4*sky.LineBytes || sky.LineBytes != p9.LineBytes {
		t.Error("line-size relations wrong")
	}
	if _, ok := arch.ByName("Itanium"); ok {
		t.Error("unknown arch found")
	}
}
