package perfmodel

import (
	"repro/internal/arch"
	"repro/internal/sparse"
)

// Measured summarizes the sparse package's op/byte counters in the units the
// roofline model speaks: total flops and bytes over some window of kernel
// calls. It is the "measured" side of model-vs-measured drift tracking — the
// model side being SpMVTime / roofline.SpMVKernel estimates.
type Measured struct {
	Calls int64
	Flops float64
	Bytes float64
}

// FromOpCounts converts a sparse.OpCounts snapshot into Measured.
func FromOpCounts(c sparse.OpCounts) Measured {
	return Measured{Calls: c.SpMVCalls, Flops: float64(c.Flops), Bytes: float64(c.Bytes())}
}

// AI returns the measured arithmetic intensity in flop/byte.
func (m Measured) AI() float64 {
	if m.Bytes == 0 {
		return 0
	}
	return m.Flops / m.Bytes
}

// StreamSeconds returns the bandwidth-bound lower time estimate for the
// measured traffic on machine a: bytes / peak bandwidth. Comparing this
// against modelled SpMVTime totals (which add line-visit and miss terms) or
// against wall clock shows where the model and the hardware disagree.
func (m Measured) StreamSeconds(a arch.Arch) float64 {
	return m.Bytes / a.MemBandwidth
}

// DriftPct returns the relative deviation of measured from model in percent:
// 100 × (measured − model) / model. A zero model yields 0.
func DriftPct(model, measured float64) float64 {
	if model == 0 {
		return 0
	}
	return 100 * (measured - model) / model
}
