package perfmodel

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/sparse"
)

func TestFromOpCounts(t *testing.T) {
	c := sparse.OpCounts{SpMVCalls: 2, Flops: 2800, MatrixBytes: 17000, VectorBytes: 3200}
	m := FromOpCounts(c)
	if m.Calls != 2 || m.Flops != 2800 || m.Bytes != 20200 {
		t.Fatalf("Measured = %+v", m)
	}
	if got, want := m.AI(), 2800.0/20200.0; math.Abs(got-want) > 1e-15 {
		t.Errorf("AI = %g, want %g", got, want)
	}
	if (Measured{}).AI() != 0 {
		t.Error("empty AI should be 0")
	}
	// SpMV intensity must land in the bandwidth-bound regime of every machine
	// in the model — the paper's premise.
	sky := arch.Skylake()
	if m.AI()*sky.MemBandwidth >= float64(sky.Cores)*sky.FreqHz*16 {
		t.Error("measured SpMV AI should be bandwidth-bound on Skylake")
	}
}

func TestStreamSecondsAndDrift(t *testing.T) {
	sky := arch.Skylake()
	m := Measured{Flops: 2e9, Bytes: 12e9}
	secs := m.StreamSeconds(sky)
	if want := 12e9 / sky.MemBandwidth; math.Abs(secs-want) > 1e-18 {
		t.Errorf("StreamSeconds = %g, want %g", secs, want)
	}
	// The modelled SpMV time includes gather/miss/row terms, so it can only
	// be >= the pure streaming bound for the same traffic.
	cost := SpMVCost{NNZ: 1000, Rows: 100, LineVisits: 400, XMisses: 50}
	model := SpMVTime(sky, cost)
	stream := FromOpCounts(sparse.OpCounts{
		Flops:       2 * 1000,
		MatrixBytes: 12 * 1000,
		VectorBytes: 8 * 200,
	}).StreamSeconds(sky)
	if model < stream {
		t.Errorf("model %g below streaming bound %g", model, stream)
	}
	if got := DriftPct(2, 3); got != 50 {
		t.Errorf("DriftPct(2,3) = %g, want 50", got)
	}
	if got := DriftPct(0, 3); got != 0 {
		t.Errorf("DriftPct(0,3) = %g, want 0", got)
	}
}
