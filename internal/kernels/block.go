// Block (multi-right-hand-side) kernels: SpMM dispatch and blocked BLAS-1
// operations over column-major n×k vector blocks. They power the batched
// solve path (krylov.SolveBlock): one pass over the matrix serves all k
// columns, and the small k×k Gram products/updates of block CG run as
// single fused sweeps instead of k² separate dots.
//
// Layout conventions (shared with internal/sparse and krylov):
//   - vector blocks are column-major: column j of an n×k block b is
//     b[j*n:(j+1)*n];
//   - small k×k matrices are column-major: element (i,j) at a[i+j*k].
//
// Every block kernel delegates to the corresponding scalar kernel when
// k == 1, so a one-column block op is bit-identical to the scalar solve
// path by construction.
package kernels

import (
	"sync"

	"repro/internal/sparse"
)

// blockState holds the Engine's block-kernel operand slots and k-dependent
// scratch. ensureBlock sizes the scratch once per block width, so a solve
// that keeps k fixed performs no per-call allocation (the satellite fix:
// scratch is keyed by chunks × k, not allocated per dispatch).
type blockState struct {
	k      int       // block width the scratch is currently sized for
	gparts []float64 // per-chunk k×k partial Grams (BlockDot)
	nparts []float64 // per-chunk per-column reduction partials (BlockXRUpdate)
	rowbuf []float64 // per-chunk k-wide row staging (BlockXpay)

	// Operand slots, valid during one kernel call.
	a, b       []float64 // BlockDot inputs
	alpha      []float64 // small k×k coefficient matrix
	p, q, x, r []float64 // block update operands
	z          []float64 // BlockXpay input
	m          *sparse.CSR
	my, mx     []float64 // SpMM operands

	spmmBody, gramBody, xrBody, xpayBody func(chunk, lo, hi int)
}

// ensureBlock sizes the engine's block scratch for width k and binds the
// chunk bodies on first use. Scalar-only engines never pay for it.
func (e *Engine) ensureBlock(k int) {
	if e.blk.spmmBody == nil {
		e.bindBlockBodies()
	}
	if e.blk.k == k {
		return
	}
	chunks := len(e.vbounds)/2 + 1
	e.blk.k = k
	e.blk.gparts = make([]float64, chunks*k*k)
	e.blk.nparts = make([]float64, chunks*k)
	e.blk.rowbuf = make([]float64, chunks*k)
}

func (e *Engine) bindBlockBodies() {
	e.blk.spmmBody = func(_, lo, hi int) {
		e.blk.m.MulMatRange(e.blk.my, e.blk.mx, e.blk.k, lo, hi)
	}
	e.blk.gramBody = func(c, lo, hi int) {
		k, n := e.blk.k, e.n
		a, b := e.blk.a, e.blk.b
		g := e.blk.gparts[c*k*k : (c+1)*k*k]
		blockGramRange(g, a, b, n, k, lo, hi)
	}
	e.blk.xrBody = func(c, lo, hi int) {
		k, n := e.blk.k, e.n
		s := e.blk.nparts[c*k : (c+1)*k]
		blockXRRange(s, e.blk.alpha, e.blk.p, e.blk.q, e.blk.x, e.blk.r, n, k, lo, hi)
	}
	e.blk.xpayBody = func(c, lo, hi int) {
		k, n := e.blk.k, e.n
		buf := e.blk.rowbuf[c*k : (c+1)*k]
		blockXpayRange(buf, e.blk.z, e.blk.alpha, e.blk.p, n, k, lo, hi)
	}
}

// SpMM computes the k-column block product Y = m X (column-major),
// scheduling the matrix's nnz-balanced partition plan on the pool exactly
// like SpMV. Column j of the result is bit-identical to SpMV with column j
// for any worker count; k == 1 is the scalar SpMV.
func (e *Engine) SpMM(m *sparse.CSR, y, x []float64, k int) {
	if k == 1 {
		e.SpMV(m, y, x)
		return
	}
	m.AccountSpMM(k)
	if e.workers <= 1 {
		m.MulMatRange(y, x, k, 0, m.Rows)
		return
	}
	pl := m.PartitionPlan(e.workers)
	if pl.NChunks() <= 1 {
		m.MulMatRange(y, x, k, 0, m.Rows)
		return
	}
	e.ensureBlock(k)
	e.blk.m, e.blk.my, e.blk.mx = m, y, x
	if err := e.pool.RunLabeled(pl.Bounds, e.blk.spmmBody, e.lctx); err != nil {
		panic(err)
	}
	e.blk.m, e.blk.my, e.blk.mx = nil, nil, nil
}

// BlockDot computes the k×k Gram matrix out(i,j) = aᵢᵀ bⱼ over two n×k
// column-major blocks in one fused sweep (out is column-major, len k*k).
// Per-chunk partial Grams are combined in chunk order, so results are
// deterministic for a fixed worker count. k == 1 delegates to Dot.
func (e *Engine) BlockDot(a, b []float64, k int, out []float64) {
	if k == 1 {
		out[0] = e.Dot(a, b)
		return
	}
	n := e.n
	sparse.AccountBlas1(2*int64(n)*int64(k)*int64(k), 16*int64(n)*int64(k))
	if !e.parallelVec(n) {
		blockGramRange(out, a, b, n, k, 0, n)
		return
	}
	e.ensureBlock(k)
	e.blk.a, e.blk.b = a, b
	e.run(e.blk.gramBody)
	e.blk.a, e.blk.b = nil, nil
	kk := k * k
	copy(out[:kk], e.blk.gparts[:kk])
	for c := 1; c < len(e.vbounds)/2; c++ {
		g := e.blk.gparts[c*kk : (c+1)*kk]
		for i := 0; i < kk; i++ {
			out[i] += g[i]
		}
	}
}

// BlockXRUpdate is the fused block iterate/residual update of block CG:
// X += P·Alpha, R -= Q·Alpha and rr[j] = ‖r_j‖² per column, in one sweep
// over the four n×k blocks (alpha is k×k column-major). k == 1 delegates
// to the scalar fused XRUpdate.
func (e *Engine) BlockXRUpdate(alpha []float64, p, q, x, r []float64, k int, rr []float64) {
	if k == 1 {
		rr[0] = e.XRUpdate(alpha[0], p, q, x, r)
		return
	}
	n := e.n
	sparse.AccountBlas1(4*int64(n)*int64(k)*int64(k+1), 48*int64(n)*int64(k))
	if !e.parallelVec(n) {
		for j := range rr[:k] {
			rr[j] = 0
		}
		blockXRRange(rr, alpha, p, q, x, r, n, k, 0, n)
		return
	}
	e.ensureBlock(k)
	e.blk.alpha, e.blk.p, e.blk.q, e.blk.x, e.blk.r = alpha, p, q, x, r
	for i := range e.blk.nparts {
		e.blk.nparts[i] = 0
	}
	e.run(e.blk.xrBody)
	e.blk.alpha, e.blk.p, e.blk.q, e.blk.x, e.blk.r = nil, nil, nil, nil, nil
	for j := 0; j < k; j++ {
		rr[j] = 0
	}
	for c := 0; c < len(e.vbounds)/2; c++ {
		s := e.blk.nparts[c*k : (c+1)*k]
		for j := 0; j < k; j++ {
			rr[j] += s[j]
		}
	}
}

// BlockXpay is the block search-direction update P = Z + P·Beta (beta k×k
// column-major): the block analogue of Xpay, one sweep with a k-wide row
// staging buffer so the in-place update reads the old P row. k == 1
// delegates to the scalar Xpay.
func (e *Engine) BlockXpay(z []float64, beta []float64, p []float64, k int) {
	if k == 1 {
		e.Xpay(z, beta[0], p)
		return
	}
	n := e.n
	sparse.AccountBlas1(2*int64(n)*int64(k)*int64(k), 24*int64(n)*int64(k))
	if !e.parallelVec(n) {
		e.ensureBlock(k)
		blockXpayRange(e.blk.rowbuf[:k], z, beta, p, n, k, 0, n)
		return
	}
	e.ensureBlock(k)
	e.blk.z, e.blk.alpha, e.blk.p = z, beta, p
	e.run(e.blk.xpayBody)
	e.blk.z, e.blk.alpha, e.blk.p = nil, nil, nil
}

// blockGramRange accumulates g(i,j) += Σ_{rows} aᵢ·bⱼ over [lo,hi). g is
// zeroed first (it is a per-chunk partial).
func blockGramRange(g, a, b []float64, n, k, lo, hi int) {
	for i := range g[:k*k] {
		g[i] = 0
	}
	for i := lo; i < hi; i++ {
		for jb := 0; jb < k; jb++ {
			bv := b[jb*n+i]
			gc := g[jb*k : (jb+1)*k]
			for ja := 0; ja < k; ja++ {
				gc[ja] += a[ja*n+i] * bv
			}
		}
	}
}

// blockXRRange applies the fused update over rows [lo,hi), accumulating
// per-column ‖r_j‖² into s (not zeroed: caller owns initialization).
func blockXRRange(s, alpha, p, q, x, r []float64, n, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		for j := 0; j < k; j++ {
			ac := alpha[j*k : (j+1)*k]
			var dx, dr float64
			for l := 0; l < k; l++ {
				al := ac[l]
				dx += p[l*n+i] * al
				dr += q[l*n+i] * al
			}
			x[j*n+i] += dx
			ri := r[j*n+i] - dr
			r[j*n+i] = ri
			s[j] += ri * ri
		}
	}
}

// blockXpayRange computes p_j = z_j + Σ_l p_l·beta(l,j) over rows [lo,hi),
// staging the old P row in buf (len k) so the in-place update is safe.
func blockXpayRange(buf, z, beta, p []float64, n, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		for l := 0; l < k; l++ {
			buf[l] = p[l*n+i]
		}
		for j := 0; j < k; j++ {
			bc := beta[j*k : (j+1)*k]
			s := z[j*n+i]
			for l := 0; l < k; l++ {
				s += buf[l] * bc[l]
			}
			p[j*n+i] = s
		}
	}
}

// blockScratch pools float64 buffers keyed by exact length, so repeated
// block solves at the same (rows × k) reuse their work blocks instead of
// allocating them per call.
var blockScratch sync.Map // int -> *sync.Pool of *[]float64

// GetBlockScratch returns a buffer of length n from the size-keyed pool.
// Contents are unspecified; callers must initialize what they read.
func GetBlockScratch(n int) []float64 {
	p, ok := blockScratch.Load(n)
	if !ok {
		p, _ = blockScratch.LoadOrStore(n, &sync.Pool{New: func() any {
			s := make([]float64, n)
			return &s
		}})
	}
	return *(p.(*sync.Pool).Get().(*[]float64))
}

// PutBlockScratch returns a buffer obtained from GetBlockScratch to its
// size-keyed pool.
func PutBlockScratch(s []float64) {
	if p, ok := blockScratch.Load(len(s)); ok {
		sc := s
		p.(*sync.Pool).Put(&sc)
	}
}
