package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

func benchVecs(n int) (p, ap, x, r []float64) {
	rng := rand.New(rand.NewSource(1))
	mk := func() []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	return mk(), mk(), mk(), mk()
}

// BenchmarkFusedBlas1 compares the fused PCG tail (one XRUpdate sweep)
// against the unfused three-kernel sequence it replaces. Both report
// allocs; both must be zero.
func BenchmarkFusedBlas1(b *testing.B) {
	const n = 1 << 20
	p, ap, x, r := benchVecs(n)
	e := New(n, parallel.MaxWorkers())
	alpha := 0.01
	b.Run("separate-axpy-axpy-dot", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * 8 * 5))
		for i := 0; i < b.N; i++ {
			e.Axpy(alpha, p, x)
			e.Axpy(-alpha, ap, r)
			_ = e.Dot(r, r)
		}
	})
	b.Run("fused-xrupdate", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * 8 * 5))
		for i := 0; i < b.N; i++ {
			_ = e.XRUpdate(alpha, p, ap, x, r)
		}
	})
	b.Run("separate-axpy-dot", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * 8 * 3))
		for i := 0; i < b.N; i++ {
			e.Axpy(alpha, p, x)
			_ = e.Dot(x, r)
		}
	})
	b.Run("fused-axpydot", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * 8 * 3))
		for i := 0; i < b.N; i++ {
			_ = e.AxpyDot(alpha, p, x, r)
		}
	})
}

func BenchmarkEngineDot(b *testing.B) {
	const n = 1 << 20
	p, ap, _, _ := benchVecs(n)
	e := New(n, parallel.MaxWorkers())
	b.ReportAllocs()
	b.SetBytes(int64(n * 8 * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Dot(p, ap)
	}
}
