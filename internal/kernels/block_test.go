package kernels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

func blockVecs(rng *rand.Rand, n, k int) []float64 {
	v := make([]float64, n*k)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func testMatrix(n int) *sparse.CSR {
	b := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2.5)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i+1 < n {
			b.Add(i, i+1, -1)
		}
	}
	return b.ToCSR()
}

// TestSpMMBitIdenticalToSpMV proves the pooled block product reproduces the
// pooled single-vector product bit-for-bit per column, on the forced-pooled
// path (parallelMinLen lowered) and across worker counts.
func TestSpMMBitIdenticalToSpMV(t *testing.T) {
	old := parallelMinLen
	parallelMinLen = 64
	defer func() { parallelMinLen = old }()
	rng := rand.New(rand.NewSource(5))
	n := 500
	m := testMatrix(n)
	for _, w := range []int{1, 2, 4} {
		for _, k := range []int{1, 2, 3, 4, 6, 8} {
			e := New(n, w)
			x := blockVecs(rng, n, k)
			y := make([]float64, n*k)
			e.SpMM(m, y, x, k)
			ref := make([]float64, n)
			for j := 0; j < k; j++ {
				e.SpMV(m, ref, x[j*n:(j+1)*n])
				for i := range ref {
					if y[j*n+i] != ref[i] {
						t.Fatalf("w=%d k=%d col %d row %d: %v != %v", w, k, j, i, y[j*n+i], ref[i])
					}
				}
			}
		}
	}
}

// TestBlockDot checks the fused Gram against per-pair serial dots, pooled
// and serial, and that k=1 delegates bit-identically to Dot.
func TestBlockDot(t *testing.T) {
	old := parallelMinLen
	parallelMinLen = 64
	defer func() { parallelMinLen = old }()
	rng := rand.New(rand.NewSource(9))
	n := 700
	for _, w := range []int{1, 3} {
		for _, k := range []int{1, 2, 4, 5} {
			e := New(n, w)
			a := blockVecs(rng, n, k)
			b := blockVecs(rng, n, k)
			g := make([]float64, k*k)
			e.BlockDot(a, b, k, g)
			for j := 0; j < k; j++ {
				for i := 0; i < k; i++ {
					want := SerialDot(a[i*n:(i+1)*n], b[j*n:(j+1)*n])
					got := g[i+j*k]
					if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
						t.Fatalf("w=%d k=%d G(%d,%d): got %v want %v", w, k, i, j, got, want)
					}
				}
			}
			if k == 1 && g[0] != e.Dot(a, b) {
				t.Fatalf("k=1 BlockDot not bit-identical to Dot")
			}
		}
	}
}

// TestBlockXRUpdateAndXpay checks the fused block updates against the
// scalar reference kernels applied with an explicit small-matrix multiply.
func TestBlockXRUpdateAndXpay(t *testing.T) {
	old := parallelMinLen
	parallelMinLen = 64
	defer func() { parallelMinLen = old }()
	rng := rand.New(rand.NewSource(13))
	n := 400
	for _, w := range []int{1, 4} {
		for _, k := range []int{1, 2, 3, 8} {
			e := New(n, w)
			p := blockVecs(rng, n, k)
			q := blockVecs(rng, n, k)
			x := blockVecs(rng, n, k)
			r := blockVecs(rng, n, k)
			alpha := blockVecs(rng, k, k)
			wantX := append([]float64(nil), x...)
			wantR := append([]float64(nil), r...)
			wantRR := make([]float64, k)
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					var dx, dr float64
					for l := 0; l < k; l++ {
						dx += p[l*n+i] * alpha[l+j*k]
						dr += q[l*n+i] * alpha[l+j*k]
					}
					wantX[j*n+i] += dx
					wantR[j*n+i] -= dr
					wantRR[j] += wantR[j*n+i] * wantR[j*n+i]
				}
			}
			rr := make([]float64, k)
			e.BlockXRUpdate(alpha, p, q, x, r, k, rr)
			for i := range wantX {
				if math.Abs(x[i]-wantX[i]) > 1e-12*math.Max(1, math.Abs(wantX[i])) {
					t.Fatalf("w=%d k=%d x[%d]: got %v want %v", w, k, i, x[i], wantX[i])
				}
				if math.Abs(r[i]-wantR[i]) > 1e-12*math.Max(1, math.Abs(wantR[i])) {
					t.Fatalf("w=%d k=%d r[%d]: got %v want %v", w, k, i, r[i], wantR[i])
				}
			}
			for j := range rr {
				if math.Abs(rr[j]-wantRR[j]) > 1e-9*math.Max(1, wantRR[j]) {
					t.Fatalf("w=%d k=%d rr[%d]: got %v want %v", w, k, j, rr[j], wantRR[j])
				}
			}

			z := blockVecs(rng, n, k)
			beta := blockVecs(rng, k, k)
			wantP := make([]float64, n*k)
			for j := 0; j < k; j++ {
				for i := 0; i < n; i++ {
					s := z[j*n+i]
					for l := 0; l < k; l++ {
						s += p[l*n+i] * beta[l+j*k]
					}
					wantP[j*n+i] = s
				}
			}
			e.BlockXpay(z, beta, p, k)
			for i := range wantP {
				if math.Abs(p[i]-wantP[i]) > 1e-12*math.Max(1, math.Abs(wantP[i])) {
					t.Fatalf("w=%d k=%d p[%d]: got %v want %v", w, k, i, p[i], wantP[i])
				}
			}
		}
	}
}

// TestBlockScratchPoolReuse checks the size-keyed scratch pool hands back
// buffers of the exact requested length.
func TestBlockScratchPoolReuse(t *testing.T) {
	for _, n := range []int{128, 128 * 8, 999} {
		s := GetBlockScratch(n)
		if len(s) != n {
			t.Fatalf("GetBlockScratch(%d) returned len %d", n, len(s))
		}
		PutBlockScratch(s)
		s2 := GetBlockScratch(n)
		if len(s2) != n {
			t.Fatalf("reused buffer has len %d want %d", len(s2), n)
		}
		PutBlockScratch(s2)
	}
}

// BenchmarkBlockBlas1 is the block analogue of BenchmarkFusedBlas1: the
// fused block kernels at k=8 on the pooled path. The scratch-pool fix is
// asserted the same way — allocs/op must be zero in steady state (the
// engine's k-keyed scratch is sized once, not per call).
func BenchmarkBlockBlas1(b *testing.B) {
	const n = 1 << 17
	const k = 8
	rng := rand.New(rand.NewSource(1))
	e := New(n, parallel.MaxWorkers())
	p := blockVecs(rng, n, k)
	q := blockVecs(rng, n, k)
	x := blockVecs(rng, n, k)
	r := blockVecs(rng, n, k)
	z := blockVecs(rng, n, k)
	alpha := make([]float64, k*k)
	for i := 0; i < k; i++ {
		alpha[i+i*k] = 1e-9
	}
	g := make([]float64, k*k)
	rr := make([]float64, k)
	b.Run(fmt.Sprintf("block-dot-k=%d", k), func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * k * 8 * 2))
		for i := 0; i < b.N; i++ {
			e.BlockDot(p, q, k, g)
		}
	})
	b.Run(fmt.Sprintf("block-xrupdate-k=%d", k), func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * k * 8 * 6))
		for i := 0; i < b.N; i++ {
			e.BlockXRUpdate(alpha, p, q, x, r, k, rr)
		}
	})
	b.Run(fmt.Sprintf("block-xpay-k=%d", k), func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(n * k * 8 * 3))
		for i := 0; i < b.N; i++ {
			e.BlockXpay(z, alpha, p, k)
		}
	})
}

// TestBlockBlas1ZeroAllocs is the hard assertion behind the benchmark: in
// steady state (scratch sized by a first call) the fused block kernels
// perform zero heap allocations per invocation.
func TestBlockBlas1ZeroAllocs(t *testing.T) {
	old := parallelMinLen
	parallelMinLen = 1 << 10
	defer func() { parallelMinLen = old }()
	n := 1 << 12
	const k = 8
	rng := rand.New(rand.NewSource(2))
	e := New(n, 2)
	m := testMatrix(n)
	m.PartitionPlan(2)
	p := blockVecs(rng, n, k)
	q := blockVecs(rng, n, k)
	x := blockVecs(rng, n, k)
	r := blockVecs(rng, n, k)
	alpha := make([]float64, k*k)
	g := make([]float64, k*k)
	rr := make([]float64, k)
	y := make([]float64, n*k)
	// Warm up: size the k-keyed scratch once.
	e.BlockDot(p, q, k, g)
	e.BlockXRUpdate(alpha, p, q, x, r, k, rr)
	e.BlockXpay(p, alpha, q, k)
	e.SpMM(m, y, p, k)
	allocs := testing.AllocsPerRun(20, func() {
		e.SpMM(m, y, p, k)
		e.BlockDot(p, q, k, g)
		e.BlockXRUpdate(alpha, p, q, x, r, k, rr)
		e.BlockXpay(p, alpha, q, k)
	})
	if allocs != 0 {
		t.Fatalf("block kernels allocated %.1f times per run; want 0", allocs)
	}
}
