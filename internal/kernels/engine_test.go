package kernels

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// forcePooled drops the BLAS-1 parallelism threshold so even tiny vectors
// exercise the pooled code paths, restoring it on cleanup.
func forcePooled(t *testing.T) {
	t.Helper()
	old := parallelMinLen
	parallelMinLen = 1
	t.Cleanup(func() { parallelMinLen = old })
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// randSkewedCSR returns an n x n matrix where a few rows carry most of the
// nnz, plus guaranteed empty rows — the shapes that stress partition plans.
func randSkewedCSR(rng *rand.Rand, n int) *sparse.CSR {
	cols := make([][]int, n)
	vals := make([][]float64, n)
	for i := 0; i < n; i++ {
		switch {
		case i%7 == 3: // empty row
		case i%11 == 0: // heavy row
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.8 {
					cols[i] = append(cols[i], j)
					vals[i] = append(vals[i], rng.NormFloat64())
				}
			}
		default:
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.05 {
					cols[i] = append(cols[i], j)
					vals[i] = append(vals[i], rng.NormFloat64())
				}
			}
		}
	}
	m, err := sparse.NewCSRFromRows(n, n, cols, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func relClose(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Max(1, math.Abs(want))
}

var testSizes = []int{1, 2, 3, 7, 100, 1023, 4096}

func TestEngineBlas1MatchesSerial(t *testing.T) {
	forcePooled(t)
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(42))
	const tol = 1e-13
	for _, n := range testSizes {
		for _, w := range []int{1, 2, 3, 4, 9} {
			e := NewWithPool(n, w, pool)
			a, b := randVec(rng, n), randVec(rng, n)
			if got, want := e.Dot(a, b), SerialDot(a, b); !relClose(got, want, tol) {
				t.Fatalf("n=%d w=%d Dot: got %g want %g", n, w, got, want)
			}
			if got, want := e.Norm2(a), math.Sqrt(SerialDot(a, a)); !relClose(got, want, tol) {
				t.Fatalf("n=%d w=%d Norm2: got %g want %g", n, w, got, want)
			}

			alpha := rng.NormFloat64()
			y1, y2 := append([]float64(nil), b...), append([]float64(nil), b...)
			e.Axpy(alpha, a, y1)
			SerialAxpy(alpha, a, y2)
			for i := range y1 {
				if !relClose(y1[i], y2[i], tol) {
					t.Fatalf("n=%d w=%d Axpy[%d]: got %g want %g", n, w, i, y1[i], y2[i])
				}
			}

			beta := rng.NormFloat64()
			y1, y2 = append([]float64(nil), b...), append([]float64(nil), b...)
			e.Xpay(a, beta, y1)
			SerialXpay(a, beta, y2)
			for i := range y1 {
				if !relClose(y1[i], y2[i], tol) {
					t.Fatalf("n=%d w=%d Xpay[%d]: got %g want %g", n, w, i, y1[i], y2[i])
				}
			}
		}
	}
}

func TestEngineFusedMatchesSerialSequence(t *testing.T) {
	forcePooled(t)
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(43))
	const tol = 1e-13
	for _, n := range testSizes {
		for _, w := range []int{1, 2, 4} {
			e := NewWithPool(n, w, pool)
			p, ap := randVec(rng, n), randVec(rng, n)
			x0, r0, wv := randVec(rng, n), randVec(rng, n), randVec(rng, n)
			alpha := rng.NormFloat64()

			// XRUpdate vs the unfused three-kernel sequence.
			x1, r1 := append([]float64(nil), x0...), append([]float64(nil), r0...)
			x2, r2 := append([]float64(nil), x0...), append([]float64(nil), r0...)
			rr := e.XRUpdate(alpha, p, ap, x1, r1)
			SerialAxpy(alpha, p, x2)
			SerialAxpy(-alpha, ap, r2)
			if want := SerialDot(r2, r2); !relClose(rr, want, tol) {
				t.Fatalf("n=%d w=%d XRUpdate rr: got %g want %g", n, w, rr, want)
			}
			for i := range x1 {
				if !relClose(x1[i], x2[i], tol) || !relClose(r1[i], r2[i], tol) {
					t.Fatalf("n=%d w=%d XRUpdate[%d]: x %g/%g r %g/%g", n, w, i, x1[i], x2[i], r1[i], r2[i])
				}
			}

			// AxpyDot vs Axpy followed by Dot.
			y1, y2 := append([]float64(nil), r0...), append([]float64(nil), r0...)
			got := e.AxpyDot(alpha, p, y1, wv)
			SerialAxpy(alpha, p, y2)
			if want := SerialDot(y2, wv); !relClose(got, want, tol) {
				t.Fatalf("n=%d w=%d AxpyDot: got %g want %g", n, w, got, want)
			}
		}
	}
}

func TestEngineSpMVMatchesMulVec(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 2, 17, 150, 400} {
		m := randSkewedCSR(rng, n)
		x := randVec(rng, n)
		want := make([]float64, n)
		m.MulVec(want, x)
		for _, w := range []int{1, 2, 3, 8} {
			e := NewWithPool(n, w, pool)
			got := make([]float64, n)
			e.SpMV(m, got, x)
			for i := range want {
				// The unrolled kernel sums each row in the same order on
				// every path, so parallel SpMV is bit-identical to serial.
				if got[i] != want[i] {
					t.Fatalf("n=%d w=%d SpMV[%d]: got %g want %g", n, w, i, got[i], want[i])
				}
			}
			m.InvalidatePlan()
		}
	}
}

func TestEngineConcurrentSolvesRace(t *testing.T) {
	forcePooled(t)
	rng := rand.New(rand.NewSource(45))
	const n = 512
	m := randSkewedCSR(rng, n)
	m.PartitionPlan(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			e := New(n, 4) // all goroutines hammer the shared default pool
			x, y := randVec(rng, n), make([]float64, n)
			p, ap := randVec(rng, n), randVec(rng, n)
			r := randVec(rng, n)
			for iter := 0; iter < 100; iter++ {
				e.SpMV(m, y, x)
				_ = e.Dot(x, y)
				_ = e.XRUpdate(0.01, p, ap, x, r)
				e.Xpay(y, 0.5, p)
			}
		}(int64(g))
	}
	wg.Wait()
}
