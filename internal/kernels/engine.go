// Package kernels is the high-performance execution layer of the solve hot
// path. It provides pooled, allocation-free vector (BLAS-1) and SpMV kernels
// built on the persistent worker pool of internal/parallel and the
// nnz-balanced partition plans of internal/sparse.
//
// The package exists because the PCG loop of Section 2.1 is a handful of
// memory-bound sweeps repeated thousands of times: three SpMV products (one
// with A, two inside the FSAI application) plus the BLAS-1 tail. At that
// cadence, per-call goroutine spawning, per-call closure allocation and
// unnecessary full-vector sweeps dominate. An Engine removes all three:
//
//   - kernel bodies are bound once at construction, so a dispatch performs
//     zero heap allocations;
//   - the fused kernels (AxpyDot, XRUpdate) merge the x/r updates and the
//     residual norm into single sweeps, dropping the PCG iteration from
//     ~8 full-vector passes to ~5 (see docs/performance.md for the map);
//   - reductions combine per-chunk partials in chunk order, so results are
//     deterministic for a fixed worker count, and vectors below
//     ParallelMinLen stay on the bit-identical serial path.
//
// An Engine is NOT safe for concurrent use; give each solve its own. All
// engines share the process-wide worker pool, whose busy-fallback keeps
// concurrent solves correct (they degrade to inline execution instead of
// queueing).
package kernels

import (
	"context"
	"math"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// parallelMinLen is the vector length below which the BLAS-1 kernels run
// serially: a pool dispatch costs on the order of a microsecond, which a
// sweep over a few thousand elements does not amortize. Serial execution is
// also bit-identical to the reference kernels, which keeps short solves
// (including the committed perf baseline) deterministic across hosts.
// A variable, not a constant, so tests can force the pooled path.
var parallelMinLen = 1 << 15

// ParallelMinLen reports the current BLAS-1 parallelism threshold.
func ParallelMinLen() int { return parallelMinLen }

// Engine schedules the solve-loop kernels for one solver instance. The
// operand slots plus pre-bound chunk bodies are what make steady-state
// dispatches allocation-free: methods store their arguments in the slots
// and hand the pool a func value created once in New.
type Engine struct {
	workers int
	pool    *parallel.Pool

	n       int
	vbounds []int     // equal chunks of [0,n) for the BLAS-1 sweeps
	parts   []float64 // per-chunk reduction partials

	// Operand slots, valid during one kernel call.
	ra, rb          []float64 // reduction inputs
	ax, ay          []float64 // axpy/xpay operands
	fp, fap, fx, fr []float64 // fused-update operands
	alpha, beta     float64
	sm              *sparse.CSR
	sy, sx          []float64

	// lctx is the pprof label context pooled dispatches run under (job id,
	// solver phase); nil means unlabeled. See SetLabelContext.
	lctx context.Context

	dotBody, axpyBody, xpayBody, xrBody, axpyDotBody, spmvBody func(chunk, lo, hi int)

	// blk holds the block-kernel (SpMM / blocked BLAS-1) operand slots and
	// k-dependent scratch; see block.go. Sized lazily by ensureBlock.
	blk blockState
}

// New returns an engine for vectors of length n using the given worker
// count (<=0: all CPUs) on the process-wide pool.
func New(n, workers int) *Engine {
	return NewWithPool(n, workers, parallel.Default())
}

// NewWithPool is New with an explicit pool; tests use it to exercise the
// pooled paths with a deterministic worker count.
func NewWithPool(n, workers int, pool *parallel.Pool) *Engine {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	e := &Engine{workers: workers, pool: pool, n: n}
	if workers > 1 {
		e.vbounds = parallel.Chunks(n, workers)
		e.parts = make([]float64, len(e.vbounds)/2+1)
	}
	e.dotBody = func(c, lo, hi int) {
		a, b := e.ra, e.rb
		var s0, s1 float64
		i := lo
		for ; i+2 <= hi; i += 2 {
			s0 += a[i] * b[i]
			s1 += a[i+1] * b[i+1]
		}
		if i < hi {
			s0 += a[i] * b[i]
		}
		e.parts[c] = s0 + s1
	}
	e.axpyBody = func(_, lo, hi int) {
		alpha, x, y := e.alpha, e.ax, e.ay
		for i := lo; i < hi; i++ {
			y[i] += alpha * x[i]
		}
	}
	e.xpayBody = func(_, lo, hi int) {
		beta, x, y := e.beta, e.ax, e.ay
		for i := lo; i < hi; i++ {
			y[i] = x[i] + beta*y[i]
		}
	}
	e.xrBody = func(c, lo, hi int) {
		alpha, p, ap, x, r := e.alpha, e.fp, e.fap, e.fx, e.fr
		s := 0.0
		for i := lo; i < hi; i++ {
			x[i] += alpha * p[i]
			ri := r[i] - alpha*ap[i]
			r[i] = ri
			s += ri * ri
		}
		e.parts[c] = s
	}
	e.axpyDotBody = func(c, lo, hi int) {
		alpha, x, y, w := e.alpha, e.ax, e.ay, e.ra
		s := 0.0
		for i := lo; i < hi; i++ {
			yi := y[i] + alpha*x[i]
			y[i] = yi
			s += yi * w[i]
		}
		e.parts[c] = s
	}
	e.spmvBody = func(_, lo, hi int) {
		e.sm.MulVecRange(e.sy, e.sx, lo, hi)
	}
	return e
}

// Workers returns the worker count the engine schedules for.
func (e *Engine) Workers() int { return e.workers }

// SetLabelContext makes the engine's pooled dispatches run under ctx's
// pprof labels: the persistent pool workers adopt them per dispatch, so a
// captured CPU window attributes kernel time on every participant to the
// owning job and phase, not just on the submitting goroutine. A nil ctx
// (or one without labels) leaves dispatches unlabeled. Costs nothing per
// dispatch beyond two label swaps on each woken worker.
func (e *Engine) SetLabelContext(ctx context.Context) { e.lctx = ctx }

// parallelVec reports whether a BLAS-1 sweep of length n should be pooled.
func (e *Engine) parallelVec(n int) bool {
	return e.workers > 1 && n >= parallelMinLen && len(e.vbounds) > 2
}

// run dispatches body over the engine's vector chunks, containing worker
// panics back onto the caller (matching parallel.For semantics).
func (e *Engine) run(body func(chunk, lo, hi int)) {
	if err := e.pool.RunLabeled(e.vbounds, body, e.lctx); err != nil {
		panic(err)
	}
}

// sumParts combines the per-chunk reduction partials in chunk order.
func (e *Engine) sumParts() float64 {
	s := 0.0
	for c := 0; c < len(e.vbounds)/2; c++ {
		s += e.parts[c]
	}
	return s
}

// SpMV computes y = m x, scheduling the matrix's nnz-balanced partition
// plan on the pool (serial for one worker). Results are bit-identical to
// m.MulVec for any worker count.
func (e *Engine) SpMV(m *sparse.CSR, y, x []float64) {
	m.AccountSpMV()
	if e.workers <= 1 {
		m.MulVecRange(y, x, 0, m.Rows)
		return
	}
	pl := m.PartitionPlan(e.workers)
	if pl.NChunks() <= 1 {
		m.MulVecRange(y, x, 0, m.Rows)
		return
	}
	e.sm, e.sy, e.sx = m, y, x
	if err := e.pool.RunLabeled(pl.Bounds, e.spmvBody, e.lctx); err != nil {
		panic(err)
	}
	e.sm, e.sy, e.sx = nil, nil, nil
}

// Dot returns aᵀb.
func (e *Engine) Dot(a, b []float64) float64 {
	sparse.AccountBlas1(2*int64(len(a)), 16*int64(len(a)))
	if !e.parallelVec(len(a)) {
		return SerialDot(a, b)
	}
	e.ra, e.rb = a, b
	e.run(e.dotBody)
	e.ra, e.rb = nil, nil
	return e.sumParts()
}

// Norm2 returns ‖a‖₂.
func (e *Engine) Norm2(a []float64) float64 { return math.Sqrt(e.Dot(a, a)) }

// Axpy computes y += alpha x.
func (e *Engine) Axpy(alpha float64, x, y []float64) {
	sparse.AccountBlas1(2*int64(len(x)), 24*int64(len(x)))
	if !e.parallelVec(len(x)) {
		SerialAxpy(alpha, x, y)
		return
	}
	e.alpha, e.ax, e.ay = alpha, x, y
	e.run(e.axpyBody)
	e.ax, e.ay = nil, nil
}

// Xpay computes y = x + beta y (the CG search-direction update).
func (e *Engine) Xpay(x []float64, beta float64, y []float64) {
	sparse.AccountBlas1(2*int64(len(x)), 24*int64(len(x)))
	if !e.parallelVec(len(x)) {
		SerialXpay(x, beta, y)
		return
	}
	e.beta, e.ax, e.ay = beta, x, y
	e.run(e.xpayBody)
	e.ax, e.ay = nil, nil
}

// AxpyDot computes y += alpha x and returns yᵀw in the same sweep.
func (e *Engine) AxpyDot(alpha float64, x, y, w []float64) float64 {
	sparse.AccountBlas1(4*int64(len(x)), 32*int64(len(x)))
	if !e.parallelVec(len(x)) {
		return SerialAxpyDot(alpha, x, y, w)
	}
	e.alpha, e.ax, e.ay, e.ra = alpha, x, y, w
	e.run(e.axpyDotBody)
	e.ax, e.ay, e.ra = nil, nil, nil
	return e.sumParts()
}

// XRUpdate is the fused PCG iterate/residual update: x += alpha p,
// r -= alpha ap, returning rᵀr — one sweep where the textbook loop spends
// three (two AXPYs plus a norm). On the serial path the per-element
// operation order matches the three separate reference kernels exactly, so
// fusing changes no bits.
func (e *Engine) XRUpdate(alpha float64, p, ap, x, r []float64) float64 {
	sparse.AccountBlas1(6*int64(len(p)), 48*int64(len(p)))
	if !e.parallelVec(len(p)) {
		return SerialXRUpdate(alpha, p, ap, x, r)
	}
	e.alpha, e.fp, e.fap, e.fx, e.fr = alpha, p, ap, x, r
	e.run(e.xrBody)
	e.fp, e.fap, e.fx, e.fr = nil, nil, nil, nil
	return e.sumParts()
}

// Serial reference kernels. These are the semantics the pooled/fused paths
// must reproduce (the property tests in this package hold them to 1e-13
// relative agreement); they are exported for callers that want guaranteed
// serial execution.

// SerialDot returns aᵀb with straight-line accumulation.
func SerialDot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SerialAxpy computes y += alpha x.
func SerialAxpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

// SerialXpay computes y = x + beta y.
func SerialXpay(x []float64, beta float64, y []float64) {
	for i := range x {
		y[i] = x[i] + beta*y[i]
	}
}

// SerialAxpyDot computes y += alpha x and returns yᵀw.
func SerialAxpyDot(alpha float64, x, y, w []float64) float64 {
	s := 0.0
	for i := range x {
		yi := y[i] + alpha*x[i]
		y[i] = yi
		s += yi * w[i]
	}
	return s
}

// SerialXRUpdate computes x += alpha p, r -= alpha ap and returns rᵀr.
func SerialXRUpdate(alpha float64, p, ap, x, r []float64) float64 {
	s := 0.0
	for i := range p {
		x[i] += alpha * p[i]
		ri := r[i] - alpha*ap[i]
		r[i] = ri
		s += ri * ri
	}
	return s
}

// PoolDispatches returns the cumulative pooled-dispatch count of the
// process-wide worker pool; the solver publishes the per-solve delta as the
// "kernels.pool.dispatches" counter.
func PoolDispatches() int64 { return parallel.Default().Dispatches() }

// PoolInlineRuns returns how many dispatches degraded to inline execution
// because the pool was busy (concurrent or nested kernels).
func PoolInlineRuns() int64 { return parallel.Default().InlineRuns() }
