package precond

import (
	"fmt"

	"repro/internal/sparse"
)

// Chebyshev is the polynomial preconditioner M⁻¹ = p(A), with p the degree-d
// Chebyshev polynomial minimizing the residual over an eigenvalue interval
// [lo, hi]. Like FSAI it applies through SpMV only (d products per
// application) — the other classic answer to "triangular solves don't
// parallelize" — but unlike FSAI it needs spectrum bounds and pays d SpMVs
// per PCG iteration. The spectral package's Lanczos estimator supplies the
// bounds.
type Chebyshev struct {
	a       *sparse.CSR
	degree  int
	lo, hi  float64
	tmp     [3][]float64
	workers int
}

// NewChebyshev builds a degree-d Chebyshev preconditioner for A with
// eigenvalue bounds [lo, hi] (lo > 0). Bounds need not be tight; loose
// bounds only weaken the polynomial.
func NewChebyshev(a *sparse.CSR, degree int, lo, hi float64) (*Chebyshev, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: Chebyshev needs a square matrix")
	}
	if degree < 1 {
		return nil, fmt.Errorf("precond: Chebyshev degree %d < 1", degree)
	}
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("precond: invalid spectrum bounds [%g, %g]", lo, hi)
	}
	c := &Chebyshev{a: a, degree: degree, lo: lo, hi: hi}
	for i := range c.tmp {
		c.tmp[i] = make([]float64, a.Rows)
	}
	return c, nil
}

// Apply computes z ≈ A⁻¹ r with the standard Chebyshev semi-iteration
// (Saad, Iterative Methods for Sparse Linear Systems, Alg. 12.1) on
// A z = r starting from z = 0. The result is a fixed polynomial in A times
// r, hence a symmetric positive definite preconditioner suitable for CG.
func (c *Chebyshev) Apply(z, r []float64) {
	theta := (c.hi + c.lo) / 2
	delta := (c.hi - c.lo) / 2
	n := c.a.Rows
	d, ap, res := c.tmp[0], c.tmp[1], c.tmp[2]

	sigma1 := theta / delta
	rho := 1 / sigma1
	// First step: z = d = r/theta.
	for i := 0; i < n; i++ {
		z[i] = r[i] / theta
		d[i] = z[i]
	}
	for k := 2; k <= c.degree; k++ {
		// res = r - A z
		c.a.MulVec(ap, z)
		for i := 0; i < n; i++ {
			res[i] = r[i] - ap[i]
		}
		rhoNew := 1 / (2*sigma1 - rho)
		for i := 0; i < n; i++ {
			d[i] = rhoNew*rho*d[i] + 2*rhoNew/delta*res[i]
			z[i] += d[i]
		}
		rho = rhoNew
	}
}

// Degree returns the polynomial degree (SpMV products per application).
func (c *Chebyshev) Degree() int { return c.degree }
