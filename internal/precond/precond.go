// Package precond implements the classical preconditioners the paper's
// introduction positions FSAI against: incomplete Cholesky IC(0), SSOR and
// block-Jacobi. All satisfy krylov.Preconditioner.
//
// The contrast they provide is the paper's motivation: IC(0)/SSOR apply
// through *triangular solves*, which are inherently sequential, while FSAI
// applies through two SpMV products that parallelize trivially — and whose
// memory behaviour the cache-aware pattern extension then optimizes.
package precond

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/parallel"
	"repro/internal/sparse"
)

// ErrBreakdown is returned when an incomplete factorization hits a
// non-positive pivot.
var ErrBreakdown = errors.New("precond: factorization breakdown (non-positive pivot)")

// IC0 is the zero-fill incomplete Cholesky preconditioner: L has exactly
// the lower-triangular pattern of A and A ≈ L Lᵀ. Application solves
// L y = r, Lᵀ z = y.
type IC0 struct {
	l  *sparse.CSR // lower triangular factor, diagonal last per row
	lt *sparse.CSR // its transpose (upper triangular), for the back solve
}

// NewIC0 computes the IC(0) factorization of the SPD matrix a. It returns
// ErrBreakdown when a pivot becomes non-positive (possible for general SPD
// matrices; classical shifts are the usual remedy and can be applied by the
// caller via a.AddDiag).
func NewIC0(a *sparse.CSR) (*IC0, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: IC0 needs a square matrix")
	}
	n := a.Rows
	l := a.Lower() // copies values; pattern fixed at lower(A)
	// Row-oriented up-looking IC(0): for each row i, for each k < i in the
	// row pattern, subtract the inner product of rows i and k restricted to
	// the pattern, then scale.
	for i := 0; i < n; i++ {
		cols, vals := l.Row(i)
		m := len(cols)
		if m == 0 || cols[m-1] != i {
			return nil, fmt.Errorf("precond: row %d lacks a diagonal entry", i)
		}
		for ki, k := range cols[:m-1] {
			// l(i,k) = (a(i,k) - sum_{j<k} l(i,j) l(k,j)) / l(k,k)
			kcols, kvals := l.Row(k)
			s := vals[ki]
			// Two-pointer dot over shared columns j < k.
			x, y := 0, 0
			for x < ki && y < len(kcols) && kcols[y] < k {
				switch {
				case cols[x] == kcols[y]:
					s -= vals[x] * kvals[y]
					x++
					y++
				case cols[x] < kcols[y]:
					x++
				default:
					y++
				}
			}
			vals[ki] = s / kvals[len(kvals)-1]
		}
		// Diagonal: l(i,i) = sqrt(a(i,i) - sum_j l(i,j)^2).
		d := vals[m-1]
		for _, v := range vals[:m-1] {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrBreakdown
		}
		vals[m-1] = math.Sqrt(d)
	}
	return &IC0{l: l, lt: l.Transpose()}, nil
}

// Apply computes z = (L Lᵀ)⁻¹ r via forward and backward triangular solves.
func (p *IC0) Apply(z, r []float64) {
	n := p.l.Rows
	// Forward: L y = r (diagonal is the last entry of each row of l).
	for i := 0; i < n; i++ {
		cols, vals := p.l.Row(i)
		s := r[i]
		m := len(cols)
		for k := 0; k < m-1; k++ {
			s -= vals[k] * z[cols[k]]
		}
		z[i] = s / vals[m-1]
	}
	// Backward: Lᵀ z = y. lt is upper triangular with the diagonal first
	// in each row.
	for i := n - 1; i >= 0; i-- {
		cols, vals := p.lt.Row(i)
		s := z[i]
		for k := 1; k < len(cols); k++ {
			s -= vals[k] * z[cols[k]]
		}
		z[i] = s / vals[0]
	}
}

// NNZ returns the stored entries of the factor.
func (p *IC0) NNZ() int { return p.l.NNZ() }

// SSOR is the symmetric successive over-relaxation preconditioner
// M = (D/ω + L) (D/ω)⁻¹ (D/ω + L)ᵀ scaled by 1/(2-ω), with L the strict
// lower triangle of A.
type SSOR struct {
	lower   *sparse.CSR // lower triangle including diagonal
	upper   *sparse.CSR // transpose
	invDiag []float64
	omega   float64
}

// NewSSOR builds the SSOR preconditioner for SPD a with relaxation omega in
// (0, 2). omega == 1 gives symmetric Gauss-Seidel.
func NewSSOR(a *sparse.CSR, omega float64) (*SSOR, error) {
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("precond: SSOR omega %g outside (0,2)", omega)
	}
	d := a.Diag()
	inv := make([]float64, len(d))
	for i, v := range d {
		if v <= 0 {
			return nil, ErrBreakdown
		}
		inv[i] = 1 / v
	}
	lo := a.Lower()
	return &SSOR{lower: lo, upper: lo.Transpose(), invDiag: inv, omega: omega}, nil
}

// Apply computes z = M⁻¹ r: forward sweep with (D/ω + L), diagonal scale,
// backward sweep with (D/ω + L)ᵀ, times (2-ω)/ω adjustments folded in.
func (p *SSOR) Apply(z, r []float64) {
	n := p.lower.Rows
	w := p.omega
	// Forward solve (D/w + L) y = r.
	for i := 0; i < n; i++ {
		cols, vals := p.lower.Row(i)
		s := r[i]
		m := len(cols)
		for k := 0; k < m-1; k++ {
			s -= vals[k] * z[cols[k]]
		}
		z[i] = s * w * p.invDiag[i]
	}
	// Scale by D/w and weight (2-w).
	for i := 0; i < n; i++ {
		z[i] *= (2 - w) / (w * p.invDiag[i])
	}
	// Backward solve (D/w + U) z = y', U = Lᵀ strict part. upper rows have
	// the diagonal first.
	for i := n - 1; i >= 0; i-- {
		cols, vals := p.upper.Row(i)
		s := z[i]
		for k := 1; k < len(cols); k++ {
			s -= vals[k] * z[cols[k]]
		}
		z[i] = s * w * p.invDiag[i]
	}
}

// BlockJacobi is the block-diagonal preconditioner: A's diagonal blocks of
// the given size are extracted, Cholesky-factorized at setup, and applied
// with dense triangular solves. Blocks are independent, so Apply fans the
// solves out over Workers goroutines.
type BlockJacobi struct {
	n, bs   int
	factors [][]float64 // per block, column-major Cholesky factor

	// Workers bounds Apply's parallelism, following the krylov convention:
	// <=0 means all CPUs, 1 means serial.
	Workers int
}

// NewBlockJacobi builds the preconditioner with blocks of size bs (the last
// block may be smaller). It returns ErrBreakdown if a block is not SPD.
func NewBlockJacobi(a *sparse.CSR, bs int) (*BlockJacobi, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("precond: BlockJacobi needs a square matrix")
	}
	if bs < 1 {
		return nil, fmt.Errorf("precond: block size %d < 1", bs)
	}
	n := a.Rows
	p := &BlockJacobi{n: n, bs: bs}
	idx := make([]int, bs)
	for lo := 0; lo < n; lo += bs {
		hi := lo + bs
		if hi > n {
			hi = n
		}
		m := hi - lo
		idx = idx[:m]
		for k := range idx {
			idx[k] = lo + k
		}
		blk := a.Extract(idx, nil)
		if err := dense.Cholesky(blk, m); err != nil {
			return nil, ErrBreakdown
		}
		p.factors = append(p.factors, blk)
	}
	return p, nil
}

// Apply computes z = M⁻¹ r blockwise. Blocks touch disjoint slices of z, so
// the solves run in parallel on the worker pool when Workers allows it.
func (p *BlockJacobi) Apply(z, r []float64) {
	copy(z, r)
	solve := func(b int) {
		blk := p.factors[b]
		lo := b * p.bs
		hi := lo + p.bs
		if hi > p.n {
			hi = p.n
		}
		dense.CholeskySolve(blk, hi-lo, z[lo:hi])
	}
	w := p.Workers
	if w <= 0 {
		w = parallel.MaxWorkers()
	}
	if w == 1 || len(p.factors) == 1 {
		for b := range p.factors {
			solve(b)
		}
		return
	}
	parallel.For(len(p.factors), w, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			solve(b)
		}
	})
}
