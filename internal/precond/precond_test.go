package precond

import (
	"math"
	"testing"

	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/sparse"
)

func solveWith(t *testing.T, a *sparse.CSR, m krylov.Preconditioner) krylov.Result {
	t.Helper()
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	res := krylov.Solve(a, x, b, m, krylov.DefaultOptions())
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	return res
}

func TestIC0ExactOnTridiagonalIsExactCholesky(t *testing.T) {
	// A tridiagonal SPD matrix has a tridiagonal Cholesky factor, so IC(0)
	// on the lower(A) pattern is the exact factorization: PCG converges in
	// one or two iterations.
	n := 50
	bld := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		bld.Add(i, i, 2.5)
		if i > 0 {
			bld.Add(i, i-1, -1)
		}
		if i < n-1 {
			bld.Add(i, i+1, -1)
		}
	}
	a := bld.ToCSR()
	p, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	res := solveWith(t, a, p)
	if res.Iterations > 2 {
		t.Errorf("exact IC0 took %d iterations", res.Iterations)
	}
	// And the factor actually reproduces A: L Lᵀ == A elementwise.
	lt := p.l.Transpose()
	for i := 0; i < n; i++ {
		for j := i - 1; j <= i+1; j++ {
			if j < 0 || j >= n {
				continue
			}
			s := 0.0
			// (L Lᵀ)(i,j) = Σ_k L(i,k) L(j,k)
			ci, vi := p.l.Row(i)
			for k, c := range ci {
				s += vi[k] * lt.At(c, j)
			}
			if math.Abs(s-a.At(i, j)) > 1e-10 {
				t.Fatalf("LLᵀ(%d,%d)=%g, A=%g", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestIC0BeatsPlainCG(t *testing.T) {
	a := matgen.Laplace2D(24, 24)
	p, err := NewIC0(a)
	if err != nil {
		t.Fatal(err)
	}
	ic := solveWith(t, a, p)
	plain := solveWith(t, a, nil)
	if ic.Iterations >= plain.Iterations {
		t.Errorf("IC0 %d vs plain %d iterations", ic.Iterations, plain.Iterations)
	}
	if p.NNZ() != a.Lower().NNZ() {
		t.Error("IC0 changed the pattern")
	}
}

func TestIC0Errors(t *testing.T) {
	rect, _ := sparse.NewCSRFromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewIC0(rect); err == nil {
		t.Error("rectangular accepted")
	}
	// Indefinite: breakdown.
	ind, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 1, Val: 1},
	})
	if _, err := NewIC0(ind); err == nil {
		t.Error("indefinite accepted")
	}
	// Missing diagonal.
	nod, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{{Row: 1, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1}})
	if _, err := NewIC0(nod); err == nil {
		t.Error("missing diagonal accepted")
	}
}

func TestSSOR(t *testing.T) {
	a := matgen.Laplace2D(20, 20)
	p, err := NewSSOR(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	ssor := solveWith(t, a, p)
	plain := solveWith(t, a, nil)
	if ssor.Iterations >= plain.Iterations {
		t.Errorf("SSOR %d vs plain %d iterations", ssor.Iterations, plain.Iterations)
	}
	if _, err := NewSSOR(a, 2.5); err == nil {
		t.Error("omega out of range accepted")
	}
	if _, err := NewSSOR(a, 0); err == nil {
		t.Error("omega 0 accepted")
	}
}

func TestSSORSymmetry(t *testing.T) {
	// The preconditioner must be symmetric for CG: check ⟨M⁻¹u, v⟩ ==
	// ⟨u, M⁻¹v⟩ on random vectors.
	a := matgen.Wathen(4, 4, 3)
	p, err := NewSSOR(a, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range u {
		u[i] = float64((i*37)%11) - 5
		v[i] = float64((i*17)%7) - 3
	}
	mu := make([]float64, n)
	mv := make([]float64, n)
	p.Apply(mu, u)
	p.Apply(mv, v)
	left := krylov.Dot(mu, v)
	right := krylov.Dot(u, mv)
	if math.Abs(left-right) > 1e-8*(1+math.Abs(left)) {
		t.Errorf("SSOR not symmetric: %g vs %g", left, right)
	}
}

func TestBlockJacobi(t *testing.T) {
	a := matgen.Elasticity2D(12, 12, 50)
	for _, bs := range []int{1, 2, 8, 32} {
		p, err := NewBlockJacobi(a, bs)
		if err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
		res := solveWith(t, a, p)
		t.Logf("block size %2d: %d iterations", bs, res.Iterations)
	}
	// Block size 1 equals point Jacobi.
	p1, _ := NewBlockJacobi(a, 1)
	j := krylov.NewJacobi(a)
	r := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i%9) - 4
	}
	z1 := make([]float64, a.Rows)
	z2 := make([]float64, a.Rows)
	p1.Apply(z1, r)
	j.Apply(z2, r)
	for i := range z1 {
		if math.Abs(z1[i]-z2[i]) > 1e-12 {
			t.Fatalf("BlockJacobi(1) != Jacobi at %d", i)
		}
	}
}

func TestBlockJacobiLargerBlocksNoWorse(t *testing.T) {
	a := matgen.Laplace2D(16, 16)
	var prev int
	for i, bs := range []int{1, 4, 16} {
		p, err := NewBlockJacobi(a, bs)
		if err != nil {
			t.Fatal(err)
		}
		res := solveWith(t, a, p)
		if i > 0 && res.Iterations > prev+2 {
			t.Errorf("bs=%d: %d iterations worse than smaller block %d", bs, res.Iterations, prev)
		}
		prev = res.Iterations
	}
}

func TestBlockJacobiErrors(t *testing.T) {
	a := matgen.Laplace2D(4, 4)
	if _, err := NewBlockJacobi(a, 0); err == nil {
		t.Error("block size 0 accepted")
	}
	rect, _ := sparse.NewCSRFromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := NewBlockJacobi(rect, 2); err == nil {
		t.Error("rectangular accepted")
	}
	ind, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: -1},
	})
	if _, err := NewBlockJacobi(ind, 2); err == nil {
		t.Error("indefinite accepted")
	}
}
