package precond

import (
	"math"
	"testing"

	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/spectral"
)

func TestChebyshevErrors(t *testing.T) {
	a := matgen.Laplace2D(4, 4)
	if _, err := NewChebyshev(a, 0, 1, 2); err == nil {
		t.Error("degree 0 accepted")
	}
	if _, err := NewChebyshev(a, 3, 0, 2); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := NewChebyshev(a, 3, 2, 1); err == nil {
		t.Error("hi<lo accepted")
	}
}

func TestChebyshevApproximatesInverseOnDiagonal(t *testing.T) {
	// On a well-separated diagonal system with exact bounds and enough
	// degree, p(A)r approaches A⁻¹r.
	n := 16
	b := matgen.MassMatrix1D(n, 1) // tridiagonal, eigenvalues in [2/6, 6/6]·h
	lo, hi := 1.0/3-0.17, 1.0+0.01
	p, err := NewChebyshev(b, 24, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = float64(i%5) - 2
	}
	z := make([]float64, n)
	p.Apply(z, r)
	// Check residual ||A z - r|| small.
	az := make([]float64, n)
	b.MulVec(az, z)
	num, den := 0.0, 0.0
	for i := range r {
		num += (az[i] - r[i]) * (az[i] - r[i])
		den += r[i] * r[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-3 {
		t.Errorf("degree-24 Chebyshev residual %g too large", rel)
	}
}

func TestChebyshevSymmetric(t *testing.T) {
	a := matgen.Laplace2D(10, 10)
	ext, err := spectral.CondOfMatrix(a, 40)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewChebyshev(a, 6, ext.Min*0.9, ext.Max*1.1)
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range u {
		u[i] = math.Sin(float64(2 * i))
		v[i] = math.Cos(float64(5 * i))
	}
	mu := make([]float64, n)
	mv := make([]float64, n)
	p.Apply(mu, u)
	p.Apply(mv, v)
	l, r := krylov.Dot(mu, v), krylov.Dot(u, mv)
	if math.Abs(l-r) > 1e-8*(1+math.Abs(l)) {
		t.Errorf("Chebyshev not symmetric: %g vs %g", l, r)
	}
	if krylov.Dot(mu, u) <= 0 {
		t.Error("Chebyshev not positive definite")
	}
}

func TestChebyshevAcceleratesCG(t *testing.T) {
	// Lanczos-estimated bounds feed the polynomial; PCG iterations must
	// fall well below plain CG and shrink with the degree.
	a := matgen.Laplace2D(32, 32)
	ext, err := spectral.CondOfMatrix(a, 60)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	plain := krylov.Solve(a, x, b, nil, krylov.DefaultOptions())
	iters := map[int]int{}
	for _, deg := range []int{2, 4, 8, 16} {
		p, err := NewChebyshev(a, deg, ext.Min*0.9, ext.Max*1.1)
		if err != nil {
			t.Fatal(err)
		}
		res := krylov.Solve(a, x, b, p, krylov.DefaultOptions())
		if !res.Converged {
			t.Fatalf("degree %d did not converge", deg)
		}
		t.Logf("degree %d: %d iterations (plain %d)", deg, res.Iterations, plain.Iterations)
		// Every degree must beat plain CG; iteration counts per degree are
		// not strictly monotone with inexact bounds, but high degrees must
		// beat low ones substantially.
		if res.Iterations >= plain.Iterations {
			t.Errorf("degree %d (%d iters) no better than plain CG (%d)", deg, res.Iterations, plain.Iterations)
		}
		iters[deg] = res.Iterations
	}
	if iters[16] >= iters[2] {
		t.Errorf("degree 16 (%d) should beat degree 2 (%d)", iters[16], iters[2])
	}
	if iters[16] > plain.Iterations/3 {
		t.Errorf("degree 16 (%d) should cut plain CG (%d) at least 3x", iters[16], plain.Iterations)
	}
}
