package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	// Empty histogram.
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil quantile = %g, want 0", got)
	}
	empty := newHistogram([]float64{1, 2})
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}

	// Single bucket: uniform interpolation between 0 and the bound.
	single := newHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		single.Observe(3)
	}
	if got := single.Quantile(0.5); got != 5 {
		t.Fatalf("single-bucket p50 = %g, want 5", got)
	}
	if got := single.Quantile(1); got != 10 {
		t.Fatalf("single-bucket p100 = %g, want 10", got)
	}

	// Two buckets: p50 at the boundary, p75 mid second bucket.
	h := newHistogram([]float64{1, 3})
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(2)
	h.Observe(2)
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %g, want 1", got)
	}
	if got := h.Quantile(0.75); got != 2 {
		t.Fatalf("p75 = %g, want 2 (midpoint of (1,3])", got)
	}

	// Out-of-range q clamps.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Fatalf("q<0 not clamped: %g vs %g", got, h.Quantile(0))
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Fatalf("q>1 not clamped: %g vs %g", got, h.Quantile(1))
	}

	// Overflow bucket: quantiles above the last finite bound report it.
	over := newHistogram([]float64{1})
	over.Observe(100)
	over.Observe(100)
	if got := over.Quantile(0.5); got != 1 {
		t.Fatalf("overflow quantile = %g, want last finite bound 1", got)
	}

	// Explicit +Inf bucket behaves like the overflow bucket.
	inf := newHistogram([]float64{1, math.Inf(1)})
	inf.Observe(0.5)
	inf.Observe(50)
	inf.Observe(50)
	if got := inf.Quantile(0.9); got != 1 {
		t.Fatalf("+Inf-bucket quantile = %g, want last finite bound 1", got)
	}
	if got := inf.Quantile(0); got != 0 {
		// rank 0 lands at frac 0 of the first bucket (0,1] → its lower edge.
		t.Fatalf("+Inf-bucket q0 = %g, want 0", got)
	}
}

func TestParseMetricName(t *testing.T) {
	fam, labels := parseMetricName("krylov.iter.spmv_ns")
	if fam != "krylov_iter_spmv_ns" || len(labels) != 0 {
		t.Fatalf("got %q %v", fam, labels)
	}
	fam, labels = parseMetricName(`cachesim.x_misses{phase="G",entries=fill}`)
	if fam != "cachesim_x_misses" {
		t.Fatalf("family = %q", fam)
	}
	if len(labels) != 2 || labels[0] != (labelPair{"phase", "G"}) || labels[1] != (labelPair{"entries", "fill"}) {
		t.Fatalf("labels = %v", labels)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`solve.iterations{variant="FSAIE(full)"}`).Add(42)
	r.Counter(`solve.iterations{variant="FSAI"}`).Add(58)
	r.Gauge("solve.relres").Set(1.5e-9)
	h := r.Histogram("krylov.iter.spmv_ns", []float64{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000)
	r.SetHelp("solve_iterations", "PCG iterations per variant")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP solve_iterations PCG iterations per variant\n",
		"# TYPE solve_iterations counter\n",
		`solve_iterations{variant="FSAI"} 58` + "\n",
		`solve_iterations{variant="FSAIE(full)"} 42` + "\n",
		"# TYPE solve_relres gauge\n",
		"solve_relres 1.5e-09\n",
		"# TYPE krylov_iter_spmv_ns histogram\n",
		`krylov_iter_spmv_ns_bucket{le="100"} 1` + "\n",
		`krylov_iter_spmv_ns_bucket{le="1000"} 2` + "\n",
		`krylov_iter_spmv_ns_bucket{le="+Inf"} 3` + "\n",
		"krylov_iter_spmv_ns_sum 5550\n",
		"krylov_iter_spmv_ns_count 3\n",
		"# TYPE krylov_iter_spmv_ns_p50 gauge\n",
		"# TYPE krylov_iter_spmv_ns_p95 gauge\n",
		"# TYPE krylov_iter_spmv_ns_p99 gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// One header per family, not per labelled series.
	if strings.Count(out, "# TYPE solve_iterations counter") != 1 {
		t.Errorf("family header repeated:\n%s", out)
	}
	// Nil registry writes nothing.
	var nilR *Registry
	sb.Reset()
	if err := nilR.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry: err=%v out=%q", err, sb.String())
	}
}

func TestWriteTextIncludesQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10})
	h.Observe(4)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "p50=") || !strings.Contains(sb.String(), "p99=") {
		t.Fatalf("WriteText missing quantiles: %q", sb.String())
	}
}
