package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// PublishRuntimeMetrics samples the Go runtime once into r: goroutine
// count, heap usage and GC activity, under the "go.*" family. Safe on a
// nil registry (no-op). Long-running processes call StartRuntimeMetrics
// instead; one-shot tools can call this right before snapshotting.
func PublishRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.SetHelp("go_goroutines", "goroutines currently live in the process")
	r.SetHelp("go_heap_alloc_bytes", "heap bytes allocated and still in use")
	r.SetHelp("go_heap_sys_bytes", "heap bytes obtained from the OS")
	r.SetHelp("go_heap_objects", "allocated heap objects")
	r.SetHelp("go_gc_num", "completed GC cycles")
	r.SetHelp("go_gc_pause_total_ns", "cumulative GC stop-the-world pause nanoseconds")
	r.SetHelp("go_gc_last_pause_ns", "duration of the most recent GC pause")
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("go.goroutines").Set(float64(runtime.NumGoroutine()))
	r.Gauge("go.heap.alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("go.heap.sys_bytes").Set(float64(ms.HeapSys))
	r.Gauge("go.heap.objects").Set(float64(ms.HeapObjects))
	r.Gauge("go.gc.num").Set(float64(ms.NumGC))
	r.Gauge("go.gc.pause_total_ns").Set(float64(ms.PauseTotalNs))
	if ms.NumGC > 0 {
		r.Gauge("go.gc.last_pause_ns").Set(float64(ms.PauseNs[(ms.NumGC+255)%256]))
	}
}

// StartRuntimeMetrics publishes the runtime gauges into r now and then
// every interval (default 5s) until the returned stop function is called.
// The sampler goroutine holds no locks between ticks, so stopping is
// immediate. Safe on a nil registry: returns a no-op stop.
func StartRuntimeMetrics(r *Registry, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	PublishRuntimeMetrics(r)
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				PublishRuntimeMetrics(r)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
