package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestTracerHierarchy(t *testing.T) {
	var sink strings.Builder
	tr := NewTracer(&sink)

	root := tr.StartSpan("setup")
	a := tr.StartSpan("base-pattern")
	time.Sleep(time.Millisecond)
	a.End()
	b := tr.StartSpan("extend")
	bb := tr.StartSpan("precalc")
	bb.End()
	b.End()
	root.End()

	report := tr.Report()
	if len(report) != 1 {
		t.Fatalf("roots = %d, want 1", len(report))
	}
	r := report[0]
	if r.Name != "setup" || len(r.Children) != 2 {
		t.Fatalf("tree = %+v", r)
	}
	if r.Children[0].Name != "base-pattern" || r.Children[1].Name != "extend" {
		t.Fatalf("children = %+v", r.Children)
	}
	if len(r.Children[1].Children) != 1 || r.Children[1].Children[0].Name != "precalc" {
		t.Fatalf("grandchildren = %+v", r.Children[1].Children)
	}
	if r.NS <= 0 || r.Children[0].NS <= 0 {
		t.Fatalf("durations not recorded: %+v", r)
	}
	if r.NS < r.Children[0].NS {
		t.Fatal("parent shorter than child")
	}

	phases := tr.PhaseNanos()
	for _, name := range []string{"setup", "base-pattern", "extend", "precalc"} {
		if _, ok := phases[name]; !ok {
			t.Fatalf("PhaseNanos missing %q: %v", name, phases)
		}
	}

	out := sink.String()
	for _, want := range []string{"setup", "  base-pattern", "    precalc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sink rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTracerEndClosesOpenChildren(t *testing.T) {
	tr := NewTracer(nil)
	root := tr.StartSpan("root")
	tr.StartSpan("leaked") // never ended explicitly
	root.End()
	report := tr.Report()
	if len(report) != 1 || len(report[0].Children) != 1 {
		t.Fatalf("report = %+v", report)
	}
	if report[0].Children[0].NS < 0 {
		t.Fatal("leaked child has negative duration")
	}
	next := tr.StartSpan("second-root")
	next.End()
	if len(tr.Report()) != 2 {
		t.Fatal("tracer not reusable after defensive close")
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil tracer should produce nil span")
	}
	if d := s.End(); d != 0 {
		t.Fatal("nil span End should be 0")
	}
	if s.Duration() != 0 {
		t.Fatal("nil span Duration should be 0")
	}
	if tr.Report() != nil || tr.PhaseNanos() != nil {
		t.Fatal("nil tracer report should be nil")
	}
	tr.Reset() // must not panic
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(nil)
	tr.StartSpan("a").End()
	tr.Reset()
	if len(tr.Report()) != 0 {
		t.Fatal("Reset should drop recorded spans")
	}
}

// BenchmarkNilSpan documents the disabled-path cost: a nil check only.
func BenchmarkNilSpan(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.StartSpan("x").End()
	}
}
