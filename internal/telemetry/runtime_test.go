package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestPublishRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	PublishRuntimeMetrics(r)
	snap := r.Snapshot()
	for _, name := range []string{
		"go.goroutines",
		"go.heap.alloc_bytes",
		"go.heap.sys_bytes",
		"go.heap.objects",
		"go.gc.num",
		"go.gc.pause_total_ns",
	} {
		g, ok := snap.Gauges[name]
		if !ok {
			t.Fatalf("gauge %q not published; have %v", name, snap.Gauges)
		}
		if name == "go.goroutines" && g < 1 {
			t.Errorf("go.goroutines = %v, want >= 1", g)
		}
		if name == "go.heap.alloc_bytes" && g <= 0 {
			t.Errorf("go.heap.alloc_bytes = %v, want > 0", g)
		}
	}
}

func TestPublishRuntimeMetricsNilRegistry(t *testing.T) {
	PublishRuntimeMetrics(nil) // must not panic
	stop := StartRuntimeMetrics(nil, time.Millisecond)
	stop()
	stop() // idempotent
}

func TestStartRuntimeMetricsSamples(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeMetrics(r, time.Millisecond)
	defer stop()
	// The first sample is synchronous; the gauge exists immediately.
	if _, ok := r.Snapshot().Gauges["go.goroutines"]; !ok {
		t.Fatal("no immediate sample")
	}
	stop()
	stop() // stopping twice is safe
}

func TestRuntimeMetricsInPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	PublishRuntimeMetrics(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE go_goroutines gauge",
		"go_heap_alloc_bytes",
		"go_gc_pause_total_ns",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
