package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Tracer records a tree of named timed spans (phases). It is designed for
// phase-level tracing on an orchestrating goroutine: spans opened while
// another span is open become its children. Worker goroutines inside a phase
// are not traced individually — the phase span covers them.
//
// A nil *Tracer is the "tracing off" value: StartSpan returns a nil *Span
// and every method is a no-op, so instrumentation sites need no guards.
//
// When a root span (one with no parent) ends and the tracer has a sink, the
// finished tree is rendered to the sink immediately — a live trace log.
type Tracer struct {
	mu    sync.Mutex
	sink  io.Writer
	stack []*Span
	roots []*Span
	clock func() time.Time
}

// NewTracer returns a tracer that renders finished root spans to sink
// (pass nil to only collect for Report/PhaseNanos).
func NewTracer(sink io.Writer) *Tracer {
	return &Tracer{sink: sink, clock: time.Now}
}

// Span is one timed phase. End it exactly once.
type Span struct {
	tr       *Tracer
	parent   *Span
	Name     string
	start    time.Time
	dur      time.Duration
	done     bool
	attrs    []Attr
	children []*Span
}

// Attr is one string key/value annotation on a span.
type Attr struct {
	Key, Val string
}

// SetAttr annotates the span with a key/value pair (last write per key
// wins at snapshot time). Nil-safe, so instrumentation sites need no
// guards; safe for concurrent use with other tracer operations.
func (s *Span) SetAttr(key, val string) {
	if s == nil || s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.tr.mu.Unlock()
}

// StartSpan opens a new span as a child of the innermost open span (or as a
// root). Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{tr: t, Name: name, start: t.clock()}
	if n := len(t.stack); n > 0 {
		s.parent = t.stack[n-1]
		s.parent.children = append(s.parent.children, s)
	} else {
		t.roots = append(t.roots, s)
	}
	t.stack = append(t.stack, s)
	return s
}

// End closes the span and returns its duration. Nil-safe; ending a span
// also closes any children left open (defensive, keeps the tree sane).
func (s *Span) End() time.Duration {
	if s == nil || s.tr == nil {
		return 0
	}
	t := s.tr
	t.mu.Lock()
	now := t.clock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		open := t.stack[i]
		t.stack = t.stack[:i]
		if !open.done {
			open.done = true
			open.dur = now.Sub(open.start)
		}
		if open == s {
			break
		}
	}
	isRoot := s.parent == nil
	dur := s.dur
	sink := t.sink
	t.mu.Unlock()
	if isRoot && sink != nil {
		fmt.Fprint(sink, renderSpan(s, 0))
	}
	return dur
}

// Duration returns the span's recorded duration (0 while open or for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// SpanSnapshot is the serializable form of a finished span tree.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartUnixNS is the span's wall-clock start (Unix nanoseconds), so
	// exported trees line up on a shared timeline.
	StartUnixNS int64             `json:"start_unix_ns,omitempty"`
	NS          int64             `json:"ns"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Children    []SpanSnapshot    `json:"children,omitempty"`
}

func snapshotSpan(s *Span) SpanSnapshot {
	out := SpanSnapshot{Name: s.Name, StartUnixNS: s.start.UnixNano(), NS: s.dur.Nanoseconds()}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

// Report returns the finished root spans as serializable trees. Nil-safe.
func (t *Tracer) Report() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSnapshot, 0, len(t.roots))
	for _, s := range t.roots {
		if s.done {
			out = append(out, snapshotSpan(s))
		}
	}
	return out
}

// PhaseNanos flattens the recorded spans into name → total nanoseconds,
// summing repeated phases (e.g. the two extension passes of FSAIE(full)).
func (t *Tracer) PhaseNanos() map[string]int64 {
	report := t.Report()
	if report == nil {
		return nil
	}
	out := map[string]int64{}
	var walk func(s SpanSnapshot)
	walk = func(s SpanSnapshot) {
		out[s.Name] += s.NS
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, s := range report {
		walk(s)
	}
	return out
}

// Reset discards all recorded and open spans. Nil-safe.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stack, t.roots = nil, nil
}

func renderSpan(s *Span, depth int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s%-*s %12.3fms\n", strings.Repeat("  ", depth),
		32-2*depth, s.Name, float64(s.dur.Nanoseconds())/1e6)
	for _, c := range s.children {
		sb.WriteString(renderSpan(c, depth+1))
	}
	return sb.String()
}
