package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("ops") != c {
		t.Fatal("counter not cached by name")
	}

	g := r.Gauge("temp")
	g.Set(1.5)
	g.Set(-2.25)
	if got := g.Value(); got != -2.25 {
		t.Fatalf("gauge = %g, want -2.25", got)
	}

	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Fatalf("hist sum = %g, want 555.5", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["lat"]
	if want := []int64{1, 1, 1}; len(hs.Counts) != 3 || hs.Counts[0] != want[0] || hs.Counts[1] != want[1] || hs.Counts[2] != want[2] {
		t.Fatalf("bucket counts = %v, want %v", hs.Counts, want)
	}
	if hs.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1", hs.Overflow)
	}
	if snap.Counters["ops"] != 4 || snap.Gauges["temp"] != -2.25 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter should read 0")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge should read 0")
	}
	h := r.Histogram("z", []float64{1})
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should read 0")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot should be empty")
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WriteText: err=%v out=%q", err, sb.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("n").Inc()
				r.Histogram("h", ExpBuckets(1, 10, 4)).Observe(float64(i % 7))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("concurrent hist count = %d, want 8000", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(100, 10, 4)
	want := []float64{100, 1000, 10000, 100000}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	if ExpBuckets(1, 2, 0) != nil {
		t.Fatal("n=0 should be nil")
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.calls").Add(2)
	r.Gauge("b.val").Set(7)
	r.Histogram("c.lat", []float64{1}).Observe(0.5)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a.calls", "b.val", "c.lat", "count=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}
