package telemetry

// Prometheus text-format rendering of a Registry (exposition format 0.0.4,
// the format every Prometheus-compatible scraper speaks). This is what
// obs.Server serves on GET /metrics.
//
// Metric names may carry labels inline, registry-side, using the same brace
// syntax Prometheus prints: a metric registered as
//
//	cachesim.x_misses{phase="G",entries="fill"}
//
// belongs to the family cachesim_x_misses with labels phase/entries. The
// registry itself stays a flat name→metric map — labelled series are just
// distinct names — and the renderer groups series into families, emitting
// one # HELP/# TYPE header per family. Dots (invalid in Prometheus names)
// become underscores.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// labelPair is one parsed key="value" label.
type labelPair struct {
	key, val string
}

// parseMetricName splits a registry metric name into its Prometheus family
// name and label pairs. Values may be quoted or bare; keys and the family
// are sanitized to the Prometheus name charset.
func parseMetricName(name string) (family string, labels []labelPair) {
	brace := strings.IndexByte(name, '{')
	if brace < 0 {
		return sanitizeMetricName(name), nil
	}
	family = sanitizeMetricName(name[:brace])
	inner := strings.TrimSuffix(name[brace+1:], "}")
	for _, part := range strings.Split(inner, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			labels = append(labels, labelPair{key: sanitizeLabelName(part), val: ""})
			continue
		}
		val := strings.TrimSpace(part[eq+1:])
		val = strings.TrimPrefix(val, `"`)
		val = strings.TrimSuffix(val, `"`)
		labels = append(labels, labelPair{key: sanitizeLabelName(part[:eq]), val: val})
	}
	return family, labels
}

func sanitizeMetricName(s string) string {
	return sanitizeChars(s, true)
}

func sanitizeLabelName(s string) string {
	return sanitizeChars(strings.TrimSpace(s), false)
}

// sanitizeChars maps s onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]* (colons excluded for label names).
func sanitizeChars(s string, allowColon bool) string {
	var sb strings.Builder
	for i, r := range s {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0) || (allowColon && r == ':')
		if ok {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders parsed labels (plus optional extras) as {k="v",...},
// or "" when there are none.
func renderLabels(labels []labelPair, extra ...labelPair) string {
	all := append(append([]labelPair(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = fmt.Sprintf(`%s="%s"`, l.key, escapeLabelValue(l.val))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a sample value; Prometheus spells infinities +Inf/-Inf.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return fmt.Sprintf("%g", v)
	}
}

// series is one renderable sample line under a family.
type series struct {
	name   string // original registry name (sort key for stable output)
	labels []labelPair
}

// promFamily groups the series of one family for header emission.
type promFamily struct {
	name   string
	kind   string // counter | gauge | histogram
	series []series
}

// groupFamilies buckets registry names into families of one metric kind.
func groupFamilies(names []string, kind string) []promFamily {
	byFam := map[string]*promFamily{}
	var order []string
	sort.Strings(names)
	for _, n := range names {
		fam, labels := parseMetricName(n)
		f, ok := byFam[fam]
		if !ok {
			f = &promFamily{name: fam, kind: kind}
			byFam[fam] = f
			order = append(order, fam)
		}
		f.series = append(f.series, series{name: n, labels: labels})
	}
	sort.Strings(order)
	out := make([]promFamily, 0, len(order))
	for _, fam := range order {
		out = append(out, *byFam[fam])
	}
	return out
}

// writeHeader emits the # HELP and # TYPE lines for a family.
func (r *Registry) writeHeader(w io.Writer, fam promFamily, defaultHelp string) error {
	help := r.helpFor(fam.name)
	if help == "" {
		help = defaultHelp
	}
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, help); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind)
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format: every family gets # HELP and # TYPE lines, histograms render
// cumulative le-buckets plus _sum/_count and bucket-interpolated
// p50/p95/p99 gauge families (<family>_p50 …). Safe on a nil registry
// (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	for _, fam := range groupFamilies(names, "counter") {
		if err := r.writeHeader(w, fam, "counter "+fam.name); err != nil {
			return err
		}
		for _, s := range fam.series {
			if _, err := fmt.Fprintf(w, "%s%s %d\n", fam.name, renderLabels(s.labels), snap.Counters[s.name]); err != nil {
				return err
			}
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	for _, fam := range groupFamilies(names, "gauge") {
		if err := r.writeHeader(w, fam, "gauge "+fam.name); err != nil {
			return err
		}
		for _, s := range fam.series {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, renderLabels(s.labels), formatValue(snap.Gauges[s.name])); err != nil {
				return err
			}
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	hfams := groupFamilies(names, "histogram")
	for _, fam := range hfams {
		if err := r.writeHeader(w, fam, "histogram "+fam.name); err != nil {
			return err
		}
		for _, s := range fam.series {
			h := snap.Histograms[s.name]
			var cum int64
			for i, b := range h.Bounds {
				cum += h.Counts[i]
				lbl := renderLabels(s.labels, labelPair{key: "le", val: formatValue(b)})
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, lbl, cum); err != nil {
					return err
				}
			}
			lbl := renderLabels(s.labels, labelPair{key: "le", val: "+Inf"})
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.name, lbl, h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, renderLabels(s.labels), formatValue(h.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, renderLabels(s.labels), h.Count); err != nil {
				return err
			}
		}
	}
	// Quantile companions: one gauge family per histogram family so scrapers
	// without histogram_quantile support still see the latency ladder.
	for _, fam := range hfams {
		for _, q := range []struct {
			suffix string
			q      float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			qfam := promFamily{name: fam.name + "_" + q.suffix, kind: "gauge", series: fam.series}
			if err := r.writeHeader(w, qfam, fmt.Sprintf("bucket-interpolated %s of %s", q.suffix, fam.name)); err != nil {
				return err
			}
			for _, s := range fam.series {
				v := snap.Histograms[s.name].Quantile(q.q)
				if _, err := fmt.Fprintf(w, "%s%s %s\n", qfam.name, renderLabels(s.labels), formatValue(v)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
