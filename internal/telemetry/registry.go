// Package telemetry is the repo's zero-dependency observability layer: a
// metrics registry (counters, gauges, fixed-bucket histograms) and a
// hierarchical span tracer with an io.Writer-pluggable sink.
//
// The paper's whole argument is a cost breakdown — setup phases weighed
// against per-iteration SpMV cost — so every layer that does real work
// (core setup, the Krylov loop, the sparse kernels) reports into this
// package, and the CLIs export the result as a versioned machine-readable
// run report (see internal/experiments.RunReport).
//
// Design constraints:
//
//   - Zero overhead when off: every entry point is nil-safe, so callers hold
//     a possibly-nil *Registry or *Tracer and instrument unconditionally;
//     the disabled path is a single pointer test.
//   - Concurrency-safe: counters, gauges and histogram buckets are atomics;
//     registration takes a mutex but lookups after the first call are
//     expected to be cached by the caller.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v as the gauge's current value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. An observation lands in the first
// bucket whose upper bound is >= the value; values above every bound land in
// the implicit overflow bucket. Sum and count are tracked exactly (the sum
// as integer nanos/units via atomic adds on the scaled value).
type Histogram struct {
	bounds []float64 // sorted upper bounds
	counts []atomic.Int64
	over   atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits accumulated via CAS
}

// newHistogram builds a histogram with the given sorted upper bounds.
func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the bucket-interpolated q-quantile of the observations
// (see HistogramSnapshot.Quantile). Nil-safe: returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	s := HistogramSnapshot{
		Bounds:   h.bounds,
		Counts:   make([]int64, len(h.counts)),
		Overflow: h.over.Load(),
		Count:    h.Count(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s.Quantile(q)
}

// ExpBuckets returns n upper bounds start, start*factor, start*factor², …,
// the usual latency-histogram ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry is a name-keyed collection of metrics. The zero value is NOT
// ready; use NewRegistry. A nil *Registry is a valid "telemetry off" value:
// every lookup returns nil, and the nil metric methods are no-ops.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	helps  map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   map[string]*Counter{},
		gauges: map[string]*Gauge{},
		hists:  map[string]*Histogram{},
		helps:  map[string]string{},
	}
}

// SetHelp records a help string for a metric family — the metric name with
// any {label} suffix stripped — rendered by WritePrometheus as the # HELP
// line. Nil-safe.
func (r *Registry) SetHelp(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.helps[family] = help
}

// helpFor returns the recorded help string for a family ("" if none).
func (r *Registry) helpFor(family string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.helps[family]
}

// Counter returns the counter with the given name, creating it on first use.
// Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
// Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// given bucket upper bounds on first use (later calls ignore bounds).
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the serializable state of one histogram.
type HistogramSnapshot struct {
	Bounds   []float64 `json:"bounds"`
	Counts   []int64   `json:"counts"`
	Overflow int64     `json:"overflow"`
	Count    int64     `json:"count"`
	Sum      float64   `json:"sum"`
}

// Quantile returns the bucket-interpolated q-quantile (q in [0,1], clamped)
// of the recorded distribution, following the usual Prometheus
// histogram_quantile convention:
//
//   - an empty histogram yields 0;
//   - within the selected bucket the value is interpolated linearly between
//     the previous upper bound (0 for the first bucket) and the bucket's own
//     bound;
//   - observations beyond the last finite bound (the overflow bucket, or an
//     explicit +Inf bucket) report the last finite bound — the histogram
//     carries no information above it.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	lastFinite := 0.0
	var cum int64
	lower := 0.0
	for i, b := range s.Bounds {
		c := s.Counts[i]
		if c > 0 && float64(cum)+float64(c) >= rank {
			if math.IsInf(b, 1) {
				return lastFinite
			}
			frac := (rank - float64(cum)) / float64(c)
			return lower + (b-lower)*frac
		}
		cum += c
		lower = b
		if !math.IsInf(b, 1) {
			lastFinite = b
		}
	}
	// Quantile falls in the overflow bucket (or every counted observation
	// did): the last finite bound is the best statement the data supports.
	return lastFinite
}

// RegistrySnapshot is the serializable state of a whole registry.
type RegistrySnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ctrs) > 0 {
		snap.Counters = make(map[string]int64, len(r.ctrs))
		for name, c := range r.ctrs {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{
				Bounds:   append([]float64(nil), h.bounds...),
				Counts:   make([]int64, len(h.counts)),
				Overflow: h.over.Load(),
				Count:    h.Count(),
				Sum:      h.Sum(),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			snap.Histograms[name] = hs
		}
	}
	return snap
}

// WriteText renders the registry in a sorted human-readable form, one metric
// per line. Safe on a nil registry (writes nothing).
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %-40s %d\n", n, snap.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-40s %g\n", n, snap.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		if _, err := fmt.Fprintf(w, "hist    %-40s count=%d sum=%g mean=%g p50=%g p95=%g p99=%g\n",
			n, h.Count, h.Sum, mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}
