package fem

import (
	"math"
	"testing"

	"repro/internal/krylov"
)

func TestMeshConstruction(t *testing.T) {
	m := UnitSquare(4)
	if m.NumNodes() != 25 {
		t.Fatalf("nodes=%d", m.NumNodes())
	}
	if len(m.Elements) != 32 {
		t.Fatalf("elements=%d", len(m.Elements))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	nb := 0
	for _, bd := range m.Boundary {
		if bd {
			nb++
		}
	}
	if nb != 16 {
		t.Errorf("boundary nodes %d, want 16", nb)
	}
}

func TestMeshValidateCatchesErrors(t *testing.T) {
	m := UnitSquare(2)
	m.Elements[0][1] = 99
	if err := m.Validate(); err == nil {
		t.Error("out-of-range node accepted")
	}
	m = UnitSquare(2)
	m.Elements[0][1], m.Elements[0][2] = m.Elements[0][2], m.Elements[0][1] // flip orientation
	if err := m.Validate(); err == nil {
		t.Error("clockwise element accepted")
	}
}

func TestStiffnessProperties(t *testing.T) {
	m := UnitSquare(8)
	a := AssembleStiffness(m, Const(1))
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-12) {
		t.Error("stiffness not symmetric")
	}
	// Rows sum to zero (constants are in the kernel before BCs).
	for i := 0; i < a.Rows; i++ {
		_, vals := a.Row(i)
		s := 0.0
		for _, v := range vals {
			s += v
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d sum %g, want 0", i, s)
		}
	}
}

func TestMassTotalEqualsArea(t *testing.T) {
	m := Rectangle(6, 4, 2, 3) // area 6
	mm := AssembleMass(m, Const(1))
	s := 0.0
	for _, v := range mm.Val {
		s += v
	}
	if math.Abs(s-6) > 1e-12 {
		t.Errorf("mass total %g, want 6 (domain area)", s)
	}
	if !mm.IsSymmetric(1e-12) {
		t.Error("mass not symmetric")
	}
}

func TestLoadTotalEqualsIntegral(t *testing.T) {
	m := UnitSquare(10)
	b := AssembleLoad(m, Const(3))
	s := 0.0
	for _, v := range b {
		s += v
	}
	if math.Abs(s-3) > 1e-12 {
		t.Errorf("load total %g, want 3 (∫f)", s)
	}
}

// TestPoissonManufacturedSolution solves -Δu = f with
// u = sin(πx)sin(πy), f = 2π²u on the unit square, and checks the discrete
// solution against the exact one at the nodes (O(h²) accuracy).
func TestPoissonManufacturedSolution(t *testing.T) {
	exact := func(x, y float64) float64 { return math.Sin(math.Pi*x) * math.Sin(math.Pi*y) }
	f := func(x, y float64) float64 { return 2 * math.Pi * math.Pi * exact(x, y) }
	var prevErr float64
	for _, n := range []int{8, 16, 32} {
		m := UnitSquare(n)
		a := AssembleStiffness(m, Const(1))
		load := AssembleLoad(m, f)
		ar, br, keep := ApplyDirichlet(m, a, load)
		x := make([]float64, ar.Rows)
		res := krylov.Solve(ar, x, br, nil, krylov.Options{Tol: 1e-12, MaxIter: 10000})
		if !res.Converged {
			t.Fatalf("n=%d: CG failed", n)
		}
		maxErr := 0.0
		for r, node := range keep {
			p := m.Nodes[node]
			if e := math.Abs(x[r] - exact(p[0], p[1])); e > maxErr {
				maxErr = e
			}
		}
		t.Logf("n=%d: max nodal error %.2e", n, maxErr)
		if prevErr > 0 && maxErr > prevErr/2.5 {
			t.Errorf("n=%d: error %.2e not converging at O(h²) from %.2e", n, maxErr, prevErr)
		}
		prevErr = maxErr
	}
}

func TestApplyDirichletShapes(t *testing.T) {
	m := UnitSquare(4)
	a := AssembleStiffness(m, Const(1))
	b := AssembleLoad(m, Const(1))
	ar, br, keep := ApplyDirichlet(m, a, b)
	wantInterior := 9 // (5-2)²
	if ar.Rows != wantInterior || len(br) != wantInterior || len(keep) != wantInterior {
		t.Fatalf("reduced sizes %d/%d/%d, want %d", ar.Rows, len(br), len(keep), wantInterior)
	}
	if !ar.IsSymmetric(1e-12) {
		t.Error("reduced matrix not symmetric")
	}
	for _, node := range keep {
		if m.Boundary[node] {
			t.Error("boundary node kept")
		}
	}
}

func TestVariableCoefficientStiffnessSPD(t *testing.T) {
	m := UnitSquare(12)
	k := func(x, y float64) float64 {
		if x < 0.5 {
			return 1
		}
		return 100 // coefficient jump
	}
	a := AssembleStiffness(m, k)
	ar, br, _ := ApplyDirichlet(m, a, AssembleLoad(m, Const(1)))
	x := make([]float64, ar.Rows)
	res := krylov.Solve(ar, x, br, nil, krylov.DefaultOptions())
	if !res.Converged {
		t.Fatal("variable-coefficient system did not solve")
	}
}
