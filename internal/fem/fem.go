// Package fem assembles finite-element systems on 2D triangular meshes —
// the discretization pipeline that produces the matrix classes of the
// paper's test set (FEM stiffness and mass matrices). It provides P1
// (linear) elements on structured triangulations of a rectangle, variable
// scalar coefficients, consistent mass matrices, and Dirichlet boundary
// elimination.
//
// The package exists so downstream users can go from a PDE to a
// preconditioned solve entirely inside this repository:
//
//	mesh := fem.UnitSquare(64)
//	A := fem.AssembleStiffness(mesh, coeff)
//	A, b := fem.ApplyDirichlet(mesh, A, load, 0)
//	p, _ := fsaie.New(A, fsaie.DefaultOptions())
//	...
package fem

import (
	"fmt"

	"repro/internal/sparse"
)

// Mesh is a conforming triangulation: Nodes are 2D coordinates, Elements
// index triples of node indices (counter-clockwise), Boundary flags nodes
// on the domain boundary.
type Mesh struct {
	Nodes    [][2]float64
	Elements [][3]int
	Boundary []bool
}

// NumNodes returns the node count.
func (m *Mesh) NumNodes() int { return len(m.Nodes) }

// UnitSquare triangulates the unit square with (n+1)² nodes and 2n²
// triangles (each grid cell split along its diagonal).
func UnitSquare(n int) *Mesh {
	return Rectangle(n, n, 1, 1)
}

// Rectangle triangulates [0,w]×[0,h] with (nx+1)×(ny+1) nodes.
func Rectangle(nx, ny int, w, h float64) *Mesh {
	if nx < 1 || ny < 1 {
		panic("fem: mesh needs at least one cell per direction")
	}
	m := &Mesh{}
	id := func(i, j int) int { return i*(ny+1) + j }
	for i := 0; i <= nx; i++ {
		for j := 0; j <= ny; j++ {
			m.Nodes = append(m.Nodes, [2]float64{w * float64(i) / float64(nx), h * float64(j) / float64(ny)})
			m.Boundary = append(m.Boundary, i == 0 || i == nx || j == 0 || j == ny)
		}
	}
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			a, b, c, d := id(i, j), id(i+1, j), id(i+1, j+1), id(i, j+1)
			m.Elements = append(m.Elements, [3]int{a, b, c}, [3]int{a, c, d})
		}
	}
	return m
}

// Validate checks mesh consistency: indices in range, positive element
// areas (counter-clockwise orientation).
func (m *Mesh) Validate() error {
	n := m.NumNodes()
	if len(m.Boundary) != n {
		return fmt.Errorf("fem: boundary flags %d for %d nodes", len(m.Boundary), n)
	}
	for e, el := range m.Elements {
		for _, v := range el {
			if v < 0 || v >= n {
				return fmt.Errorf("fem: element %d references node %d of %d", e, v, n)
			}
		}
		if area2(m, el) <= 0 {
			return fmt.Errorf("fem: element %d is degenerate or clockwise", e)
		}
	}
	return nil
}

// area2 returns twice the signed area of the element.
func area2(m *Mesh, el [3]int) float64 {
	p0, p1, p2 := m.Nodes[el[0]], m.Nodes[el[1]], m.Nodes[el[2]]
	return (p1[0]-p0[0])*(p2[1]-p0[1]) - (p2[0]-p0[0])*(p1[1]-p0[1])
}

// Coefficient is a scalar field evaluated at a point (diffusivity,
// density). Constant fields can be written as fem.Const(v).
type Coefficient func(x, y float64) float64

// Const returns the constant coefficient v.
func Const(v float64) Coefficient {
	return func(x, y float64) float64 { return v }
}

// AssembleStiffness assembles the P1 stiffness matrix of
// -∇·(k∇u): per element, entry (i,j) = k(centroid)/(4·area) · (bᵢbⱼ+cᵢcⱼ)
// with b, c the gradient coefficients of the barycentric basis.
func AssembleStiffness(m *Mesh, k Coefficient) *sparse.CSR {
	n := m.NumNodes()
	bld := sparse.NewCOO(n, n, 9*len(m.Elements))
	for _, el := range m.Elements {
		p0, p1, p2 := m.Nodes[el[0]], m.Nodes[el[1]], m.Nodes[el[2]]
		twoA := area2(m, el)
		// Gradients of the barycentric basis functions.
		b := [3]float64{p1[1] - p2[1], p2[1] - p0[1], p0[1] - p1[1]}
		c := [3]float64{p2[0] - p1[0], p0[0] - p2[0], p1[0] - p0[0]}
		cx := (p0[0] + p1[0] + p2[0]) / 3
		cy := (p0[1] + p1[1] + p2[1]) / 3
		kv := k(cx, cy)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				bld.Add(el[i], el[j], kv*(b[i]*b[j]+c[i]*c[j])/(2*twoA))
			}
		}
	}
	return bld.ToCSR()
}

// AssembleMass assembles the consistent P1 mass matrix with density rho:
// per element, area/12 · (1+δᵢⱼ) · rho(centroid).
func AssembleMass(m *Mesh, rho Coefficient) *sparse.CSR {
	n := m.NumNodes()
	bld := sparse.NewCOO(n, n, 9*len(m.Elements))
	for _, el := range m.Elements {
		p0, p1, p2 := m.Nodes[el[0]], m.Nodes[el[1]], m.Nodes[el[2]]
		a := area2(m, el) / 2
		cx := (p0[0] + p1[0] + p2[0]) / 3
		cy := (p0[1] + p1[1] + p2[1]) / 3
		rv := rho(cx, cy)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				w := a / 12
				if i == j {
					w = a / 6
				}
				bld.Add(el[i], el[j], rv*w)
			}
		}
	}
	return bld.ToCSR()
}

// AssembleLoad assembles the P1 load vector of a source term f (one-point
// centroid quadrature: each element spreads f(c)·area/3 to its nodes).
func AssembleLoad(m *Mesh, f Coefficient) []float64 {
	out := make([]float64, m.NumNodes())
	for _, el := range m.Elements {
		p0, p1, p2 := m.Nodes[el[0]], m.Nodes[el[1]], m.Nodes[el[2]]
		a := area2(m, el) / 2
		cx := (p0[0] + p1[0] + p2[0]) / 3
		cy := (p0[1] + p1[1] + p2[1]) / 3
		fv := f(cx, cy) * a / 3
		for _, v := range el {
			out[v] += fv
		}
	}
	return out
}

// ApplyDirichlet eliminates homogeneous Dirichlet boundary nodes from the
// system A u = b: boundary rows/columns are removed, interior equations
// keep their couplings. It returns the reduced SPD system, the reduced
// right-hand side and the mapping from reduced indices to mesh nodes.
func ApplyDirichlet(m *Mesh, a *sparse.CSR, b []float64) (*sparse.CSR, []float64, []int) {
	n := m.NumNodes()
	keep := make([]int, 0, n)
	newIdx := make([]int, n)
	for i := 0; i < n; i++ {
		newIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		if !m.Boundary[i] {
			newIdx[i] = len(keep)
			keep = append(keep, i)
		}
	}
	bld := sparse.NewCOO(len(keep), len(keep), a.NNZ())
	for _, i := range keep {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if newIdx[j] >= 0 {
				bld.Add(newIdx[i], newIdx[j], vals[k])
			}
		}
	}
	rb := make([]float64, len(keep))
	for r, i := range keep {
		rb[r] = b[i]
	}
	return bld.ToCSR(), rb, keep
}
