package fem

import "repro/internal/sparse"

// Plane-strain linear elasticity with P1 (constant-strain) triangles: each
// node carries two displacement components (u_x, u_y), interleaved in the
// global numbering as 2*node+dof. This is the assembly pipeline behind the
// paper's dominant "Structural" matrix family (shipsec/bcsstk-class
// matrices come from exactly such element loops); rows arrive in natural
// 2×2 blocks, the structure BSR storage and block preconditioners exploit.

// Material holds isotropic elastic constants.
type Material struct {
	E  float64 // Young's modulus
	Nu float64 // Poisson ratio, in (0, 0.5)
}

// Lame returns the plane-strain Lamé parameters (λ, μ).
func (m Material) Lame() (lambda, mu float64) {
	lambda = m.E * m.Nu / ((1 + m.Nu) * (1 - 2*m.Nu))
	mu = m.E / (2 * (1 + m.Nu))
	return
}

// AssembleElasticity assembles the plane-strain stiffness matrix for the
// mesh with a (possibly spatially varying) material. The returned matrix
// is 2n×2n, symmetric, and positive semidefinite (definite after Dirichlet
// elimination of at least three constraints).
func AssembleElasticity(m *Mesh, mat func(x, y float64) Material) *sparse.CSR {
	n := m.NumNodes()
	bld := sparse.NewCOO(2*n, 2*n, 36*len(m.Elements))
	for _, el := range m.Elements {
		p0, p1, p2 := m.Nodes[el[0]], m.Nodes[el[1]], m.Nodes[el[2]]
		twoA := area2(m, el)
		area := twoA / 2
		// Basis gradients: ∇φᵢ = (bᵢ, cᵢ)/twoA.
		b := [3]float64{p1[1] - p2[1], p2[1] - p0[1], p0[1] - p1[1]}
		c := [3]float64{p2[0] - p1[0], p0[0] - p2[0], p1[0] - p0[0]}
		cx := (p0[0] + p1[0] + p2[0]) / 3
		cy := (p0[1] + p1[1] + p2[1]) / 3
		lambda, mu := mat(cx, cy).Lame()
		// Element stiffness: Ke = area · Bᵀ D B with the standard
		// plane-strain D; expanded per node pair to avoid forming B.
		for i := 0; i < 3; i++ {
			bi, ci := b[i]/twoA, c[i]/twoA
			for j := 0; j < 3; j++ {
				bj, cj := b[j]/twoA, c[j]/twoA
				// 2x2 coupling block between nodes i and j.
				kxx := area * ((lambda+2*mu)*bi*bj + mu*ci*cj)
				kxy := area * (lambda*bi*cj + mu*ci*bj)
				kyx := area * (lambda*ci*bj + mu*bi*cj)
				kyy := area * ((lambda+2*mu)*ci*cj + mu*bi*bj)
				bld.Add(2*el[i], 2*el[j], kxx)
				bld.Add(2*el[i], 2*el[j]+1, kxy)
				bld.Add(2*el[i]+1, 2*el[j], kyx)
				bld.Add(2*el[i]+1, 2*el[j]+1, kyy)
			}
		}
	}
	return bld.ToCSR()
}

// ApplyDirichletVector eliminates both displacement components of boundary
// nodes from the 2n×2n elasticity system (clamped boundary). It returns
// the reduced system, right-hand side, and the kept global dof indices.
func ApplyDirichletVector(m *Mesh, a *sparse.CSR, b []float64) (*sparse.CSR, []float64, []int) {
	n := m.NumNodes()
	keep := make([]int, 0, 2*n)
	newIdx := make([]int, 2*n)
	for i := range newIdx {
		newIdx[i] = -1
	}
	for i := 0; i < n; i++ {
		if !m.Boundary[i] {
			for d := 0; d < 2; d++ {
				newIdx[2*i+d] = len(keep)
				keep = append(keep, 2*i+d)
			}
		}
	}
	bld := sparse.NewCOO(len(keep), len(keep), a.NNZ())
	for _, i := range keep {
		cols, vals := a.Row(i)
		for k, j := range cols {
			if newIdx[j] >= 0 {
				bld.Add(newIdx[i], newIdx[j], vals[k])
			}
		}
	}
	rb := make([]float64, len(keep))
	for r, i := range keep {
		rb[r] = b[i]
	}
	return bld.ToCSR(), rb, keep
}
