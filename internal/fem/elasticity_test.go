package fem

import (
	"math"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/krylov"
)

func steel(x, y float64) Material { return Material{E: 200, Nu: 0.3} }

func TestLame(t *testing.T) {
	lambda, mu := Material{E: 200, Nu: 0.3}.Lame()
	// λ = Eν/((1+ν)(1-2ν)) = 200·0.3/(1.3·0.4), μ = E/(2(1+ν)).
	if math.Abs(lambda-200*0.3/(1.3*0.4)) > 1e-12 {
		t.Errorf("lambda=%g", lambda)
	}
	if math.Abs(mu-200/2.6) > 1e-12 {
		t.Errorf("mu=%g", mu)
	}
}

func TestElasticitySymmetricWithNullspace(t *testing.T) {
	m := UnitSquare(6)
	a := AssembleElasticity(m, steel)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2*m.NumNodes() {
		t.Fatalf("rows=%d", a.Rows)
	}
	if !a.IsSymmetric(1e-9) {
		t.Error("elasticity matrix not symmetric")
	}
	// Rigid translations lie in the kernel before boundary conditions:
	// A·(1,0,1,0,...) = 0 and A·(0,1,0,1,...) = 0.
	n2 := a.Rows
	for d := 0; d < 2; d++ {
		v := make([]float64, n2)
		for i := d; i < n2; i += 2 {
			v[i] = 1
		}
		y := make([]float64, n2)
		a.MulVec(y, v)
		for i, yv := range y {
			if math.Abs(yv) > 1e-9 {
				t.Fatalf("translation %d not in kernel: y[%d]=%g", d, i, yv)
			}
		}
	}
	// Rigid rotation (-y, x) is in the kernel too.
	v := make([]float64, n2)
	for i := 0; i < m.NumNodes(); i++ {
		p := m.Nodes[i]
		v[2*i] = -p[1]
		v[2*i+1] = p[0]
	}
	y := make([]float64, n2)
	a.MulVec(y, v)
	for i, yv := range y {
		if math.Abs(yv) > 1e-9 {
			t.Fatalf("rotation not in kernel: y[%d]=%g", i, yv)
		}
	}
}

func TestElasticityClampedSolve(t *testing.T) {
	// Clamped boundary, gravity-like body load: the reduced system is SPD
	// and every FSAI variant solves it.
	m := UnitSquare(12)
	a0 := AssembleElasticity(m, steel)
	b0 := make([]float64, a0.Rows)
	for i := 0; i < m.NumNodes(); i++ {
		b0[2*i+1] = -1 // downward load on the y dof
	}
	a, b, keep := ApplyDirichletVector(m, a0, b0)
	if a.Rows%2 != 0 || len(keep) != a.Rows {
		t.Fatalf("reduced system shape wrong")
	}
	if !a.IsSymmetric(1e-9) {
		t.Fatal("reduced system not symmetric")
	}
	x := make([]float64, a.Rows)
	plain := krylov.Solve(a, x, b, nil, krylov.DefaultOptions())
	if !plain.Converged {
		t.Fatal("plain CG failed on clamped elasticity")
	}
	for _, v := range []fsai.Variant{fsai.VariantFSAI, fsai.VariantFull} {
		o := fsai.DefaultOptions()
		o.Variant = v
		p, err := fsai.Compute(a, o)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		res := krylov.Solve(a, x, b, p, krylov.DefaultOptions())
		if !res.Converged {
			t.Fatalf("%v failed", v)
		}
		if res.Iterations > plain.Iterations {
			t.Errorf("%v (%d iters) worse than plain CG (%d)", v, res.Iterations, plain.Iterations)
		}
		t.Logf("%v: %d iterations (plain %d)", v, res.Iterations, plain.Iterations)
	}
	// Sanity: displacements point downward on average under a downward load.
	sumY := 0.0
	for r, dof := range keep {
		if dof%2 == 1 {
			sumY += x[r]
		}
	}
	if sumY >= 0 {
		t.Errorf("mean vertical displacement %g, want negative under downward load", sumY)
	}
}
