package cachesim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// randomLowerPatterns builds a pseudo-random lower-triangular base pattern
// and an extension of it (base plus extra in-row fill entries).
func randomLowerPatterns(n int, rng *rand.Rand) (base, ext *pattern.Pattern) {
	baseRows := make([][]int, n)
	extRows := make([][]int, n)
	for i := 0; i < n; i++ {
		baseRows[i] = append(baseRows[i], i) // diagonal
		for k := 0; k < 3; k++ {
			baseRows[i] = append(baseRows[i], rng.Intn(i+1))
		}
		extRows[i] = append(extRows[i], baseRows[i]...)
		for k := 0; k < 2; k++ {
			extRows[i] = append(extRows[i], rng.Intn(i+1))
		}
	}
	return pattern.FromRows(n, n, baseRows), pattern.FromRows(n, n, extRows)
}

func TestAttribMatchesUnattributedTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base, ext := randomLowerPatterns(300, rng)
	c := New(Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 4})
	for _, opt := range []TraceOptions{
		{AlignElems: 0},
		{AlignElems: 3, IncludeStreams: true},
	} {
		wantG, wantGT := TracePrecondition(c, ext, opt)
		attr := TracePreconditionAttrib(c, ext, base, opt, 0)
		if got := attr.G.Misses(); got != wantG {
			t.Errorf("opt %+v: G misses = %d, want %d", opt, got, wantG)
		}
		if got := attr.GT.Misses(); got != wantGT {
			t.Errorf("opt %+v: GT misses = %d, want %d", opt, got, wantGT)
		}
		if got := attr.Misses(); got != wantG+wantGT {
			t.Errorf("total misses = %d, want %d", got, wantG+wantGT)
		}
		// Row-block buckets are a partition of each sweep's misses.
		for _, s := range []*SweepAttrib{&attr.G, &attr.GT} {
			var sum uint64
			for _, m := range s.RowBlockMisses {
				sum += m
			}
			if sum != s.Misses() {
				t.Errorf("phase %s: row-block sum %d != misses %d", s.Phase, sum, s.Misses())
			}
		}
	}
}

func TestAttribEntryClassCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base, ext := randomLowerPatterns(200, rng)
	c := New(Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 4})
	attr := TracePreconditionAttrib(c, ext, base, TraceOptions{}, 0)
	wantBase, wantFill := base.NNZ(), ext.NNZ()-base.NNZ()
	for _, s := range []*SweepAttrib{&attr.G, &attr.GT} {
		if s.BaseEntries != wantBase || s.FillEntries != wantFill {
			t.Errorf("phase %s: entries base=%d fill=%d, want %d/%d",
				s.Phase, s.BaseEntries, s.FillEntries, wantBase, wantFill)
		}
	}
	if attr.G.Phase != "G" || attr.GT.Phase != "GT" {
		t.Errorf("phases = %q/%q", attr.G.Phase, attr.GT.Phase)
	}
	if got, want := attr.MissPerNNZ(), float64(attr.Misses())/float64(ext.NNZ()); got != want {
		t.Errorf("MissPerNNZ = %g, want %g", got, want)
	}
}

func TestAttribCacheFriendlyFillIsFree(t *testing.T) {
	// Base touches x[0] and x[16] per row; fill adds x[1] and x[17] — same
	// 64-byte lines at alignment 0. The fill-in entries must not miss.
	n := 32
	baseRows := make([][]int, n)
	extRows := make([][]int, n)
	for i := range baseRows {
		baseRows[i] = []int{0, 16, i}
		extRows[i] = []int{0, 1, 16, 17, i}
	}
	base := pattern.FromRows(n, n, baseRows)
	ext := pattern.FromRows(n, n, extRows)
	c := New(Config{SizeBytes: 1 << 12, LineBytes: 64, Ways: 8})
	attr := TracePreconditionAttrib(c, ext, base, TraceOptions{}, 0)
	// Diagonal entries i are base; only columns 1 and 17 are fill, and both
	// share a line with a base column accessed just before.
	if attr.G.FillMisses != 0 {
		t.Errorf("cache-friendly fill missed %d times in G sweep", attr.G.FillMisses)
	}
	if attr.G.MissPerFillNNZ() != 0 {
		t.Errorf("MissPerFillNNZ = %g, want 0", attr.G.MissPerFillNNZ())
	}
	if attr.G.BaseMisses == 0 {
		t.Error("expected compulsory base misses")
	}
}

func TestAttribBlockRows(t *testing.T) {
	base, ext := randomLowerPatterns(100, rand.New(rand.NewSource(3)))
	c := New(Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 4})
	attr := TracePreconditionAttrib(c, ext, base, TraceOptions{}, 1)
	if attr.BlockRows != 1 || len(attr.G.RowBlockMisses) != 100 {
		t.Fatalf("blockRows=1: got BlockRows=%d, %d blocks", attr.BlockRows, len(attr.G.RowBlockMisses))
	}
	attr = TracePreconditionAttrib(c, ext, base, TraceOptions{}, 0)
	if attr.BlockRows != BlockRowsFor(100) {
		t.Fatalf("default BlockRows = %d, want %d", attr.BlockRows, BlockRowsFor(100))
	}
	if BlockRowsFor(100) != 2 || BlockRowsFor(64) != 1 || BlockRowsFor(0) != 1 {
		t.Fatalf("BlockRowsFor: %d %d %d", BlockRowsFor(100), BlockRowsFor(64), BlockRowsFor(0))
	}
}

func TestAttribPublish(t *testing.T) {
	base, ext := randomLowerPatterns(64, rand.New(rand.NewSource(5)))
	c := New(Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 4})
	attr := TracePreconditionAttrib(c, ext, base, TraceOptions{}, 0)

	reg := telemetry.NewRegistry()
	attr.Publish(reg)
	snap := reg.Snapshot()
	got := snap.Counters[`cachesim.x_misses{phase="G",entries="base"}`]
	if uint64(got) != attr.G.BaseMisses {
		t.Errorf("published base misses = %d, want %d", got, attr.G.BaseMisses)
	}
	if snap.Counters[`cachesim.entries{phase="GT",entries="fill"}`] != int64(attr.GT.FillEntries) {
		t.Error("published GT fill entries mismatch")
	}
	h, ok := snap.Histograms[`cachesim.row_block_misses{phase="G"}`]
	if !ok || h.Count != int64(len(attr.G.RowBlockMisses)) {
		t.Errorf("row-block histogram: %+v", h)
	}

	// The labelled series must render as one Prometheus family.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sb.String(), "# TYPE cachesim_x_misses counter"); n != 1 {
		t.Errorf("cachesim_x_misses family headers = %d, want 1:\n%s", n, sb.String())
	}

	// Nil registry is a no-op.
	attr.Publish(nil)
}
