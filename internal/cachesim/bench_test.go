package cachesim

import (
	"math/rand"
	"testing"

	"repro/internal/pattern"
)

func benchPattern(n, perRow int) *pattern.Pattern {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = append(rows[i], i)
		for k := 0; k < perRow-1; k++ {
			rows[i] = append(rows[i], rng.Intn(i+1))
		}
	}
	return pattern.FromRows(n, n, rows)
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}

func BenchmarkTraceSpMV(b *testing.B) {
	p := benchPattern(4096, 8)
	c := New(Config{SizeBytes: 2 << 10, LineBytes: 64, Ways: 8})
	opt := TraceOptions{IncludeStreams: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TraceSpMV(c, p, opt)
	}
	b.SetBytes(int64(p.NNZ()))
}

func BenchmarkCountLineVisits(b *testing.B) {
	p := benchPattern(4096, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountLineVisits(p, 8, 3)
	}
	b.SetBytes(int64(p.NNZ()))
}
