// Package cachesim implements a set-associative LRU data-cache simulator and
// the SpMV access-trace driver used to count the cache misses triggered by
// accesses to the multiplying vector x in y = Ax — the quantity the paper's
// cache-friendly fill-in keeps constant while enlarging the FSAI pattern
// (Section 4, Figure 3).
//
// The simulator works at cache-line granularity with true LRU replacement
// per set, which is the standard first-order model of L1 data caches on the
// three machines of the paper (Skylake and POWER9: 64 B lines; A64FX: 256 B
// lines).
package cachesim

import "fmt"

// Config describes a cache level's geometry.
type Config struct {
	SizeBytes int // total capacity
	LineBytes int // line (block) size
	Ways      int // associativity; Ways == SizeBytes/LineBytes gives fully associative
}

// Validate checks that the geometry is internally consistent: positive
// power-of-two line size, capacity divisible into an integral number of
// sets.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: non-positive size or ways")
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cachesim: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d is not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative cache with LRU replacement. Addresses are byte
// addresses; the cache is indexed with the standard offset/index/tag split
// of the physical (== virtual, for index+offset bits) address described in
// Section 4.1.
type Cache struct {
	cfg        Config
	sets       int
	ways       int
	lineShift  uint
	setMask    uint64
	tags       []uint64 // sets*ways entries
	valid      []bool
	age        []uint64 // LRU stamps, larger == more recent
	clock      uint64
	nAccesses  uint64
	nMisses    uint64
	nEvictions uint64
}

// New builds a cache from cfg; invalid geometry panics (configurations are
// compile-time constants of the arch models, so misuse is a programmer bug).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		ways:      cfg.Ways,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, lines),
		valid:     make([]bool, lines),
		age:       make([]uint64, lines),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Reset invalidates all lines and clears counters. LRU stamps are cleared
// too so a reset cache is indistinguishable from a fresh one (stale stamps
// must not bias victim selection).
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
	}
	c.clock = 0
	c.nAccesses, c.nMisses, c.nEvictions = 0, 0, 0
}

// Access simulates a load of the byte at addr and returns true on a hit.
// On a miss the line is filled, evicting the LRU way of its set.
func (c *Cache) Access(addr uint64) bool {
	c.nAccesses++
	c.clock++
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> uint(0) // full line number serves as tag (set bits redundant but harmless)
	base := set * c.ways
	// Hit scan.
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.age[base+w] = c.clock
			return true
		}
	}
	// Miss: fill the first invalid way, else the LRU way. The scan must
	// consider way 0's validity explicitly — assuming it as a fallback
	// victim would let a stale high age stamp keep it unfilled.
	c.nMisses++
	victim := base
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.age[base+w] < c.age[victim] {
			victim = base + w
		}
	}
	if c.valid[victim] {
		c.nEvictions++
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.age[victim] = c.clock
	return false
}

// Touch is Access for callers that don't care about the hit/miss result.
func (c *Cache) Touch(addr uint64) { c.Access(addr) }

// Accesses returns the number of simulated accesses since the last Reset.
func (c *Cache) Accesses() uint64 { return c.nAccesses }

// Misses returns the number of misses since the last Reset.
func (c *Cache) Misses() uint64 { return c.nMisses }

// Evictions returns the number of valid-line evictions since the last Reset.
func (c *Cache) Evictions() uint64 { return c.nEvictions }

// MissRate returns misses/accesses (0 when no accesses happened).
func (c *Cache) MissRate() float64 {
	if c.nAccesses == 0 {
		return 0
	}
	return float64(c.nMisses) / float64(c.nAccesses)
}
