package cachesim

// Cache-miss attribution: the profiler behind the run report's "cache"
// section. TraceSpMV/TracePrecondition answer *how many* x-access misses a
// sweep pays; the attributed variants answer *where they come from* —
// which solver phase (the Gp product vs. the Gᵀp product), which entry
// class (base-pattern entries vs. cache-friendly fill-in), and which region
// of the matrix (row blocks). The paper's Section 4 claim is precisely an
// attribution statement: the fill-in entries FSAIE adds must land on
// already-visited cache lines, so the *fill* share of misses should stay
// near zero while the fill share of entries grows.

import (
	"repro/internal/pattern"
	"repro/internal/telemetry"
)

// DefaultRowBlocks is the row-block resolution of the attribution profile:
// rows are bucketed into at most this many equal blocks.
const DefaultRowBlocks = 64

// BlockRowsFor returns the rows-per-block granularity that buckets n rows
// into at most DefaultRowBlocks blocks (at least one row per block).
func BlockRowsFor(n int) int {
	b := (n + DefaultRowBlocks - 1) / DefaultRowBlocks
	if b < 1 {
		b = 1
	}
	return b
}

// SweepAttrib is the x-access miss attribution of one SpMV sweep.
type SweepAttrib struct {
	// Phase names the sweep: "G" (the Gp product) or "GT" (the Gᵀp product).
	Phase string
	// BaseEntries/FillEntries count the sweep's stored entries by class:
	// positions present in the base (pre-extension) pattern vs. fill-in.
	BaseEntries int
	FillEntries int
	// BaseMisses/FillMisses split the sweep's x-access misses by the class
	// of the entry whose access missed.
	BaseMisses uint64
	FillMisses uint64
	// RowBlockMisses buckets the sweep's misses by row region: block k
	// covers rows [k*BlockRows, (k+1)*BlockRows).
	RowBlockMisses []uint64
}

// Misses returns the sweep's total x-access misses.
func (s *SweepAttrib) Misses() uint64 { return s.BaseMisses + s.FillMisses }

// MissPerBaseNNZ returns base-entry misses per base entry (0 when empty).
func (s *SweepAttrib) MissPerBaseNNZ() float64 {
	if s.BaseEntries == 0 {
		return 0
	}
	return float64(s.BaseMisses) / float64(s.BaseEntries)
}

// MissPerFillNNZ returns fill-entry misses per fill entry (0 when empty).
// The paper's Figure 3 argument is that this stays near zero for the
// cache-friendly extension and blows up for random extensions.
func (s *SweepAttrib) MissPerFillNNZ() float64 {
	if s.FillEntries == 0 {
		return 0
	}
	return float64(s.FillMisses) / float64(s.FillEntries)
}

// PrecondAttrib is the attributed trace of one full preconditioner
// application GᵀGp.
type PrecondAttrib struct {
	LineBytes int
	BlockRows int
	G, GT     SweepAttrib
}

// Misses returns the total x-access misses over both sweeps.
func (a *PrecondAttrib) Misses() uint64 { return a.G.Misses() + a.GT.Misses() }

// MissPerNNZ returns total misses normalized by the stored entries of G
// (each sweep stores nnz(G) entries) — the Figure 3 metric.
func (a *PrecondAttrib) MissPerNNZ() float64 {
	nnz := a.G.BaseEntries + a.G.FillEntries
	if nnz == 0 {
		return 0
	}
	return float64(a.Misses()) / float64(nnz)
}

// sweepAttrib replays one pattern sweep through c, attributing each
// x-access miss to the entry's class (present in base or not) and row
// block. The stream cursors mirror TracePrecondition exactly so attributed
// totals equal the unattributed trace.
func sweepAttrib(c *Cache, p, base *pattern.Pattern, opt TraceOptions, blockRows int,
	valAddr, idxAddr, yAddr *uint64) SweepAttrib {
	xBase := XBase + uint64(opt.AlignElems)*ElemBytes
	out := SweepAttrib{
		RowBlockMisses: make([]uint64, (p.Rows+blockRows-1)/blockRows),
	}
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		bRow := base.Row(i)
		kb := 0
		block := i / blockRows
		for _, j := range row {
			// Two-pointer membership test against the sorted base row.
			for kb < len(bRow) && bRow[kb] < j {
				kb++
			}
			isBase := kb < len(bRow) && bRow[kb] == j
			if opt.IncludeStreams {
				c.Touch(*valAddr)
				c.Touch(*idxAddr)
				*valAddr += 8
				*idxAddr += 4
			}
			before := c.Misses()
			c.Access(xBase + uint64(j)*ElemBytes)
			miss := c.Misses() - before
			if isBase {
				out.BaseEntries++
				out.BaseMisses += miss
			} else {
				out.FillEntries++
				out.FillMisses += miss
			}
			out.RowBlockMisses[block] += miss
		}
		if opt.IncludeStreams {
			c.Touch(*yAddr)
			*yAddr += 8
		}
	}
	return out
}

// TracePreconditionAttrib is TracePrecondition with per-phase, per-class and
// per-row-block miss attribution. g is the final (possibly extended) pattern
// of the lower factor; base its pre-extension pattern (entries of g present
// in base are "base" entries, the rest are fill-in; pass g itself for an
// unextended factor). blockRows <= 0 picks BlockRowsFor(g.Rows).
//
// Both sweeps run through the same cache without an intervening reset,
// matching TracePrecondition: attributed totals are bit-identical to the
// unattributed trace.
func TracePreconditionAttrib(c *Cache, g, base *pattern.Pattern, opt TraceOptions, blockRows int) PrecondAttrib {
	c.Reset()
	if blockRows <= 0 {
		blockRows = BlockRowsFor(g.Rows)
	}
	gt := g.Transpose()
	baseT := base.Transpose()
	valAddr := streamBase
	idxAddr := streamBase + 1<<32
	yAddr := streamBase + 2<<32
	out := PrecondAttrib{LineBytes: c.Config().LineBytes, BlockRows: blockRows}
	out.G = sweepAttrib(c, g, base, opt, blockRows, &valAddr, &idxAddr, &yAddr)
	out.G.Phase = "G"
	out.GT = sweepAttrib(c, gt, baseT, opt, blockRows, &valAddr, &idxAddr, &yAddr)
	out.GT.Phase = "GT"
	return out
}

// Publish records the attribution in reg as labelled series: per-phase,
// per-class x-miss and entry counters, and one per-phase histogram over the
// row-block miss counts (the spatial profile of where misses concentrate).
// Nil-safe on a nil registry.
func (a *PrecondAttrib) Publish(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.SetHelp("cachesim_x_misses", "simulated L1 x-access misses by solver phase and entry class")
	reg.SetHelp("cachesim_entries", "stored pattern entries by solver phase and entry class")
	reg.SetHelp("cachesim_row_block_misses", "distribution of x-access misses over row blocks, by solver phase")
	for _, s := range []*SweepAttrib{&a.G, &a.GT} {
		reg.Counter(`cachesim.x_misses{phase="` + s.Phase + `",entries="base"}`).Add(int64(s.BaseMisses))
		reg.Counter(`cachesim.x_misses{phase="` + s.Phase + `",entries="fill"}`).Add(int64(s.FillMisses))
		reg.Counter(`cachesim.entries{phase="` + s.Phase + `",entries="base"}`).Add(int64(s.BaseEntries))
		reg.Counter(`cachesim.entries{phase="` + s.Phase + `",entries="fill"}`).Add(int64(s.FillEntries))
		h := reg.Histogram(`cachesim.row_block_misses{phase="`+s.Phase+`"}`, telemetry.ExpBuckets(1, 4, 10))
		for _, m := range s.RowBlockMisses {
			h.Observe(float64(m))
		}
	}
}
