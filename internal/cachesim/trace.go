package cachesim

import (
	"unsafe"

	"repro/internal/pattern"
	"repro/internal/sparse"
)

// ElemBytes is the storage size of one vector element (double precision).
const ElemBytes = 8

// AlignOf returns the element offset of x[0] within its cache line, i.e.
// address(x[0])/8 mod (lineBytes/8) — exactly the virtual-address modulo of
// Section 4.1. The result is in [0, lineBytes/8).
func AlignOf(x []float64, lineBytes int) int {
	if len(x) == 0 {
		return 0
	}
	addr := uintptr(unsafe.Pointer(&x[0]))
	elemsPerLine := lineBytes / ElemBytes
	return int(addr/ElemBytes) % elemsPerLine
}

// AllocAligned allocates a float64 slice of length n whose first element
// sits at element offset offsetElems within a lineBytes cache line. This
// makes the cache-friendly extension deterministic across runs: the paper's
// algorithm takes the actual alignment of the multiplying vector as input,
// and experiments fix it so patterns are reproducible.
func AllocAligned(n, lineBytes, offsetElems int) []float64 {
	elemsPerLine := lineBytes / ElemBytes
	if elemsPerLine <= 0 {
		panic("cachesim: line smaller than one element")
	}
	offsetElems %= elemsPerLine
	if offsetElems < 0 {
		offsetElems += elemsPerLine
	}
	buf := make([]float64, n+2*elemsPerLine)
	cur := AlignOf(buf, lineBytes)
	shift := (offsetElems - cur + elemsPerLine) % elemsPerLine
	return buf[shift : shift+n : shift+n]
}

// TraceOptions configures an SpMV cache trace.
type TraceOptions struct {
	// AlignElems is the element offset of x[0] within its cache line.
	AlignElems int
	// IncludeStreams additionally streams the matrix value/index arrays and
	// the output vector through the cache, modelling the eviction pressure
	// the stride-1 accesses put on x's lines. When false only x accesses
	// enter the cache (pure spatial-reuse model).
	IncludeStreams bool
}

// XBase is the synthetic base byte address used for vector x in traces; it
// is line-aligned for AlignElems == 0 and far from the stream addresses.
const XBase uint64 = 1 << 30

// streamBase places the matrix/output streams in a distinct address region.
const streamBase uint64 = 1 << 34

// TraceSpMV replays the x-access stream of y = Mx (M given by its pattern:
// row-order CSR traversal touching x[j] for every stored (i,j)) through the
// cache and returns the number of misses attributable to x accesses.
//
// The cache is reset first, so the count is a cold-start measurement of one
// SpMV sweep, matching how the paper normalizes Figure 3 (misses per nnz).
func TraceSpMV(c *Cache, p *pattern.Pattern, opt TraceOptions) uint64 {
	c.Reset()
	xBase := XBase + uint64(opt.AlignElems)*ElemBytes
	var xMisses uint64
	// Stream cursors for A's values (8 B), column indices (4 B) and y (8 B).
	valAddr := streamBase
	idxAddr := streamBase + 1<<32
	yAddr := streamBase + 2<<32
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		for _, j := range row {
			if opt.IncludeStreams {
				c.Touch(valAddr)
				c.Touch(idxAddr)
				valAddr += 8
				idxAddr += 4
			}
			before := c.Misses()
			c.Access(xBase + uint64(j)*ElemBytes)
			xMisses += c.Misses() - before
		}
		if opt.IncludeStreams {
			c.Touch(yAddr)
			yAddr += 8
		}
	}
	return xMisses
}

// TraceCSR is TraceSpMV for a CSR matrix (its pattern is used).
func TraceCSR(c *Cache, m *sparse.CSR, opt TraceOptions) uint64 {
	return TraceSpMV(c, pattern.FromCSR(m), opt)
}

// TracePrecondition counts x-access misses over the full preconditioning
// operation GᵀG p: one SpMV with G (CSR, row order, gathering from p) and
// one with Gᵀ (its own CSR pattern, gathering from the intermediate vector).
// Both sweeps run through the same cache without an intervening reset,
// which captures the temporal-locality coupling between the two products
// that FSAIE(full) exploits (Section 6). It returns the x-access misses of
// each sweep separately.
func TracePrecondition(c *Cache, g *pattern.Pattern, opt TraceOptions) (gMisses, gtMisses uint64) {
	c.Reset()
	gt := g.Transpose()
	xBase := XBase + uint64(opt.AlignElems)*ElemBytes
	valAddr := streamBase
	idxAddr := streamBase + 1<<32
	yAddr := streamBase + 2<<32
	sweep := func(p *pattern.Pattern) uint64 {
		var xMisses uint64
		for i := 0; i < p.Rows; i++ {
			for _, j := range p.Row(i) {
				if opt.IncludeStreams {
					c.Touch(valAddr)
					c.Touch(idxAddr)
					valAddr += 8
					idxAddr += 4
				}
				before := c.Misses()
				c.Access(xBase + uint64(j)*ElemBytes)
				xMisses += c.Misses() - before
			}
			if opt.IncludeStreams {
				c.Touch(yAddr)
				yAddr += 8
			}
		}
		return xMisses
	}
	gMisses = sweep(g)
	gtMisses = sweep(gt)
	return gMisses, gtMisses
}

// CountLineVisits returns the number of distinct x cache lines touched per
// row, summed over all rows of the pattern, for a given line width (in
// elements) and alignment. Within a row, entries whose x elements share a
// line count once: the cache-friendly fill-in adds entries without adding
// line visits, which is why its extensions are nearly free.
//
// Rows are assumed sorted (the pattern invariant), so distinct lines are
// counted with a last-block comparison, exactly the "already considered
// column block" test of Algorithm 3.
func CountLineVisits(p *pattern.Pattern, elemsPerLine, alignElems int) int {
	if elemsPerLine < 1 {
		panic("cachesim: elemsPerLine must be >= 1")
	}
	alignElems %= elemsPerLine
	if alignElems < 0 {
		alignElems += elemsPerLine
	}
	visits := 0
	for i := 0; i < p.Rows; i++ {
		last := -1
		for _, j := range p.Row(i) {
			b := (j + alignElems) / elemsPerLine
			if b != last {
				visits++
				last = b
			}
		}
	}
	return visits
}

// MissesPerNNZ returns misses normalized by the stored-entry count of p,
// the Figure 3 metric.
func MissesPerNNZ(misses uint64, p *pattern.Pattern) float64 {
	if p.NNZ() == 0 {
		return 0
	}
	return float64(misses) / float64(p.NNZ())
}
