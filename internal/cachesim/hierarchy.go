package cachesim

import "fmt"

// Hierarchy simulates an inclusive multi-level data-cache hierarchy: an
// access probes level 0 (L1) first and, on a miss, descends until it hits
// or reaches memory; the line is then filled into every level above the
// hit. This refines the single-level model for studies where the L2's
// larger capacity matters (the FSAI campaign itself reports L1 misses,
// matching the paper's Figure 3 measurements).
type Hierarchy struct {
	levels []*Cache
	// fills[k] counts accesses whose data came from level k (fills[len]
	// counts memory accesses).
	fills     []uint64
	nAccesses uint64
}

// NewHierarchy builds a hierarchy from level configs ordered L1 first.
// All levels must share the same line size (mixed-line hierarchies exist,
// e.g. POWER9's 128-byte L2 sectors, but are out of scope).
func NewHierarchy(cfgs ...Config) *Hierarchy {
	if len(cfgs) == 0 {
		panic("cachesim: hierarchy needs at least one level")
	}
	h := &Hierarchy{fills: make([]uint64, len(cfgs)+1)}
	line := cfgs[0].LineBytes
	for _, cfg := range cfgs {
		if cfg.LineBytes != line {
			panic(fmt.Sprintf("cachesim: mixed line sizes %d vs %d", cfg.LineBytes, line))
		}
		h.levels = append(h.levels, New(cfg))
	}
	return h
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Access simulates a load and returns the level that served it: 0 for an
// L1 hit, 1 for an L2 hit, ..., Levels() for memory.
func (h *Hierarchy) Access(addr uint64) int {
	h.nAccesses++
	served := len(h.levels)
	for k, c := range h.levels {
		if c.Access(addr) {
			served = k
			break
		}
	}
	// Access already filled every missed level down to the hit (or all of
	// them on a memory access), because Cache.Access installs on miss.
	h.fills[served]++
	return served
}

// Reset clears all levels and counters.
func (h *Hierarchy) Reset() {
	for _, c := range h.levels {
		c.Reset()
	}
	for i := range h.fills {
		h.fills[i] = 0
	}
	h.nAccesses = 0
}

// Accesses returns the total accesses since the last Reset.
func (h *Hierarchy) Accesses() uint64 { return h.nAccesses }

// ServedBy returns how many accesses were served by level k (k == Levels()
// means memory).
func (h *Hierarchy) ServedBy(k int) uint64 { return h.fills[k] }

// MissesAt returns the miss count of level k's cache.
func (h *Hierarchy) MissesAt(k int) uint64 { return h.levels[k].Misses() }

// Level exposes level k's cache (for geometry queries in reports).
func (h *Hierarchy) Level(k int) *Cache { return h.levels[k] }
