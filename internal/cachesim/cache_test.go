package cachesim

import (
	"testing"

	"repro/internal/pattern"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 32 << 10, LineBytes: 48, Ways: 8}, // non-power-of-two line
		{SizeBytes: 0, LineBytes: 64, Ways: 8},        // zero size
		{SizeBytes: 32 << 10, LineBytes: 64, Ways: 0}, // zero ways
		{SizeBytes: 100, LineBytes: 64, Ways: 1},      // size not multiple of line
		{SizeBytes: 192, LineBytes: 64, Ways: 1},      // sets=3 not a power of two
		{SizeBytes: 64 * 7, LineBytes: 64, Ways: 2},   // lines not divisible by ways... 7/2
		{SizeBytes: -64, LineBytes: 64, Ways: 1},      // negative
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d (%+v) accepted", i, c)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2})
	if c.Access(0) {
		t.Error("cold access hit")
	}
	if !c.Access(0) || !c.Access(63) {
		t.Error("same line should hit")
	}
	if c.Access(64) {
		t.Error("next line should miss")
	}
	if c.Misses() != 2 || c.Accesses() != 4 {
		t.Errorf("misses=%d accesses=%d", c.Misses(), c.Accesses())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, 2 sets of 64B lines = 256B cache.
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	// Three lines mapping to set 0: line numbers 0, 2, 4 (even → set 0).
	c.Access(0 * 64)
	c.Access(2 * 64)
	c.Access(0 * 64) // touch line 0: line 2 becomes LRU
	c.Access(4 * 64) // evicts line 2
	if !c.Access(0 * 64) {
		t.Error("line 0 should still be resident")
	}
	if c.Access(2 * 64) {
		t.Error("line 2 should have been evicted")
	}
	if c.Evictions() == 0 {
		t.Error("eviction counter not incremented")
	}
}

func TestFullyAssociative(t *testing.T) {
	// 4 lines fully associative.
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 4})
	for i := 0; i < 4; i++ {
		c.Access(uint64(i * 64))
	}
	for i := 0; i < 4; i++ {
		if !c.Access(uint64(i * 64)) {
			t.Errorf("line %d should be resident", i)
		}
	}
	c.Access(4 * 64) // evicts LRU = line 0
	if c.Access(0) {
		t.Error("line 0 should have been evicted (LRU)")
	}
}

func TestReset(t *testing.T) {
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 4})
	c.Access(0)
	c.Reset()
	if c.Accesses() != 0 || c.Misses() != 0 {
		t.Error("counters not reset")
	}
	if c.Access(0) {
		t.Error("line survived reset")
	}
}

func TestResetEquivalentToFreshCache(t *testing.T) {
	// A reset cache must reproduce a fresh cache's miss sequence exactly:
	// stale LRU stamps must not bias victim selection (historically they
	// could leave way 0 unfilled, shrinking the effective associativity).
	cfg := Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 4}
	addrs := make([]uint64, 0, 4096)
	for i := 0; i < 4096; i++ {
		addrs = append(addrs, uint64((i*2654435761)%(1<<16)))
	}
	run := func(c *Cache) uint64 {
		for _, a := range addrs {
			c.Access(a)
		}
		return c.Misses()
	}
	fresh := run(New(cfg))
	warm := New(cfg)
	run(warm)
	warm.Reset()
	if again := run(warm); again != fresh {
		t.Fatalf("post-reset misses %d != fresh misses %d", again, fresh)
	}
}

func TestMissRate(t *testing.T) {
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 4})
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
	c.Access(0)
	c.Access(0)
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %g want 0.5", c.MissRate())
	}
}

func TestAllocAligned(t *testing.T) {
	for _, line := range []int{64, 256} {
		for off := 0; off < line/8; off += 3 {
			x := AllocAligned(100, line, off)
			if len(x) != 100 {
				t.Fatalf("length %d", len(x))
			}
			if got := AlignOf(x, line); got != off {
				t.Errorf("line=%d: AlignOf=%d want %d", line, got, off)
			}
		}
	}
	// Negative offsets wrap.
	x := AllocAligned(10, 64, -1)
	if got := AlignOf(x, 64); got != 7 {
		t.Errorf("negative offset: AlignOf=%d want 7", got)
	}
}

func TestAlignOfEmpty(t *testing.T) {
	if AlignOf(nil, 64) != 0 {
		t.Error("empty slice alignment should be 0")
	}
}

func TestTraceSpMVCompulsoryMisses(t *testing.T) {
	// Dense single row over 64 elements, aligned: 8 lines touched → 8
	// compulsory misses regardless of entry count.
	cols := make([]int, 64)
	for j := range cols {
		cols[j] = j
	}
	p := pattern.FromRows(1, 64, [][]int{cols})
	c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 8})
	misses := TraceSpMV(c, p, TraceOptions{})
	if misses != 8 {
		t.Errorf("misses=%d want 8", misses)
	}
}

func TestTraceSpMVAlignmentShift(t *testing.T) {
	// A row touching elements 0..7: aligned it is 1 line; at offset 4 the
	// elements straddle 2 lines.
	cols := []int{0, 1, 2, 3, 4, 5, 6, 7}
	p := pattern.FromRows(1, 16, [][]int{cols})
	c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 8})
	if m := TraceSpMV(c, p, TraceOptions{AlignElems: 0}); m != 1 {
		t.Errorf("aligned misses=%d want 1", m)
	}
	if m := TraceSpMV(c, p, TraceOptions{AlignElems: 4}); m != 2 {
		t.Errorf("offset misses=%d want 2", m)
	}
}

func TestTracePreconditionTemporalReuse(t *testing.T) {
	// Small pattern: the Gᵀ sweep follows the G sweep in the same cache;
	// with a cache large enough to hold all of x, the second sweep has no
	// misses at all.
	p := pattern.FromRows(4, 4, [][]int{{0}, {0, 1}, {2}, {2, 3}})
	c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 8})
	gm, gtm := TracePrecondition(c, p, TraceOptions{})
	if gm == 0 {
		t.Error("first sweep should have compulsory misses")
	}
	if gtm != 0 {
		t.Errorf("second sweep misses=%d want 0 (x resident)", gtm)
	}
}

func TestCountLineVisits(t *testing.T) {
	// Row {0,1,7} aligned: all one line → 1 visit. Row {0,8}: 2 visits.
	p := pattern.FromRows(2, 16, [][]int{{0, 1, 7}, {0, 8}})
	if v := CountLineVisits(p, 8, 0); v != 3 {
		t.Errorf("visits=%d want 3", v)
	}
	// Offset 4: {0,1} in one line, {7} in the next → row 0 has 2 visits;
	// {0} and {8} → elements 4 and 12 → lines 0 and 1 → 2 visits.
	if v := CountLineVisits(p, 8, 4); v != 4 {
		t.Errorf("offset visits=%d want 4", v)
	}
}

func TestCountLineVisitsExtensionInvariant(t *testing.T) {
	// Filling a row up to full lines must not change the visit count —
	// the core invariant the cache-friendly fill-in relies on.
	sparse := pattern.FromRows(1, 32, [][]int{{2, 9, 17}})
	full := pattern.FromRows(1, 32, [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}})
	if a, b := CountLineVisits(sparse, 8, 0), CountLineVisits(full, 8, 0); a != b {
		t.Errorf("extension changed line visits: %d vs %d", a, b)
	}
}

func TestMissesPerNNZ(t *testing.T) {
	p := pattern.FromRows(1, 8, [][]int{{0, 1, 2, 3}})
	if MissesPerNNZ(2, p) != 0.5 {
		t.Errorf("MissesPerNNZ=%g", MissesPerNNZ(2, p))
	}
	empty := pattern.New(1, 8)
	if MissesPerNNZ(2, empty) != 0 {
		t.Error("empty pattern should yield 0")
	}
}

func TestTraceWithStreamsEvictionPressure(t *testing.T) {
	// With stream inclusion, matrix/output streams flow through the cache
	// and can evict x lines; miss count must be >= the pure-x trace.
	cols := make([][]int, 64)
	for i := range cols {
		for j := 0; j <= i; j += 2 {
			cols[i] = append(cols[i], j)
		}
	}
	p := pattern.FromRows(64, 64, cols)
	c := New(Config{SizeBytes: 512, LineBytes: 64, Ways: 2})
	pure := TraceSpMV(c, p, TraceOptions{})
	streams := TraceSpMV(c, p, TraceOptions{IncludeStreams: true})
	if streams < pure {
		t.Errorf("stream pressure reduced misses: %d < %d", streams, pure)
	}
}
