package cachesim

import "testing"

func twoLevel() *Hierarchy {
	return NewHierarchy(
		Config{SizeBytes: 256, LineBytes: 64, Ways: 4},  // 4-line L1
		Config{SizeBytes: 1024, LineBytes: 64, Ways: 4}, // 16-line L2
	)
}

func TestHierarchyLevels(t *testing.T) {
	h := twoLevel()
	if h.Levels() != 2 {
		t.Fatalf("levels=%d", h.Levels())
	}
	// Cold access: served by memory.
	if lvl := h.Access(0); lvl != 2 {
		t.Errorf("cold access served by %d, want memory (2)", lvl)
	}
	// Immediate repeat: L1 hit.
	if lvl := h.Access(32); lvl != 0 {
		t.Errorf("repeat served by %d, want L1 (0)", lvl)
	}
}

func TestHierarchyL2CatchesL1Evictions(t *testing.T) {
	h := twoLevel()
	// Touch 8 distinct lines: L1 (4 lines) evicts the first ones, L2 (16
	// lines) keeps them all.
	for i := 0; i < 8; i++ {
		h.Access(uint64(i * 64))
	}
	// Line 0 was evicted from L1 but must hit in L2.
	if lvl := h.Access(0); lvl != 1 {
		t.Errorf("evicted line served by %d, want L2 (1)", lvl)
	}
	if h.ServedBy(2) != 8 {
		t.Errorf("memory accesses %d, want 8 compulsory", h.ServedBy(2))
	}
}

func TestHierarchyInclusionOnFill(t *testing.T) {
	h := twoLevel()
	h.Access(0)
	// After a memory fill the line must be resident in both levels:
	// flush-check via counters — a second access is an L1 hit.
	if lvl := h.Access(0); lvl != 0 {
		t.Errorf("after fill, served by %d", lvl)
	}
}

func TestHierarchyCounters(t *testing.T) {
	h := twoLevel()
	for i := 0; i < 20; i++ {
		h.Access(uint64((i % 5) * 64))
	}
	var sum uint64
	for k := 0; k <= h.Levels(); k++ {
		sum += h.ServedBy(k)
	}
	if sum != h.Accesses() || h.Accesses() != 20 {
		t.Errorf("counters inconsistent: sum=%d accesses=%d", sum, h.Accesses())
	}
	h.Reset()
	if h.Accesses() != 0 || h.ServedBy(0) != 0 || h.MissesAt(0) != 0 {
		t.Error("reset incomplete")
	}
}

func TestHierarchyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on empty hierarchy")
		}
	}()
	NewHierarchy()
}

func TestHierarchyMixedLinesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on mixed line sizes")
		}
	}()
	NewHierarchy(
		Config{SizeBytes: 256, LineBytes: 64, Ways: 4},
		Config{SizeBytes: 1024, LineBytes: 128, Ways: 4},
	)
}
