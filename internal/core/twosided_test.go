package fsai

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/matgen"
	"repro/internal/pattern"
)

// TestFullExtensionTransposedFixpoint checks the structural guarantee of
// Algorithm 4's two-step construction (Section 6): after the second
// extension pass (on the transposed pattern) with filter 0, the *transposed*
// final pattern is cache-line closed — extending it again adds nothing. A
// simultaneous one-shot extension of G and Gᵀ could not guarantee this.
func TestFullExtensionTransposedFixpoint(t *testing.T) {
	for _, name := range []string{"lap64x64", "wathen20x20", "band1200-bw8-d0.25"} {
		spec, ok := matgen.ByName(name)
		if !ok {
			t.Fatal("missing spec")
		}
		a := spec.Generate()
		opts := DefaultOptions()
		opts.Filter = 0 // no filtering: the pure structural construction
		opts.MaxRowNNZ = 0
		p, err := Compute(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		final := p.FinalPattern
		tp := final.Transpose()
		again := ExtendPattern(tp, 8, 0, ClipUpper, 0)
		if !again.Equal(tp) {
			t.Errorf("%s: transposed final pattern is not line-closed: %d -> %d entries",
				name, tp.NNZ(), again.NNZ())
		}
	}
}

// TestFullCoversBothProductsLineVisits verifies the performance intent of
// the two-sided construction: per stored entry, FSAIE(full)'s Gᵀ sweep
// touches no more x lines than FSAIE(sp)'s — the temporal+spatial coverage
// of Section 6.
func TestFullCoversBothProductsLineVisits(t *testing.T) {
	spec, _ := matgen.ByName("lap64x64")
	a := spec.Generate()
	lvPerNNZ := func(v Variant) (g, gt float64) {
		opts := DefaultOptions()
		opts.Variant = v
		opts.Filter = 0
		opts.MaxRowNNZ = 0
		p, err := Compute(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		gp := pattern.FromCSR(p.G)
		n := float64(p.NNZ())
		return float64(cachesim.CountLineVisits(gp, 8, 0)) / n,
			float64(cachesim.CountLineVisits(gp.Transpose(), 8, 0)) / n
	}
	spG, spGT := lvPerNNZ(VariantSp)
	fuG, fuGT := lvPerNNZ(VariantFull)
	t.Logf("line visits per entry: sp G=%.3f GT=%.3f | full G=%.3f GT=%.3f", spG, spGT, fuG, fuGT)
	if fuGT > spGT+1e-12 {
		t.Errorf("full's GT sweep (%.3f visits/entry) should not exceed sp's (%.3f)", fuGT, spGT)
	}
}
