// Package fsai implements the paper's primary contribution: the Factorized
// Sparse Approximate Inverse preconditioner (G^T G ≈ A^{-1}) with
// cache-aware sparse-pattern extensions.
//
// Three preconditioner variants are provided, matching Section 7.1:
//
//   - FSAI: the state-of-the-art baseline (Algorithm 1) — pattern is the
//     lower triangle of A (or of Ã^N), values from the row-wise Frobenius
//     minimization, classic post-filtering.
//   - FSAIE(sp): Algorithm 4 without steps 5–6 — the pattern of G is
//     extended with cache-friendly entries (spatial locality of the Gp
//     product), precalculated, and filtered before the final solve.
//   - FSAIE(full): full Algorithm 4 — the extension/precalculation/filter
//     sequence is applied to the pattern and then again to its transpose,
//     optimizing both Gp and G^T p.
package fsai

import "repro/internal/pattern"

// Clip restricts which extension candidates are admissible for a pattern.
type Clip int

const (
	// ClipNone admits any column in the cache-line block.
	ClipNone Clip = iota
	// ClipLower admits only columns j <= i (lower-triangular patterns, the
	// pattern of G). Entries above the diagonal would leave the space of
	// lower-triangular factors, so Algorithm 3 discards them.
	ClipLower
	// ClipUpper admits only columns j >= i (the pattern of G^T, used by the
	// second extension pass of FSAIE(full)).
	ClipUpper
)

func (c Clip) admits(i, j int) bool {
	switch c {
	case ClipLower:
		return j <= i
	case ClipUpper:
		return j >= i
	default:
		return true
	}
}

// ExtendPattern implements Algorithm 3 (Cache-Friendly Fill-In). It returns
// the input pattern s extended with every column whose x-vector element
// shares a cache line with an element already accessed by s, subject to the
// triangular clip.
//
// elemsPerLine is the number of vector elements per cache line
// (lineBytes/8 for float64), alignElems the element offset of x[0] within
// its line (Section 4.1's virtual-address modulo). Entries of x[j] fall in
// line block (j+alignElems)/elemsPerLine; for each block touched by a row
// the whole admissible column range of the block is added.
//
// The "already considered column block" skip of Algorithm 3 (lines 6-8)
// falls out of the blocks being visited in ascending column order.
//
// maxRow, when positive, bounds the extended size of each row: once a row
// reaches maxRow entries no further line blocks are expanded for it (the
// original entries are always kept). This is an implementation safety bound
// — on patterns with highly scattered rows (random graphs) and large cache
// lines, the unfiltered extension can approach dense rows, making the local
// Frobenius solves cubically expensive; the cap keeps setup tractable while
// leaving realistic patterns untouched. maxRow <= 0 disables the bound.
func ExtendPattern(s *pattern.Pattern, elemsPerLine, alignElems int, clip Clip, maxRow int) *pattern.Pattern {
	if elemsPerLine < 1 {
		panic("fsai: elemsPerLine must be >= 1")
	}
	alignElems %= elemsPerLine
	if alignElems < 0 {
		alignElems += elemsPerLine
	}
	out := pattern.New(s.Rows, s.NCols)
	var ext []int
	for i := 0; i < s.Rows; i++ {
		row := s.Row(i)
		ext = ext[:0]
		added := 0
		lastBlock := -1
		for _, j := range row {
			block := (j + alignElems) / elemsPerLine
			if block == lastBlock {
				continue // line already considered for this row
			}
			if maxRow > 0 && len(row)+added >= maxRow {
				break
			}
			lastBlock = block
			j0 := block*elemsPerLine - alignElems
			j1 := j0 + elemsPerLine - 1
			if j0 < 0 {
				j0 = 0
			}
			if j1 >= s.NCols {
				j1 = s.NCols - 1
			}
			for j2 := j0; j2 <= j1; j2++ {
				if clip.admits(i, j2) {
					ext = append(ext, j2)
					if j2 != j {
						added++
					}
				}
			}
		}
		// ext is sorted (ascending blocks, ascending within block); merging
		// with row keeps every original entry even when the cap truncated
		// the block expansion.
		out.AppendRowMerge(row, ext)
	}
	return out
}

// ExtensionOf returns the positions of ext that are not in base, row by row,
// as a pattern. Both patterns must have identical shapes and base ⊆ ext.
func ExtensionOf(base, ext *pattern.Pattern) *pattern.Pattern {
	if base.Rows != ext.Rows || base.NCols != ext.NCols {
		panic("fsai: ExtensionOf shape mismatch")
	}
	out := pattern.New(base.Rows, base.NCols)
	for i := 0; i < base.Rows; i++ {
		b, e := base.Row(i), ext.Row(i)
		kb := 0
		for _, j := range e {
			for kb < len(b) && b[kb] < j {
				kb++
			}
			if kb < len(b) && b[kb] == j {
				continue
			}
			out.AppendCol(j)
		}
		out.CloseRow(i)
	}
	return out
}
