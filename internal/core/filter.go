package fsai

import (
	"math"

	"repro/internal/pattern"
	"repro/internal/sparse"
)

// filterExtension implements the precalculation-based filtering of
// Section 5: given the extended pattern ext (⊇ base), and an (approximate
// or exact) G evaluated on ext, it returns the pattern keeping
//
//   - every base entry unconditionally (filtering "removes only entries of
//     the extension", Section 7.1), and
//   - every extension entry (i,j) with |g_ij| >= filter * |g_ii| — the
//     scale-independent order-of-magnitude comparison of non-diagonal
//     entries with respect to the diagonal entry.
//
// filter == 0 keeps the whole extension.
func filterExtension(base, ext *pattern.Pattern, g *sparse.CSR, filter float64) *pattern.Pattern {
	if filter <= 0 {
		return ext.Clone()
	}
	out := pattern.New(ext.Rows, ext.NCols)
	for i := 0; i < ext.Rows; i++ {
		cols, vals := g.Row(i)
		// Diagonal magnitude: the pattern is lower triangular with the
		// diagonal last in the row.
		diag := math.Abs(vals[len(vals)-1])
		b := base.Row(i)
		kb := 0
		for k, j := range cols {
			for kb < len(b) && b[kb] < j {
				kb++
			}
			inBase := kb < len(b) && b[kb] == j
			if inBase || j == i || math.Abs(vals[k]) >= filter*diag {
				out.AppendCol(j)
			}
		}
		out.CloseRow(i)
	}
	return out
}

// postFilterRescale implements the classical filtering of Algorithm 1 step 4
// used for the Table 3 comparison: G has already been computed exactly on
// the extended pattern; extension entries with |g_ij| < filter * |g_ii| are
// dropped *after* the fact, and each surviving row is rescaled so that
// diag(G A Gᵀ) = 1 again (g_i ← g_i / sqrt(g_iᵀ A g_i)). Unlike the
// precalculation strategy, the surviving values are no longer the Frobenius
// minimizer on the filtered pattern.
//
// Base entries are never dropped, mirroring the extension-only filtering of
// the evaluated configurations.
func postFilterRescale(a *sparse.CSR, base *pattern.Pattern, g *sparse.CSR, filter float64) *sparse.CSR {
	out := &sparse.CSR{Rows: g.Rows, Cols: g.Cols, RowPtr: make([]int, g.Rows+1)}
	for i := 0; i < g.Rows; i++ {
		cols, vals := g.Row(i)
		diag := math.Abs(vals[len(vals)-1])
		b := base.Row(i)
		kb := 0
		start := len(out.ColIdx)
		for k, j := range cols {
			for kb < len(b) && b[kb] < j {
				kb++
			}
			inBase := kb < len(b) && b[kb] == j
			if !inBase && j != i && math.Abs(vals[k]) < filter*diag {
				continue
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, vals[k])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
		// Rescale the row: q = g_iᵀ A g_i over the surviving support.
		rowCols := out.ColIdx[start:]
		rowVals := out.Val[start:]
		q := quadraticForm(a, rowCols, rowVals)
		if q > 0 {
			s := 1 / math.Sqrt(q)
			for k := range rowVals {
				rowVals[k] *= s
			}
		}
	}
	return out
}

// quadraticForm computes vᵀ A v for a sparse vector v given by sorted
// indices cols and values vals.
func quadraticForm(a *sparse.CSR, cols []int, vals []float64) float64 {
	q := 0.0
	for k, i := range cols {
		acols, avals := a.Row(i)
		// Dot the sparse row of A with the sparse vector.
		ka, kv := 0, 0
		s := 0.0
		for ka < len(acols) && kv < len(cols) {
			switch {
			case acols[ka] == cols[kv]:
				s += avals[ka] * vals[kv]
				ka++
				kv++
			case acols[ka] < cols[kv]:
				ka++
			default:
				kv++
			}
		}
		q += vals[k] * s
	}
	return q
}
