package fsai

import (
	"testing"

	"repro/internal/krylov"
	"repro/internal/matgen"
)

func TestAdaptivePatternsAreLowerTriangularWithDiagonal(t *testing.T) {
	a := matgen.Laplace2D(12, 12)
	p, err := ComputeAdaptive(a, AdaptiveOptions{MaxPerRow: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FinalPattern.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Rows; i++ {
		row := p.FinalPattern.Row(i)
		if len(row) == 0 || row[len(row)-1] != i {
			t.Fatalf("row %d: diagonal not last: %v", i, row)
		}
		for _, j := range row {
			if j > i {
				t.Fatalf("row %d: entry above diagonal: %v", i, row)
			}
		}
		if len(row) > 8 {
			t.Fatalf("row %d exceeds budget: %d", i, len(row))
		}
	}
}

func TestAdaptiveBeatsStaticAtSameBudget(t *testing.T) {
	// On an anisotropic problem, an adaptively grown pattern of ~k entries
	// per row should beat (or at least match) the static lower(A) pattern,
	// which has at most 3-5 entries per row, and approach the quality of
	// much denser static patterns.
	a := matgen.Anisotropic2D(32, 32, 0.01)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	static, err := Compute(a, Options{Variant: VariantFSAI, LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	resStatic := krylov.Solve(a, x, b, static, krylov.DefaultOptions())

	adapt, err := ComputeAdaptive(a, AdaptiveOptions{MaxPerRow: 8, Tol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	resAdapt := krylov.Solve(a, x, b, adapt, krylov.DefaultOptions())
	t.Logf("static: %d iters (nnz %d); adaptive: %d iters (nnz %d)",
		resStatic.Iterations, static.NNZ(), resAdapt.Iterations, adapt.NNZ())
	if !resAdapt.Converged {
		t.Fatal("adaptive did not converge")
	}
	if resAdapt.Iterations > resStatic.Iterations {
		t.Errorf("adaptive (%d) should not lose to static lower(A) (%d)",
			resAdapt.Iterations, resStatic.Iterations)
	}
}

func TestAdaptiveCacheExtensionComposes(t *testing.T) {
	// Section 8's claim: the cache-friendly extension improves *any*
	// pattern strategy. Extending the adaptive pattern must not hurt
	// iterations and must keep the adaptive entries.
	a := matgen.JumpCoefficient2D(32, 32, 4, 1e3, 3)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)

	plainOpts := AdaptiveOptions{MaxPerRow: 8, Tol: 0.02}
	p1, err := ComputeAdaptive(a, plainOpts)
	if err != nil {
		t.Fatal(err)
	}
	r1 := krylov.Solve(a, x, b, p1, krylov.DefaultOptions())

	extOpts := plainOpts
	extOpts.CacheExtend = 64
	extOpts.Filter = 0.01
	p2, err := ComputeAdaptive(a, extOpts)
	if err != nil {
		t.Fatal(err)
	}
	r2 := krylov.Solve(a, x, b, p2, krylov.DefaultOptions())

	t.Logf("adaptive: %d iters (nnz %d); +cache extension: %d iters (nnz %d)",
		r1.Iterations, p1.NNZ(), r2.Iterations, p2.NNZ())
	if !p1.BasePattern.SubsetOf(p2.FinalPattern) {
		t.Error("extension lost adaptive entries")
	}
	if p2.NNZ() <= p1.NNZ() {
		t.Error("extension added nothing")
	}
	if r2.Iterations > r1.Iterations {
		t.Errorf("extension hurt iterations: %d -> %d", r1.Iterations, r2.Iterations)
	}
}

func TestAdaptiveTolStopsGrowth(t *testing.T) {
	// A very loose tolerance keeps patterns near-diagonal; a tight one
	// grows them toward the budget.
	a := matgen.Laplace2D(10, 10)
	loose, err := ComputeAdaptive(a, AdaptiveOptions{MaxPerRow: 10, Tol: 10})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := ComputeAdaptive(a, AdaptiveOptions{MaxPerRow: 10, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if loose.NNZ() >= tight.NNZ() {
		t.Errorf("loose tol nnz %d should be < tight tol nnz %d", loose.NNZ(), tight.NNZ())
	}
	if loose.NNZ() != a.Rows {
		t.Errorf("tol=10 should keep diagonal-only patterns, nnz=%d", loose.NNZ())
	}
}

func TestAdaptiveErrors(t *testing.T) {
	rect := matgen.Laplace2D(3, 3)
	rect.Cols++ // corrupt shape
	if _, err := ComputeAdaptive(rect, AdaptiveOptions{}); err == nil {
		t.Error("non-square accepted")
	}
}

func TestStatsOfPattern(t *testing.T) {
	a := matgen.Laplace2D(8, 8)
	p, err := ComputeAdaptive(a, AdaptiveOptions{MaxPerRow: 4, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	st := StatsOfPattern(p.BasePattern, 4)
	if st.NNZ != p.BasePattern.NNZ() || st.MaxRow > 4 || st.AvgPerRow <= 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.FullBudget == 0 {
		t.Error("tight tolerance should drive rows to the budget")
	}
}
