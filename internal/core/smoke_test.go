package fsai

import (
	"testing"

	"repro/internal/krylov"
	"repro/internal/matgen"
)

// TestSmokeVariantsReduceIterations is the end-to-end sanity check: on a 2D
// Laplacian, PCG with FSAI beats plain CG, and the cache-aware extensions
// reduce iterations further (FSAIE(full) <= FSAIE(sp) <= FSAI in count).
func TestSmokeVariantsReduceIterations(t *testing.T) {
	a := matgen.Laplace2D(40, 40)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	opt := krylov.DefaultOptions()

	plain := krylov.Solve(a, x, b, nil, opt)
	if !plain.Converged {
		t.Fatalf("plain CG did not converge: %+v", plain)
	}

	iters := map[Variant]int{}
	for _, v := range []Variant{VariantFSAI, VariantSp, VariantFull} {
		o := DefaultOptions()
		o.Variant = v
		p, err := Compute(a, o)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		res := krylov.Solve(a, x, b, p, opt)
		if !res.Converged {
			t.Fatalf("%v: PCG did not converge: %+v", v, res)
		}
		iters[v] = res.Iterations
		t.Logf("%-12v iters=%4d nnz(G)=%6d ext=%.1f%%", v, res.Iterations, p.NNZ(), p.ExtensionPct())
	}
	t.Logf("plain CG iters=%d", plain.Iterations)
	if iters[VariantFSAI] >= plain.Iterations {
		t.Errorf("FSAI (%d) should beat plain CG (%d)", iters[VariantFSAI], plain.Iterations)
	}
	if iters[VariantSp] > iters[VariantFSAI] {
		t.Errorf("FSAIE(sp) (%d) should not exceed FSAI (%d)", iters[VariantSp], iters[VariantFSAI])
	}
	if iters[VariantFull] > iters[VariantSp] {
		t.Errorf("FSAIE(full) (%d) should not exceed FSAIE(sp) (%d)", iters[VariantFull], iters[VariantSp])
	}
}
