package fsai

import (
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/parallel"
	"repro/internal/pattern"
	"repro/internal/sparse"
)

// This file implements a *dynamic* FSAI pattern strategy in the spirit of
// FSPAI (Huckle 2003) and the adaptive procedures surveyed in Section 8 of
// the paper: instead of fixing the pattern a priori (lower triangle of Ã^N),
// each row's pattern grows greedily from the diagonal, adding the candidate
// position with the largest Frobenius-residual contribution until a
// tolerance or size budget is met.
//
// The paper's point — that cache-aware extension is *complementary to any
// numerical pattern strategy* — is testable here: AdaptiveOptions.CacheExtend
// applies Algorithm 3 + precalculation filtering on top of the adaptively
// found pattern (see the adaptive ablation in internal/experiments).

// AdaptiveOptions configures the dynamic pattern search.
type AdaptiveOptions struct {
	// MaxPerRow caps each row's pattern size including the diagonal
	// (default 12).
	MaxPerRow int
	// Tol stops a row's growth when the best candidate's residual falls
	// below Tol times the current diagonal value (default 0.05).
	Tol float64
	// CacheExtend, when non-zero, cache-extends the adaptive pattern with
	// lines of that many bytes before the final solve, filtering the
	// extension with Filter.
	CacheExtend int
	// AlignElems is the x[0] line offset used by the extension.
	AlignElems int
	// Filter is the extension filtering threshold (as in Options.Filter).
	Filter float64
	// Workers bounds parallelism across rows.
	Workers int
}

func (o *AdaptiveOptions) normalize() {
	if o.MaxPerRow <= 0 {
		o.MaxPerRow = 12
	}
	if o.Tol <= 0 {
		o.Tol = 0.05
	}
}

// ComputeAdaptive builds an FSAI preconditioner with a dynamically grown
// pattern. For each row i it starts from {i} and repeatedly solves the
// local system A(P,P) y = e_i, evaluates the residual (A y − e_i) at the
// admissible candidates (graph neighbours j < i of the current pattern) and
// admits the largest one, until Tol or MaxPerRow is reached. The final G is
// the Frobenius-optimal factor on the resulting pattern (optionally
// cache-extended first).
func ComputeAdaptive(a *sparse.CSR, opts AdaptiveOptions) (*Preconditioner, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("fsai: matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	opts.normalize()
	n := a.Rows
	rows := make([][]int, n)
	nw := opts.Workers
	if nw <= 0 {
		nw = parallel.MaxWorkers()
	}
	errs := make([]error, n)
	parallel.For(n, nw, func(lo, hi int) {
		var aloc, y []float64
		for i := lo; i < hi; i++ {
			p, err := growRow(a, i, opts, &aloc, &y)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = p
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	base := pattern.FromRows(n, n, rows)

	pre := &Preconditioner{Workers: opts.Workers, BasePattern: base}
	final := base
	if opts.CacheExtend > 0 {
		elems := opts.CacheExtend / 8
		if elems < 1 {
			return nil, fmt.Errorf("fsai: CacheExtend %dB smaller than one element", opts.CacheExtend)
		}
		sx := ExtendPattern(base, elems, opts.AlignElems, ClipLower, 512)
		if opts.Filter > 0 {
			gpre := precalcRows(a, sx, opts.Filter/2, 25, opts.Workers, &pre.Stats)
			final = filterExtension(base, sx, gpre, opts.Filter)
		} else {
			final = sx
		}
	}
	g, err := computeRows(a, final, opts.Workers, &pre.Stats)
	if err != nil {
		return nil, err
	}
	pre.G = g
	pre.GT = g.Transpose()
	pre.FinalPattern = pattern.FromCSR(g)
	pre.initApply()
	return pre, nil
}

// growRow runs the greedy pattern search for row i and returns the sorted
// pattern (diagonal included).
func growRow(a *sparse.CSR, i int, opts AdaptiveOptions, alocBuf, yBuf *[]float64) ([]int, error) {
	p := []int{i}
	inP := map[int]bool{i: true}
	for len(p) < opts.MaxPerRow {
		m := len(p)
		if cap(*alocBuf) < m*m {
			*alocBuf = make([]float64, 4*m*m)
			*yBuf = make([]float64, 4*m)
		}
		aloc := a.Extract(p, (*alocBuf)[:m*m])
		y := (*yBuf)[:m]
		// p is sorted with i last (all admitted candidates are < i).
		sparse.GatherRHS(y, m-1)
		if err := dense.SolveSPD(aloc, m, y); err != nil {
			return nil, fmt.Errorf("fsai: adaptive row %d: %w", i, ErrNotSPD)
		}
		diag := y[m-1]
		if diag <= 0 {
			return nil, fmt.Errorf("fsai: adaptive row %d diagonal %g: %w", i, diag, ErrNotSPD)
		}
		// Candidates: lower-index graph neighbours of current members.
		bestJ, bestR := -1, 0.0
		seen := map[int]bool{}
		for _, k := range p {
			cols, _ := a.Row(k)
			for _, j := range cols {
				if j >= i || inP[j] || seen[j] {
					continue
				}
				seen[j] = true
				// Residual of A[:,P] y − e_i at row j: dot(A(j,P), y).
				r := dotRowSubset(a, j, p, y)
				if ar := math.Abs(r); ar > bestR {
					bestR, bestJ = ar, j
				}
			}
		}
		if bestJ < 0 || bestR < opts.Tol*math.Abs(diag) {
			break
		}
		p = insertSorted(p, bestJ)
		inP[bestJ] = true
	}
	return p, nil
}

// dotRowSubset computes dot(A(j, idx), y) for sorted idx.
func dotRowSubset(a *sparse.CSR, j int, idx []int, y []float64) float64 {
	cols, vals := a.Row(j)
	s := 0.0
	ka, ki := 0, 0
	for ka < len(cols) && ki < len(idx) {
		switch {
		case cols[ka] == idx[ki]:
			s += vals[ka] * y[ki]
			ka++
			ki++
		case cols[ka] < idx[ki]:
			ka++
		default:
			ki++
		}
	}
	return s
}

// AdaptivePatternStats summarizes a dynamically grown pattern.
type AdaptivePatternStats struct {
	NNZ        int
	MaxRow     int
	AvgPerRow  float64
	FullBudget int // rows that hit MaxPerRow
}

// StatsOfPattern computes summary statistics for a pattern (exported for
// the adaptive ablation's reporting).
func StatsOfPattern(p *pattern.Pattern, budget int) AdaptivePatternStats {
	st := AdaptivePatternStats{NNZ: p.NNZ()}
	for i := 0; i < p.Rows; i++ {
		m := len(p.Row(i))
		if m > st.MaxRow {
			st.MaxRow = m
		}
		if m >= budget {
			st.FullBudget++
		}
	}
	if p.Rows > 0 {
		st.AvgPerRow = float64(p.NNZ()) / float64(p.Rows)
	}
	return st
}
