package fsai

import (
	"strings"
	"testing"

	"repro/internal/matgen"
	"repro/internal/telemetry"
)

// TestSetupStatsMonotoneAcrossVariants pins down the SetupStats contract:
// on the same matrix, symbolic pattern work and the recorded setup phases
// grow monotonically FSAI → FSAIE(sp) → FSAIE(full), since each variant
// strictly adds work (one, then two extension/precalc/filter passes).
func TestSetupStatsMonotoneAcrossVariants(t *testing.T) {
	a := matgen.Laplace2D(24, 24)
	stats := map[Variant]SetupStats{}
	for _, v := range []Variant{VariantFSAI, VariantSp, VariantFull} {
		opts := DefaultOptions()
		opts.Variant = v
		p, err := Compute(a, opts)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		stats[v] = p.Stats
	}

	for v, s := range stats {
		if s.PatternOps <= 0 {
			t.Errorf("%s: PatternOps = %g, want > 0", v, s.PatternOps)
		}
		if s.DirectFlops <= 0 || s.Rows != a.Rows || s.MaxLocal <= 0 {
			t.Errorf("%s: stats not populated: %+v", v, s)
		}
		if len(s.Phases) == 0 {
			t.Errorf("%s: no phases recorded", v)
		}
		for _, p := range s.Phases {
			if p.NS < 0 {
				t.Errorf("%s: phase %s has negative duration", v, p.Name)
			}
		}
		if s.TotalPhaseNS() <= 0 {
			t.Errorf("%s: total phase time = %d, want > 0", v, s.TotalPhaseNS())
		}
	}

	if !(stats[VariantFSAI].PatternOps < stats[VariantSp].PatternOps) ||
		!(stats[VariantSp].PatternOps < stats[VariantFull].PatternOps) {
		t.Errorf("PatternOps not monotone: FSAI=%g Sp=%g Full=%g",
			stats[VariantFSAI].PatternOps, stats[VariantSp].PatternOps, stats[VariantFull].PatternOps)
	}
	if !(len(stats[VariantFSAI].Phases) < len(stats[VariantSp].Phases)) ||
		!(len(stats[VariantSp].Phases) < len(stats[VariantFull].Phases)) {
		t.Errorf("phase counts not monotone: FSAI=%d Sp=%d Full=%d",
			len(stats[VariantFSAI].Phases), len(stats[VariantSp].Phases), len(stats[VariantFull].Phases))
	}
	// Precalc work only exists for the extended variants.
	if stats[VariantFSAI].PrecalcFlops != 0 {
		t.Errorf("FSAI should have no precalc work, got %g", stats[VariantFSAI].PrecalcFlops)
	}
	if stats[VariantSp].PrecalcFlops <= 0 || stats[VariantFull].PrecalcFlops <= stats[VariantSp].PrecalcFlops {
		t.Errorf("PrecalcFlops not monotone: Sp=%g Full=%g",
			stats[VariantSp].PrecalcFlops, stats[VariantFull].PrecalcFlops)
	}
}

// TestSetupPhaseNames asserts each variant records exactly the phases its
// algorithm executes, with PhaseNS summing repeated passes.
func TestSetupPhaseNames(t *testing.T) {
	a := matgen.Laplace2D(16, 16)
	wantCounts := map[Variant]map[string]int{
		VariantFSAI: {PhaseBasePattern: 1, PhaseSolve: 1},
		VariantSp:   {PhaseBasePattern: 1, PhaseExtend: 1, PhasePrecalc: 1, PhaseFilter: 1, PhaseSolve: 1},
		VariantFull: {PhaseBasePattern: 1, PhaseExtend: 2, PhasePrecalc: 2, PhaseFilter: 2, PhaseSolve: 1},
	}
	for v, want := range wantCounts {
		opts := DefaultOptions()
		opts.Variant = v
		p, err := Compute(a, opts)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		got := map[string]int{}
		for _, ph := range p.Stats.Phases {
			got[ph.Name]++
		}
		for name, n := range want {
			if got[name] != n {
				t.Errorf("%s: phase %q count %d, want %d (all: %v)", v, name, got[name], n, got)
			}
		}
		if len(got) != len(want) {
			t.Errorf("%s: unexpected phases: %v (want %v)", v, got, want)
		}
		for name := range want {
			if p.Stats.PhaseNS(name) < 0 {
				t.Errorf("%s: PhaseNS(%q) negative", v, name)
			}
		}
		if p.Stats.PhaseNS("no-such-phase") != 0 {
			t.Errorf("%s: unknown phase should report 0", v)
		}
	}
}

// TestSetupTracerSpans checks that a configured tracer sees the same phase
// structure as SetupStats.Phases, nested under one root span per setup.
func TestSetupTracerSpans(t *testing.T) {
	a := matgen.Laplace2D(16, 16)
	var sink strings.Builder
	tr := telemetry.NewTracer(&sink)
	opts := DefaultOptions()
	opts.Variant = VariantFull
	opts.Tracer = tr
	p, err := Compute(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	report := tr.Report()
	if len(report) != 1 {
		t.Fatalf("root spans = %d, want 1", len(report))
	}
	root := report[0]
	if !strings.Contains(root.Name, "FSAIE(full)") {
		t.Errorf("root span name %q should carry the variant", root.Name)
	}
	if len(root.Children) != len(p.Stats.Phases) {
		t.Fatalf("tracer children %d != recorded phases %d", len(root.Children), len(p.Stats.Phases))
	}
	for i, c := range root.Children {
		if c.Name != p.Stats.Phases[i].Name {
			t.Errorf("span %d = %q, phase %q", i, c.Name, p.Stats.Phases[i].Name)
		}
	}
	if !strings.Contains(sink.String(), PhaseExtend) {
		t.Errorf("sink rendering missing phases:\n%s", sink.String())
	}
}

func TestExtensionPatternAndPublishSetupStats(t *testing.T) {
	a := matgen.Laplace2D(16, 16)
	opts := DefaultOptions()
	opts.Variant = VariantFull
	opts.Filter = 0 // keep the full extension so fill-in is guaranteed
	p, err := Compute(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	fill := p.ExtensionPattern()
	if got, want := fill.NNZ(), p.FinalPattern.NNZ()-p.BasePattern.NNZ(); got != want {
		t.Fatalf("fill nnz = %d, want %d", got, want)
	}
	if fill.NNZ() == 0 {
		t.Fatal("expected nonempty fill-in at filter 0")
	}
	for i := 0; i < fill.Rows; i++ {
		for _, j := range fill.Row(i) {
			if p.BasePattern.Contains(i, j) {
				t.Fatalf("fill entry (%d,%d) is in the base pattern", i, j)
			}
			if !p.FinalPattern.Contains(i, j) {
				t.Fatalf("fill entry (%d,%d) not in the final pattern", i, j)
			}
		}
	}

	reg := telemetry.NewRegistry()
	PublishSetupStats(reg, p.Stats.Phases[0].Name+"-unused", nil) // nil stats: no-op
	PublishSetupStats(nil, "FSAIE(full)", &p.Stats)               // nil registry: no-op
	PublishSetupStats(reg, "FSAIE(full)", &p.Stats)
	snap := reg.Snapshot()
	if snap.Counters[`fsai.setups{variant="FSAIE(full)"}`] != 1 {
		t.Errorf("setup counter: %+v", snap.Counters)
	}
	got := snap.Counters[`fsai.setup.phase_ns{phase="extend",variant="FSAIE(full)"}`]
	if want := p.Stats.PhaseNS(PhaseExtend); got != want {
		t.Errorf("extend phase ns = %d, want %d", got, want)
	}
}
