package fsai

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/pattern"
	"repro/internal/sparse"
)

func laplace1D(n int) *sparse.CSR {
	b := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 2)
		if i > 0 {
			b.Add(i, i-1, -1)
		}
		if i < n-1 {
			b.Add(i, i+1, -1)
		}
	}
	return b.ToCSR()
}

func TestInitialPattern(t *testing.T) {
	a := laplace1D(6)
	p := InitialPattern(a, 0, 1)
	// Lower triangle with diagonal: row 0 = {0}, row i = {i-1, i}.
	if len(p.Row(0)) != 1 {
		t.Errorf("row 0 = %v", p.Row(0))
	}
	for i := 1; i < 6; i++ {
		r := p.Row(i)
		if len(r) != 2 || r[0] != i-1 || r[1] != i {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	// Power 2: row i = {i-2, i-1, i}.
	p2 := InitialPattern(a, 0, 2)
	if r := p2.Row(3); len(r) != 3 || r[0] != 1 {
		t.Errorf("power-2 row 3 = %v", r)
	}
}

func TestInitialPatternThreshold(t *testing.T) {
	// Matrix with a tiny off-diagonal entry that thresholding removes.
	a, _ := sparse.NewCSRFromTriplets(3, 3, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1}, {Row: 1, Col: 0, Val: 1e-6}, {Row: 0, Col: 1, Val: 1e-6}, {Row: 2, Col: 1, Val: 0.5}, {Row: 1, Col: 2, Val: 0.5},
	})
	p := InitialPattern(a, 1e-3, 1)
	if p.Contains(1, 0) {
		t.Error("thresholded entry survived")
	}
	if !p.Contains(2, 1) {
		t.Error("large entry dropped")
	}
}

// TestFSAIUnitDiagonalProperty checks the Kolotilina-Yeremin normalization:
// diag(G A Gᵀ) = 1 for every row.
func TestFSAIUnitDiagonalProperty(t *testing.T) {
	for _, gen := range []*sparse.CSR{
		laplace1D(30),
		matgen.Laplace2D(8, 8),
		matgen.Wathen(4, 4, 9),
	} {
		p, err := Compute(gen, Options{Variant: VariantFSAI, LineBytes: 64, PatternPower: 1})
		if err != nil {
			t.Fatal(err)
		}
		n := gen.Rows
		tmp := make([]float64, n)
		out := make([]float64, n)
		for i := 0; i < n; i++ {
			// (G A Gᵀ)_{ii} = g_iᵀ A g_i where g_i is row i of G.
			gi := make([]float64, n)
			cols, vals := p.G.Row(i)
			for k, j := range cols {
				gi[j] = vals[k]
			}
			gen.MulVec(tmp, gi)
			q := 0.0
			for j := range gi {
				q += gi[j] * tmp[j]
			}
			if math.Abs(q-1) > 1e-8 {
				t.Fatalf("row %d: g A gᵀ = %g, want 1", i, q)
			}
			_ = out
		}
	}
}

// TestFSAIExactInverseOnFullPattern: with the full lower-triangular
// pattern, GᵀG is the exact inverse, so PCG converges in one iteration.
func TestFSAIExactInverseOnFullPattern(t *testing.T) {
	n := 12
	a := laplace1D(n)
	rows := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			rows[i] = append(rows[i], j)
		}
	}
	full := pattern.FromRows(n, n, rows)
	g, err := ComputeOnPattern(a, full, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	p := &Preconditioner{G: g, GT: g.Transpose()}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) - 1
	}
	x := make([]float64, n)
	res := krylov.Solve(a, x, b, p, krylov.Options{Tol: 1e-10, MaxIter: 3})
	if !res.Converged || res.Iterations > 2 {
		t.Errorf("exact-inverse FSAI should converge immediately: %+v", res)
	}
}

// TestFrobeniusOptimality: the computed G minimizes ||I - GL||_F over its
// pattern, which implies the normal-equations residual (A Gᵀ)_{ji} = 0 for
// every off-diagonal pattern position (i,j) — perturbing any stored
// off-diagonal entry can only increase the preconditioned iteration count.
// We verify the stationarity condition directly: for row i with pattern S_i,
// (A ĝ_i)_j = 0 for all j in S_i, j != i (ĝ the unscaled row solving
// A(S_i,S_i) ĝ = e_i).
func TestFrobeniusOptimality(t *testing.T) {
	a := matgen.Laplace2D(6, 6)
	p, err := Compute(a, Options{Variant: VariantFSAI, LineBytes: 64, PatternPower: 2})
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	for i := 0; i < n; i++ {
		cols, vals := p.G.Row(i)
		gi := make([]float64, n)
		for k, j := range cols {
			gi[j] = vals[k]
		}
		agi := make([]float64, n)
		a.MulVec(agi, gi)
		for _, j := range cols {
			if j == i {
				continue
			}
			if math.Abs(agi[j]) > 1e-8 {
				t.Fatalf("row %d: (A g_i)_%d = %g, want 0 (not Frobenius-stationary)", i, j, agi[j])
			}
		}
	}
}

func TestComputeRejectsNonSquare(t *testing.T) {
	a, _ := sparse.NewCSRFromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := Compute(a, DefaultOptions()); err == nil {
		t.Error("non-square accepted")
	}
}

func TestComputeRejectsIndefinite(t *testing.T) {
	a, _ := sparse.NewCSRFromTriplets(2, 2, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 2}, {Row: 1, Col: 0, Val: 2}, {Row: 1, Col: 1, Val: 1}, // indefinite
	})
	if _, err := Compute(a, DefaultOptions()); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestVariantString(t *testing.T) {
	if VariantFSAI.String() != "FSAI" || VariantSp.String() != "FSAIE(sp)" || VariantFull.String() != "FSAIE(full)" {
		t.Error("variant names wrong")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still render")
	}
}

func TestFilterMonotonicity(t *testing.T) {
	// Larger filters keep fewer extension entries: nnz(G) must be
	// non-increasing in the filter value.
	a := matgen.Laplace2D(16, 16)
	prev := math.MaxInt
	for _, f := range []float64{0.0, 0.001, 0.01, 0.1, 0.5} {
		o := DefaultOptions()
		o.Variant = VariantSp
		o.Filter = f
		p, err := Compute(a, o)
		if err != nil {
			t.Fatal(err)
		}
		if p.NNZ() > prev {
			t.Errorf("filter %g: nnz %d > previous %d", f, p.NNZ(), prev)
		}
		prev = p.NNZ()
	}
}

func TestFilterKeepsBasePattern(t *testing.T) {
	// Even an absurdly large filter never drops original pattern entries.
	a := matgen.Laplace2D(12, 12)
	o := DefaultOptions()
	o.Variant = VariantFull
	o.Filter = 1e6
	p, err := Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if !p.BasePattern.SubsetOf(p.FinalPattern) {
		t.Error("filtering dropped base-pattern entries")
	}
}

func TestExtensionPct(t *testing.T) {
	a := matgen.Laplace2D(12, 12)
	o := DefaultOptions()
	o.Variant = VariantFSAI
	p, _ := Compute(a, o)
	if p.ExtensionPct() != 0 {
		t.Errorf("FSAI extension pct = %g, want 0", p.ExtensionPct())
	}
	o.Variant = VariantFull
	o.Filter = 0
	p, _ = Compute(a, o)
	if p.ExtensionPct() <= 0 {
		t.Errorf("unfiltered FSAIE extension pct = %g, want > 0", p.ExtensionPct())
	}
}

func TestApplyMatchesExplicitProducts(t *testing.T) {
	a := matgen.Laplace2D(10, 10)
	p, err := Compute(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := a.Rows
	rng := rand.New(rand.NewSource(3))
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.NormFloat64()
	}
	z := make([]float64, n)
	p.Apply(z, r)
	tmp := make([]float64, n)
	want := make([]float64, n)
	p.G.MulVec(tmp, r)
	p.GT.MulVec(want, tmp)
	for i := range z {
		if math.Abs(z[i]-want[i]) > 1e-14 {
			t.Fatalf("Apply mismatch at %d", i)
		}
	}
	// Parallel path matches too.
	p.Workers = 4
	z2 := make([]float64, n)
	p.Apply(z2, r)
	for i := range z {
		if math.Abs(z[i]-z2[i]) > 1e-14 {
			t.Fatalf("parallel Apply mismatch at %d", i)
		}
	}
}

func TestGTIsTransposeOfG(t *testing.T) {
	a := matgen.Wathen(5, 5, 4)
	o := DefaultOptions()
	p, err := Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	gt := p.G.Transpose()
	if gt.NNZ() != p.GT.NNZ() {
		t.Fatal("GT nnz mismatch")
	}
	for k := range gt.Val {
		if gt.ColIdx[k] != p.GT.ColIdx[k] || gt.Val[k] != p.GT.Val[k] {
			t.Fatal("GT is not the transpose of G")
		}
	}
}

func TestStandardVsPrecalcFiltering(t *testing.T) {
	// Both strategies must produce working preconditioners; the precalc
	// strategy must never lose to the standard one by a large margin
	// (Table 3's claim, checked on a moderately hard matrix).
	a := matgen.JumpCoefficient2D(24, 24, 4, 1e3, 5)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	for _, filter := range []float64{0.01, 0.1} {
		var iters [2]int
		for mode := 0; mode < 2; mode++ {
			o := DefaultOptions()
			o.Variant = VariantSp
			o.Filter = filter
			o.StandardFiltering = mode == 1
			p, err := Compute(a, o)
			if err != nil {
				t.Fatal(err)
			}
			res := krylov.Solve(a, x, b, p, krylov.DefaultOptions())
			if !res.Converged {
				t.Fatalf("filter=%g mode=%d did not converge", filter, mode)
			}
			iters[mode] = res.Iterations
		}
		t.Logf("filter=%g: precalc=%d standard=%d iterations", filter, iters[0], iters[1])
		if iters[1] < iters[0]-2 {
			t.Errorf("filter=%g: standard filtering (%d) clearly beats precalc (%d); Table 3 claims the opposite",
				filter, iters[1], iters[0])
		}
	}
}

func TestWorkersProduceIdenticalG(t *testing.T) {
	a := matgen.Laplace2D(14, 14)
	o := DefaultOptions()
	o.Workers = 1
	p1, err := Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	p4, err := Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if p1.G.NNZ() != p4.G.NNZ() {
		t.Fatal("nnz differs across worker counts")
	}
	for k := range p1.G.Val {
		if p1.G.Val[k] != p4.G.Val[k] {
			t.Fatal("G values differ across worker counts")
		}
	}
}

func TestSetupStatsPopulated(t *testing.T) {
	a := matgen.Laplace2D(12, 12)
	o := DefaultOptions()
	o.Variant = VariantFull
	p, err := Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.DirectFlops <= 0 || p.Stats.PrecalcFlops <= 0 || p.Stats.PatternOps <= 0 {
		t.Errorf("stats not populated: %+v", p.Stats)
	}
	if p.Stats.MaxLocal < 2 {
		t.Errorf("MaxLocal=%d", p.Stats.MaxLocal)
	}
	// The baseline does no precalculation.
	o.Variant = VariantFSAI
	pb, _ := Compute(a, o)
	if pb.Stats.PrecalcFlops != 0 {
		t.Errorf("baseline should not precalculate, got %g flops", pb.Stats.PrecalcFlops)
	}
	if pb.Stats.DirectFlops >= p.Stats.DirectFlops {
		t.Error("extended setup should cost more direct flops")
	}
}

func TestPostFilterBaselineFSAI(t *testing.T) {
	// Algorithm 1's own post-filter drops small entries of the baseline G
	// and rescales; the result must still precondition correctly.
	a := matgen.Laplace2D(12, 12)
	o := DefaultOptions()
	o.Variant = VariantFSAI
	o.PatternPower = 2 // wider pattern: the far entries are genuinely small
	o.PostFilter = 0.1
	p, err := Compute(a, o)
	if err != nil {
		t.Fatal(err)
	}
	o2 := o
	o2.PostFilter = 0
	p0, _ := Compute(a, o2)
	if p.NNZ() >= p0.NNZ() {
		t.Errorf("post-filter did not drop entries: %d vs %d", p.NNZ(), p0.NNZ())
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, a.Rows)
	res := krylov.Solve(a, x, b, p, krylov.DefaultOptions())
	if !res.Converged {
		t.Error("post-filtered FSAI failed to converge")
	}
}

func TestDefaultOptionsNormalization(t *testing.T) {
	// Zero-valued options get sane defaults via normalize (exercised
	// through Compute).
	a := laplace1D(8)
	p, err := Compute(a, Options{Variant: VariantFull, Filter: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if p.G == nil || p.GT == nil {
		t.Fatal("nil factors")
	}
}
