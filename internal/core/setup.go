package fsai

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/pattern"
	"repro/internal/prof"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// phaseRecorder times the setup phases of Compute: each phase lands in
// SetupStats.Phases and, when a tracer is configured, as a named span.
type phaseRecorder struct {
	tr    *telemetry.Tracer
	stats *SetupStats
}

// phase starts timing the named phase and returns the closer.
func (pr phaseRecorder) phase(name string) func() {
	span := pr.tr.StartSpan(name)
	start := time.Now()
	return func() {
		span.End()
		pr.stats.Phases = append(pr.stats.Phases, PhaseTiming{Name: name, NS: time.Since(start).Nanoseconds()})
	}
}

// Compute builds an FSAI-family preconditioner for the SPD matrix a
// according to opts. It is the entry point covering Algorithms 1, 2 and 4.
// With Options.Ctx set, the whole setup runs under the pprof label
// phase=setup merged into the context's labels (see internal/prof).
func Compute(a *sparse.CSR, opts Options) (*Preconditioner, error) {
	if opts.Ctx == nil {
		return compute(a, opts)
	}
	var (
		p   *Preconditioner
		err error
	)
	prof.WithPhase(opts.Ctx, prof.PhaseSetup, func(ctx context.Context) {
		o := opts
		o.Ctx = ctx
		p, err = compute(a, o)
	})
	return p, err
}

func compute(a *sparse.CSR, opts Options) (*Preconditioner, error) {
	if a.Rows != a.Cols {
		return nil, setupErrf(ReasonBadInput, -1, "matrix is %dx%d, want square", a.Rows, a.Cols)
	}
	opts.normalize()
	elems := opts.LineBytes / 8
	if elems < 1 {
		return nil, setupErrf(ReasonBadInput, -1, "line size %dB smaller than one element", opts.LineBytes)
	}

	p := &Preconditioner{Workers: opts.Workers}
	rec := phaseRecorder{tr: opts.Tracer, stats: &p.Stats}
	root := opts.Tracer.StartSpan("fsai-setup:" + opts.Variant.String())
	root.SetAttr("variant", opts.Variant.String())
	root.SetAttr("rows", fmt.Sprint(a.Rows))
	root.SetAttr("nnz", fmt.Sprint(a.NNZ()))
	defer func() {
		if p.G != nil {
			root.SetAttr("nnz_g", fmt.Sprint(p.G.NNZ()))
		}
		root.End()
	}()

	endBase := rec.phase(PhaseBasePattern)
	base := InitialPattern(a, opts.ThresholdTau, opts.PatternPower)
	endBase()
	p.BasePattern = base
	p.Stats.PatternOps += float64(base.NNZ())

	switch opts.Variant {
	case VariantFSAI:
		endSolve := rec.phase(PhaseSolve)
		g, err := computeRows(a, base, opts.Workers, &p.Stats)
		endSolve()
		if err != nil {
			return nil, err
		}
		if opts.PostFilter > 0 {
			endFilter := rec.phase(PhasePostFilter)
			g = postFilterRescale(a, diagonalOnly(base), g, opts.PostFilter)
			endFilter()
		}
		p.G = g
		p.FinalPattern = pattern.FromCSR(g)

	case VariantSp, VariantFull:
		// Step 3: cache-friendly extension of S optimizing the Gp product.
		endExtend := rec.phase(PhaseExtend)
		sx := ExtendPattern(base, elems, opts.AlignElems, ClipLower, opts.MaxRowNNZ)
		endExtend()
		p.Stats.PatternOps += float64(sx.NNZ())
		sext, err := resolveExtension(a, base, sx, opts, rec)
		if err != nil {
			return nil, err
		}
		final := sext
		if opts.Variant == VariantFull {
			// Steps 5-6: repeat on the transposed pattern, optimizing the
			// Gᵀp product, then transpose back.
			endExtend := rec.phase(PhaseExtend)
			tx := ExtendPattern(sext.Transpose(), elems, opts.AlignElems, ClipUpper, opts.MaxRowNNZ)
			sx2 := tx.Transpose()
			endExtend()
			p.Stats.PatternOps += float64(sx2.NNZ())
			final, err = resolveExtension(a, sext, sx2, opts, rec)
			if err != nil {
				return nil, err
			}
		}
		if opts.MaxPatternNNZFactor > 0 {
			budget := opts.MaxPatternNNZFactor * float64(a.NNZ())
			if float64(final.NNZ()) > budget {
				return nil, setupErrf(ReasonPatternBlowup, -1,
					"extended pattern has %d entries, budget %.0f (%.3g × nnz(A)=%d)",
					final.NNZ(), budget, opts.MaxPatternNNZFactor, a.NNZ())
			}
		}
		// Step 7: compute the final G coefficients on the resulting pattern,
		// a Frobenius-minimal inverse approximation on that pattern.
		endSolve := rec.phase(PhaseSolve)
		g, err := computeRows(a, final, opts.Workers, &p.Stats)
		endSolve()
		if err != nil {
			return nil, err
		}
		if opts.StandardFiltering {
			// Table 3 comparison path: the extension is kept whole through
			// the exact solve and filtered after the fact with rescaling.
			// Only extension entries (positions outside the original
			// numerical pattern) are eligible for dropping, the same
			// eligible set the precalculation strategy filters.
			endFilter := rec.phase(PhasePostFilter)
			g = postFilterRescale(a, base, g, opts.Filter)
			endFilter()
		}
		p.G = g
		p.FinalPattern = pattern.FromCSR(g)

	default:
		return nil, setupErrf(ReasonBadInput, -1, "unknown variant %d", opts.Variant)
	}

	p.GT = p.G.Transpose()
	p.initApply()
	return p, nil
}

// resolveExtension turns a candidate extended pattern sx (⊇ base) into the
// final extension pattern according to the filtering strategy: the
// precalculation strategy of Section 5 (default) precalculates an
// approximate G on sx and drops weak extension entries *before* the exact
// solve; the standard strategy keeps sx whole here (filtering happens after
// the exact solve, in Compute).
func resolveExtension(a *sparse.CSR, base, sx *pattern.Pattern, opts Options, rec phaseRecorder) (*pattern.Pattern, error) {
	if opts.StandardFiltering {
		return sx, nil
	}
	if opts.Filter <= 0 {
		return sx, nil // filter 0.0 keeps the full extension
	}
	endPrecalc := rec.phase(PhasePrecalc)
	gpre := precalcRows(a, sx, opts.PrecalcTol, opts.PrecalcMaxIter, opts.Workers, rec.stats)
	endPrecalc()
	endFilter := rec.phase(PhaseFilter)
	filtered := filterExtension(base, sx, gpre, opts.Filter)
	endFilter()
	return filtered, nil
}

// ComputeOnPattern evaluates the Frobenius-optimal G of A on an arbitrary
// lower-triangular pattern p (diagonal included in every row), bypassing
// extension and filtering. It backs the randomly-extended control
// preconditioners of Figures 3-4 and is useful to compose the FSAI value
// computation with externally produced patterns (Section 8: the method
// applies to any given sparse pattern).
func ComputeOnPattern(a *sparse.CSR, p *pattern.Pattern, workers int, stats *SetupStats) (*sparse.CSR, error) {
	return computeRows(a, p, workers, stats)
}

// diagonalOnly returns the pattern containing just the diagonal positions of
// p's rows; used as the protected set when post-filtering a baseline FSAI.
func diagonalOnly(p *pattern.Pattern) *pattern.Pattern {
	out := pattern.New(p.Rows, p.NCols)
	for i := 0; i < p.Rows; i++ {
		if i < p.NCols {
			out.AppendCol(i)
		}
		out.CloseRow(i)
	}
	return out
}

// RandomExtendPattern extends base with extra randomly placed admissible
// entries (subject to clip), reproducing the G_random control of
// Figures 3-4: the same number of new entries as the cache-friendly
// extension, but scattered without regard for cache lines.
//
// The RNG makes placement deterministic per seed. If fewer than extra free
// admissible positions exist, all of them are added.
func RandomExtendPattern(base *pattern.Pattern, extra int, rng *rand.Rand, clip Clip) *pattern.Pattern {
	rows := make([][]int, base.Rows)
	for i := range rows {
		rows[i] = append([]int(nil), base.Row(i)...)
	}
	n := base.Rows
	added := 0
	attempts := 0
	maxAttempts := 50 * (extra + 1)
	for added < extra && attempts < maxAttempts {
		attempts++
		i := rng.Intn(n)
		var j int
		switch clip {
		case ClipLower:
			j = rng.Intn(i + 1)
		case ClipUpper:
			j = i + rng.Intn(base.NCols-i)
		default:
			j = rng.Intn(base.NCols)
		}
		if containsSorted(rows[i], j) {
			continue
		}
		rows[i] = insertSorted(rows[i], j)
		added++
	}
	return pattern.FromRows(base.Rows, base.NCols, rows)
}

func containsSorted(row []int, j int) bool {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(row) && row[lo] == j
}

func insertSorted(row []int, j int) []int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	row = append(row, 0)
	copy(row[lo+1:], row[lo:])
	row[lo] = j
	return row
}
