package fsai

import (
	"errors"
	"fmt"
)

// SetupReason classifies why an FSAI setup failed. The resilience layer
// keys its recovery strategy on it: a not-SPD local system is worth a
// diagonal-shift retry, a pattern blowup calls for a sparser variant, a
// worker panic or bad input is not retryable at the same rung.
type SetupReason int

const (
	// ReasonUnknown is the zero value for errors that predate the taxonomy.
	ReasonUnknown SetupReason = iota
	// ReasonBadInput: the matrix or options are malformed (non-square,
	// impossible line size, unknown variant).
	ReasonBadInput
	// ReasonNotSPD: a local Frobenius system A(S_i,S_i) was not positive
	// definite — the matrix is indefinite, corrupted, or numerically on the
	// edge. A diagonal shift A + αI often repairs it.
	ReasonNotSPD
	// ReasonMissingDiagonal: a pattern row lacks its diagonal position, so
	// the local system cannot be normalized.
	ReasonMissingDiagonal
	// ReasonPatternBlowup: the extended pattern exceeded the configured
	// size budget (Options.MaxPatternNNZFactor).
	ReasonPatternBlowup
	// ReasonWorkerPanic: a row task panicked; the pool contained it (see
	// internal/parallel) and setup surfaced it as this typed error.
	ReasonWorkerPanic
)

// String returns the stable machine-readable name of the reason.
func (r SetupReason) String() string {
	switch r {
	case ReasonUnknown:
		return "unknown"
	case ReasonBadInput:
		return "bad-input"
	case ReasonNotSPD:
		return "not-spd"
	case ReasonMissingDiagonal:
		return "missing-diagonal"
	case ReasonPatternBlowup:
		return "pattern-blowup"
	case ReasonWorkerPanic:
		return "worker-panic"
	default:
		return fmt.Sprintf("SetupReason(%d)", int(r))
	}
}

// Retryable reports whether a diagonal-shift retry on the same variant has a
// chance of repairing the failure.
func (r SetupReason) Retryable() bool { return r == ReasonNotSPD }

// SetupError is the typed failure of an FSAI-family setup.
type SetupError struct {
	// Reason classifies the failure.
	Reason SetupReason
	// Row is the offending matrix row when known, -1 otherwise.
	Row int
	// Err is the underlying cause.
	Err error
}

func (e *SetupError) Error() string {
	if e.Row >= 0 {
		return fmt.Sprintf("fsai: setup failed (%s) at row %d: %v", e.Reason, e.Row, e.Err)
	}
	return fmt.Sprintf("fsai: setup failed (%s): %v", e.Reason, e.Err)
}

func (e *SetupError) Unwrap() error { return e.Err }

// AsSetupError unwraps err to a *SetupError when one is in the chain.
func AsSetupError(err error) (*SetupError, bool) {
	var se *SetupError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// setupErr builds a SetupError wrapping cause.
func setupErr(reason SetupReason, row int, cause error) *SetupError {
	return &SetupError{Reason: reason, Row: row, Err: cause}
}

// setupErrf builds a SetupError with a formatted cause.
func setupErrf(reason SetupReason, row int, format string, args ...any) *SetupError {
	return &SetupError{Reason: reason, Row: row, Err: fmt.Errorf(format, args...)}
}
