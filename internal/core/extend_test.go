package fsai

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cachesim"
	"repro/internal/pattern"
)

func TestExtendPatternKnownLower(t *testing.T) {
	// 16x16 lower pattern, 8 elems per line, align 0.
	// Row 9 has entries {1, 9}: entry 1 pulls block [0,7] (all <= 9, kept),
	// entry 9 pulls block [8,15] clipped to <= 9 → {8,9}.
	rows := make([][]int, 16)
	rows[9] = []int{1, 9}
	for i := range rows {
		if i != 9 {
			rows[i] = []int{i}
		}
	}
	s := pattern.FromRows(16, 16, rows)
	e := ExtendPattern(s, 8, 0, ClipLower, 0)
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	got := e.Row(9)
	if len(got) != len(want) {
		t.Fatalf("row 9 = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("row 9 = %v, want %v", got, want)
		}
	}
	// Row 0 = {0}: block [0,7] clipped to <= 0 → stays {0}.
	if len(e.Row(0)) != 1 {
		t.Errorf("row 0 = %v, want {0}", e.Row(0))
	}
}

func TestExtendPatternAlignment(t *testing.T) {
	// With align=4, element j sits in line (j+4)/8: entry j=3 is in block 0
	// covering elements -4..3 → columns 0..3.
	rows := [][]int{{0}, {1}, {2}, {3, 3}, {4}, {5}, {6}, {7}}
	rows[3] = []int{3}
	s := pattern.FromRows(8, 8, rows)
	e := ExtendPattern(s, 8, 4, ClipLower, 0)
	got := e.Row(3)
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("row 3 = %v want %v", got, want)
	}
	// Same entry with align=0 would cover 0..7 clipped to <=3 — same here;
	// use row 5 to discriminate: align=4 puts j=5 in block covering 4..11
	// → columns 4,5 (clipped); align=0 puts j=5 in block 0..7 → 0..5.
	e0 := ExtendPattern(s, 8, 0, ClipLower, 0)
	if len(e.Row(5)) != 2 || len(e0.Row(5)) != 6 {
		t.Errorf("alignment not respected: align4=%v align0=%v", e.Row(5), e0.Row(5))
	}
}

func TestExtendPatternUpperClip(t *testing.T) {
	rows := [][]int{{0, 5}, {1}, {2}, {3}, {4}, {5}, {6}, {7}}
	s := pattern.FromRows(8, 8, rows)
	e := ExtendPattern(s, 8, 0, ClipUpper, 0)
	// Row 0 entries pull block [0,7]; upper clip keeps j >= 0 → full row.
	if len(e.Row(0)) != 8 {
		t.Errorf("row 0 = %v", e.Row(0))
	}
	// Row 3 = {3} pulls [0,7] clipped to j >= 3 → {3..7}.
	if got := e.Row(3); len(got) != 5 || got[0] != 3 {
		t.Errorf("row 3 = %v", got)
	}
}

func TestExtendPatternNoClip(t *testing.T) {
	s := pattern.FromRows(2, 16, [][]int{{9}, {0}})
	e := ExtendPattern(s, 8, 0, ClipNone, 0)
	if got := e.Row(0); len(got) != 8 || got[0] != 8 || got[7] != 15 {
		t.Errorf("row 0 = %v", got)
	}
}

func TestExtendPatternPreservesBase(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 8 + rng.Intn(40)
		rows := make([][]int, n)
		for i := 0; i < n; i++ {
			rows[i] = append(rows[i], i) // diagonal
			for k := 0; k < rng.Intn(4); k++ {
				rows[i] = append(rows[i], rng.Intn(i+1))
			}
		}
		s := pattern.FromRows(n, n, rows)
		e := ExtendPattern(s, 8, rng.Intn(8), ClipLower, 0)
		if !s.SubsetOf(e) {
			t.Fatalf("trial %d: base not preserved", trial)
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestExtendPatternIdempotent verifies the fixpoint property: extending an
// already-extended pattern adds nothing, because every line touched is
// already fully present.
func TestExtendPatternIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(40)
		rows := make([][]int, n)
		for i := 0; i < n; i++ {
			rows[i] = append(rows[i], i)
			for k := 0; k < rng.Intn(3); k++ {
				rows[i] = append(rows[i], rng.Intn(i+1))
			}
		}
		s := pattern.FromRows(n, n, rows)
		align := rng.Intn(8)
		e1 := ExtendPattern(s, 8, align, ClipLower, 0)
		e2 := ExtendPattern(e1, 8, align, ClipLower, 0)
		if !e1.Equal(e2) {
			t.Fatalf("trial %d: extension not idempotent (%d -> %d entries)", trial, e1.NNZ(), e2.NNZ())
		}
	}
}

// TestExtendPatternLineVisitInvariant verifies the core architectural
// claim of Algorithm 3: the extension never increases the number of
// distinct x cache lines a row touches, at any alignment.
func TestExtendPatternLineVisitInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		rows := make([][]int, n)
		for i := 0; i < n; i++ {
			rows[i] = append(rows[i], i)
			for k := 0; k < rng.Intn(5); k++ {
				rows[i] = append(rows[i], rng.Intn(i+1))
			}
		}
		s := pattern.FromRows(n, n, rows)
		for _, elems := range []int{4, 8, 32} {
			align := rng.Intn(elems)
			e := ExtendPattern(s, elems, align, ClipLower, 0)
			if cachesim.CountLineVisits(e, elems, align) != cachesim.CountLineVisits(s, elems, align) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestExtendPatternNoNewMisses verifies, via the cache simulator, that an
// extended SpMV triggers exactly the same number of x-access misses as the
// original one (the paper's headline mechanism), for caches large enough
// to avoid capacity interference within a row.
func TestExtendPatternNoNewMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := cachesim.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
	for trial := 0; trial < 10; trial++ {
		n := 200 + rng.Intn(200)
		rows := make([][]int, n)
		for i := 0; i < n; i++ {
			rows[i] = append(rows[i], i)
			for k := 0; k < rng.Intn(4); k++ {
				rows[i] = append(rows[i], rng.Intn(i+1))
			}
		}
		s := pattern.FromRows(n, n, rows)
		align := rng.Intn(8)
		e := ExtendPattern(s, 8, align, ClipLower, 0)
		c := cachesim.New(cfg)
		mBase := cachesim.TraceSpMV(c, s, cachesim.TraceOptions{AlignElems: align})
		mExt := cachesim.TraceSpMV(c, e, cachesim.TraceOptions{AlignElems: align})
		if mExt != mBase {
			t.Fatalf("trial %d: extension changed misses %d -> %d", trial, mBase, mExt)
		}
	}
}

func TestExtendPatternMaxRowCap(t *testing.T) {
	// A scattered row that would explode to 64 entries is capped.
	rows := [][]int{{0}}
	for i := 1; i < 64; i++ {
		rows = append(rows, []int{0, i * 0, i}) // mix; keep diagonal
	}
	scat := make([]int, 0)
	for j := 0; j < 64; j += 8 {
		scat = append(scat, j)
	}
	scat = append(scat, 63)
	rows[63] = scat
	s := pattern.FromRows(64, 64, rows)
	capped := ExtendPattern(s, 8, 0, ClipLower, 16)
	if got := len(capped.Row(63)); got > 24 {
		t.Errorf("row 63 = %d entries, cap not effective", got)
	}
	// Base entries always survive.
	if !s.SubsetOf(capped) {
		t.Error("cap dropped base entries")
	}
	uncapped := ExtendPattern(s, 8, 0, ClipLower, 0)
	if uncapped.NNZ() <= capped.NNZ() {
		t.Error("uncapped should be strictly larger")
	}
}

func TestExtensionOf(t *testing.T) {
	base := pattern.FromRows(2, 8, [][]int{{0}, {0, 1}})
	ext := pattern.FromRows(2, 8, [][]int{{0, 1, 2}, {0, 1}})
	d := ExtensionOf(base, ext)
	if d.NNZ() != 2 || !d.Contains(0, 1) || !d.Contains(0, 2) {
		t.Errorf("ExtensionOf wrong: %v row0=%v", d, d.Row(0))
	}
	if len(d.Row(1)) != 0 {
		t.Error("row 1 should have no extension")
	}
}

func TestRandomExtendPattern(t *testing.T) {
	base := pattern.FromRows(64, 64, diagRows(64))
	rng := rand.New(rand.NewSource(7))
	ext := RandomExtendPattern(base, 100, rng, ClipLower)
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ext.NNZ() - base.NNZ(); got != 100 {
		t.Errorf("added %d entries, want 100", got)
	}
	if !base.SubsetOf(ext) {
		t.Error("base entries lost")
	}
	// Lower-triangular clip respected.
	for i := 0; i < ext.Rows; i++ {
		for _, j := range ext.Row(i) {
			if j > i {
				t.Fatalf("entry (%d,%d) above diagonal", i, j)
			}
		}
	}
	// Deterministic per seed.
	ext2 := RandomExtendPattern(base, 100, rand.New(rand.NewSource(7)), ClipLower)
	if !ext.Equal(ext2) {
		t.Error("random extension not deterministic per seed")
	}
}

func TestRandomExtendPatternSaturates(t *testing.T) {
	// Asking for more entries than free positions must terminate.
	base := pattern.FromRows(4, 4, diagRows(4))
	rng := rand.New(rand.NewSource(8))
	ext := RandomExtendPattern(base, 1000, rng, ClipLower)
	if ext.NNZ() > 10 { // full lower triangle of 4x4
		t.Errorf("nnz=%d beyond full triangle", ext.NNZ())
	}
}

func diagRows(n int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = []int{i}
	}
	return rows
}
