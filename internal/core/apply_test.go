package fsai

import (
	"math/rand"
	"testing"

	"repro/internal/matgen"
)

// TestApplyWorkersSemantics pins the unified Workers convention: <=0 means
// "all CPUs" and 1 means serial, and every setting computes the same z
// (SpMV partitioning never changes per-row arithmetic, so the match is
// exact). Before the kernel-layer rewrite, Workers==0 silently meant serial
// here while meaning "all CPUs" everywhere else in the stack.
func TestApplyWorkersSemantics(t *testing.T) {
	a := matgen.Laplace2D(20, 20)
	rng := rand.New(rand.NewSource(9))
	r := make([]float64, a.Rows)
	for i := range r {
		r[i] = rng.NormFloat64()
	}

	base, err := Compute(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 1
	want := make([]float64, a.Rows)
	base.Apply(want, r)

	for _, w := range []int{-3, 0, 2, 5} {
		p, err := Compute(a, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		p.Workers = w
		z := make([]float64, a.Rows)
		p.Apply(z, r)
		for i := range z {
			if z[i] != want[i] {
				t.Fatalf("Workers=%d: z[%d]=%g differs from serial %g", w, i, z[i], want[i])
			}
		}
	}
}

// TestApplyNoAllocsSteadyState checks that Compute pre-allocates Apply's
// scratch and engine, so applications inside the solve loop stay heap-quiet.
func TestApplyNoAllocsSteadyState(t *testing.T) {
	a := matgen.Laplace2D(16, 16)
	p, err := Compute(a, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, a.Rows)
	r := make([]float64, a.Rows)
	for i := range r {
		r[i] = 1
	}
	p.Apply(z, r) // warm any lazily-built partition plans
	allocs := testing.AllocsPerRun(50, func() { p.Apply(z, r) })
	if allocs != 0 {
		t.Fatalf("Apply allocates %.1f times per call, want 0", allocs)
	}
}
