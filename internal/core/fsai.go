package fsai

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/dense"
	"repro/internal/kernels"
	"repro/internal/parallel"
	"repro/internal/pattern"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// Variant selects the preconditioner construction of Section 7.1.
type Variant int

const (
	// VariantFSAI is the state-of-the-art baseline, Algorithm 1.
	VariantFSAI Variant = iota
	// VariantSp is FSAIE(sp): one-sided cache-friendly extension (spatial
	// locality of Gp), Algorithm 4 without steps 5-6.
	VariantSp
	// VariantFull is FSAIE(full): two-sided extension, full Algorithm 4.
	VariantFull
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case VariantFSAI:
		return "FSAI"
	case VariantSp:
		return "FSAIE(sp)"
	case VariantFull:
		return "FSAIE(full)"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures a preconditioner setup.
type Options struct {
	// Variant selects FSAI / FSAIE(sp) / FSAIE(full).
	Variant Variant

	// Filter is the extension filtering threshold: an extension entry g_ij
	// survives iff |g_ij| >= Filter * |g_ii| in the precalculated G (a
	// scale-independent order-of-magnitude comparison with the diagonal).
	// The paper evaluates 0.0, 0.001, 0.01 and 0.1. Ignored by VariantFSAI.
	Filter float64

	// LineBytes is the cache line size driving the extension (64 for
	// Skylake/POWER9, 256 for A64FX). Ignored by VariantFSAI.
	LineBytes int

	// AlignElems is the element offset of the multiplying vector's first
	// element within its cache line (Section 4.1). Obtain it for a concrete
	// vector with cachesim.AlignOf.
	AlignElems int

	// PatternPower is the exponent N of Ã^N used for the initial pattern.
	// The paper's evaluation uses N == 1 (the lower triangle of A itself).
	PatternPower int

	// ThresholdTau drops small entries of A before powering (Ã). The
	// paper's evaluation uses no thresholding (0).
	ThresholdTau float64

	// PrecalcTol and PrecalcMaxIter control the loose-tolerance CG used to
	// precalculate G for filtering (Section 5). A zero PrecalcTol picks
	// Filter/2 clamped to [5e-3, 0.1]: the estimate only needs to be
	// accurate near the filtering boundary, and CG from a zero guess
	// systematically underestimates small entries, so the tolerance must
	// sit safely below the boundary ratio or borderline entries get
	// dropped that exact magnitudes would keep. PrecalcMaxIter defaults
	// to 25.
	PrecalcTol     float64
	PrecalcMaxIter int

	// MaxRowNNZ bounds the per-row size of extended patterns (see
	// ExtendPattern); <= 0 disables the bound. DefaultOptions sets 512.
	MaxRowNNZ int

	// MaxPatternNNZFactor, when > 0, fails the setup with a typed
	// ReasonPatternBlowup SetupError if an extended pattern grows beyond
	// factor × nnz(A). It guards production setups against pathological
	// fill-in (a blown-up G costs more per iteration than it saves);
	// 0 disables the check.
	MaxPatternNNZFactor float64

	// StandardFiltering switches FSAIE to the classical compute-drop-rescale
	// post-filtering of Algorithm 1 instead of the precalculation strategy,
	// for the Table 3 comparison.
	StandardFiltering bool

	// PostFilter is Algorithm 1's own small-entry drop threshold for the
	// baseline FSAI (0 keeps everything but exact zeros, as in the paper's
	// evaluation).
	PostFilter float64

	// Workers bounds setup parallelism (<=0: all CPUs).
	Workers int

	// Tracer, when non-nil, receives one named span per setup phase of
	// Algorithms 3-4 (base pattern, cache-aware extension, precalc CG,
	// filter, final Frobenius solve). Per-phase wall times are always
	// recorded in SetupStats.Phases regardless.
	Tracer *telemetry.Tracer

	// Ctx, when non-nil, carries the caller's pprof label set; Compute runs
	// under it with phase=setup merged in, so continuous-profiling windows
	// attribute FSAI setup CPU to the owning job. Setup is not cancelled
	// through it.
	Ctx context.Context
}

// DefaultOptions returns the configuration used throughout the paper's
// evaluation campaign: initial pattern = lower triangle of A, no
// thresholding, filter 0.01, 64-byte lines.
func DefaultOptions() Options {
	return Options{
		Variant:      VariantFull,
		Filter:       0.01,
		LineBytes:    64,
		PatternPower: 1,
		MaxRowNNZ:    512,
		Workers:      1,
	}
}

func (o *Options) normalize() {
	if o.LineBytes <= 0 {
		o.LineBytes = 64
	}
	if o.PatternPower <= 0 {
		o.PatternPower = 1
	}
	if o.PrecalcTol <= 0 {
		o.PrecalcTol = o.Filter / 2
		if o.PrecalcTol > 0.1 {
			o.PrecalcTol = 0.1
		}
		if o.PrecalcTol < 5e-3 {
			o.PrecalcTol = 5e-3
		}
	}
	if o.PrecalcMaxIter <= 0 {
		o.PrecalcMaxIter = 25
	}
}

// Setup phase names recorded in SetupStats.Phases and emitted as tracer
// spans; one per phase of Algorithms 3-4.
const (
	PhaseBasePattern = "base-pattern"    // steps 1-2: lower(Ã^N)
	PhaseExtend      = "extend"          // Algorithm 3: cache-friendly fill-in
	PhasePrecalc     = "precalc"         // Section 5: loose-tolerance CG estimate
	PhaseFilter      = "filter"          // drop weak extension entries
	PhaseSolve       = "frobenius-solve" // exact local solves on the final pattern
	PhasePostFilter  = "post-filter"     // classical post-filtering (Algorithm 1 / Table 3)
)

// PhaseTiming is the measured wall time of one setup phase. Phases appear in
// execution order; FSAIE(full) repeats extend/precalc/filter for the
// transposed pass, so names may occur twice.
type PhaseTiming struct {
	Name string `json:"name"`
	NS   int64  `json:"ns"`
}

// SetupStats records the work done during setup; the performance model
// prices these into simulated setup seconds.
type SetupStats struct {
	// DirectFlops counts floating-point work of the exact local solves
	// (Cholesky ~ s³/3 + solves ~ 2s² per row of local size s).
	DirectFlops float64
	// PrecalcFlops counts the loose CG precalculation work (~2s² per
	// iteration per row).
	PrecalcFlops float64
	// PatternOps counts symbolic work: entries visited while powering,
	// extending and filtering patterns.
	PatternOps float64
	// Rows, MaxLocal record the number of local systems and the largest one.
	Rows, MaxLocal int
	// Phases holds per-phase wall times in execution order.
	Phases []PhaseTiming
}

// PhaseNS returns the total wall nanoseconds recorded for the named phase
// (summing repeated passes), or 0 if the phase did not run.
func (s *SetupStats) PhaseNS(name string) int64 {
	var total int64
	for _, p := range s.Phases {
		if p.Name == name {
			total += p.NS
		}
	}
	return total
}

// TotalPhaseNS returns the summed wall nanoseconds across all phases.
func (s *SetupStats) TotalPhaseNS() int64 {
	var total int64
	for _, p := range s.Phases {
		total += p.NS
	}
	return total
}

func (s *SetupStats) add(o SetupStats) {
	s.DirectFlops += o.DirectFlops
	s.PrecalcFlops += o.PrecalcFlops
	s.PatternOps += o.PatternOps
	if o.MaxLocal > s.MaxLocal {
		s.MaxLocal = o.MaxLocal
	}
	s.Rows += o.Rows
}

// Preconditioner is a computed FSAI factorization M⁻¹ = GᵀG ≈ A⁻¹. It
// implements krylov.Preconditioner; applying it costs two SpMV products.
type Preconditioner struct {
	// G is the lower-triangular factor in CSR.
	G *sparse.CSR
	// GT is Gᵀ, stored explicitly in CSR as the paper's implementation does,
	// so both products traverse rows with stride-1 matrix accesses.
	GT *sparse.CSR
	// BasePattern is the initial (numerical-criteria) pattern of G;
	// FinalPattern the pattern after extensions and filtering.
	BasePattern, FinalPattern *pattern.Pattern
	// Stats records setup work for the performance model.
	Stats SetupStats
	// Workers is the SpMV parallelism used by Apply. The convention matches
	// krylov.Options.Workers: <=0 means all CPUs, 1 means serial. (Before
	// the kernel-layer rewrite, Apply treated 0 as serial while the rest of
	// the stack treated it as "all CPUs"; the mismatch is fixed.)
	Workers int

	tmp  []float64
	btmp []float64 // block-apply scratch (rows × k), from the size-keyed pool
	eng  *kernels.Engine
	lctx context.Context // pprof label context for Apply's pooled sweeps
}

// SetLabelContext makes Apply's pooled SpMV dispatches run under ctx's
// pprof labels (see kernels.Engine.SetLabelContext). krylov.Solve calls
// this automatically when its own label context is set.
func (p *Preconditioner) SetLabelContext(ctx context.Context) {
	p.lctx = ctx
	if p.eng != nil {
		p.eng.SetLabelContext(ctx)
	}
}

// Apply computes z = Gᵀ(G r), the FSAI preconditioning operation: two SpMV
// products scheduled on the persistent worker pool with per-matrix
// nnz-balanced partition plans. The scratch vector and kernel engine are
// reused across calls (Compute pre-allocates them), so steady-state
// applications perform no heap allocations.
//
// Apply is not safe for concurrent use of one Preconditioner; concurrent
// solves need their own instance (or their own clone of G/GT).
func (p *Preconditioner) Apply(z, r []float64) {
	w := p.Workers
	if w <= 0 {
		w = parallel.MaxWorkers()
	}
	if p.tmp == nil || len(p.tmp) != p.G.Rows {
		p.tmp = make([]float64, p.G.Rows)
	}
	if w == 1 {
		p.G.MulVec(p.tmp, r)
		p.GT.MulVec(z, p.tmp)
		return
	}
	if p.eng == nil || p.eng.Workers() != w {
		p.eng = kernels.New(p.G.Rows, w)
		p.eng.SetLabelContext(p.lctx)
	}
	p.eng.SpMV(p.G, p.tmp, r)
	p.eng.SpMV(p.GT, z, p.tmp)
}

// ApplyBlock computes Z = Gᵀ(G R) for k column-major residual vectors in
// two SpMM sweeps: the factors' CSR streams are read once for all k
// columns instead of once per column, which is where the batched solve
// path earns its per-RHS speedup. Column j of the result is bit-identical
// to Apply on column j (the SpMM kernels preserve the per-column
// accumulation order), and k = 1 is exactly Apply. The (rows × k) scratch
// comes from the kernels size-keyed pool, so steady-state block
// applications at a fixed k allocate nothing.
//
// Like Apply, ApplyBlock is not safe for concurrent use of one
// Preconditioner.
func (p *Preconditioner) ApplyBlock(z, r []float64, k int) {
	if k == 1 {
		p.Apply(z, r)
		return
	}
	w := p.Workers
	if w <= 0 {
		w = parallel.MaxWorkers()
	}
	if need := p.G.Rows * k; len(p.btmp) != need {
		if p.btmp != nil {
			kernels.PutBlockScratch(p.btmp)
		}
		p.btmp = kernels.GetBlockScratch(need)
	}
	if w == 1 {
		p.G.MulMat(p.btmp, r, k)
		p.GT.MulMat(z, p.btmp, k)
		return
	}
	if p.eng == nil || p.eng.Workers() != w {
		p.eng = kernels.New(p.G.Rows, w)
		p.eng.SetLabelContext(p.lctx)
	}
	p.eng.SpMM(p.G, p.btmp, r, k)
	p.eng.SpMM(p.GT, z, p.btmp, k)
}

// initApply pre-allocates Apply's scratch and engine (and the partition
// plans of both factors) so the first application inside the solve loop
// allocates nothing.
func (p *Preconditioner) initApply() {
	if p.G == nil || p.GT == nil {
		return
	}
	w := p.Workers
	if w <= 0 {
		w = parallel.MaxWorkers()
	}
	p.tmp = make([]float64, p.G.Rows)
	if w > 1 {
		p.eng = kernels.New(p.G.Rows, w)
		p.G.PartitionPlan(w)
		p.GT.PartitionPlan(w)
	}
}

// CloneForApply returns a Preconditioner that shares p's (immutable)
// factors, patterns and stats but owns its own Apply scratch and kernel
// engine. Apply is not safe for concurrent use of one Preconditioner, so a
// cache serving one computed factor to many simultaneous solves hands each
// solve its own clone: the expensive state (G, GT, partition plans) stays
// shared, only the per-solve scratch is duplicated. workers <= 0 keeps p's
// worker setting.
func (p *Preconditioner) CloneForApply(workers int) *Preconditioner {
	if workers <= 0 {
		workers = p.Workers
	}
	c := &Preconditioner{
		G:            p.G,
		GT:           p.GT,
		BasePattern:  p.BasePattern,
		FinalPattern: p.FinalPattern,
		Stats:        p.Stats,
		Workers:      workers,
	}
	c.initApply()
	return c
}

// FromFactors reconstructs a Preconditioner from previously computed
// state — the factors G/Gᵀ, the patterns and the setup stats — and
// pre-allocates the Apply scratch exactly like Compute does. It exists for
// the durable store: a factor rehydrated from disk is bit-identical to the
// one that was computed, so warm solves after a restart reproduce the
// original arithmetic. The patterns may be nil (report pattern sections
// then read as zero). workers follows the krylov convention (<=0: all
// CPUs).
func FromFactors(g, gt *sparse.CSR, base, final *pattern.Pattern, stats SetupStats, workers int) *Preconditioner {
	p := &Preconditioner{
		G:            g,
		GT:           gt,
		BasePattern:  base,
		FinalPattern: final,
		Stats:        stats,
		Workers:      workers,
	}
	p.initApply()
	return p
}

// NNZ returns the stored-entry count of the lower factor G.
func (p *Preconditioner) NNZ() int { return p.G.NNZ() }

// ExtensionPct returns the percentage of entries the final pattern adds on
// top of the base pattern (the "% NNZ" columns of Table 1). Zero when the
// patterns are absent (e.g. a factor rehydrated without them).
func (p *Preconditioner) ExtensionPct() float64 {
	if p.BasePattern == nil || p.FinalPattern == nil {
		return 0
	}
	base := p.BasePattern.NNZ()
	if base == 0 {
		return 0
	}
	return 100 * float64(p.FinalPattern.NNZ()-base) / float64(base)
}

// ExtensionPattern returns the fill-in-only pattern: the positions the
// cache-friendly extension (and any surviving filtering) added on top of
// the base pattern. These are the entries whose cache behaviour the miss
// attribution profiler reports separately from the base entries.
func (p *Preconditioner) ExtensionPattern() *pattern.Pattern {
	return p.FinalPattern.Minus(p.BasePattern)
}

// PublishSetupStats records s in reg as labelled per-phase/per-variant
// series: one counter of accumulated nanoseconds per (phase, variant) and
// one setup counter per variant. Nil-safe on a nil registry.
func PublishSetupStats(reg *telemetry.Registry, variant string, s *SetupStats) {
	if reg == nil || s == nil {
		return
	}
	reg.SetHelp("fsai_setup_phase_ns", "accumulated FSAI setup wall nanoseconds by phase and variant")
	reg.SetHelp("fsai_setups", "preconditioner setups by variant")
	for _, ph := range s.Phases {
		reg.Counter(`fsai.setup.phase_ns{phase="` + ph.Name + `",variant="` + variant + `"}`).Add(ph.NS)
	}
	reg.Counter(`fsai.setups{variant="` + variant + `"}`).Inc()
}

// ErrNotSPD is reported when a local system A(S_i,S_i) is not positive
// definite, which for exact arithmetic cannot happen with SPD A.
var ErrNotSPD = errors.New("fsai: local system not positive definite (is A SPD?)")

// InitialPattern computes the a-priori pattern of G: the lower triangle
// (diagonal included) of the pattern of Ã^N, where Ã is A thresholded with
// tau (Algorithm 1/2/4, steps 1-2).
func InitialPattern(a *sparse.CSR, tau float64, power int) *pattern.Pattern {
	at := a
	if tau > 0 {
		at = a.Threshold(tau)
	}
	p := pattern.FromCSR(at)
	if power > 1 {
		p = p.Power(power)
	}
	return p.Lower().WithDiagonal()
}

// computeRows evaluates G values on the given lower-triangular pattern by
// solving each local Frobenius system A(S_i,S_i) y = e_i exactly and scaling
// by 1/sqrt(y_i) so that diag(G A Gᵀ) = 1 (Kolotilina-Yeremin FSAI).
// The returned CSR shares the pattern's index structure.
func computeRows(a *sparse.CSR, p *pattern.Pattern, workers int, stats *SetupStats) (*sparse.CSR, error) {
	n := a.Rows
	g := &sparse.CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: append([]int(nil), p.RowPtr...),
		ColIdx: append([]int(nil), p.Cols...),
		Val:    make([]float64, p.NNZ()),
	}
	nw := workers
	if nw <= 0 {
		nw = parallel.MaxWorkers()
	}
	errs := make([]error, nw)
	partial := make([]SetupStats, nw)
	bounds := parallel.Chunks(n, nw)
	poolErr := parallel.ForErr(len(bounds)/2, nw, func(wlo, whi int) {
		for c := wlo; c < whi; c++ {
			lo, hi := bounds[2*c], bounds[2*c+1]
			var aloc, rhs []float64
			st := &partial[c]
			for i := lo; i < hi; i++ {
				idx := p.Row(i)
				m := len(idx)
				if m == 0 || idx[m-1] != i {
					errs[c] = setupErrf(ReasonMissingDiagonal, i, "row %d pattern lacks diagonal", i)
					return
				}
				if m > st.MaxLocal {
					st.MaxLocal = m
				}
				st.Rows++
				if cap(aloc) < m*m {
					aloc = make([]float64, m*m)
					rhs = make([]float64, m)
				}
				aloc = a.Extract(idx, aloc[:m*m])
				rhs = rhs[:m]
				sparse.GatherRHS(rhs, m-1)
				if err := dense.SolveSPD(aloc, m, rhs); err != nil {
					errs[c] = setupErrf(ReasonNotSPD, i, "row %d: %w", i, ErrNotSPD)
					return
				}
				fm := float64(m)
				st.DirectFlops += fm*fm*fm/3 + 2*fm*fm
				d := rhs[m-1]
				if d <= 0 || math.IsNaN(d) {
					errs[c] = setupErrf(ReasonNotSPD, i, "row %d diagonal %g: %w", i, d, ErrNotSPD)
					return
				}
				scale := 1 / math.Sqrt(d)
				off := g.RowPtr[i]
				for k := 0; k < m; k++ {
					g.Val[off+k] = rhs[k] * scale
				}
			}
		}
	})
	if poolErr != nil {
		// A panicking row task was contained by the pool; surface it as a
		// typed setup failure instead of crashing the process.
		return nil, setupErr(ReasonWorkerPanic, -1, poolErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if stats != nil {
		for _, st := range partial {
			stats.add(st)
		}
	}
	return g, nil
}

// precalcRows evaluates an *approximate* G on the given pattern using a few
// loose-tolerance CG sweeps per local system (Section 5). Only the order of
// magnitude of the entries matters — the result is used exclusively to
// decide which extension entries to keep.
func precalcRows(a *sparse.CSR, p *pattern.Pattern, tol float64, maxIter, workers int, stats *SetupStats) *sparse.CSR {
	n := a.Rows
	g := &sparse.CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: append([]int(nil), p.RowPtr...),
		ColIdx: append([]int(nil), p.Cols...),
		Val:    make([]float64, p.NNZ()),
	}
	nw := workers
	if nw <= 0 {
		nw = parallel.MaxWorkers()
	}
	partial := make([]SetupStats, nw)
	bounds := parallel.Chunks(n, nw)
	parallel.For(len(bounds)/2, nw, func(wlo, whi int) {
		for c := wlo; c < whi; c++ {
			lo, hi := bounds[2*c], bounds[2*c+1]
			var aloc, rhs, sol []float64
			st := &partial[c]
			for i := lo; i < hi; i++ {
				idx := p.Row(i)
				m := len(idx)
				if cap(aloc) < m*m {
					aloc = make([]float64, m*m)
					rhs = make([]float64, m)
					sol = make([]float64, m)
				}
				aloc = a.Extract(idx, aloc[:m*m])
				rhs = rhs[:m]
				sol = sol[:m]
				sparse.GatherRHS(rhs, m-1)
				res := dense.CG(aloc, m, sol, rhs, tol, maxIter)
				st.PrecalcFlops += float64(res.Iterations) * 2 * float64(m) * float64(m)
				off := g.RowPtr[i]
				copy(g.Val[off:off+m], sol)
			}
		}
	})
	if stats != nil {
		for _, st := range partial {
			stats.add(st)
		}
	}
	return g
}
