package fsai

import (
	"testing"

	"repro/internal/krylov"
	"repro/internal/matgen"
)

func benchSetup(b *testing.B, variant Variant, lineBytes int) {
	a := matgen.Laplace2D(48, 48)
	opts := DefaultOptions()
	opts.Variant = variant
	opts.LineBytes = lineBytes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(a, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSetupFSAI(b *testing.B)         { benchSetup(b, VariantFSAI, 64) }
func BenchmarkSetupFSAIESp(b *testing.B)      { benchSetup(b, VariantSp, 64) }
func BenchmarkSetupFSAIEFull(b *testing.B)    { benchSetup(b, VariantFull, 64) }
func BenchmarkSetupFSAIEFull256(b *testing.B) { benchSetup(b, VariantFull, 256) }

func BenchmarkExtendPattern(b *testing.B) {
	a := matgen.Laplace2D(64, 64)
	base := InitialPattern(a, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExtendPattern(base, 8, 0, ClipLower, 0)
	}
	b.ReportMetric(float64(base.NNZ()), "base_nnz")
}

func BenchmarkPrecondApply(b *testing.B) {
	a := matgen.Laplace2D(64, 64)
	p, err := Compute(a, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	r := make([]float64, a.Rows)
	z := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i % 13)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(z, r)
	}
	b.SetBytes(int64(2 * p.NNZ() * 12))
}

func BenchmarkPCGSolve(b *testing.B) {
	a := matgen.Laplace2D(48, 48)
	p, err := Compute(a, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	x := make([]float64, a.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := krylov.Solve(a, x, rhs, p, krylov.DefaultOptions())
		if !res.Converged {
			b.Fatal("no convergence")
		}
	}
}
