package fsai

import (
	"testing"

	"repro/internal/cachesim"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/pattern"
)

// TestCalibrationSurvey is a diagnostic (skipped in -short) that prints, for
// a sample of suite matrices, the iteration counts and x-access miss
// profiles of FSAI vs FSAIE(full) at two line sizes. It guards the
// qualitative properties the perf model is calibrated against.
func TestCalibrationSurvey(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic survey")
	}
	names := []string{"lap64x64", "band1200-bw8-d0.25", "aniso56x56-e0.001",
		"wathen20x20", "circuit500-d5", "elas28x28-s100", "jump56x56-b4-j1e4"}
	l1 := cachesim.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}
	for _, name := range names {
		spec, ok := matgen.ByName(name)
		if !ok {
			t.Fatalf("no spec %s", name)
		}
		a := spec.Generate()
		b := spec.RHS(a)
		x := make([]float64, a.Rows)
		kopt := krylov.DefaultOptions()
		for _, lineBytes := range []int{64, 256} {
			for _, cfg := range []struct {
				variant Variant
				filter  float64
			}{{VariantFSAI, 0}, {VariantFull, 0.01}, {VariantFull, 0.0}} {
				o := DefaultOptions()
				o.Variant = cfg.variant
				o.Filter = cfg.filter
				o.LineBytes = lineBytes
				p, err := Compute(a, o)
				if err != nil {
					t.Fatalf("%s %v: %v", name, cfg.variant, err)
				}
				res := krylov.Solve(a, x, b, p, kopt)
				c := cachesim.New(l1)
				gp := pattern.FromCSR(p.G)
				gm, gtm := cachesim.TracePrecondition(c, gp, cachesim.TraceOptions{IncludeStreams: true})
				am := cachesim.TraceCSR(c, a, cachesim.TraceOptions{IncludeStreams: true})
				t.Logf("%-22s line=%3d %-12v f=%-5v iters=%5d nnzG=%7d ext=%6.1f%% missG=%6d missGT=%6d missA=%6d missG/nnz=%.3f",
					name, lineBytes, cfg.variant, cfg.filter, res.Iterations, p.NNZ(),
					p.ExtensionPct(), gm, gtm, am, float64(gm+gtm)/float64(2*p.NNZ()))
			}
		}
	}
}
