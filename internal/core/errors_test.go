package fsai

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/pattern"
	"repro/internal/sparse"
)

func TestSetupReasonNames(t *testing.T) {
	cases := map[SetupReason]string{
		ReasonUnknown:         "unknown",
		ReasonBadInput:        "bad-input",
		ReasonNotSPD:          "not-spd",
		ReasonMissingDiagonal: "missing-diagonal",
		ReasonPatternBlowup:   "pattern-blowup",
		ReasonWorkerPanic:     "worker-panic",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String()=%q want %q", int(r), r.String(), want)
		}
	}
	for r := range cases {
		if got, want := r.Retryable(), r == ReasonNotSPD; got != want {
			t.Errorf("%v.Retryable()=%v want %v", r, got, want)
		}
	}
}

func TestSetupErrorBadInput(t *testing.T) {
	b := sparse.NewCOO(3, 4, 1)
	b.Add(0, 0, 1)
	_, err := Compute(b.ToCSR(), DefaultOptions())
	se, ok := AsSetupError(err)
	if !ok || se.Reason != ReasonBadInput {
		t.Fatalf("non-square matrix: err=%v", err)
	}
}

func TestSetupErrorNotSPD(t *testing.T) {
	a := laplace1D(20)
	// Flip one diagonal entry negative: the local Frobenius systems touching
	// it stop being positive definite.
	for k := a.RowPtr[7]; k < a.RowPtr[8]; k++ {
		if a.ColIdx[k] == 7 {
			a.Val[k] = -3
		}
	}
	opts := DefaultOptions()
	opts.Variant = VariantFSAI
	_, err := Compute(a, opts)
	se, ok := AsSetupError(err)
	if !ok || se.Reason != ReasonNotSPD {
		t.Fatalf("indefinite matrix: err=%v", err)
	}
	if !errors.Is(err, ErrNotSPD) {
		t.Errorf("SetupError should still wrap ErrNotSPD")
	}
	if !se.Reason.Retryable() {
		t.Errorf("not-spd must be retryable (diagonal shift)")
	}
	if se.Row < 0 {
		t.Errorf("not-spd should attribute the offending row, got %d", se.Row)
	}
	if !strings.Contains(se.Error(), "not-spd") {
		t.Errorf("error text lacks the reason: %q", se.Error())
	}
}

func TestSetupErrorMissingDiagonal(t *testing.T) {
	a := laplace1D(4)
	p := pattern.New(4, 4)
	for i := 0; i < 4; i++ {
		if i != 2 { // row 2 lacks its diagonal
			p.AppendCol(i)
		}
		p.CloseRow(i)
	}
	_, err := ComputeOnPattern(a, p, 1, nil)
	se, ok := AsSetupError(err)
	if !ok || se.Reason != ReasonMissingDiagonal || se.Row != 2 {
		t.Fatalf("missing diagonal: err=%v", err)
	}
}

func TestSetupErrorPatternBlowup(t *testing.T) {
	a := laplace1D(50)
	opts := DefaultOptions()
	opts.Variant = VariantSp
	opts.Filter = 0 // keep the whole extension
	opts.MaxPatternNNZFactor = 0.01
	_, err := Compute(a, opts)
	se, ok := AsSetupError(err)
	if !ok || se.Reason != ReasonPatternBlowup {
		t.Fatalf("blowup budget: err=%v", err)
	}
	if se.Reason.Retryable() {
		t.Errorf("pattern blowup is not shift-retryable")
	}

	// A permissive budget must not trip.
	opts.MaxPatternNNZFactor = 100
	if _, err := Compute(a, opts); err != nil {
		t.Fatalf("permissive budget failed: %v", err)
	}
}

func TestSetupErrorWorkerPanic(t *testing.T) {
	a := laplace1D(8)
	// An out-of-range column index makes the row task panic inside the pool;
	// the pool contains it and setup reports a typed worker-panic error.
	p := pattern.New(8, 8)
	for i := 0; i < 8; i++ {
		if i == 5 {
			p.AppendCol(-1)
		}
		p.AppendCol(i)
		p.CloseRow(i)
	}
	_, err := ComputeOnPattern(a, p, 2, nil)
	se, ok := AsSetupError(err)
	if !ok || se.Reason != ReasonWorkerPanic {
		t.Fatalf("worker panic: err=%v", err)
	}
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("worker-panic SetupError should wrap *parallel.PanicError, got %v", err)
	}
}
