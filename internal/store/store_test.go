package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// fixture computes one matrix + factor pair for persistence tests.
func fixture(t *testing.T) (*sparse.CSR, *fsai.Preconditioner) {
	t.Helper()
	a := matgen.Laplace2D(8, 8)
	p, err := fsai.Compute(a, fsai.Options{Variant: fsai.VariantFull, LineBytes: 64, PatternPower: 1})
	if err != nil {
		t.Fatalf("fsai.Compute: %v", err)
	}
	return a, p
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func sameCSR(a, b *sparse.CSR) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols || len(a.Val) != len(b.Val) {
		return false
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.ColIdx[i] != b.ColIdx[i] {
			return false
		}
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	return true
}

func TestRoundTripSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	a, p := fixture(t)
	fp := a.Fingerprint()
	key := fp + "|fsaie|f=0|line=64|pow=1|tau=0"

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "lap8"); err != nil {
		t.Fatalf("PutMatrix: %v", err)
	}
	if err := s.PutFactor(key, fp, p, 12345); err != nil {
		t.Fatalf("PutFactor: %v", err)
	}
	st := s.Stats()
	if st.Matrices != 1 || st.Factors != 1 || st.Bytes <= 0 {
		t.Fatalf("stats after put = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openStore(t, dir)
	ms, fs := s2.DrainRecovered()
	if len(ms) != 1 || len(fs) != 1 {
		t.Fatalf("recovered %d matrices, %d factors; want 1, 1", len(ms), len(fs))
	}
	if ms[0].Name != "lap8" || ms[0].A.Fingerprint() != fp {
		t.Fatalf("recovered matrix name=%q fp=%s", ms[0].Name, ms[0].A.Fingerprint())
	}
	f := fs[0]
	if f.Key != key || f.Fingerprint != fp || f.SetupNS != 12345 {
		t.Fatalf("recovered factor meta = %+v", f)
	}
	// Bit-identical factors are the whole point: a warm solve after restart
	// must reproduce the original arithmetic exactly.
	if !sameCSR(f.G, p.G) || !sameCSR(f.GT, p.GT) {
		t.Fatal("recovered factors are not bit-identical to the computed ones")
	}
	if f.Base == nil || f.Final == nil ||
		f.Base.NNZ() != p.BasePattern.NNZ() || f.Final.NNZ() != p.FinalPattern.NNZ() {
		t.Fatal("recovered patterns do not match")
	}
	if f.Stats.Rows != p.Stats.Rows || f.Stats.DirectFlops != p.Stats.DirectFlops {
		t.Fatalf("recovered stats = %+v, want %+v", f.Stats, p.Stats)
	}
	// Rehydration path used by the service: the reconstructed preconditioner
	// must Apply without the original in-process state.
	re := fsai.FromFactors(f.G, f.GT, f.Base, f.Final, f.Stats, 1)
	z1 := make([]float64, a.Rows)
	z2 := make([]float64, a.Rows)
	r := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i%7) - 3
	}
	p.Workers = 1
	p.Apply(z1, r)
	re.Apply(z2, r)
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatalf("Apply mismatch at %d: %g vs %g", i, z1[i], z2[i])
		}
	}
	// Second drain hands back nothing.
	if m2, f2 := s2.DrainRecovered(); len(m2) != 0 || len(f2) != 0 {
		t.Fatal("DrainRecovered is not one-shot")
	}
}

func TestDeleteRemovesDiskEntries(t *testing.T) {
	dir := t.TempDir()
	a, p := fixture(t)
	fp := a.Fingerprint()
	key := fp + "|fsai"

	s := openStore(t, dir)
	if err := s.PutMatrix(a, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFactor(key, fp, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteFactor(key); err != nil {
		t.Fatalf("DeleteFactor: %v", err)
	}
	if err := s.DeleteMatrix(fp); err != nil {
		t.Fatalf("DeleteMatrix: %v", err)
	}
	for _, sub := range []string{matrixDir, factorDir} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 0 {
			t.Fatalf("%s still holds %d files after delete", sub, len(entries))
		}
	}
	s.Close()

	s2 := openStore(t, dir)
	if ms, fs := s2.DrainRecovered(); len(ms) != 0 || len(fs) != 0 {
		t.Fatalf("deleted entries came back: %d matrices, %d factors", len(ms), len(fs))
	}
}

// corruptOneFile flips one byte of the single file in dir/sub.
func corruptOneFile(t *testing.T, dir, sub string, mutate func([]byte) []byte) string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, sub))
	if err != nil || len(entries) != 1 {
		t.Fatalf("expected exactly one file in %s (err=%v, n=%d)", sub, err, len(entries))
	}
	path := filepath.Join(dir, sub, entries[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return entries[0].Name()
}

func TestBitFlippedFactorIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	a, p := fixture(t)
	fp := a.Fingerprint()

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFactor(fp+"|k", fp, p, 0); err != nil {
		t.Fatal(err)
	}
	s.Close()

	name := corruptOneFile(t, dir, factorDir, func(b []byte) []byte {
		b[len(b)/2] ^= 0x10
		return b
	})

	s2 := openStore(t, dir)
	ms, fs := s2.DrainRecovered()
	if len(ms) != 1 {
		t.Fatalf("matrix should survive a factor corruption, got %d", len(ms))
	}
	if len(fs) != 0 {
		t.Fatal("bit-flipped factor was not dropped")
	}
	if got := s2.Stats().Corrupt; got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, name)); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
}

func TestTruncatedMatrixIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	a, _ := fixture(t)

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	corruptOneFile(t, dir, matrixDir, func(b []byte) []byte { return b[:len(b)/3] })

	s2 := openStore(t, dir)
	ms, _ := s2.DrainRecovered()
	if len(ms) != 0 {
		t.Fatal("truncated matrix entry was not dropped")
	}
	if got := s2.Stats().Corrupt; got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
}

func TestFactorWithoutMatrixIsDropped(t *testing.T) {
	dir := t.TempDir()
	a, p := fixture(t)
	fp := a.Fingerprint()

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	if err := s.PutFactor(fp+"|k", fp, p, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteMatrix(fp); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openStore(t, dir)
	ms, fs := s2.DrainRecovered()
	if len(ms) != 0 || len(fs) != 0 {
		t.Fatalf("orphaned factor survived: %d matrices, %d factors", len(ms), len(fs))
	}
	// Dangling factors are dropped, not quarantined: nothing was corrupt.
	if got := s2.Stats().Corrupt; got != 0 {
		t.Fatalf("corrupt counter = %d, want 0", got)
	}
}

func TestPartialTrailingLogLineIsTolerated(t *testing.T) {
	dir := t.TempDir()
	a, _ := fixture(t)

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: a torn, non-JSON final line.
	logPath := filepath.Join(dir, logName)
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"del-matrix","ref":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	ms, _ := s2.DrainRecovered()
	if len(ms) != 1 {
		t.Fatalf("recovered %d matrices, want 1 (torn log tail must not lose prior records)", len(ms))
	}
}

func TestCorruptSnapshotIsQuarantinedNotFatal(t *testing.T) {
	dir := t.TempDir()
	a, _ := fixture(t)

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Open must succeed; the put-matrix record still lives in manifest.log
	// (written after the Open-time compaction), so the entry survives.
	s2 := openStore(t, dir)
	ms, _ := s2.DrainRecovered()
	if len(ms) != 1 {
		t.Fatalf("recovered %d matrices, want 1 via log replay", len(ms))
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, manifestName)); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
}

func TestOrphanFilesAndTempFilesAreSwept(t *testing.T) {
	dir := t.TempDir()
	a, _ := fixture(t)

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	orphan := filepath.Join(dir, factorDir, "deadbeef.bin")
	tmp := filepath.Join(dir, matrixDir, "half.bin.tmp")
	for _, p := range []string{orphan, tmp} {
		if err := os.WriteFile(p, []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	openStore(t, dir)
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s not swept (err=%v)", p, err)
		}
	}
}

func TestLogCompaction(t *testing.T) {
	dir := t.TempDir()
	a, _ := fixture(t)

	s := openStore(t, dir)
	if err := s.PutMatrix(a, "m"); err != nil {
		t.Fatal(err)
	}
	// Rename churn drives the append log past compactEvery.
	for i := 0; i < compactEvery+4; i++ {
		name := "alias-" + strings.Repeat("x", i%3+1)
		if err := s.PutMatrix(a, name); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 4096 {
		t.Fatalf("manifest log not compacted: %d bytes", fi.Size())
	}
	s.Close()

	s2 := openStore(t, dir)
	ms, _ := s2.DrainRecovered()
	if len(ms) != 1 {
		t.Fatalf("recovered %d matrices after compaction, want 1", len(ms))
	}
}

func TestInjectedShortWriteAndBitFlipAreCaughtOnRecovery(t *testing.T) {
	for _, tc := range []struct {
		name string
		arm  func(in *faultinject.Injector)
		site string
	}{
		{"short-write", func(in *faultinject.Injector) { in.WithShortWrite(0.5, 1) }, faultinject.SiteShortWrite},
		{"bit-flip", func(in *faultinject.Injector) { in.WithBitFlip(1) }, faultinject.SiteBitFlip},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			a, p := fixture(t)
			fp := a.Fingerprint()

			s := openStore(t, dir)
			if err := s.PutMatrix(a, "m"); err != nil {
				t.Fatal(err)
			}
			in := faultinject.New(7)
			tc.arm(in)
			restore := faultinject.Activate(in)
			err := s.PutFactor(fp+"|k", fp, p, 0)
			restore()
			if err != nil {
				t.Fatalf("PutFactor under %s: %v", tc.name, err)
			}
			events := in.Events()
			if len(events) != 1 || events[0].Site != tc.site {
				t.Fatalf("events = %v, want one %s", events, tc.site)
			}
			s.Close()

			s2 := openStore(t, dir)
			ms, fs := s2.DrainRecovered()
			if len(ms) != 1 || len(fs) != 0 {
				t.Fatalf("recovered %d matrices, %d factors; corrupted factor must be dropped", len(ms), len(fs))
			}
			if got := s2.Stats().Corrupt; got != 1 {
				t.Fatalf("corrupt counter = %d, want 1", got)
			}
		})
	}
}

func TestPutMatrixIsIdempotentByFingerprint(t *testing.T) {
	dir := t.TempDir()
	a, _ := fixture(t)

	s := openStore(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.PutMatrix(a, "m"); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, matrixDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("re-putting one matrix produced %d files", len(entries))
	}
	if st := s.Stats(); st.Matrices != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
