package store

import (
	"testing"

	"repro/internal/leakcheck"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }
