package store

// Binary codec for on-disk store entries. Every entry file is
//
//	magic "FSST" | version u16 | kind u8 | pad u8 | paylen u64 | payload | sha256
//
// little-endian, with the SHA-256 computed over header+payload so a flipped
// bit anywhere in the file — including the kind byte — fails verification.
// Floats are stored as their IEEE-754 bits, so a factor read back from disk
// is bit-identical to the one computed: a warm solve after a restart runs
// exactly the same arithmetic as before the crash.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	fsai "repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/sparse"
)

const (
	fileMagic   = "FSST"
	fileVersion = 1
	headerLen   = 4 + 2 + 1 + 1 + 8
	sumLen      = sha256.Size

	kindMatrix = 'M'
	kindFactor = 'F'
)

// errCorrupt is the sentinel for any integrity failure: bad magic, length
// mismatch (truncation/short write), checksum mismatch (bit flip) or a
// payload that does not decode. The store quarantines on it.
var errCorrupt = errors.New("store: corrupt entry")

// sealFile wraps a payload into the checksummed on-disk format.
func sealFile(kind byte, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload)+sumLen)
	copy(out, fileMagic)
	binary.LittleEndian.PutUint16(out[4:], fileVersion)
	out[6] = kind
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	copy(out[headerLen:], payload)
	sum := sha256.Sum256(out[:headerLen+len(payload)])
	copy(out[headerLen+len(payload):], sum[:])
	return out
}

// openFile verifies the envelope and returns the kind and payload.
func openFile(data []byte) (kind byte, payload []byte, err error) {
	if len(data) < headerLen+sumLen || string(data[:4]) != fileMagic {
		return 0, nil, fmt.Errorf("%w: bad magic or truncated header", errCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != fileVersion {
		return 0, nil, fmt.Errorf("%w: unknown version %d", errCorrupt, v)
	}
	paylen := binary.LittleEndian.Uint64(data[8:])
	if paylen != uint64(len(data)-headerLen-sumLen) {
		return 0, nil, fmt.Errorf("%w: payload length %d does not match file size (short write?)", errCorrupt, paylen)
	}
	want := data[headerLen+paylen:]
	sum := sha256.Sum256(data[:headerLen+paylen])
	for i := range sum {
		if sum[i] != want[i] {
			return 0, nil, fmt.Errorf("%w: checksum mismatch", errCorrupt)
		}
	}
	return data[6], data[headerLen : headerLen+paylen], nil
}

// enc is a little-endian append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

func (e *enc) str(s string) {
	e.u64(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) ints(v []int) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(uint64(int64(x)))
	}
}

func (e *enc) floats(v []float64) {
	e.u64(uint64(len(v)))
	for _, x := range v {
		e.u64(math.Float64bits(x))
	}
}

func (e *enc) csr(m *sparse.CSR) {
	e.u64(uint64(m.Rows))
	e.u64(uint64(m.Cols))
	e.ints(m.RowPtr)
	e.ints(m.ColIdx)
	e.floats(m.Val)
}

// pat encodes a possibly-nil pattern behind a presence flag.
func (e *enc) pat(p *pattern.Pattern) {
	if p == nil {
		e.b = append(e.b, 0)
		return
	}
	e.b = append(e.b, 1)
	e.u64(uint64(p.Rows))
	e.u64(uint64(p.NCols))
	e.ints(p.RowPtr)
	e.ints(p.Cols)
}

// dec is the matching bounds-checked reader: a payload that lies about its
// lengths (possible only before the checksum gate, or with a crafted file)
// yields err instead of a panic or an absurd allocation.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s", errCorrupt, what)
	}
}

func (d *dec) u64(what string) uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64(what string) int64 { return int64(d.u64(what)) }

// length reads an element count and bounds it by the bytes remaining, with
// elemSize the minimum encoded size of one element.
func (d *dec) length(what string, elemSize int) int {
	n := d.u64(what)
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)-d.off)/uint64(elemSize) {
		d.fail(what + " length")
		return 0
	}
	return int(n)
}

func (d *dec) str(what string) string {
	n := d.length(what, 1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}

func (d *dec) ints(what string) []int {
	n := d.length(what, 8)
	if d.err != nil {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(d.i64(what))
	}
	return v
}

func (d *dec) floats(what string) []float64 {
	n := d.length(what, 8)
	if d.err != nil {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(d.u64(what))
	}
	return v
}

func (d *dec) csr(what string) *sparse.CSR {
	m := &sparse.CSR{
		Rows:   int(d.u64(what + " rows")),
		Cols:   int(d.u64(what + " cols")),
		RowPtr: d.ints(what + " rowptr"),
		ColIdx: d.ints(what + " colidx"),
		Val:    d.floats(what + " val"),
	}
	if d.err != nil {
		return nil
	}
	if m.Rows < 0 || m.Cols < 0 || len(m.RowPtr) != m.Rows+1 ||
		len(m.ColIdx) != len(m.Val) ||
		(m.Rows > 0 && m.RowPtr[m.Rows] != len(m.ColIdx)) {
		d.fail(what + " structure")
		return nil
	}
	return m
}

func (d *dec) pat(what string) *pattern.Pattern {
	if d.err != nil {
		return nil
	}
	if d.off >= len(d.b) {
		d.fail(what)
		return nil
	}
	present := d.b[d.off]
	d.off++
	if present == 0 {
		return nil
	}
	p := &pattern.Pattern{
		Rows:   int(d.u64(what + " rows")),
		NCols:  int(d.u64(what + " ncols")),
		RowPtr: d.ints(what + " rowptr"),
		Cols:   d.ints(what + " cols"),
	}
	if d.err != nil {
		return nil
	}
	if p.Rows < 0 || len(p.RowPtr) != p.Rows+1 ||
		(p.Rows > 0 && p.RowPtr[p.Rows] != len(p.Cols)) {
		d.fail(what + " structure")
		return nil
	}
	return p
}

// encodeMatrix seals a registered matrix (alias name + operator).
func encodeMatrix(a *sparse.CSR, name string) []byte {
	var e enc
	e.str(name)
	e.csr(a)
	return sealFile(kindMatrix, e.b)
}

func decodeMatrix(payload []byte) (a *sparse.CSR, name string, err error) {
	d := dec{b: payload}
	name = d.str("matrix name")
	a = d.csr("matrix")
	if d.err != nil {
		return nil, "", d.err
	}
	return a, name, nil
}

// encodeFactor seals a computed preconditioner factor under its cache key:
// both triangular factors (bit-exact), the base/final patterns and the
// setup stats, so a rehydrated factor serves warm solves — including the
// run report's pattern/phase sections — exactly like the one that was
// computed in-process.
func encodeFactor(key, fingerprint string, p *fsai.Preconditioner, setupNS int64) []byte {
	stats, _ := json.Marshal(p.Stats)
	var e enc
	e.str(key)
	e.str(fingerprint)
	e.i64(setupNS)
	e.str(string(stats))
	e.csr(p.G)
	e.csr(p.GT)
	e.pat(p.BasePattern)
	e.pat(p.FinalPattern)
	return sealFile(kindFactor, e.b)
}

func decodeFactor(payload []byte) (*RecoveredFactor, error) {
	d := dec{b: payload}
	f := &RecoveredFactor{
		Key:         d.str("factor key"),
		Fingerprint: d.str("factor fingerprint"),
		SetupNS:     d.i64("factor setup_ns"),
	}
	stats := d.str("factor stats")
	f.G = d.csr("factor G")
	f.GT = d.csr("factor GT")
	f.Base = d.pat("factor base pattern")
	f.Final = d.pat("factor final pattern")
	if d.err != nil {
		return nil, d.err
	}
	if stats != "" {
		if err := json.Unmarshal([]byte(stats), &f.Stats); err != nil {
			return nil, fmt.Errorf("%w: stats: %v", errCorrupt, err)
		}
	}
	if f.G.Rows != f.GT.Rows || f.G.Cols != f.GT.Cols || f.G.NNZ() != f.GT.NNZ() {
		return nil, fmt.Errorf("%w: factor G/GT shape mismatch", errCorrupt)
	}
	return f, nil
}
