// Package store is the fsaid daemon's crash-safe persistence layer: the
// durable half of the service's registry and preconditioner cache. The
// paper's whole economics rest on amortizing the expensive FSAI(E) setup
// across repeated solves; without durability one crash or deploy discards
// every factorization and the next solve pays full setup again. With a
// store attached (fsaid -data-dir), registered matrices and computed G/Gᵀ
// factors survive restarts bit-identically, so the first solve after
// recovery is a warm cache hit.
//
// On-disk layout under the data directory:
//
//	manifest.json    snapshot of the live entry set (schema 1)
//	manifest.log     append-only JSONL of operations since the snapshot
//	matrices/*.bin   one checksummed entry per registered matrix
//	factors/*.bin    one checksummed entry per cached preconditioner factor
//	quarantine/      corrupt entries moved aside at recovery, never deleted
//
// Durability discipline: entry files are written to a temp name, fsynced
// and atomically renamed before the manifest log line that references them
// is appended (also fsynced) — a crash between the two leaves an orphan
// file that the next Open removes, never a manifest entry pointing at
// nothing valid. Recovery replays snapshot+log, re-verifies every entry's
// SHA-256 (and the matrix content fingerprint), and QUARANTINES corrupt or
// truncated entries instead of failing startup: losing one factor costs
// one recomputation; refusing to start costs the whole cache.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	fsai "repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/pattern"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// compactEvery bounds the manifest log: after this many appended records
// the snapshot is rewritten and the log truncated, so recovery replay stays
// O(recent churn), not O(history).
const compactEvery = 64

const (
	manifestName  = "manifest.json"
	logName       = "manifest.log"
	matrixDir     = "matrices"
	factorDir     = "factors"
	quarantineDir = "quarantine"
)

// Options configures a Store. Both fields are optional (the telemetry
// registry is nil-safe; a nil logger discards).
type Options struct {
	Metrics *telemetry.Registry
	Logger  *slog.Logger
}

// manifestMatrix is one matrix entry of the manifest snapshot/log.
type manifestMatrix struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name,omitempty"`
	File        string `json:"file"`
}

// manifestFactor is one factor entry of the manifest snapshot/log.
type manifestFactor struct {
	Key         string `json:"key"`
	Fingerprint string `json:"fingerprint"`
	File        string `json:"file"`
	SetupNS     int64  `json:"setup_ns,omitempty"`
}

// manifest is the snapshot document (manifest.json).
type manifest struct {
	Schema   int              `json:"schema"`
	Matrices []manifestMatrix `json:"matrices"`
	Factors  []manifestFactor `json:"factors"`
}

// logRecord is one line of manifest.log.
type logRecord struct {
	Op     string          `json:"op"` // put-matrix|del-matrix|put-factor|del-factor
	Matrix *manifestMatrix `json:"matrix,omitempty"`
	Factor *manifestFactor `json:"factor,omitempty"`
	Ref    string          `json:"ref,omitempty"` // fingerprint / key for deletes
}

// RecoveredMatrix is a verified matrix entry rehydrated at Open.
type RecoveredMatrix struct {
	A    *sparse.CSR
	Name string
}

// RecoveredFactor is a verified preconditioner factor rehydrated at Open.
// G/GT/patterns/stats are exactly what was persisted; the service rebuilds
// the Apply scratch via fsai.FromFactors.
type RecoveredFactor struct {
	Key         string
	Fingerprint string
	SetupNS     int64
	G, GT       *sparse.CSR
	Base, Final *pattern.Pattern
	Stats       fsai.SetupStats
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Matrices int   `json:"matrices"`
	Factors  int   `json:"factors"`
	Bytes    int64 `json:"bytes"`
	// Corrupt counts entries quarantined since Open (also exported as the
	// store_corrupt_total counter).
	Corrupt int64 `json:"corrupt"`
}

// Store is the disk-backed persistence layer. All methods are safe for
// concurrent use; the write path (register, cold-solve factor persist,
// delete) serializes on one mutex — it is far off the solve hot path.
type Store struct {
	dir string
	reg *telemetry.Registry
	log *slog.Logger

	mu       sync.Mutex
	matrices map[string]manifestMatrix // by fingerprint
	factors  map[string]manifestFactor // by cache key
	logf     *os.File
	appended int
	bytes    int64

	corrupt atomic.Int64

	recMatrices []RecoveredMatrix
	recFactors  []RecoveredFactor
}

// Open attaches to (creating if needed) the data directory, replays the
// manifest, verifies every referenced entry and quarantines what fails.
// It returns an error only when the directory itself is unusable — a
// corrupt manifest or corrupt entries degrade to an emptier store, they
// never fail startup.
func Open(dir string, opt Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty data directory")
	}
	for _, d := range []string{dir, filepath.Join(dir, matrixDir), filepath.Join(dir, factorDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	logger := opt.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Store{
		dir:      dir,
		reg:      opt.Metrics,
		log:      logger,
		matrices: map[string]manifestMatrix{},
		factors:  map[string]manifestFactor{},
	}
	s.reg.SetHelp("store_entries", "durable store entries by kind (matrix, factor)")
	s.reg.SetHelp("store_bytes", "bytes of verified durable store entries")
	s.reg.SetHelp("store_corrupt_total", "store entries quarantined for failed verification (checksum, truncation, fingerprint mismatch)")
	s.reg.SetHelp("store_writes_total", "durable store entry writes")
	s.reg.SetHelp("store_deletes_total", "durable store entry deletions")
	s.reg.SetHelp("store_errors_total", "best-effort store operations that failed (entry kept in memory only)")
	// Touch the zero counters so every family renders on /metrics from the
	// first scrape, not only after its first event.
	s.reg.Counter("store.corrupt_total")
	s.reg.Counter("store.writes_total")
	s.reg.Counter("store.deletes_total")
	s.reg.Counter("store.errors_total")

	s.loadManifest()
	s.removeTempFiles()
	s.verifyEntries()
	s.sweepOrphans()
	if err := s.compactLocked(); err != nil {
		return nil, err
	}
	s.publishGauges()
	s.log.Info("store recovered",
		"dir", dir, "matrices", len(s.matrices), "factors", len(s.factors),
		"quarantined", s.corrupt.Load(), "bytes", s.bytes)
	return s, nil
}

// Dir returns the data directory root.
func (s *Store) Dir() string { return s.dir }

// Close releases the manifest log handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logf == nil {
		return nil
	}
	err := s.logf.Close()
	s.logf = nil
	return err
}

// DrainRecovered hands over (and releases) the entries verified at Open.
// The service calls it once to rehydrate its registry and cache.
func (s *Store) DrainRecovered() ([]RecoveredMatrix, []RecoveredFactor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, f := s.recMatrices, s.recFactors
	s.recMatrices, s.recFactors = nil, nil
	return m, f
}

// Stats summarizes the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Matrices: len(s.matrices),
		Factors:  len(s.factors),
		Bytes:    s.bytes,
		Corrupt:  s.corrupt.Load(),
	}
}

// PutMatrix persists a registered matrix. Re-putting known content is a
// cheap manifest update at most (the entry file is content-addressed by
// fingerprint and never rewritten); a fresh name updates the alias.
func (s *Store) PutMatrix(a *sparse.CSR, name string) error {
	fp := a.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	if mm, ok := s.matrices[fp]; ok {
		if name == "" || mm.Name == name {
			return nil
		}
		mm.Name = name
		s.matrices[fp] = mm
		return s.appendLogLocked(logRecord{Op: "put-matrix", Matrix: &mm})
	}
	mm := manifestMatrix{
		Fingerprint: fp,
		Name:        name,
		File:        filepath.Join(matrixDir, shortHex(fp)+".bin"),
	}
	data := encodeMatrix(a, name)
	if err := s.writeEntryLocked(mm.File, data); err != nil {
		return err
	}
	s.matrices[fp] = mm
	s.bytes += int64(len(data))
	s.publishGauges()
	return s.appendLogLocked(logRecord{Op: "put-matrix", Matrix: &mm})
}

// DeleteMatrix removes a matrix entry and its file. Factor entries are
// deleted separately (the cache's eviction hook calls DeleteFactor per
// key), so disk state mirrors cache state exactly.
func (s *Store) DeleteMatrix(fingerprint string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mm, ok := s.matrices[fingerprint]
	if !ok {
		return nil
	}
	delete(s.matrices, fingerprint)
	s.removeEntryLocked(mm.File)
	// Factors are meaningless without their operator: sweep them with the
	// matrix so an unregister leaves nothing to rehydrate. Normally the
	// cache's evict hook has already removed them — this catches any that
	// raced past it.
	var firstErr error
	for key, mf := range s.factors {
		if mf.Fingerprint != fingerprint {
			continue
		}
		delete(s.factors, key)
		s.removeEntryLocked(mf.File)
		if err := s.appendLogLocked(logRecord{Op: "del-factor", Ref: key}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.publishGauges()
	if err := s.appendLogLocked(logRecord{Op: "del-matrix", Ref: fingerprint}); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// PutFactor persists one computed preconditioner factor under its cache
// key. The key embeds the matrix fingerprint and every setup-relevant
// option, exactly like the in-memory cache.
func (s *Store) PutFactor(key, fingerprint string, p *fsai.Preconditioner, setupNS int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.factors[key]; ok {
		return nil
	}
	mf := manifestFactor{
		Key:         key,
		Fingerprint: fingerprint,
		File:        filepath.Join(factorDir, shortHex(key)+".bin"),
		SetupNS:     setupNS,
	}
	data := encodeFactor(key, fingerprint, p, setupNS)
	if err := s.writeEntryLocked(mf.File, data); err != nil {
		return err
	}
	s.factors[key] = mf
	s.bytes += int64(len(data))
	s.publishGauges()
	return s.appendLogLocked(logRecord{Op: "put-factor", Factor: &mf})
}

// DeleteFactor removes one factor entry and its file (cache eviction,
// matrix deletion, or memory-pressure shedding).
func (s *Store) DeleteFactor(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mf, ok := s.factors[key]
	if !ok {
		return nil
	}
	delete(s.factors, key)
	s.removeEntryLocked(mf.File)
	s.publishGauges()
	return s.appendLogLocked(logRecord{Op: "del-factor", Ref: key})
}

// ---- recovery ----

// loadManifest reads the snapshot and replays the append log into the
// in-memory maps. A corrupt snapshot is quarantined and recovery continues
// from the log alone; a partial trailing log line (torn write at crash) is
// ignored.
func (s *Store) loadManifest() {
	snapPath := filepath.Join(s.dir, manifestName)
	if data, err := os.ReadFile(snapPath); err == nil {
		var m manifest
		if jerr := json.Unmarshal(data, &m); jerr != nil {
			s.log.Warn("store manifest snapshot corrupt, quarantining", "error", jerr.Error())
			s.quarantine(manifestName)
		} else {
			for _, mm := range m.Matrices {
				s.matrices[mm.Fingerprint] = mm
			}
			for _, mf := range m.Factors {
				s.factors[mf.Key] = mf
			}
		}
	}
	logPath := filepath.Join(s.dir, logName)
	data, err := os.ReadFile(logPath)
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec logRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			// A torn final line is the normal signature of a crash mid-append;
			// everything before it is intact (each append was fsynced whole).
			s.log.Debug("store manifest log ends in a partial record, ignoring tail")
			break
		}
		switch rec.Op {
		case "put-matrix":
			if rec.Matrix != nil {
				s.matrices[rec.Matrix.Fingerprint] = *rec.Matrix
			}
		case "del-matrix":
			delete(s.matrices, rec.Ref)
		case "put-factor":
			if rec.Factor != nil {
				s.factors[rec.Factor.Key] = *rec.Factor
			}
		case "del-factor":
			delete(s.factors, rec.Ref)
		}
	}
}

// verifyEntries reads every manifest-referenced file, verifies checksum and
// content, collects the survivors for DrainRecovered and quarantines the
// rest. Disk state after a crash is untrusted input: a short write, a torn
// rename or a flipped bit must cost exactly one entry.
func (s *Store) verifyEntries() {
	for fp, mm := range s.matrices {
		a, name, err := s.readMatrix(mm)
		if err != nil {
			s.log.Warn("store matrix entry corrupt, quarantining",
				"fingerprint", trunc(fp), "file", mm.File, "error", err.Error())
			s.quarantine(mm.File)
			s.countCorrupt()
			delete(s.matrices, fp)
			continue
		}
		s.recMatrices = append(s.recMatrices, RecoveredMatrix{A: a, Name: name})
	}
	for key, mf := range s.factors {
		f, err := s.readFactor(mf)
		switch {
		case err != nil:
			s.log.Warn("store factor entry corrupt, quarantining",
				"key", trunc(key), "file", mf.File, "error", err.Error())
			s.quarantine(mf.File)
			s.countCorrupt()
			delete(s.factors, key)
		case s.matrices[f.Fingerprint].Fingerprint == "":
			// A factor whose matrix is gone can never serve a warm solve
			// (solves resolve the matrix first); drop it instead of carrying
			// dead weight forever.
			s.log.Info("store factor references unregistered matrix, dropping",
				"key", trunc(key))
			s.removeEntryLocked(mf.File)
			delete(s.factors, key)
		default:
			s.recFactors = append(s.recFactors, *f)
		}
	}
}

func (s *Store) readMatrix(mm manifestMatrix) (*sparse.CSR, string, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, mm.File))
	if err != nil {
		return nil, "", fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kind, payload, err := openFile(data)
	if err != nil {
		return nil, "", err
	}
	if kind != kindMatrix {
		return nil, "", fmt.Errorf("%w: wrong entry kind %q", errCorrupt, kind)
	}
	a, name, err := decodeMatrix(payload)
	if err != nil {
		return nil, "", err
	}
	// The checksum proves the file is what was written; the fingerprint
	// proves what was written is the matrix the manifest says it is.
	if got := a.Fingerprint(); got != mm.Fingerprint {
		return nil, "", fmt.Errorf("%w: content fingerprint mismatch", errCorrupt)
	}
	s.bytes += int64(len(data))
	return a, name, nil
}

func (s *Store) readFactor(mf manifestFactor) (*RecoveredFactor, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, mf.File))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	kind, payload, err := openFile(data)
	if err != nil {
		return nil, err
	}
	if kind != kindFactor {
		return nil, fmt.Errorf("%w: wrong entry kind %q", errCorrupt, kind)
	}
	f, err := decodeFactor(payload)
	if err != nil {
		return nil, err
	}
	if f.Key != mf.Key || f.Fingerprint != mf.Fingerprint {
		return nil, fmt.Errorf("%w: entry key does not match manifest", errCorrupt)
	}
	s.bytes += int64(len(data))
	return f, nil
}

// sweepOrphans removes entry files no manifest entry references — the
// leftovers of a crash between entry write and manifest append.
func (s *Store) sweepOrphans() {
	referenced := map[string]bool{}
	for _, mm := range s.matrices {
		referenced[mm.File] = true
	}
	for _, mf := range s.factors {
		referenced[mf.File] = true
	}
	for _, sub := range []string{matrixDir, factorDir} {
		entries, err := os.ReadDir(filepath.Join(s.dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			rel := filepath.Join(sub, e.Name())
			if !referenced[rel] {
				s.log.Info("store removing orphan entry file", "file", rel)
				_ = os.Remove(filepath.Join(s.dir, rel))
			}
		}
	}
}

// removeTempFiles clears *.tmp leftovers of interrupted atomic writes.
func (s *Store) removeTempFiles() {
	for _, sub := range []string{".", matrixDir, factorDir} {
		entries, err := os.ReadDir(filepath.Join(s.dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".tmp") {
				_ = os.Remove(filepath.Join(s.dir, sub, e.Name()))
			}
		}
	}
}

// ---- write-path plumbing ----

// writeEntryLocked writes data to rel atomically: temp file in the target
// directory, fsync, rename, directory fsync. The faultinject hook sits on
// the raw bytes so chaos tests can model short writes and bit flips at the
// exact boundary the durability design must survive.
func (s *Store) writeEntryLocked(rel string, data []byte) error {
	if faultinject.Enabled() {
		data = faultinject.MutateFileWrite(rel, data)
	}
	path := filepath.Join(s.dir, rel)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return s.writeErr(err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return s.writeErr(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return s.writeErr(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return s.writeErr(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return s.writeErr(err)
	}
	syncDir(filepath.Dir(path))
	s.reg.Counter("store.writes_total").Inc()
	return nil
}

func (s *Store) writeErr(err error) error {
	s.reg.Counter("store.errors_total").Inc()
	return fmt.Errorf("store: %w", err)
}

func (s *Store) removeEntryLocked(rel string) {
	path := filepath.Join(s.dir, rel)
	if fi, err := os.Stat(path); err == nil {
		s.bytes -= fi.Size()
		if s.bytes < 0 {
			s.bytes = 0
		}
	}
	_ = os.Remove(path)
	s.reg.Counter("store.deletes_total").Inc()
}

// appendLogLocked appends one fsynced record to manifest.log and compacts
// when the log has grown past compactEvery records.
func (s *Store) appendLogLocked(rec logRecord) error {
	if s.logf == nil {
		f, err := os.OpenFile(filepath.Join(s.dir, logName), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return s.writeErr(err)
		}
		s.logf = f
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return s.writeErr(err)
	}
	b = append(b, '\n')
	if _, err := s.logf.Write(b); err != nil {
		return s.writeErr(err)
	}
	if err := s.logf.Sync(); err != nil {
		return s.writeErr(err)
	}
	s.appended++
	if s.appended >= compactEvery {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the snapshot from the in-memory manifest and
// truncates the log. Runs at Open (so recovery work is never repeated) and
// every compactEvery appends.
func (s *Store) compactLocked() error {
	m := manifest{Schema: 1}
	for _, mm := range s.matrices {
		m.Matrices = append(m.Matrices, mm)
	}
	for _, mf := range s.factors {
		m.Factors = append(m.Factors, mf)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return s.writeErr(err)
	}
	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return s.writeErr(err)
	}
	if f, err := os.OpenFile(tmp, os.O_RDONLY, 0); err == nil {
		_ = f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return s.writeErr(err)
	}
	syncDir(s.dir)
	if s.logf != nil {
		s.logf.Close()
		s.logf = nil
	}
	if err := os.Truncate(filepath.Join(s.dir, logName), 0); err != nil && !errors.Is(err, os.ErrNotExist) {
		return s.writeErr(err)
	}
	s.appended = 0
	return nil
}

// quarantine moves a file under quarantine/ (never deletes): a corrupt
// entry is evidence for the operator, not garbage.
func (s *Store) quarantine(rel string) {
	src := filepath.Join(s.dir, rel)
	base := filepath.Base(rel)
	dst := filepath.Join(s.dir, quarantineDir, base)
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(s.dir, quarantineDir, fmt.Sprintf("%s.%d", base, i))
	}
	if err := os.Rename(src, dst); err != nil {
		// The file may be gone entirely (manifest pointed at nothing); the
		// entry is still dropped and counted either way.
		_ = os.Remove(src)
	}
}

func (s *Store) countCorrupt() {
	s.corrupt.Add(1)
	s.reg.Counter("store.corrupt_total").Inc()
}

func (s *Store) publishGauges() {
	s.reg.Gauge(`store.entries{kind="matrix"}`).Set(float64(len(s.matrices)))
	s.reg.Gauge(`store.entries{kind="factor"}`).Set(float64(len(s.factors)))
	s.reg.Gauge("store.bytes").Set(float64(s.bytes))
}

// syncDir fsyncs a directory so a preceding rename is durable.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// shortHex names an entry file from the SHA-256 of its manifest key, so
// file names stay fixed-length and filesystem-safe whatever the key holds.
func shortHex(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:12])
}

// trunc shortens a fingerprint/key for log lines.
func trunc(s string) string {
	if len(s) > 16 {
		return s[:16]
	}
	return s
}
