// Package dense implements the small dense linear-algebra kernels the FSAI
// setup needs for the local Frobenius systems A(S_i,S_i) g = e: Cholesky and
// LDLᵀ factorizations with triangular solves (the paper's "direct solver",
// provided there by MKL/LAPACK/OpenBLAS), and a dense CG solver used for the
// loose-tolerance precalculation of Section 5.
//
// Matrices are stored column-major in a flat []float64 of length n*n;
// element (i,j) is a[j*n+i]. All systems here are symmetric positive
// definite restrictions of an SPD matrix, so Cholesky is the primary path
// and LDLᵀ is the fallback for near-singular cases.
package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization encounters a
// non-positive pivot, i.e. the matrix is not numerically positive definite.
var ErrNotSPD = errors.New("dense: matrix is not positive definite")

// Cholesky overwrites the lower triangle of the column-major n x n matrix a
// with its Cholesky factor L (a = L Lᵀ). The strict upper triangle is left
// untouched. It returns ErrNotSPD on a non-positive pivot.
func Cholesky(a []float64, n int) error {
	if len(a) < n*n {
		panic(fmt.Sprintf("dense: Cholesky buffer %d for n=%d", len(a), n))
	}
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			l := a[k*n+j]
			d -= l * l
		}
		if d <= 0 || math.IsNaN(d) {
			return ErrNotSPD
		}
		d = math.Sqrt(d)
		a[j*n+j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a[j*n+i]
			for k := 0; k < j; k++ {
				s -= a[k*n+i] * a[k*n+j]
			}
			a[j*n+i] = s * inv
		}
	}
	return nil
}

// CholeskySolve solves (L Lᵀ) x = b in place on b, where a holds the
// Cholesky factor produced by Cholesky.
func CholeskySolve(a []float64, n int, b []float64) {
	// Forward solve L y = b.
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
	// Backward solve Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s / a[i*n+i]
	}
}

// LDLT overwrites the lower triangle of a with the unit lower factor L and
// the diagonal with D of an LDLᵀ factorization (no pivoting; intended for
// symmetric quasi-definite fallback when Cholesky fails by a hair). It
// returns an error when a diagonal element of D underflows to zero.
func LDLT(a []float64, n int) error {
	for j := 0; j < n; j++ {
		d := a[j*n+j]
		for k := 0; k < j; k++ {
			l := a[k*n+j]
			d -= l * l * a[k*n+k]
		}
		if d == 0 || math.IsNaN(d) {
			return fmt.Errorf("dense: LDLT zero pivot at %d", j)
		}
		a[j*n+j] = d
		for i := j + 1; i < n; i++ {
			s := a[j*n+i]
			for k := 0; k < j; k++ {
				s -= a[k*n+i] * a[k*n+k] * a[k*n+j]
			}
			a[j*n+i] = s / d
		}
	}
	return nil
}

// LDLTSolve solves (L D Lᵀ) x = b in place on b for factors from LDLT.
func LDLTSolve(a []float64, n int, b []float64) {
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= a[k*n+i] * b[k]
		}
		b[i] = s
	}
	for i := 0; i < n; i++ {
		b[i] /= a[i*n+i]
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i*n+k] * b[k]
		}
		b[i] = s
	}
}

// SolveSPD solves the symmetric positive definite system a x = b, where a is
// column-major n x n with at least its lower triangle filled. a is destroyed;
// the solution overwrites b. Cholesky is attempted first, then LDLᵀ on a
// fresh copy is used as fallback. It returns an error if both fail.
func SolveSPD(a []float64, n int, b []float64) error {
	backup := append([]float64(nil), a[:n*n]...)
	if err := Cholesky(a, n); err == nil {
		CholeskySolve(a, n, b)
		return nil
	}
	copy(a, backup)
	if err := LDLT(a, n); err != nil {
		return ErrNotSPD
	}
	LDLTSolve(a, n, b)
	return nil
}

// SymMulVec computes y = a x for a column-major symmetric matrix a of which
// at least the lower triangle is filled. Used by the dense CG precalculation.
func SymMulVec(a []float64, n int, y, x []float64) {
	for i := range y[:n] {
		y[i] = 0
	}
	for j := 0; j < n; j++ {
		xj := x[j]
		y[j] += a[j*n+j] * xj
		for i := j + 1; i < n; i++ {
			v := a[j*n+i]
			y[i] += v * xj
			y[j] += v * x[i]
		}
	}
}

// CGResult reports how a dense CG solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual ||b-Ax|| / ||b||
	Converged  bool
}

// CG runs the conjugate gradient method on the dense SPD system a x = b,
// starting from x = 0, until the relative residual drops below tol or
// maxIter iterations elapse. a needs only its lower triangle. The solution
// is written to x (length n). This is the loose-tolerance approximate solver
// used by the precalculation filtering of Section 5: a handful of CG sweeps
// is enough to estimate the order of magnitude of each G entry.
func CG(a []float64, n int, x, b []float64, tol float64, maxIter int) CGResult {
	for i := range x[:n] {
		x[i] = 0
	}
	r := append([]float64(nil), b[:n]...)
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	bnorm := norm2(b[:n])
	if bnorm == 0 {
		return CGResult{Converged: true}
	}
	rr := dot(r, r)
	res := CGResult{Residual: math.Sqrt(rr) / bnorm}
	for it := 0; it < maxIter; it++ {
		if math.Sqrt(rr)/bnorm <= tol {
			res.Converged = true
			break
		}
		SymMulVec(a, n, ap, p)
		pap := dot(p, ap)
		if pap <= 0 {
			break // loss of positive definiteness in finite precision
		}
		alpha := rr / pap
		for i := 0; i < n; i++ {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
		res.Iterations = it + 1
		res.Residual = math.Sqrt(rr) / bnorm
	}
	if math.Sqrt(rr)/bnorm <= tol {
		res.Converged = true
	}
	return res
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }
