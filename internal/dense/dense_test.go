package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random SPD column-major matrix: B + Bᵀ + n·I.
func randSPD(rng *rand.Rand, n int) []float64 {
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a[j*n+i] = v
			a[i*n+j] = v
		}
		a[j*n+j] += float64(n) + 1
	}
	return a
}

func matVec(a []float64, n int, x []float64) []float64 {
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			y[i] += a[j*n+i] * x[j]
		}
	}
	return y
}

func TestCholeskyKnown2x2(t *testing.T) {
	// [4 2; 2 3] = L Lᵀ with L = [2 0; 1 sqrt(2)].
	a := []float64{4, 2, 2, 3}
	if err := Cholesky(a, 2); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a[0]-2) > 1e-15 || math.Abs(a[1]-1) > 1e-15 || math.Abs(a[3]-math.Sqrt2) > 1e-15 {
		t.Errorf("L = %v", a)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if err := Cholesky(a, 2); err != ErrNotSPD {
		t.Errorf("got %v, want ErrNotSPD", err)
	}
}

func TestCholeskySolveAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randSPD(rng, n)
		orig := append([]float64(nil), a...)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := matVec(orig, n, x)
		if err := Cholesky(a, n); err != nil {
			t.Fatal(err)
		}
		CholeskySolve(a, n, b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d]=%g want %g", n, i, b[i], x[i])
			}
		}
	}
}

func TestLDLTSolveAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 10, 40} {
		a := randSPD(rng, n)
		orig := append([]float64(nil), a...)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := matVec(orig, n, x)
		if err := LDLT(a, n); err != nil {
			t.Fatal(err)
		}
		LDLTSolve(a, n, b)
		for i := range x {
			if math.Abs(b[i]-x[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d]=%g want %g", n, i, b[i], x[i])
			}
		}
	}
}

func TestSolveSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	a := randSPD(rng, n)
	orig := append([]float64(nil), a...)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := matVec(orig, n, x)
	if err := SolveSPD(a, n, b); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-8 {
			t.Fatalf("x[%d]=%g want %g", i, b[i], x[i])
		}
	}
}

func TestSolveSPDRejectsSingular(t *testing.T) {
	a := []float64{0, 0, 0, 0}
	b := []float64{1, 1}
	if err := SolveSPD(a, 2, b); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestSymMulVec(t *testing.T) {
	// Symmetric matrix with only lower triangle stored meaningfully.
	// [2 1; 1 3] · [1, 2] = [4, 7]
	a := []float64{2, 1, 99 /* upper ignored */, 3}
	y := make([]float64, 2)
	SymMulVec(a, 2, y, []float64{1, 2})
	if y[0] != 4 || y[1] != 7 {
		t.Errorf("SymMulVec = %v", y)
	}
}

func TestCGConvergesOnSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 30
	a := randSPD(rng, n)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := matVec(a, n, want)
	// SymMulVec only needs the lower triangle; a is full symmetric, fine.
	x := make([]float64, n)
	res := CG(a, n, x, b, 1e-12, 10*n)
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%g want %g", i, x[i], want[i])
		}
	}
}

func TestCGLooseToleranceGivesMagnitudes(t *testing.T) {
	// The precalculation use case: a handful of iterations at tol 0.1 must
	// already rank entries by order of magnitude.
	rng := rand.New(rand.NewSource(5))
	n := 20
	a := randSPD(rng, n)
	xexact := make([]float64, n)
	b := make([]float64, n)
	b[n-1] = 1
	xe := append([]float64(nil), b...)
	if err := SolveSPD(append([]float64(nil), a...), n, xe); err != nil {
		t.Fatal(err)
	}
	copy(xexact, xe)

	approx := make([]float64, n)
	res := CG(a, n, approx, b, 0.1, 10)
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	// The dominant entry (the diagonal one) must be dominant in both.
	maxIdx := 0
	for i := range xexact {
		if math.Abs(xexact[i]) > math.Abs(xexact[maxIdx]) {
			maxIdx = i
		}
	}
	amaxIdx := 0
	for i := range approx {
		if math.Abs(approx[i]) > math.Abs(approx[amaxIdx]) {
			amaxIdx = i
		}
	}
	if maxIdx != amaxIdx {
		t.Errorf("dominant entry mismatch: exact %d approx %d", maxIdx, amaxIdx)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := []float64{2}
	x := []float64{5}
	res := CG(a, 1, x, []float64{0}, 1e-10, 10)
	if !res.Converged || x[0] != 0 {
		t.Errorf("zero RHS: %+v x=%v", res, x)
	}
}

func TestQuickCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		orig := append([]float64(nil), a...)
		if err := Cholesky(a, n); err != nil {
			return false
		}
		// Check L·Lᵀ == orig on the lower triangle.
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				s := 0.0
				for k := 0; k <= j; k++ {
					s += a[k*n+i] * a[k*n+j]
				}
				if math.Abs(s-orig[j*n+i]) > 1e-8*(1+math.Abs(orig[j*n+i])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
