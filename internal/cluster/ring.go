// Package cluster turns N fsaid processes into one logical solve service:
// a consistent-hash ring places every matrix fingerprint on a primary shard
// plus R replicas, a static membership list with per-peer health probing
// feeds a healthy/degraded/ejected state machine, and a Router accepts the
// existing /api/v1 HTTP/JSON API unchanged — forwarding register, solve and
// delete to the owning shard, failing over to a replica on transport error
// or shard health failure, and warming hot preconditioners onto replicas.
//
// The paper's cache-aware FSAI wins are per-node; this layer is the
// horizontal-capacity step (ROADMAP item 1). It deliberately reuses the
// protocols the single daemon already speaks: the 429/Retry-After contract
// becomes inter-node backpressure, the idempotency key makes forwarded
// retries exactly-once, the W3C traceparent stitches one request's spans
// across router and shard, and the store-backed shards rehydrate warm after
// a crash, so failover and rebalance recover cached factors instead of
// recomputing them.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the per-node virtual-node count. 160 points per node
// keeps the key distribution across 8 shards within the ±15% band the ring
// tests assert while staying cheap to rebuild on membership change.
const DefaultVNodes = 160

// vnode is one point on the ring: a hash position owned by a node.
type vnode struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring with virtual nodes. Placement is
// deterministic: positions derive from SHA-256 of "<node>#<index>", so the
// same membership yields the same ring in every process and across
// restarts — a router restart never reshuffles the fleet. All methods are
// safe for concurrent use.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	nodes  map[string]struct{}
	ring   []vnode // sorted by hash
}

// NewRing returns an empty ring with the given virtual-node count per node
// (<=0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, nodes: map[string]struct{}{}}
}

// hash64 maps a string to a ring position: the first 8 bytes of its
// SHA-256. Cryptographic diffusion is what makes 160 vnodes enough for the
// balance bound; determinism is what makes placement stable across
// processes.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a node's virtual nodes. Adding a present node is a no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.ring = append(r.ring, vnode{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
}

// Remove deletes a node's virtual nodes. Removing an absent node is a
// no-op. Only keys whose owning arcs belonged to the removed node move —
// the minimal-remap property the ring tests pin down.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.ring[:0]
	for _, v := range r.ring {
		if v.node != node {
			kept = append(kept, v)
		}
	}
	r.ring = kept
}

// Nodes returns the current members, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// VNodes returns the per-node virtual-node count.
func (r *Ring) VNodes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.vnodes
}

// Len returns the number of member nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Place returns the n distinct nodes owning key, primary first: the ring is
// walked clockwise from the key's hash and each newly encountered node is
// appended. Fewer than n members yields all of them. An empty ring yields
// nil.
func (r *Ring) Place(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.placeLocked(key, n, nil)
}

// PlaceBounded is Place under the bounded-load rule: a node whose current
// load (per loadOf) is at or above factor times the fair share of the total
// is skipped while any underloaded candidate remains. This keeps one hot
// shard from absorbing every new placement when the ring is skewed —
// overflow spills to the next arc instead (Mirrokni et al.'s
// consistent-hashing-with-bounded-loads argument). factor <= 1 or a nil
// loadOf disables the bound. The fallback is always plain placement: a
// fully loaded fleet still answers.
func (r *Ring) PlaceBounded(key string, n int, loadOf func(node string) int, factor float64) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if loadOf == nil || factor <= 1 || len(r.nodes) == 0 {
		return r.placeLocked(key, n, nil)
	}
	total := 0
	for node := range r.nodes {
		total += loadOf(node)
	}
	// Fair share of the load *after* this placement lands, so an idle
	// fleet (total 0) still admits: ceil(factor * (total+1) / members).
	limit := int(factor*float64(total+1)/float64(len(r.nodes))) + 1
	skip := func(node string) bool { return loadOf(node) >= limit }
	placed := r.placeLocked(key, n, skip)
	want := n
	if want > len(r.nodes) {
		want = len(r.nodes)
	}
	if len(placed) < want {
		// Not enough underloaded candidates: fill the tail with the plain
		// placement order, so a fully loaded fleet still answers and the
		// bounded choices keep priority.
		for _, node := range r.placeLocked(key, n, nil) {
			if len(placed) >= want {
				break
			}
			dup := false
			for _, p := range placed {
				if p == node {
					dup = true
					break
				}
			}
			if !dup {
				placed = append(placed, node)
			}
		}
	}
	return placed
}

// placeLocked walks the ring from the key's position collecting distinct
// nodes, skipping those rejected by skip (nil: accept all).
func (r *Ring) placeLocked(key string, n int, skip func(string) bool) []string {
	if len(r.ring) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= h })
	var out []string
	seen := map[string]struct{}{}
	for i := 0; i < len(r.ring) && len(out) < n; i++ {
		v := r.ring[(start+i)%len(r.ring)]
		if _, dup := seen[v.node]; dup {
			continue
		}
		seen[v.node] = struct{}{}
		if skip != nil && skip(v.node) {
			continue
		}
		out = append(out, v.node)
	}
	return out
}
