package cluster_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"repro/internal/cluster"
)

// testKeys generates n synthetic matrix fingerprints (hex SHA-256, like
// sparse.CSR fingerprints).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("matrix-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func shards(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7474", i+1)
	}
	return out
}

// TestRingBalance pins the distribution bound the vnode count was chosen
// for: across 8 shards, every shard's share of 4096 keys stays within
// ±15% of the fair share.
func TestRingBalance(t *testing.T) {
	r := cluster.NewRing(0)
	nodes := shards(8)
	for _, n := range nodes {
		r.Add(n)
	}
	keys := testKeys(4096)
	counts := map[string]int{}
	for _, k := range keys {
		own := r.Place(k, 1)
		if len(own) != 1 {
			t.Fatalf("Place(%q, 1) = %v, want one owner", k, own)
		}
		counts[own[0]]++
	}
	fair := float64(len(keys)) / float64(len(nodes))
	for _, n := range nodes {
		dev := (float64(counts[n]) - fair) / fair
		if dev > 0.15 || dev < -0.15 {
			t.Errorf("shard %s owns %d keys (%.1f%% from fair share %.0f), want within ±15%%",
				n, counts[n], 100*dev, fair)
		}
	}
}

// TestRingMinimalRemap pins the consistent-hashing property: removing one
// of N shards moves only that shard's keys (~1/N of the total), adding a
// shard moves only the keys it takes over.
func TestRingMinimalRemap(t *testing.T) {
	r := cluster.NewRing(0)
	nodes := shards(8)
	for _, n := range nodes {
		r.Add(n)
	}
	keys := testKeys(4096)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Place(k, 1)[0]
	}

	victim := nodes[3]
	r.Remove(victim)
	moved := 0
	for _, k := range keys {
		after := r.Place(k, 1)[0]
		if after == victim {
			t.Fatalf("key %q still placed on removed shard %s", k, victim)
		}
		if after != before[k] {
			if before[k] != victim {
				t.Errorf("key %q moved %s -> %s though neither is the removed shard",
					k, before[k], after)
			}
			moved++
		}
	}
	// Exactly the victim's keys move; with ±15% balance that is at most
	// ~1.15/N of all keys.
	maxMoved := int(1.2 * float64(len(keys)) / float64(len(nodes)))
	if moved > maxMoved {
		t.Errorf("removal moved %d of %d keys, want <= %d (~1/N)", moved, len(keys), maxMoved)
	}

	// Re-adding restores the original placement exactly (determinism), and
	// the only keys that move back are the victim's.
	r.Add(victim)
	for _, k := range keys {
		if got := r.Place(k, 1)[0]; got != before[k] {
			t.Fatalf("after re-add, key %q placed on %s, want %s", k, got, before[k])
		}
	}
}

// TestRingDeterministicAcrossRestarts pins that two independently built
// rings (different insertion orders — a restart never replays the same
// order) place every key identically.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	nodes := shards(5)
	r1 := cluster.NewRing(0)
	for _, n := range nodes {
		r1.Add(n)
	}
	r2 := cluster.NewRing(0)
	for i := len(nodes) - 1; i >= 0; i-- {
		r2.Add(nodes[i])
	}
	for _, k := range testKeys(512) {
		p1 := r1.Place(k, 3)
		p2 := r2.Place(k, 3)
		if len(p1) != len(p2) {
			t.Fatalf("placement lengths differ for %q: %v vs %v", k, p1, p2)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("placement differs for %q: %v vs %v", k, p1, p2)
			}
		}
	}
}

// TestRingPlaceDistinct pins that replica placement returns distinct
// shards, primary first, and degrades gracefully when fewer shards than
// replicas exist.
func TestRingPlaceDistinct(t *testing.T) {
	r := cluster.NewRing(0)
	for _, n := range shards(3) {
		r.Add(n)
	}
	for _, k := range testKeys(64) {
		own := r.Place(k, 5)
		if len(own) != 3 {
			t.Fatalf("Place(%q, 5) on 3 shards = %v, want all 3", k, own)
		}
		seen := map[string]bool{}
		for _, n := range own {
			if seen[n] {
				t.Fatalf("Place(%q, 5) returned duplicate %s: %v", k, n, own)
			}
			seen[n] = true
		}
	}
	if got := cluster.NewRing(0).Place("anything", 2); got != nil {
		t.Fatalf("empty ring Place = %v, want nil", got)
	}
}

// TestRingPlaceBounded pins the bounded-load rule: an overloaded shard is
// skipped while underloaded candidates remain, and a fully loaded fleet
// still answers with the plain placement.
func TestRingPlaceBounded(t *testing.T) {
	r := cluster.NewRing(0)
	nodes := shards(4)
	for _, n := range nodes {
		r.Add(n)
	}
	keys := testKeys(256)

	// Saturate one shard far past any fair share; it must stop receiving
	// primaries while the others have capacity.
	hot := nodes[0]
	loads := map[string]int{hot: 1000}
	for _, k := range keys {
		own := r.PlaceBounded(k, 1, func(n string) int { return loads[n] }, 1.25)
		if len(own) != 1 {
			t.Fatalf("PlaceBounded(%q) = %v, want one owner", k, own)
		}
		if own[0] == hot {
			t.Fatalf("key %q placed on overloaded shard %s", k, hot)
		}
		loads[own[0]]++
	}

	// Uniformly loaded fleet: the bound must not starve placement.
	flat := func(string) int { return 7 }
	for _, k := range keys[:32] {
		own := r.PlaceBounded(k, 2, flat, 1.25)
		if len(own) != 2 {
			t.Fatalf("uniform-load PlaceBounded(%q, 2) = %v, want 2 owners", k, own)
		}
	}

	// factor <= 1 or nil loadOf falls back to plain placement.
	for _, k := range keys[:32] {
		plain := r.Place(k, 2)
		got := r.PlaceBounded(k, 2, nil, 1.25)
		for i := range plain {
			if got[i] != plain[i] {
				t.Fatalf("nil loadOf PlaceBounded differs from Place for %q", k)
			}
		}
	}
}
