package cluster_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine leaks: the membership prober and
// the router's warming goroutines all have explicit shutdown paths.
func TestMain(m *testing.M) { leakcheck.Main(m) }
