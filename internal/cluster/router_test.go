package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// testShard is one in-process fsaid daemon behind an httptest listener.
type testShard struct {
	srv *service.Server
	hs  *httptest.Server
}

func (s *testShard) kill() { s.hs.CloseClientConnections(); s.hs.Close() }

func startShard(t *testing.T) *testShard {
	t.Helper()
	srv := service.New(service.Options{Workers: 2})
	hs := httptest.NewServer(srv.Handler())
	sh := &testShard{srv: srv, hs: hs}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		hs.Close()
	})
	return sh
}

// testCluster is a router fronting n in-process shards.
type testCluster struct {
	shards  []*testShard
	members *cluster.Membership
	router  *cluster.Router
	hs      *httptest.Server
}

func startCluster(t *testing.T, n int, opt cluster.RouterOptions) *testCluster {
	t.Helper()
	tc := &testCluster{}
	peers := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sh := startShard(t)
		tc.shards = append(tc.shards, sh)
		peers = append(peers, sh.hs.URL)
	}
	reg := telemetry.NewRegistry()
	ring := cluster.NewRing(0)
	tc.members = cluster.NewMembership(peers, ring, cluster.MembershipOptions{
		ProbeInterval:    50 * time.Millisecond,
		FailThreshold:    1,
		EjectThreshold:   3,
		RecoverThreshold: 1,
		Registry:         reg,
	})
	opt.Membership = tc.members
	opt.Ring = ring
	opt.Registry = reg
	opt.Traces = trace.NewRecorder(64, "", reg)
	tc.router = cluster.NewRouter(opt)
	tc.hs = httptest.NewServer(tc.router.Handler())
	t.Cleanup(func() {
		tc.hs.Close()
		tc.members.Close()
	})
	return tc
}

func (tc *testCluster) client() *client.Client { return client.New(tc.hs.URL) }

// shardFor returns the test shard listening at addr.
func (tc *testCluster) shardFor(t *testing.T, addr string) *testShard {
	t.Helper()
	for _, sh := range tc.shards {
		if sh.hs.URL == addr {
			return sh
		}
	}
	t.Fatalf("no shard at %s", addr)
	return nil
}

// topology fetches the router's /cluster document.
func (tc *testCluster) topology(t *testing.T) cluster.Topology {
	t.Helper()
	resp, err := http.Get(tc.hs.URL + "/cluster")
	if err != nil {
		t.Fatalf("GET /cluster: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /cluster: HTTP %d", resp.StatusCode)
	}
	var top cluster.Topology
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		t.Fatalf("decode /cluster: %v", err)
	}
	return top
}

// TestRouterRegisterSolveAndPlacement drives the unchanged client API
// through the router: register places the matrix on primary+replica,
// solve executes on the owning shard, and a repeat solve is a cache hit.
func TestRouterRegisterSolveAndPlacement(t *testing.T) {
	tc := startCluster(t, 3, cluster.RouterOptions{Replicas: 1, WarmThreshold: -1})
	c := tc.client()
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap64x64", "lap")
	if err != nil {
		t.Fatalf("register through router: %v", err)
	}
	if !info.Created || info.Fingerprint == "" {
		t.Fatalf("register info: %+v", info)
	}

	top := tc.topology(t)
	if len(top.Matrices) != 1 || len(top.Matrices[0].Owners) != 2 {
		t.Fatalf("topology after register: %+v", top.Matrices)
	}
	owners := top.Matrices[0].Owners

	// Both owners must already hold the matrix (replica readiness).
	for _, addr := range owners {
		if _, err := client.New(addr).Matrix(ctx, info.Fingerprint); err != nil {
			t.Fatalf("owner %s missing matrix: %v", addr, err)
		}
	}

	resp, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie"})
	if err != nil {
		t.Fatalf("solve through router: %v", err)
	}
	if !resp.Converged || resp.Cache != service.CacheMiss || resp.Matrix != info.Fingerprint {
		t.Fatalf("cold routed solve: %+v", resp)
	}
	resp2, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie"})
	if err != nil {
		t.Fatalf("warm solve through router: %v", err)
	}
	if resp2.Cache != service.CacheHit {
		t.Fatalf("repeat routed solve cache = %q, want hit (same shard must serve it)", resp2.Cache)
	}
}

// TestRouterEnvelopePassThrough pins the byte-level compatibility
// contract: job_id, trace_id and the idempotent-replay marker arrive at
// the client exactly as the shard produced them.
func TestRouterEnvelopePassThrough(t *testing.T) {
	tc := startCluster(t, 2, cluster.RouterOptions{Replicas: 1, WarmThreshold: -1})
	ctx := context.Background()
	if _, err := tc.client().RegisterMatgen(ctx, "lap64x64", "lap"); err != nil {
		t.Fatalf("register: %v", err)
	}

	body := []byte(`{"matrix":"lap","precond":"fsaie"}`)
	tcx := trace.New()
	post := func() (*http.Response, service.SolveResponse) {
		req, _ := http.NewRequest(http.MethodPost, tc.hs.URL+"/api/v1/solve", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("traceparent", tcx.Traceparent())
		req.Header.Set(service.HeaderIdempotencyKey, "router-pass-through-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: HTTP %d: %s", resp.StatusCode, raw)
		}
		var out service.SolveResponse
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resp, out
	}

	_, first := post()
	if first.JobID == "" || first.TraceID != tcx.TraceID {
		t.Fatalf("first response envelope: job_id=%q trace_id=%q want trace %q",
			first.JobID, first.TraceID, tcx.TraceID)
	}
	hresp, second := post()
	if hresp.Header.Get(service.HeaderIdempotentReplay) != "1" {
		t.Fatal("replayed response lost the X-Fsaid-Idempotent-Replay header in transit")
	}
	if !second.Replayed || second.JobID != first.JobID || second.TraceID != first.TraceID {
		t.Fatalf("replay envelope altered: %+v vs %+v", second, first)
	}

	// The routing hop and the shard execution stitch under one trace id:
	// the router keeps its own span tree for the same id.
	resp, err := http.Get(tc.hs.URL + "/traces/" + tcx.TraceID)
	if err != nil {
		t.Fatalf("GET /traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router kept no trace for %s: HTTP %d", tcx.TraceID, resp.StatusCode)
	}
	var tr trace.Trace
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if tr.Node != "router" {
		t.Fatalf("router trace node = %q, want router", tr.Node)
	}
}

// TestRouterLoopGuard pins the forwarding loop guard: a request already
// bearing X-Fsaid-Forwarded-By is answered 508, not forwarded.
func TestRouterLoopGuard(t *testing.T) {
	tc := startCluster(t, 1, cluster.RouterOptions{WarmThreshold: -1})
	req, _ := http.NewRequest(http.MethodPost, tc.hs.URL+"/api/v1/solve",
		bytes.NewReader([]byte(`{"matrix":"x"}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.HeaderForwardedBy, "another-router")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusLoopDetected {
		t.Fatalf("forwarded request got HTTP %d, want 508", resp.StatusCode)
	}
}

// TestRouterFailover kills the primary shard and asserts the next solve
// lands on the replica with no client-visible failure — and that the
// trace id survives the failover hop.
func TestRouterFailover(t *testing.T) {
	tc := startCluster(t, 2, cluster.RouterOptions{Replicas: 1, WarmThreshold: -1})
	c := tc.client()
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "lap")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie"}); err != nil {
		t.Fatalf("solve before failover: %v", err)
	}

	top := tc.topology(t)
	primary := top.Matrices[0].Owners[0]
	tc.shardFor(t, primary).kill()

	tcx := trace.New()
	resp, _, err := c.SolveTraced(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie"}, tcx)
	if err != nil {
		t.Fatalf("solve during primary outage must fail over, got: %v", err)
	}
	if !resp.Converged || resp.Matrix != info.Fingerprint {
		t.Fatalf("failover solve: %+v", resp)
	}
	if resp.TraceID != tcx.TraceID {
		t.Fatalf("failover lost the trace id: %q want %q", resp.TraceID, tcx.TraceID)
	}
	if st := tc.members.State(primary); st == cluster.PeerHealthy {
		t.Fatalf("killed primary still %q after data-path failure", st)
	}
}

// TestRouterWarmReplication pins the hot-factor replication path: once a
// fingerprint's routed solves keep hitting the cache, the replica shard
// builds the same factor via setup_only, so a failover lands warm.
func TestRouterWarmReplication(t *testing.T) {
	tc := startCluster(t, 2, cluster.RouterOptions{Replicas: 1, WarmThreshold: 1})
	c := tc.client()
	ctx := context.Background()
	if _, err := c.RegisterMatgen(ctx, "lap64x64", "lap"); err != nil {
		t.Fatalf("register: %v", err)
	}
	// First solve: miss on the primary. Second: hit, crossing the warm
	// threshold and triggering replication.
	for i := 0; i < 2; i++ {
		if _, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie"}); err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	top := tc.topology(t)
	replica := top.Matrices[0].Owners[1]
	rc := client.New(replica)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := rc.Stats(ctx)
		if err == nil && st.Cache.Entries >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never cached the hot factor (stats: %+v, err: %v)", replica, st, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The replica's warm copy must produce the bit-identical solution: kill
	// the primary and compare X against the primary's answer.
	want, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie", ReturnSolution: true})
	if err != nil {
		t.Fatalf("solve for reference X: %v", err)
	}
	tc.shardFor(t, top.Matrices[0].Owners[0]).kill()
	got, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie", ReturnSolution: true})
	if err != nil {
		t.Fatalf("failover solve: %v", err)
	}
	if got.Cache != service.CacheHit {
		t.Fatalf("failover solve cache = %q, want hit from the replicated factor", got.Cache)
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("solution lengths differ: %d vs %d", len(got.X), len(want.X))
	}
	for i := range want.X {
		if got.X[i] != want.X[i] {
			t.Fatalf("X[%d] differs after failover: %v vs %v (factors not bit-identical)",
				i, got.X[i], want.X[i])
		}
	}
}

// TestRouterSetupOnly pins the warming primitive on the shard API itself:
// setup_only builds and caches the factor without running CG.
func TestRouterSetupOnly(t *testing.T) {
	sh := startShard(t)
	c := client.New(sh.hs.URL)
	ctx := context.Background()
	if _, err := c.RegisterMatgen(ctx, "lap64x64", "lap"); err != nil {
		t.Fatalf("register: %v", err)
	}
	resp, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie", SetupOnly: true})
	if err != nil {
		t.Fatalf("setup_only: %v", err)
	}
	if resp.Status != service.StatusSetupOnly || resp.Iterations != 0 || resp.Cache != service.CacheMiss {
		t.Fatalf("setup_only response: %+v", resp)
	}
	warm, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "fsaie"})
	if err != nil {
		t.Fatalf("solve after setup_only: %v", err)
	}
	if warm.Cache != service.CacheHit || !warm.Converged {
		t.Fatalf("solve after setup_only should be warm: %+v", warm)
	}
	// Invalid combinations are rejected up front.
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Precond: "jacobi", SetupOnly: true}); err == nil {
		t.Fatal("setup_only with jacobi must be rejected")
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap", Resilient: true, SetupOnly: true}); err == nil {
		t.Fatal("setup_only with resilient must be rejected")
	}
}
