package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/matgen"
	"repro/internal/mmio"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sparse"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// routerMaxBody bounds request bodies the router reads (matches the
// shard's own upload bound).
const routerMaxBody = 64 << 20

// RouterOptions configures a Router.
type RouterOptions struct {
	// Name marks forwarded requests via the X-Fsaid-Forwarded-By header
	// (default "fsaid-router"). A router receiving a request already
	// bearing the header answers 508 instead of forwarding — the loop
	// guard.
	Name string
	// Replicas is the number of replica shards per matrix beyond the
	// primary (default 1). The effective replica count is capped by the
	// fleet size.
	Replicas int
	// BoundedLoad is the bounded-load factor c of the consistent-hashing-
	// with-bounded-loads placement: no shard takes more than
	// ceil(c * keys/shards) primaries (default 1.25).
	BoundedLoad float64
	// WarmThreshold is the number of routed cache-hit solves on one
	// fingerprint after which the router replicates the hot factor to the
	// replica shards via setup_only solves (default 3; 0 keeps the
	// default, negative disables warming).
	WarmThreshold int
	// Membership owns the peer set (required).
	Membership *Membership
	// Ring is the placement ring shared with Membership (required).
	Ring *Ring
	// Logger receives routing decisions; nil discards them.
	Logger *slog.Logger
	// Registry receives the cluster_* series and backs the obs /metrics.
	Registry *telemetry.Registry
	// Traces retains the router-side span trees (stamped Node "router"),
	// stitching with the executing shard's traces by shared trace id.
	Traces *trace.Recorder
}

// matrixRecord is the router's catalog entry for one registered matrix:
// enough to place it on the ring and to re-register it on a shard that
// lost it (restart without durable data, or a rebalance moving the key to
// a shard that never saw it).
type matrixRecord struct {
	fp          string
	name        string
	body        []byte // raw registration payload, replayable verbatim
	contentType string
	info        service.MatrixInfo
}

// Router fronts a fleet of fsaid shards with the daemon's own HTTP/JSON
// API: clients talk to the router exactly as they would to a single
// daemon, and the router places each matrix on the ring, forwards
// register/solve/delete to the owning shard, fails over to replicas, and
// replicates hot preconditioners so a failover lands on a warm cache.
type Router struct {
	opt     RouterOptions
	ring    *Ring
	members *Membership
	log     *slog.Logger
	reg     *telemetry.Registry
	traces  *trace.Recorder

	obs *obs.Server
	mux *http.ServeMux

	mu       sync.Mutex
	byFP     map[string]*matrixRecord
	names    map[string]string // alias -> fingerprint
	warmHits map[string]int    // routed cache-hit solves per fingerprint
	warmed   map[string]bool   // fingerprints already replicated this epoch

	lnMu sync.Mutex
	ln   net.Listener
	hs   *http.Server
}

// NewRouter builds the router and its embedded observability server. Call
// Start to serve, or mount Handler on an existing listener.
func NewRouter(opt RouterOptions) *Router {
	if opt.Name == "" {
		opt.Name = "fsaid-router"
	}
	if opt.Replicas <= 0 {
		opt.Replicas = 1
	}
	if opt.BoundedLoad <= 1 {
		opt.BoundedLoad = 1.25
	}
	if opt.WarmThreshold == 0 {
		opt.WarmThreshold = 3
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	rt := &Router{
		opt:      opt,
		ring:     opt.Ring,
		members:  opt.Membership,
		log:      opt.Logger,
		reg:      opt.Registry,
		traces:   opt.Traces,
		byFP:     map[string]*matrixRecord{},
		names:    map[string]string{},
		warmHits: map[string]int{},
		warmed:   map[string]bool{},
	}
	rt.traces.SetNode("router")
	rt.reg.SetHelp("cluster_requests", "requests routed, by api")
	rt.reg.SetHelp("cluster_forwards", "forward attempts to shards, by outcome")
	rt.reg.SetHelp("cluster_failovers", "solves that failed over past the primary shard")
	rt.reg.SetHelp("cluster_loop_rejects", "requests rejected by the forwarding loop guard (508)")
	rt.reg.SetHelp("cluster_warmups", "replica cache-warming setup_only solves, by outcome")
	rt.reg.SetHelp("cluster_reregistrations", "matrices replayed to shards that lost them")
	rt.reg.SetHelp("cluster_peers", "peers by membership state")
	rt.reg.SetHelp("cluster_rebalances", "ring mutations (ejections and rejoins)")
	rt.reg.SetHelp("cluster_probe_failures", "failed peer health probes")
	rt.reg.SetHelp("cluster_forward_failures", "data-path transport failures reported to membership")
	rt.reg.SetHelp("cluster_probe_incompatible", "peers ejected for mismatched build module")

	rt.obs = obs.NewServer(obs.Options{
		Registry: opt.Registry,
		Traces:   opt.Traces,
		Cluster:  rt,
	})
	rt.members.OnChange(rt.onMembershipChange)
	rt.onMembershipChange()

	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/matrices", rt.handleMatrices)
	mux.HandleFunc("/api/v1/matrices/", rt.handleMatrix)
	mux.HandleFunc("/api/v1/solve", rt.handleSolve)
	mux.HandleFunc("/api/v1/jobs", rt.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", rt.handleJob)
	mux.HandleFunc("/api/v1/stats", rt.handleStats)
	mux.Handle("/", rt.obs.Handler())
	rt.mux = mux
	return rt
}

// Handler returns the router's full HTTP handler (API plus observability).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start listens on addr, launches the membership prober, and serves in the
// background. It returns the bound address.
func (rt *Router) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: rt.mux}
	rt.lnMu.Lock()
	rt.ln, rt.hs = ln, hs
	rt.lnMu.Unlock()
	rt.members.Start()
	go func() { _ = hs.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown drains the router: the prober stops, then the HTTP server.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.members.Close()
	rt.lnMu.Lock()
	hs := rt.hs
	rt.hs, rt.ln = nil, nil
	rt.lnMu.Unlock()
	_ = rt.obs.Shutdown(ctx)
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

// onMembershipChange runs after every ring mutation: placement may have
// changed, so the warming dedup resets (hot factors re-replicate onto the
// new replica sets) and the router's /healthz reflects the fleet state.
func (rt *Router) onMembershipChange() {
	rt.mu.Lock()
	rt.warmed = map[string]bool{}
	rt.mu.Unlock()
	status, reason := rt.members.Health()
	if status == obs.HealthOK {
		rt.obs.SetHealth(obs.HealthOK, "")
		return
	}
	rt.obs.SetHealth(status, reason)
}

// owners places a key on the ring: primary first, then the replicas, under
// the bounded-load constraint computed from the router's catalog. The load
// measure excludes the key itself — a key must never be displaced by its
// own weight, or re-placing an already-placed key would shift it.
func (rt *Router) owners(key string) []string {
	loads := rt.primaryLoads(key)
	return rt.ring.PlaceBounded(key, 1+rt.opt.Replicas, func(addr string) int {
		return loads[addr]
	}, rt.opt.BoundedLoad)
}

// primaryLoads counts how many cataloged matrices other than except each
// shard currently owns as primary — the load measure of the bounded-load
// placement.
func (rt *Router) primaryLoads(except string) map[string]int {
	rt.mu.Lock()
	fps := make([]string, 0, len(rt.byFP))
	for fp := range rt.byFP {
		if fp != except {
			fps = append(fps, fp)
		}
	}
	rt.mu.Unlock()
	loads := map[string]int{}
	for _, fp := range fps {
		if own := rt.ring.Place(fp, 1); len(own) > 0 {
			loads[own[0]]++
		}
	}
	return loads
}

// resolve maps a matrix reference (fingerprint or alias) to the placement
// fingerprint. Unknown references place by the reference itself — the
// shard answers the 404, keeping error semantics identical to a direct
// request.
func (rt *Router) resolve(ref string) string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.byFP[ref]; ok {
		return ref
	}
	if fp, ok := rt.names[ref]; ok {
		return fp
	}
	return ref
}

func (rt *Router) record(fp string) (*matrixRecord, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rec, ok := rt.byFP[fp]
	return rec, ok
}

// ---- solve ----

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		rt.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !rt.loopGuard(w, r) {
		return
	}
	rt.reg.Counter(`cluster.requests{api="solve"}`).Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, routerMaxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading solve request: %v", err)
		return
	}
	var peek struct {
		Matrix string `json:"matrix"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad solve request: %v", err)
		return
	}
	fp := rt.resolve(peek.Matrix)

	// Continue the client's trace, or originate one so the routing hop and
	// the shard's execution stitch under a single trace id either way.
	tc := trace.Context{}
	if h := r.Header.Get("traceparent"); h != "" {
		if parsed, perr := trace.ParseTraceparent(h); perr == nil {
			tc = parsed
		} else {
			rt.traces.MalformedHeader()
		}
	}
	originated := false
	if !tc.Valid() {
		tc = trace.New()
		originated = true
	}
	extra := http.Header{}
	extra.Set(service.HeaderForwardedBy, rt.opt.Name)
	if originated {
		extra.Set("traceparent", tc.Traceparent())
	}

	tr := telemetry.NewTracer(nil)
	root := tr.StartSpan("route-solve")
	root.SetAttr("matrix", fp)

	candidates := rt.owners(fp)
	if len(candidates) == 0 {
		root.End()
		rt.recordRouteTrace(tr, tc, fp, "", "unrouteable")
		rt.writeError(w, http.StatusServiceUnavailable, "no shards available")
		return
	}

	var backpressure time.Duration
	sawBackpressure := false
	for i, addr := range candidates {
		span := tr.StartSpan("forward")
		span.SetAttr("peer", addr)
		res, ferr := rt.forwardSolve(r.Context(), addr, body, r.Header, extra, fp)
		span.End()
		if ferr != nil {
			rt.reg.Counter(`cluster.forwards{outcome="transport-error"}`).Inc()
			rt.members.ReportFailure(addr, ferr)
			rt.log.Warn("solve forward failed, trying next replica",
				"peer", addr, "attempt", i+1, "error", ferr.Error())
			continue
		}
		if res.StatusCode == http.StatusTooManyRequests || res.StatusCode == http.StatusServiceUnavailable {
			// Shard backpressure spills to the next replica; if everyone is
			// saturated, the lowest Retry-After propagates to the client.
			rt.reg.Counter(`cluster.forwards{outcome="backpressure"}`).Inc()
			ra := res.RetryAfter()
			if !sawBackpressure || (ra > 0 && ra < backpressure) {
				backpressure = ra
			}
			sawBackpressure = true
			continue
		}
		rt.members.ReportSuccess(addr)
		if i > 0 {
			rt.reg.Counter("cluster.failovers").Inc()
		}
		rt.reg.Counter(`cluster.forwards{outcome="ok"}`).Inc()
		root.End()
		rt.finishSolve(w, res, fp, addr, tc, tr, body)
		return
	}
	root.End()
	rt.recordRouteTrace(tr, tc, fp, "", "unrouteable")
	if sawBackpressure {
		secs := int(backpressure.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		rt.writeErrorBody(w, http.StatusTooManyRequests, service.ErrorBody{
			Error:       "all shards saturated",
			RetryAfterS: secs,
			TraceID:     tc.TraceID,
		})
		return
	}
	rt.writeErrorBody(w, http.StatusServiceUnavailable, service.ErrorBody{
		Error:   "no shard could serve the solve",
		TraceID: tc.TraceID,
	})
}

// forwardSolve relays one solve to one shard, replaying the matrix
// registration once if the shard answers 404 for a matrix the router has
// cataloged (the shard restarted without durable data, or a rebalance
// moved the key to a shard that never saw it).
func (rt *Router) forwardSolve(ctx context.Context, addr string, body []byte, hdr, extra http.Header, fp string) (*client.ForwardResult, error) {
	cl, ok := rt.members.Client(addr)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown peer %s", addr)
	}
	res, err := cl.Forward(ctx, http.MethodPost, "/api/v1/solve", body, hdr, extra)
	if err != nil {
		return nil, err
	}
	if res.StatusCode != http.StatusNotFound {
		return res, nil
	}
	rec, known := rt.record(fp)
	if !known {
		return res, nil // genuinely unknown matrix: the 404 is the answer
	}
	if rerr := rt.registerOn(ctx, cl, rec); rerr != nil {
		return res, nil // replay failed; surface the original 404
	}
	rt.reg.Counter("cluster.reregistrations").Inc()
	rt.log.Info("replayed matrix registration to shard",
		"peer", addr, "fingerprint", trace.Short(fp))
	return cl.Forward(ctx, http.MethodPost, "/api/v1/solve", body, hdr, extra)
}

// finishSolve passes the shard's response through byte-for-byte and feeds
// the warm-replication tracker.
func (rt *Router) finishSolve(w http.ResponseWriter, res *client.ForwardResult, fp, addr string, tc trace.Context, tr *telemetry.Tracer, body []byte) {
	var env struct {
		JobID  string `json:"job_id"`
		Matrix string `json:"matrix"`
		Cache  string `json:"cache"`
		Status string `json:"status"`
	}
	if res.StatusCode >= 200 && res.StatusCode < 300 {
		_ = json.Unmarshal(res.Body, &env)
	}
	rt.passThrough(w, res)
	if env.Matrix != "" {
		fp = env.Matrix
	}
	status := env.Status
	if status == "" {
		status = fmt.Sprintf("http-%d", res.StatusCode)
	}
	rt.recordRouteTraceJob(tr, tc, fp, addr, status, env.JobID)
	if env.Cache == service.CacheHit {
		rt.noteWarmHit(fp, body)
	}
}

// passThrough writes a forwarded response to the client unmodified:
// status, allowlisted headers, raw body bytes. This is what makes routed
// responses byte-for-byte identical to direct-shard responses.
func (rt *Router) passThrough(w http.ResponseWriter, res *client.ForwardResult) {
	for name, vals := range res.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(res.StatusCode)
	_, _ = w.Write(res.Body)
}

func (rt *Router) recordRouteTrace(tr *telemetry.Tracer, tc trace.Context, fp, addr, status string) {
	rt.recordRouteTraceJob(tr, tc, fp, addr, status, "")
}

func (rt *Router) recordRouteTraceJob(tr *telemetry.Tracer, tc trace.Context, fp, addr, status, jobID string) {
	report := tr.Report()
	if len(report) == 0 {
		return
	}
	name := "route"
	if addr != "" {
		name = "route->" + addr
	}
	rt.traces.Record(&trace.Trace{
		TraceID:     tc.TraceID,
		SpanID:      tc.SpanID,
		JobID:       jobID,
		Fingerprint: fp,
		Name:        name,
		Status:      status,
		Root:        report[0],
	})
}

// ---- hot-factor replication ----

// noteWarmHit counts a routed cache-hit solve; once a fingerprint crosses
// the warm threshold, its factor is replicated to the replica shards so a
// failover lands on a warm cache instead of paying setup again.
func (rt *Router) noteWarmHit(fp string, body []byte) {
	if rt.opt.WarmThreshold < 0 {
		return
	}
	rt.mu.Lock()
	rt.warmHits[fp]++
	hit := rt.warmHits[fp] >= rt.opt.WarmThreshold && !rt.warmed[fp]
	if hit {
		rt.warmed[fp] = true
	}
	rt.mu.Unlock()
	if hit {
		go rt.warmReplicas(fp, body)
	}
}

// warmReplicas replays the hot solve as setup_only against every replica
// shard: the replica builds (and caches, and stores) the same factor the
// primary serves, keyed identically because the setup knobs come from the
// triggering request.
func (rt *Router) warmReplicas(fp string, body []byte) {
	var req map[string]any
	if err := json.Unmarshal(body, &req); err != nil {
		return
	}
	// Strip the per-request parts; keep the setup knobs that shape the
	// cache key (precond, filter, line_bytes, pattern_power, tau).
	delete(req, "rhs")
	delete(req, "return_solution")
	delete(req, "hold_ms")
	delete(req, "timeout_ms")
	req["matrix"] = fp
	req["setup_only"] = true
	warmBody, err := json.Marshal(req)
	if err != nil {
		return
	}
	owners := rt.owners(fp)
	if len(owners) <= 1 {
		return
	}
	extra := http.Header{}
	extra.Set(service.HeaderForwardedBy, rt.opt.Name)
	extra.Set("traceparent", trace.New().Traceparent())
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, addr := range owners[1:] {
		res, err := rt.forwardSolve(ctx, addr, warmBody, hdr, extra, fp)
		switch {
		case err != nil:
			rt.reg.Counter(`cluster.warmups{outcome="transport-error"}`).Inc()
			rt.members.ReportFailure(addr, err)
		case res.StatusCode >= 200 && res.StatusCode < 300:
			rt.reg.Counter(`cluster.warmups{outcome="ok"}`).Inc()
			rt.log.Info("replicated hot factor to replica",
				"peer", addr, "fingerprint", trace.Short(fp))
		default:
			rt.reg.Counter(`cluster.warmups{outcome="rejected"}`).Inc()
			rt.log.Warn("replica cache warmup rejected",
				"peer", addr, "fingerprint", trace.Short(fp), "status", res.StatusCode)
		}
	}
}

// ---- registration ----

func (rt *Router) handleMatrices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.handleListMatrices(w, r)
	case http.MethodPost:
		rt.handleRegister(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !rt.loopGuard(w, r) {
		return
	}
	rt.reg.Counter(`cluster.requests{api="register"}`).Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, routerMaxBody))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading register request: %v", err)
		return
	}
	// Parse the payload locally — the router needs the content fingerprint
	// to place the matrix before any shard has seen it.
	var a *sparse.CSR
	name := r.URL.Query().Get("name")
	contentType := r.Header.Get("Content-Type")
	if strings.Contains(contentType, "json") {
		var req service.RegisterRequest
		if err := json.Unmarshal(body, &req); err != nil {
			rt.writeError(w, http.StatusBadRequest, "bad register request: %v", err)
			return
		}
		spec, ok := matgen.ByName(req.Matgen)
		if !ok {
			rt.writeError(w, http.StatusBadRequest, "unknown matgen spec %q", req.Matgen)
			return
		}
		a = spec.Generate()
		if req.Name != "" {
			name = req.Name
		} else if name == "" {
			name = req.Matgen
		}
	} else {
		a, err = mmio.Read(bytes.NewReader(body))
		if err != nil {
			rt.writeError(w, http.StatusBadRequest, "bad MatrixMarket upload: %v", err)
			return
		}
	}
	fp := a.Fingerprint()
	rec := &matrixRecord{fp: fp, name: name, body: body, contentType: contentType}

	owners := rt.owners(fp)
	if len(owners) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no shards available")
		return
	}
	// Register on every owner (primary and replicas): replicas must be
	// able to serve the matrix the moment a failover reaches them.
	var first *client.ForwardResult
	registered := 0
	for _, addr := range owners {
		cl, ok := rt.members.Client(addr)
		if !ok {
			continue
		}
		res, ferr := rt.forwardRegister(r.Context(), cl, rec, r.Header)
		if ferr != nil {
			rt.members.ReportFailure(addr, ferr)
			rt.log.Warn("register forward failed", "peer", addr, "error", ferr.Error())
			continue
		}
		rt.members.ReportSuccess(addr)
		if first == nil {
			first = res
		}
		if res.StatusCode >= 200 && res.StatusCode < 300 {
			registered++
			if first.StatusCode < 200 || first.StatusCode >= 300 {
				first = res
			}
		}
	}
	if first == nil {
		rt.writeError(w, http.StatusServiceUnavailable, "no shard accepted the registration")
		return
	}
	if registered > 0 {
		_ = json.Unmarshal(first.Body, &rec.info)
		rt.mu.Lock()
		rt.byFP[fp] = rec
		if name != "" {
			rt.names[name] = fp
		} else if rec.info.Name != "" {
			rt.names[rec.info.Name] = fp
		}
		rt.mu.Unlock()
		rt.log.Info("matrix registered",
			"fingerprint", trace.Short(fp), "name", rec.info.Name,
			"owners", strings.Join(owners, ","), "replicas", registered-1)
	}
	rt.passThrough(w, first)
}

// forwardRegister replays a cataloged registration to one shard.
func (rt *Router) forwardRegister(ctx context.Context, cl *client.Client, rec *matrixRecord, hdr http.Header) (*client.ForwardResult, error) {
	if hdr == nil {
		hdr = http.Header{}
		hdr.Set("Content-Type", rec.contentType)
	}
	path := "/api/v1/matrices"
	if rec.name != "" {
		path += "?name=" + urlQueryEscape(rec.name)
	}
	extra := http.Header{}
	extra.Set(service.HeaderForwardedBy, rt.opt.Name)
	return cl.Forward(ctx, http.MethodPost, path, rec.body, hdr, extra)
}

// registerOn replays a registration during solve failover (no inbound
// request headers to relay).
func (rt *Router) registerOn(ctx context.Context, cl *client.Client, rec *matrixRecord) error {
	res, err := rt.forwardRegister(ctx, cl, rec, nil)
	if err != nil {
		return err
	}
	if res.StatusCode < 200 || res.StatusCode >= 300 {
		return fmt.Errorf("cluster: registration replay: HTTP %d", res.StatusCode)
	}
	return nil
}

// handleListMatrices merges the matrix listings of every live shard,
// deduplicated by fingerprint, so the routed view equals the fleet's.
func (rt *Router) handleListMatrices(w http.ResponseWriter, r *http.Request) {
	byFP := map[string]service.MatrixInfo{}
	for _, p := range rt.members.Peers() {
		if p.State == PeerEjected {
			continue
		}
		cl, ok := rt.members.Client(p.Addr)
		if !ok {
			continue
		}
		infos, err := cl.Matrices(r.Context())
		if err != nil {
			continue
		}
		for _, info := range infos {
			info.Created = false
			if have, dup := byFP[info.Fingerprint]; !dup || have.Name == "" {
				byFP[info.Fingerprint] = info
			}
		}
	}
	out := make([]service.MatrixInfo, 0, len(byFP))
	for _, info := range byFP {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint < out[j].Fingerprint })
	rt.writeJSON(w, http.StatusOK, out)
}

// handleMatrix forwards GET (with failover) and DELETE (fanned out to all
// owners) for one matrix reference.
func (rt *Router) handleMatrix(w http.ResponseWriter, r *http.Request) {
	if !rt.loopGuard(w, r) {
		return
	}
	ref := strings.TrimPrefix(r.URL.Path, "/api/v1/matrices/")
	if ref == "" {
		rt.writeError(w, http.StatusNotFound, "missing matrix reference")
		return
	}
	fp := rt.resolve(ref)
	owners := rt.owners(fp)
	if len(owners) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no shards available")
		return
	}
	extra := http.Header{}
	extra.Set(service.HeaderForwardedBy, rt.opt.Name)
	path := "/api/v1/matrices/" + urlQueryEscape(ref)
	switch r.Method {
	case http.MethodGet:
		for _, addr := range owners {
			cl, ok := rt.members.Client(addr)
			if !ok {
				continue
			}
			res, err := cl.Forward(r.Context(), http.MethodGet, path, nil, r.Header, extra)
			if err != nil {
				rt.members.ReportFailure(addr, err)
				continue
			}
			rt.members.ReportSuccess(addr)
			rt.passThrough(w, res)
			return
		}
		rt.writeError(w, http.StatusServiceUnavailable, "no shard could serve the matrix")
	case http.MethodDelete:
		rt.reg.Counter(`cluster.requests{api="delete"}`).Inc()
		var first *client.ForwardResult
		for _, addr := range owners {
			cl, ok := rt.members.Client(addr)
			if !ok {
				continue
			}
			res, err := cl.Forward(r.Context(), http.MethodDelete, path, nil, r.Header, extra)
			if err != nil {
				rt.members.ReportFailure(addr, err)
				continue
			}
			rt.members.ReportSuccess(addr)
			if first == nil || (res.StatusCode >= 200 && res.StatusCode < 300 &&
				(first.StatusCode < 200 || first.StatusCode >= 300)) {
				first = res
			}
		}
		rt.mu.Lock()
		if rec, ok := rt.byFP[fp]; ok {
			delete(rt.byFP, fp)
			if rec.name != "" {
				delete(rt.names, rec.name)
			}
			if rec.info.Name != "" {
				delete(rt.names, rec.info.Name)
			}
		}
		delete(rt.warmHits, fp)
		delete(rt.warmed, fp)
		rt.mu.Unlock()
		if first == nil {
			rt.writeError(w, http.StatusServiceUnavailable, "no shard could delete the matrix")
			return
		}
		rt.passThrough(w, first)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

// ---- jobs and stats ----

// handleJobs merges the job logs of every live shard, most recent first.
func (rt *Router) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	all := []service.JobInfo{}
	for _, p := range rt.members.Peers() {
		if p.State == PeerEjected {
			continue
		}
		cl, ok := rt.members.Client(p.Addr)
		if !ok {
			continue
		}
		jobs, err := cl.Jobs(r.Context())
		if err != nil {
			continue
		}
		all = append(all, jobs...)
	}
	// EnqueuedAt is RFC 3339 with nanoseconds: lexical order is time order.
	sort.SliceStable(all, func(i, j int) bool { return all[i].EnqueuedAt > all[j].EnqueuedAt })
	rt.writeJSON(w, http.StatusOK, all)
}

// handleJob finds one job record on whichever shard executed it.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		rt.writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	extra := http.Header{}
	extra.Set(service.HeaderForwardedBy, rt.opt.Name)
	for _, p := range rt.members.Peers() {
		if p.State == PeerEjected {
			continue
		}
		cl, ok := rt.members.Client(p.Addr)
		if !ok {
			continue
		}
		res, err := cl.Forward(r.Context(), http.MethodGet, "/api/v1/jobs/"+urlQueryEscape(id), nil, r.Header, extra)
		if err != nil || res.StatusCode == http.StatusNotFound {
			continue
		}
		rt.passThrough(w, res)
		return
	}
	rt.writeError(w, http.StatusNotFound, "no job %q on any shard", id)
}

// ClusterStats is the router's GET /api/v1/stats document: the per-shard
// stats keyed by address, plus the router's own catalog size.
type ClusterStats struct {
	Router   string                   `json:"router"`
	Matrices int                      `json:"matrices"`
	Peers    map[string]service.Stats `json:"peers"`
	// Unreachable lists peers whose stats could not be fetched.
	Unreachable []string `json:"unreachable,omitempty"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	n := len(rt.byFP)
	rt.mu.Unlock()
	out := ClusterStats{Router: rt.opt.Name, Matrices: n, Peers: map[string]service.Stats{}}
	for _, p := range rt.members.Peers() {
		cl, ok := rt.members.Client(p.Addr)
		if !ok {
			continue
		}
		st, err := cl.Stats(r.Context())
		if err != nil {
			out.Unreachable = append(out.Unreachable, p.Addr)
			continue
		}
		out.Peers[p.Addr] = st
	}
	rt.writeJSON(w, http.StatusOK, out)
}

// ---- topology ----

// MatrixPlacement is one cataloged matrix's row in the topology document.
type MatrixPlacement struct {
	Fingerprint string   `json:"fingerprint"`
	Name        string   `json:"name,omitempty"`
	Owners      []string `json:"owners"`
	WarmHits    int      `json:"warm_hits,omitempty"`
	Replicated  bool     `json:"replicated,omitempty"`
}

// Topology is the GET /cluster document.
type Topology struct {
	Router      string            `json:"router"`
	Replicas    int               `json:"replicas"`
	VNodes      int               `json:"vnodes"`
	BoundedLoad float64           `json:"bounded_load"`
	Epoch       uint64            `json:"epoch"`
	Peers       []PeerStatus      `json:"peers"`
	Matrices    []MatrixPlacement `json:"matrices"`
}

// Topology implements obs.TopologyReporter.
func (rt *Router) Topology() any {
	top := Topology{
		Router:      rt.opt.Name,
		Replicas:    rt.opt.Replicas,
		VNodes:      rt.ring.VNodes(),
		BoundedLoad: rt.opt.BoundedLoad,
		Epoch:       rt.members.Epoch(),
		Peers:       rt.members.Peers(),
		Matrices:    []MatrixPlacement{},
	}
	rt.mu.Lock()
	recs := make([]*matrixRecord, 0, len(rt.byFP))
	for _, rec := range rt.byFP {
		recs = append(recs, rec)
	}
	warmHits := make(map[string]int, len(rt.warmHits))
	for fp, n := range rt.warmHits {
		warmHits[fp] = n
	}
	warmed := make(map[string]bool, len(rt.warmed))
	for fp, v := range rt.warmed {
		warmed[fp] = v
	}
	rt.mu.Unlock()
	for _, rec := range recs {
		top.Matrices = append(top.Matrices, MatrixPlacement{
			Fingerprint: rec.fp,
			Name:        rec.info.Name,
			Owners:      rt.owners(rec.fp),
			WarmHits:    warmHits[rec.fp],
			Replicated:  warmed[rec.fp],
		})
	}
	sort.Slice(top.Matrices, func(i, j int) bool {
		return top.Matrices[i].Fingerprint < top.Matrices[j].Fingerprint
	})
	return top
}

// ---- plumbing ----

// loopGuard rejects requests that already crossed a router: forwarding
// again could loop forever in a misconfigured topology (a router listed as
// another router's peer). Returns false when the request was rejected.
func (rt *Router) loopGuard(w http.ResponseWriter, r *http.Request) bool {
	if by := r.Header.Get(service.HeaderForwardedBy); by != "" {
		rt.reg.Counter("cluster.loop_rejects").Inc()
		rt.writeError(w, http.StatusLoopDetected,
			"request already forwarded by %q: routing loop", by)
		return false
	}
	return true
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	rt.writeErrorBody(w, code, service.ErrorBody{Error: fmt.Sprintf(format, args...)})
}

func (rt *Router) writeErrorBody(w http.ResponseWriter, code int, body service.ErrorBody) {
	rt.writeJSON(w, code, body)
}

func urlQueryEscape(s string) string { return url.PathEscape(s) }
