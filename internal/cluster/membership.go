package cluster

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// Peer states. A peer degrades before it is ejected so that one dropped
// probe (GC pause, transient packet loss) does not trigger a rebalance:
// degraded peers keep their ring positions and keep receiving traffic
// (the router just prefers healthier replicas), ejected peers leave the
// ring and their keys remap to the survivors.
const (
	PeerHealthy  = "healthy"
	PeerDegraded = "degraded"
	PeerEjected  = "ejected"
)

// MembershipOptions tunes the prober and the state machine.
type MembershipOptions struct {
	// ProbeInterval is the health-probe period per peer (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz round trip (default 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the number of consecutive probe failures that
	// degrade a healthy peer (default 2).
	FailThreshold int
	// EjectThreshold is the number of consecutive probe failures that
	// eject a peer from the ring (default 5). Must be > FailThreshold.
	EjectThreshold int
	// RecoverThreshold is the number of consecutive probe successes an
	// unhealthy peer needs to rejoin as healthy (default 2) — hysteresis,
	// so a flapping peer doesn't thrash the ring.
	RecoverThreshold int
	// Logger receives membership transitions; nil discards them.
	Logger *slog.Logger
	// Registry receives the cluster_peer_* series; nil disables them.
	Registry *telemetry.Registry
	// HTTPClient, when non-nil, replaces each peer client's transport
	// (tests inject failures here).
	HTTPClient *http.Client
}

func (o *MembershipOptions) fill() {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.EjectThreshold <= o.FailThreshold {
		o.EjectThreshold = o.FailThreshold + 3
	}
	if o.RecoverThreshold <= 0 {
		o.RecoverThreshold = 2
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// PeerStatus is one peer's row in the /cluster topology document.
type PeerStatus struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Module is the peer's Go module path from /version; a mismatch with
	// the router's own module ejects the peer as incompatible.
	Module string `json:"module,omitempty"`
	// ConsecutiveFailures / ConsecutiveSuccesses expose where the peer sits
	// in the degrade/recover hysteresis.
	ConsecutiveFailures  int    `json:"consecutive_failures,omitempty"`
	ConsecutiveSuccesses int    `json:"consecutive_successes,omitempty"`
	LastError            string `json:"last_error,omitempty"`
	LastProbe            string `json:"last_probe,omitempty"`
	Incompatible         bool   `json:"incompatible,omitempty"`
}

type peer struct {
	addr   string
	client *client.Client

	state        string
	fails        int // consecutive probe failures
	oks          int // consecutive probe successes
	lastErr      string
	lastProbe    time.Time
	module       string
	incompatible bool
}

// Membership owns the static peer set: it probes each peer's /healthz,
// runs the healthy→degraded→ejected state machine, and mutates the ring
// on ejection/recovery so placement only ever targets live shards. The
// data path feeds observed transport failures back via ReportFailure —
// a peer that drops connections gets ejected without waiting for the
// prober to notice.
type Membership struct {
	mu    sync.Mutex
	ring  *Ring
	peers map[string]*peer
	opt   MembershipOptions

	// module is the router's own module path; peers reporting a different
	// module path from /version are ejected as incompatible.
	module string

	// epoch increments on every ring mutation (ejection or rejoin); the
	// router uses it to invalidate placement-dependent caches (warming
	// dedup) after a rebalance.
	epoch uint64

	onChange func() // invoked (without the lock) after every ring mutation

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewMembership builds the membership over a static -peers list. All
// peers start healthy and in the ring; the prober corrects that within
// FailThreshold probes of startup if any are down.
func NewMembership(addrs []string, ring *Ring, opt MembershipOptions) *Membership {
	opt.fill()
	m := &Membership{
		ring:   ring,
		peers:  map[string]*peer{},
		opt:    opt,
		module: obs.Version().Module,
		stop:   make(chan struct{}),
	}
	for _, addr := range addrs {
		if _, dup := m.peers[addr]; dup {
			continue
		}
		c := client.New(addr)
		if opt.HTTPClient != nil {
			c.SetHTTPClient(opt.HTTPClient)
		}
		m.peers[c.Base()] = &peer{addr: c.Base(), client: c, state: PeerHealthy}
		ring.Add(c.Base())
	}
	m.publishGauges()
	return m
}

// OnChange registers the rebalance hook, called after every ring
// mutation. Set it before Start.
func (m *Membership) OnChange(fn func()) { m.onChange = fn }

// Start launches the background prober. Close stops it.
func (m *Membership) Start() {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.opt.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.ProbeAll()
			}
		}
	}()
}

// Close stops the prober and waits for it.
func (m *Membership) Close() {
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	m.wg.Wait()
}

// ProbeAll probes every peer once, concurrently. Exposed so tests and
// startup can force a probe round instead of waiting out the ticker.
func (m *Membership) ProbeAll() {
	m.mu.Lock()
	peers := make([]*peer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *peer) {
			defer wg.Done()
			m.probeOne(p)
		}(p)
	}
	wg.Wait()
}

func (m *Membership) probeOne(p *peer) {
	ctx, cancel := context.WithTimeout(context.Background(), m.opt.ProbeTimeout)
	defer cancel()
	h, err := p.client.Healthz(ctx)
	if err == nil && h.Status == obs.HealthFailing {
		err = fmt.Errorf("peer /healthz reports failing: %s", h.Reason)
	}
	var module string
	if err == nil && p.module == "" {
		// First successful contact: check build compatibility once.
		if v, verr := p.client.Version(ctx); verr == nil {
			module = v.Module
		}
	}
	m.mu.Lock()
	p.lastProbe = time.Now()
	if module != "" {
		p.module = module
		if m.module != "" && module != m.module {
			p.incompatible = true
			p.lastErr = fmt.Sprintf("incompatible build: module %q (want %q)", module, m.module)
			m.opt.Registry.Counter("cluster.probe_incompatible").Inc()
			m.transitionLocked(p, PeerEjected)
			m.mu.Unlock()
			m.changed()
			return
		}
	}
	if p.incompatible {
		// Incompatible peers stay ejected until the operator restarts the
		// router with a matched fleet; probes keep running only to refresh
		// the topology document.
		m.mu.Unlock()
		return
	}
	if err != nil {
		m.opt.Registry.Counter("cluster.probe_failures").Inc()
		changed := m.failureLocked(p, err.Error())
		m.mu.Unlock()
		if changed {
			m.changed()
		}
		return
	}
	changed := m.successLocked(p)
	m.mu.Unlock()
	if changed {
		m.changed()
	}
}

// ReportFailure feeds a data-path transport error into the state machine.
// Forwarding sees a dead peer before the prober does; counting those
// failures here means failover and ejection converge faster than the
// probe interval.
func (m *Membership) ReportFailure(addr string, err error) {
	m.mu.Lock()
	p, ok := m.peers[addr]
	if !ok || p.incompatible {
		m.mu.Unlock()
		return
	}
	m.opt.Registry.Counter("cluster.forward_failures").Inc()
	changed := m.failureLocked(p, err.Error())
	m.mu.Unlock()
	if changed {
		m.changed()
	}
}

// ReportSuccess feeds a successful forward into the state machine (a peer
// that serves traffic is alive regardless of what the last probe said).
func (m *Membership) ReportSuccess(addr string) {
	m.mu.Lock()
	p, ok := m.peers[addr]
	if !ok || p.incompatible {
		m.mu.Unlock()
		return
	}
	changed := m.successLocked(p)
	m.mu.Unlock()
	if changed {
		m.changed()
	}
}

// failureLocked counts one failure and applies the degrade/eject
// thresholds. Returns whether the ring changed.
func (m *Membership) failureLocked(p *peer, errMsg string) bool {
	p.fails++
	p.oks = 0
	p.lastErr = errMsg
	switch {
	case p.state != PeerEjected && p.fails >= m.opt.EjectThreshold:
		return m.transitionLocked(p, PeerEjected)
	case p.state == PeerHealthy && p.fails >= m.opt.FailThreshold:
		return m.transitionLocked(p, PeerDegraded)
	}
	return false
}

// successLocked counts one success and applies the recovery threshold.
// Returns whether the ring changed.
func (m *Membership) successLocked(p *peer) bool {
	p.oks++
	p.fails = 0
	if p.state != PeerHealthy && p.oks >= m.opt.RecoverThreshold {
		p.lastErr = ""
		return m.transitionLocked(p, PeerHealthy)
	}
	return false
}

// transitionLocked moves a peer between states, updating the ring on the
// ejected boundary. Returns whether the ring changed (i.e. keys remapped).
func (m *Membership) transitionLocked(p *peer, to string) bool {
	from := p.state
	if from == to {
		return false
	}
	p.state = to
	m.opt.Logger.Info("cluster peer state change",
		slog.String("peer", p.addr), slog.String("from", from), slog.String("to", to),
		slog.String("last_error", p.lastErr))
	ringChanged := false
	if to == PeerEjected {
		m.ring.Remove(p.addr)
		ringChanged = true
	} else if from == PeerEjected {
		m.ring.Add(p.addr)
		ringChanged = true
	}
	if ringChanged {
		m.epoch++
		m.opt.Registry.Counter("cluster.rebalances").Inc()
	}
	m.publishGaugesLocked()
	return ringChanged
}

func (m *Membership) changed() {
	if m.onChange != nil {
		m.onChange()
	}
}

func (m *Membership) publishGauges() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.publishGaugesLocked()
}

func (m *Membership) publishGaugesLocked() {
	counts := map[string]int{PeerHealthy: 0, PeerDegraded: 0, PeerEjected: 0}
	for _, p := range m.peers {
		counts[p.state]++
	}
	for state, n := range counts {
		m.opt.Registry.Gauge(fmt.Sprintf("cluster.peers{state=%q}", state)).Set(float64(n))
	}
}

// Client returns the client for a peer address.
func (m *Membership) Client(addr string) (*client.Client, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok {
		return nil, false
	}
	return p.client, true
}

// Epoch returns the ring-mutation counter; it changes exactly when key
// placement may have changed.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// State returns a peer's current state ("" for unknown peers).
func (m *Membership) State(addr string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok {
		return ""
	}
	return p.state
}

// Peers returns the status of every peer, sorted by address.
func (m *Membership) Peers() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.peers))
	for _, p := range m.peers {
		st := PeerStatus{
			Addr:                 p.addr,
			State:                p.state,
			Module:               p.module,
			ConsecutiveFailures:  p.fails,
			ConsecutiveSuccesses: p.oks,
			LastError:            p.lastErr,
			Incompatible:         p.incompatible,
		}
		if !p.lastProbe.IsZero() {
			st.LastProbe = p.lastProbe.UTC().Format(time.RFC3339Nano)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Health folds the peer states into the router's own /healthz answer:
// every shard unreachable is failing (no request can be served), any
// shard degraded or ejected is degraded (capacity and replication are
// reduced), all healthy is ok.
func (m *Membership) Health() (status, reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	healthy, trouble := 0, 0
	for _, p := range m.peers {
		if p.state == PeerHealthy {
			healthy++
		} else {
			trouble++
		}
	}
	switch {
	case healthy == 0:
		return obs.HealthFailing, "no healthy shards"
	case trouble > 0:
		return obs.HealthDegraded, fmt.Sprintf("%d of %d shards unhealthy", trouble, healthy+trouble)
	}
	return obs.HealthOK, ""
}
