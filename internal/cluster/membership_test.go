package cluster_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// fakePeer is a minimal shard stand-in whose health answer is switchable.
type fakePeer struct {
	hs      *httptest.Server
	healthy atomic.Bool
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{}
	p.healthy.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := obs.Health{Status: obs.HealthOK}
		if !p.healthy.Load() {
			h = obs.Health{Status: obs.HealthFailing, Reason: "induced"}
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(obs.Version())
	})
	p.hs = httptest.NewServer(mux)
	t.Cleanup(p.hs.Close)
	return p
}

// TestMembershipStateMachine walks one peer through the full ladder:
// healthy -> degraded (still in the ring) -> ejected (out of the ring) ->
// recovered (back in), with the epoch counting both ring mutations.
func TestMembershipStateMachine(t *testing.T) {
	good, bad := newFakePeer(t), newFakePeer(t)
	ring := cluster.NewRing(0)
	m := cluster.NewMembership([]string{good.hs.URL, bad.hs.URL}, ring, cluster.MembershipOptions{
		FailThreshold:    1,
		EjectThreshold:   2,
		RecoverThreshold: 1,
		Registry:         telemetry.NewRegistry(),
	})
	defer m.Close()
	if ring.Len() != 2 {
		t.Fatalf("initial ring has %d nodes, want 2", ring.Len())
	}
	m.ProbeAll()
	if st := m.State(bad.hs.URL); st != cluster.PeerHealthy {
		t.Fatalf("healthy peer probed into %q", st)
	}

	bad.healthy.Store(false)
	m.ProbeAll()
	if st := m.State(bad.hs.URL); st != cluster.PeerDegraded {
		t.Fatalf("after 1 failed probe: %q, want degraded", st)
	}
	if ring.Len() != 2 {
		t.Fatal("degraded peer must keep its ring positions")
	}

	m.ProbeAll()
	if st := m.State(bad.hs.URL); st != cluster.PeerEjected {
		t.Fatalf("after 2 failed probes: %q, want ejected", st)
	}
	if ring.Len() != 1 {
		t.Fatalf("ejected peer still on the ring (%d nodes)", ring.Len())
	}
	if m.Epoch() != 1 {
		t.Fatalf("epoch = %d after ejection, want 1", m.Epoch())
	}

	bad.healthy.Store(true)
	m.ProbeAll()
	if st := m.State(bad.hs.URL); st != cluster.PeerHealthy {
		t.Fatalf("after recovery probe: %q, want healthy", st)
	}
	if ring.Len() != 2 || m.Epoch() != 2 {
		t.Fatalf("rejoin: ring=%d epoch=%d, want 2/2", ring.Len(), m.Epoch())
	}
}

// TestMembershipDataPathFailures pins that forward-path transport errors
// alone (no prober) walk a peer to ejection — failover converges faster
// than the probe interval.
func TestMembershipDataPathFailures(t *testing.T) {
	good, dead := newFakePeer(t), newFakePeer(t)
	ring := cluster.NewRing(0)
	m := cluster.NewMembership([]string{good.hs.URL, dead.hs.URL}, ring, cluster.MembershipOptions{
		FailThreshold:  1,
		EjectThreshold: 2,
		Registry:       telemetry.NewRegistry(),
	})
	defer m.Close()
	err := http.ErrServerClosed
	m.ReportFailure(dead.hs.URL, err)
	if st := m.State(dead.hs.URL); st != cluster.PeerDegraded {
		t.Fatalf("after 1 data-path failure: %q, want degraded", st)
	}
	m.ReportFailure(dead.hs.URL, err)
	if st := m.State(dead.hs.URL); st != cluster.PeerEjected {
		t.Fatalf("after 2 data-path failures: %q, want ejected", st)
	}
	if ring.Len() != 1 {
		t.Fatal("ejected peer still on the ring")
	}
	// A successful forward recovers it (default RecoverThreshold 2).
	m.ReportSuccess(dead.hs.URL)
	m.ReportSuccess(dead.hs.URL)
	if st := m.State(dead.hs.URL); st != cluster.PeerHealthy {
		t.Fatalf("after 2 successes: %q, want healthy", st)
	}
	if ring.Len() != 2 {
		t.Fatal("recovered peer missing from the ring")
	}
}

// TestMembershipHealthRollup pins the router-level /healthz derivation.
func TestMembershipHealthRollup(t *testing.T) {
	a, b := newFakePeer(t), newFakePeer(t)
	ring := cluster.NewRing(0)
	m := cluster.NewMembership([]string{a.hs.URL, b.hs.URL}, ring, cluster.MembershipOptions{
		FailThreshold:  1,
		EjectThreshold: 2,
		Registry:       telemetry.NewRegistry(),
	})
	defer m.Close()
	if st, _ := m.Health(); st != obs.HealthOK {
		t.Fatalf("all-healthy rollup = %q, want ok", st)
	}
	m.ReportFailure(b.hs.URL, http.ErrServerClosed)
	if st, _ := m.Health(); st != obs.HealthDegraded {
		t.Fatalf("one-degraded rollup = %q, want degraded", st)
	}
	m.ReportFailure(a.hs.URL, http.ErrServerClosed)
	m.ReportFailure(a.hs.URL, http.ErrServerClosed)
	m.ReportFailure(b.hs.URL, http.ErrServerClosed)
	if st, reason := m.Health(); st != obs.HealthFailing || reason == "" {
		t.Fatalf("all-down rollup = %q (%q), want failing", st, reason)
	}
}

// TestMembershipProber runs the background prober against a failing peer
// and waits for the ejection to happen without manual probes.
func TestMembershipProber(t *testing.T) {
	bad := newFakePeer(t)
	bad.healthy.Store(false)
	ring := cluster.NewRing(0)
	m := cluster.NewMembership([]string{bad.hs.URL}, ring, cluster.MembershipOptions{
		ProbeInterval:  20 * time.Millisecond,
		FailThreshold:  1,
		EjectThreshold: 2,
		Registry:       telemetry.NewRegistry(),
	})
	m.Start()
	defer m.Close()
	deadline := time.Now().Add(5 * time.Second)
	for m.State(bad.hs.URL) != cluster.PeerEjected {
		if time.Now().After(deadline) {
			t.Fatalf("prober never ejected the failing peer (state %q)", m.State(bad.hs.URL))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if ring.Len() != 0 {
		t.Fatal("ejected peer still on the ring")
	}
}
