package prof

import (
	"context"
	"os"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/telemetry"
)

func TestMain(m *testing.M) { leakcheck.Main(m) }

// burnCPU spins until d elapses so CPU windows have samples to attribute.
func burnCPU(d time.Duration) float64 {
	deadline := time.Now().Add(d)
	x := 1.0
	for time.Now().Before(deadline) {
		for i := 0; i < 1000; i++ {
			x = x*1.0000001 + 1e-9
		}
	}
	return x
}

func TestRingEvictsOldestAtCapacity(t *testing.T) {
	r := newRing(3)
	for i := 0; i < 5; i++ {
		r.add(&Window{Start: time.Now()})
	}
	ws := r.list()
	if len(ws) != 3 {
		t.Fatalf("ring len = %d, want 3", len(ws))
	}
	// IDs are 1..5; the two oldest (1, 2) must be gone.
	wantIDs := []uint64{3, 4, 5}
	for i, w := range ws {
		if w.ID != wantIDs[i] {
			t.Errorf("window[%d].ID = %d, want %d", i, w.ID, wantIDs[i])
		}
	}
	if got := r.get(1); got != nil {
		t.Errorf("evicted window 1 still retrievable")
	}
	if got := r.get(4); got == nil || got.ID != 4 {
		t.Errorf("window 4 not retrievable")
	}
}

func TestRingIDsMonotonicAcrossWrap(t *testing.T) {
	r := newRing(2)
	var last uint64
	for i := 0; i < 10; i++ {
		id := r.add(&Window{})
		if id <= last {
			t.Fatalf("id %d not monotonically increasing after %d", id, last)
		}
		last = id
	}
}

func TestCaptureWindowHasCPUProfile(t *testing.T) {
	s := NewSampler(Options{Window: 50 * time.Millisecond, Capacity: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		burnCPU(120 * time.Millisecond)
	}()
	w := s.Capture(100 * time.Millisecond)
	<-done
	if w == nil {
		t.Fatal("Capture returned nil")
	}
	if w.CPUSkipped {
		t.Fatal("CPU capture skipped with no competing profiler")
	}
	if len(w.CPU) == 0 {
		t.Fatal("no CPU profile bytes captured")
	}
	p, err := Parse(w.CPU)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.SampleTypes) == 0 {
		t.Fatalf("profile has no sample types")
	}
	if w.Dur < 100*time.Millisecond {
		t.Errorf("window duration %v < requested 100ms", w.Dur)
	}
	if len(w.Heap) == 0 || len(w.Goroutine) == 0 {
		t.Errorf("missing heap/goroutine snapshots")
	}
	if w.Goroutines <= 0 {
		t.Errorf("goroutine count = %d", w.Goroutines)
	}
	if w.AllocDeltaBytes == 0 {
		t.Logf("alloc delta is zero (possible but unusual)")
	}
}

func TestCaptureSkipsWhenProfilerBusy(t *testing.T) {
	// Hold the process-wide CPU profiler the way /debug/pprof/profile
	// would, then ask the sampler for a window.
	f, err := os.CreateTemp(t.TempDir(), "cpu")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Skipf("profiler already busy: %v", err)
	}
	defer pprof.StopCPUProfile()

	reg := telemetry.NewRegistry()
	s := NewSampler(Options{Window: 10 * time.Millisecond, Capacity: 2, Registry: reg})
	w := s.Capture(10 * time.Millisecond)
	if !w.CPUSkipped {
		t.Fatal("expected CPUSkipped window while profiler busy")
	}
	if len(w.CPU) != 0 {
		t.Fatal("skipped window has CPU bytes")
	}
	if len(w.Heap) == 0 {
		t.Error("skipped window should still snapshot heap")
	}
	if got := reg.Counter("prof.windows_cpu_skipped").Value(); got != 1 {
		t.Errorf("windows_cpu_skipped = %d, want 1", got)
	}
}

func TestLabelsVisibleInCapturedProfile(t *testing.T) {
	s := NewSampler(Options{Window: 100 * time.Millisecond, Capacity: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		WithJobLabels(context.Background(), "j-000042", "trace-abc", "fp-1", func(ctx context.Context) {
			WithPhase(ctx, PhaseCG, func(context.Context) {
				burnCPU(250 * time.Millisecond)
			})
		})
	}()
	// Retry: at 100Hz a 100ms window holds ~10 samples; one window is
	// normally enough but allow a few attempts to keep this robust on
	// loaded machines.
	var found bool
	for attempt := 0; attempt < 5 && !found; attempt++ {
		w := s.Capture(100 * time.Millisecond)
		for _, j := range w.Jobs {
			if j == "j-000042" {
				found = true
			}
		}
		if found {
			hasPhase := false
			for _, ph := range w.Phases {
				if ph == PhaseCG {
					hasPhase = true
				}
			}
			if !hasPhase {
				t.Errorf("window %d has job label but no phase=cg (phases=%v)", w.ID, w.Phases)
			}
		}
	}
	wg.Wait()
	if !found {
		t.Fatal("no captured window carried job_id=j-000042")
	}
}

func TestSummarizeAttributesByLabel(t *testing.T) {
	s := NewSampler(Options{Window: 100 * time.Millisecond, Capacity: 2, TopN: 10})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		WithJobLabels(context.Background(), "j-sum", "t-sum", "fp-sum", func(ctx context.Context) {
			WithPhase(ctx, PhaseCG, func(context.Context) {
				for {
					select {
					case <-stop:
						return
					default:
						burnCPU(5 * time.Millisecond)
					}
				}
			})
		})
	}()
	var sum Summary
	var ok bool
	for attempt := 0; attempt < 5 && !ok; attempt++ {
		w := s.Capture(150 * time.Millisecond)
		if len(w.CPU) == 0 {
			continue
		}
		got, err := s.Summary(w)
		if err != nil {
			t.Fatalf("Summary: %v", err)
		}
		for _, e := range got.ByJob {
			if e.Value == "j-sum" && e.Nanos > 0 {
				sum, ok = got, true
			}
		}
	}
	close(stop)
	wg.Wait()
	if !ok {
		t.Fatal("no summary attributed CPU to j-sum")
	}
	if sum.TotalNanos <= 0 || len(sum.Top) == 0 {
		t.Fatalf("summary empty: total=%d top=%d", sum.TotalNanos, len(sum.Top))
	}
	foundPhase := false
	for _, e := range sum.ByPhase {
		if e.Value == PhaseCG && e.Nanos > 0 {
			foundPhase = true
		}
	}
	if !foundPhase {
		t.Errorf("summary by_phase missing cg: %+v", sum.ByPhase)
	}
}

func TestIndexConsistentUnderConcurrentCaptureAndFetch(t *testing.T) {
	s := NewSampler(Options{Window: 5 * time.Millisecond, Gap: 1, Capacity: 4})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: concurrent captures racing into the ring.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				s.Capture(5 * time.Millisecond)
			}
		}()
	}
	// Readers: list + get while captures are in flight.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ws := s.Windows()
				if len(ws) > 4 {
					t.Errorf("index returned %d windows, capacity 4", len(ws))
					return
				}
				var last uint64
				for _, w := range ws {
					if w.ID <= last {
						t.Errorf("index ids out of order: %d after %d", w.ID, last)
						return
					}
					last = w.ID
					if got := s.Window(w.ID); got != nil && got.ID != w.ID {
						t.Errorf("Window(%d) returned id %d", w.ID, got.ID)
						return
					}
				}
			}
		}()
	}
	// Wait for writers, then release readers.
	done := make(chan struct{})
	go func() { defer close(done); wg.Wait() }()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	<-done
	if n := s.ring.len(); n != 4 {
		t.Errorf("final ring len = %d, want 4", n)
	}
}

func TestStartStopNoLeak(t *testing.T) {
	// leakcheck.Main in TestMain asserts the process ends clean; this test
	// exercises the start/stop lifecycle including double start/stop.
	s := NewSampler(Options{Window: 10 * time.Millisecond, Gap: 5 * time.Millisecond, Capacity: 2})
	s.Start()
	s.Start() // idempotent
	time.Sleep(40 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	if len(s.Windows()) == 0 {
		t.Fatal("background loop captured no windows")
	}
	// Restart works.
	s.Start()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
}

func TestStopInterruptsWindow(t *testing.T) {
	s := NewSampler(Options{Window: 10 * time.Second, Gap: time.Hour, Capacity: 2})
	s.Start()
	time.Sleep(20 * time.Millisecond) // let the window start
	t0 := time.Now()
	s.Stop()
	if waited := time.Since(t0); waited > 2*time.Second {
		t.Fatalf("Stop blocked %v; window sleep not interruptible", waited)
	}
}

func TestSamplerOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("duty-cycle timing test")
	}
	// The 2% CI budget is for the production cadence (one Window per
	// Window+Gap). Per-window bookkeeping is a near-fixed cost dominated
	// by StopCPUProfile's flush wait, so measure it on short windows
	// under load and project it onto the default cadence.
	s := NewSampler(Options{}) // default 10s window / 50s gap
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				burnCPU(5 * time.Millisecond)
			}
		}
	}()
	for i := 0; i < 3; i++ {
		s.Capture(100 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	book := s.BookkeepingPerWindow()
	got := s.ProjectedOverheadPct()
	t.Logf("bookkeeping/window: %v, projected overhead at %v/%v cadence: %.4f%%",
		book, s.Opts().Window, s.Opts().Gap, got)
	if got >= 2.0 {
		t.Fatalf("projected sampler overhead %.3f%% >= 2%% budget (bookkeeping %v per window)", got, book)
	}
	if got == 0 {
		t.Fatal("no bookkeeping measured")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Window != 10*time.Second || o.Gap != 50*time.Second || o.Capacity != 32 || o.TopN != 20 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("truncated gzip accepted")
	}
	// Raw bytes that are not a valid profile should not panic; a parse
	// error or an empty profile are both acceptable.
	if p, err := Parse([]byte{0xff, 0xff, 0xff}); err == nil && len(p.Samples) > 0 {
		t.Error("garbage parsed into samples")
	}
}
