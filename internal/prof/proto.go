// Package prof is the continuous-profiling subsystem: a background sampler
// that captures windowed CPU profiles (runtime/pprof start/stop cycles) plus
// heap/goroutine snapshots and allocation deltas into a bounded ring buffer,
// and a zero-dependency parser for the pprof profile protobuf so captured
// windows can be summarized (top-N flat functions, per-label attribution)
// without shipping the google.golang.org/protobuf module.
//
// Solve jobs run under pprof labels (job_id, trace_id, fingerprint, phase —
// see Do/WithPhase), so any captured window attributes its CPU samples to
// the jobs and solver phases that were running, joinable against the request
// traces of internal/trace by the shared ids.
package prof

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
)

// The pprof profile format (github.com/google/pprof/proto/profile.proto) is
// a single protobuf message. The decoder below understands exactly the
// fields the summaries need: sample types, samples (values + labels + call
// stacks), locations, functions and the string table. Unknown fields are
// skipped by wire type, so future additions to the format stay readable.

// ValueType is one sample dimension ("cpu"/"nanoseconds", "samples"/"count").
type ValueType struct {
	Type string `json:"type"`
	Unit string `json:"unit"`
}

// Sample is one profile sample: a call stack (leaf first) with one value per
// sample type and the pprof labels that were set on the goroutine.
type Sample struct {
	// Stack holds function names, leaf first. Names are resolved through the
	// location and function tables; inlined frames all appear.
	Stack []string
	// Values holds one value per Profile.SampleTypes entry.
	Values []int64
	// Labels holds the string-valued pprof labels of the sample.
	Labels map[string][]string
	// NumLabels holds the numeric labels (key -> values).
	NumLabels map[string][]int64
}

// Profile is a decoded pprof profile.
type Profile struct {
	SampleTypes   []ValueType
	Samples       []Sample
	TimeNanos     int64
	DurationNanos int64
	Period        int64
	PeriodType    ValueType
}

// Parse decodes a pprof profile from its serialized form. Gzipped input
// (the .pb.gz runtime/pprof writes) is detected and unwrapped.
func Parse(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		data = raw
	}
	return parseProfile(data)
}

// rawSample carries a sample before string/location resolution.
type rawSample struct {
	locIDs []uint64
	values []int64
	labels []rawLabel
}

type rawLabel struct{ key, str, num int64 }

type rawLocation struct {
	id      uint64
	funcIDs []uint64 // one per line (inlined frames)
	address uint64
}

type rawFunction struct {
	id   uint64
	name int64 // string table index
}

func parseProfile(data []byte) (*Profile, error) {
	var (
		strTab     []string
		samples    []rawSample
		locs       []rawLocation
		funcs      []rawFunction
		sampleType []rawValueType
		periodType rawValueType
		p          = &Profile{}
	)
	d := decoder{buf: data}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return nil, err
		}
		switch field {
		case 1: // sample_type
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueType(msg)
			if err != nil {
				return nil, err
			}
			sampleType = append(sampleType, vt)
		case 2: // sample
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			l, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			locs = append(locs, l)
		case 5: // function
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			f, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			funcs = append(funcs, f)
		case 6: // string_table
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			strTab = append(strTab, string(msg))
		case 9: // time_nanos
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			p.TimeNanos = int64(v)
		case 10: // duration_nanos
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			p.DurationNanos = int64(v)
		case 11: // period_type
			msg, err := d.bytes(wire)
			if err != nil {
				return nil, err
			}
			if periodType, err = parseValueTypeRaw(msg); err != nil {
				return nil, err
			}
		case 12: // period
			v, err := d.varintField(wire)
			if err != nil {
				return nil, err
			}
			p.Period = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strTab) {
			return ""
		}
		return strTab[i]
	}

	// Resolve indirections: sample types, then location id -> function names.
	for i := range sampleType {
		p.SampleTypes = append(p.SampleTypes, ValueType{
			Type: str(sampleType[i].typeIdx), Unit: str(sampleType[i].unitIdx)})
	}
	p.PeriodType = ValueType{Type: str(periodType.typeIdx), Unit: str(periodType.unitIdx)}

	funcName := make(map[uint64]string, len(funcs))
	for _, f := range funcs {
		funcName[f.id] = str(f.name)
	}
	locFrames := make(map[uint64][]string, len(locs))
	for _, l := range locs {
		frames := make([]string, 0, len(l.funcIDs))
		for _, fid := range l.funcIDs {
			if name := funcName[fid]; name != "" {
				frames = append(frames, name)
			}
		}
		if len(frames) == 0 {
			frames = []string{fmt.Sprintf("0x%x", l.address)}
		}
		locFrames[l.id] = frames
	}

	for _, rs := range samples {
		s := Sample{Values: rs.values}
		for _, lid := range rs.locIDs {
			s.Stack = append(s.Stack, locFrames[lid]...)
		}
		for _, lb := range rs.labels {
			key := str(lb.key)
			if key == "" {
				continue
			}
			if lb.str != 0 {
				if s.Labels == nil {
					s.Labels = map[string][]string{}
				}
				s.Labels[key] = append(s.Labels[key], str(lb.str))
			} else {
				if s.NumLabels == nil {
					s.NumLabels = map[string][]int64{}
				}
				s.NumLabels[key] = append(s.NumLabels[key], lb.num)
			}
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

// parseValueType keeps the raw string indexes; resolution happens once the
// string table is complete (it legally appears after the samples).
type rawValueType struct{ typeIdx, unitIdx int64 }

func parseValueType(msg []byte) (rawValueType, error) { return parseValueTypeRaw(msg) }

func parseValueTypeRaw(msg []byte) (rawValueType, error) {
	var vt rawValueType
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return vt, err
		}
		switch field {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return vt, err
			}
			vt.typeIdx = int64(v)
		case 2:
			v, err := d.varintField(wire)
			if err != nil {
				return vt, err
			}
			vt.unitIdx = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(msg []byte) (rawSample, error) {
	var s rawSample
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return s, err
		}
		switch field {
		case 1: // location_id (packed or repeated varint)
			vals, err := d.packedVarints(wire)
			if err != nil {
				return s, err
			}
			s.locIDs = append(s.locIDs, vals...)
		case 2: // value
			vals, err := d.packedVarints(wire)
			if err != nil {
				return s, err
			}
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		case 3: // label
			msg, err := d.bytes(wire)
			if err != nil {
				return s, err
			}
			lb, err := parseLabel(msg)
			if err != nil {
				return s, err
			}
			s.labels = append(s.labels, lb)
		default:
			if err := d.skip(wire); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

func parseLabel(msg []byte) (rawLabel, error) {
	var lb rawLabel
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return lb, err
		}
		switch field {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return lb, err
			}
			lb.key = int64(v)
		case 2:
			v, err := d.varintField(wire)
			if err != nil {
				return lb, err
			}
			lb.str = int64(v)
		case 3:
			v, err := d.varintField(wire)
			if err != nil {
				return lb, err
			}
			lb.num = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return lb, err
			}
		}
	}
	return lb, nil
}

func parseLocation(msg []byte) (rawLocation, error) {
	var l rawLocation
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return l, err
		}
		switch field {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return l, err
			}
			l.id = v
		case 3:
			v, err := d.varintField(wire)
			if err != nil {
				return l, err
			}
			l.address = v
		case 4: // line
			msg, err := d.bytes(wire)
			if err != nil {
				return l, err
			}
			fid, err := parseLineFunc(msg)
			if err != nil {
				return l, err
			}
			if fid != 0 {
				l.funcIDs = append(l.funcIDs, fid)
			}
		default:
			if err := d.skip(wire); err != nil {
				return l, err
			}
		}
	}
	return l, nil
}

func parseLineFunc(msg []byte) (uint64, error) {
	var fid uint64
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return 0, err
		}
		if field == 1 {
			v, err := d.varintField(wire)
			if err != nil {
				return 0, err
			}
			fid = v
			continue
		}
		if err := d.skip(wire); err != nil {
			return 0, err
		}
	}
	return fid, nil
}

func parseFunction(msg []byte) (rawFunction, error) {
	var f rawFunction
	d := decoder{buf: msg}
	for !d.done() {
		field, wire, err := d.tag()
		if err != nil {
			return f, err
		}
		switch field {
		case 1:
			v, err := d.varintField(wire)
			if err != nil {
				return f, err
			}
			f.id = v
		case 2:
			v, err := d.varintField(wire)
			if err != nil {
				return f, err
			}
			f.name = int64(v)
		default:
			if err := d.skip(wire); err != nil {
				return f, err
			}
		}
	}
	return f, nil
}

// decoder is a minimal protobuf wire-format reader.
type decoder struct {
	buf []byte
	pos int
}

var errTruncated = errors.New("prof: truncated profile")

func (d *decoder) done() bool { return d.pos >= len(d.buf) }

// tag reads the next field number and wire type.
func (d *decoder) tag() (field int, wire int, err error) {
	v, err := d.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

func (d *decoder) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if d.pos >= len(d.buf) {
			return 0, errTruncated
		}
		b := d.buf[d.pos]
		d.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, errors.New("prof: varint overflow")
}

// varintField reads a varint value, allowing only wire type 0.
func (d *decoder) varintField(wire int) (uint64, error) {
	if wire != 0 {
		return 0, fmt.Errorf("prof: expected varint, got wire type %d", wire)
	}
	return d.varint()
}

// bytes reads a length-delimited payload (wire type 2).
func (d *decoder) bytes(wire int) ([]byte, error) {
	if wire != 2 {
		return nil, fmt.Errorf("prof: expected bytes, got wire type %d", wire)
	}
	n, err := d.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return nil, errTruncated
	}
	out := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	return out, nil
}

// packedVarints reads a repeated varint field in either encoding: packed
// (one length-delimited blob) or one value per occurrence.
func (d *decoder) packedVarints(wire int) ([]uint64, error) {
	switch wire {
	case 0:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case 2:
		blob, err := d.bytes(wire)
		if err != nil {
			return nil, err
		}
		sub := decoder{buf: blob}
		var out []uint64
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("prof: expected packed varints, got wire type %d", wire)
	}
}

// skip advances over a field of the given wire type.
func (d *decoder) skip(wire int) error {
	switch wire {
	case 0:
		_, err := d.varint()
		return err
	case 1: // fixed64
		if len(d.buf)-d.pos < 8 {
			return errTruncated
		}
		d.pos += 8
		return nil
	case 2:
		_, err := d.bytes(wire)
		return err
	case 5: // fixed32
		if len(d.buf)-d.pos < 4 {
			return errTruncated
		}
		d.pos += 4
		return nil
	default:
		return fmt.Errorf("prof: unsupported wire type %d", wire)
	}
}
