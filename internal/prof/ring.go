package prof

import (
	"sync"
	"time"
)

// Window is one captured profiling window: a CPU profile covering
// [Start, End] plus point-in-time heap/goroutine/mutex snapshots and
// allocation deltas taken over the same interval.
type Window struct {
	// ID is a monotonically increasing window id, unique for the life of
	// the sampler. IDs survive eviction: after the ring wraps, the index
	// still reports ids in increasing order with the oldest evicted.
	ID uint64 `json:"id"`

	Start time.Time     `json:"start"`
	End   time.Time     `json:"end"`
	Dur   time.Duration `json:"duration_ns"`

	// CPU is the raw gzipped pprof CPU profile (.pb.gz), nil when the
	// window's CPU capture was skipped (e.g. /debug/pprof/profile held the
	// process-wide profiler).
	CPU []byte `json:"-"`
	// Heap, Goroutine and Mutex are raw gzipped pprof snapshots taken at
	// the end of the window.
	Heap      []byte `json:"-"`
	Goroutine []byte `json:"-"`
	Mutex     []byte `json:"-"`

	// CPUSkipped reports that the CPU capture could not start because
	// another CPU profile was active process-wide.
	CPUSkipped bool `json:"cpu_skipped,omitempty"`

	// Goroutines is the goroutine count at window end.
	Goroutines int `json:"goroutines"`
	// HeapAllocBytes is the live heap at window end.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// AllocDeltaBytes is the total bytes allocated during the window
	// (mallocs, not live) — the allocation-rate signal.
	AllocDeltaBytes uint64 `json:"alloc_delta_bytes"`
	// GCCount is the number of GC cycles completed during the window.
	GCCount uint32 `json:"gc_count"`

	// Jobs lists the distinct job_id label values observed in the CPU
	// samples, so the /profiles index can answer "which window covers job
	// X" without re-parsing every profile.
	Jobs []string `json:"jobs,omitempty"`
	// Phases lists the distinct phase label values observed.
	Phases []string `json:"phases,omitempty"`

	// CPUSamples is the number of CPU samples in the window's profile.
	CPUSamples int `json:"cpu_samples"`
}

// ring is a bounded FIFO of captured windows. When full, adding a window
// evicts the oldest. All methods are safe for concurrent use.
type ring struct {
	mu   sync.RWMutex
	buf  []*Window
	head int // index of oldest
	n    int // number of valid entries
	next uint64
}

func newRing(capacity int) *ring {
	if capacity < 1 {
		capacity = 1
	}
	return &ring{buf: make([]*Window, capacity)}
}

// add assigns the next window id, appends w, and evicts the oldest window
// if the ring is at capacity. It returns the assigned id.
func (r *ring) add(w *Window) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	w.ID = r.next
	if r.n == len(r.buf) {
		r.buf[r.head] = w
		r.head = (r.head + 1) % len(r.buf)
	} else {
		r.buf[(r.head+r.n)%len(r.buf)] = w
		r.n++
	}
	return w.ID
}

// list returns the retained windows, oldest first.
func (r *ring) list() []*Window {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Window, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// get returns the window with the given id, or nil if it was never
// captured or has been evicted.
func (r *ring) get(id uint64) *Window {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for i := 0; i < r.n; i++ {
		if w := r.buf[(r.head+i)%len(r.buf)]; w.ID == id {
			return w
		}
	}
	return nil
}

// len returns the number of retained windows.
func (r *ring) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}
