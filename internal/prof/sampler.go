package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Options configures a Sampler.
type Options struct {
	// Window is the length of each CPU capture window. Default 10s.
	Window time.Duration
	// Gap is the pause between windows; profiling runs Window out of every
	// Window+Gap, bounding steady-state overhead. Default 50s (one 10s
	// window per minute).
	Gap time.Duration
	// Capacity is the maximum number of retained windows. Default 32.
	Capacity int
	// TopN bounds the flat summary length served per window. Default 20.
	TopN int
	// Registry receives prof.* metrics (nil-safe).
	Registry *telemetry.Registry
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 10 * time.Second
	}
	if o.Gap < 0 {
		o.Gap = 0
	} else if o.Gap == 0 {
		o.Gap = 50 * time.Second
	}
	if o.Capacity <= 0 {
		o.Capacity = 32
	}
	if o.TopN <= 0 {
		o.TopN = 20
	}
	return o
}

// Sampler captures windowed profiles into a bounded ring buffer. Create
// one with NewSampler, then either run it continuously (Start/Stop) or
// drive single windows synchronously with Capture.
type Sampler struct {
	opt  Options
	ring *ring

	mu      sync.Mutex // guards start/stop transitions
	stop    chan struct{}
	done    chan struct{}
	running bool

	// cpuMu serializes StartCPUProfile within this process's samplers so
	// two Capture calls never race for the one process-wide CPU profiler.
	// /debug/pprof/profile can still hold it; that surfaces as a skipped
	// window, not an error.
	cpuMu sync.Mutex

	started  time.Time
	bookNS   atomic.Int64 // cumulative bookkeeping (non-sleep) nanos
	nwin     atomic.Int64 // windows captured (for per-window averages)
	windows  *telemetry.Counter
	skipped  *telemetry.Counter
	overhead *telemetry.Gauge
	retained *telemetry.Gauge
}

// NewSampler builds a sampler; it does not start the background loop.
func NewSampler(opt Options) *Sampler {
	opt = opt.withDefaults()
	s := &Sampler{opt: opt, ring: newRing(opt.Capacity), started: time.Now()}
	if r := opt.Registry; r != nil {
		r.SetHelp("prof_windows_captured", "Profiling windows captured by the continuous sampler.")
		r.SetHelp("prof_windows_cpu_skipped", "Windows whose CPU capture was skipped because the process-wide profiler was busy.")
		r.SetHelp("prof_overhead_pct", "Measured sampler bookkeeping overhead as a percent of wall time.")
		r.SetHelp("prof_windows_retained", "Profiling windows currently retained in the ring buffer.")
		s.windows = r.Counter("prof.windows_captured")
		s.skipped = r.Counter("prof.windows_cpu_skipped")
		s.overhead = r.Gauge("prof.overhead_pct")
		s.retained = r.Gauge("prof.windows_retained")
	}
	return s
}

// Start launches the background capture loop: capture Window, idle Gap,
// repeat. It is a no-op if the loop is already running.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.running {
		return
	}
	s.running = true
	s.started = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

// Stop halts the background loop and waits for any in-flight window to
// finish. Safe to call when not running.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.running = false
	close(s.stop)
	done := s.done
	s.mu.Unlock()
	<-done
}

func (s *Sampler) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			return
		default:
		}
		s.capture(s.opt.Window, stop)
		select {
		case <-stop:
			return
		case <-time.After(s.opt.Gap):
		}
	}
}

// Capture synchronously records one window of duration d and adds it to
// the ring. It blocks for d (plus bookkeeping) and returns the captured
// window. Used by tests and the smoke drill; the background loop uses the
// same path.
func (s *Sampler) Capture(d time.Duration) *Window {
	return s.capture(d, nil)
}

func (s *Sampler) capture(d time.Duration, stop <-chan struct{}) *Window {
	t0 := time.Now()
	w := &Window{Start: t0}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	var cpuBuf bytes.Buffer
	s.cpuMu.Lock()
	err := pprof.StartCPUProfile(&cpuBuf)
	if err != nil {
		// The one process-wide CPU profiler is busy (e.g. a client is on
		// /debug/pprof/profile). Keep the window — heap/goroutine
		// snapshots and alloc deltas are still meaningful — but mark the
		// CPU part skipped.
		s.cpuMu.Unlock()
		w.CPUSkipped = true
		s.skipped.Inc()
	}
	setup := time.Since(t0)

	// The window itself: sleep, interruptible by stop.
	if stop != nil {
		select {
		case <-stop:
		case <-time.After(d):
		}
	} else {
		time.Sleep(d)
	}

	b0 := time.Now()
	if err == nil {
		pprof.StopCPUProfile()
		s.cpuMu.Unlock()
		w.CPU = cpuBuf.Bytes()
	}

	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	w.Goroutines = runtime.NumGoroutine()
	w.HeapAllocBytes = msAfter.HeapAlloc
	w.AllocDeltaBytes = msAfter.TotalAlloc - msBefore.TotalAlloc
	w.GCCount = msAfter.NumGC - msBefore.NumGC
	w.Heap = snapshot("heap")
	w.Goroutine = snapshot("goroutine")
	w.Mutex = snapshot("mutex")

	if len(w.CPU) > 0 {
		if p, perr := Parse(w.CPU); perr == nil {
			w.CPUSamples = len(p.Samples)
			w.Jobs = LabelValues(p, LabelJobID)
			w.Phases = LabelValues(p, LabelPhase)
		}
	}

	w.End = time.Now()
	w.Dur = w.End.Sub(w.Start)
	s.ring.add(w)
	s.windows.Inc()
	s.retained.Set(float64(s.ring.len()))

	// Overhead accounting: everything but the sleep is bookkeeping. The
	// denominator is wall time since the sampler started (or was created),
	// so the gauge reflects steady-state duty-cycle overhead, not the
	// in-window cost alone.
	book := setup + time.Since(b0)
	s.nwin.Add(1)
	total := s.bookNS.Add(int64(book))
	if wall := time.Since(s.started); wall > 0 {
		s.overhead.Set(100 * float64(total) / float64(wall))
	}
	return w
}

// snapshot serializes a pprof runtime profile (gzipped proto, debug=0).
func snapshot(name string) []byte {
	p := pprof.Lookup(name)
	if p == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 0); err != nil {
		return nil
	}
	return buf.Bytes()
}

// Windows returns the retained windows, oldest first.
func (s *Sampler) Windows() []*Window { return s.ring.list() }

// Window returns the retained window with the given id, or nil.
func (s *Sampler) Window(id uint64) *Window { return s.ring.get(id) }

// Summary parses the window's CPU profile and returns its digest.
func (s *Sampler) Summary(w *Window) (Summary, error) {
	if len(w.CPU) == 0 {
		return Summary{}, fmt.Errorf("prof: window %d has no CPU profile", w.ID)
	}
	p, err := Parse(w.CPU)
	if err != nil {
		return Summary{}, err
	}
	return Summarize(p, s.opt.TopN), nil
}

// MeasuredOverheadPct returns the sampler's cumulative bookkeeping time as
// a percent of wall time since Start (or construction). This is the value
// the CI overhead guard asserts stays under 2%.
func (s *Sampler) MeasuredOverheadPct() float64 {
	wall := time.Since(s.started)
	if wall <= 0 {
		return 0
	}
	return 100 * float64(s.bookNS.Load()) / float64(wall)
}

// BookkeepingPerWindow returns the average non-sleep time spent per
// captured window (profile start/stop, snapshots, parsing). Most of it is
// StopCPUProfile's flush wait, which is latency in the sampler goroutine
// rather than CPU stolen from solves, so treat it as an upper bound.
func (s *Sampler) BookkeepingPerWindow() time.Duration {
	n := s.nwin.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(s.bookNS.Load() / n)
}

// ProjectedOverheadPct projects the measured per-window bookkeeping cost
// onto the sampler's configured cadence: bookkeeping / (window + gap). The
// CI guard asserts this stays under 2% at the production cadence.
func (s *Sampler) ProjectedOverheadPct() float64 {
	period := s.opt.Window + s.opt.Gap
	if period <= 0 {
		return 0
	}
	return 100 * float64(s.BookkeepingPerWindow()) / float64(period)
}

// Opts returns the sampler's effective (defaulted) options.
func (s *Sampler) Opts() Options { return s.opt }
