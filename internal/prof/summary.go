package prof

import "sort"

// FlatEntry is one row of a top-N flat summary: CPU time attributed to the
// leaf function of each sample.
type FlatEntry struct {
	Function string  `json:"function"`
	Nanos    int64   `json:"nanos"`
	Samples  int64   `json:"samples"`
	Pct      float64 `json:"pct"`
}

// LabelEntry is CPU time aggregated by one pprof label value.
type LabelEntry struct {
	Value string  `json:"value"`
	Nanos int64   `json:"nanos"`
	Pct   float64 `json:"pct"`
}

// Summary is the parsed digest of one CPU profile window.
type Summary struct {
	TotalNanos int64        `json:"total_nanos"`
	Samples    int          `json:"samples"`
	Top        []FlatEntry  `json:"top"`
	ByJob      []LabelEntry `json:"by_job,omitempty"`
	ByPhase    []LabelEntry `json:"by_phase,omitempty"`
}

// cpuValueIndex finds the index of the "cpu"/"nanoseconds" sample value,
// falling back to the last value (the runtime puts samples/count first,
// cpu/nanoseconds second).
func cpuValueIndex(p *Profile) int {
	for i, st := range p.SampleTypes {
		if st.Type == "cpu" {
			return i
		}
	}
	if n := len(p.SampleTypes); n > 0 {
		return n - 1
	}
	return 0
}

// Summarize computes the flat top-N by leaf function and the per-label CPU
// attribution for job_id and phase.
func Summarize(p *Profile, topN int) Summary {
	ci := cpuValueIndex(p)
	s := Summary{Samples: len(p.Samples)}
	flat := map[string]*FlatEntry{}
	byJob := map[string]int64{}
	byPhase := map[string]int64{}
	for _, sm := range p.Samples {
		if ci >= len(sm.Values) {
			continue
		}
		v := sm.Values[ci]
		s.TotalNanos += v
		leaf := "<unknown>"
		if len(sm.Stack) > 0 {
			leaf = sm.Stack[0]
		}
		fe := flat[leaf]
		if fe == nil {
			fe = &FlatEntry{Function: leaf}
			flat[leaf] = fe
		}
		fe.Nanos += v
		fe.Samples++
		for _, job := range sm.Labels[LabelJobID] {
			byJob[job] += v
		}
		for _, ph := range sm.Labels[LabelPhase] {
			byPhase[ph] += v
		}
	}
	for _, fe := range flat {
		if s.TotalNanos > 0 {
			fe.Pct = 100 * float64(fe.Nanos) / float64(s.TotalNanos)
		}
		s.Top = append(s.Top, *fe)
	}
	sort.Slice(s.Top, func(i, j int) bool {
		if s.Top[i].Nanos != s.Top[j].Nanos {
			return s.Top[i].Nanos > s.Top[j].Nanos
		}
		return s.Top[i].Function < s.Top[j].Function
	})
	if topN > 0 && len(s.Top) > topN {
		s.Top = s.Top[:topN]
	}
	s.ByJob = labelEntries(byJob, s.TotalNanos)
	s.ByPhase = labelEntries(byPhase, s.TotalNanos)
	return s
}

func labelEntries(m map[string]int64, total int64) []LabelEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]LabelEntry, 0, len(m))
	for v, ns := range m {
		e := LabelEntry{Value: v, Nanos: ns}
		if total > 0 {
			e.Pct = 100 * float64(ns) / float64(total)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Nanos != out[j].Nanos {
			return out[i].Nanos > out[j].Nanos
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// LabelValues returns the distinct values of one string label across all
// samples, sorted.
func LabelValues(p *Profile, key string) []string {
	seen := map[string]bool{}
	for _, sm := range p.Samples {
		for _, v := range sm.Labels[key] {
			seen[v] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
