package prof

import (
	"context"
	"runtime/pprof"
)

// Label keys stamped onto solve-job goroutines. These are the join keys
// between captured profile windows and the request traces of
// internal/trace: job_id and trace_id match the ids in /traces and the run
// report, fingerprint matches the matrix registry, and phase tells which
// part of the solve (admission wait, FSAI setup, CG iterations) the CPU
// samples belong to.
const (
	LabelJobID       = "job_id"
	LabelTraceID     = "trace_id"
	LabelFingerprint = "fingerprint"
	LabelPhase       = "phase"
)

// Phase label values.
const (
	PhaseAdmission = "admission"
	PhaseSetup     = "setup"
	PhaseCG        = "cg"
)

// Do runs fn with the given pprof labels added to the context's label set,
// so CPU samples taken while fn runs carry them. It is a thin wrapper over
// pprof.Do that tolerates a nil context and skips empty values.
func Do(ctx context.Context, fn func(context.Context), kv ...string) {
	if ctx == nil {
		ctx = context.Background()
	}
	flat := make([]string, 0, len(kv))
	for i := 0; i+1 < len(kv); i += 2 {
		if kv[i] == "" || kv[i+1] == "" {
			continue
		}
		flat = append(flat, kv[i], kv[i+1])
	}
	if len(flat) == 0 {
		fn(ctx)
		return
	}
	pprof.Do(ctx, pprof.Labels(flat...), fn)
}

// WithJobLabels runs fn with the job attribution labels set.
func WithJobLabels(ctx context.Context, jobID, traceID, fingerprint string, fn func(context.Context)) {
	Do(ctx, fn,
		LabelJobID, jobID,
		LabelTraceID, traceID,
		LabelFingerprint, fingerprint)
}

// WithPhase runs fn with the phase label set (merged into any job labels
// already present on ctx).
func WithPhase(ctx context.Context, phase string, fn func(context.Context)) {
	Do(ctx, fn, LabelPhase, phase)
}
