// Package service is the long-running solve daemon behind cmd/fsaid: a
// matrix registry keyed by content fingerprint, an LRU cache of computed
// FSAI/FSAIE factors so repeated solves on the same operator skip the
// expensive setup phase entirely, and a bounded, admission-controlled job
// queue in front of the solver. The observability server (internal/obs) is
// mounted on the same listener, so /metrics, /healthz, /debug/solve and
// /runs describe the daemon live.
//
// The paper's setup-cost argument is the whole motivation: FSAI(E) setup is
// the dominant phase of a one-shot solve, and (as the adaptive-FSAI
// literature argues at scale) only pays for itself when amortized across
// many right-hand sides and repeated solves on the same operator. The
// service turns the reproduction into exactly that amortizing system.
package service

// MatrixInfo describes one registered matrix.
type MatrixInfo struct {
	// Fingerprint is the hex SHA-256 content fingerprint (sparse.CSR
	// Fingerprint) — the canonical handle for solve requests.
	Fingerprint string `json:"fingerprint"`
	// Name is an optional client-chosen alias, unique across the registry.
	Name string `json:"name,omitempty"`
	Rows int    `json:"rows"`
	NNZ  int    `json:"nnz"`
	// Created reports whether this registration stored a new matrix (false:
	// the content was already registered and the call deduplicated).
	Created bool `json:"created"`
}

// RegisterRequest is the JSON body of POST /api/v1/matrices when the client
// registers a generator spec instead of uploading a MatrixMarket file.
type RegisterRequest struct {
	// Matgen names a matrix of the internal/matgen evaluation suite.
	Matgen string `json:"matgen"`
	// Name optionally aliases the matrix in the registry.
	Name string `json:"name,omitempty"`
}

// SolveRequest is the JSON body of POST /api/v1/solve.
type SolveRequest struct {
	// Matrix references a registered matrix by fingerprint or name.
	Matrix string `json:"matrix"`

	// Precond selects the preconditioner (default "fsaie"):
	// none|jacobi|fsai|fsaie-sp|fsaie|adaptive. FSAI-family factors are
	// cached by (matrix fingerprint, setup options); none/jacobi are cheap
	// enough to rebuild per job.
	Precond string `json:"precond,omitempty"`
	// Filter / LineBytes / PatternPower / Tau mirror the fsai.Options setup
	// knobs (defaults 0.01 / 64 / 1 / 0); they are part of the cache key.
	// A negative Filter selects 0 — no extension filtering (JSON cannot
	// distinguish an absent field from an explicit 0, so 0 means default).
	Filter       float64 `json:"filter,omitempty"`
	LineBytes    int     `json:"line_bytes,omitempty"`
	PatternPower int     `json:"pattern_power,omitempty"`
	Tau          float64 `json:"tau,omitempty"`

	// Tol / MaxIter configure the PCG solve (defaults 1e-8 / 10000).
	Tol     float64 `json:"tol,omitempty"`
	MaxIter int     `json:"max_iter,omitempty"`

	// Resilient routes the job through the adaptive recovery chain
	// (internal/resilience). Resilient jobs bypass the preconditioner cache:
	// the chain owns its own setup/retry/fallback sequence.
	Resilient bool `json:"resilient,omitempty"`

	// TimeoutMS bounds the job wall clock (0: the server default). The job
	// runs under a context deadline and ends with status "cancelled" on
	// expiry, like fsaisolve -timeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// RHS is the right-hand side (must have exactly Rows values). Empty
	// means the all-ones vector.
	RHS []float64 `json:"rhs,omitempty"`
	// ReturnSolution includes the solution vector in the response.
	ReturnSolution bool `json:"return_solution,omitempty"`

	// HoldMS keeps the job's concurrency slot occupied for this long before
	// solving. It exists for admission-control drills (tests and the
	// service-smoke script saturate the queue deterministically with it);
	// production clients leave it zero.
	HoldMS int64 `json:"hold_ms,omitempty"`

	// SetupOnly builds (or finds cached) the FSAI-family preconditioner and
	// returns without running CG: the cache-warming primitive. The cluster
	// router uses it to replicate hot factors onto replica shards so a
	// failover lands on a warm cache. Requires an FSAI-family Precond;
	// incompatible with Resilient. The response's Status is "setup-only"
	// and Iterations is 0.
	SetupOnly bool `json:"setup_only,omitempty"`
}

// Header names of the client-resilience protocol.
const (
	// HeaderDeadlineMS carries the client's remaining deadline budget as
	// whole milliseconds. The server takes min(budget, request/server
	// timeout) as the job's wall-clock bound, applied from admission — a
	// job still queue-waiting when the budget expires is cancelled with
	// HTTP 504 instead of occupying a slot for a caller that already gave
	// up. Relative milliseconds (not an absolute timestamp) keep the
	// contract clock-skew-safe.
	HeaderDeadlineMS = "X-Fsaid-Deadline-Ms"
	// HeaderIdempotencyKey makes a solve request safely retryable: two
	// requests with the same key execute the solve at most once, and a
	// retry of a completed request replays the original job's response
	// (marked by HeaderIdempotentReplay and SolveResponse.Replayed).
	HeaderIdempotencyKey = "Idempotency-Key"
	// HeaderIdempotentReplay is "1" on responses served from the
	// idempotency index instead of a fresh execution.
	HeaderIdempotentReplay = "X-Fsaid-Idempotent-Replay"
	// HeaderForwardedBy marks a request forwarded by a cluster router,
	// carrying the router's name. A router that receives a request already
	// bearing it answers 508 Loop Detected instead of forwarding again —
	// the guard against routing loops in misconfigured topologies (a
	// router listed as another router's peer).
	HeaderForwardedBy = "X-Fsaid-Forwarded-By"
)

// StatusSetupOnly is the SolveResponse.Status of a setup_only request: the
// preconditioner was built (or found cached), no CG ran.
const StatusSetupOnly = "setup-only"

// Cache-outcome values reported in SolveResponse.Cache and the run report's
// service section.
const (
	CacheHit      = "hit"      // warm: the factor came from the cache, zero setup
	CacheMiss     = "miss"     // cold: this job computed (and cached) the factor
	CacheBypass   = "bypass"   // resilient job: the recovery chain owns setup
	CacheUncached = "uncached" // none/jacobi: too cheap to cache
)

// SolveResponse is the JSON result of POST /api/v1/solve.
type SolveResponse struct {
	JobID string `json:"job_id"`
	// TraceID identifies the job's end-to-end request trace: the span tree
	// is retrievable as GET /traces/<trace-id>, the same id appears in the
	// daemon's structured logs and the job's run report, and it equals the
	// trace id of the client's traceparent header when one was sent.
	TraceID string `json:"trace_id,omitempty"`
	// Matrix is the fingerprint the job resolved to.
	Matrix string `json:"matrix"`
	// Precond is the preconditioner that produced the result (for resilient
	// jobs: the final recovery rung).
	Precond string `json:"precond"`
	// Cache is the preconditioner-cache outcome (CacheHit, CacheMiss,
	// CacheBypass or CacheUncached).
	Cache string `json:"cache"`

	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Status     string  `json:"status"`
	RelRes     float64 `json:"relres"`

	// IterAnomaly marks a warm (cache-hit) solve whose iteration count
	// drifted well above the fingerprint's cached baseline — the cached
	// factor converges, but no longer like it used to (e.g. a harder RHS
	// regime). The SLO monitor counts these per fingerprint.
	IterAnomaly bool `json:"iter_anomaly,omitempty"`

	// LowBandwidth marks a solve whose achieved SpMV memory bandwidth fell
	// more than 30% below the matrix's rolling baseline (see GET /roofline
	// for the per-matrix state and the run report's roofline section for
	// this job's full kernel placement).
	LowBandwidth bool `json:"low_bandwidth,omitempty"`

	// QueueWaitNS is time spent waiting for a concurrency slot; SetupNS the
	// preconditioner setup cost this job actually paid (0 on a cache hit);
	// SolveNS the PCG wall time; TotalNS admission-to-response.
	QueueWaitNS int64 `json:"queue_wait_ns"`
	SetupNS     int64 `json:"setup_ns"`
	SolveNS     int64 `json:"solve_ns"`
	TotalNS     int64 `json:"total_ns"`

	// Replayed marks a response served from the idempotency index: a retry
	// of a request whose original execution already completed. All other
	// fields describe the original job.
	Replayed bool `json:"replayed,omitempty"`

	// Batch is present when the job executed as one column of a batched
	// block solve (the request batcher grouped it with concurrent
	// same-fingerprint warm solves). Results are bit-identical to the
	// unbatched solve; the section records how the cost amortized.
	Batch *BatchInfo `json:"batch,omitempty"`

	// Report is the run-report file name under /runs when the server keeps
	// run history.
	Report string `json:"report,omitempty"`

	// X is the solution vector when ReturnSolution was set.
	X []float64 `json:"x,omitempty"`
}

// BatchInfo is the batch section of a SolveResponse (and of the job's run
// report): which block solve carried this job and what batching bought.
type BatchInfo struct {
	// ID names the batch execution (one admission slot, one block solve).
	ID string `json:"id"`
	// Size is the number of jobs (columns) the batch solved together.
	Size int `json:"size"`
	// Column is this job's column index within the block.
	Column int `json:"column"`
	// WindowWaitNS is time this job spent in the open batch window before
	// the group launched.
	WindowWaitNS int64 `json:"window_wait_ns"`
	// SolveWallNS is the wall time of the whole block solve; PerRHSNS is
	// SolveWallNS divided by Size — the amortized per-job solve cost the
	// batch achieved.
	SolveWallNS int64 `json:"solve_wall_ns"`
	PerRHSNS    int64 `json:"per_rhs_ns"`
	// AchievedAI is the spmm kernel's arithmetic intensity over the batch
	// (flop/byte): one matrix stream serving Size columns raises it toward
	// Size× the single-RHS value (see the roofline section).
	AchievedAI float64 `json:"achieved_ai,omitempty"`
}

// JobState values of JobInfo.State.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobRejected = "rejected"
)

// JobInfo is one entry of the job log served on GET /api/v1/jobs.
type JobInfo struct {
	ID string `json:"id"`
	// TraceID links the job to its request trace (GET /traces/<trace-id>).
	TraceID string `json:"trace_id,omitempty"`
	Matrix  string `json:"matrix"`
	Precond string `json:"precond"`
	State   string `json:"state"`
	Cache   string `json:"cache,omitempty"`
	// Batch is the batch id when the job executed as one column of a
	// batched block solve.
	Batch string `json:"batch,omitempty"`
	// Status is the typed solver termination for finished jobs; Err the
	// failure text for failed/rejected ones.
	Status string `json:"status,omitempty"`
	Err    string `json:"error,omitempty"`

	Iterations int     `json:"iterations,omitempty"`
	Converged  bool    `json:"converged"`
	RelRes     float64 `json:"relres,omitempty"`

	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	SetupNS     int64 `json:"setup_ns,omitempty"`
	SolveNS     int64 `json:"solve_ns,omitempty"`
	TotalNS     int64 `json:"total_ns,omitempty"`

	EnqueuedAt string `json:"enqueued_at,omitempty"`
	FinishedAt string `json:"finished_at,omitempty"`
}

// CacheStats is the preconditioner-cache section of GET /api/v1/stats.
type CacheStats struct {
	Entries   int   `json:"entries"`
	Capacity  int   `json:"capacity"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// QueueStats is the admission-control section of GET /api/v1/stats.
type QueueStats struct {
	// Depth is the number of jobs currently waiting for a slot; Inflight
	// the number currently holding one.
	Depth       int   `json:"depth"`
	Capacity    int   `json:"capacity"`
	Inflight    int   `json:"inflight"`
	MaxInflight int   `json:"max_inflight"`
	Accepted    int64 `json:"accepted"`
	Rejected    int64 `json:"rejected"`
	Completed   int64 `json:"completed"`
}

// StoreStats is the durable-store section of GET /api/v1/stats, present
// only when the daemon runs with -data-dir.
type StoreStats struct {
	Matrices int   `json:"matrices"`
	Factors  int   `json:"factors"`
	Bytes    int64 `json:"bytes"`
	// Corrupt counts entries quarantined at recovery or rejected at read.
	Corrupt int64 `json:"corrupt"`
}

// Stats is the GET /api/v1/stats document.
type Stats struct {
	Matrices int        `json:"matrices"`
	Cache    CacheStats `json:"cache"`
	Queue    QueueStats `json:"queue"`
	// Store summarizes the durable store (nil without -data-dir).
	Store *StoreStats `json:"store,omitempty"`
	// Degraded is the memory-pressure degradation state: "normal",
	// "pressure" (cold solves shed) or "critical" (all solves shed).
	Degraded string `json:"degraded,omitempty"`
}

// ErrorBody is the JSON error envelope of non-2xx API responses.
type ErrorBody struct {
	Error string `json:"error"`
	// RetryAfterS accompanies HTTP 429: the server's backoff suggestion in
	// seconds (also sent as the Retry-After header).
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// JobID / TraceID identify the failed or rejected solve job when the
	// error happened after job assignment, so a client that got a 429 or a
	// timeout can still quote the ids the daemon logged under.
	JobID   string `json:"job_id,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
}
