package client

// Raw forwarding support for the cluster router (internal/cluster). The
// router must relay a client's request to the owning shard and hand the
// shard's response back byte-for-byte — decode/re-encode would be a place
// for envelope drift to hide, and the routed-vs-direct compatibility
// guarantee forbids exactly that. Forward therefore moves opaque bodies
// and a small allowlist of protocol headers; the typed methods stay the
// API for everything that terminates at this client.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// maxForwardBytes bounds a forwarded response body read (matches the
// service's own 64 MiB upload bound).
const maxForwardBytes = 64 << 20

// ForwardHeaders is the request-header allowlist a router relays to a
// shard: the tracing, idempotency, deadline and content-type protocol
// headers. Everything else (hop-by-hop headers, client connection noise)
// stays at the router.
var ForwardHeaders = []string{
	"Content-Type",
	"Traceparent",
	"Idempotency-Key",
	"X-Fsaid-Deadline-Ms",
}

// PassthroughHeaders is the response-header allowlist a router hands back
// to the client unmodified, so client-visible semantics are identical with
// and without a router in the path: the replay marker, the backoff hint
// and the trace context.
var PassthroughHeaders = []string{
	"Content-Type",
	"Traceparent",
	"Retry-After",
	"X-Fsaid-Idempotent-Replay",
}

// ForwardResult is one relayed exchange: the shard's status, the
// passthrough headers, and the raw body bytes.
type ForwardResult struct {
	StatusCode int
	Header     http.Header
	Body       []byte
}

// Forward relays one request to this client's daemon: method and path as
// given, body verbatim, request headers filtered through ForwardHeaders
// plus extra (the router adds its forwarded-by marker there). The response
// is returned whole — any HTTP status is a successful Forward; only
// transport failures (connection refused/reset, dropped response) return
// an error, which is exactly the failover signal the router acts on.
func (c *Client) Forward(ctx context.Context, method, path string, body []byte, hdr http.Header, extra http.Header) (*ForwardResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	for _, name := range ForwardHeaders {
		if v := hdr.Get(name); v != "" {
			req.Header.Set(name, v)
		}
	}
	for name, vals := range extra {
		for _, v := range vals {
			req.Header.Add(name, v)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBytes))
	if err != nil {
		return nil, err
	}
	out := &ForwardResult{StatusCode: resp.StatusCode, Header: http.Header{}, Body: data}
	for _, name := range PassthroughHeaders {
		for _, v := range resp.Header.Values(name) {
			out.Header.Add(name, v)
		}
	}
	return out, nil
}

// RetryAfter reads the shard's backoff hint from a forwarded 429/503
// response (0 when absent).
func (f *ForwardResult) RetryAfter() time.Duration {
	return parseRetryAfter(f.Header.Get("Retry-After"), time.Now())
}

// Healthz probes the daemon's /healthz. The health document is returned
// for any HTTP status (the endpoint answers 503 with a body when failing);
// an error means transport failure.
func (c *Client) Healthz(ctx context.Context) (obs.Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return obs.Health{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return obs.Health{}, err
	}
	defer resp.Body.Close()
	var h obs.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return obs.Health{}, err
	}
	return h, nil
}

// Version fetches the daemon's /version build info — the rolling-upgrade
// compatibility probe.
func (c *Client) Version(ctx context.Context) (obs.VersionInfo, error) {
	var v obs.VersionInfo
	err := c.do(ctx, http.MethodGet, "/version", nil, "", &v)
	return v, err
}

// Base returns the daemon address this client targets.
func (c *Client) Base() string { return c.base }
