// Package client is the Go client for the fsaid solve daemon
// (internal/service): typed wrappers over the /api/v1 endpoints, used by the
// fsaid client subcommands and the service tests. It speaks plain
// net/http — no dependencies beyond the service API types.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

// APIError is a non-2xx response from the daemon, carrying the decoded
// error envelope. For 429 responses RetryAfter holds the server's backoff
// suggestion.
type APIError struct {
	StatusCode int
	Body       service.ErrorBody
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Body.Error != "" {
		return fmt.Sprintf("fsaid: HTTP %d: %s", e.StatusCode, e.Body.Error)
	}
	return fmt.Sprintf("fsaid: HTTP %d", e.StatusCode)
}

// Client talks to one fsaid daemon.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:7474").
// A missing scheme defaults to http://.
func New(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// SetHTTPClient replaces the underlying HTTP client (custom transport,
// keep-alive policy, proxies). Call it before the client is shared; a nil
// argument is ignored.
func (c *Client) SetHTTPClient(hc *http.Client) {
	if hc != nil {
		c.hc = hc
	}
}

// do runs one request and decodes the JSON response into out (when non-nil).
// Non-2xx statuses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader, contentType string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeAPIError drains a non-2xx response into a typed *APIError. The error
// envelope may carry the daemon-assigned job and trace ids (429/timeout
// paths), so callers can quote the identifiers the daemon logged under.
func decodeAPIError(resp *http.Response) *APIError {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	_ = json.NewDecoder(resp.Body).Decode(&apiErr.Body)
	apiErr.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
	return apiErr
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3: either delta-seconds or an HTTP-date. A date in the past (or an
// unparsable value) yields 0.
func parseRetryAfter(s string, now time.Time) time.Duration {
	if s == "" {
		return 0
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	data, err := json.Marshal(in)
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, path, bytes.NewReader(data), "application/json", out)
}

// RegisterMatgen registers a matrix of the internal/matgen suite by spec
// name, optionally aliased.
func (c *Client) RegisterMatgen(ctx context.Context, spec, name string) (service.MatrixInfo, error) {
	var info service.MatrixInfo
	err := c.postJSON(ctx, "/api/v1/matrices", service.RegisterRequest{Matgen: spec, Name: name}, &info)
	return info, err
}

// RegisterMatrixMarket uploads a MatrixMarket coordinate file, optionally
// aliased.
func (c *Client) RegisterMatrixMarket(ctx context.Context, r io.Reader, name string) (service.MatrixInfo, error) {
	path := "/api/v1/matrices"
	if name != "" {
		path += "?name=" + urlQueryEscape(name)
	}
	var info service.MatrixInfo
	err := c.do(ctx, http.MethodPost, path, r, "text/plain", &info)
	return info, err
}

// Matrices lists the registered matrices.
func (c *Client) Matrices(ctx context.Context) ([]service.MatrixInfo, error) {
	var out []service.MatrixInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/matrices", nil, "", &out)
	return out, err
}

// Matrix fetches one registered matrix's descriptor by fingerprint or name.
func (c *Client) Matrix(ctx context.Context, ref string) (service.MatrixInfo, error) {
	var out service.MatrixInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/matrices/"+urlQueryEscape(ref), nil, "", &out)
	return out, err
}

// Unregister removes a matrix (and its cached preconditioners).
func (c *Client) Unregister(ctx context.Context, ref string) error {
	return c.do(ctx, http.MethodDelete, "/api/v1/matrices/"+urlQueryEscape(ref), nil, "", nil)
}

// Solve submits a solve job and waits for its result. Saturation surfaces
// as *APIError with StatusCode 429 and RetryAfter set. The request runs
// under a fresh client-originated trace (use SolveTraced to control or keep
// the trace context, e.g. to report its id after a timeout).
func (c *Client) Solve(ctx context.Context, req service.SolveRequest) (*service.SolveResponse, error) {
	out, _, err := c.SolveTraced(ctx, req, trace.Context{})
	return out, err
}

// SolveTraced submits a solve job under the given trace context (the zero
// value originates a fresh trace). The context travels as the W3C
// traceparent header, so the daemon's span tree, structured logs and run
// report all carry the caller's trace id. The trace context actually used is
// returned on every path — including transport errors such as timeouts,
// where no response exists but the daemon keeps logging the (still running)
// job under that id.
func (c *Client) SolveTraced(ctx context.Context, req service.SolveRequest, tc trace.Context) (*service.SolveResponse, trace.Context, error) {
	if !tc.Valid() {
		tc = trace.New()
	}
	data, err := marshalSolve(req)
	if err != nil {
		return nil, tc, err
	}
	out, err := c.solveOnce(ctx, data, tc, "")
	return out, tc, err
}

func marshalSolve(req service.SolveRequest) ([]byte, error) { return json.Marshal(req) }

// solveOnce performs a single POST /api/v1/solve attempt. The marshalled
// body is passed in so retries resend identical bytes; idemKey (when
// non-empty) travels as the Idempotency-Key header; a context deadline is
// propagated as the remaining-millisecond budget header so the server can
// stop working for a caller that gave up.
func (c *Client) solveOnce(ctx context.Context, body []byte, tc trace.Context, idemKey string) (*service.SolveResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v1/solve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("traceparent", tc.Traceparent())
	if idemKey != "" {
		hreq.Header.Set(service.HeaderIdempotencyKey, idemKey)
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		hreq.Header.Set(service.HeaderDeadlineMS, strconv.FormatInt(ms, 10))
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeAPIError(resp)
	}
	var out service.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists the daemon's job history, most recent first.
func (c *Client) Jobs(ctx context.Context) ([]service.JobInfo, error) {
	var out []service.JobInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, "", &out)
	return out, err
}

// Job fetches one job record.
func (c *Client) Job(ctx context.Context, id string) (service.JobInfo, error) {
	var out service.JobInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+urlQueryEscape(id), nil, "", &out)
	return out, err
}

// Stats fetches the daemon's registry/cache/queue counters.
func (c *Client) Stats(ctx context.Context) (service.Stats, error) {
	var out service.Stats
	err := c.do(ctx, http.MethodGet, "/api/v1/stats", nil, "", &out)
	return out, err
}

func urlQueryEscape(s string) string { return url.PathEscape(s) }
