package client

// Retrying solve path. The daemon already speaks backpressure — 429 with a
// Retry-After derived from observed solve times — but until this layer the
// client surfaced every transient as a failure. SolveRetry turns the
// contract into something a caller can lean on: capped exponential backoff
// with full jitter, the server's Retry-After honored when present, retries
// restricted to genuinely transient classes (429, 503, transport errors —
// never other 4xx, which retries cannot fix), and an idempotency key so a
// retried request whose original execution completed replays the original
// result instead of paying setup twice.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	mathrand "math/rand"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

// RetryPolicy configures SolveRetry. The zero value disables retrying
// (a single attempt); DefaultRetryPolicy is a sane production setting.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// Values below 1 mean 1.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt k (0-based) waits a
	// uniformly random duration in [0, min(MaxDelay, BaseDelay·2^k)] — full
	// jitter, so a burst of rejected clients decorrelates instead of
	// re-stampeding in lockstep. Default 200ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff wait. Default 5s.
	MaxDelay time.Duration
	// RespectRetryAfter honors a server Retry-After (429) as the wait for
	// the next attempt, overriding the computed backoff. Default true via
	// DefaultRetryPolicy; the zero value does NOT honor it only because the
	// zero value never retries at all.
	RespectRetryAfter bool

	// OnRetry, when set, observes each scheduled retry before its wait:
	// the 1-based attempt that failed, the error, and the chosen delay.
	OnRetry func(attempt int, err error, delay time.Duration)

	// now/sleep/jitter are test seams; nil means real time and math/rand.
	now    func() time.Time
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

// DefaultRetryPolicy returns the recommended policy for n total attempts.
func DefaultRetryPolicy(n int) RetryPolicy {
	return RetryPolicy{
		MaxAttempts:       n,
		BaseDelay:         200 * time.Millisecond,
		MaxDelay:          5 * time.Second,
		RespectRetryAfter: true,
	}
}

// RetryStats reports what a SolveRetry call actually did.
type RetryStats struct {
	// Attempts is the number of requests sent (1 = no retry was needed).
	Attempts int
	// Waited is the total backoff time slept between attempts.
	Waited time.Duration
	// Replayed is true when the final response came from the server's
	// idempotency index: an earlier attempt did the work, its response was
	// lost in transit, and the retry recovered it without re-solving.
	Replayed bool
	// IdempotencyKey is the key the attempts shared.
	IdempotencyKey string
}

// Retryable reports whether err is a transient failure a retry can fix:
// HTTP 429 (admission rejection) and 503 (degraded/unavailable), or a
// transport error (connection refused/reset, dropped response). Context
// cancellation and expiry are terminal — the caller gave up — and every
// other API status (4xx validation, 5xx solver failure) is deterministic,
// so retrying would only repeat it.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode == http.StatusTooManyRequests ||
			apiErr.StatusCode == http.StatusServiceUnavailable
	}
	// Anything else that reached us from Client.Do is a transport-level
	// failure: the request may or may not have executed server-side, which
	// is exactly what the idempotency key disambiguates.
	return true
}

// SolveRetry submits a solve with retries under pol, returning the response
// and what the retry loop did. All attempts share one idempotency key and
// one trace, so the daemon's logs show a single logical request and a retry
// of completed work replays the original result. A context deadline both
// bounds the local retry loop and travels to the server as the job's budget.
func (c *Client) SolveRetry(ctx context.Context, req service.SolveRequest, pol RetryPolicy) (*service.SolveResponse, RetryStats, error) {
	out, _, st, err := c.SolveTracedRetry(ctx, req, trace.Context{}, pol)
	return out, st, err
}

// SolveTracedRetry is SolveRetry under a caller-provided trace context (the
// zero value originates a fresh trace, returned on every path).
func (c *Client) SolveTracedRetry(ctx context.Context, req service.SolveRequest, tc trace.Context, pol RetryPolicy) (*service.SolveResponse, trace.Context, RetryStats, error) {
	if !tc.Valid() {
		tc = trace.New()
	}
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	if pol.BaseDelay <= 0 {
		pol.BaseDelay = 200 * time.Millisecond
	}
	if pol.MaxDelay <= 0 {
		pol.MaxDelay = 5 * time.Second
	}
	now := pol.now
	if now == nil {
		now = time.Now
	}
	sleep := pol.sleep
	if sleep == nil {
		sleep = sleepCtx
	}
	jitter := pol.jitter
	if jitter == nil {
		jitter = mathrand.Float64
	}

	st := RetryStats{IdempotencyKey: NewIdempotencyKey()}
	body, err := marshalSolve(req)
	if err != nil {
		return nil, tc, st, err
	}

	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		st.Attempts++
		out, err := c.solveOnce(ctx, body, tc, st.IdempotencyKey)
		if err == nil {
			st.Replayed = out.Replayed
			return out, tc, st, nil
		}
		lastErr = err
		if !Retryable(err) || attempt == pol.MaxAttempts-1 {
			break
		}
		delay := backoffDelay(pol, attempt, err, jitter)
		if dl, ok := ctx.Deadline(); ok && now().Add(delay).After(dl) {
			// The wait would outlive the caller's deadline; surface the last
			// real failure instead of sleeping into a guaranteed timeout.
			break
		}
		if pol.OnRetry != nil {
			pol.OnRetry(st.Attempts, err, delay)
		}
		st.Waited += delay
		if err := sleep(ctx, delay); err != nil {
			return nil, tc, st, lastErr
		}
	}
	return nil, tc, st, lastErr
}

// backoffDelay picks the wait before the next attempt: the server's
// Retry-After when present and respected, else full-jitter exponential
// backoff.
func backoffDelay(pol RetryPolicy, attempt int, err error, jitter func() float64) time.Duration {
	var apiErr *APIError
	if pol.RespectRetryAfter && errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter
	}
	ceil := pol.BaseDelay << uint(attempt)
	if ceil > pol.MaxDelay || ceil <= 0 {
		ceil = pol.MaxDelay
	}
	return time.Duration(jitter() * float64(ceil))
}

// NewIdempotencyKey returns a fresh 128-bit hex idempotency key.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; fall back to math/rand
		// rather than failing a solve over a duplicate-detection nicety.
		for i := range b {
			b[i] = byte(mathrand.Intn(256))
		}
	}
	return hex.EncodeToString(b[:])
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
