package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/trace"
)

func TestParseRetryAfterForms(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		in   string
		want time.Duration
	}{
		{"empty", "", 0},
		{"delta-seconds", "7", 7 * time.Second},
		{"delta-zero", "0", 0},
		{"delta-negative", "-3", 0},
		{"http-date-future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http-date-past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"http-date-rfc850", now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 GMT"), 30 * time.Second},
		{"garbage", "soon", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := parseRetryAfter(tc.in, now); got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestDecodeAPIErrorHTTPDateRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(10*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(service.ErrorBody{Error: "saturated"})
	}))
	defer srv.Close()

	c := New(srv.URL)
	_, err := c.Stats(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.RetryAfter < 8*time.Second || apiErr.RetryAfter > 10*time.Second {
		t.Fatalf("RetryAfter = %v, want ~10s from HTTP-date", apiErr.RetryAfter)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"429", &APIError{StatusCode: 429}, true},
		{"503", &APIError{StatusCode: 503}, true},
		{"400", &APIError{StatusCode: 400}, false},
		{"404", &APIError{StatusCode: 404}, false},
		{"500", &APIError{StatusCode: 500}, false},
		{"504", &APIError{StatusCode: 504}, false},
		{"transport", errors.New("connection refused"), true},
		{"ctx-cancel", context.Canceled, false},
		{"ctx-deadline", context.DeadlineExceeded, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Retryable(tc.err); got != tc.want {
				t.Fatalf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

// fakeSolveServer scripts a sequence of responses for POST /api/v1/solve.
type fakeSolveServer struct {
	t        *testing.T
	calls    atomic.Int64
	script   []func(w http.ResponseWriter, r *http.Request)
	lastKey  atomic.Value // string: last Idempotency-Key seen
	deadline atomic.Value // string: last deadline header seen
}

func (f *fakeSolveServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(f.calls.Add(1)) - 1
		f.lastKey.Store(r.Header.Get(service.HeaderIdempotencyKey))
		f.deadline.Store(r.Header.Get(service.HeaderDeadlineMS))
		if n >= len(f.script) {
			f.t.Errorf("unexpected call %d", n+1)
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		f.script[n](w, r)
	})
}

func ok(jobID string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(service.SolveResponse{JobID: jobID, Converged: true})
	}
}

func reject(status int, retryAfter string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(service.ErrorBody{Error: "busy", RetryAfterS: 1})
	}
}

// instantPolicy retries without real sleeping, recording the waits.
func instantPolicy(n int, waits *[]time.Duration) RetryPolicy {
	pol := DefaultRetryPolicy(n)
	pol.sleep = func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return nil
	}
	pol.jitter = func() float64 { return 1.0 }
	return pol
}

func TestSolveRetrySucceedsAfter429(t *testing.T) {
	f := &fakeSolveServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		reject(429, "2"),
		reject(503, ""),
		ok("job-3"),
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var waits []time.Duration
	c := New(srv.URL)
	out, st, err := c.SolveRetry(context.Background(), service.SolveRequest{Matrix: "m"}, instantPolicy(5, &waits))
	if err != nil {
		t.Fatal(err)
	}
	if out.JobID != "job-3" || st.Attempts != 3 {
		t.Fatalf("job=%s attempts=%d", out.JobID, st.Attempts)
	}
	// First wait honors the server's Retry-After (2s); second falls back to
	// backoff with jitter=1: BaseDelay<<1 = 400ms.
	if len(waits) != 2 || waits[0] != 2*time.Second || waits[1] != 400*time.Millisecond {
		t.Fatalf("waits = %v", waits)
	}
	if st.IdempotencyKey == "" || f.lastKey.Load().(string) != st.IdempotencyKey {
		t.Fatalf("idempotency key not constant across attempts: %q vs %q", st.IdempotencyKey, f.lastKey.Load())
	}
}

func TestSolveRetryNeverRetriesNonRetryable(t *testing.T) {
	f := &fakeSolveServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		reject(400, ""),
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var waits []time.Duration
	c := New(srv.URL)
	_, st, err := c.SolveRetry(context.Background(), service.SolveRequest{}, instantPolicy(5, &waits))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v", err)
	}
	if st.Attempts != 1 || len(waits) != 0 {
		t.Fatalf("attempts=%d waits=%v; 4xx must not be retried", st.Attempts, waits)
	}
}

func TestSolveRetryExhaustsAttempts(t *testing.T) {
	f := &fakeSolveServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		reject(429, ""), reject(429, ""), reject(429, ""),
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var waits []time.Duration
	c := New(srv.URL)
	_, st, err := c.SolveRetry(context.Background(), service.SolveRequest{}, instantPolicy(3, &waits))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 429 {
		t.Fatalf("err = %v", err)
	}
	if st.Attempts != 3 || len(waits) != 2 {
		t.Fatalf("attempts=%d waits=%d", st.Attempts, len(waits))
	}
}

func TestSolveRetryStopsWhenDelayOutlivesDeadline(t *testing.T) {
	f := &fakeSolveServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		reject(429, "3600"), // an hour-long Retry-After
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var waits []time.Duration
	c := New(srv.URL)
	start := time.Now()
	_, st, err := c.SolveRetry(ctx, service.SolveRequest{}, instantPolicy(5, &waits))
	if err == nil {
		t.Fatal("expected error")
	}
	if st.Attempts != 1 || len(waits) != 0 {
		t.Fatalf("attempts=%d waits=%v; must not sleep into a guaranteed timeout", st.Attempts, waits)
	}
	if time.Since(start) > time.Second {
		t.Fatal("retry loop waited instead of returning promptly")
	}
}

func TestSolveRetryPropagatesDeadlineHeader(t *testing.T) {
	f := &fakeSolveServer{t: t, script: []func(http.ResponseWriter, *http.Request){ok("j")}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c := New(srv.URL)
	if _, _, err := c.SolveRetry(ctx, service.SolveRequest{}, DefaultRetryPolicy(1)); err != nil {
		t.Fatal(err)
	}
	hdr, _ := f.deadline.Load().(string)
	if hdr == "" {
		t.Fatal("deadline header missing")
	}
	ms, err := strconv.ParseInt(hdr, 10, 64)
	if err != nil || ms <= 0 || ms > 5000 {
		t.Fatalf("deadline header = %q, want ~5000ms remaining", hdr)
	}
}

func TestSolveRetryReplayedFlag(t *testing.T) {
	f := &fakeSolveServer{t: t, script: []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(service.HeaderIdempotentReplay, "1")
			json.NewEncoder(w).Encode(service.SolveResponse{JobID: "orig", Replayed: true})
		},
	}}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c := New(srv.URL)
	out, st, err := c.SolveRetry(context.Background(), service.SolveRequest{}, DefaultRetryPolicy(1))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Replayed || !st.Replayed {
		t.Fatal("replay not surfaced")
	}
}

func TestSolveTracedRetryKeepsOneTrace(t *testing.T) {
	var traceparents []string
	f := &fakeSolveServer{t: t}
	f.script = []func(http.ResponseWriter, *http.Request){
		func(w http.ResponseWriter, r *http.Request) {
			traceparents = append(traceparents, r.Header.Get("traceparent"))
			reject(429, "")(w, r)
		},
		func(w http.ResponseWriter, r *http.Request) {
			traceparents = append(traceparents, r.Header.Get("traceparent"))
			ok("j")(w, r)
		},
	}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	var waits []time.Duration
	c := New(srv.URL)
	_, tc, _, err := c.SolveTracedRetry(context.Background(), service.SolveRequest{}, trace.Context{}, instantPolicy(2, &waits))
	if err != nil {
		t.Fatal(err)
	}
	if len(traceparents) != 2 || traceparents[0] != traceparents[1] {
		t.Fatalf("traceparents = %v, want identical across attempts", traceparents)
	}
	if !tc.Valid() {
		t.Fatal("returned trace context invalid")
	}
}

func TestNewIdempotencyKeyUnique(t *testing.T) {
	a, b := NewIdempotencyKey(), NewIdempotencyKey()
	if a == b || len(a) != 32 {
		t.Fatalf("keys %q %q", a, b)
	}
}
