package service

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	fsai "repro/internal/core"
	"repro/internal/telemetry"
)

// CachedPrecond is one cache entry: a computed FSAI-family factor and what
// its setup cost. The Preconditioner is the canonical copy — Apply state is
// per-solve, so every consumer clones it with CloneForApply and the
// expensive parts (G, Gᵀ, partition plans) stay shared.
type CachedPrecond struct {
	Key     string
	P       *fsai.Preconditioner
	SetupNS int64

	// baselineIters is the CG iteration count of the first converged solve
	// that used this factor (set-once). Warm solves compare against it to
	// flag iteration-count anomalies: the factor still converges, but a
	// drifting count means it no longer preconditions like it used to.
	// 0 means "no baseline yet".
	baselineIters atomic.Int64
}

// SetBaselineIters records the entry's iteration baseline if none is set
// yet; later calls are no-ops (the first converged solve defines "normal").
func (e *CachedPrecond) SetBaselineIters(iters int) {
	if e == nil || iters <= 0 {
		return
	}
	e.baselineIters.CompareAndSwap(0, int64(iters))
}

// BaselineIters returns the recorded baseline (0: none yet).
func (e *CachedPrecond) BaselineIters() int {
	if e == nil {
		return 0
	}
	return int(e.baselineIters.Load())
}

// IterAnomalyFactor is how far above the baseline a warm solve's iteration
// count must drift to be flagged (with IterAnomalySlack absolute headroom so
// tiny baselines don't flag on ±1-iteration noise).
const (
	IterAnomalyFactor = 1.5
	IterAnomalySlack  = 10
)

// IterationAnomaly reports whether iters is anomalous against baseline.
func IterationAnomaly(baseline, iters int) bool {
	if baseline <= 0 {
		return false
	}
	return float64(iters) > float64(baseline)*IterAnomalyFactor+IterAnomalySlack
}

// buildCall tracks one in-flight setup so concurrent requests for the same
// key coalesce onto a single computation instead of racing N setups.
type buildCall struct {
	done chan struct{}
	e    *CachedPrecond
	err  error
}

// PrecondCache is the LRU preconditioner cache keyed by
// (matrix fingerprint, setup options): the piece that makes warm solves
// skip the paper's dominant cost phase entirely. All methods are safe for
// concurrent use; misses for the same key are deduplicated (single-flight).
type PrecondCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *CachedPrecond
	items    map[string]*list.Element
	building map[string]*buildCall

	hits, misses, evictions atomic.Int64
	reg                     *telemetry.Registry

	// evictHook observes every key leaving the cache (LRU overflow,
	// EvictMatrix, EvictOldest). The server points it at the durable store
	// so disk state mirrors cache state. Always invoked OUTSIDE c.mu — the
	// hook does disk IO.
	evictHook func(keys ...string)
}

// NewPrecondCache returns a cache holding at most capacity factors
// (capacity < 1 is treated as 1). reg, when non-nil, receives the
// service.cache.* counters and gauges.
func NewPrecondCache(capacity int, reg *telemetry.Registry) *PrecondCache {
	if capacity < 1 {
		capacity = 1
	}
	reg.SetHelp("service_cache_hits", "preconditioner cache hits (warm solves, zero setup)")
	reg.SetHelp("service_cache_misses", "preconditioner cache misses (cold solves paying setup)")
	reg.SetHelp("service_cache_evictions", "preconditioner cache LRU evictions")
	reg.SetHelp("service_cache_entries", "preconditioner factors currently cached")
	return &PrecondCache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		building: map[string]*buildCall{},
		reg:      reg,
	}
}

// PrecondKey builds the canonical cache key for a matrix fingerprint and
// the setup-relevant solve options. Worker count is deliberately excluded:
// the factor's values do not depend on setup parallelism (each row's local
// system is solved independently), so one cached factor serves any worker
// configuration.
func PrecondKey(fingerprint string, req *SolveRequest) string {
	return fmt.Sprintf("%s|%s|f=%g|line=%d|pow=%d|tau=%g",
		fingerprint, req.Precond, req.Filter, req.LineBytes, req.PatternPower, req.Tau)
}

// GetOrBuild returns the cached factor for key, computing it with build on
// a miss. Concurrent misses for the same key wait for the first builder and
// count as hits (they paid no setup). ctx bounds only the waiting — an
// in-flight build runs to completion so its result can serve later jobs
// even when the triggering client gave up.
func (c *PrecondCache) GetOrBuild(ctx context.Context, key string, build func() (*CachedPrecond, error)) (e *CachedPrecond, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*CachedPrecond)
		c.mu.Unlock()
		c.hits.Add(1)
		c.reg.Counter("service.cache.hits").Inc()
		return e, true, nil
	}
	if call, ok := c.building[key]; ok {
		c.mu.Unlock()
		select {
		case <-call.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if call.err != nil {
			return nil, false, call.err
		}
		c.hits.Add(1)
		c.reg.Counter("service.cache.hits").Inc()
		return call.e, true, nil
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.mu.Unlock()

	call.e, call.err = build()
	if call.e != nil {
		call.e.Key = key
	}

	c.mu.Lock()
	delete(c.building, key)
	var evicted []string
	if call.err == nil {
		evicted = c.insertLocked(key, call.e)
	}
	hook := c.evictHook
	c.mu.Unlock()
	close(call.done)
	if hook != nil && len(evicted) > 0 {
		hook(evicted...)
	}

	c.misses.Add(1)
	c.reg.Counter("service.cache.misses").Inc()
	return call.e, false, call.err
}

// SetEvictHook registers fn to observe evicted keys. Must be set before the
// cache serves traffic.
func (c *PrecondCache) SetEvictHook(fn func(keys ...string)) {
	c.mu.Lock()
	c.evictHook = fn
	c.mu.Unlock()
}

// Put inserts an already-computed entry (rehydration from the durable
// store). It counts neither a hit nor a miss, and respects capacity like
// any insert.
func (c *PrecondCache) Put(key string, e *CachedPrecond) {
	e.Key = key
	c.mu.Lock()
	evicted := c.insertLocked(key, e)
	hook := c.evictHook
	c.mu.Unlock()
	if hook != nil && len(evicted) > 0 {
		hook(evicted...)
	}
}

// Contains reports whether key is resident, without touching LRU order or
// the hit/miss counters. The degradation layer uses it to tell warm
// requests (serve: nearly free) from cold ones (shed: setup is the
// expensive, allocation-heavy phase).
func (c *PrecondCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// insertLocked adds an entry at the LRU front and evicts beyond capacity,
// returning the evicted keys. Caller holds c.mu and must run the evict
// hook on the returned keys after unlocking.
func (c *PrecondCache) insertLocked(key string, e *CachedPrecond) []string {
	if el, ok := c.items[key]; ok {
		// A concurrent builder lost a race with an eviction+rebuild; keep
		// the resident entry.
		c.ll.MoveToFront(el)
		return nil
	}
	c.items[key] = c.ll.PushFront(e)
	var evicted []string
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		old := oldest.Value.(*CachedPrecond)
		c.ll.Remove(oldest)
		delete(c.items, old.Key)
		evicted = append(evicted, old.Key)
		c.evictions.Add(1)
		c.reg.Counter("service.cache.evictions").Inc()
	}
	c.reg.Gauge("service.cache.entries").Set(float64(c.ll.Len()))
	return evicted
}

// EvictMatrix drops every cached factor whose key belongs to the given
// matrix fingerprint, returning how many were removed. Used when a matrix
// is unregistered.
func (c *PrecondCache) EvictMatrix(fingerprint string) int {
	prefix := fingerprint + "|"
	c.mu.Lock()
	var evicted []string
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
			evicted = append(evicted, key)
		}
	}
	n := len(evicted)
	if n > 0 {
		c.evictions.Add(int64(n))
		c.reg.Counter("service.cache.evictions").Add(int64(n))
		c.reg.Gauge("service.cache.entries").Set(float64(c.ll.Len()))
	}
	hook := c.evictHook
	c.mu.Unlock()
	if hook != nil && n > 0 {
		hook(evicted...)
	}
	return n
}

// EvictOldest drops up to n least-recently-used entries, returning how many
// were removed. The degradation layer calls it under memory pressure to
// give factor memory back before the watermark becomes an OOM.
func (c *PrecondCache) EvictOldest(n int) int {
	c.mu.Lock()
	var evicted []string
	for len(evicted) < n {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		old := oldest.Value.(*CachedPrecond)
		c.ll.Remove(oldest)
		delete(c.items, old.Key)
		evicted = append(evicted, old.Key)
	}
	if len(evicted) > 0 {
		c.evictions.Add(int64(len(evicted)))
		c.reg.Counter("service.cache.evictions").Add(int64(len(evicted)))
		c.reg.Gauge("service.cache.entries").Set(float64(c.ll.Len()))
	}
	hook := c.evictHook
	c.mu.Unlock()
	if hook != nil && len(evicted) > 0 {
		hook(evicted...)
	}
	return len(evicted)
}

// Len returns the number of cached factors.
func (c *PrecondCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the cache counters.
func (c *PrecondCache) Stats() CacheStats {
	c.mu.Lock()
	entries := c.ll.Len()
	c.mu.Unlock()
	return CacheStats{
		Entries:   entries,
		Capacity:  c.capacity,
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
}
