package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/roofline"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// TestConcurrentSolvesAttributedInProfileWindow is the per-job-attribution
// acceptance check: with two clients solving concurrently, a single captured
// CPU window must contain samples labeled with a job id from EACH client and
// with the cg solver phase — proving the labels survive the whole
// handler → admission → setup/solve → kernel-pool path under load.
func TestConcurrentSolvesAttributedInProfileWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("captures CPU profile windows under load")
	}
	s, c := newTestServer(t, service.Options{Metrics: telemetry.NewRegistry()})
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap72x72", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	// Two workloads with distinct cache keys (different filters), so both
	// keep the solver busy instead of coalescing on one cache build. An
	// unpreconditioned tight-tolerance solve spends nearly all its time in
	// the CG loop, which is the phase the test wants to see labeled.
	reqs := []service.SolveRequest{
		{Matrix: info.Fingerprint, Precond: "none", Tol: 1e-10},
		{Matrix: info.Fingerprint, Precond: "jacobi", Tol: 1e-10},
	}

	var (
		mu   sync.Mutex
		jobs [2]map[string]bool
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		jobs[w] = map[string]bool{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := c.Solve(ctx, reqs[w])
				if err != nil {
					t.Errorf("worker %d solve: %v", w, err)
					return
				}
				mu.Lock()
				jobs[w][resp.JobID] = true
				mu.Unlock()
			}
		}(w)
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	// CPU sampling is statistical (100 Hz): retry short windows until one
	// catches both workers, bounded so a pass stays fast and a real
	// label-propagation break still fails loudly.
	seen := func(w *prof.Window, set map[string]bool) bool {
		for _, id := range w.Jobs {
			if set[id] {
				return true
			}
		}
		return false
	}
	hasPhase := func(w *prof.Window, phase string) bool {
		for _, p := range w.Phases {
			if p == phase {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(30 * time.Second)
	var last *prof.Window
	for time.Now().Before(deadline) {
		w := s.Prof().Capture(1200 * time.Millisecond)
		last = w
		mu.Lock()
		both := seen(w, jobs[0]) && seen(w, jobs[1])
		mu.Unlock()
		if both && hasPhase(w, prof.PhaseCG) {
			return
		}
	}
	mu.Lock()
	defer mu.Unlock()
	t.Fatalf("no window captured both workers' job ids with phase=cg; last window jobs=%v phases=%v (worker0=%v worker1=%v)",
		last.Jobs, last.Phases, keys(jobs[0]), keys(jobs[1]))
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestProfilesAndRooflineEndpoints exercises the daemon-mounted observability
// routes end to end: a solve must surface in /roofline, /metrics must carry
// the roofline_* gauges, and /profiles must serve a valid index whose
// captured window is downloadable. None of the routes may answer 5xx.
func TestProfilesAndRooflineEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir()
	s := service.New(service.Options{Metrics: reg, Workers: 2, RunsDir: dir})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c := client.New(hs.URL)
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	resp, err := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !resp.Converged {
		t.Fatalf("solve did not converge: %+v", resp)
	}

	// /roofline reflects the solve with kernels priced against the machine.
	var roofRep struct {
		Machine struct {
			Name string `json:"name"`
		} `json:"machine"`
		Matrices []struct {
			Fingerprint string `json:"fingerprint"`
			Latest      struct {
				JobID   string `json:"job_id"`
				Kernels []struct {
					Kernel                 string  `json:"kernel"`
					AchievedBandwidthBytes float64 `json:"achieved_bandwidth_bytes"`
					AchievedFlops          float64 `json:"achieved_flops"`
				} `json:"kernels"`
			} `json:"latest"`
		} `json:"matrices"`
	}
	getJSON(t, hs.URL+"/roofline", &roofRep)
	if roofRep.Machine.Name != "Skylake" {
		t.Fatalf("default machine = %q, want Skylake", roofRep.Machine.Name)
	}
	if len(roofRep.Matrices) != 1 || roofRep.Matrices[0].Fingerprint != info.Fingerprint {
		t.Fatalf("roofline matrices: %+v", roofRep.Matrices)
	}
	latest := roofRep.Matrices[0].Latest
	if latest.JobID != resp.JobID {
		t.Fatalf("latest roofline job = %q, want %q", latest.JobID, resp.JobID)
	}
	if len(latest.Kernels) == 0 {
		t.Fatal("no kernels in roofline placement")
	}
	for _, k := range latest.Kernels {
		if k.AchievedBandwidthBytes <= 0 || k.AchievedFlops <= 0 {
			t.Fatalf("kernel %q has non-positive rates: %+v", k.Kernel, k)
		}
	}

	// /metrics carries the roofline_* series for the same fingerprint, and
	// the gauge values agree with the /roofline (and report) numbers.
	mr, err := http.Get(hs.URL + "/metrics")
	if err != nil || mr.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %v status=%v", err, mr.StatusCode)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, family := range []string{"roofline_achieved_bandwidth_bytes", "roofline_achieved_flops"} {
		if !strings.Contains(string(body), family) {
			t.Fatalf("/metrics missing %s series", family)
		}
	}

	// Schema-v6 run report: its roofline section must agree exactly with
	// the Prometheus gauge for the same job (%g round-trips float64).
	var rep experiments.RunReport
	data, err := os.ReadFile(filepath.Join(dir, resp.Report))
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	if rep.Schema != experiments.RunReportSchemaVersion {
		t.Fatalf("report schema = %d, want %d", rep.Schema, experiments.RunReportSchemaVersion)
	}
	rl := rep.Entries[0].Roofline
	if rl == nil {
		t.Fatal("report has no roofline section")
	}
	var reportBW float64
	for _, k := range rl.Kernels {
		if k.Kernel == roofline.KernelSpMV {
			reportBW = k.AchievedBandwidthBytes
		}
	}
	if reportBW <= 0 {
		t.Fatalf("report spmv bandwidth = %g", reportBW)
	}
	gaugeBW, ok := metricValue(string(body),
		`roofline_achieved_bandwidth_bytes{kernel="spmv",fp="`+info.Fingerprint[:12]+`"}`)
	if !ok {
		t.Fatal("/metrics has no spmv bandwidth gauge for the matrix")
	}
	if gaugeBW != reportBW {
		t.Fatalf("gauge %g != report %g for the same job", gaugeBW, reportBW)
	}

	// /profiles serves a valid index even before any window is captured…
	var idx struct {
		Enabled bool `json:"enabled"`
		Windows []struct {
			ID uint64 `json:"id"`
		} `json:"windows"`
	}
	getJSON(t, hs.URL+"/profiles", &idx)
	if len(idx.Windows) != 0 {
		t.Fatalf("expected empty window list, got %d", len(idx.Windows))
	}

	// …and lists a captured window with a downloadable CPU profile.
	s.Prof().Capture(50 * time.Millisecond)
	getJSON(t, hs.URL+"/profiles", &idx)
	if len(idx.Windows) != 1 {
		t.Fatalf("expected 1 window, got %d", len(idx.Windows))
	}
	pr, err := http.Get(hs.URL + "/profiles/1/cpu")
	if err != nil || pr.StatusCode != http.StatusOK {
		t.Fatalf("/profiles/1/cpu: %v status=%v", err, pr.StatusCode)
	}
	raw, _ := io.ReadAll(pr.Body)
	pr.Body.Close()
	if _, err := prof.Parse(raw); err != nil {
		t.Fatalf("downloaded CPU profile does not parse: %v", err)
	}

	// No observability route may answer 5xx — same invariant the smoke
	// script asserts against a running daemon.
	for _, path := range []string{"/", "/metrics", "/healthz", "/profiles", "/roofline", "/traces", "/slo"} {
		r, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode >= 500 {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

// metricValue finds the sample line starting with prefix in a Prometheus
// text exposition and parses its value.
func metricValue(body, prefix string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}
