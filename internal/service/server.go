package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/mmio"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/sparse"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// maxUploadBytes bounds matrix uploads and solve request bodies.
const maxUploadBytes = 64 << 20

// Options configures a service Server. The zero value is usable: every
// capacity gets a production-shaped default.
type Options struct {
	// Metrics, when non-nil, receives the service.* series and backs the
	// mounted /metrics endpoint.
	Metrics *telemetry.Registry
	// RunsDir, when set, receives one run report per finished job
	// (<jobid>.json) and is served under /runs.
	RunsDir string

	// MatrixCap bounds the registry (default 128 matrices).
	MatrixCap int
	// CacheEntries bounds the preconditioner LRU (default 16 factors).
	CacheEntries int
	// MaxInflight bounds concurrently running jobs (default 2: the solver
	// kernels share one internal/parallel pool — the first job gets the
	// pooled workers, a second overlaps usefully inline, more would only
	// oversubscribe).
	MaxInflight int
	// QueueCap bounds jobs waiting for a slot (default 16; negative: no
	// waiting at all); beyond it the server answers 429 with Retry-After.
	QueueCap int
	// DefaultTimeout is the per-job deadline when the request does not set
	// one (default 60s).
	DefaultTimeout time.Duration
	// JobHistory bounds the in-memory job log (default 128).
	JobHistory int
	// Workers is the per-solve kernel parallelism (<=0: all CPUs).
	Workers int
	// Heartbeat is the SSE keep-alive of the mounted obs server.
	Heartbeat time.Duration

	// Logger receives the daemon's structured job-lifecycle records (every
	// line carries job_id and trace_id). Nil: records are discarded, which
	// keeps the package quiet as a library; cmd/fsaid passes a real logger.
	Logger *slog.Logger
	// TraceHistory bounds the in-memory ring of finished request traces
	// served on /traces (default 256). The JSONL export (traces.jsonl under
	// RunsDir, when set) is unbounded.
	TraceHistory int
	// SLO configures the mounted SLO monitor's latency objectives; zero
	// fields get defaults (see obs.SLOObjectives).
	SLO obs.SLOObjectives

	// Machine names the arch model the live roofline estimator prices
	// kernels against ("Skylake", "POWER9", "A64FX"; default Skylake —
	// the paper's primary evaluation node). Unknown names fall back to
	// Skylake with a logged warning rather than failing startup.
	Machine string

	// Store, when non-nil, is the durable persistence layer (fsaid
	// -data-dir): registered matrices and computed factors are written
	// through to it, deletions and evictions remove the disk entries, and
	// New rehydrates the registry and preconditioner cache from its
	// recovered entries — warm solves survive restarts. The server takes
	// ownership (Close closes it).
	Store *store.Store

	// MemSoftLimitBytes is the soft heap watermark: above it the daemon
	// degrades (sheds cold solves with 429, evicts cache entries) instead
	// of growing toward an OOM kill. 0 disables degradation.
	MemSoftLimitBytes uint64
	// MemProbe overrides the heap measurement (tests). Nil: live heap via
	// runtime.ReadMemStats.
	MemProbe func() uint64

	// BatchWindow, when positive, enables the request batcher: a warm-cache
	// FSAI-family solve holds for up to this long so concurrent requests on
	// the same (fingerprint, setup options, tol, max_iter) group into one
	// block solve — one admission slot, one matrix stream for all columns.
	// 0 (the default) disables batching; every job solves alone.
	BatchWindow time.Duration
	// BatchMax bounds the block width: a group launches immediately when it
	// reaches this many jobs (default 8 — past that the per-column vector
	// working set outgrows the cache amortization).
	BatchMax int

	// IdempotencyEntries bounds the completed-response idempotency index
	// (default 256).
	IdempotencyEntries int
	// Profiling configures the continuous-profiling sampler served at
	// /profiles; zero fields get defaults (10s window every minute, 32
	// retained windows — see prof.Options). The sampler runs only while
	// the server is Started, so handler-only embeddings stay quiet.
	Profiling prof.Options
}

func (o *Options) setDefaults() {
	if o.MatrixCap <= 0 {
		o.MatrixCap = 128
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 16
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 2
	}
	switch {
	case o.QueueCap == 0:
		o.QueueCap = 16
	case o.QueueCap < 0:
		o.QueueCap = -1 // newAdmission clamps to an empty queue
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 60 * time.Second
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 128
	}
	if o.TraceHistory <= 0 {
		o.TraceHistory = 256
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 8
	}
	if o.Logger == nil {
		o.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// Server is the solve daemon: matrix registry + preconditioner cache +
// admission-controlled job execution, with the observability endpoints
// (internal/obs) mounted on the same handler.
type Server struct {
	opt      Options
	reg      *telemetry.Registry
	log      *slog.Logger
	matrices *MatrixRegistry
	cache    *PrecondCache
	adm      *admission
	jobs     *jobLog
	watcher  *obs.SolveWatcher
	obsSrv   *obs.Server
	traces   *trace.Recorder
	slo      *obs.SLOMonitor
	profiler *prof.Sampler
	roofline *obs.RooflineMonitor
	store    *store.Store
	idem     *idemIndex
	degrade  *degrader
	batch    *batcher
	mux      *http.ServeMux
	seq      atomic.Int64

	mu sync.Mutex
	ln net.Listener
	hs *http.Server
}

// New builds a Server with all endpoints registered.
func New(opt Options) *Server {
	opt.setDefaults()
	reg := opt.Metrics
	traceJSONL := ""
	if opt.RunsDir != "" {
		traceJSONL = filepath.Join(opt.RunsDir, "traces.jsonl")
	}
	s := &Server{
		opt:      opt,
		reg:      reg,
		log:      opt.Logger,
		matrices: NewMatrixRegistry(opt.MatrixCap),
		cache:    NewPrecondCache(opt.CacheEntries, reg),
		adm:      newAdmission(opt.MaxInflight, opt.QueueCap, reg),
		jobs:     newJobLog(opt.JobHistory),
		watcher:  obs.NewSolveWatcher(),
		traces:   trace.NewRecorder(opt.TraceHistory, traceJSONL, reg),
		slo:      obs.NewSLOMonitor(opt.SLO, reg),
		mux:      http.NewServeMux(),
	}
	machine := arch.Skylake()
	if opt.Machine != "" {
		m, ok := arch.ByName(opt.Machine)
		if !ok {
			s.log.Warn("unknown machine model, using Skylake", "machine", opt.Machine)
			m = arch.Skylake()
		}
		machine = m
	}
	s.roofline = obs.NewRooflineMonitor(machine, reg)
	po := opt.Profiling
	po.Registry = reg
	// Created here so /profiles is wired for handler-only embeddings (and
	// tests), but started only in Start and stopped in Shutdown/Close: a
	// Server that is never Started spawns no goroutines.
	s.profiler = prof.NewSampler(po)
	s.obsSrv = obs.NewServer(obs.Options{
		Registry:  reg,
		Watcher:   s.watcher,
		RunsDir:   opt.RunsDir,
		Heartbeat: opt.Heartbeat,
		Traces:    s.traces,
		SLO:       s.slo,
		Profiles:  s.profiler,
		Roofline:  s.roofline,
	})
	reg.SetHelp("service_matrices", "matrices currently registered")
	reg.SetHelp("service_jobs", "finished solve jobs by status")
	reg.SetHelp("service_job_total_ns", "job wall time admission-to-response")
	reg.SetHelp("service_job_queue_wait_ns", "job time spent waiting for a slot")
	reg.SetHelp("retry_replays_total", "solve responses replayed from the idempotency index (duplicate of a completed request)")
	reg.SetHelp("retry_coalesced_total", "duplicate solve requests that waited for an in-flight execution with the same idempotency key")
	reg.SetHelp("retry_deadline_expired_total", "solve jobs cancelled because the client's propagated deadline expired (504 while queued, cancelled in flight)")
	// Touch the zero counters so the retry_* families render on /metrics
	// from the first scrape.
	reg.Counter("retry.replays_total")
	reg.Counter("retry.coalesced_total")
	reg.Counter("retry.deadline_expired_total")

	if opt.BatchWindow > 0 {
		s.batch = newBatcher(s, opt.BatchWindow, opt.BatchMax)
	}
	reg.SetHelp("batch_batches_total", "block solves executed by the request batcher (one admission slot each)")
	reg.SetHelp("batch_jobs_total", "solve jobs executed as columns of a batched block solve")
	reg.SetHelp("batch_size", "jobs per executed batch (block width)")
	reg.SetHelp("batch_window_wait_ns", "time jobs spent in the open batch window before launch")
	reg.SetHelp("batch_achieved_ai", "spmm arithmetic intensity of the last executed batch (flop/byte)")
	// Touch the zero counters so the batch_* families render on /metrics
	// from the first scrape (the smoke script asserts their presence).
	reg.Counter("batch.batches_total")
	reg.Counter("batch.jobs_total")

	s.idem = newIdemIndex(opt.IdempotencyEntries, reg)
	s.degrade = newDegrader(opt.MemSoftLimitBytes, opt.MemProbe, s.cache, reg, s.log, s.obsSrv)
	if opt.Store != nil {
		s.store = opt.Store
		s.rehydrate()
		// From here on, every cache eviction (LRU overflow, DELETE,
		// memory-pressure shedding) also removes the disk entry, so the
		// store never serves a factor the cache decided to drop.
		s.cache.SetEvictHook(func(keys ...string) {
			for _, key := range keys {
				if err := s.store.DeleteFactor(key); err != nil {
					s.log.Warn("store factor delete failed", "error", err.Error())
				}
			}
		})
	}

	s.mux.Handle("/", s.obsSrv.Handler())
	s.mux.HandleFunc("/api/v1/matrices", s.handleMatrices)
	s.mux.HandleFunc("/api/v1/matrices/", s.handleMatrix)
	s.mux.HandleFunc("/api/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	return s
}

// Handler returns the full daemon handler (API + observability endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Obs exposes the mounted observability server (health overrides, tests).
func (s *Server) Obs() *obs.Server { return s.obsSrv }

// Traces exposes the request-trace recorder (tests, embedding).
func (s *Server) Traces() *trace.Recorder { return s.traces }

// SLO exposes the mounted SLO monitor (tests, embedding).
func (s *Server) SLO() *obs.SLOMonitor { return s.slo }

// Prof exposes the continuous-profiling sampler (tests, embedding). It is
// running only between Start and Shutdown/Close; embedders that use only
// Handler may Start/Stop it themselves.
func (s *Server) Prof() *prof.Sampler { return s.profiler }

// Roofline exposes the live roofline monitor (tests, embedding).
func (s *Server) Roofline() *obs.RooflineMonitor { return s.roofline }

// Store exposes the durable store (nil without one).
func (s *Server) Store() *store.Store { return s.store }

// rehydrate replays the store's recovered entries into the registry and
// the preconditioner cache: the crash-recovery moment the whole layer
// exists for. Every recovered entry was checksum-verified at store.Open;
// a factor entry only rehydrates when its matrix landed in the registry,
// and the reconstructed preconditioner is bit-identical to the one
// computed before the restart.
func (s *Server) rehydrate() {
	matrices, factors := s.store.DrainRecovered()
	nm := 0
	for _, rm := range matrices {
		if _, err := s.matrices.Register(rm.A, rm.Name); err != nil {
			s.log.Warn("recovered matrix not registered", "name", rm.Name, "error", err.Error())
			continue
		}
		nm++
	}
	s.reg.Gauge("service.matrices").Set(float64(s.matrices.Len()))
	nf := 0
	for _, f := range factors {
		if _, ok := s.matrices.Get(f.Fingerprint); !ok {
			continue
		}
		p := fsai.FromFactors(f.G, f.GT, f.Base, f.Final, f.Stats, s.opt.Workers)
		s.cache.Put(f.Key, &CachedPrecond{P: p, SetupNS: f.SetupNS})
		nf++
	}
	if nm > 0 || nf > 0 {
		s.log.Info("state rehydrated from store",
			"dir", s.store.Dir(), "matrices", nm, "factors", nf)
	}
}

// Start listens on addr (":0" picks a free port) and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.ln, s.hs = ln, hs
	s.mu.Unlock()
	// The bound address names this process in distributed traces: one
	// routed request's trace id resolves on both the router ("router") and
	// the shard that executed (this address).
	s.traces.SetNode(ln.Addr().String())
	s.profiler.Start()
	go func() { _ = hs.Serve(ln) }()
	return ln.Addr(), nil
}

// Shutdown gracefully stops the daemon: the listener closes, streaming
// observability handlers are told to end, and in-flight solve jobs drain
// (or ctx expires). Queued jobs that have not been admitted yet fail with
// their connection.
func (s *Server) Shutdown(ctx context.Context) error {
	// End the SSE streams first — they would otherwise hold the drain open
	// until their clients disconnected.
	s.profiler.Stop()
	obsErr := s.obsSrv.Shutdown(ctx)
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	if hs != nil {
		if err := hs.Shutdown(ctx); err != nil {
			s.closeStore()
			return err
		}
	}
	s.closeStore()
	return obsErr
}

// Close abruptly stops a Started server.
func (s *Server) Close() error {
	s.profiler.Stop()
	_ = s.obsSrv.Shutdown(context.Background())
	s.mu.Lock()
	hs := s.hs
	s.hs, s.ln = nil, nil
	s.mu.Unlock()
	var err error
	if hs != nil {
		err = hs.Close()
	}
	s.closeStore()
	return err
}

// closeStore releases the store's manifest log handle once all jobs are
// done writing through.
func (s *Server) closeStore() {
	if s.store != nil {
		_ = s.store.Close()
	}
}

// normalize fills the request defaults in place and validates the knobs it
// can check without the matrix.
func normalizeSolveRequest(req *SolveRequest) error {
	if req.Matrix == "" {
		return errors.New("missing \"matrix\"")
	}
	if req.Precond == "" {
		req.Precond = "fsaie"
	}
	switch req.Precond {
	case "none", "jacobi", "fsai", "fsaie-sp", "fsaie", "adaptive":
	default:
		return fmt.Errorf("unknown preconditioner %q", req.Precond)
	}
	if req.Resilient && resilience.Chain(req.Precond) == nil {
		return fmt.Errorf("resilient solves need a recovery rung, not %q", req.Precond)
	}
	if req.SetupOnly {
		switch {
		case req.Resilient:
			return errors.New("setup_only is incompatible with resilient (the recovery chain owns setup)")
		case req.Precond == "none" || req.Precond == "jacobi":
			return fmt.Errorf("setup_only needs a cacheable FSAI-family preconditioner, not %q", req.Precond)
		}
	}
	if req.Filter == 0 {
		req.Filter = 0.01
	} else if req.Filter < 0 {
		req.Filter = 0 // explicit "no filtering"
	}
	if req.LineBytes <= 0 {
		req.LineBytes = 64
	}
	if req.PatternPower <= 0 {
		req.PatternPower = 1
	}
	if req.Tol <= 0 {
		req.Tol = 1e-8
	}
	if req.MaxIter <= 0 {
		req.MaxIter = 10000
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// validateOperator applies the same SPD-shaped gate as cmd/fsaisolve.
func validateOperator(a *sparse.CSR) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("matrix is %dx%d, need square", a.Rows, a.Cols)
	}
	if a.Rows == 0 {
		return errors.New("matrix is empty")
	}
	if !a.IsSymmetric(1e-10 * a.MaxNorm()) {
		return errors.New("matrix is not symmetric; PCG requires SPD input")
	}
	return nil
}

func (s *Server) handleMatrices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.matrices.List())
	case http.MethodPost:
		s.registerMatrix(w, r)
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

func (s *Server) registerMatrix(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
	var a *sparse.CSR
	name := r.URL.Query().Get("name")
	if strings.Contains(r.Header.Get("Content-Type"), "json") {
		var req RegisterRequest
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad register request: %v", err)
			return
		}
		spec, ok := matgen.ByName(req.Matgen)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown matgen spec %q", req.Matgen)
			return
		}
		a = spec.Generate()
		if req.Name != "" {
			name = req.Name
		} else if name == "" {
			name = req.Matgen
		}
	} else {
		var err error
		a, err = mmio.Read(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad MatrixMarket upload: %v", err)
			return
		}
	}
	if err := validateOperator(a); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	info, err := s.matrices.Register(a, name)
	switch {
	case errors.Is(err, ErrRegistryFull):
		writeError(w, http.StatusInsufficientStorage, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	s.reg.Gauge("service.matrices").Set(float64(s.matrices.Len()))
	if s.store != nil {
		// Write-through is best-effort: a store error costs durability, not
		// the registration (the store counts it in store_errors_total).
		if serr := s.store.PutMatrix(a, info.Name); serr != nil {
			s.log.Warn("store matrix write failed",
				"fingerprint", shortFP(info.Fingerprint), "error", serr.Error())
		}
	}
	code := http.StatusOK
	if info.Created {
		code = http.StatusCreated
	}
	writeJSON(w, code, info)
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	ref := strings.TrimPrefix(r.URL.Path, "/api/v1/matrices/")
	if ref == "" {
		writeError(w, http.StatusNotFound, "missing matrix reference")
		return
	}
	switch r.Method {
	case http.MethodGet:
		rm, ok := s.matrices.Get(ref)
		if !ok {
			writeError(w, http.StatusNotFound, "matrix %q not registered", ref)
			return
		}
		writeJSON(w, http.StatusOK, rm.Info)
	case http.MethodDelete:
		fp, ok := s.matrices.Remove(ref)
		if !ok {
			writeError(w, http.StatusNotFound, "matrix %q not registered", ref)
			return
		}
		// Eviction first: the cache's evict hook deletes the factor disk
		// entries, then the matrix entry goes. After this, neither memory
		// nor disk can resurrect the operator.
		s.cache.EvictMatrix(fp)
		if s.store != nil {
			if serr := s.store.DeleteMatrix(fp); serr != nil {
				s.log.Warn("store matrix delete failed",
					"fingerprint", shortFP(fp), "error", serr.Error())
			}
		}
		s.reg.Gauge("service.matrices").Set(float64(s.matrices.Len()))
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	ji, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job %q not found", id)
		return
	}
	writeJSON(w, http.StatusOK, ji)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Matrices: s.matrices.Len(),
		Cache:    s.cache.Stats(),
		Queue:    s.adm.stats(),
		Degraded: s.degrade.stateName(),
	}
	if s.store != nil {
		ss := s.store.Stats()
		st.Store = &StoreStats{
			Matrices: ss.Matrices,
			Factors:  ss.Factors,
			Bytes:    ss.Bytes,
			Corrupt:  ss.Corrupt,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad solve request: %v", err)
		return
	}
	if err := normalizeSolveRequest(&req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rm, ok := s.matrices.Get(req.Matrix)
	if !ok {
		writeError(w, http.StatusNotFound, "matrix %q not registered (POST /api/v1/matrices first)", req.Matrix)
		return
	}
	if len(req.RHS) != 0 && len(req.RHS) != rm.A.Rows {
		writeError(w, http.StatusBadRequest, "rhs has %d values, matrix has %d rows", len(req.RHS), rm.A.Rows)
		return
	}

	// Idempotency: a duplicate of a completed request replays its stored
	// response; a duplicate of an in-flight one waits for the original
	// execution. Either way the solve runs at most once server-side. The
	// owner registers completion via deferred finish below — failure paths
	// abort the claim so transient errors stay retryable.
	var idemEnt *idemEntry
	var finalResp *SolveResponse
	if key := r.Header.Get(HeaderIdempotencyKey); key != "" {
		ent, owner := s.idem.claim(key)
		if !owner {
			s.replayIdempotent(w, r, ent)
			return
		}
		idemEnt = ent
		defer func() {
			if finalResp != nil {
				s.idem.complete(idemEnt, finalResp)
			} else {
				s.idem.abort(idemEnt)
			}
		}()
	}

	// Deadline propagation: the client's remaining budget travels as
	// relative milliseconds and bounds the job from THIS point — queue wait
	// included. A job whose caller gave up must stop occupying the queue
	// and must not start (or keep running) CG.
	reqCtx := r.Context()
	clientDeadline := false
	if h := r.Header.Get(HeaderDeadlineMS); h != "" {
		if ms, perr := strconv.ParseInt(h, 10, 64); perr == nil && ms > 0 {
			var cancel context.CancelFunc
			reqCtx, cancel = context.WithTimeout(reqCtx, time.Duration(ms)*time.Millisecond)
			defer cancel()
			clientDeadline = true
		} else {
			writeError(w, http.StatusBadRequest, "bad %s header %q", HeaderDeadlineMS, h)
			return
		}
	}

	id := fmt.Sprintf("j-%06d", s.seq.Add(1))

	// Establish the job's trace context: continue the client's trace when it
	// sent a well-formed traceparent (our root span becomes a child of its
	// span), otherwise originate a fresh trace. A malformed header is counted
	// and logged but never fails the job — tracing must not break solving.
	tc, parentSpan := trace.New(), ""
	if h := r.Header.Get("traceparent"); h != "" {
		if inbound, perr := trace.ParseTraceparent(h); perr == nil {
			tc, parentSpan = inbound.Child(), inbound.SpanID
		} else {
			s.traces.MalformedHeader()
			s.log.Warn("ignoring malformed traceparent header",
				"job_id", id, "error", perr.Error())
		}
	}
	w.Header().Set("traceparent", tc.Traceparent())
	logw := s.log.With("job_id", id, "trace_id", tc.TraceID)

	// One tracer per job: span trees of concurrent jobs must never mix, and
	// the stack-based tracer nests correctly only on its own goroutine.
	tr := telemetry.NewTracer(nil)
	root := tr.StartSpan("solve-request")
	root.SetAttr("job_id", id)
	root.SetAttr("matrix", rm.Info.Fingerprint)
	root.SetAttr("precond", req.Precond)

	enqueued := time.Now()
	ji := JobInfo{
		ID:         id,
		TraceID:    tc.TraceID,
		Matrix:     rm.Info.Fingerprint,
		Precond:    req.Precond,
		State:      JobQueued,
		EnqueuedAt: enqueued.UTC().Format(time.RFC3339Nano),
	}
	s.jobs.put(ji)
	logw.Info("job enqueued",
		"matrix", shortFP(rm.Info.Fingerprint), "precond", req.Precond)

	// Memory-watermark degradation gate: under pressure only solves that
	// skip the allocation-heavy setup phase (warm cache hits, none/jacobi)
	// are admitted; under critical everything sheds. Shedding answers 429
	// exactly like queue saturation, so retrying clients back off the same
	// way.
	if state, shed := s.degrade.admit(s.solveIsWarm(&req, rm)); shed {
		ji.State = JobRejected
		ji.Err = fmt.Sprintf("shed: memory %s", degradeName(state))
		ji.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
		s.jobs.put(ji)
		root.SetAttr("outcome", JobRejected)
		root.End()
		s.recordTrace(tr, tc, parentSpan, &ji, JobRejected)
		logw.Warn("job shed under memory pressure", "state", degradeName(state))
		secs := int(math.Ceil(s.adm.retryAfter().Seconds()))
		w.Header().Set("Retry-After", fmt.Sprint(secs))
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{
			Error:       fmt.Sprintf("service: shedding load, memory state %q", degradeName(state)),
			RetryAfterS: secs, JobID: id, TraceID: tc.TraceID})
		return
	}

	// Batched path: a warm-cache FSAI solve may group with concurrent
	// requests on the same (fingerprint, setup options, tol, max_iter) into
	// one block solve over a single admission slot. Results are bit-identical
	// to the unbatched path; only scheduling changes. Idempotency completion
	// stays with this handler via finalResp.
	if s.batch != nil && s.batch.eligible(&req, rm) {
		finalResp = s.solveBatched(w, reqCtx, clientDeadline, id, rm, &req,
			tc, parentSpan, tr, root, logw, enqueued, &ji)
		return
	}

	// The admission wait runs under the job's pprof labels with
	// phase=admission, so a captured CPU window shows queueing as its own
	// attributed slice, distinct from setup and CG time.
	admSpan := tr.StartSpan("admission-wait")
	var (
		release func()
		err     error
	)
	prof.Do(reqCtx, func(lctx context.Context) {
		release, err = s.adm.acquire(lctx)
	}, prof.LabelJobID, id, prof.LabelTraceID, tc.TraceID,
		prof.LabelFingerprint, shortFP(rm.Info.Fingerprint),
		prof.LabelPhase, prof.PhaseAdmission)
	admSpan.End()
	if err != nil {
		ji.State = JobRejected
		ji.Err = err.Error()
		ji.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
		s.jobs.put(ji)
		root.SetAttr("outcome", JobRejected)
		root.End()
		s.recordTrace(tr, tc, parentSpan, &ji, JobRejected)
		logw.Warn("job rejected", "error", err.Error())
		var sat *SaturatedError
		if errors.As(err, &sat) {
			secs := int(math.Ceil(sat.RetryAfter.Seconds()))
			w.Header().Set("Retry-After", fmt.Sprint(secs))
			writeJSON(w, http.StatusTooManyRequests, ErrorBody{
				Error: err.Error(), RetryAfterS: secs, JobID: id, TraceID: tc.TraceID})
			return
		}
		if clientDeadline && errors.Is(err, context.DeadlineExceeded) {
			// The client's propagated budget ran out while the job was still
			// queue-waiting: give back the queue spot and say so — 504, the
			// deadline-specific "the server did not finish in time" status.
			s.reg.Counter("retry.deadline_expired_total").Inc()
			logw.Warn("client deadline expired while queued")
			writeJSON(w, http.StatusGatewayTimeout, ErrorBody{
				Error: "client deadline expired while queued", JobID: id, TraceID: tc.TraceID})
			return
		}
		// The client went away while queued; the body is written for the log.
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: err.Error(), JobID: id, TraceID: tc.TraceID})
		return
	}
	defer release()

	ji.QueueWaitNS = time.Since(enqueued).Nanoseconds()
	ji.State = JobRunning
	s.jobs.put(ji)
	s.reg.Histogram("service.job.queue_wait_ns", telemetry.ExpBuckets(1e4, 4, 12)).
		Observe(float64(ji.QueueWaitNS))

	timeout := s.opt.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	// reqCtx already carries the client's propagated deadline (when sent),
	// so the effective in-flight budget is min(client deadline, timeout):
	// whichever fires first cancels queue-era CG via krylov's Ctx path.
	ctx, cancel := context.WithTimeout(reqCtx, timeout)
	defer cancel()
	// Everything below the handler reads the identifiers and the span
	// tracer from the context — no new parameters through cache/krylov.
	ctx = trace.NewContext(ctx, tc, tr)

	if req.HoldMS > 0 {
		// Admission-control drill: occupy the slot without burning CPU.
		holdSpan := tr.StartSpan("hold")
		hold := time.NewTimer(time.Duration(req.HoldMS) * time.Millisecond)
		select {
		case <-hold.C:
		case <-ctx.Done():
			hold.Stop()
		}
		holdSpan.End()
	}

	// The whole job body carries job_id/trace_id/fingerprint pprof labels;
	// setup and CG add their phase labels underneath (internal/core,
	// internal/krylov), and the kernel pool workers adopt them per dispatch.
	var (
		resp *SolveResponse
		jerr error
	)
	prof.WithJobLabels(ctx, id, tc.TraceID, shortFP(rm.Info.Fingerprint), func(lctx context.Context) {
		resp, jerr = s.runJob(lctx, id, rm, &req, &ji)
	})
	total := time.Since(enqueued)
	ji.TotalNS = total.Nanoseconds()
	ji.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
	s.adm.observe(total.Nanoseconds())
	s.reg.Histogram("service.job.total_ns", telemetry.ExpBuckets(1e6, 2, 24)).
		Observe(float64(total.Nanoseconds()))
	if jerr != nil {
		ji.State = JobFailed
		ji.Err = jerr.Error()
		s.jobs.put(ji)
		s.reg.Counter(`service.jobs{status="setup-error"}`).Inc()
		root.SetAttr("outcome", JobFailed)
		root.End()
		s.recordTrace(tr, tc, parentSpan, &ji, JobFailed)
		logw.Error("job failed", "error", jerr.Error())
		writeJSON(w, http.StatusInternalServerError, ErrorBody{
			Error: jerr.Error(), JobID: id, TraceID: tc.TraceID})
		return
	}
	resp.TotalNS = total.Nanoseconds()
	resp.QueueWaitNS = ji.QueueWaitNS
	resp.TraceID = tc.TraceID
	ji.State = JobDone
	ji.Cache = resp.Cache
	ji.Status = resp.Status
	ji.Iterations = resp.Iterations
	ji.Converged = resp.Converged
	ji.RelRes = resp.RelRes
	ji.SetupNS = resp.SetupNS
	ji.SolveNS = resp.SolveNS
	s.jobs.put(ji)
	s.reg.Counter(fmt.Sprintf("service.jobs{status=%q}", resp.Status)).Inc()
	if clientDeadline && errors.Is(reqCtx.Err(), context.DeadlineExceeded) {
		// The client's budget expired mid-flight; the cancellation already
		// stopped CG (status "cancelled"), this just attributes it.
		s.reg.Counter("retry.deadline_expired_total").Inc()
		logw.Warn("client deadline expired in flight", "status", resp.Status)
	}
	root.SetAttr("outcome", resp.Status)
	root.SetAttr("cache", resp.Cache)
	root.End()
	s.recordTrace(tr, tc, parentSpan, &ji, resp.Status)
	logw.Info("job done",
		"status", resp.Status, "cache", resp.Cache, "iterations", resp.Iterations,
		"converged", resp.Converged, "queue_wait_ns", resp.QueueWaitNS,
		"setup_ns", resp.SetupNS, "solve_ns", resp.SolveNS, "total_ns", resp.TotalNS)
	finalResp = resp
	writeJSON(w, http.StatusOK, resp)
}

// solveIsWarm reports whether req would skip the allocation-heavy setup
// phase: an FSAI-family factor already resident in the cache, or a
// preconditioner too cheap to matter (none/jacobi). Resilient solves bypass
// the cache and always count as cold.
func (s *Server) solveIsWarm(req *SolveRequest, rm *RegisteredMatrix) bool {
	if req.Resilient {
		return false
	}
	if req.Precond == "none" || req.Precond == "jacobi" {
		return true
	}
	return s.cache.Contains(PrecondKey(rm.Info.Fingerprint, req))
}

// replayIdempotent serves a request whose idempotency key another request
// owns or owned: wait for the original execution (bounded by this request's
// context) and replay its stored response. A nil stored response means the
// original attempt failed without a result — answer 503 so the client's
// retry loop tries again with the key now unclaimed.
func (s *Server) replayIdempotent(w http.ResponseWriter, r *http.Request, ent *idemEntry) {
	completed := false
	select {
	case <-ent.done:
		completed = true
	default:
	}
	resp, err := s.idem.await(r.Context(), ent)
	switch {
	case err != nil:
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: "gave up waiting for the original request with this idempotency key"})
	case resp == nil:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: "original request with this idempotency key failed; retry"})
	default:
		if completed {
			s.reg.Counter("retry.replays_total").Inc()
		} else {
			s.reg.Counter("retry.coalesced_total").Inc()
		}
		s.log.Info("idempotent replay", "job_id", resp.JobID, "trace_id", resp.TraceID,
			"coalesced", !completed)
		w.Header().Set(HeaderIdempotentReplay, "1")
		writeJSON(w, http.StatusOK, replayCopy(resp))
	}
}

// recordTrace snapshots the job's finished span tree into the recorder.
// Called after root.End(), on every outcome path — rejected and failed jobs
// leave traces too, so a client holding only an error body's trace id can
// still see where the request spent its time.
func (s *Server) recordTrace(tr *telemetry.Tracer, tc trace.Context, parentSpan string, ji *JobInfo, status string) {
	report := tr.Report()
	if len(report) == 0 {
		return
	}
	s.traces.Record(&trace.Trace{
		TraceID:      tc.TraceID,
		SpanID:       tc.SpanID,
		ParentSpanID: parentSpan,
		JobID:        ji.ID,
		Fingerprint:  ji.Matrix,
		Name:         ji.Precond,
		Status:       status,
		Root:         report[0],
	})
}

// runJob executes one admitted solve job: preconditioner via cache (or the
// resilience chain), PCG, run report. The returned error means the job
// could not produce a result at all (setup failure); a non-converged solve
// is a normal response with Converged=false.
func (s *Server) runJob(ctx context.Context, id string, rm *RegisteredMatrix, req *SolveRequest, ji *JobInfo) (*SolveResponse, error) {
	a := rm.A
	b := req.RHS
	if len(b) == 0 {
		b = make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
	}
	x := make([]float64, a.Rows)

	fo := fsai.Options{
		Variant:      fsai.VariantFull,
		Filter:       req.Filter,
		LineBytes:    req.LineBytes,
		PatternPower: req.PatternPower,
		ThresholdTau: req.Tau,
		MaxRowNNZ:    512,
		Workers:      s.opt.Workers,
		// The job's span tracer: FSAI setup phases (base-pattern, extend,
		// precalc, …) become children of the request's span tree.
		Tracer: trace.TracerFromContext(ctx),
		// The job's label context: the setup runs under phase=setup pprof
		// labels, attributable in /profiles windows.
		Ctx: ctx,
	}
	ko := krylov.Options{
		Tol:           req.Tol,
		MaxIter:       req.MaxIter,
		Workers:       s.opt.Workers,
		CollectTiming: true,
		Metrics:       s.reg,
		Ctx:           ctx,
	}
	label := rm.Info.Name
	if label == "" {
		label = shortFP(rm.Info.Fingerprint)
	}
	s.watcher.Begin(fmt.Sprintf("%s/%s", label, req.Precond), req.Tol, req.MaxIter)
	ko.Progress = s.watcher.Progress
	ko.ProgressDetail = s.watcher.ProgressDetail

	resp := &SolveResponse{JobID: id, Matrix: rm.Info.Fingerprint, Precond: req.Precond}
	var (
		res     krylov.Result
		g       *fsai.Preconditioner
		rout    *resilience.Outcome
		setupNS int64
		solveNS int64
	)

	if req.SetupOnly {
		// Cache-warming primitive (the cluster router's replication path):
		// build or find the factor, write it through to the store, run no
		// CG. The watcher is never engaged — a warm-up is not a solve and
		// must not flip /healthz or the SLO series.
		return s.runSetupOnly(ctx, id, rm, req, resp, fo, ji)
	}

	switch {
	case req.Resilient:
		resp.Cache = CacheBypass
		out, rerr := resilience.Solve(ctx, a, x, b, resilience.Options{
			Precond: req.Precond,
			Setup:   fo,
			Solve:   ko,
			Metrics: s.reg,
		})
		if out == nil {
			s.watcher.End(krylov.Result{})
			return nil, fmt.Errorf("resilient solve: %v", rerr)
		}
		if rerr != nil && !errors.Is(rerr, resilience.ErrNotConverged) &&
			!errors.Is(rerr, context.Canceled) && !errors.Is(rerr, context.DeadlineExceeded) {
			s.watcher.End(out.Result)
			return nil, fmt.Errorf("resilient solve: %v", rerr)
		}
		res, g, rout = out.Result, out.FSAI, out
		resp.Precond = out.Precond
		for _, at := range out.Log.Attempts {
			if at.Stage == "setup" {
				setupNS += at.NS
			} else {
				solveNS += at.NS
			}
		}
		if out.Recovered && res.Converged {
			s.obsSrv.SetHealth(obs.HealthDegraded, fmt.Sprintf(
				"job %s recovered on %q after %d retries and %d fallbacks",
				id, out.Precond, out.Log.Retries, out.Log.Fallbacks))
		}

	case req.Precond == "none" || req.Precond == "jacobi":
		resp.Cache = CacheUncached
		t0 := time.Now()
		var m krylov.Preconditioner = krylov.Identity{}
		if req.Precond == "jacobi" {
			m = krylov.NewJacobi(a)
		}
		setupNS = time.Since(t0).Nanoseconds()
		t0 = time.Now()
		res = krylov.Solve(a, x, b, m, ko)
		solveNS = time.Since(t0).Nanoseconds()

	default: // cacheable FSAI family
		key := PrecondKey(rm.Info.Fingerprint, req)
		cacheSpan := trace.StartSpan(ctx, "precond-cache")
		entry, hit, err := s.cache.GetOrBuild(ctx, key, func() (*CachedPrecond, error) {
			// The build runs on this job's goroutine, so the setup spans
			// (via fo.Tracer) nest under this job's precond-cache span;
			// coalesced waiters get the factor without foreign spans.
			t0 := time.Now()
			p, err := buildFSAIFamily(req.Precond, a, fo)
			if err != nil {
				return nil, err
			}
			return &CachedPrecond{P: p, SetupNS: time.Since(t0).Nanoseconds()}, nil
		})
		if err != nil {
			cacheSpan.SetAttr("cache", "error")
			cacheSpan.End()
			s.watcher.End(krylov.Result{})
			return nil, fmt.Errorf("preconditioner: %v", err)
		}
		if hit {
			resp.Cache = CacheHit
			setupNS = 0 // the whole point: warm solves pay no setup
		} else {
			resp.Cache = CacheMiss
			setupNS = entry.SetupNS
			if s.store != nil {
				// Durability write-through: the factor this job just paid for
				// survives a crash. Best-effort — a store failure costs the
				// next restart a recomputation, never this response.
				if serr := s.store.PutFactor(key, rm.Info.Fingerprint, entry.P, entry.SetupNS); serr != nil {
					s.log.Warn("store factor write failed",
						"job_id", id, "matrix", shortFP(rm.Info.Fingerprint), "error", serr.Error())
				}
			}
			// A concurrent DELETE may have unregistered the matrix while this
			// job was building. Unregistering starts with the registry
			// removal, so if the matrix is still registered here, any delete
			// in flight will sweep our cache/store writes itself; if it is
			// gone, the delete may already have swept — redo the sweep so
			// nothing survives an unregister.
			if _, ok := s.matrices.Get(rm.Info.Fingerprint); !ok {
				s.cache.EvictMatrix(rm.Info.Fingerprint)
				if s.store != nil {
					_ = s.store.DeleteMatrix(rm.Info.Fingerprint)
				}
			}
		}
		cacheSpan.SetAttr("cache", resp.Cache)
		cacheSpan.End()
		g = entry.P
		m := entry.P.CloneForApply(s.opt.Workers)
		t0 := time.Now()
		res = krylov.Solve(a, x, b, m, ko)
		solveNS = time.Since(t0).Nanoseconds()

		// Iteration-count anomaly detection: the first converged solve on
		// this factor defines the fingerprint's baseline; warm solves that
		// drift far above it get flagged — the cache still "works" (hit,
		// zero setup) but no longer preconditions like it used to.
		if hit && res.Converged {
			if base := entry.BaselineIters(); IterationAnomaly(base, res.Iterations) {
				resp.IterAnomaly = true
				s.log.Warn("iteration-count anomaly on warm solve",
					"job_id", id, "matrix", shortFP(rm.Info.Fingerprint),
					"baseline_iters", base, "iterations", res.Iterations)
			}
		}
		if res.Converged {
			entry.SetBaselineIters(res.Iterations)
		}
	}
	s.watcher.End(res)

	// Live roofline placement: price the solve's kernel classes against the
	// machine model and fold the SpMV bandwidth into the matrix's rolling
	// baseline. The same numbers go to the roofline_* gauges, the response
	// and the run report, so all three agree for this job id.
	var rsol *obs.RooflineSolve
	if t := res.Timing; res.Iterations > 0 && t != (krylov.Timing{}) {
		var gm *sparse.CSR
		if g != nil {
			gm = g.G
		}
		est := roofline.SolveEstimate(a, gm, res.Iterations,
			t.SpMV.Nanoseconds(), t.Precond.Nanoseconds(), t.BLAS1.Nanoseconds(),
			s.roofline.Machine())
		if len(est) > 0 {
			rs := s.roofline.Observe(id, rm.Info.Fingerprint, res.Iterations, est)
			rsol = &rs
			resp.LowBandwidth = rs.LowBandwidth
			if rs.LowBandwidth {
				s.log.Warn("solve bandwidth >30% below matrix baseline",
					"job_id", id, "matrix", shortFP(rm.Info.Fingerprint),
					"baseline_bw", rs.BaselineBandwidthBytes)
			}
		}
	}

	resp.Iterations = res.Iterations
	resp.Converged = res.Converged
	resp.Status = res.Status.String()
	resp.RelRes = res.RelResidual
	resp.SetupNS = setupNS
	resp.SolveNS = solveNS
	if tcc, ok := trace.FromContext(ctx); ok {
		resp.TraceID = tcc.TraceID
	}
	if req.ReturnSolution {
		resp.X = x
	}

	// SLO accounting happens before the report is written so the report's
	// slo section reflects a window that includes this very solve.
	warm := resp.Cache == CacheHit
	s.slo.ObserveSolve(rm.Info.Fingerprint, warm, setupNS+solveNS, ji.QueueWaitNS)
	if resp.IterAnomaly {
		s.slo.RecordIterationAnomaly(rm.Info.Fingerprint)
	}

	if s.opt.RunsDir != "" {
		resp.Report = s.writeJobReport(id, rm, req, resp, g, rout, res, ji, rsol)
	}
	return resp, nil
}

// runSetupOnly executes a setup_only job: the preconditioner lands in the
// cache (and the store) and the response reports the cache outcome, but no
// CG runs. A warm fleet replica answers these in microseconds — the router
// calls it repeatedly without occupying shard solve capacity for long.
func (s *Server) runSetupOnly(ctx context.Context, id string, rm *RegisteredMatrix, req *SolveRequest, resp *SolveResponse, fo fsai.Options, ji *JobInfo) (*SolveResponse, error) {
	key := PrecondKey(rm.Info.Fingerprint, req)
	cacheSpan := trace.StartSpan(ctx, "precond-cache")
	entry, hit, err := s.cache.GetOrBuild(ctx, key, func() (*CachedPrecond, error) {
		t0 := time.Now()
		p, err := buildFSAIFamily(req.Precond, rm.A, fo)
		if err != nil {
			return nil, err
		}
		return &CachedPrecond{P: p, SetupNS: time.Since(t0).Nanoseconds()}, nil
	})
	if err != nil {
		cacheSpan.SetAttr("cache", "error")
		cacheSpan.End()
		return nil, fmt.Errorf("preconditioner: %v", err)
	}
	if hit {
		resp.Cache = CacheHit
	} else {
		resp.Cache = CacheMiss
		resp.SetupNS = entry.SetupNS
		if s.store != nil {
			if serr := s.store.PutFactor(key, rm.Info.Fingerprint, entry.P, entry.SetupNS); serr != nil {
				s.log.Warn("store factor write failed",
					"job_id", id, "matrix", shortFP(rm.Info.Fingerprint), "error", serr.Error())
			}
		}
		// Same delete-race sweep as the solving path: if a concurrent
		// unregister removed the matrix while we built, nothing of ours may
		// survive it.
		if _, ok := s.matrices.Get(rm.Info.Fingerprint); !ok {
			s.cache.EvictMatrix(rm.Info.Fingerprint)
			if s.store != nil {
				_ = s.store.DeleteMatrix(rm.Info.Fingerprint)
			}
		}
	}
	cacheSpan.SetAttr("cache", resp.Cache)
	cacheSpan.SetAttr("setup_only", "1")
	cacheSpan.End()
	resp.Status = StatusSetupOnly
	if tcc, ok := trace.FromContext(ctx); ok {
		resp.TraceID = tcc.TraceID
	}
	if s.opt.RunsDir != "" {
		resp.Report = s.writeJobReport(id, rm, req, resp, entry.P, nil, krylov.Result{}, ji, nil)
	}
	return resp, nil
}

// buildFSAIFamily constructs the cacheable preconditioners.
func buildFSAIFamily(name string, a *sparse.CSR, fo fsai.Options) (*fsai.Preconditioner, error) {
	switch name {
	case "fsai":
		fo.Variant = fsai.VariantFSAI
	case "fsaie-sp":
		fo.Variant = fsai.VariantSp
	case "fsaie":
		fo.Variant = fsai.VariantFull
	case "adaptive":
		return fsai.ComputeAdaptive(a, fsai.AdaptiveOptions{
			MaxPerRow:   12,
			Tol:         0.02,
			CacheExtend: fo.LineBytes,
			AlignElems:  fo.AlignElems,
			Filter:      fo.Filter,
			Workers:     fo.Workers,
		})
	default:
		return nil, fmt.Errorf("%q is not an FSAI-family preconditioner", name)
	}
	return fsai.Compute(a, fo)
}

// writeJobReport emits the job's run report into RunsDir, returning the
// file name ("" on write failure — reports are best-effort; the job result
// already went to the client).
func (s *Server) writeJobReport(id string, rm *RegisteredMatrix, req *SolveRequest, resp *SolveResponse, g *fsai.Preconditioner, rout *resilience.Outcome, res krylov.Result, ji *JobInfo, rsol *obs.RooflineSolve) string {
	label := rm.Info.Name
	if label == "" {
		label = shortFP(rm.Info.Fingerprint)
	}
	entry := experiments.RunEntry{
		Matrix:      label,
		Rows:        rm.Info.Rows,
		NNZ:         rm.Info.NNZ,
		Variant:     resp.Precond,
		Filter:      req.Filter,
		Iterations:  resp.Iterations,
		Converged:   resp.Converged,
		Status:      resp.Status,
		SetupWallNS: resp.SetupNS,
		SolveWallNS: resp.SolveNS,
		Service: &experiments.RunService{
			JobID:       id,
			TraceID:     resp.TraceID,
			Fingerprint: rm.Info.Fingerprint,
			Cache:       resp.Cache,
			QueueWaitNS: ji.QueueWaitNS,
		},
	}
	// The slo section snapshots the fingerprint's solve-latency series
	// (including this job's own observation) so a report alone answers
	// "was this solve within objective, and how much budget is left".
	kind := obs.SLOColdSolve
	if resp.Cache == CacheHit {
		kind = obs.SLOWarmSolve
	}
	if st, ok := s.slo.State(rm.Info.Fingerprint, kind); ok {
		entry.SLO = &experiments.RunSLO{
			Kind:            st.SLO,
			ObjectiveNS:     st.ObjectiveNS,
			LatencyNS:       resp.SetupNS + resp.SolveNS,
			Met:             resp.SetupNS+resp.SolveNS <= st.ObjectiveNS,
			BurnRate:        st.BurnRate,
			BudgetRemaining: st.BudgetRemaining,
			IterAnomaly:     resp.IterAnomaly,
		}
	}
	if t := res.Timing; t != (krylov.Timing{}) {
		entry.Timing = &experiments.RunTiming{
			SpMVNS:    t.SpMV.Nanoseconds(),
			PrecondNS: t.Precond.Nanoseconds(),
			BLAS1NS:   t.BLAS1.Nanoseconds(),
			TotalNS:   t.Total.Nanoseconds(),
		}
	}
	if rsol != nil {
		// The exact values the roofline_* gauges exported for this job.
		entry.Roofline = &experiments.RunRoofline{
			Machine:                rsol.Machine,
			Kernels:                rsol.Kernels,
			BaselineBandwidthBytes: rsol.BaselineBandwidthBytes,
			LowBandwidth:           rsol.LowBandwidth,
		}
	}
	if g != nil {
		entry.NNZG = g.NNZ()
		entry.ExtPct = g.ExtensionPct()
		entry.SetupPhases = g.Stats.Phases
	}
	if bi := resp.Batch; bi != nil {
		// Batched job: the entry records the block width and how the batch
		// amortized the solve (schema v7). SolveWallNS above is the whole
		// block's wall time; per_rhs_ns is this job's amortized share.
		entry.NRHS = bi.Size
		entry.Batch = &experiments.RunBatch{
			ID:           bi.ID,
			Size:         bi.Size,
			Column:       bi.Column,
			WindowWaitNS: bi.WindowWaitNS,
			SolveWallNS:  bi.SolveWallNS,
			PerRHSNS:     bi.PerRHSNS,
			AchievedAI:   bi.AchievedAI,
		}
	}
	entry.Resilience = experiments.RunResilienceOf(req.Precond, rout)
	rep := &experiments.RunReport{
		Tool:      "fsaid",
		LineBytes: req.LineBytes,
		Entries:   []experiments.RunEntry{entry},
	}
	name := id + ".json"
	if err := experiments.WriteRunReportFile(filepath.Join(s.opt.RunsDir, name), rep); err != nil {
		return ""
	}
	return name
}

func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
