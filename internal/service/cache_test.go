package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	fsai "repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/telemetry"
)

func testFactor(t *testing.T) *fsai.Preconditioner {
	t.Helper()
	a := matgen.Laplace2D(8, 8)
	p, err := fsai.Compute(a, fsai.Options{Variant: fsai.VariantFSAI, Workers: 1})
	if err != nil {
		t.Fatalf("factor: %v", err)
	}
	return p
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewPrecondCache(4, telemetry.NewRegistry())
	p := testFactor(t)
	var builds atomic.Int64
	gate := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	entries := make([]*CachedPrecond, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := c.GetOrBuild(context.Background(), "k", func() (*CachedPrecond, error) {
				builds.Add(1)
				<-gate // hold the build so every goroutine piles up on it
				return &CachedPrecond{P: p, SetupNS: 42}, nil
			})
			if err != nil {
				t.Errorf("GetOrBuild: %v", err)
			}
			entries[i], hits[i] = e, hit
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let the waiters subscribe
	close(gate)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times, want 1 (single-flight)", got)
	}
	misses := 0
	for i := range entries {
		if entries[i] == nil || entries[i].P != p {
			t.Fatalf("goroutine %d got entry %+v", i, entries[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1 (the builder)", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != int64(n-1) || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewPrecondCache(2, telemetry.NewRegistry())
	p := testFactor(t)
	build := func() (*CachedPrecond, error) { return &CachedPrecond{P: p}, nil }
	ctx := context.Background()

	for _, k := range []string{"a|x", "b|x", "a|x", "c|x"} {
		if _, _, err := c.GetOrBuild(ctx, k, build); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2 and "a" was touched after "b": inserting "c" evicts "b".
	if _, hit, _ := c.GetOrBuild(ctx, "a|x", build); !hit {
		t.Fatal("recently-used entry was evicted")
	}
	if _, hit, _ := c.GetOrBuild(ctx, "b|x", build); hit {
		t.Fatal("LRU entry survived over-capacity insert")
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	c := NewPrecondCache(2, nil)
	boom := errors.New("boom")
	calls := 0
	build := func() (*CachedPrecond, error) { calls++; return nil, boom }
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, err := c.GetOrBuild(ctx, "k", build); !errors.Is(err, boom) {
			t.Fatalf("attempt %d: err=%v", i, err)
		}
	}
	if calls != 2 {
		t.Fatalf("failed build cached: %d calls, want 2", calls)
	}
	if c.Len() != 0 {
		t.Fatal("error entry made it into the cache")
	}
}

func TestCacheWaiterHonorsContext(t *testing.T) {
	c := NewPrecondCache(2, nil)
	p := testFactor(t)
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrBuild(context.Background(), "k", func() (*CachedPrecond, error) {
			close(started)
			<-gate
			return &CachedPrecond{P: p}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, _, err := c.GetOrBuild(ctx, "k", func() (*CachedPrecond, error) {
		t.Error("waiter must not start a second build")
		return nil, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err=%v, want DeadlineExceeded", err)
	}
	close(gate)
	// The abandoned build still lands in the cache for later jobs.
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("completed build never cached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheConcurrentMixedOps is the satellite race drill: concurrent
// get-or-build, eviction by matrix, stats and length reads on overlapping
// keys. Run with -race; correctness here is "no race, no deadlock, and the
// cache never exceeds capacity".
func TestCacheConcurrentMixedOps(t *testing.T) {
	const capacity = 4
	c := NewPrecondCache(capacity, telemetry.NewRegistry())
	p := testFactor(t)
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fp := fmt.Sprintf("m%d", (g+i)%6)
				key := PrecondKey(fp, &SolveRequest{Precond: "fsai", Filter: 0.01, LineBytes: 64, PatternPower: 1})
				switch i % 5 {
				case 0, 1, 2:
					if _, _, err := c.GetOrBuild(ctx, key, func() (*CachedPrecond, error) {
						return &CachedPrecond{P: p, SetupNS: 1}, nil
					}); err != nil {
						t.Errorf("GetOrBuild: %v", err)
					}
				case 3:
					c.EvictMatrix(fp)
				default:
					_ = c.Stats()
					if n := c.Len(); n > capacity {
						t.Errorf("cache holds %d > capacity %d", n, capacity)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > capacity {
		t.Fatalf("final cache size %d > capacity %d", n, capacity)
	}
}

// TestRegistryConcurrentRegisterRemove races registration, lookup and
// removal of aliased matrices (run with -race).
func TestRegistryConcurrentRegisterRemove(t *testing.T) {
	reg := NewMatrixRegistry(8)
	mats := []struct{ name string }{{"a"}, {"b"}, {"c"}}
	gen := matgen.Laplace2D(6, 6)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := mats[(g+i)%len(mats)]
				switch i % 4 {
				case 0:
					_, _ = reg.Register(gen, m.name)
				case 1:
					_, _ = reg.Get(m.name)
				case 2:
					_ = reg.List()
				default:
					_, _ = reg.Remove(m.name)
				}
			}
		}(g)
	}
	wg.Wait()
}
