package service_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
)

// newTestServer spins up a full daemon on an httptest listener and returns
// a client for it.
func newTestServer(t *testing.T, opt service.Options) (*service.Server, *client.Client) {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	s := service.New(opt)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, client.New(hs.URL)
}

const tinyMTX = `%%MatrixMarket matrix coordinate real symmetric
3 3 5
1 1 4.0
2 2 4.0
3 3 4.0
2 1 -1.0
3 2 -1.0
`

func TestRegisterMatgenAndDedup(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap64x64", "lap")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if !info.Created || info.Fingerprint == "" || info.Rows != 64*64 {
		t.Fatalf("first register: %+v", info)
	}
	again, err := c.RegisterMatgen(ctx, "lap64x64", "lap")
	if err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if again.Created || again.Fingerprint != info.Fingerprint {
		t.Fatalf("dedup: %+v", again)
	}
	if _, err := c.RegisterMatgen(ctx, "lap72x72", "lap"); err == nil {
		t.Fatal("alias collision with different content must fail")
	}
	if _, err := c.RegisterMatgen(ctx, "no-such-spec", ""); err == nil {
		t.Fatal("unknown spec must fail")
	}
}

func TestRegisterMatrixMarketUpload(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatrixMarket(ctx, strings.NewReader(tinyMTX), "tiny")
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if !info.Created || info.Rows != 3 || info.NNZ != 7 {
		t.Fatalf("upload info: %+v", info)
	}
	got, err := c.Matrix(ctx, "tiny")
	if err != nil || got.Fingerprint != info.Fingerprint {
		t.Fatalf("lookup by name: %+v err=%v", got, err)
	}
}

// TestColdThenWarmSolve is the tentpole acceptance check at the API level:
// the second solve with identical setup options must be a cache hit, report
// exactly zero setup time, and produce a bit-identical solution.
func TestColdThenWarmSolve(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, service.Options{RunsDir: dir, Metrics: telemetry.NewRegistry()})
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	req := service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie", ReturnSolution: true}

	cold, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if cold.Cache != service.CacheMiss {
		t.Fatalf("cold solve cache=%q, want %q", cold.Cache, service.CacheMiss)
	}
	if cold.SetupNS <= 0 {
		t.Fatalf("cold solve must pay setup, got %d ns", cold.SetupNS)
	}
	if !cold.Converged {
		t.Fatalf("cold solve did not converge: %+v", cold)
	}

	warm, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatalf("warm solve: %v", err)
	}
	if warm.Cache != service.CacheHit {
		t.Fatalf("warm solve cache=%q, want %q", warm.Cache, service.CacheHit)
	}
	if warm.SetupNS != 0 {
		t.Fatalf("warm solve must report zero setup, got %d ns", warm.SetupNS)
	}
	if warm.Iterations != cold.Iterations {
		t.Fatalf("warm iterations %d != cold %d", warm.Iterations, cold.Iterations)
	}
	if len(warm.X) != len(cold.X) {
		t.Fatalf("solution lengths differ: %d vs %d", len(warm.X), len(cold.X))
	}
	for i := range warm.X {
		if warm.X[i] != cold.X[i] {
			t.Fatalf("warm solve not bit-identical at x[%d]: %v vs %v",
				i, warm.X[i], cold.X[i])
		}
	}

	// The run reports carry the service section with the cache outcome.
	for _, want := range []struct {
		name, cache string
	}{{cold.Report, service.CacheMiss}, {warm.Report, service.CacheHit}} {
		if want.name == "" {
			t.Fatal("solve response missing report name")
		}
		rep, err := experiments.ReadRunReportFile(filepath.Join(dir, want.name))
		if err != nil {
			t.Fatalf("read report %s: %v", want.name, err)
		}
		if len(rep.Entries) != 1 || rep.Entries[0].Service == nil {
			t.Fatalf("report %s missing service section", want.name)
		}
		svc := rep.Entries[0].Service
		if svc.Cache != want.cache || svc.Fingerprint != info.Fingerprint {
			t.Fatalf("report %s service section: %+v", want.name, svc)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats after cold+warm: %+v", st.Cache)
	}
}

// TestQueueSaturationReturns429 drills admission control: with one slot and
// no queue, a held job saturates the daemon and the next request must be
// shed with 429 + Retry-After.
func TestQueueSaturationReturns429(t *testing.T) {
	_, c := newTestServer(t, service.Options{MaxInflight: 1, QueueCap: -1})
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	holdDone := make(chan error, 1)
	go func() {
		_, err := c.Solve(ctx, service.SolveRequest{
			Matrix: info.Fingerprint, Precond: "jacobi", HoldMS: 1500, MaxIter: 5,
		})
		holdDone <- err
	}()
	// Wait until the holding job owns the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Queue.Inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("holding job never admitted: %+v", st.Queue)
		}
		time.Sleep(5 * time.Millisecond)
	}

	_, err = c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "jacobi"})
	var apiErr *client.APIError
	if err == nil {
		t.Fatal("saturated daemon accepted a job, want 429")
	}
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != 429 {
		t.Fatalf("saturation error: %v", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("Retry-After %s, want >= 1s", apiErr.RetryAfter)
	}
	if apiErr.Body.RetryAfterS < 1 {
		t.Fatalf("error body retry_after_s = %d, want >= 1", apiErr.Body.RetryAfterS)
	}

	if err := <-holdDone; err != nil {
		t.Fatalf("holding job: %v", err)
	}
	st, _ := c.Stats(ctx)
	if st.Queue.Rejected < 1 || st.Queue.Completed < 1 {
		t.Fatalf("queue stats after drill: %+v", st.Queue)
	}
}

func asAPIError(err error, target **client.APIError) bool {
	e, ok := err.(*client.APIError)
	if ok {
		*target = e
	}
	return ok
}

func TestSolveValidation(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}
	cases := []service.SolveRequest{
		{},               // missing matrix
		{Matrix: "nope"}, // unregistered
		{Matrix: info.Fingerprint, Precond: "ic0"},                       // not servable
		{Matrix: info.Fingerprint, RHS: []float64{1, 2, 3}},              // wrong RHS length
		{Matrix: info.Fingerprint, Precond: "adaptive", Resilient: true}, // not a recovery rung
	}
	for i, req := range cases {
		if _, err := c.Solve(ctx, req); err == nil {
			t.Errorf("case %d: invalid request accepted: %+v", i, req)
		}
	}
}

func TestResilientSolveBypassesCache(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Solve(ctx, service.SolveRequest{
		Matrix: info.Fingerprint, Precond: "fsaie", Resilient: true,
	})
	if err != nil {
		t.Fatalf("resilient solve: %v", err)
	}
	if resp.Cache != service.CacheBypass {
		t.Fatalf("resilient cache=%q, want %q", resp.Cache, service.CacheBypass)
	}
	if !resp.Converged || resp.SetupNS <= 0 {
		t.Fatalf("resilient solve: %+v", resp)
	}
	if st, _ := c.Stats(ctx); st.Cache.Entries != 0 {
		t.Fatal("resilient solve must not populate the cache")
	}
}

func TestJobTimeoutReportsCancelled(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap72x72", "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Solve(ctx, service.SolveRequest{
		Matrix: info.Fingerprint, Precond: "none", TimeoutMS: 1,
		Tol: 1e-300, MaxIter: 100000000,
	})
	if err != nil {
		t.Fatalf("timed-out solve: %v", err)
	}
	if resp.Converged || resp.Status != "cancelled" {
		t.Fatalf("timeout status=%q converged=%v, want cancelled", resp.Status, resp.Converged)
	}
}

func TestUnregisterEvictsCachedFactors(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "lap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: "lap"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if st, _ := c.Stats(ctx); st.Cache.Entries != 1 {
		t.Fatalf("cache stats before unregister: %+v", st.Cache)
	}
	if err := c.Unregister(ctx, "lap"); err != nil {
		t.Fatalf("unregister: %v", err)
	}
	if st, _ := c.Stats(ctx); st.Cache.Entries != 0 {
		t.Fatal("unregister did not evict the cached factor")
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint}); err == nil {
		t.Fatal("solve on unregistered matrix must fail")
	}
}

func TestJobsEndpointRecordsLifecycle(t *testing.T) {
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "jacobi"})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != resp.JobID || jobs[0].State != service.JobDone {
		t.Fatalf("jobs listing: %+v", jobs)
	}
	ji, err := c.Job(ctx, resp.JobID)
	if err != nil || ji.Cache != service.CacheUncached || ji.Iterations != resp.Iterations {
		t.Fatalf("job record: %+v err=%v", ji, err)
	}
}

// TestObsEndpointsMounted verifies the observability server rides on the
// same listener as the API, including the service gauges on /metrics.
func TestObsEndpointsMounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{Metrics: reg})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := client.New(hs.URL)
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint}); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		"/healthz": `"status"`,
		"/metrics": "service_cache_misses 1",
	} {
		resp, err := hs.Client().Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 || !strings.Contains(string(body), want) {
			t.Errorf("%s: status %d, body missing %q:\n%s", path, resp.StatusCode, want, body)
		}
	}
}

// TestServerStartShutdown exercises the real listener path and graceful
// shutdown.
func TestServerStartShutdown(t *testing.T) {
	s := service.New(service.Options{})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := client.New("http://" + addr.String())
	ctx := context.Background()
	if _, err := c.Stats(ctx); err != nil {
		t.Fatalf("stats over real listener: %v", err)
	}
	shCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := c.Stats(ctx); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestStatsDocumentShape(t *testing.T) {
	_, c := newTestServer(t, service.Options{MaxInflight: 3, QueueCap: 7, CacheEntries: 5})
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Queue.MaxInflight != 3 || st.Queue.Capacity != 7 || st.Cache.Capacity != 5 {
		t.Fatalf("stats: %+v", st)
	}
	// The document round-trips as JSON (the CLI consumes it).
	if _, err := json.Marshal(st); err != nil {
		t.Fatal(err)
	}
}
