package service

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/sparse"
)

// ErrRegistryFull is returned by Register when the registry holds its
// maximum number of distinct matrices. Clients must unregister something
// (DELETE /api/v1/matrices/<ref>) before registering more — the daemon
// never grows without bound on untrusted input.
var ErrRegistryFull = errors.New("service: matrix registry full")

// RegisteredMatrix is one registry entry: the immutable operator plus its
// descriptor. The CSR is shared by every job solving on it and must never
// be mutated.
type RegisteredMatrix struct {
	Info MatrixInfo
	A    *sparse.CSR
}

// MatrixRegistry is the content-addressed matrix store. Registration
// deduplicates by fingerprint: uploading the same bytes twice yields the
// same handle and keeps one copy. All methods are safe for concurrent use.
type MatrixRegistry struct {
	mu    sync.RWMutex
	cap   int
	byFP  map[string]*RegisteredMatrix
	names map[string]string // alias -> fingerprint
	order []string          // insertion order, for a stable listing
}

// NewMatrixRegistry returns an empty registry holding at most capacity
// distinct matrices (capacity < 1 is treated as 1).
func NewMatrixRegistry(capacity int) *MatrixRegistry {
	if capacity < 1 {
		capacity = 1
	}
	return &MatrixRegistry{
		cap:   capacity,
		byFP:  map[string]*RegisteredMatrix{},
		names: map[string]string{},
	}
}

// Register stores a (validated as square-symmetric by the caller) matrix
// under its content fingerprint, optionally aliased by name. Registering
// already-present content is a cheap no-op returning Created=false; a name
// that already aliases different content is an error.
func (r *MatrixRegistry) Register(a *sparse.CSR, name string) (MatrixInfo, error) {
	fp := a.Fingerprint()
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byFP[fp]; ok {
		if name != "" {
			if owner, taken := r.names[name]; taken && owner != fp {
				return MatrixInfo{}, fmt.Errorf("service: name %q already registered to another matrix", name)
			}
			r.names[name] = fp
			if existing.Info.Name == "" {
				existing.Info.Name = name
			}
		}
		info := existing.Info
		info.Created = false
		return info, nil
	}
	if name != "" {
		if _, taken := r.names[name]; taken {
			return MatrixInfo{}, fmt.Errorf("service: name %q already registered to another matrix", name)
		}
	}
	if len(r.byFP) >= r.cap {
		return MatrixInfo{}, ErrRegistryFull
	}
	rm := &RegisteredMatrix{
		Info: MatrixInfo{Fingerprint: fp, Name: name, Rows: a.Rows, NNZ: a.NNZ()},
		A:    a,
	}
	r.byFP[fp] = rm
	r.order = append(r.order, fp)
	if name != "" {
		r.names[name] = fp
	}
	info := rm.Info
	info.Created = true
	return info, nil
}

// Get resolves a matrix by fingerprint or name.
func (r *MatrixRegistry) Get(ref string) (*RegisteredMatrix, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if rm, ok := r.byFP[ref]; ok {
		return rm, true
	}
	if fp, ok := r.names[ref]; ok {
		return r.byFP[fp], true
	}
	return nil, false
}

// Remove unregisters a matrix by fingerprint or name, returning its
// fingerprint and whether anything was removed. Cached preconditioners are
// the cache's business: the server pairs Remove with PrecondCache.
// EvictMatrix.
func (r *MatrixRegistry) Remove(ref string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fp := ref
	if mapped, ok := r.names[ref]; ok {
		fp = mapped
	}
	rm, ok := r.byFP[fp]
	if !ok {
		return "", false
	}
	delete(r.byFP, fp)
	if rm.Info.Name != "" {
		delete(r.names, rm.Info.Name)
	}
	for alias, owner := range r.names {
		if owner == fp {
			delete(r.names, alias)
		}
	}
	for i, f := range r.order {
		if f == fp {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return fp, true
}

// List returns the registered matrices in registration order.
func (r *MatrixRegistry) List() []MatrixInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]MatrixInfo, 0, len(r.order))
	for _, fp := range r.order {
		out = append(out, r.byFP[fp].Info)
	}
	return out
}

// Len returns the number of registered matrices.
func (r *MatrixRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byFP)
}
