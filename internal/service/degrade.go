package service

// Memory-watermark degradation: the daemon's defense against being OOM-
// killed by its own cache and setup allocations. FSAI setup is the
// allocation-heavy phase (pattern assembly, per-row local systems), so when
// the heap crosses a soft watermark the server stops accepting exactly
// those jobs — cold solves — while warm solves (factor already resident,
// per-solve scratch only) keep flowing, and gives factor memory back by
// evicting LRU cache entries. Shedding answers 429 with Retry-After, so
// the retrying client treats pressure exactly like queue saturation.
//
// States, with hysteresis so the daemon doesn't flap at the boundary:
//
//	normal    heap < soft limit
//	pressure  heap >= soft limit: shed cold solves, evict half the cache
//	critical  heap >= 1.5x soft limit: shed all solves, evict everything
//
// A state is left only after the heap falls below 90% of its entry
// threshold. State changes surface on /healthz (degraded) and as slog
// records; the current state is the degraded_state gauge.

import (
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// Degradation states (the degraded_state gauge value).
const (
	DegradeNormal   = 0
	DegradePressure = 1
	DegradeCritical = 2
)

// degradeName maps a state to its /api/v1/stats string.
func degradeName(state int) string {
	switch state {
	case DegradePressure:
		return "pressure"
	case DegradeCritical:
		return "critical"
	default:
		return "normal"
	}
}

// criticalFactor scales the soft limit to the critical watermark, and
// exitFactor is the hysteresis: a state is left below exitFactor times its
// entry threshold.
const (
	criticalFactor = 1.5
	exitFactor     = 0.9
)

// degrader evaluates the watermark on demand (each solve admission) rather
// than on a timer: no goroutine to leak, and the state is always current
// exactly when it gates a decision.
type degrader struct {
	soft  uint64
	probe func() uint64
	cache *PrecondCache
	reg   *telemetry.Registry
	log   *slog.Logger
	obs   *obs.Server

	mu      sync.Mutex
	state   int
	lastRun time.Time
}

// newDegrader returns nil when no soft limit is configured — the nil
// degrader is fully inert.
func newDegrader(soft uint64, probe func() uint64, cache *PrecondCache, reg *telemetry.Registry, log *slog.Logger, o *obs.Server) *degrader {
	if soft == 0 {
		return nil
	}
	if probe == nil {
		probe = heapBytes
	}
	reg.SetHelp("degraded_state", "memory-pressure degradation state (0 normal, 1 pressure: cold solves shed, 2 critical: all solves shed)")
	reg.SetHelp("degraded_shed_total", "solve requests shed (429) by the degradation layer")
	reg.SetHelp("degraded_evictions_total", "cache entries evicted by the degradation layer")
	reg.Gauge("degraded.state").Set(0)
	reg.Counter("degraded.shed_total")
	reg.Counter("degraded.evictions_total")
	return &degrader{soft: soft, probe: probe, cache: cache, reg: reg, log: log, obs: o}
}

// heapBytes is the default memory probe: live heap after the last GC cycle.
func heapBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// level re-evaluates the watermark and returns the current state. Nil-safe
// (no soft limit: always normal).
func (d *degrader) level() int {
	if d == nil {
		return DegradeNormal
	}
	heap := d.probe()
	critical := uint64(float64(d.soft) * criticalFactor)

	d.mu.Lock()
	defer d.mu.Unlock()
	prev := d.state
	next := prev
	switch {
	case heap >= critical:
		next = DegradeCritical
	case heap >= d.soft:
		if prev < DegradePressure {
			next = DegradePressure
		} else if prev == DegradeCritical && heap < uint64(float64(critical)*exitFactor) {
			next = DegradePressure
		}
	default:
		// Below the soft limit: leave pressure only once comfortably below.
		if heap < uint64(float64(d.soft)*exitFactor) {
			next = DegradeNormal
		} else if prev == DegradeCritical {
			next = DegradePressure
		}
	}
	if next != prev {
		d.transitionLocked(prev, next, heap)
	}
	return next
}

// transitionLocked applies a state change: metrics, logs, health, and the
// eviction response sized to the new state. Caller holds d.mu.
func (d *degrader) transitionLocked(prev, next int, heap uint64) {
	d.state = next
	d.reg.Gauge("degraded.state").Set(float64(next))
	evicted := 0
	switch next {
	case DegradeCritical:
		evicted = d.cache.EvictOldest(d.cache.Len())
	case DegradePressure:
		if next > prev { // entering from normal, not recovering from critical
			evicted = d.cache.EvictOldest((d.cache.Len() + 1) / 2)
		}
	}
	if evicted > 0 {
		d.reg.Counter("degraded.evictions_total").Add(int64(evicted))
		// Evicted factors are only reclaimable after a collection; trigger
		// one so the next level() reads the post-eviction heap, not the peak.
		runtime.GC()
	}
	if next > DegradeNormal {
		d.log.Warn("memory degradation state change",
			"from", degradeName(prev), "to", degradeName(next),
			"heap_bytes", heap, "soft_limit_bytes", d.soft, "evicted", evicted)
		d.obs.SetHealth(obs.HealthDegraded, fmt.Sprintf(
			"memory %s: heap %dMiB over soft limit %dMiB",
			degradeName(next), heap>>20, d.soft>>20))
	} else {
		d.log.Info("memory degradation cleared",
			"from", degradeName(prev), "heap_bytes", heap, "soft_limit_bytes", d.soft)
		d.obs.SetHealth(obs.HealthOK, "")
	}
}

// admit decides whether a solve may proceed at the current watermark:
// critical sheds everything, pressure sheds jobs that would pay setup
// (cold: not resilient-bypass, key not resident). Returns the state and
// whether to shed.
func (d *degrader) admit(warm bool) (state int, shed bool) {
	state = d.level()
	switch state {
	case DegradeCritical:
		shed = true
	case DegradePressure:
		shed = !warm
	}
	if shed {
		d.reg.Counter("degraded.shed_total").Inc()
	}
	return state, shed
}

// stateName returns the current state string without re-probing. Nil-safe.
func (d *degrader) stateName() string {
	if d == nil {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return degradeName(d.state)
}
