package service_test

// Robustness-layer tests: durable state across restarts, quarantine of
// corrupt store entries, delete-vs-solve races, idempotent retries, deadline
// propagation, and memory-watermark degradation. These drive the same
// contracts the crash drill (scripts/crash_drill.sh) proves end-to-end.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// newDurableServer builds a server over a durable store at dir and returns
// it with its base URL. The caller owns shutdown via the returned stop func
// (safe to call once; also closes the store).
func newDurableServer(t *testing.T, dir string, opt service.Options) (*service.Server, string, func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Metrics: opt.Metrics})
	if err != nil {
		t.Fatalf("store open: %v", err)
	}
	opt.Store = st
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	s := service.New(opt)
	hs := httptest.NewServer(s.Handler())
	var once sync.Once
	stop := func() {
		once.Do(func() {
			hs.Close()
			_ = s.Close()
		})
	}
	t.Cleanup(stop)
	return s, hs.URL, stop
}

func TestWarmSolveSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := service.SolveRequest{Precond: "fsaie", ReturnSolution: true}

	s1, url1, stop1 := newDurableServer(t, dir, service.Options{Metrics: telemetry.NewRegistry()})
	c1 := client.New(url1)
	info, err := c1.RegisterMatgen(ctx, "lap64x64", "lap")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	req.Matrix = info.Fingerprint
	cold, err := c1.Solve(ctx, req)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if cold.Cache != service.CacheMiss || !cold.Converged {
		t.Fatalf("cold solve: cache=%s converged=%v", cold.Cache, cold.Converged)
	}
	if st := s1.Store().Stats(); st.Matrices != 1 || st.Factors != 1 {
		t.Fatalf("store after cold solve: %+v", st)
	}
	stop1() // releases the manifest log; the "crash" is the lack of any other goodbye

	s2, url2, _ := newDurableServer(t, dir, service.Options{Metrics: telemetry.NewRegistry()})
	if st := s2.Store().Stats(); st.Matrices != 1 || st.Factors != 1 || st.Corrupt != 0 {
		t.Fatalf("store after reopen: %+v", st)
	}
	c2 := client.New(url2)
	// The alias must survive the restart alongside the operator.
	if got, err := c2.Matrix(ctx, "lap"); err != nil || got.Fingerprint != info.Fingerprint {
		t.Fatalf("alias lookup after restart: %+v err=%v", got, err)
	}
	warm, err := c2.Solve(ctx, req)
	if err != nil {
		t.Fatalf("warm solve after restart: %v", err)
	}
	if warm.Cache != service.CacheHit || warm.SetupNS != 0 {
		t.Fatalf("restart must rehydrate the factor: cache=%s setup=%d", warm.Cache, warm.SetupNS)
	}
	if len(warm.X) != len(cold.X) {
		t.Fatalf("solution lengths differ: %d vs %d", len(warm.X), len(cold.X))
	}
	for i := range warm.X {
		if warm.X[i] != cold.X[i] {
			t.Fatalf("x[%d] = %v before restart, %v after: not bit-identical", i, cold.X[i], warm.X[i])
		}
	}
}

func TestCorruptFactorFallsBackToRecompute(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := service.SolveRequest{Precond: "fsaie"}

	_, url1, stop1 := newDurableServer(t, dir, service.Options{Metrics: telemetry.NewRegistry()})
	c1 := client.New(url1)
	info, err := c1.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	req.Matrix = info.Fingerprint
	if _, err := c1.Solve(ctx, req); err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	stop1()

	// Flip one bit in the persisted factor: the entry must be quarantined at
	// the next open, and the solve must fall back to a recompute — degraded
	// performance, never a wrong answer or a dead daemon.
	flipBitInDir(t, filepath.Join(dir, "factors"))

	reg := telemetry.NewRegistry()
	s2, url2, _ := newDurableServer(t, dir, service.Options{Metrics: reg})
	st := s2.Store().Stats()
	if st.Corrupt != 1 || st.Factors != 0 || st.Matrices != 1 {
		t.Fatalf("store after corruption: %+v", st)
	}
	if got := reg.Counter("store.corrupt_total").Value(); got != 1 {
		t.Fatalf("store_corrupt_total = %d, want 1", got)
	}
	resp, err := client.New(url2).Solve(ctx, req)
	if err != nil {
		t.Fatalf("solve after corruption: %v", err)
	}
	if resp.Cache != service.CacheMiss || !resp.Converged {
		t.Fatalf("corrupt factor must force a converging recompute: cache=%s converged=%v",
			resp.Cache, resp.Converged)
	}
}

// flipBitInDir flips one bit in the middle of the first regular file found
// under dir.
func flipBitInDir(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no files to corrupt in %s: %v", dir, err)
	}
	path := filepath.Join(dir, ents[0].Name())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func TestConcurrentDeleteRacingWarmSolve(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s, url, _ := newDurableServer(t, dir, service.Options{Metrics: telemetry.NewRegistry()})
	c := client.New(url)
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	req := service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}
	if _, err := c.Solve(ctx, req); err != nil {
		t.Fatalf("warmup solve: %v", err)
	}

	// Warm solves race the unregister. Each must either finish cleanly or
	// fail with 404 (matrix gone before resolution) — and afterwards neither
	// the cache nor the disk may know the matrix.
	const solvers = 4
	var wg sync.WaitGroup
	start := make(chan struct{})
	solveErrs := make([]error, solvers)
	for i := 0; i < solvers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, solveErrs[i] = c.Solve(ctx, req)
		}(i)
	}
	var delErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		delErr = c.Unregister(ctx, info.Fingerprint)
	}()
	close(start)
	wg.Wait()

	if delErr != nil {
		t.Fatalf("unregister: %v", delErr)
	}
	for i, err := range solveErrs {
		if err == nil {
			continue
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Fatalf("solver %d: %v (want success or 404)", i, err)
		}
	}
	if st := s.Store().Stats(); st.Matrices != 0 || st.Factors != 0 {
		t.Fatalf("store after racing delete: %+v", st)
	}
	for _, sub := range []string{"matrices", "factors"} {
		ents, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			t.Fatalf("readdir %s: %v", sub, err)
		}
		if len(ents) != 0 {
			t.Fatalf("%s not empty after delete: %d files", sub, len(ents))
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Cache.Entries != 0 || stats.Matrices != 0 {
		t.Fatalf("memory state after racing delete: cache=%d matrices=%d",
			stats.Cache.Entries, stats.Matrices)
	}
}

func TestIdempotentRetryExecutesOnce(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{Workers: 2, Metrics: reg})
	hs := httptest.NewServer(faultinject.HTTPFaults(s.Handler()))
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)
	// A fresh connection per attempt: net/http transparently replays
	// requests carrying an Idempotency-Key header on reused connections,
	// which would hide the retry loop this test exercises.
	tr := &http.Transport{DisableKeepAlives: true}
	t.Cleanup(tr.CloseIdleConnections)
	c.SetHTTPClient(&http.Client{Transport: tr})

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	// Drop exactly the next response: the solve executes server-side but the
	// client sees a severed connection and retries with the same
	// idempotency key — the retry must replay, not re-solve.
	restore := faultinject.Activate(faultinject.New(1).WithHTTPDrop(1))
	defer restore()

	pol := client.DefaultRetryPolicy(3)
	pol.BaseDelay = 10 * time.Millisecond
	resp, st, err := c.SolveRetry(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}, pol)
	if err != nil {
		t.Fatalf("retried solve: %v", err)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", st.Attempts)
	}
	if !resp.Replayed || !st.Replayed {
		t.Fatalf("retry must be served from the original execution: resp.Replayed=%v st.Replayed=%v",
			resp.Replayed, st.Replayed)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Queue.Completed != 1 || stats.Cache.Misses != 1 {
		t.Fatalf("solve must run exactly once server-side: completed=%d misses=%d",
			stats.Queue.Completed, stats.Cache.Misses)
	}
	if replays := reg.Counter("retry.replays_total").Value() + reg.Counter("retry.coalesced_total").Value(); replays != 1 {
		t.Fatalf("replays+coalesced = %d, want 1", replays)
	}
}

func TestIdempotentConcurrentRequestsCoalesce(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{Workers: 2, Metrics: reg})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	body, _ := json.Marshal(service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"})
	key := client.NewIdempotencyKey()

	const n = 3
	var wg sync.WaitGroup
	jobIDs := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, bodyOut, err := rawSolve(hs.URL, body, map[string]string{service.HeaderIdempotencyKey: key})
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = errors.New(resp.Status + ": " + string(bodyOut))
				return
			}
			var sr service.SolveResponse
			if errs[i] = json.Unmarshal(bodyOut, &sr); errs[i] == nil {
				jobIDs[i] = sr.JobID
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if jobIDs[i] != jobIDs[0] {
			t.Fatalf("job ids diverge: %v", jobIDs)
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Queue.Completed != 1 {
		t.Fatalf("completed = %d, want 1 (duplicates must coalesce)", stats.Queue.Completed)
	}
}

// rawSolve posts a solve body with explicit headers, returning the response
// and its body. Used where the typed client would manage the headers itself.
func rawSolve(url string, body []byte, headers map[string]string) (*http.Response, []byte, error) {
	hr, err := http.NewRequest(http.MethodPost, url+"/api/v1/solve", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	return resp, out, err
}

func TestClientDeadlineCancelsQueuedJob(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{Workers: 1, Metrics: reg, MaxInflight: 1, QueueCap: 4})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}

	// Occupy the only slot with a cold solve whose setup straggles: the
	// injected worker delay holds the inflight slot for a deterministic
	// window regardless of how fast CG happens to converge.
	restore := faultinject.Activate(faultinject.New(1).WithWorkerDelay(1500*time.Millisecond, 1))
	t.Cleanup(restore)
	blockerDone := make(chan *service.SolveResponse, 1)
	go func() {
		resp, _ := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"})
		blockerDone <- resp
	}()
	waitForInflight(t, c, 1)

	// A queued job whose propagated client deadline expires must come back
	// 504 without ever running.
	start := time.Now()
	body, _ := json.Marshal(service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"})
	resp, out, err := rawSolve(hs.URL, body, map[string]string{service.HeaderDeadlineMS: "300"})
	if err != nil {
		t.Fatalf("queued solve: %v", err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, out)
	}
	if !strings.Contains(string(out), "deadline") {
		t.Fatalf("error body %q must name the deadline", out)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("expiry took %v, want ~300ms", waited)
	}
	if got := reg.Counter("retry.deadline_expired_total").Value(); got != 1 {
		t.Fatalf("retry_deadline_expired_total = %d, want 1", got)
	}
	if blocker := <-blockerDone; blocker == nil || !blocker.Converged {
		t.Fatalf("blocker should finish normally, got %+v", blocker)
	}
}

func TestClientDeadlineCancelsInFlightCG(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{Workers: 1, Metrics: reg})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	// No queue contention: the deadline expires while the job is in flight
	// (a straggling setup worker guarantees the budget dies first) and must
	// cancel CG cooperatively — a 200 with status "cancelled", not a hung
	// request. The impossible tolerance keeps CG from converging before its
	// first cancellation poll.
	restore := faultinject.Activate(faultinject.New(1).WithWorkerDelay(800*time.Millisecond, 1))
	t.Cleanup(restore)
	body, _ := json.Marshal(service.SolveRequest{
		Matrix: info.Fingerprint, Precond: "fsaie",
		Tol: 1e-300, MaxIter: 1 << 30, TimeoutMS: 10000,
	})
	start := time.Now()
	resp, out, err := rawSolve(hs.URL, body, map[string]string{service.HeaderDeadlineMS: "300"})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200 with a cancelled result", resp.StatusCode, out)
	}
	var sr service.SolveResponse
	if err := json.Unmarshal(out, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.Converged || sr.Status != "cancelled" {
		t.Fatalf("converged=%v status=%q, want a cancelled solve", sr.Converged, sr.Status)
	}
	if took := time.Since(start); took > 3*time.Second {
		t.Fatalf("cancellation took %v, want ~300ms", took)
	}
	if got := reg.Counter("retry.deadline_expired_total").Value(); got != 1 {
		t.Fatalf("retry_deadline_expired_total = %d, want 1", got)
	}
}

func waitForInflight(t *testing.T, c *client.Client, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Stats(context.Background())
		if err == nil && st.Queue.Inflight >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("inflight never reached %d", want)
}

func TestMemoryDegradationShedsAndRecovers(t *testing.T) {
	ctx := context.Background()
	var heap atomic.Uint64
	heap.Store(100) // far below the watermark
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{
		Workers: 2, Metrics: reg,
		MemSoftLimitBytes: 1000,
		MemProbe:          heap.Load,
	})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	reqA := service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsai"}
	reqB := service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}
	for _, req := range []service.SolveRequest{reqA, reqB} {
		if _, err := c.Solve(ctx, req); err != nil {
			t.Fatalf("cold solve at normal: %v", err)
		}
	}

	// Pressure: the entry transition evicts the LRU half (A); B stays
	// resident, so a warm solve on B passes while a cold solve on A sheds.
	heap.Store(1100)
	warm, err := c.Solve(ctx, reqB)
	if err != nil {
		t.Fatalf("warm solve under pressure: %v", err)
	}
	if warm.Cache != service.CacheHit {
		t.Fatalf("warm solve under pressure: cache=%s, want hit", warm.Cache)
	}
	if st, _ := c.Stats(ctx); st.Degraded != "pressure" {
		t.Fatalf("degraded = %q, want pressure", st.Degraded)
	}
	_, err = c.Solve(ctx, reqA)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("cold solve under pressure: %v, want 429", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("shed response must carry Retry-After, got %v", apiErr.RetryAfter)
	}

	// Critical: even warm solves shed, and the cache is emptied.
	heap.Store(2000)
	_, err = c.Solve(ctx, reqB)
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("warm solve at critical: %v, want 429", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Degraded != "critical" || st.Cache.Entries != 0 {
		t.Fatalf("at critical: degraded=%q cache=%d", st.Degraded, st.Cache.Entries)
	}

	// Recovery: below the hysteresis exit the daemon serves cold solves again.
	heap.Store(100)
	resp, err := c.Solve(ctx, reqA)
	if err != nil || resp.Cache != service.CacheMiss || !resp.Converged {
		t.Fatalf("solve after recovery: %+v err=%v", resp, err)
	}
	if st, _ := c.Stats(ctx); st.Degraded != "normal" {
		t.Fatalf("degraded = %q after recovery, want normal", st.Degraded)
	}
	if shed := reg.Counter("degraded.shed_total").Value(); shed != 2 {
		t.Fatalf("degraded_shed_total = %d, want 2", shed)
	}
	if ev := reg.Counter("degraded.evictions_total").Value(); ev < 2 {
		t.Fatalf("degraded_evictions_total = %d, want >= 2", ev)
	}
}

func TestStatsIncludesStoreSection(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, url, _ := newDurableServer(t, dir, service.Options{Metrics: telemetry.NewRegistry()})
	c := client.New(url)
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Store == nil {
		t.Fatal("stats missing store section with -data-dir active")
	}
	if st.Store.Matrices != 1 || st.Store.Factors != 1 || st.Store.Bytes <= 0 {
		t.Fatalf("store stats: %+v", st.Store)
	}
}

func TestMalformedDeadlineHeaderIsRejected(t *testing.T) {
	s := service.New(service.Options{Workers: 1, Metrics: telemetry.NewRegistry()})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)
	info, err := c.RegisterMatgen(context.Background(), "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	body, _ := json.Marshal(service.SolveRequest{Matrix: info.Fingerprint})
	for _, bad := range []string{"soon", "-5", "0"} {
		resp, out, err := rawSolve(hs.URL, body, map[string]string{service.HeaderDeadlineMS: bad})
		if err != nil {
			t.Fatalf("solve with deadline %q: %v", bad, err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline %q: status %d (%s), want 400", bad, resp.StatusCode, out)
		}
	}
}

// TestBatchedSolvesBitIdenticalToUnbatched is the batcher's core contract:
// concurrent warm solves grouped into one block solve return exactly the
// bits the same jobs produce unbatched — per-column solutions, iteration
// counts, statuses and residuals all match a batching-disabled server.
func TestBatchedSolvesBitIdenticalToUnbatched(t *testing.T) {
	ctx := context.Background()
	regB := telemetry.NewRegistry()
	sb := service.New(service.Options{Workers: 2, Metrics: regB, BatchWindow: 500 * time.Millisecond})
	hb := httptest.NewServer(sb.Handler())
	t.Cleanup(func() { hb.Close(); _ = sb.Close() })
	su := service.New(service.Options{Workers: 2, Metrics: telemetry.NewRegistry()})
	hu := httptest.NewServer(su.Handler())
	t.Cleanup(func() { hu.Close(); _ = su.Close() })
	cb, cu := client.New(hb.URL), client.New(hu.URL)

	infoB, err := cb.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register batched: %v", err)
	}
	if _, err := cu.RegisterMatgen(ctx, "lap64x64", ""); err != nil {
		t.Fatalf("register unbatched: %v", err)
	}
	// Prime both caches: batching is warm-only, and the comparison server
	// must hit the same cached factor.
	prime := service.SolveRequest{Matrix: infoB.Fingerprint, Precond: "fsaie"}
	for _, c := range []*client.Client{cb, cu} {
		if resp, err := c.Solve(ctx, prime); err != nil || resp.Cache != service.CacheMiss {
			t.Fatalf("priming solve: %+v err=%v", resp, err)
		}
	}

	const k = 4
	rhs := make([][]float64, k)
	for i := range rhs {
		rhs[i] = make([]float64, infoB.Rows)
		for j := range rhs[i] {
			rhs[i][j] = float64((j%13)-6) * float64(i+1) / 3
		}
	}
	unbatched := make([]*service.SolveResponse, k)
	for i := range rhs {
		r, err := cu.Solve(ctx, service.SolveRequest{
			Matrix: infoB.Fingerprint, Precond: "fsaie", RHS: rhs[i], ReturnSolution: true})
		if err != nil {
			t.Fatalf("unbatched solve %d: %v", i, err)
		}
		if r.Cache != service.CacheHit || r.Batch != nil {
			t.Fatalf("unbatched solve %d: cache=%s batch=%+v", i, r.Cache, r.Batch)
		}
		unbatched[i] = r
	}

	batched := make([]*service.SolveResponse, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for i := range rhs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			batched[i], errs[i] = cb.Solve(ctx, service.SolveRequest{
				Matrix: infoB.Fingerprint, Precond: "fsaie", RHS: rhs[i], ReturnSolution: true})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batched solve %d: %v", i, err)
		}
	}
	for i, r := range batched {
		if r.Batch == nil {
			t.Fatalf("batched solve %d carries no batch section: %+v", i, r)
		}
		if r.Batch.Size != k || r.Batch.ID != batched[0].Batch.ID {
			t.Fatalf("solve %d: batch %+v, want size %d in batch %s", i, r.Batch, k, batched[0].Batch.ID)
		}
		if r.Cache != service.CacheHit || r.SetupNS != 0 {
			t.Fatalf("batched solve %d must be warm: cache=%s setup=%d", i, r.Cache, r.SetupNS)
		}
		u := unbatched[i]
		if r.Iterations != u.Iterations || r.Status != u.Status || r.RelRes != u.RelRes {
			t.Fatalf("solve %d: batched {it=%d st=%s rel=%v} unbatched {it=%d st=%s rel=%v}",
				i, r.Iterations, r.Status, r.RelRes, u.Iterations, u.Status, u.RelRes)
		}
		if len(r.X) != len(u.X) {
			t.Fatalf("solve %d: solution lengths differ", i)
		}
		for j := range r.X {
			if r.X[j] != u.X[j] {
				t.Fatalf("solve %d x[%d]: batched %v, unbatched %v — not bit-identical",
					i, j, r.X[j], u.X[j])
			}
		}
	}
	if got := regB.Counter("batch.jobs_total").Value(); got != k {
		t.Fatalf("batch_jobs_total = %d, want %d", got, k)
	}
	if got := regB.Counter("batch.batches_total").Value(); got != 1 {
		t.Fatalf("batch_batches_total = %d, want 1", got)
	}
}

// TestBatchDeadlineExpiryMidBatch is the deflation drill: one member of a
// batch has a client deadline that expires mid-batch — during the window
// wait, before the block solve's first cancellation poll. Its column must
// deflate out (200 with status "cancelled", zero iterations, deadline
// counter bumped) while the other members converge normally — an expired
// deadline never poisons the batch.
func TestBatchDeadlineExpiryMidBatch(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	s := service.New(service.Options{Workers: 2, Metrics: reg, BatchWindow: 400 * time.Millisecond})
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	c := client.New(hs.URL)

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := c.Solve(ctx, service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}); err != nil {
		t.Fatalf("priming solve: %v", err)
	}

	body, _ := json.Marshal(service.SolveRequest{
		Matrix: info.Fingerprint, Precond: "fsaie", TimeoutMS: 10000,
	})
	responses := make([]service.SolveResponse, 3)
	errs := make([]error, 3)
	var wg sync.WaitGroup
	run := func(i int, headers map[string]string) {
		defer wg.Done()
		resp, out, err := rawSolve(hs.URL, body, headers)
		if err != nil {
			errs[i] = err
			return
		}
		if resp.StatusCode != http.StatusOK {
			errs[i] = errors.New(resp.Status + ": " + string(out))
			return
		}
		errs[i] = json.Unmarshal(out, &responses[i])
	}
	wg.Add(3)
	go run(0, nil)
	go run(1, nil)
	// The doomed member's 150ms budget dies inside the 400ms batch window,
	// so its column enters the block solve already expired.
	go run(2, map[string]string{service.HeaderDeadlineMS: "150"})
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
	}

	for i, r := range responses {
		if r.Batch == nil || r.Batch.ID != responses[0].Batch.ID || r.Batch.Size != 3 {
			t.Fatalf("member %d: batch %+v, want all three in one batch", i, r.Batch)
		}
	}
	doomed := responses[2]
	if doomed.Converged || doomed.Status != "cancelled" {
		t.Fatalf("doomed member: converged=%v status=%q, want a cancelled column", doomed.Converged, doomed.Status)
	}
	for i, healthy := range responses[:2] {
		if !healthy.Converged || healthy.Status != "converged" {
			t.Fatalf("member %d: converged=%v status=%q — the expired column must not poison the batch",
				i, healthy.Converged, healthy.Status)
		}
		if healthy.Iterations <= doomed.Iterations {
			t.Fatalf("member %d iterated %d times, doomed member %d — the expired column must deflate out while others keep running",
				i, healthy.Iterations, doomed.Iterations)
		}
	}
	if got := reg.Counter("retry.deadline_expired_total").Value(); got != 1 {
		t.Fatalf("retry_deadline_expired_total = %d, want 1", got)
	}
}
