package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// spanNames flattens a span tree into the set of span names it contains.
func spanNames(s telemetry.SpanSnapshot, into map[string]bool) {
	into[s.Name] = true
	for _, c := range s.Children {
		spanNames(c, into)
	}
}

// spanAttr returns the value of an attribute on a span.
func spanAttr(s telemetry.SpanSnapshot, key string) string {
	return s.Attrs[key]
}

// TestTracePropagationEndToEnd is the tentpole acceptance check: a single
// solve through the typed client produces one connected span tree — client
// trace id → admission → cache → setup phases → CG — retrievable from
// /traces by that id, with the same id in the job record and the schema-v5
// run report.
func TestTracePropagationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, service.Options{RunsDir: dir, Metrics: telemetry.NewRegistry()})
	ctx := context.Background()

	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	sent := trace.New()
	resp, used, err := c.SolveTraced(ctx,
		service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}, sent)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if used != sent {
		t.Fatalf("client replaced a valid trace context: %+v vs %+v", used, sent)
	}
	if resp.TraceID != sent.TraceID {
		t.Fatalf("response trace id %q, want the inbound %q", resp.TraceID, sent.TraceID)
	}

	// The daemon continued the client's trace: same trace id, server root
	// span parented under the client's span.
	tr, ok := s.Traces().Get(sent.TraceID)
	if !ok {
		t.Fatalf("recorder has no trace %s", sent.TraceID)
	}
	if tr.ParentSpanID != sent.SpanID {
		t.Fatalf("server root parented under %q, want client span %q",
			tr.ParentSpanID, sent.SpanID)
	}
	if tr.SpanID == sent.SpanID {
		t.Fatal("server must mint its own span id, not reuse the client's")
	}
	if tr.JobID != resp.JobID || tr.Fingerprint != info.Fingerprint {
		t.Fatalf("trace not tied to the job: %+v vs job %s", tr, resp.JobID)
	}

	// One connected tree covering every layer of the solve.
	if tr.Root.Name != "solve-request" {
		t.Fatalf("root span %q, want solve-request", tr.Root.Name)
	}
	names := map[string]bool{}
	spanNames(tr.Root, names)
	for _, want := range []string{
		"solve-request", "admission-wait", "precond-cache", "cg-solve",
	} {
		if !names[want] {
			t.Errorf("span tree missing %q: have %v", want, names)
		}
	}
	foundSetup := false
	for name := range names {
		if len(name) > 11 && name[:11] == "fsai-setup:" {
			foundSetup = true
		}
	}
	if !foundSetup {
		t.Errorf("span tree missing fsai-setup:* phase spans: %v", names)
	}
	if got := spanAttr(tr.Root, "job_id"); got != resp.JobID {
		t.Errorf("root span job_id attr %q, want %q", got, resp.JobID)
	}
	if got := spanAttr(tr.Root, "outcome"); got != resp.Status {
		t.Errorf("root span outcome attr %q, want %q", got, resp.Status)
	}

	// /traces and /traces/<id> serve the same trace over HTTP.
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces/"+sent.TraceID, nil))
	if rr.Code != 200 {
		t.Fatalf("GET /traces/<id> status %d", rr.Code)
	}
	var doc trace.Trace
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/traces/<id> not JSON: %v", err)
	}
	if doc.TraceID != sent.TraceID || doc.Root.Name != "solve-request" {
		t.Fatalf("/traces/<id> document: %+v", doc)
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
	var list []trace.Summary
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(list) != 1 || list[0].TraceID != sent.TraceID || list[0].Spans < 4 {
		t.Fatalf("/traces listing: %+v", list)
	}
	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces/"+trace.NewTraceID(), nil))
	if rr.Code != 404 {
		t.Fatalf("unknown trace id served %d, want 404", rr.Code)
	}

	// The job record and the schema-v5 run report both carry the trace id.
	ji, err := c.Job(ctx, resp.JobID)
	if err != nil || ji.TraceID != sent.TraceID {
		t.Fatalf("job record trace id: %+v err=%v", ji, err)
	}
	rep, err := experiments.ReadRunReportFile(filepath.Join(dir, resp.Report))
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if rep.Schema != experiments.RunReportSchemaVersion {
		t.Fatalf("report schema %d, want %d", rep.Schema, experiments.RunReportSchemaVersion)
	}
	svc := rep.Entries[0].Service
	if svc == nil || svc.TraceID != sent.TraceID {
		t.Fatalf("report service section missing trace id: %+v", svc)
	}
	if rep.Entries[0].SLO == nil || rep.Entries[0].SLO.Kind != "cold_solve" {
		t.Fatalf("report missing slo section: %+v", rep.Entries[0].SLO)
	}
}

// TestSolveWithoutTraceparentOriginatesTrace: the daemon mints a fresh valid
// trace when the client sends none, and returns it in the traceparent
// response header.
func TestSolveWithoutTraceparentOriginatesTrace(t *testing.T) {
	s, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(service.SolveRequest{Matrix: info.Fingerprint, Precond: "jacobi"})
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/api/v1/solve", bytes.NewReader(body))
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("solve status %d: %s", rr.Code, rr.Body.String())
	}
	var resp service.SolveResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	tc, err := trace.ParseTraceparent(rr.Header().Get("traceparent"))
	if err != nil {
		t.Fatalf("response traceparent header: %v", err)
	}
	if tc.TraceID != resp.TraceID {
		t.Fatalf("header trace id %q != body trace id %q", tc.TraceID, resp.TraceID)
	}
	got, ok := s.Traces().Get(resp.TraceID)
	if !ok || got.ParentSpanID != "" {
		t.Fatalf("server-originated trace should have no parent: %+v ok=%v", got, ok)
	}
}

// TestMalformedTraceparentIsRejectedGracefully: a garbage header must not
// fail the job — the daemon counts it, originates a fresh trace and solves.
func TestMalformedTraceparentIsRejectedGracefully(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, c := newTestServer(t, service.Options{Metrics: reg})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(service.SolveRequest{Matrix: info.Fingerprint, Precond: "jacobi"})
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/api/v1/solve", bytes.NewReader(body))
	req.Header.Set("traceparent", "zz-not-a-traceparent")
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("malformed traceparent failed the solve: %d %s", rr.Code, rr.Body.String())
	}
	var resp service.SolveResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	fresh := trace.Context{TraceID: resp.TraceID, SpanID: "1234567890abcdef"}
	if !fresh.Valid() {
		t.Fatalf("fresh trace id %q not a valid W3C id", resp.TraceID)
	}
	if _, ok := s.Traces().Get(resp.TraceID); !ok {
		t.Fatal("fresh trace not recorded")
	}
	if got := reg.Snapshot().Counters["trace.malformed_traceparent"]; got != 1 {
		t.Fatalf("trace.malformed_traceparent = %d, want 1", got)
	}
}

// TestConcurrentJobsIsolateSpanTrees floods the daemon with concurrent
// traced solves and asserts no trace ever carries another job's spans —
// the per-job tracer contract, exercised under the race detector.
func TestConcurrentJobsIsolateSpanTrees(t *testing.T) {
	s, c := newTestServer(t, service.Options{Workers: 4, TraceHistory: 64})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 12
	type outcome struct {
		tc   trace.Context
		resp *service.SolveResponse
		err  error
	}
	results := make([]outcome, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tc := trace.New()
			resp, _, err := c.SolveTraced(ctx,
				service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}, tc)
			results[i] = outcome{tc: tc, resp: resp, err: err}
		}(i)
	}
	wg.Wait()

	seenJobs := map[string]bool{}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("job %d: %v", i, r.err)
		}
		if r.resp.TraceID != r.tc.TraceID {
			t.Fatalf("job %d answered under trace %q, want %q", i, r.resp.TraceID, r.tc.TraceID)
		}
		tr, ok := s.Traces().Get(r.tc.TraceID)
		if !ok {
			t.Fatalf("job %d trace missing from recorder", i)
		}
		if tr.JobID != r.resp.JobID {
			t.Fatalf("trace %s records job %q, response says %q", r.tc.TraceID, tr.JobID, r.resp.JobID)
		}
		if got := spanAttr(tr.Root, "job_id"); got != r.resp.JobID {
			t.Fatalf("trace %s root span tagged job %q, want %q", r.tc.TraceID, got, r.resp.JobID)
		}
		if seenJobs[tr.JobID] {
			t.Fatalf("job %q appears in two traces", tr.JobID)
		}
		seenJobs[tr.JobID] = true
		if tr.Root.Name != "solve-request" || len(tr.Root.Children) == 0 {
			t.Fatalf("trace %s has a broken tree: %+v", r.tc.TraceID, tr.Root)
		}
	}
}

// TestRejectedJobErrorCarriesIdentifiers: a 429 from a saturated daemon must
// quote the daemon-assigned job id and the caller's trace id, so the client
// can find the rejection in logs and /traces.
func TestRejectedJobErrorCarriesIdentifiers(t *testing.T) {
	s, c := newTestServer(t, service.Options{MaxInflight: 1, QueueCap: -1})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}

	holdDone := make(chan error, 1)
	go func() {
		_, err := c.Solve(ctx, service.SolveRequest{
			Matrix: info.Fingerprint, Precond: "jacobi", HoldMS: 1500, MaxIter: 5,
		})
		holdDone <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatalf("stats: %v", err)
		}
		if st.Queue.Inflight == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("holding job never admitted: %+v", st.Queue)
		}
		time.Sleep(5 * time.Millisecond)
	}

	sent := trace.New()
	_, used, err := c.SolveTraced(ctx,
		service.SolveRequest{Matrix: info.Fingerprint, Precond: "jacobi"}, sent)
	if err == nil {
		t.Fatal("saturated daemon accepted the job, want 429")
	}
	if used.TraceID != sent.TraceID {
		t.Fatalf("error path returned trace %q, want %q", used.TraceID, sent.TraceID)
	}
	var apiErr *client.APIError
	if !asAPIError(err, &apiErr) || apiErr.StatusCode != 429 {
		t.Fatalf("saturation error: %v", err)
	}
	if apiErr.Body.JobID == "" {
		t.Fatal("429 body missing the daemon-assigned job id")
	}
	if apiErr.Body.TraceID != sent.TraceID {
		t.Fatalf("429 body trace id %q, want %q", apiErr.Body.TraceID, sent.TraceID)
	}
	// The rejection itself leaves a trace ending at admission.
	tr, ok := s.Traces().Get(sent.TraceID)
	if !ok || tr.Status != service.JobRejected {
		t.Fatalf("rejected job trace: %+v ok=%v", tr, ok)
	}
	names := map[string]bool{}
	spanNames(tr.Root, names)
	if !names["admission-wait"] || names["cg-solve"] {
		t.Fatalf("rejected trace should end at admission: %v", names)
	}

	if err := <-holdDone; err != nil {
		t.Fatalf("holding job: %v", err)
	}
}

// TestIterationAnomalyDetection covers the baseline math and the warm-solve
// wiring: the first converged solve on a cached factor sets the baseline,
// and a drifting warm solve is flagged.
func TestIterationAnomalyDetection(t *testing.T) {
	cases := []struct {
		baseline, iters int
		want            bool
	}{
		{0, 1000, false}, // no baseline yet — nothing to compare
		{100, 100, false},
		{100, 160, false}, // exactly at the threshold: 100*1.5+10
		{100, 161, true},
		{10, 26, true}, // 10*1.5+10 = 25
		{10, 25, false},
	}
	for _, tc := range cases {
		if got := service.IterationAnomaly(tc.baseline, tc.iters); got != tc.want {
			t.Errorf("IterationAnomaly(%d, %d) = %v, want %v", tc.baseline, tc.iters, got, tc.want)
		}
	}

	// Wire-level: warm solves at the cold solve's iteration count must not
	// be flagged (same operator, same RHS — identical iterations).
	_, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}
	req := service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}
	cold, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.IterAnomaly {
		t.Fatal("cold solve flagged anomalous — baseline must not apply to itself")
	}
	warm, err := c.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache != service.CacheHit {
		t.Fatalf("second solve cache=%q", warm.Cache)
	}
	if warm.IterAnomaly {
		t.Fatalf("identical warm solve flagged anomalous (cold %d iters, warm %d)",
			cold.Iterations, warm.Iterations)
	}
}

// TestSLOSectionTracksWarmAndCold: the daemon's /slo endpoint reports the
// per-fingerprint series the two solves created.
func TestSLOSectionTracksWarmAndCold(t *testing.T) {
	s, c := newTestServer(t, service.Options{})
	ctx := context.Background()
	info, err := c.RegisterMatgen(ctx, "lap64x64", "")
	if err != nil {
		t.Fatal(err)
	}
	req := service.SolveRequest{Matrix: info.Fingerprint, Precond: "fsaie"}
	if _, err := c.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/slo", nil))
	if rr.Code != 200 {
		t.Fatalf("/slo status %d", rr.Code)
	}
	var rep struct {
		Series []struct {
			Fingerprint string `json:"fingerprint"`
			SLO         string `json:"slo"`
		} `json:"series"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/slo not JSON: %v", err)
	}
	got := map[string]bool{}
	for _, se := range rep.Series {
		if se.Fingerprint == info.Fingerprint {
			got[se.SLO] = true
		}
	}
	for _, want := range []string{"cold_solve", "warm_solve", "queue_wait"} {
		if !got[want] {
			t.Errorf("/slo missing %s series for the solved fingerprint: %v", want, got)
		}
	}
}
