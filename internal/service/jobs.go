package service

import (
	"sync"
)

// jobLog is the bounded in-memory job history behind GET /api/v1/jobs:
// every admitted (and rejected) job leaves a record, trimmed oldest-first
// once the history exceeds its capacity. Records are stored by value;
// readers always get copies.
type jobLog struct {
	mu    sync.Mutex
	cap   int
	jobs  map[string]JobInfo
	order []string
}

func newJobLog(capacity int) *jobLog {
	if capacity < 1 {
		capacity = 1
	}
	return &jobLog{cap: capacity, jobs: map[string]JobInfo{}}
}

// put inserts or replaces a job record, trimming finished old records
// beyond capacity.
func (l *jobLog) put(ji JobInfo) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.jobs[ji.ID]; !ok {
		l.order = append(l.order, ji.ID)
	}
	l.jobs[ji.ID] = ji
	for len(l.order) > l.cap {
		// Trim the oldest finished record; an active job outliving the whole
		// history window is kept (it is still observable state).
		trimmed := false
		for i, id := range l.order {
			st := l.jobs[id].State
			if st == JobQueued || st == JobRunning {
				continue
			}
			delete(l.jobs, id)
			l.order = append(l.order[:i], l.order[i+1:]...)
			trimmed = true
			break
		}
		if !trimmed {
			break
		}
	}
}

// get returns a copy of one job record.
func (l *jobLog) get(id string) (JobInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ji, ok := l.jobs[id]
	return ji, ok
}

// list returns copies of all records, most recent first.
func (l *jobLog) list() []JobInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]JobInfo, 0, len(l.order))
	for i := len(l.order) - 1; i >= 0; i-- {
		out = append(out, l.jobs[l.order[i]])
	}
	return out
}
