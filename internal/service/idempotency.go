package service

// Idempotency index: the server half of safe solve retries. A client retry
// races its own earlier attempt — the response may have been lost after the
// solve completed, or the attempt may still be running. Keyed by the
// client-chosen Idempotency-Key header, the index resolves both races:
//
//   - a retry of a COMPLETED request replays the stored response (marked
//     Replayed) instead of re-executing a solve the client already paid for;
//   - a retry of an IN-FLIGHT request waits for the original execution and
//     replays its result — the solve runs exactly once server-side;
//   - a retry of a FAILED/REJECTED attempt re-executes: failures are not
//     cached, so transient rejections (429) stay retryable.

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/telemetry"
)

// idemEntry tracks one idempotency key's lifecycle. done closes when the
// owning request finishes; resp is non-nil only for a completed success.
type idemEntry struct {
	key  string
	done chan struct{}
	resp *SolveResponse
}

// idemIndex is a bounded LRU of idempotency entries. Completed responses
// are retained up to capacity; in-flight entries are pinned (never evicted)
// so a waiter can't lose its rendezvous.
type idemIndex struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // completed entries only, front = most recent
	items map[string]*list.Element
	live  map[string]*idemEntry // in-flight (owner still executing)
	reg   *telemetry.Registry
}

func newIdemIndex(capacity int, reg *telemetry.Registry) *idemIndex {
	if capacity < 1 {
		capacity = 256
	}
	return &idemIndex{
		cap:   capacity,
		ll:    list.New(),
		items: map[string]*list.Element{},
		live:  map[string]*idemEntry{},
		reg:   reg,
	}
}

// claim resolves key to its entry. owner=true means the caller must execute
// the request and finish with complete or abort; owner=false means another
// request owns (or owned) the key — wait on entry.done, then read resp.
func (x *idemIndex) claim(key string) (e *idemEntry, owner bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if el, ok := x.items[key]; ok {
		x.ll.MoveToFront(el)
		return el.Value.(*idemEntry), false
	}
	if e, ok := x.live[key]; ok {
		return e, false
	}
	e = &idemEntry{key: key, done: make(chan struct{})}
	x.live[key] = e
	return e, true
}

// complete stores the owner's successful response and releases waiters.
func (x *idemIndex) complete(e *idemEntry, resp *SolveResponse) {
	x.mu.Lock()
	e.resp = resp
	delete(x.live, e.key)
	x.items[e.key] = x.ll.PushFront(e)
	for x.ll.Len() > x.cap {
		oldest := x.ll.Back()
		old := oldest.Value.(*idemEntry)
		x.ll.Remove(oldest)
		delete(x.items, old.Key())
	}
	x.mu.Unlock()
	close(e.done)
}

// abort drops the owner's claim without storing anything: the next request
// with this key executes fresh. Waiters observe resp == nil.
func (x *idemIndex) abort(e *idemEntry) {
	x.mu.Lock()
	delete(x.live, e.key)
	x.mu.Unlock()
	close(e.done)
}

// await blocks until the entry's owner finishes (or ctx expires) and
// returns the stored response; nil means the owner failed and the caller
// should tell its client to retry.
func (x *idemIndex) await(ctx context.Context, e *idemEntry) (*SolveResponse, error) {
	select {
	case <-e.done:
		return e.resp, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (e *idemEntry) Key() string { return e.key }

// replayCopy returns the response to serve a duplicate request: the
// original job's result with the replay marker set. A shallow copy is
// enough — the stored response is never mutated after complete.
func replayCopy(orig *SolveResponse) *SolveResponse {
	cp := *orig
	cp.Replayed = true
	return &cp
}
