package service_test

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain gates the package on goroutine leaks: the daemon, its SSE
// streams, admission queue and trace recorder all own background
// goroutines with explicit shutdown paths.
func TestMain(m *testing.M) { leakcheck.Main(m) }
