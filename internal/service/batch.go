package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"time"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/obs"
	"repro/internal/prof"
	"repro/internal/roofline"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// The request batcher groups concurrent warm-cache solves on the same
// operator into one block solve. A batch-eligible job holds for up to
// Options.BatchWindow; every job that arrives in that window with the same
// (fingerprint, setup options, tol, max_iter) joins the group, and the
// group executes as a single krylov.SolveBlock over one admission slot —
// one matrix stream serving all columns, which is where the per-RHS speedup
// comes from (see docs/performance.md, "Batched solving").
//
// The grouping changes scheduling, never results: the block solver's
// default decoupled mode makes every column bit-identical to the unbatched
// scalar solve, each job keeps its own trace, idempotency entry, job-log
// record and run report, and a column whose client deadline expires
// deflates out of the block without poisoning the other columns.

// batchMember is one job waiting in (or solved by) a batch group.
type batchMember struct {
	id       string
	req      *SolveRequest
	rm       *RegisteredMatrix
	ji       *JobInfo
	tr       *telemetry.Tracer
	tc       trace.Context
	enqueued time.Time
	// reqCtx carries the client's propagated deadline and disconnect;
	// timeout is the in-flight budget applied once the batch is admitted
	// (min with reqCtx's own deadline, exactly like the unbatched path).
	reqCtx  context.Context
	timeout time.Duration
	done    chan batchOutcome
}

// batchOutcome is what the batch runner hands back to each waiting job.
type batchOutcome struct {
	resp *SolveResponse
	err  error // admission or setup failure; resp is nil
	// setup distinguishes a preconditioner-build failure (HTTP 500, like an
	// unbatched runJob error) from an admission failure (429/503/504).
	setup bool
}

type batchGroup struct {
	key     string
	members []*batchMember
	timer   *time.Timer
}

// batcher collects batch-eligible jobs into per-key groups and launches
// each group after the window (or when it reaches max members).
type batcher struct {
	s      *Server
	window time.Duration
	max    int

	mu     sync.Mutex
	groups map[string]*batchGroup
}

func newBatcher(s *Server, window time.Duration, max int) *batcher {
	return &batcher{s: s, window: window, max: max, groups: map[string]*batchGroup{}}
}

// batchKey extends the preconditioner cache key with the solve knobs: two
// jobs may share a cached factor but still need separate solves when their
// tolerances differ.
func batchKey(fingerprint string, req *SolveRequest) string {
	return fmt.Sprintf("%s|tol=%g|maxiter=%d", PrecondKey(fingerprint, req), req.Tol, req.MaxIter)
}

// eligible reports whether req may ride the batch path: a plain FSAI-family
// solve whose factor is already resident (warm). Cold solves would serialize
// the group behind a setup; resilient solves own their recovery sequence;
// HoldMS jobs are admission-control drills and must occupy their own slot.
func (b *batcher) eligible(req *SolveRequest, rm *RegisteredMatrix) bool {
	if req.Resilient || req.HoldMS > 0 || req.SetupOnly {
		return false
	}
	switch req.Precond {
	case "fsai", "fsaie-sp", "fsaie", "adaptive":
	default:
		return false
	}
	return b.s.cache.Contains(PrecondKey(rm.Info.Fingerprint, req))
}

// submit adds m to its group, opening one (and arming the window timer) if
// none is collecting. The group launches when the timer fires or when it
// reaches max members, whichever comes first.
func (b *batcher) submit(key string, m *batchMember) {
	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{key: key}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.launch(key, g) })
	}
	g.members = append(g.members, m)
	full := len(g.members) >= b.max
	b.mu.Unlock()
	if full {
		b.launch(key, g)
	}
}

// launch removes the group from the collecting set and runs it. Guarded so
// the window timer and a size-triggered launch cannot both run the group.
func (b *batcher) launch(key string, g *batchGroup) {
	b.mu.Lock()
	if b.groups[key] != g {
		b.mu.Unlock()
		return
	}
	delete(b.groups, key)
	members := g.members
	b.mu.Unlock()
	g.timer.Stop()
	go b.run(members)
}

// mergedDone returns a context cancelled once every member context is done:
// the batch's admission wait gives up only when no caller is left waiting.
func mergedDone(ctxs []context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	remaining := int64(len(ctxs))
	var mu sync.Mutex
	for _, c := range ctxs {
		go func(c context.Context) {
			select {
			case <-c.Done():
			case <-ctx.Done():
			}
			mu.Lock()
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				cancel()
			}
		}(c)
	}
	return ctx, cancel
}

// run executes one batch group end to end: one admission slot, one block
// solve, per-member result fan-out. It runs on its own goroutine; every
// member's handler goroutine is blocked on its done channel.
func (b *batcher) run(members []*batchMember) {
	s := b.s
	k := len(members)
	leader := members[0]
	rm := leader.rm
	launchedAt := time.Now()
	batchID := fmt.Sprintf("batch-%06d", s.seq.Add(1))
	logw := s.log.With("batch_id", batchID, "matrix", shortFP(rm.Info.Fingerprint))

	fail := func(err error, setup bool) {
		for _, m := range members {
			m.done <- batchOutcome{err: err, setup: setup}
		}
	}

	reqCtxs := make([]context.Context, k)
	for i, m := range members {
		reqCtxs[i] = m.reqCtx
	}
	merged, cancelMerged := mergedDone(reqCtxs)
	defer cancelMerged()

	// One admission slot for the whole batch — amortization starts at the
	// queue. The wait carries the batch's pprof labels with phase=admission
	// like any job; the leader's ids stand for the group.
	var (
		release func()
		err     error
	)
	prof.Do(merged, func(lctx context.Context) {
		release, err = s.adm.acquire(lctx)
	}, prof.LabelJobID, batchID, prof.LabelTraceID, leader.tc.TraceID,
		prof.LabelFingerprint, shortFP(rm.Info.Fingerprint),
		prof.LabelPhase, prof.PhaseAdmission)
	if err != nil {
		logw.Warn("batch admission failed", "jobs", k, "error", err.Error())
		fail(err, false)
		return
	}
	defer release()
	admittedAt := time.Now()

	for _, m := range members {
		m.ji.QueueWaitNS = admittedAt.Sub(m.enqueued).Nanoseconds()
		m.ji.State = JobRunning
		s.jobs.put(*m.ji)
	}

	// Per-column contexts: each column's in-flight budget is
	// min(client deadline, its own timeout), applied from admission exactly
	// like the unbatched path. An expired column deflates out of the block;
	// the batch context (all-members-merged) only stops the solve when no
	// caller is left.
	colCtx := make([]context.Context, k)
	for i, m := range members {
		ctx, cancel := context.WithTimeout(m.reqCtx, m.timeout)
		defer cancel()
		colCtx[i] = ctx
	}
	// Kernel-level spans of the block solve land on the leader's trace; every
	// member gets its own batched-solve span referencing the batch id.
	batchCtx := trace.NewContext(merged, leader.tc, leader.tr)

	spans := make([]*telemetry.Span, k)
	for i, m := range members {
		sp := m.tr.StartSpan("batched-solve")
		sp.SetAttr("batch_id", batchID)
		sp.SetAttr("batch_size", fmt.Sprint(k))
		sp.SetAttr("column", fmt.Sprint(i))
		spans[i] = sp
	}

	// The factor should be warm (eligibility checked residency), but the
	// entry may have been evicted while the window was open — GetOrBuild
	// handles both, single-flight, like the unbatched path.
	req := leader.req
	key := PrecondKey(rm.Info.Fingerprint, req)
	a := rm.A
	entry, hit, err := s.cache.GetOrBuild(batchCtx, key, func() (*CachedPrecond, error) {
		t0 := time.Now()
		fo := fsai.Options{
			Variant:      fsai.VariantFull,
			Filter:       req.Filter,
			LineBytes:    req.LineBytes,
			PatternPower: req.PatternPower,
			ThresholdTau: req.Tau,
			MaxRowNNZ:    512,
			Workers:      s.opt.Workers,
			Tracer:       trace.TracerFromContext(batchCtx),
			Ctx:          batchCtx,
		}
		p, berr := buildFSAIFamily(req.Precond, a, fo)
		if berr != nil {
			return nil, berr
		}
		return &CachedPrecond{P: p, SetupNS: time.Since(t0).Nanoseconds()}, nil
	})
	if err != nil {
		for _, sp := range spans {
			sp.SetAttr("outcome", "setup-error")
			sp.End()
		}
		logw.Error("batch preconditioner failed", "error", err.Error())
		fail(fmt.Errorf("preconditioner: %v", err), true)
		return
	}
	cacheOutcome := CacheHit
	setupNS := int64(0)
	if !hit {
		cacheOutcome = CacheMiss
		setupNS = entry.SetupNS
		if s.store != nil {
			if serr := s.store.PutFactor(key, rm.Info.Fingerprint, entry.P, entry.SetupNS); serr != nil {
				s.log.Warn("store factor write failed",
					"batch_id", batchID, "matrix", shortFP(rm.Info.Fingerprint), "error", serr.Error())
			}
		}
	}

	// Assemble the column-major RHS block; empty RHS means all-ones, same
	// as the unbatched path.
	n := a.Rows
	bblk := make([]float64, n*k)
	for i, m := range members {
		col := bblk[i*n : (i+1)*n]
		if len(m.req.RHS) == 0 {
			for j := range col {
				col[j] = 1
			}
		} else {
			copy(col, m.req.RHS)
		}
	}
	xblk := make([]float64, n*k)

	label := rm.Info.Name
	if label == "" {
		label = shortFP(rm.Info.Fingerprint)
	}
	s.watcher.Begin(fmt.Sprintf("%s/%s[k=%d]", label, req.Precond, k), req.Tol, req.MaxIter)
	ko := krylov.BlockOptions{
		Tol:            req.Tol,
		MaxIter:        req.MaxIter,
		Workers:        s.opt.Workers,
		CollectTiming:  true,
		Metrics:        s.reg,
		Ctx:            batchCtx,
		ColumnCtx:      colCtx,
		Progress:       s.watcher.Progress,
		ProgressDetail: s.watcher.ProgressDetail,
	}
	m := entry.P.CloneForApply(s.opt.Workers)
	t0 := time.Now()
	br := krylov.SolveBlock(a, xblk, bblk, k, m, ko)
	solveNS := time.Since(t0).Nanoseconds()
	s.watcher.End(batchWatcherResult(br))

	s.reg.Counter("batch.batches_total").Inc()
	s.reg.Counter("batch.jobs_total").Add(int64(k))
	s.reg.Histogram("batch.size", telemetry.ExpBuckets(1, 2, 6)).Observe(float64(k))

	// Per-batch roofline placement: the spmm kernel's AI is the batch's
	// achieved arithmetic intensity (matrix stream charged once per block
	// sweep, vector traffic per column-iteration).
	var (
		rsol       *obs.RooflineSolve
		achievedAI float64
	)
	if t := br.Timing; br.Iterations > 0 && t != (krylov.Timing{}) {
		var colIters int64
		for _, c := range br.Columns {
			colIters += int64(c.Iterations)
		}
		est := roofline.BlockSolveEstimate(a, entry.P.G, br.Iterations, colIters,
			t.SpMV.Nanoseconds(), t.Precond.Nanoseconds(), t.BLAS1.Nanoseconds(),
			s.roofline.Machine())
		for _, e := range est {
			if e.Kernel == roofline.KernelSpMM {
				achievedAI = e.AI
			}
		}
		if len(est) > 0 {
			rs := s.roofline.Observe(batchID, rm.Info.Fingerprint, br.Iterations, est)
			rsol = &rs
		}
		s.reg.Gauge("batch.achieved_ai").Set(achievedAI)
	}
	logw.Info("batch solved", "jobs", k, "iterations", br.Iterations,
		"all_converged", br.AllConverged, "cache", cacheOutcome,
		"solve_ns", solveNS, "per_rhs_ns", solveNS/int64(k), "achieved_ai", achievedAI)

	for i, mem := range members {
		res := br.Columns[i]
		resp := &SolveResponse{
			JobID:      mem.id,
			TraceID:    mem.tc.TraceID,
			Matrix:     rm.Info.Fingerprint,
			Precond:    req.Precond,
			Cache:      cacheOutcome,
			Iterations: res.Iterations,
			Converged:  res.Converged,
			Status:     res.Status.String(),
			RelRes:     res.RelResidual,
			SetupNS:    setupNS,
			SolveNS:    solveNS,
			Batch: &BatchInfo{
				ID:           batchID,
				Size:         k,
				Column:       i,
				WindowWaitNS: launchedAt.Sub(mem.enqueued).Nanoseconds(),
				SolveWallNS:  solveNS,
				PerRHSNS:     solveNS / int64(k),
				AchievedAI:   achievedAI,
			},
		}
		s.reg.Histogram("batch.window_wait_ns", telemetry.ExpBuckets(1e5, 4, 10)).
			Observe(float64(resp.Batch.WindowWaitNS))
		if rsol != nil {
			resp.LowBandwidth = rsol.LowBandwidth
		}
		if hit && res.Converged {
			if base := entry.BaselineIters(); IterationAnomaly(base, res.Iterations) {
				resp.IterAnomaly = true
				s.log.Warn("iteration-count anomaly on batched warm solve",
					"job_id", mem.id, "batch_id", batchID,
					"baseline_iters", base, "iterations", res.Iterations)
			}
		}
		if res.Converged {
			entry.SetBaselineIters(res.Iterations)
		}
		if mem.req.ReturnSolution {
			resp.X = append([]float64(nil), xblk[i*n:(i+1)*n]...)
		}
		s.slo.ObserveSolve(rm.Info.Fingerprint, cacheOutcome == CacheHit,
			setupNS+solveNS, mem.ji.QueueWaitNS)
		if resp.IterAnomaly {
			s.slo.RecordIterationAnomaly(rm.Info.Fingerprint)
		}
		if s.opt.RunsDir != "" {
			resp.Report = s.writeJobReport(mem.id, rm, mem.req, resp, entry.P, nil, res, mem.ji, rsol)
		}
		spans[i].SetAttr("outcome", resp.Status)
		spans[i].SetAttr("cache", resp.Cache)
		spans[i].End()
		mem.done <- batchOutcome{resp: resp}
	}
}

// solveBatched is the handler-side half of the batch path: it enrolls the
// job in its batch group, blocks until the group's block solve finishes,
// and completes the job's own bookkeeping — job log, metrics, trace record,
// HTTP response — exactly as the unbatched tail of handleSolve would. The
// returned response (nil on failure) feeds the caller's idempotency
// completion.
func (s *Server) solveBatched(w http.ResponseWriter, reqCtx context.Context, clientDeadline bool, id string, rm *RegisteredMatrix, req *SolveRequest, tc trace.Context, parentSpan string, tr *telemetry.Tracer, root *telemetry.Span, logw *slog.Logger, enqueued time.Time, ji *JobInfo) *SolveResponse {
	timeout := s.opt.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	m := &batchMember{
		id: id, req: req, rm: rm, ji: ji, tr: tr, tc: tc,
		enqueued: enqueued, reqCtx: reqCtx, timeout: timeout,
		done: make(chan batchOutcome, 1),
	}
	// The window span covers submit-to-result; the runner nests the job's
	// batched-solve span (batch id, column) inside it. Kernel-level solve
	// spans land on the batch leader's trace.
	windowSpan := tr.StartSpan("batch-window")
	s.batch.submit(batchKey(rm.Info.Fingerprint, req), m)
	out := <-m.done
	windowSpan.End()

	if out.err != nil {
		ji.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
		if out.setup {
			ji.State = JobFailed
			ji.Err = out.err.Error()
			s.jobs.put(*ji)
			s.reg.Counter(`service.jobs{status="setup-error"}`).Inc()
			root.SetAttr("outcome", JobFailed)
			root.End()
			s.recordTrace(tr, tc, parentSpan, ji, JobFailed)
			logw.Error("job failed", "error", out.err.Error())
			writeJSON(w, http.StatusInternalServerError, ErrorBody{
				Error: out.err.Error(), JobID: id, TraceID: tc.TraceID})
			return nil
		}
		ji.State = JobRejected
		ji.Err = out.err.Error()
		s.jobs.put(*ji)
		root.SetAttr("outcome", JobRejected)
		root.End()
		s.recordTrace(tr, tc, parentSpan, ji, JobRejected)
		logw.Warn("job rejected", "error", out.err.Error())
		var sat *SaturatedError
		if errors.As(out.err, &sat) {
			secs := int(math.Ceil(sat.RetryAfter.Seconds()))
			w.Header().Set("Retry-After", fmt.Sprint(secs))
			writeJSON(w, http.StatusTooManyRequests, ErrorBody{
				Error: out.err.Error(), RetryAfterS: secs, JobID: id, TraceID: tc.TraceID})
			return nil
		}
		if clientDeadline && errors.Is(reqCtx.Err(), context.DeadlineExceeded) {
			s.reg.Counter("retry.deadline_expired_total").Inc()
			logw.Warn("client deadline expired while queued")
			writeJSON(w, http.StatusGatewayTimeout, ErrorBody{
				Error: "client deadline expired while queued", JobID: id, TraceID: tc.TraceID})
			return nil
		}
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error: out.err.Error(), JobID: id, TraceID: tc.TraceID})
		return nil
	}

	resp := out.resp
	total := time.Since(enqueued)
	ji.TotalNS = total.Nanoseconds()
	ji.FinishedAt = time.Now().UTC().Format(time.RFC3339Nano)
	s.adm.observe(total.Nanoseconds())
	s.reg.Histogram("service.job.total_ns", telemetry.ExpBuckets(1e6, 2, 24)).
		Observe(float64(total.Nanoseconds()))
	s.reg.Histogram("service.job.queue_wait_ns", telemetry.ExpBuckets(1e4, 4, 12)).
		Observe(float64(ji.QueueWaitNS))
	resp.TotalNS = total.Nanoseconds()
	resp.QueueWaitNS = ji.QueueWaitNS
	ji.State = JobDone
	ji.Cache = resp.Cache
	ji.Status = resp.Status
	ji.Iterations = resp.Iterations
	ji.Converged = resp.Converged
	ji.RelRes = resp.RelRes
	ji.SetupNS = resp.SetupNS
	ji.SolveNS = resp.SolveNS
	ji.Batch = resp.Batch.ID
	s.jobs.put(*ji)
	s.reg.Counter(fmt.Sprintf("service.jobs{status=%q}", resp.Status)).Inc()
	if clientDeadline && errors.Is(reqCtx.Err(), context.DeadlineExceeded) {
		// The client's budget expired mid-batch; the column deflated out of
		// the block (status "cancelled") without poisoning the other jobs.
		s.reg.Counter("retry.deadline_expired_total").Inc()
		logw.Warn("client deadline expired in flight", "status", resp.Status)
	}
	root.SetAttr("outcome", resp.Status)
	root.SetAttr("cache", resp.Cache)
	root.SetAttr("batch_id", resp.Batch.ID)
	root.End()
	s.recordTrace(tr, tc, parentSpan, ji, resp.Status)
	logw.Info("job done",
		"status", resp.Status, "cache", resp.Cache, "iterations", resp.Iterations,
		"converged", resp.Converged, "queue_wait_ns", resp.QueueWaitNS,
		"setup_ns", resp.SetupNS, "solve_ns", resp.SolveNS, "total_ns", resp.TotalNS,
		"batch_id", resp.Batch.ID, "batch_size", resp.Batch.Size)
	writeJSON(w, http.StatusOK, resp)
	return resp
}

// batchWatcherResult condenses a block result into the single-solve shape
// the live watcher displays: the block's sweep count, converged only when
// every column converged, status of the worst column.
func batchWatcherResult(br krylov.BlockResult) krylov.Result {
	out := krylov.Result{Iterations: br.Iterations, Converged: br.AllConverged}
	out.Status = krylov.StatusConverged
	for _, c := range br.Columns {
		if !c.Converged {
			out.Status = c.Status
		}
		if c.RelResidual > out.RelResidual {
			out.RelResidual = c.RelResidual
		}
	}
	return out
}
