package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// SaturatedError is returned by admission.acquire when both the concurrency
// slots and the waiting queue are full. The HTTP layer maps it to 429 with
// a Retry-After header — the service sheds load instead of accepting
// unbounded work.
type SaturatedError struct {
	// RetryAfter is the server's backoff suggestion, derived from the
	// observed job duration and the current backlog.
	RetryAfter time.Duration
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("service: queue saturated, retry after %s", e.RetryAfter)
}

// admission is the job-queue front door: at most maxInflight jobs run
// concurrently (sharing the internal/parallel worker pool between them —
// the pool runs one dispatch at a time and degrades extra concurrent
// kernels to inline execution, so more inflight jobs would oversubscribe
// cores without finishing anything sooner), at most queueCap more may wait
// for a slot, and everything beyond that is rejected immediately.
type admission struct {
	slots    chan struct{}
	queueCap int

	waiting  atomic.Int64
	inflight atomic.Int64

	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64

	// ewmaNS tracks recent job wall time (exponentially weighted) to derive
	// Retry-After suggestions proportional to the actual backlog drain rate.
	ewmaNS atomic.Int64

	reg *telemetry.Registry
}

func newAdmission(maxInflight, queueCap int, reg *telemetry.Registry) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueCap < 0 {
		queueCap = 0
	}
	reg.SetHelp("service_queue_depth", "solve jobs waiting for a concurrency slot")
	reg.SetHelp("service_jobs_inflight", "solve jobs currently holding a concurrency slot")
	reg.SetHelp("service_jobs_rejected", "solve jobs shed with 429 (queue saturated)")
	return &admission{
		slots:    make(chan struct{}, maxInflight),
		queueCap: queueCap,
		reg:      reg,
	}
}

// acquire obtains a concurrency slot, waiting in the bounded queue when all
// slots are busy. It returns a release function, or a *SaturatedError when
// the queue is full, or ctx.Err() when the caller's context ends first.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	default:
	}
	if a.waiting.Add(1) > int64(a.queueCap) {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		a.reg.Counter("service.jobs.rejected").Inc()
		return nil, &SaturatedError{RetryAfter: a.retryAfter()}
	}
	a.reg.Gauge("service.queue.depth").Set(float64(a.waiting.Load()))
	defer func() {
		a.waiting.Add(-1)
		a.reg.Gauge("service.queue.depth").Set(float64(a.waiting.Load()))
	}()
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admitted records a successful slot acquisition and returns its paired
// release.
func (a *admission) admitted() func() {
	a.accepted.Add(1)
	a.reg.Gauge("service.jobs.inflight").Set(float64(a.inflight.Add(1)))
	var once atomic.Bool
	return func() {
		if once.Swap(true) {
			return
		}
		<-a.slots
		a.completed.Add(1)
		a.reg.Gauge("service.jobs.inflight").Set(float64(a.inflight.Add(-1)))
	}
}

// observe feeds one finished job's wall time into the drain-rate estimate.
func (a *admission) observe(ns int64) {
	if ns <= 0 {
		return
	}
	for {
		old := a.ewmaNS.Load()
		next := ns
		if old > 0 {
			next = old + (ns-old)/4 // EWMA with α = 1/4
		}
		if a.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// retryAfter suggests a backoff: the time for the current backlog to drain
// at the observed per-job rate, clamped to [1s, 60s].
func (a *admission) retryAfter() time.Duration {
	avg := a.ewmaNS.Load()
	if avg <= 0 {
		return time.Second
	}
	backlog := a.waiting.Load() + a.inflight.Load() + 1
	d := time.Duration(avg * backlog / int64(cap(a.slots)))
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

func (a *admission) stats() QueueStats {
	return QueueStats{
		Depth:       int(a.waiting.Load()),
		Capacity:    a.queueCap,
		Inflight:    int(a.inflight.Load()),
		MaxInflight: cap(a.slots),
		Accepted:    a.accepted.Load(),
		Rejected:    a.rejected.Load(),
		Completed:   a.completed.Load(),
	}
}
