package experiments

import (
	"encoding/json"
	"io"

	fsai "repro/internal/core"
)

// The JSON export serializes a priced campaign for downstream analysis
// (plotting the figures with external tooling, regression-tracking the
// reproduction's numbers in CI).

// exportMethod is the serialized form of one preconditioner measurement.
type exportMethod struct {
	Variant    string  `json:"variant"`
	Filter     float64 `json:"filter"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	NNZG       int     `json:"nnz_g"`
	ExtPct     float64 `json:"ext_pct"`
	MissG      uint64  `json:"miss_g"`
	MissGT     uint64  `json:"miss_gt"`
	MissPerNNZ float64 `json:"miss_per_nnz"`
	SetupSec   float64 `json:"setup_sec"`
	SolveSec   float64 `json:"solve_sec"`
	GFlops     float64 `json:"gflops"`
}

// exportMatrix is the serialized form of one suite matrix's results.
type exportMatrix struct {
	ID    int            `json:"id"`
	Name  string         `json:"name"`
	Type  string         `json:"type"`
	Rows  int            `json:"rows"`
	NNZ   int            `json:"nnz"`
	Align int            `json:"align_elems"`
	FSAI  exportMethod   `json:"fsai"`
	Sp    []exportMethod `json:"fsaie_sp"`
	Full  []exportMethod `json:"fsaie_full"`

	RandomMissPerNNZ float64 `json:"random_miss_per_nnz,omitempty"`
	RandomGFlops     float64 `json:"random_gflops,omitempty"`
}

// exportCampaign is the top-level JSON document.
type exportCampaign struct {
	Machine   string          `json:"machine"`
	LineBytes int             `json:"line_bytes"`
	Filters   []float64       `json:"filters"`
	Results   []exportMatrix  `json:"results"`
	Summary   []exportSummary `json:"summary_fsaie_full"`
}

type exportSummary struct {
	Filter     string  `json:"filter"`
	AvgIterPct float64 `json:"avg_iter_improvement_pct"`
	AvgTimePct float64 `json:"avg_time_improvement_pct"`
	HighestImp float64 `json:"highest_improvement_pct"`
	HighestDeg float64 `json:"highest_degradation_pct"`
}

func exportOf(m MethodPriced) exportMethod {
	return exportMethod{
		Variant:    m.Variant.String(),
		Filter:     m.Filter,
		Iterations: m.Iterations,
		Converged:  m.Converged,
		NNZG:       m.NNZG,
		ExtPct:     m.ExtPct,
		MissG:      m.MissG,
		MissGT:     m.MissGT,
		MissPerNNZ: m.MissPerNNZ,
		SetupSec:   m.Setup,
		SolveSec:   m.Solve,
		GFlops:     m.GFlops,
	}
}

// WriteJSON serializes the campaign to w as indented JSON.
func (c *PricedCampaign) WriteJSON(w io.Writer) error {
	doc := exportCampaign{
		Machine:   c.Machine.Name,
		LineBytes: c.Machine.LineBytes,
		Filters:   c.Filters,
	}
	for i := range c.Results {
		r := &c.Results[i]
		em := exportMatrix{
			ID:    r.Spec.ID,
			Name:  r.Spec.Name,
			Type:  r.Spec.Type,
			Rows:  r.Rows,
			NNZ:   r.NNZ,
			Align: r.AlignElems,
			FSAI:  exportOf(r.FSAI),
		}
		for _, m := range r.Sp {
			em.Sp = append(em.Sp, exportOf(m))
		}
		for _, m := range r.Full {
			em.Full = append(em.Full, exportOf(m))
		}
		if r.RandomMeasured {
			em.RandomMissPerNNZ = r.RandomMissPerNNZ
			em.RandomGFlops = r.RandomGFlops
		}
		doc.Results = append(doc.Results, em)
	}
	for _, s := range c.Summaries(fsai.VariantFull) {
		doc.Summary = append(doc.Summary, exportSummary{
			Filter:     s.Label,
			AvgIterPct: s.AvgIterPct,
			AvgTimePct: s.AvgTimePct,
			HighestImp: s.HighestImp,
			HighestDeg: s.HighestDeg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
