package experiments

import (
	"fmt"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/perfmodel"
)

// MethodPriced extends a raw measurement with simulated times on one
// machine.
type MethodPriced struct {
	MethodRaw
	Setup  float64 // simulated setup seconds
	Solve  float64 // simulated solve seconds (iterations × iteration time)
	GFlops float64 // Gflop/s of the GᵀGp preconditioning operation
}

// MatrixPriced aggregates priced results for one matrix on one machine.
type MatrixPriced struct {
	MatrixRaw
	Machine arch.Arch

	FSAI MethodPriced
	Sp   []MethodPriced
	Full []MethodPriced

	RandomGFlops float64
	RandomSolve  float64
}

// PricedCampaign is a raw campaign priced on one machine.
type PricedCampaign struct {
	Machine arch.Arch
	Filters []float64
	Results []MatrixPriced
}

// Price converts a raw campaign into simulated times on machine m. The raw
// campaign must have been run with m's cache-line size (Skylake and POWER9
// share a 64-byte raw run).
func Price(raw *RawCampaign, m arch.Arch) *PricedCampaign {
	out := &PricedCampaign{Machine: m, Filters: raw.Opts.Filters}
	for _, mr := range raw.Results {
		pm := MatrixPriced{MatrixRaw: mr, Machine: m}
		pm.FSAI = priceMethod(mr, mr.FSAI, m)
		for _, r := range mr.Sp {
			pm.Sp = append(pm.Sp, priceMethod(mr, r, m))
		}
		for _, r := range mr.Full {
			pm.Full = append(pm.Full, priceMethod(mr, r, m))
		}
		if mr.RandomMeasured {
			g := perfmodel.SpMVCost{NNZ: mr.RandomNNZG, Rows: mr.Rows, LineVisits: mr.RandomLVG, XMisses: mr.RandomMissG}
			gt := perfmodel.SpMVCost{NNZ: mr.RandomNNZG, Rows: mr.Rows, LineVisits: mr.RandomLVGT, XMisses: mr.RandomMissGT}
			pm.RandomGFlops = perfmodel.PrecondGFlops(m, g, gt)
			ic := perfmodel.IterCost{A: aCost(mr), G: g, GT: gt, Rows: mr.Rows}
			pm.RandomSolve = perfmodel.SolveTime(m, ic, mr.RandomIterations)
		}
		out.Results = append(out.Results, pm)
	}
	return out
}

func aCost(mr MatrixRaw) perfmodel.SpMVCost {
	return perfmodel.SpMVCost{NNZ: mr.NNZ, Rows: mr.Rows, LineVisits: mr.FSAI.LVA, XMisses: mr.FSAI.MissA}
}

func priceMethod(mr MatrixRaw, r MethodRaw, m arch.Arch) MethodPriced {
	g := perfmodel.SpMVCost{NNZ: r.NNZG, Rows: mr.Rows, LineVisits: r.LVG, XMisses: r.MissG}
	gt := perfmodel.SpMVCost{NNZ: r.NNZG, Rows: mr.Rows, LineVisits: r.LVGT, XMisses: r.MissGT}
	ic := perfmodel.IterCost{A: aCost(mr), G: g, GT: gt, Rows: mr.Rows}
	return MethodPriced{
		MethodRaw: r,
		Setup: perfmodel.SetupTime(m, perfmodel.SetupCost{
			DirectFlops:  r.Stats.DirectFlops,
			PrecalcFlops: r.Stats.PrecalcFlops,
			PatternOps:   r.Stats.PatternOps,
			Rows:         r.Stats.Rows,
		}),
		Solve:  perfmodel.SolveTime(m, ic, r.Iterations),
		GFlops: perfmodel.PrecondGFlops(m, g, gt),
	}
}

// Improvement summaries -----------------------------------------------------

// variantOf selects the Sp or Full slice of a priced matrix.
func (p *MatrixPriced) variantOf(v fsai.Variant) []MethodPriced {
	if v == fsai.VariantSp {
		return p.Sp
	}
	return p.Full
}

// TimeImprovementPct returns 100·(t_FSAI − t_method)/t_FSAI for the method
// at filter index fi of variant v: positive is a win over the baseline.
func (p *MatrixPriced) TimeImprovementPct(v fsai.Variant, fi int) float64 {
	ms := p.variantOf(v)
	if fi >= len(ms) || p.FSAI.Solve == 0 {
		return 0
	}
	return 100 * (p.FSAI.Solve - ms[fi].Solve) / p.FSAI.Solve
}

// IterImprovementPct returns the analogous iteration-count improvement.
func (p *MatrixPriced) IterImprovementPct(v fsai.Variant, fi int) float64 {
	ms := p.variantOf(v)
	if fi >= len(ms) || p.FSAI.Iterations == 0 {
		return 0
	}
	return 100 * float64(p.FSAI.Iterations-ms[fi].Iterations) / float64(p.FSAI.Iterations)
}

// BestFilterIndex returns the filter index with the highest time
// improvement for variant v on this matrix (the paper's "best filter per
// matrix" rows).
func (p *MatrixPriced) BestFilterIndex(v fsai.Variant) int {
	best, bestImp := 0, p.TimeImprovementPct(v, 0)
	for fi := 1; fi < len(p.variantOf(v)); fi++ {
		if imp := p.TimeImprovementPct(v, fi); imp > bestImp {
			best, bestImp = fi, imp
		}
	}
	return best
}

// FilterSummary is one row of Tables 2/4/5.
type FilterSummary struct {
	Label      string
	AvgIterPct float64
	AvgTimePct float64
	HighestImp float64
	HighestDeg float64 // most negative time improvement (a degradation)
}

// Summaries returns the per-filter rows plus the best-filter row for
// variant v, in the layout of Tables 2/4/5.
func (c *PricedCampaign) Summaries(v fsai.Variant) []FilterSummary {
	var out []FilterSummary
	for fi, f := range c.Filters {
		var iters, times []float64
		for i := range c.Results {
			iters = append(iters, c.Results[i].IterImprovementPct(v, fi))
			times = append(times, c.Results[i].TimeImprovementPct(v, fi))
		}
		out = append(out, summarize(formatFilter(f), iters, times))
	}
	var iters, times []float64
	for i := range c.Results {
		fi := c.Results[i].BestFilterIndex(v)
		iters = append(iters, c.Results[i].IterImprovementPct(v, fi))
		times = append(times, c.Results[i].TimeImprovementPct(v, fi))
	}
	out = append(out, summarize("Best filter", iters, times))
	return out
}

func summarize(label string, iters, times []float64) FilterSummary {
	s := FilterSummary{Label: label}
	s.AvgIterPct = mean(iters)
	s.AvgTimePct = mean(times)
	hi, lo := 0.0, 0.0
	for _, t := range times {
		if t > hi {
			hi = t
		}
		if t < lo {
			lo = t
		}
	}
	s.HighestImp = hi
	s.HighestDeg = lo
	return s
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// formatFilter renders a filter value the way the paper's tables do.
func formatFilter(f float64) string {
	if f == 0 {
		return "0.0"
	}
	return fmt.Sprintf("%g", f)
}
