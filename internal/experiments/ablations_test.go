package experiments

import (
	"strings"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/matgen"
)

func ablationSpec(t *testing.T) matgen.Spec {
	t.Helper()
	spec, ok := matgen.ByName("jump56x56-b4-j1e4")
	if !ok {
		t.Fatal("missing ablation spec")
	}
	return spec
}

func TestAblationAlignment(t *testing.T) {
	out, err := AblationAlignment(ablationSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "\n") < 9 { // header + 8 alignments
		t.Errorf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "align") {
		t.Error("header missing")
	}
}

func TestAblationLineSize(t *testing.T) {
	out, err := AblationLineSize(ablationSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"32", "64", "128", "256", "512"} {
		if !strings.Contains(out, want) {
			t.Errorf("line size %s missing:\n%s", want, out)
		}
	}
}

// TestLineSizeMonotonicity asserts the numeric property behind the sweep:
// larger cache lines admit weakly more (filtered) fill-in.
func TestLineSizeMonotonicity(t *testing.T) {
	a := ablationSpec(t).Generate()
	prevNNZ := 0
	for _, lineBytes := range []int{32, 64, 128, 256} {
		opts := fsai.DefaultOptions()
		opts.LineBytes = lineBytes
		opts.Filter = 0 // unfiltered: admissibility alone
		p, err := fsai.Compute(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if p.NNZ() < prevNNZ {
			t.Errorf("line=%dB: nnz %d < previous %d", lineBytes, p.NNZ(), prevNNZ)
		}
		prevNNZ = p.NNZ()
	}
}

func TestAblationPatternPower(t *testing.T) {
	out, err := AblationPatternPower(ablationSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "FSAIE(full)") != 3 {
		t.Errorf("want 3 powers x FSAIE rows:\n%s", out)
	}
}

func TestAblationPreconditioners(t *testing.T) {
	out, err := AblationPreconditioners(matgen.QuickSuite()[:3])
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plain CG", "Jacobi", "IC(0)", "FSAIE(full)"} {
		if !strings.Contains(out, want) {
			t.Errorf("column %s missing", want)
		}
	}
	if strings.Contains(out, "n/c") {
		t.Errorf("a preconditioned solve failed to converge:\n%s", out)
	}
}

func TestAblationOrdering(t *testing.T) {
	out, err := AblationOrdering(ablationSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"natural", "rcm", "random"} {
		if !strings.Contains(out, want) {
			t.Errorf("ordering %s missing:\n%s", want, out)
		}
	}
}

func TestAblationFigure3Histogram(t *testing.T) {
	out, err := AblationFigure3Histogram(matgen.QuickSuite()[:3])
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "line=") != 2 {
		t.Errorf("want both line sizes:\n%s", out)
	}
}

func TestAblationFEM(t *testing.T) {
	out, err := AblationFEM()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"poisson-graded", "diffusion-jump", "elasticity-clamped", "mass", "FSAIE it"} {
		if !strings.Contains(out, want) {
			t.Errorf("FEM ablation missing %q:\n%s", want, out)
		}
	}
}
