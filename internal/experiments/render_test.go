package experiments

import (
	"strings"
	"testing"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/matgen"
)

// miniSpecs returns a 3-matrix subset for fast render tests.
func miniSpecs() []matgen.Spec {
	qs := matgen.QuickSuite()
	return qs[:3]
}

func TestCampaignRendersAllArtifacts(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{
		L1:           arch.Skylake().L1Sim,
		WithRandom:   true,
		WithStandard: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Price(raw, arch.Skylake())

	t1 := c.Table1()
	for _, want := range []string{"Table 1", "FSAI", "Setup", "%NNZ", "Setup overhead"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	st := c.SummaryTable()
	for _, want := range []string{"FSAIE(sp)", "FSAIE(full)", "Best filter", "0.001"} {
		if !strings.Contains(st, want) {
			t.Errorf("SummaryTable missing %q", want)
		}
	}
	t3 := c.Table3()
	if !strings.Contains(t3, "Table 3") || !strings.Contains(t3, "0.1") {
		t.Errorf("Table3 malformed:\n%s", t3)
	}
	// Filter 0.0 row must report zeros (identical patterns).
	for _, line := range strings.Split(t3, "\n") {
		if strings.HasPrefix(line, "0.0 ") {
			if !strings.Contains(line, "0.00") {
				t.Errorf("Table3 filter-0 row should be zero: %q", line)
			}
		}
	}
	for name, s := range map[string]string{
		"FigureTimeDecrease": c.FigureTimeDecrease(),
		"Figure3":            c.Figure3(),
		"Figure4":            c.Figure4(),
		"Figure7":            Figure7([]*PricedCampaign{c}),
	} {
		if len(s) < 100 {
			t.Errorf("%s suspiciously short:\n%s", name, s)
		}
	}
	if !strings.Contains(c.Figure3(), "G_random") {
		t.Error("Figure3 missing random histogram")
	}
}

func TestSkylakePOWER9ShareRawButDifferInTime(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	sky := Price(raw, arch.Skylake())
	p9 := Price(raw, arch.POWER9())
	for i := range sky.Results {
		s, p := sky.Results[i], p9.Results[i]
		if s.FSAI.Iterations != p.FSAI.Iterations {
			t.Error("iteration counts must match across 64-byte machines")
		}
		if s.FSAI.Solve == p.FSAI.Solve {
			t.Error("solve times should differ across machines")
		}
	}
}

func TestRawDeterminism(t *testing.T) {
	opts := RawOptions{L1: arch.Skylake().L1Sim}
	r1, err := RunRaw(miniSpecs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunRaw(miniSpecs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Results {
		a, b := r1.Results[i], r2.Results[i]
		if a.FSAI.Iterations != b.FSAI.Iterations || a.FSAI.MissG != b.FSAI.MissG {
			t.Fatalf("%s: raw campaign not deterministic", a.Spec.Name)
		}
		for fi := range a.Full {
			if a.Full[fi].NNZG != b.Full[fi].NNZG || a.Full[fi].Iterations != b.Full[fi].Iterations {
				t.Fatalf("%s: FSAIE(full) results differ across runs", a.Spec.Name)
			}
		}
	}
}

func TestMethodInvariants(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range raw.Results {
		if !mr.FSAI.Converged {
			t.Errorf("%s: baseline did not converge", mr.Spec.Name)
		}
		if mr.FSAI.ExtPct != 0 {
			t.Errorf("%s: baseline has extension %g%%", mr.Spec.Name, mr.FSAI.ExtPct)
		}
		for fi := range mr.Full {
			full, sp := mr.Full[fi], mr.Sp[fi]
			if full.NNZG < sp.NNZG {
				t.Errorf("%s filter[%d]: full pattern smaller than sp", mr.Spec.Name, fi)
			}
			if !full.Converged || !sp.Converged {
				t.Errorf("%s filter[%d]: non-convergence", mr.Spec.Name, fi)
			}
			// Extended patterns keep misses within a whisker of baseline
			// (capacity noise aside, the mechanism of Section 4).
			if float64(full.MissG) > 1.25*float64(mr.FSAI.MissG)+16 {
				t.Errorf("%s filter[%d]: extension added G misses %d -> %d",
					mr.Spec.Name, fi, mr.FSAI.MissG, full.MissG)
			}
		}
	}
}

func TestBestFilterIndexPicksMaximum(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	c := Price(raw, arch.Skylake())
	for i := range c.Results {
		r := &c.Results[i]
		bi := r.BestFilterIndex(fsai.VariantFull)
		best := r.TimeImprovementPct(fsai.VariantFull, bi)
		for fi := range c.Filters {
			if r.TimeImprovementPct(fsai.VariantFull, fi) > best+1e-12 {
				t.Errorf("%s: filter %d beats chosen best %d", r.Spec.Name, fi, bi)
			}
		}
	}
}

func TestHostWallClockTable(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	out := HostWallClockTable(raw)
	if !strings.Contains(out, "wall imp.") || !strings.Contains(out, "average measured improvement") {
		t.Errorf("host table malformed:\n%s", out)
	}
	if strings.Count(out, "\n") < len(miniSpecs())+3 {
		t.Errorf("missing rows:\n%s", out)
	}
}
