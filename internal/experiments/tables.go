package experiments

import (
	"fmt"
	"strings"

	fsai "repro/internal/core"
	"repro/internal/stats"
)

// RefIndex returns the index of the reference filter (0.01) in the campaign sweep
// (falling back to the last filter).
func (c *PricedCampaign) RefIndex() int {
	for i, f := range c.Filters {
		if f == ReferenceFilter {
			return i
		}
	}
	return len(c.Filters) - 1
}

// Table1 renders the per-matrix detail table (paper Table 1): setup time,
// solve time and iterations for FSAI, FSAIE(sp) and FSAIE(full) at the
// reference filter, plus the pattern-growth percentages.
func (c *PricedCampaign) Table1() string {
	fi := c.RefIndex()
	rows := [][]string{{
		"ID", "Matrix", "#rows", "NNZ", "Type",
		"Setup", "Solve", "Iter",
		"Setup", "Solve", "Iter", "%NNZ",
		"Setup", "Solve", "Iter", "%NNZ",
	}}
	for i := range c.Results {
		r := &c.Results[i]
		sp, full := r.Sp[fi], r.Full[fi]
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Spec.ID),
			r.Spec.Name,
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d", r.NNZ),
			r.Spec.Type,
			fmt.Sprintf("%.2E", r.FSAI.Setup),
			fmt.Sprintf("%.2E", r.FSAI.Solve),
			fmt.Sprintf("%d", r.FSAI.Iterations),
			fmt.Sprintf("%.2E", sp.Setup),
			fmt.Sprintf("%.2E", sp.Solve),
			fmt.Sprintf("%d", sp.Iterations),
			fmt.Sprintf("%.2f", sp.ExtPct),
			fmt.Sprintf("%.2E", full.Setup),
			fmt.Sprintf("%.2E", full.Solve),
			fmt.Sprintf("%d", full.Iterations),
			fmt.Sprintf("%.2f", full.ExtPct),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1 (%s, filter=%g): per-matrix FSAI | FSAIE(sp) | FSAIE(full)\n",
		c.Machine.Name, c.Filters[fi])
	sb.WriteString(stats.Table(rows))
	sb.WriteString(c.SetupOverheadSummary())
	return sb.String()
}

// SetupOverheadSummary reports the Section 7.4 statistic: the average setup
// overhead of FSAIE(full) at the reference filter relative to FSAI.
func (c *PricedCampaign) SetupOverheadSummary() string {
	fi := c.RefIndex()
	var ratios []float64
	for i := range c.Results {
		r := &c.Results[i]
		if r.FSAI.Setup > 0 {
			ratios = append(ratios, 100*(r.Full[fi].Setup-r.FSAI.Setup)/r.FSAI.Setup)
		}
	}
	return fmt.Sprintf("Setup overhead of FSAIE(full) filter=%g vs FSAI: avg %.0f%% (Section 7.4)\n",
		c.Filters[fi], stats.Mean(ratios))
}

// SummaryTable renders the Tables 2/4/5 layout for this campaign's machine:
// per-filter average iteration/time improvements and extrema for FSAIE(sp)
// and FSAIE(full).
func (c *PricedCampaign) SummaryTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Summary table (%s): %% average improvements vs FSAI over %d matrices\n",
		c.Machine.Name, len(c.Results))
	for _, v := range []fsai.Variant{fsai.VariantSp, fsai.VariantFull} {
		fmt.Fprintf(&sb, "\n%s\n", v)
		rows := [][]string{{"Filter value", "Avg. iterations", "Avg. time", "Highest imp.", "Highest deg."}}
		for _, s := range c.Summaries(v) {
			rows = append(rows, []string{
				s.Label,
				fmt.Sprintf("%.2f", s.AvgIterPct),
				fmt.Sprintf("%.2f", s.AvgTimePct),
				fmt.Sprintf("%.2f", s.HighestImp),
				fmt.Sprintf("%.2f", s.HighestDeg),
			})
		}
		sb.WriteString(stats.Table(rows))
	}
	return sb.String()
}

// HostWallClockTable reports the *measured* host wall-clock times of the
// campaign's solves (as opposed to the modelled machine times of Tables
// 1-5): per matrix, FSAI vs FSAIE(full) at the reference filter. The
// reproduction host is a commodity x86 core with 64-byte lines, so the
// cache-friendliness of the extension is physically real here too, albeit
// at a much smaller scale than the paper's 40-48-core nodes.
func HostWallClockTable(raw *RawCampaign) string {
	fi := 0
	for i, f := range raw.Opts.Filters {
		if f == ReferenceFilter {
			fi = i
		}
	}
	rows := [][]string{{"Matrix", "FSAI iters", "FSAI solve", "FSAIE iters", "FSAIE solve", "wall imp."}}
	var imps []float64
	for i := range raw.Results {
		r := &raw.Results[i]
		full := r.Full[fi]
		imp := 0.0
		if r.FSAI.WallSolve > 0 {
			imp = 100 * float64(r.FSAI.WallSolve-full.WallSolve) / float64(r.FSAI.WallSolve)
		}
		imps = append(imps, imp)
		rows = append(rows, []string{
			r.Spec.Name,
			fmt.Sprintf("%d", r.FSAI.Iterations),
			fmt.Sprintf("%.1fms", float64(r.FSAI.WallSolve.Microseconds())/1e3),
			fmt.Sprintf("%d", full.Iterations),
			fmt.Sprintf("%.1fms", float64(full.WallSolve.Microseconds())/1e3),
			fmt.Sprintf("%+.1f%%", imp),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Host wall-clock (measured, 1 core): FSAI vs FSAIE(full) filter=%g\n",
		raw.Opts.Filters[fi])
	sb.WriteString(stats.Table(rows))
	fmt.Fprintf(&sb, "average measured improvement: %+.1f%%\n", stats.Mean(imps))
	return sb.String()
}

// Table3 compares the classical post-filtering against the precalculation
// filtering (paper Table 3): percentage iteration increase of the standard
// strategy, per filter value, over the matrices where both converged.
// Requires the raw campaign to have run WithStandard.
func (c *PricedCampaign) Table3() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3 (%s): iteration increase of standard filtering vs precalculation filtering, FSAIE(sp)\n", c.Machine.Name)
	rows := [][]string{{"Filter value", "Avg. iter. inc.", "Highest iter. inc.", "Non-converged (excluded)"}}
	for fi, f := range c.Filters {
		if f == 0 {
			// Identical patterns at filter 0 (nothing is dropped by either
			// strategy); report zeros like the paper's first row.
			rows = append(rows, []string{formatFilter(f), "0.00", "0.00", "0"})
			continue
		}
		var incs []float64
		excluded := 0
		for i := range c.Results {
			m := c.Results[i].Sp[fi]
			if m.StdIterations == 0 {
				continue // not measured
			}
			if !m.StdConverged {
				excluded++ // the paper footnotes one such case at 0.1
				continue
			}
			if m.Iterations > 0 {
				incs = append(incs, 100*float64(m.StdIterations-m.Iterations)/float64(m.Iterations))
			}
		}
		rows = append(rows, []string{
			formatFilter(f),
			fmt.Sprintf("%.2f", stats.Mean(incs)),
			fmt.Sprintf("%.2f", stats.Max(incs)),
			fmt.Sprintf("%d", excluded),
		})
	}
	sb.WriteString(stats.Table(rows))
	return sb.String()
}
