package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// The multi-RHS campaign measures what batching buys: solving the same
// operator for k right-hand sides as k scalar PCG solves back to back
// versus one k-column block solve. The block solve streams each sparse
// operand (A, G, Gᵀ) once per sweep for all k columns, so its per-RHS wall
// time should drop well below the scalar baseline on memory-bound
// problems; the decoupled recurrence keeps every column bit-identical to
// its scalar solve, which the campaign verifies rather than assumes.

// MultiRHSOptions configures one multi-RHS amortization measurement.
// Zero-valued fields use the solver defaults.
type MultiRHSOptions struct {
	Tol     float64
	MaxIter int
	Workers int
	Metrics *telemetry.Registry
	Ctx     context.Context
}

// MultiRHSResult is one matrix's amortization measurement: the scalar
// baseline (k sequential solves) against the k-column block solve over the
// same FSAI factor and the same right-hand sides.
type MultiRHSResult struct {
	Spec matgen.Spec
	Rows int
	NNZ  int
	NNZG int
	K    int

	SetupWallNS int64
	// ScalarWallNS is the wall time of the K scalar solves back to back;
	// BlockWallNS the single K-column block solve over the same factor.
	ScalarWallNS int64
	BlockWallNS  int64
	// ScalarIters is the largest per-column iteration count of the scalar
	// solves; BlockSweeps the block iterations executed (max over columns —
	// deflation lets finished columns stop consuming sweeps).
	ScalarIters int
	BlockSweeps int
	Converged   bool
	// BitIdentical reports whether every block column matched its scalar
	// solution bitwise — the decoupled recurrence's guarantee.
	BitIdentical bool
	// Timing is the block solve's kernel-class breakdown.
	Timing krylov.Timing
}

// PerRHSScalarNS is the scalar baseline's per-right-hand-side wall time.
func (r *MultiRHSResult) PerRHSScalarNS() int64 { return r.ScalarWallNS / int64(r.K) }

// PerRHSBlockNS is the block solve's amortized per-right-hand-side wall time.
func (r *MultiRHSResult) PerRHSBlockNS() int64 { return r.BlockWallNS / int64(r.K) }

// Speedup is the per-RHS amortization factor (scalar / block; >1 is a win).
func (r *MultiRHSResult) Speedup() float64 {
	if r.BlockWallNS == 0 {
		return 0
	}
	return float64(r.ScalarWallNS) / float64(r.BlockWallNS)
}

// RunMultiRHS measures spec with k right-hand sides: FSAI setup once, k
// scalar solves, then one k-column block solve, and a bitwise comparison of
// the two solution sets.
func RunMultiRHS(spec matgen.Spec, k int, opt MultiRHSOptions) (*MultiRHSResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("multirhs: k must be >= 1, got %d", k)
	}
	a := spec.Generate()
	n := a.Rows
	base := spec.RHS(a)

	fopt := fsai.DefaultOptions()
	if opt.Workers > 0 {
		fopt.Workers = opt.Workers
	}
	t0 := time.Now()
	p, err := fsai.Compute(a, fopt)
	if err != nil {
		return nil, fmt.Errorf("multirhs %s: setup: %w", spec.Name, err)
	}
	setupWall := time.Since(t0)

	// k deterministic right-hand sides: the suite RHS plus small
	// column-dependent perturbations, so columns converge at slightly
	// different iterations and the block solve exercises deflation the way
	// real batches do.
	bblk := make([]float64, n*k)
	for j := 0; j < k; j++ {
		col := bblk[j*n : (j+1)*n]
		copy(col, base)
		for i := 0; i < n; i += 17 {
			col[i] += 0.01 * float64(j)
		}
	}

	kopt := krylov.Options{
		Tol: opt.Tol, MaxIter: opt.MaxIter, Workers: opt.Workers,
		CollectTiming: true, Metrics: opt.Metrics, Ctx: opt.Ctx,
	}
	xs := make([]float64, n*k)
	res := &MultiRHSResult{
		Spec: spec, Rows: n, NNZ: a.NNZ(), NNZG: p.NNZ(), K: k,
		SetupWallNS: setupWall.Nanoseconds(), Converged: true,
	}
	t0 = time.Now()
	for j := 0; j < k; j++ {
		sr := krylov.Solve(a, xs[j*n:(j+1)*n], bblk[j*n:(j+1)*n], p, kopt)
		if sr.Status == krylov.StatusCancelled {
			return nil, fmt.Errorf("multirhs %s: scalar solve cancelled: %w",
				spec.Name, context.Cause(opt.Ctx))
		}
		if sr.Iterations > res.ScalarIters {
			res.ScalarIters = sr.Iterations
		}
		res.Converged = res.Converged && sr.Converged
	}
	res.ScalarWallNS = time.Since(t0).Nanoseconds()

	bopt := krylov.BlockOptions{
		Tol: opt.Tol, MaxIter: opt.MaxIter, Workers: opt.Workers,
		CollectTiming: true, Metrics: opt.Metrics, Ctx: opt.Ctx,
	}
	xb := make([]float64, n*k)
	t0 = time.Now()
	br := krylov.SolveBlock(a, xb, bblk, k, p, bopt)
	res.BlockWallNS = time.Since(t0).Nanoseconds()
	for _, c := range br.Columns {
		if c.Status == krylov.StatusCancelled {
			return nil, fmt.Errorf("multirhs %s: block solve cancelled: %w",
				spec.Name, context.Cause(opt.Ctx))
		}
	}
	res.BlockSweeps = br.Iterations
	res.Converged = res.Converged && br.AllConverged
	res.Timing = br.Timing
	res.BitIdentical = true
	for i := range xb {
		if xb[i] != xs[i] {
			res.BitIdentical = false
			break
		}
	}
	return res, nil
}

// MultiRHSTable renders the campaign as an aligned text table: per matrix,
// the scalar and block per-RHS wall times, the amortization factor, and
// whether the block columns reproduced the scalar solutions bitwise.
func MultiRHSTable(rs []*MultiRHSResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-RHS amortization (k scalar solves vs one k-column block solve)\n")
	fmt.Fprintf(&b, "%-22s %8s %9s %4s %6s %6s %12s %12s %8s %8s\n",
		"matrix", "rows", "nnz", "k", "iters", "sweeps", "scalar/rhs", "block/rhs", "speedup", "bitwise")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-22s %8d %9d %4d %6d %6d %10.3fms %10.3fms %7.2fx %8v\n",
			r.Spec.Name, r.Rows, r.NNZ, r.K, r.ScalarIters, r.BlockSweeps,
			float64(r.PerRHSScalarNS())/1e6, float64(r.PerRHSBlockNS())/1e6,
			r.Speedup(), r.BitIdentical)
	}
	return b.String()
}

// ReportEntries converts the measurement into two run entries — the scalar
// baseline and the block solve — keyed by distinct variants so fsaicompare
// gates each per-RHS wall time against its own history.
func (r *MultiRHSResult) ReportEntries() []RunEntry {
	scalar := RunEntry{
		MatrixID: r.Spec.ID, Matrix: r.Spec.Name, Type: r.Spec.Type,
		Rows: r.Rows, NNZ: r.NNZ, NNZG: r.NNZG,
		Variant:    fmt.Sprintf("pcg[nrhs=%d]", r.K),
		Iterations: r.ScalarIters, Converged: r.Converged,
		SetupWallNS: r.SetupWallNS, SolveWallNS: r.ScalarWallNS,
		NRHS: r.K,
	}
	block := RunEntry{
		MatrixID: r.Spec.ID, Matrix: r.Spec.Name, Type: r.Spec.Type,
		Rows: r.Rows, NNZ: r.NNZ, NNZG: r.NNZG,
		Variant:    fmt.Sprintf("block-pcg[nrhs=%d]", r.K),
		Iterations: r.BlockSweeps, Converged: r.Converged,
		SetupWallNS: r.SetupWallNS, SolveWallNS: r.BlockWallNS,
		NRHS:   r.K,
		Timing: runTimingOf(r.Timing),
	}
	return []RunEntry{scalar, block}
}

// MultiRHSReport assembles the run report of an -nrhs campaign: two entries
// per matrix (scalar baseline, block solve), the metrics registry snapshot,
// and the op counters with their per-kernel-class split.
func MultiRHSReport(rs []*MultiRHSResult, tool, machine string, reg *telemetry.Registry) *RunReport {
	r := &RunReport{Schema: RunReportSchemaVersion, Tool: tool, Machine: machine}
	for _, m := range rs {
		r.Entries = append(r.Entries, m.ReportEntries()...)
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Metrics = &snap
	}
	if sparse.OpCountersEnabled() {
		r.SetSpMVOps(sparse.ReadOpCounters())
		r.SetOpClasses(sparse.ReadOpClassCounters())
	}
	return r
}
