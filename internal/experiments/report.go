package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cachesim"
	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// The run report is the repo's stable machine-readable observability
// artifact: one JSON document per tool invocation carrying, for every
// (matrix, variant, filter) measurement, the per-phase setup spans, the
// per-iteration residual history and the solver's kernel-class timing
// breakdown, plus the campaign-wide metrics registry (iteration timing
// histograms) and the SpMV op/byte counters. Perf PRs diff two reports to
// prove a before/after; the schema is versioned so old artifacts stay
// decodable or fail loudly.

// RunReportSchemaVersion is the current schema_version written by
// WriteRunReport. ReadRunReport accepts any version it can upgrade in place
// (RunReportMinSchemaVersion and later); newer or unknown versions fail
// loudly.
//
// Version history:
//
//	1: initial — entries with phases/history/timing, metrics, spmv_ops.
//	2: adds the per-entry "cache" miss-attribution section (optional).
//	3: adds the per-entry typed "status" and the "resilience" recovery
//	   section (both optional).
//	4: adds the per-entry "service" section (optional): the solve daemon's
//	   job id, matrix fingerprint, preconditioner-cache outcome and queue
//	   wait for reports produced by fsaid jobs.
//	5: adds request-trace correlation and SLO state (all optional): the
//	   top-level "trace_id" (fsaisolve runs), the service section's
//	   "trace_id" (fsaid jobs; resolves against the daemon's /traces), and
//	   the per-entry "slo" section (objective, burn rate, remaining error
//	   budget and the warm-solve iteration-anomaly flag at write time).
//	6: adds the per-entry "roofline" section (optional): the solve's
//	   achieved GB/s and GFLOP/s per kernel class laid against the machine
//	   model's roofs, the matrix's rolling bandwidth baseline and the
//	   low-bandwidth flag. The numbers mirror the roofline_* Prometheus
//	   gauges for the same job.
//	7: adds multi-RHS accounting (all optional): the per-entry "nrhs"
//	   (right-hand sides solved together; absent/0 means 1) and the "batch"
//	   section for entries produced as one column of the solve daemon's
//	   batched block solve (batch id, block width, amortized per-RHS wall
//	   time, achieved spmm arithmetic intensity). Roofline kernels gain the
//	   "spmm" class for batched solves, and the top-level "op_classes"
//	   section splits the op/byte counters by kernel class
//	   (spmv/spmm/blas1).
const RunReportSchemaVersion = 7

// RunReportMinSchemaVersion is the oldest schema ReadRunReport upgrades.
const RunReportMinSchemaVersion = 1

// RunReport is the top-level run-report document.
type RunReport struct {
	Schema    int    `json:"schema_version"`
	Tool      string `json:"tool"`
	Machine   string `json:"machine,omitempty"`
	LineBytes int    `json:"line_bytes,omitempty"`

	// TraceID is the run's request-trace identifier (schema v5, optional):
	// stamped by tools that trace their own execution (fsaisolve) so the
	// report correlates with log lines carrying the same id. Reports from
	// fsaid jobs carry the id in the service section instead.
	TraceID string `json:"trace_id,omitempty"`

	Entries []RunEntry `json:"entries"`

	// Metrics is the solver-wide registry snapshot: per-iteration
	// SpMV/precond/BLAS-1 nanosecond histograms and iteration counters.
	Metrics *telemetry.RegistrySnapshot `json:"metrics,omitempty"`

	// SpMVOps is the sparse-kernel op/byte counter snapshot, with the
	// measured arithmetic intensity for roofline drift checks.
	SpMVOps *RunSpMVOps `json:"spmv_ops,omitempty"`

	// OpClasses splits the counted work by kernel class (schema v7,
	// optional): single-vector spmv sweeps, batched spmm sweeps, and the
	// dense blas1 traffic the solver engine accounts. The aggregate SpMVOps
	// equal spmv + spmm; blas1 is tallied only here.
	OpClasses *RunOpClasses `json:"op_classes,omitempty"`
}

// RunOpClasses is the per-kernel-class op-counter split (schema v7).
type RunOpClasses struct {
	SpMV  RunSpMVOps `json:"spmv"`
	SpMM  RunSpMVOps `json:"spmm"`
	BLAS1 RunSpMVOps `json:"blas1"`
}

// RunSpMVOps serializes sparse.OpCounts plus the derived intensity.
type RunSpMVOps struct {
	Calls       int64   `json:"calls"`
	Flops       int64   `json:"flops"`
	MatrixBytes int64   `json:"matrix_bytes"`
	VectorBytes int64   `json:"vector_bytes"`
	AI          float64 `json:"ai_flop_per_byte"`
}

// RunTiming is the solver timing breakdown in nanoseconds.
type RunTiming struct {
	SpMVNS    int64 `json:"spmv_ns"`
	PrecondNS int64 `json:"precond_ns"`
	BLAS1NS   int64 `json:"blas1_ns"`
	TotalNS   int64 `json:"total_ns"`
}

// RunEntry is one (matrix, variant, filter) measurement.
type RunEntry struct {
	MatrixID int    `json:"matrix_id"`
	Matrix   string `json:"matrix"`
	Type     string `json:"type,omitempty"`
	Rows     int    `json:"rows"`
	NNZ      int    `json:"nnz"`

	Variant string  `json:"variant"`
	Filter  float64 `json:"filter"`

	NNZG   int     `json:"nnz_g"`
	ExtPct float64 `json:"ext_pct"`

	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`

	// Status is the typed solver termination ("converged", "max-iter",
	// "indefinite-curvature", "nan-or-inf", "stagnation", "cancelled";
	// schema v3, optional — absent in upgraded older reports).
	Status string `json:"status,omitempty"`

	// SetupPhases lists the Algorithm 3-4 phase wall times in execution
	// order (extend/precalc/filter repeat for FSAIE(full)'s second pass).
	SetupPhases []fsai.PhaseTiming `json:"setup_phases,omitempty"`
	SetupWallNS int64              `json:"setup_wall_ns"`
	SolveWallNS int64              `json:"solve_wall_ns"`

	// History holds per-iteration relative residuals (index 0 is the unit
	// initial residual) when recorded.
	History []float64 `json:"history,omitempty"`

	// Timing is the solver kernel-class breakdown when collected.
	Timing *RunTiming `json:"timing,omitempty"`

	// Cache is the simulated x-access miss attribution of the GᵀGp
	// preconditioner application (schema v2, optional).
	Cache *RunCacheAttrib `json:"cache,omitempty"`

	// Resilience is the recovery record of a fault-aware solve (schema v3,
	// optional): what the solver had to do — shift retries, preconditioner
	// fallbacks, warm restarts — to produce this entry's result.
	Resilience *RunResilience `json:"resilience,omitempty"`

	// Service is the solve-daemon context of an fsaid job (schema v4,
	// optional): absent for CLI runs.
	Service *RunService `json:"service,omitempty"`

	// SLO is the latency-objective verdict of an fsaid job (schema v5,
	// optional): absent for CLI runs and for daemons without SLO state.
	SLO *RunSLO `json:"slo,omitempty"`

	// Roofline is the live roofline placement of this solve (schema v6,
	// optional): absent when kernel timing was not collected.
	Roofline *RunRoofline `json:"roofline,omitempty"`

	// NRHS is the number of right-hand sides solved together (schema v7,
	// optional): 0 or absent means a single-RHS solve. Wall times are for
	// the whole block; divide by NRHS for per-RHS cost.
	NRHS int `json:"nrhs,omitempty"`

	// Batch is the solve daemon's batching section (schema v7, optional):
	// present when this entry's job executed as one column of a batched
	// block solve.
	Batch *RunBatch `json:"batch,omitempty"`
}

// RunBatch records how an fsaid job's solve cost amortized inside a batched
// block solve (schema v7).
type RunBatch struct {
	// ID names the batch execution; Size its block width (number of jobs
	// solved in one admission slot); Column this job's column index.
	ID     string `json:"id"`
	Size   int    `json:"size"`
	Column int    `json:"column"`
	// WindowWaitNS is this job's time in the open batch window; SolveWallNS
	// the whole block solve's wall time; PerRHSNS the amortized per-job
	// share (SolveWallNS / Size).
	WindowWaitNS int64 `json:"window_wait_ns"`
	SolveWallNS  int64 `json:"solve_wall_ns"`
	PerRHSNS     int64 `json:"per_rhs_ns"`
	// AchievedAI is the batch's spmm arithmetic intensity (flop/byte).
	AchievedAI float64 `json:"achieved_ai,omitempty"`
}

// RunRoofline is the report's live-roofline section (schema v6): the
// solve's per-kernel achieved bandwidth and flop rate against the machine
// model, exactly the values the roofline_* gauges exported for the job —
// report and /metrics must agree for the same job id.
type RunRoofline struct {
	// Machine is the arch model the kernels are priced against.
	Machine string `json:"machine"`
	// Kernels holds the per-kernel-class placements (spmv, apply_g, blas1).
	Kernels []roofline.Achieved `json:"kernels"`
	// BaselineBandwidthBytes is the matrix's rolling SpMV-bandwidth
	// baseline before this solve (0 until established).
	BaselineBandwidthBytes float64 `json:"baseline_bandwidth_bytes,omitempty"`
	// LowBandwidth marks a solve >30% below that baseline.
	LowBandwidth bool `json:"low_bandwidth,omitempty"`
}

// RunService is the report's solve-daemon section: which job produced the
// entry, on which registered operator, and whether the preconditioner came
// from the cache. A "hit" entry pairs with SetupWallNS == 0 — the warm
// solve paid no setup; that invariant is what the service-smoke test
// asserts.
type RunService struct {
	JobID string `json:"job_id"`
	// TraceID is the job's request-trace id (schema v5, optional): the
	// daemon serves the matching span tree on GET /traces/<trace-id> and
	// logs the job under the same id.
	TraceID string `json:"trace_id,omitempty"`
	// Fingerprint is the registry handle of the operator (sparse.CSR
	// content fingerprint).
	Fingerprint string `json:"fingerprint"`
	// Cache is the preconditioner-cache outcome: "hit", "miss", "bypass"
	// (resilient job) or "uncached" (none/jacobi).
	Cache string `json:"cache"`
	// QueueWaitNS is how long the job waited for a concurrency slot.
	QueueWaitNS int64 `json:"queue_wait_ns"`
}

// RunSLO is the report's latency-objective section (schema v5): how this
// entry's solve latency compared to its fingerprint's objective, and where
// the sliding-window error budget stood right after the observation.
type RunSLO struct {
	// Kind is the objective the solve was judged against ("warm_solve" for
	// cache hits, "cold_solve" otherwise).
	Kind string `json:"kind"`
	// ObjectiveNS is the latency objective; LatencyNS what the solve took
	// (setup + solve, excluding queue wait); Met whether it was in budget.
	ObjectiveNS int64 `json:"objective_ns"`
	LatencyNS   int64 `json:"latency_ns"`
	Met         bool  `json:"met"`
	// BurnRate / BudgetRemaining snapshot the fingerprint's sliding-window
	// budget state including this solve (burn rate 1.0 = breaching at
	// exactly the allowed rate; remaining 0 = exhausted).
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// IterAnomaly marks a warm solve whose CG iteration count drifted far
	// above the cached factor's baseline.
	IterAnomaly bool `json:"iter_anomaly,omitempty"`
}

// RunAttempt is one recorded setup or solve attempt of a resilient solve
// (the report-side mirror of resilience.Attempt).
type RunAttempt struct {
	Stage      string  `json:"stage"`
	Precond    string  `json:"precond"`
	Shift      float64 `json:"shift,omitempty"`
	Status     string  `json:"status"`
	Err        string  `json:"error,omitempty"`
	Iterations int     `json:"iterations,omitempty"`
	RelRes     float64 `json:"relres,omitempty"`
	NS         int64   `json:"ns"`
}

// RunResilience is the report's recovery section: the requested and final
// preconditioner rungs, the counters, and the full attempt log.
type RunResilience struct {
	// Requested is the rung the solve started at; Final the rung that
	// produced the result.
	Requested string `json:"requested"`
	Final     string `json:"final"`
	// Shift is the diagonal shift the final setup needed (0: none).
	Shift float64 `json:"shift,omitempty"`
	// Retries / Fallbacks mirror the RecoveryLog counters; Recovered is
	// false for a clean first-attempt convergence.
	Retries   int  `json:"retries"`
	Fallbacks int  `json:"fallbacks"`
	Recovered bool `json:"recovered"`
	// Attempts is the ordered attempt log.
	Attempts []RunAttempt `json:"attempts,omitempty"`
}

// RunCacheSweep serializes one sweep's miss attribution (cachesim.SweepAttrib).
type RunCacheSweep struct {
	// Phase is "G" (the Gp product) or "GT" (the Gᵀp product).
	Phase       string `json:"phase"`
	BaseEntries int    `json:"base_entries"`
	FillEntries int    `json:"fill_entries"`
	BaseMisses  uint64 `json:"base_misses"`
	FillMisses  uint64 `json:"fill_misses"`
	// MissPerBaseNNZ/MissPerFillNNZ normalize each miss class by its own
	// entry count — the Section 4 claim is FillMissPerNNZ ≈ 0.
	MissPerBaseNNZ float64 `json:"miss_per_base_nnz"`
	MissPerFillNNZ float64 `json:"miss_per_fill_nnz"`
	// RowBlockMisses buckets misses by row region (BlockRows rows each).
	RowBlockMisses []uint64 `json:"row_block_misses,omitempty"`
}

// RunCacheAttrib is the per-entry cache section: the simulated miss
// attribution next to the modelled (line-visit) and measured (op-counter)
// intensities, so all three views of the same sweep sit side by side.
type RunCacheAttrib struct {
	LineBytes int `json:"line_bytes"`
	BlockRows int `json:"block_rows"`

	Sweeps []RunCacheSweep `json:"sweeps"`

	// SimMissPerNNZ is the cache-simulated (MissG+MissGT)/nnz(G) — the
	// Figure 3 metric as the simulator attributes it.
	SimMissPerNNZ float64 `json:"sim_miss_per_nnz"`
	// ModelLineVisitsPerNNZ is the perfmodel view: distinct x cache lines
	// visited per stored entry ((LVG+LVGT)/nnz(G)), the quantity the
	// cache-friendly extension holds constant.
	ModelLineVisitsPerNNZ float64 `json:"model_line_visits_per_nnz,omitempty"`
	// MeasuredAI is the op-counter flop/byte intensity of the run when the
	// build collects sparse op counters (0 otherwise).
	MeasuredAI float64 `json:"measured_ai,omitempty"`
}

// RunCacheOf converts a cachesim attribution into the report's cache section.
// modelLVPerNNZ may be 0 when line visits were not counted.
func RunCacheOf(a *cachesim.PrecondAttrib, modelLVPerNNZ float64) *RunCacheAttrib {
	if a == nil {
		return nil
	}
	out := &RunCacheAttrib{
		LineBytes:             a.LineBytes,
		BlockRows:             a.BlockRows,
		SimMissPerNNZ:         a.MissPerNNZ(),
		ModelLineVisitsPerNNZ: modelLVPerNNZ,
	}
	for _, s := range []*cachesim.SweepAttrib{&a.G, &a.GT} {
		out.Sweeps = append(out.Sweeps, RunCacheSweep{
			Phase:          s.Phase,
			BaseEntries:    s.BaseEntries,
			FillEntries:    s.FillEntries,
			BaseMisses:     s.BaseMisses,
			FillMisses:     s.FillMisses,
			MissPerBaseNNZ: s.MissPerBaseNNZ(),
			MissPerFillNNZ: s.MissPerFillNNZ(),
			RowBlockMisses: append([]uint64(nil), s.RowBlockMisses...),
		})
	}
	return out
}

// RunResilienceOf converts a resilient-solve outcome into the report's
// recovery section. requested names the rung the caller asked for; nil in,
// nil out.
func RunResilienceOf(requested string, out *resilience.Outcome) *RunResilience {
	if out == nil {
		return nil
	}
	r := &RunResilience{
		Requested: requested,
		Final:     out.Precond,
		Shift:     out.Shift,
		Retries:   out.Log.Retries,
		Fallbacks: out.Log.Fallbacks,
		Recovered: out.Recovered,
	}
	for _, at := range out.Log.Attempts {
		r.Attempts = append(r.Attempts, RunAttempt{
			Stage:      at.Stage,
			Precond:    at.Precond,
			Shift:      at.Shift,
			Status:     at.Status,
			Err:        at.Err,
			Iterations: at.Iterations,
			RelRes:     at.RelRes,
			NS:         at.NS,
		})
	}
	return r
}

func runTimingOf(t krylov.Timing) *RunTiming {
	if t == (krylov.Timing{}) {
		return nil
	}
	return &RunTiming{
		SpMVNS:    t.SpMV.Nanoseconds(),
		PrecondNS: t.Precond.Nanoseconds(),
		BLAS1NS:   t.BLAS1.Nanoseconds(),
		TotalNS:   t.Total.Nanoseconds(),
	}
}

// statusName renders a typed status for the report, leaving the field absent
// (empty) for the zero value so pre-taxonomy measurements stay unchanged.
func statusName(s krylov.Status) string {
	if s == krylov.StatusUnknown {
		return ""
	}
	return s.String()
}

func runEntryOf(mr *MatrixRaw, m *MethodRaw) RunEntry {
	var modelLV float64
	if m.NNZG > 0 {
		modelLV = float64(m.LVG+m.LVGT) / float64(m.NNZG)
	}
	return RunEntry{
		MatrixID:    mr.Spec.ID,
		Matrix:      mr.Spec.Name,
		Type:        mr.Spec.Type,
		Rows:        mr.Rows,
		NNZ:         mr.NNZ,
		Variant:     m.Variant.String(),
		Filter:      m.Filter,
		NNZG:        m.NNZG,
		ExtPct:      m.ExtPct,
		Iterations:  m.Iterations,
		Converged:   m.Converged,
		Status:      statusName(m.Status),
		SetupPhases: m.Stats.Phases,
		SetupWallNS: m.WallSetup.Nanoseconds(),
		SolveWallNS: m.WallSolve.Nanoseconds(),
		History:     m.History,
		Timing:      runTimingOf(m.Timing),
		Cache:       RunCacheOf(m.CacheAttrib, modelLV),
	}
}

// BuildRunReport assembles the report for a raw campaign. tool names the
// producing command; machine/lineBytes describe the simulated target; reg
// may be nil. The current sparse op counters are snapshotted if enabled.
func BuildRunReport(c *RawCampaign, tool, machine string, reg *telemetry.Registry) *RunReport {
	r := &RunReport{
		Schema:    RunReportSchemaVersion,
		Tool:      tool,
		Machine:   machine,
		LineBytes: c.Opts.L1.LineBytes,
	}
	for i := range c.Results {
		mr := &c.Results[i]
		r.Entries = append(r.Entries, runEntryOf(mr, &mr.FSAI))
		for j := range mr.Sp {
			r.Entries = append(r.Entries, runEntryOf(mr, &mr.Sp[j]))
		}
		for j := range mr.Full {
			r.Entries = append(r.Entries, runEntryOf(mr, &mr.Full[j]))
		}
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Metrics = &snap
	}
	if sparse.OpCountersEnabled() {
		r.SetSpMVOps(sparse.ReadOpCounters())
		r.SetOpClasses(sparse.ReadOpClassCounters())
	}
	return r
}

// SetSpMVOps attaches a sparse op-counter snapshot to the report.
func (r *RunReport) SetSpMVOps(c sparse.OpCounts) {
	r.SpMVOps = runOpsOf(c)
}

// SetOpClasses attaches the per-kernel-class counter split to the report.
func (r *RunReport) SetOpClasses(c sparse.OpClassCounts) {
	r.OpClasses = &RunOpClasses{
		SpMV:  *runOpsOf(c.SpMV),
		SpMM:  *runOpsOf(c.SpMM),
		BLAS1: *runOpsOf(c.BLAS1),
	}
}

func runOpsOf(c sparse.OpCounts) *RunSpMVOps {
	return &RunSpMVOps{
		Calls:       c.SpMVCalls,
		Flops:       c.Flops,
		MatrixBytes: c.MatrixBytes,
		VectorBytes: c.VectorBytes,
		AI:          c.AI(),
	}
}

// WriteRunReport serializes the report to w as indented JSON, stamping the
// current schema version.
func WriteRunReport(w io.Writer, r *RunReport) error {
	r.Schema = RunReportSchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRunReport decodes and validates a run report. Older schema versions
// are upgraded in place (every v2 addition is optional, so a v1 document is
// a valid v2 document with no cache sections); newer or unknown versions are
// rejected so downstream tooling never silently misreads an artifact.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	switch {
	case r.Schema < RunReportMinSchemaVersion:
		return nil, fmt.Errorf("run report: schema_version %d predates the oldest upgradable version %d",
			r.Schema, RunReportMinSchemaVersion)
	case r.Schema > RunReportSchemaVersion:
		return nil, fmt.Errorf("run report: schema_version %d, tool supports at most %d",
			r.Schema, RunReportSchemaVersion)
	}
	r.Schema = RunReportSchemaVersion
	return &r, nil
}

// ReadRunReportFile reads and upgrades the run report at path.
func ReadRunReportFile(path string) (*RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, err := ReadRunReport(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// WriteRunReportFile writes the report to path atomically: the JSON goes to
// a temporary file in the same directory which is renamed over the target
// only after a successful write, so a mid-run failure can never truncate an
// existing report.
func WriteRunReportFile(path string, r *RunReport) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := WriteRunReport(tmp, r); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// SolveTotalNS sums an entry list's solve wall times — a convenience for
// quick before/after comparisons of two reports.
func SolveTotalNS(entries []RunEntry) time.Duration {
	var total int64
	for i := range entries {
		total += entries[i].SolveWallNS
	}
	return time.Duration(total)
}
