package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// The run report is the repo's stable machine-readable observability
// artifact: one JSON document per tool invocation carrying, for every
// (matrix, variant, filter) measurement, the per-phase setup spans, the
// per-iteration residual history and the solver's kernel-class timing
// breakdown, plus the campaign-wide metrics registry (iteration timing
// histograms) and the SpMV op/byte counters. Perf PRs diff two reports to
// prove a before/after; the schema is versioned so old artifacts stay
// decodable or fail loudly.

// RunReportSchemaVersion is the current schema_version written by
// WriteRunReport and required by ReadRunReport.
const RunReportSchemaVersion = 1

// RunReport is the top-level run-report document.
type RunReport struct {
	Schema    int    `json:"schema_version"`
	Tool      string `json:"tool"`
	Machine   string `json:"machine,omitempty"`
	LineBytes int    `json:"line_bytes,omitempty"`

	Entries []RunEntry `json:"entries"`

	// Metrics is the solver-wide registry snapshot: per-iteration
	// SpMV/precond/BLAS-1 nanosecond histograms and iteration counters.
	Metrics *telemetry.RegistrySnapshot `json:"metrics,omitempty"`

	// SpMVOps is the sparse-kernel op/byte counter snapshot, with the
	// measured arithmetic intensity for roofline drift checks.
	SpMVOps *RunSpMVOps `json:"spmv_ops,omitempty"`
}

// RunSpMVOps serializes sparse.OpCounts plus the derived intensity.
type RunSpMVOps struct {
	Calls       int64   `json:"calls"`
	Flops       int64   `json:"flops"`
	MatrixBytes int64   `json:"matrix_bytes"`
	VectorBytes int64   `json:"vector_bytes"`
	AI          float64 `json:"ai_flop_per_byte"`
}

// RunTiming is the solver timing breakdown in nanoseconds.
type RunTiming struct {
	SpMVNS    int64 `json:"spmv_ns"`
	PrecondNS int64 `json:"precond_ns"`
	BLAS1NS   int64 `json:"blas1_ns"`
	TotalNS   int64 `json:"total_ns"`
}

// RunEntry is one (matrix, variant, filter) measurement.
type RunEntry struct {
	MatrixID int    `json:"matrix_id"`
	Matrix   string `json:"matrix"`
	Type     string `json:"type,omitempty"`
	Rows     int    `json:"rows"`
	NNZ      int    `json:"nnz"`

	Variant string  `json:"variant"`
	Filter  float64 `json:"filter"`

	NNZG   int     `json:"nnz_g"`
	ExtPct float64 `json:"ext_pct"`

	Iterations int  `json:"iterations"`
	Converged  bool `json:"converged"`

	// SetupPhases lists the Algorithm 3-4 phase wall times in execution
	// order (extend/precalc/filter repeat for FSAIE(full)'s second pass).
	SetupPhases []fsai.PhaseTiming `json:"setup_phases,omitempty"`
	SetupWallNS int64              `json:"setup_wall_ns"`
	SolveWallNS int64              `json:"solve_wall_ns"`

	// History holds per-iteration relative residuals (index 0 is the unit
	// initial residual) when recorded.
	History []float64 `json:"history,omitempty"`

	// Timing is the solver kernel-class breakdown when collected.
	Timing *RunTiming `json:"timing,omitempty"`
}

func runTimingOf(t krylov.Timing) *RunTiming {
	if t == (krylov.Timing{}) {
		return nil
	}
	return &RunTiming{
		SpMVNS:    t.SpMV.Nanoseconds(),
		PrecondNS: t.Precond.Nanoseconds(),
		BLAS1NS:   t.BLAS1.Nanoseconds(),
		TotalNS:   t.Total.Nanoseconds(),
	}
}

func runEntryOf(mr *MatrixRaw, m *MethodRaw) RunEntry {
	return RunEntry{
		MatrixID:    mr.Spec.ID,
		Matrix:      mr.Spec.Name,
		Type:        mr.Spec.Type,
		Rows:        mr.Rows,
		NNZ:         mr.NNZ,
		Variant:     m.Variant.String(),
		Filter:      m.Filter,
		NNZG:        m.NNZG,
		ExtPct:      m.ExtPct,
		Iterations:  m.Iterations,
		Converged:   m.Converged,
		SetupPhases: m.Stats.Phases,
		SetupWallNS: m.WallSetup.Nanoseconds(),
		SolveWallNS: m.WallSolve.Nanoseconds(),
		History:     m.History,
		Timing:      runTimingOf(m.Timing),
	}
}

// BuildRunReport assembles the report for a raw campaign. tool names the
// producing command; machine/lineBytes describe the simulated target; reg
// may be nil. The current sparse op counters are snapshotted if enabled.
func BuildRunReport(c *RawCampaign, tool, machine string, reg *telemetry.Registry) *RunReport {
	r := &RunReport{
		Schema:    RunReportSchemaVersion,
		Tool:      tool,
		Machine:   machine,
		LineBytes: c.Opts.L1.LineBytes,
	}
	for i := range c.Results {
		mr := &c.Results[i]
		r.Entries = append(r.Entries, runEntryOf(mr, &mr.FSAI))
		for j := range mr.Sp {
			r.Entries = append(r.Entries, runEntryOf(mr, &mr.Sp[j]))
		}
		for j := range mr.Full {
			r.Entries = append(r.Entries, runEntryOf(mr, &mr.Full[j]))
		}
	}
	if reg != nil {
		snap := reg.Snapshot()
		r.Metrics = &snap
	}
	if sparse.OpCountersEnabled() {
		r.SetSpMVOps(sparse.ReadOpCounters())
	}
	return r
}

// SetSpMVOps attaches a sparse op-counter snapshot to the report.
func (r *RunReport) SetSpMVOps(c sparse.OpCounts) {
	r.SpMVOps = &RunSpMVOps{
		Calls:       c.SpMVCalls,
		Flops:       c.Flops,
		MatrixBytes: c.MatrixBytes,
		VectorBytes: c.VectorBytes,
		AI:          c.AI(),
	}
}

// WriteRunReport serializes the report to w as indented JSON, stamping the
// current schema version.
func WriteRunReport(w io.Writer, r *RunReport) error {
	r.Schema = RunReportSchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRunReport decodes and validates a run report. Unknown schema versions
// are rejected so downstream tooling never silently misreads an artifact.
func ReadRunReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	if r.Schema != RunReportSchemaVersion {
		return nil, fmt.Errorf("run report: schema_version %d, tool supports %d", r.Schema, RunReportSchemaVersion)
	}
	return &r, nil
}

// SolveTotalNS sums an entry list's solve wall times — a convenience for
// quick before/after comparisons of two reports.
func SolveTotalNS(entries []RunEntry) time.Duration {
	var total int64
	for i := range entries {
		total += entries[i].SolveWallNS
	}
	return time.Duration(total)
}
