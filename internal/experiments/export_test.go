package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/arch"
)

func TestWriteJSON(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim, WithRandom: true})
	if err != nil {
		t.Fatal(err)
	}
	c := Price(raw, arch.Skylake())
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Parse back and verify structure.
	var doc struct {
		Machine   string `json:"machine"`
		LineBytes int    `json:"line_bytes"`
		Results   []struct {
			Name string `json:"name"`
			FSAI struct {
				Iterations int     `json:"iterations"`
				SolveSec   float64 `json:"solve_sec"`
			} `json:"fsai"`
			Full []struct {
				Filter float64 `json:"filter"`
			} `json:"fsaie_full"`
			RandomMissPerNNZ float64 `json:"random_miss_per_nnz"`
		} `json:"results"`
		Summary []struct {
			Filter string `json:"filter"`
		} `json:"summary_fsaie_full"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Machine != "Skylake" || doc.LineBytes != 64 {
		t.Errorf("machine fields wrong: %+v", doc)
	}
	if len(doc.Results) != len(miniSpecs()) {
		t.Fatalf("results %d, want %d", len(doc.Results), len(miniSpecs()))
	}
	for _, r := range doc.Results {
		if r.FSAI.Iterations <= 0 || r.FSAI.SolveSec <= 0 {
			t.Errorf("%s: empty baseline", r.Name)
		}
		if len(r.Full) != len(DefaultFilters()) {
			t.Errorf("%s: %d full entries", r.Name, len(r.Full))
		}
		if r.RandomMissPerNNZ <= 0 {
			t.Errorf("%s: random control missing", r.Name)
		}
	}
	// Summary has the four filters plus the best-filter row.
	if len(doc.Summary) != len(DefaultFilters())+1 {
		t.Errorf("summary rows %d", len(doc.Summary))
	}
	if doc.Summary[len(doc.Summary)-1].Filter != "Best filter" {
		t.Error("missing best-filter summary row")
	}
}
