package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/cachesim"
	fsai "repro/internal/core"
	"repro/internal/fem"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/pattern"
	"repro/internal/perfmodel"
	"repro/internal/precond"
	"repro/internal/reorder"
	"repro/internal/roofline"
	"repro/internal/sparse"
	"repro/internal/spectral"
	"repro/internal/stats"
)

// The ablations quantify the design choices DESIGN.md calls out beyond the
// paper's headline tables: alignment sensitivity, the line-size knob,
// composition with pattern powers (Section 8), classical-preconditioner
// context, and the role of the matrix ordering.

// solveIters builds the preconditioner described by opts for a and returns
// (iterations, nnz(G), extension %, modelled solve seconds on m).
func solveIters(a *sparse.CSR, b []float64, opts fsai.Options, m arch.Arch) (int, int, float64, float64, error) {
	p, err := fsai.Compute(a, opts)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	x := make([]float64, a.Rows)
	res := krylov.Solve(a, x, b, p, krylov.DefaultOptions())
	cache := cachesim.New(m.L1Sim)
	tr := cachesim.TraceOptions{AlignElems: opts.AlignElems, IncludeStreams: true}
	gp := pattern.FromCSR(p.G)
	gm, gtm := cachesim.TracePrecondition(cache, gp, tr)
	am := cachesim.TraceCSR(cache, a, tr)
	elems := m.ElemsPerLine()
	ic := perfmodel.IterCost{
		A:    perfmodel.SpMVCost{NNZ: a.NNZ(), Rows: a.Rows, LineVisits: cachesim.CountLineVisits(pattern.FromCSR(a), elems, opts.AlignElems), XMisses: am},
		G:    perfmodel.SpMVCost{NNZ: p.NNZ(), Rows: a.Rows, LineVisits: cachesim.CountLineVisits(gp, elems, opts.AlignElems), XMisses: gm},
		GT:   perfmodel.SpMVCost{NNZ: p.NNZ(), Rows: a.Rows, LineVisits: cachesim.CountLineVisits(gp.Transpose(), elems, opts.AlignElems), XMisses: gtm},
		Rows: a.Rows,
	}
	return res.Iterations, p.NNZ(), p.ExtensionPct(), perfmodel.SolveTime(m, ic, res.Iterations), nil
}

// AblationAlignment sweeps the cache-line offset of the multiplying vector
// for one matrix: the extension pattern, and hence iterations and cost,
// shift with alignment (the effect behind the paper's Skylake-vs-POWER9
// residual differences).
func AblationAlignment(spec matgen.Spec) (string, error) {
	a := spec.Generate()
	b := spec.RHS(a)
	m := arch.Skylake()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: alignment sensitivity — %s (%s), FSAIE(full) filter=%g, %s\n",
		spec.Name, spec.Type, ReferenceFilter, m.Name)
	fmt.Fprintf(&sb, "%8s %12s %10s %8s %14s\n", "align", "iterations", "nnz(G)", "%NNZ", "modelled time")
	for align := 0; align < m.ElemsPerLine(); align++ {
		opts := fsai.DefaultOptions()
		opts.AlignElems = align
		iters, nnz, ext, tsolve, err := solveIters(a, b, opts, m)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%8d %12d %10d %7.1f%% %12.3fms\n", align, iters, nnz, ext, tsolve*1e3)
	}
	return sb.String(), nil
}

// AblationLineSize sweeps hypothetical cache-line sizes on one matrix,
// isolating the single architecture parameter the method consumes.
func AblationLineSize(spec matgen.Spec) (string, error) {
	a := spec.Generate()
	b := spec.RHS(a)
	m := arch.Skylake()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: cache-line-size sweep — %s (%s), FSAIE(full) filter=%g\n",
		spec.Name, spec.Type, ReferenceFilter)
	fmt.Fprintf(&sb, "%8s %12s %10s %8s\n", "line(B)", "iterations", "nnz(G)", "%NNZ")
	for _, lineBytes := range []int{32, 64, 128, 256, 512} {
		opts := fsai.DefaultOptions()
		opts.LineBytes = lineBytes
		iters, nnz, ext, _, err := solveIters(a, b, opts, m)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "%8d %12d %10d %7.1f%%\n", lineBytes, iters, nnz, ext)
	}
	sb.WriteString("Larger lines admit more zero-cost fill-in: iterations fall, nnz grows.\n")
	return sb.String(), nil
}

// AblationPatternPower composes the cache-friendly extension with richer
// initial patterns Ã^N (the Section 8 claim that the method is
// complementary to any numerical pattern choice).
func AblationPatternPower(spec matgen.Spec) (string, error) {
	a := spec.Generate()
	b := spec.RHS(a)
	m := arch.Skylake()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: initial pattern power — %s (%s), filter=%g\n", spec.Name, spec.Type, ReferenceFilter)
	fmt.Fprintf(&sb, "%6s %-12s %12s %10s %14s\n", "N", "variant", "iterations", "nnz(G)", "modelled time")
	for _, power := range []int{1, 2, 3} {
		for _, v := range []fsai.Variant{fsai.VariantFSAI, fsai.VariantFull} {
			opts := fsai.DefaultOptions()
			opts.Variant = v
			opts.PatternPower = power
			iters, nnz, _, tsolve, err := solveIters(a, b, opts, m)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%6d %-12v %12d %10d %12.3fms\n", power, v, iters, nnz, tsolve*1e3)
		}
	}
	sb.WriteString("The extension keeps paying on top of denser numerical patterns.\n")
	return sb.String(), nil
}

// AblationPreconditioners situates FSAI/FSAIE among the classical
// preconditioners (Jacobi, block-Jacobi, SSOR, IC(0)): iteration counts
// plus host wall-clock per solve. IC(0)/SSOR apply through sequential
// triangular solves — strong iteration counts, poor parallel scaling —
// which is the paper's motivation for SpMV-applied approximate inverses.
func AblationPreconditioners(specs []matgen.Spec) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: preconditioner landscape (iterations | host solve wall-clock)\n")
	fmt.Fprintf(&sb, "%-22s %12s %10s %10s %10s %10s %10s %12s\n",
		"matrix", "plain CG", "Jacobi", "BJacobi16", "SSOR", "IC(0)", "FSAI", "FSAIE(full)")
	for _, spec := range specs {
		a := spec.Generate()
		b := spec.RHS(a)
		x := make([]float64, a.Rows)
		kopt := krylov.DefaultOptions()
		run := func(m krylov.Preconditioner) string {
			t0 := time.Now()
			res := krylov.Solve(a, x, b, m, kopt)
			el := time.Since(t0)
			if !res.Converged {
				return "n/c"
			}
			return fmt.Sprintf("%d|%.0fms", res.Iterations, float64(el.Microseconds())/1e3)
		}
		cells := []string{run(nil), run(krylov.NewJacobi(a))}
		if bj, err := precond.NewBlockJacobi(a, 16); err == nil {
			cells = append(cells, run(bj))
		} else {
			cells = append(cells, "fail")
		}
		if ss, err := precond.NewSSOR(a, 1.0); err == nil {
			cells = append(cells, run(ss))
		} else {
			cells = append(cells, "fail")
		}
		if ic, err := precond.NewIC0(a); err == nil {
			cells = append(cells, run(ic))
		} else {
			cells = append(cells, "brkdwn")
		}
		for _, v := range []fsai.Variant{fsai.VariantFSAI, fsai.VariantFull} {
			opts := fsai.DefaultOptions()
			opts.Variant = v
			p, err := fsai.Compute(a, opts)
			if err != nil {
				return "", err
			}
			cells = append(cells, run(p))
		}
		fmt.Fprintf(&sb, "%-22s %12s %10s %10s %10s %10s %10s %12s\n", spec.Name,
			cells[0], cells[1], cells[2], cells[3], cells[4], cells[5], cells[6])
	}
	return sb.String(), nil
}

// AblationOrdering measures how the matrix ordering conditions the value of
// cache-aware fill-in: on a bandwidth-minimizing (RCM) ordering, index
// neighbours are graph neighbours and the extension entries carry real
// numerical weight; on a random ordering they are numerical noise and the
// filter removes them.
func AblationOrdering(spec matgen.Spec) (string, error) {
	orig := spec.Generate()
	b := spec.RHS(orig)
	m := arch.Skylake()
	rng := rand.New(rand.NewSource(99))
	scramble := make(reorder.Permutation, orig.Rows)
	for i := range scramble {
		scramble[i] = i
	}
	rng.Shuffle(len(scramble), func(i, j int) { scramble[i], scramble[j] = scramble[j], scramble[i] })

	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: ordering — %s (%s), FSAIE(full) filter=%g\n", spec.Name, spec.Type, ReferenceFilter)
	fmt.Fprintf(&sb, "%-10s %10s %12s %12s %8s %12s\n", "ordering", "bandwidth", "FSAI iters", "FSAIE iters", "%NNZ", "iter gain")
	cases := []struct {
		name string
		a    *sparse.CSR
		b    []float64
	}{
		{"natural", orig, b},
		{"rcm", nil, nil},
		{"random", nil, nil},
	}
	p := reorder.RCM(orig)
	cases[1].a = reorder.ApplySym(orig, p)
	cases[1].b = reorder.PermuteVec(b, p)
	cases[2].a = reorder.ApplySym(orig, scramble)
	cases[2].b = reorder.PermuteVec(b, scramble)
	for _, c := range cases {
		base := fsai.DefaultOptions()
		base.Variant = fsai.VariantFSAI
		itBase, _, _, _, err := solveIters(c.a, c.b, base, m)
		if err != nil {
			return "", err
		}
		full := fsai.DefaultOptions()
		itFull, _, ext, _, err := solveIters(c.a, c.b, full, m)
		if err != nil {
			return "", err
		}
		gain := 0.0
		if itBase > 0 {
			gain = 100 * float64(itBase-itFull) / float64(itBase)
		}
		fmt.Fprintf(&sb, "%-10s %10d %12d %12d %7.1f%% %11.1f%%\n",
			c.name, reorder.Bandwidth(c.a), itBase, itFull, ext, gain)
	}
	sb.WriteString("Locality-aware orderings make index-adjacent fill numerically useful.\n")
	return sb.String(), nil
}

// AblationAdaptive contrasts the static a-priori patterns with the dynamic
// (FSPAI-style) pattern search of internal/core's ComputeAdaptive, with and
// without the cache-friendly extension on top — exercising the paper's
// Section 8 claim that the extension composes with any pattern strategy,
// dynamic ones included.
func AblationAdaptive(spec matgen.Spec) (string, error) {
	a := spec.Generate()
	b := spec.RHS(a)
	x := make([]float64, a.Rows)
	kopt := krylov.DefaultOptions()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: static vs dynamic patterns — %s (%s)\n", spec.Name, spec.Type)
	fmt.Fprintf(&sb, "%-30s %12s %10s\n", "strategy", "iterations", "nnz(G)")

	report := func(label string, p *fsai.Preconditioner) {
		res := krylov.Solve(a, x, b, p, kopt)
		it := fmt.Sprintf("%d", res.Iterations)
		if !res.Converged {
			it = "n/c"
		}
		fmt.Fprintf(&sb, "%-30s %12s %10d\n", label, it, p.NNZ())
	}

	static := fsai.DefaultOptions()
	static.Variant = fsai.VariantFSAI
	p, err := fsai.Compute(a, static)
	if err != nil {
		return "", err
	}
	report("static lower(A) (FSAI)", p)

	full := fsai.DefaultOptions()
	if p, err = fsai.Compute(a, full); err != nil {
		return "", err
	}
	report("static + cache ext (FSAIE)", p)

	ad := fsai.AdaptiveOptions{MaxPerRow: 8, Tol: 0.02}
	if p, err = fsai.ComputeAdaptive(a, ad); err != nil {
		return "", err
	}
	report("dynamic greedy (FSPAI-like)", p)

	ad.CacheExtend = 64
	ad.Filter = ReferenceFilter
	if p, err = fsai.ComputeAdaptive(a, ad); err != nil {
		return "", err
	}
	report("dynamic + cache ext", p)
	sb.WriteString("The cache extension composes with dynamic patterns too (Section 8).\n")
	return sb.String(), nil
}

// AblationRoofline places the solver's kernels on each machine's roofline,
// before and after the cache-aware extension: SpMV-class kernels sit deep
// in the bandwidth-bound region (the paper's premise), and the extension
// raises the preconditioner kernel's effective arithmetic intensity.
func AblationRoofline(spec matgen.Spec) (string, error) {
	a := spec.Generate()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: roofline placement — %s (%s)\n\n", spec.Name, spec.Type)
	for _, m := range arch.All() {
		opts := fsai.DefaultOptions()
		opts.Variant = fsai.VariantFSAI
		opts.LineBytes = m.LineBytes
		base, err := fsai.Compute(a, opts)
		if err != nil {
			return "", err
		}
		opts.Variant = fsai.VariantFull
		ext, err := fsai.Compute(a, opts)
		if err != nil {
			return "", err
		}
		kernelOf := func(name string, p *fsai.Preconditioner) roofline.Kernel {
			gp := pattern.FromCSR(p.G)
			lvG := cachesim.CountLineVisits(gp, m.ElemsPerLine(), 0)
			lvGT := cachesim.CountLineVisits(gp.Transpose(), m.ElemsPerLine(), 0)
			k := roofline.PrecondKernel(p.G, lvG, lvGT, m.LineBytes)
			k.Name = name
			return k
		}
		ap := pattern.FromCSR(a)
		kernels := []roofline.Kernel{
			roofline.SpMVKernel(a, cachesim.CountLineVisits(ap, m.ElemsPerLine(), 0), m.LineBytes),
			kernelOf("GᵀGp", base),
			kernelOf("GᵀGp-ext", ext),
			roofline.DotKernel(a.Rows),
			roofline.AxpyKernel(a.Rows),
		}
		sb.WriteString(roofline.Report(m, kernels))
		sb.WriteString("\n")
	}
	sb.WriteString("All kernels are bandwidth bound; the extension raises the effective AI of GᵀGp.\n")
	return sb.String(), nil
}

// AblationSpectrum estimates, per preconditioner variant and filter, the
// condition number of the preconditioned operator κ(G·A·Gᵀ) with Lanczos —
// the spectral quantity whose square root governs CG's iteration count and
// which the cache-aware extension improves. The table pairs each κ with
// the measured iterations to show the mechanism end to end.
func AblationSpectrum(spec matgen.Spec) (string, error) {
	a := spec.Generate()
	b := spec.RHS(a)
	x := make([]float64, a.Rows)
	steps := 80
	var sb strings.Builder
	plain, err := spectral.CondOfMatrix(a, steps)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "Ablation: preconditioned spectrum — %s (%s), κ(A) ≈ %.1f\n",
		spec.Name, spec.Type, plain.Cond())
	fmt.Fprintf(&sb, "%-12s %8s %12s %12s %12s\n", "variant", "filter", "κ(GAGᵀ)", "sqrt(κ)", "iterations")
	report := func(v fsai.Variant, filter float64) error {
		o := fsai.DefaultOptions()
		o.Variant = v
		o.Filter = filter
		p, err := fsai.Compute(a, o)
		if err != nil {
			return err
		}
		res, err := spectral.CondFSAI(a, p.G, p.GT, steps)
		if err != nil {
			return err
		}
		it := krylov.Solve(a, x, b, p, krylov.DefaultOptions())
		fmt.Fprintf(&sb, "%-12v %8.3g %12.1f %12.2f %12d\n",
			v, filter, res.Cond(), math.Sqrt(res.Cond()), it.Iterations)
		return nil
	}
	if err := report(fsai.VariantFSAI, 0); err != nil {
		return "", err
	}
	for _, f := range DefaultFilters() {
		if err := report(fsai.VariantFull, f); err != nil {
			return "", err
		}
	}
	sb.WriteString("CG iterations track sqrt(κ) of the preconditioned operator: the\nextension's iteration savings are spectral, its cost savings architectural.\n")
	return sb.String(), nil
}

// AblationFEM is the out-of-suite generalization check: instead of the
// synthetic stencil generators of the campaign, it assembles four systems
// with the repository's own P1 finite elements (graded-conductivity
// Poisson, quadrant-jump diffusion, clamped plane-strain elasticity, and a
// mass matrix) and verifies the headline effect — FSAIE(full) cutting
// iterations at near-constant modelled per-iteration cost — on genuinely
// assembled matrices.
func AblationFEM() (string, error) {
	mesh := fem.UnitSquare(48)
	type sys struct {
		name string
		a    *sparse.CSR
		b    []float64
	}
	var systems []sys

	graded := fem.AssembleStiffness(mesh, func(x, y float64) float64 { return math.Pow(10, 3*x) })
	a1, b1, _ := fem.ApplyDirichlet(mesh, graded, fem.AssembleLoad(mesh, fem.Const(1)))
	systems = append(systems, sys{"poisson-graded", a1, b1})

	jump := fem.AssembleStiffness(mesh, func(x, y float64) float64 {
		if (x < 0.5) != (y < 0.5) {
			return 1e3
		}
		return 1
	})
	a2, b2, _ := fem.ApplyDirichlet(mesh, jump, fem.AssembleLoad(mesh, fem.Const(1)))
	systems = append(systems, sys{"diffusion-jump", a2, b2})

	elas := fem.AssembleElasticity(mesh, func(x, y float64) fem.Material {
		return fem.Material{E: 200, Nu: 0.3}
	})
	loadV := make([]float64, elas.Rows)
	for i := 0; i < mesh.NumNodes(); i++ {
		loadV[2*i+1] = -1
	}
	a3, b3, _ := fem.ApplyDirichletVector(mesh, elas, loadV)
	systems = append(systems, sys{"elasticity-clamped", a3, b3})

	mass := fem.AssembleMass(mesh, fem.Const(1))
	a4, b4, _ := fem.ApplyDirichlet(mesh, mass, fem.AssembleLoad(mesh, fem.Const(1)))
	systems = append(systems, sys{"mass", a4, b4})

	m := arch.Skylake()
	var sb strings.Builder
	sb.WriteString("Ablation: FEM-assembled systems (P1 elements, not the synthetic suite)\n")
	fmt.Fprintf(&sb, "%-20s %8s %10s | %-10s %-10s %10s | %-12s\n",
		"system", "n", "nnz", "FSAI it", "FSAIE it", "%NNZ", "time imp.")
	for _, s := range systems {
		base := fsai.DefaultOptions()
		base.Variant = fsai.VariantFSAI
		itB, _, _, tB, err := solveIters(s.a, s.b, base, m)
		if err != nil {
			return "", fmt.Errorf("%s: %w", s.name, err)
		}
		full := fsai.DefaultOptions()
		itF, _, ext, tF, err := solveIters(s.a, s.b, full, m)
		if err != nil {
			return "", fmt.Errorf("%s: %w", s.name, err)
		}
		imp := 0.0
		if tB > 0 {
			imp = 100 * (tB - tF) / tB
		}
		fmt.Fprintf(&sb, "%-20s %8d %10d | %-10d %-10d %9.1f%% | %+10.1f%%\n",
			s.name, s.a.Rows, s.a.NNZ(), itB, itF, ext, imp)
	}
	sb.WriteString("The cache-aware extension generalizes beyond the synthetic suite to\nmatrices assembled by the repository's own finite elements.\n")
	return sb.String(), nil
}

// AblationFigure3Histogram reproduces the Figure 3 comparison per line size
// rather than per arch: the distribution of misses per nnz for FSAI vs
// FSAIE(full) as the line grows.
func AblationFigure3Histogram(specs []matgen.Spec) (string, error) {
	var sb strings.Builder
	sb.WriteString("Ablation: misses/nnz(G) distribution vs line size (FSAIE(full), filter=0.01)\n")
	for _, lineBytes := range []int{64, 256} {
		cfg := cachesim.Config{SizeBytes: 32 * lineBytes, LineBytes: lineBytes, Ways: 8}
		var vals []float64
		for _, spec := range specs {
			a := spec.Generate()
			opts := fsai.DefaultOptions()
			opts.LineBytes = lineBytes
			p, err := fsai.Compute(a, opts)
			if err != nil {
				return "", err
			}
			c := cachesim.New(cfg)
			gm, gtm := cachesim.TracePrecondition(c, pattern.FromCSR(p.G), cachesim.TraceOptions{IncludeStreams: true})
			vals = append(vals, float64(gm+gtm)/float64(p.NNZ()))
		}
		fmt.Fprintf(&sb, "\nline=%dB (mean %.4f):\n%s", lineBytes, stats.Mean(vals),
			stats.NewHistogram(vals, 8, 0, 0.5).Render(40))
	}
	return sb.String(), nil
}
