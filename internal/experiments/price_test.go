package experiments

import (
	"testing"

	"repro/internal/arch"
	fsai "repro/internal/core"
)

// TestSummariesBestFilterDominates verifies the defining property of the
// "Best filter" row: selecting the best filter per matrix can never average
// worse than any fixed filter.
func TestSummariesBestFilterDominates(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	c := Price(raw, arch.Skylake())
	for _, v := range []fsai.Variant{fsai.VariantSp, fsai.VariantFull} {
		sums := c.Summaries(v)
		best := sums[len(sums)-1]
		for _, s := range sums[:len(sums)-1] {
			if best.AvgTimePct < s.AvgTimePct-1e-9 {
				t.Errorf("%v: best-filter avg %.4f below fixed filter %s avg %.4f",
					v, best.AvgTimePct, s.Label, s.AvgTimePct)
			}
		}
	}
}

// TestPricingScalesWithIterations: solve time is iterations x a positive
// per-iteration cost, so ratios of solve time and iterations agree within
// each matrix and method.
func TestPricingScalesWithIterations(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	c := Price(raw, arch.Skylake())
	for i := range c.Results {
		r := &c.Results[i]
		if r.FSAI.Iterations == 0 {
			continue
		}
		perIter := r.FSAI.Solve / float64(r.FSAI.Iterations)
		if perIter <= 0 {
			t.Fatalf("%s: non-positive per-iteration time", r.Spec.Name)
		}
		// Same preconditioner, hypothetical half iterations => half time:
		// linearity is structural (SolveTime = iters x IterTime), so check
		// the stored value is exactly iterations x perIter.
		if got := perIter * float64(r.FSAI.Iterations); got != r.FSAI.Solve {
			t.Fatalf("%s: solve time not linear in iterations", r.Spec.Name)
		}
	}
}

// TestPricingMachineMonotonicity: with identical raw measurements, the
// machine with uniformly larger cost constants prices every solve higher.
func TestPricingMachineMonotonicity(t *testing.T) {
	raw, err := RunRaw(miniSpecs(), RawOptions{L1: arch.Skylake().L1Sim})
	if err != nil {
		t.Fatal(err)
	}
	sky := arch.Skylake()
	slow := sky
	slow.Name = "SlowLake"
	slow.MemBandwidth /= 2
	slow.GatherCost *= 2
	slow.MissLatency *= 2
	slow.RowOverhead *= 2
	cs := Price(raw, sky)
	cf := Price(raw, slow)
	for i := range cs.Results {
		if cf.Results[i].FSAI.Solve <= cs.Results[i].FSAI.Solve {
			t.Fatalf("%s: slower machine priced faster", cs.Results[i].Spec.Name)
		}
	}
}
