// Package experiments implements the paper's evaluation campaign: running
// the FSAI / FSAIE(sp) / FSAIE(full) preconditioners over the 72-matrix
// suite for every filter value, measuring iterations, cache misses and
// modelled times, and rendering every table (1-5) and figure (2-7) of
// Section 7.
//
// The campaign is split in two phases. The *raw* phase measures everything
// that depends only on the cache-line size and L1 geometry: sparse patterns,
// PCG iteration counts, x-access cache misses and setup work. Skylake and
// POWER9 share a raw run (both have 64 B lines — the paper notes their
// pattern extensions are fundamentally equal); A64FX (256 B) gets its own.
// The *pricing* phase (price.go) converts raw measurements into simulated
// seconds per architecture.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/arch"
	"repro/internal/cachesim"
	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/pattern"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// DefaultFilters are the paper's filter sweep values.
func DefaultFilters() []float64 { return []float64{0.0, 0.001, 0.01, 0.1} }

// ReferenceFilter is the best common filter value per the paper (0.01);
// Table 1 and Figures 3/4 are reported at this value.
const ReferenceFilter = 0.01

// RawOptions configures a raw campaign run.
type RawOptions struct {
	// L1 is the simulated L1 data-cache geometry; L1.LineBytes drives the
	// pattern extension.
	L1 cachesim.Config
	// Filters is the filter sweep (DefaultFilters if nil).
	Filters []float64
	// Tol and MaxIter configure the PCG solves (1e-8 / 10000 as in the
	// paper when zero).
	Tol     float64
	MaxIter int
	// MaxRowNNZ caps extended row sizes (see fsai.Options). Campaigns use
	// 256 to keep unfiltered extensions of scattered patterns tractable on
	// the reproduction hardware.
	MaxRowNNZ int
	// WithRandom additionally measures the randomly-extended control
	// pattern of Figures 3-4 (same entry count as FSAIE(full) at the
	// reference filter).
	WithRandom bool
	// WithStandard additionally runs FSAIE(sp) with the classical
	// post-filtering for the Table 3 comparison.
	WithStandard bool
	// Workers bounds intra-solve parallelism (1 on the reproduction host).
	Workers int
	// Progress, when non-nil, receives one line per matrix.
	Progress io.Writer
	// Ctx, when non-nil, cancels the campaign cooperatively: the running
	// PCG solve stops at the next check and RunRaw returns the context's
	// error (partial results are discarded).
	Ctx context.Context

	// RecordHistory stores per-iteration relative residuals in each
	// MethodRaw (needed for machine-readable run reports).
	RecordHistory bool
	// CollectTiming enables the per-solve wall-clock kernel breakdown
	// (SpMV / preconditioner / BLAS-1) in each MethodRaw.
	CollectTiming bool
	// Metrics, when non-nil, receives solver iteration-timing histograms
	// and counters from every PCG solve of the campaign, plus per-variant
	// setup-phase counters and (with CollectCacheAttrib) cache-miss
	// attribution series.
	Metrics *telemetry.Registry
	// CollectCacheAttrib enables the attributed precondition trace: each
	// MethodRaw additionally carries the per-phase / per-entry-class /
	// per-row-block x-miss breakdown (the run report's "cache" section).
	CollectCacheAttrib bool
	// ProgressDetail, when non-nil, receives every PCG iteration of every
	// solve in the campaign (the live-observability hook; see
	// obs.SolveWatcher).
	ProgressDetail func(krylov.ProgressInfo)
	// Tracer, when non-nil, receives one span tree per preconditioner
	// setup (the Algorithm 3-4 phases).
	Tracer *telemetry.Tracer
}

func (o *RawOptions) normalize() {
	if o.Filters == nil {
		o.Filters = DefaultFilters()
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10000
	}
	if o.MaxRowNNZ == 0 {
		o.MaxRowNNZ = 256
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.L1.LineBytes == 0 {
		o.L1 = arch.Skylake().L1Sim
	}
}

// MethodRaw is the arch-independent measurement of one preconditioner
// configuration on one matrix.
type MethodRaw struct {
	Variant fsai.Variant
	Filter  float64

	NNZG   int     // stored entries of the lower factor G
	ExtPct float64 // % entries added over the base pattern (Table 1 "% NNZ")

	Iterations int
	Converged  bool
	// Status is the typed solver termination for this measurement.
	Status krylov.Status

	// X-access L1 misses per sweep: the A SpMV and the two preconditioner
	// products (GᵀGp traced jointly, reported per sweep).
	MissA, MissG, MissGT uint64

	// Line visits (distinct x cache lines touched per row, summed) per
	// sweep — the quantity the cache-friendly extension holds constant.
	LVA, LVG, LVGT int

	// MissPerNNZ is (MissG+MissGT) normalized by nnz(G): the Figure 3
	// metric.
	MissPerNNZ float64

	Stats fsai.SetupStats

	// WallSetup/WallSolve are host wall-clock measurements (informative
	// only; the tables use modelled times).
	WallSetup, WallSolve time.Duration

	// History holds per-iteration relative residuals when
	// RawOptions.RecordHistory is set.
	History []float64
	// Timing is the solver's kernel-class wall-clock breakdown when
	// RawOptions.CollectTiming is set.
	Timing krylov.Timing

	// CacheAttrib is the attributed precondition trace when
	// RawOptions.CollectCacheAttrib is set: the same total misses as
	// MissG/MissGT, split by entry class and row block.
	CacheAttrib *cachesim.PrecondAttrib

	// StdIterations is the iteration count under the classical
	// post-filtering strategy (Table 3); 0 when not measured. StdConverged
	// reports whether that solve converged.
	StdIterations int
	StdConverged  bool
}

// MatrixRaw aggregates raw measurements for one suite matrix.
type MatrixRaw struct {
	Spec       matgen.Spec
	Rows, NNZ  int
	AlignElems int

	FSAI MethodRaw
	Sp   []MethodRaw // indexed like Filters
	Full []MethodRaw

	// Random-extension control (Figures 3-4): pattern with the same number
	// of added entries as FSAIE(full) at the reference filter, placed
	// uniformly at random.
	RandomNNZG                int
	RandomMissG, RandomMissGT uint64
	RandomLVG, RandomLVGT     int
	RandomMissPerNNZ          float64
	RandomMeasured            bool
	RandomIterations          int
	RandomConverged           bool
	RandomStats               fsai.SetupStats
}

// RawCampaign is the result of a raw run over a matrix set.
type RawCampaign struct {
	Opts    RawOptions
	Results []MatrixRaw
}

// alignFor returns the deterministic cache-line offset (in elements) of the
// solution/preconditioning vectors for a given matrix: matrices land on
// different alignments exactly as naturally allocated vectors do in the
// paper's runs.
func alignFor(spec matgen.Spec, elemsPerLine int) int {
	return (spec.ID * 3) % elemsPerLine
}

// RunRaw executes the raw campaign over the given matrix specs.
func RunRaw(specs []matgen.Spec, opts RawOptions) (*RawCampaign, error) {
	opts.normalize()
	camp := &RawCampaign{Opts: opts, Results: make([]MatrixRaw, 0, len(specs))}
	for _, spec := range specs {
		mr, err := runMatrix(spec, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		camp.Results = append(camp.Results, mr)
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "[%2d/%2d] %-22s n=%6d nnz=%7d FSAI=%4d iters, FSAIE(full,%.3g)=%4d iters (%+.1f%% nnz)\n",
				spec.ID, len(specs), spec.Name, mr.Rows, mr.NNZ, mr.FSAI.Iterations,
				ReferenceFilter, refOf(mr.Full, opts.Filters).Iterations, refOf(mr.Full, opts.Filters).ExtPct)
		}
	}
	return camp, nil
}

// refOf returns the method measurement at the reference filter (or the last
// one if the sweep does not include it).
func refOf(ms []MethodRaw, filters []float64) MethodRaw {
	for i, f := range filters {
		if f == ReferenceFilter && i < len(ms) {
			return ms[i]
		}
	}
	if len(ms) == 0 {
		return MethodRaw{}
	}
	return ms[len(ms)-1]
}

func runMatrix(spec matgen.Spec, opts RawOptions) (MatrixRaw, error) {
	a := spec.Generate()
	b := spec.RHS(a)
	elems := opts.L1.LineBytes / 8
	align := alignFor(spec, elems)
	mr := MatrixRaw{Spec: spec, Rows: a.Rows, NNZ: a.NNZ(), AlignElems: align}

	kopt := krylov.Options{
		Tol: opts.Tol, MaxIter: opts.MaxIter, Workers: opts.Workers,
		RecordHistory:  opts.RecordHistory,
		CollectTiming:  opts.CollectTiming,
		Metrics:        opts.Metrics,
		ProgressDetail: opts.ProgressDetail,
		Ctx:            opts.Ctx,
	}
	cache := cachesim.New(opts.L1)
	trace := cachesim.TraceOptions{AlignElems: align, IncludeStreams: true}
	missA := cachesim.TraceCSR(cache, a, trace)
	lvA := cachesim.CountLineVisits(pattern.FromCSR(a), elems, align)

	run := func(fopt fsai.Options) (MethodRaw, *fsai.Preconditioner, error) {
		fopt.Tracer = opts.Tracer
		t0 := time.Now()
		p, err := fsai.Compute(a, fopt)
		if err != nil {
			return MethodRaw{}, nil, err
		}
		wallSetup := time.Since(t0)
		x := make([]float64, a.Rows)
		t0 = time.Now()
		res := krylov.Solve(a, x, b, p, kopt)
		wallSolve := time.Since(t0)
		if res.Status == krylov.StatusCancelled {
			return MethodRaw{}, nil, fmt.Errorf("solve cancelled: %w", context.Cause(opts.Ctx))
		}
		gp := pattern.FromCSR(p.G)
		gm, gtm := cachesim.TracePrecondition(cache, gp, trace)
		lvG := cachesim.CountLineVisits(gp, elems, align)
		lvGT := cachesim.CountLineVisits(gp.Transpose(), elems, align)
		var attrib *cachesim.PrecondAttrib
		if opts.CollectCacheAttrib {
			a := cachesim.TracePreconditionAttrib(cache, gp, p.BasePattern, trace, 0)
			attrib = &a
			attrib.Publish(opts.Metrics)
		}
		fsai.PublishSetupStats(opts.Metrics, fopt.Variant.String(), &p.Stats)
		m := MethodRaw{
			Variant:     fopt.Variant,
			Filter:      fopt.Filter,
			NNZG:        p.NNZ(),
			ExtPct:      p.ExtensionPct(),
			Iterations:  res.Iterations,
			Converged:   res.Converged,
			Status:      res.Status,
			MissA:       missA,
			MissG:       gm,
			MissGT:      gtm,
			LVA:         lvA,
			LVG:         lvG,
			LVGT:        lvGT,
			MissPerNNZ:  float64(gm+gtm) / float64(p.NNZ()),
			Stats:       p.Stats,
			WallSetup:   wallSetup,
			WallSolve:   wallSolve,
			History:     res.History,
			Timing:      res.Timing,
			CacheAttrib: attrib,
		}
		return m, p, nil
	}

	baseOpt := fsai.DefaultOptions()
	baseOpt.LineBytes = opts.L1.LineBytes
	baseOpt.AlignElems = align
	baseOpt.MaxRowNNZ = opts.MaxRowNNZ
	baseOpt.Workers = opts.Workers

	// Baseline FSAI.
	fo := baseOpt
	fo.Variant = fsai.VariantFSAI
	var err error
	mr.FSAI, _, err = run(fo)
	if err != nil {
		return mr, err
	}

	var fullRefG *sparse.CSR
	var fullRefBase *pattern.Pattern
	for _, filter := range opts.Filters {
		for _, variant := range []fsai.Variant{fsai.VariantSp, fsai.VariantFull} {
			fo := baseOpt
			fo.Variant = variant
			fo.Filter = filter
			m, p, err := run(fo)
			if err != nil {
				return mr, err
			}
			if opts.WithStandard && variant == fsai.VariantSp && filter > 0 {
				so := fo
				so.StandardFiltering = true
				sm, _, err := run(so)
				if err != nil {
					return mr, err
				}
				m.StdIterations = sm.Iterations
				m.StdConverged = sm.Converged
			}
			if variant == fsai.VariantSp {
				mr.Sp = append(mr.Sp, m)
			} else {
				mr.Full = append(mr.Full, m)
				if filter == ReferenceFilter {
					fullRefG = p.G
					fullRefBase = p.BasePattern
				}
			}
		}
	}

	if opts.WithRandom && fullRefG != nil {
		extra := fullRefG.NNZ() - fullRefBase.NNZ()
		rng := rand.New(rand.NewSource(int64(31 + spec.ID)))
		rp := fsai.RandomExtendPattern(fullRefBase, extra, rng, fsai.ClipLower)
		g, err := fsai.ComputeOnPattern(a, rp, opts.Workers, &mr.RandomStats)
		if err != nil {
			return mr, fmt.Errorf("random extension: %w", err)
		}
		gpat := pattern.FromCSR(g)
		gm, gtm := cachesim.TracePrecondition(cache, gpat, trace)
		mr.RandomNNZG = g.NNZ()
		mr.RandomMissG, mr.RandomMissGT = gm, gtm
		mr.RandomLVG = cachesim.CountLineVisits(gpat, elems, align)
		mr.RandomLVGT = cachesim.CountLineVisits(gpat.Transpose(), elems, align)
		mr.RandomMissPerNNZ = float64(gm+gtm) / float64(g.NNZ())
		x := make([]float64, a.Rows)
		pre := &fsai.Preconditioner{G: g, GT: g.Transpose(), Workers: opts.Workers}
		res := krylov.Solve(a, x, b, pre, kopt)
		if res.Status == krylov.StatusCancelled {
			return mr, fmt.Errorf("solve cancelled: %w", context.Cause(opts.Ctx))
		}
		mr.RandomIterations = res.Iterations
		mr.RandomConverged = res.Converged
		mr.RandomMeasured = true
	}
	return mr, nil
}
