package experiments

import (
	"testing"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/matgen"
)

// runQuick runs the quick-suite raw campaign at the given machine's cache
// geometry; shared across shape tests.
func runQuick(t testing.TB, m arch.Arch, withRandom, withStandard bool) *PricedCampaign {
	t.Helper()
	raw, err := RunRaw(matgen.QuickSuite(), RawOptions{
		L1:           m.L1Sim,
		WithRandom:   withRandom,
		WithStandard: withStandard,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Price(raw, m)
}

// TestShapeSkylake checks the headline qualitative results of the paper on
// the Skylake model over the quick suite: FSAIE(full) with the reference
// filter improves average time over FSAI, filter 0.0 is worse than 0.01,
// and the best-filter average beats every fixed filter.
func TestShapeSkylake(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	c := runQuick(t, arch.Skylake(), true, false)
	sums := c.Summaries(fsai.VariantFull)
	for _, s := range sums {
		t.Logf("full filter=%-11s avgIter=%6.2f%% avgTime=%6.2f%% hi=%6.2f%% lo=%6.2f%%", s.Label, s.AvgIterPct, s.AvgTimePct, s.HighestImp, s.HighestDeg)
	}
	ref := sums[2]  // 0.01
	zero := sums[0] // 0.0
	best := sums[len(sums)-1]
	if ref.AvgTimePct <= 0 {
		t.Errorf("FSAIE(full) filter=0.01 average time improvement %.2f%%, want > 0", ref.AvgTimePct)
	}
	if zero.AvgTimePct >= ref.AvgTimePct {
		t.Errorf("filter=0.0 (%.2f%%) should underperform 0.01 (%.2f%%)", zero.AvgTimePct, ref.AvgTimePct)
	}
	if best.AvgTimePct < ref.AvgTimePct {
		t.Errorf("best filter (%.2f%%) should be >= 0.01 (%.2f%%)", best.AvgTimePct, ref.AvgTimePct)
	}
	t.Log("\n" + c.Figure3())
	t.Log("\n" + c.Figure4())
}

// TestShapeA64FXBeatsSkylake checks the cross-architecture contrast: the
// 256-byte lines of A64FX allow richer extensions and larger average
// improvements than the 64-byte machines (paper Section 7.7).
func TestShapeA64FXBeatsSkylake(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign test")
	}
	sky := runQuick(t, arch.Skylake(), false, false)
	a64 := runQuick(t, arch.A64FX(), false, false)
	sb := sky.Summaries(fsai.VariantFull)
	ab := a64.Summaries(fsai.VariantFull)
	skyBest := sb[len(sb)-1].AvgTimePct
	a64Best := ab[len(ab)-1].AvgTimePct
	t.Logf("best-filter avg time improvement: Skylake %.2f%%, A64FX %.2f%%", skyBest, a64Best)
	if a64Best <= skyBest {
		t.Errorf("A64FX (%.2f%%) should beat Skylake (%.2f%%)", a64Best, skyBest)
	}
	t.Log("\n" + Figure7([]*PricedCampaign{sky, a64}))
}
