package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// reportCampaign runs a tiny telemetry-enabled campaign on one suite matrix.
func reportCampaign(t *testing.T) (*RawCampaign, *telemetry.Registry) {
	t.Helper()
	specs := matgen.QuickSuite()[:1]
	reg := telemetry.NewRegistry()
	sparse.EnableOpCounters(true)
	t.Cleanup(func() { sparse.EnableOpCounters(false) })
	sparse.ResetOpCounters()
	raw, err := RunRaw(specs, RawOptions{
		L1:            arch.Skylake().L1Sim,
		Filters:       []float64{0.01},
		RecordHistory: true,
		CollectTiming: true,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw, reg
}

func TestRunReportRoundTrip(t *testing.T) {
	raw, reg := reportCampaign(t)
	rep := BuildRunReport(raw, "fsaibench-test", "Skylake", reg)

	// One FSAI + one Sp + one Full entry per matrix at a single filter.
	if want := 3 * len(raw.Results); len(rep.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(rep.Entries), want)
	}
	var sawPhases, sawHistory, sawTiming bool
	for _, e := range rep.Entries {
		if e.Iterations <= 0 || e.Rows <= 0 || e.NNZG <= 0 {
			t.Fatalf("entry not populated: %+v", e)
		}
		if len(e.SetupPhases) > 0 {
			sawPhases = true
		}
		if len(e.History) == int(e.Iterations)+1 {
			sawHistory = true
		}
		if e.Timing != nil && e.Timing.SpMVNS > 0 && e.Timing.BLAS1NS > 0 {
			sawTiming = true
		}
	}
	if !sawPhases || !sawHistory || !sawTiming {
		t.Fatalf("report missing phases=%v history=%v timing=%v", sawPhases, sawHistory, sawTiming)
	}
	if rep.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
	for _, name := range []string{"krylov.iter.spmv_ns", "krylov.iter.precond_ns", "krylov.iter.blas1_ns"} {
		h, ok := rep.Metrics.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("timing histogram %q missing or empty", name)
		}
	}
	if rep.SpMVOps == nil || rep.SpMVOps.Calls == 0 || rep.SpMVOps.AI <= 0 {
		t.Fatalf("SpMV op counters missing: %+v", rep.SpMVOps)
	}

	// Round-trip: write then decode, field-for-field on a sample entry.
	var buf bytes.Buffer
	if err := WriteRunReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != RunReportSchemaVersion || got.Tool != "fsaibench-test" || got.Machine != "Skylake" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != len(rep.Entries) {
		t.Fatalf("entries lost in round trip: %d vs %d", len(got.Entries), len(rep.Entries))
	}
	a, b := rep.Entries[0], got.Entries[0]
	if a.Matrix != b.Matrix || a.Variant != b.Variant || a.Iterations != b.Iterations ||
		len(a.History) != len(b.History) || len(a.SetupPhases) != len(b.SetupPhases) {
		t.Fatalf("entry mismatch:\n  wrote %+v\n  read  %+v", a, b)
	}
	if a.Timing != nil && (b.Timing == nil || *a.Timing != *b.Timing) {
		t.Fatalf("timing mismatch: %+v vs %+v", a.Timing, b.Timing)
	}
	if got.SpMVOps == nil || *got.SpMVOps != *rep.SpMVOps {
		t.Fatalf("op counters mismatch: %+v vs %+v", got.SpMVOps, rep.SpMVOps)
	}
	if got.Metrics.Counters["krylov.iterations"] != rep.Metrics.Counters["krylov.iterations"] {
		t.Fatal("metrics counters lost in round trip")
	}
}

func TestRunReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadRunReport(strings.NewReader(`{"schema_version": 99, "tool": "x"}`)); err == nil {
		t.Fatal("unknown schema version must be rejected")
	}
	if _, err := ReadRunReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestRunReportPhasesMatchVariant(t *testing.T) {
	raw, _ := reportCampaign(t)
	rep := BuildRunReport(raw, "t", "Skylake", nil)
	for _, e := range rep.Entries {
		names := map[string]int{}
		for _, p := range e.SetupPhases {
			names[p.Name]++
		}
		if names[fsai.PhaseBasePattern] != 1 || names[fsai.PhaseSolve] != 1 {
			t.Fatalf("%s: phase counts %v", e.Variant, names)
		}
		switch e.Variant {
		case "FSAI":
			if names[fsai.PhaseExtend] != 0 {
				t.Fatalf("FSAI should not extend: %v", names)
			}
		case "FSAIE(sp)":
			if names[fsai.PhaseExtend] != 1 || names[fsai.PhasePrecalc] != 1 || names[fsai.PhaseFilter] != 1 {
				t.Fatalf("FSAIE(sp) phases %v", names)
			}
		case "FSAIE(full)":
			if names[fsai.PhaseExtend] != 2 || names[fsai.PhasePrecalc] != 2 || names[fsai.PhaseFilter] != 2 {
				t.Fatalf("FSAIE(full) phases %v", names)
			}
		}
	}
	if SolveTotalNS(rep.Entries) <= 0 {
		t.Fatal("solve wall total should be positive")
	}
}
