package experiments

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	fsai "repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/resilience"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// reportCampaign runs a tiny telemetry-enabled campaign on one suite matrix.
func reportCampaign(t *testing.T) (*RawCampaign, *telemetry.Registry) {
	t.Helper()
	specs := matgen.QuickSuite()[:1]
	reg := telemetry.NewRegistry()
	sparse.EnableOpCounters(true)
	t.Cleanup(func() { sparse.EnableOpCounters(false) })
	sparse.ResetOpCounters()
	raw, err := RunRaw(specs, RawOptions{
		L1:            arch.Skylake().L1Sim,
		Filters:       []float64{0.01},
		RecordHistory: true,
		CollectTiming: true,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return raw, reg
}

func TestRunReportRoundTrip(t *testing.T) {
	raw, reg := reportCampaign(t)
	rep := BuildRunReport(raw, "fsaibench-test", "Skylake", reg)

	// One FSAI + one Sp + one Full entry per matrix at a single filter.
	if want := 3 * len(raw.Results); len(rep.Entries) != want {
		t.Fatalf("entries = %d, want %d", len(rep.Entries), want)
	}
	var sawPhases, sawHistory, sawTiming bool
	for _, e := range rep.Entries {
		if e.Iterations <= 0 || e.Rows <= 0 || e.NNZG <= 0 {
			t.Fatalf("entry not populated: %+v", e)
		}
		if len(e.SetupPhases) > 0 {
			sawPhases = true
		}
		if len(e.History) == int(e.Iterations)+1 {
			sawHistory = true
		}
		if e.Timing != nil && e.Timing.SpMVNS > 0 && e.Timing.BLAS1NS > 0 {
			sawTiming = true
		}
	}
	if !sawPhases || !sawHistory || !sawTiming {
		t.Fatalf("report missing phases=%v history=%v timing=%v", sawPhases, sawHistory, sawTiming)
	}
	if rep.Metrics == nil {
		t.Fatal("metrics snapshot missing")
	}
	for _, name := range []string{"krylov.iter.spmv_ns", "krylov.iter.precond_ns", "krylov.iter.blas1_ns"} {
		h, ok := rep.Metrics.Histograms[name]
		if !ok || h.Count == 0 {
			t.Fatalf("timing histogram %q missing or empty", name)
		}
	}
	if rep.SpMVOps == nil || rep.SpMVOps.Calls == 0 || rep.SpMVOps.AI <= 0 {
		t.Fatalf("SpMV op counters missing: %+v", rep.SpMVOps)
	}

	// Round-trip: write then decode, field-for-field on a sample entry.
	var buf bytes.Buffer
	if err := WriteRunReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != RunReportSchemaVersion || got.Tool != "fsaibench-test" || got.Machine != "Skylake" {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Entries) != len(rep.Entries) {
		t.Fatalf("entries lost in round trip: %d vs %d", len(got.Entries), len(rep.Entries))
	}
	a, b := rep.Entries[0], got.Entries[0]
	if a.Matrix != b.Matrix || a.Variant != b.Variant || a.Iterations != b.Iterations ||
		len(a.History) != len(b.History) || len(a.SetupPhases) != len(b.SetupPhases) {
		t.Fatalf("entry mismatch:\n  wrote %+v\n  read  %+v", a, b)
	}
	if a.Timing != nil && (b.Timing == nil || *a.Timing != *b.Timing) {
		t.Fatalf("timing mismatch: %+v vs %+v", a.Timing, b.Timing)
	}
	if got.SpMVOps == nil || *got.SpMVOps != *rep.SpMVOps {
		t.Fatalf("op counters mismatch: %+v vs %+v", got.SpMVOps, rep.SpMVOps)
	}
	if got.Metrics.Counters["krylov.iterations"] != rep.Metrics.Counters["krylov.iterations"] {
		t.Fatal("metrics counters lost in round trip")
	}
}

func TestRunReportRejectsUnknownSchema(t *testing.T) {
	if _, err := ReadRunReport(strings.NewReader(`{"schema_version": 99, "tool": "x"}`)); err == nil {
		t.Fatal("unknown schema version must be rejected")
	}
	if _, err := ReadRunReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestRunReportPhasesMatchVariant(t *testing.T) {
	raw, _ := reportCampaign(t)
	rep := BuildRunReport(raw, "t", "Skylake", nil)
	for _, e := range rep.Entries {
		names := map[string]int{}
		for _, p := range e.SetupPhases {
			names[p.Name]++
		}
		if names[fsai.PhaseBasePattern] != 1 || names[fsai.PhaseSolve] != 1 {
			t.Fatalf("%s: phase counts %v", e.Variant, names)
		}
		switch e.Variant {
		case "FSAI":
			if names[fsai.PhaseExtend] != 0 {
				t.Fatalf("FSAI should not extend: %v", names)
			}
		case "FSAIE(sp)":
			if names[fsai.PhaseExtend] != 1 || names[fsai.PhasePrecalc] != 1 || names[fsai.PhaseFilter] != 1 {
				t.Fatalf("FSAIE(sp) phases %v", names)
			}
		case "FSAIE(full)":
			if names[fsai.PhaseExtend] != 2 || names[fsai.PhasePrecalc] != 2 || names[fsai.PhaseFilter] != 2 {
				t.Fatalf("FSAIE(full) phases %v", names)
			}
		}
	}
	if SolveTotalNS(rep.Entries) <= 0 {
		t.Fatal("solve wall total should be positive")
	}
}

func TestRunReportCacheSection(t *testing.T) {
	specs := matgen.QuickSuite()[:1]
	reg := telemetry.NewRegistry()
	raw, err := RunRaw(specs, RawOptions{
		L1:                 arch.Skylake().L1Sim,
		Filters:            []float64{0.01},
		Metrics:            reg,
		CollectCacheAttrib: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildRunReport(raw, "t", "Skylake", reg)
	for _, e := range rep.Entries {
		c := e.Cache
		if c == nil {
			t.Fatalf("%s/%s: cache section missing", e.Matrix, e.Variant)
		}
		if c.LineBytes != arch.Skylake().L1Sim.LineBytes || c.BlockRows <= 0 {
			t.Fatalf("cache geometry: %+v", c)
		}
		if len(c.Sweeps) != 2 || c.Sweeps[0].Phase != "G" || c.Sweeps[1].Phase != "GT" {
			t.Fatalf("sweeps: %+v", c.Sweeps)
		}
		// The attribution must agree with the unattributed trace already in
		// the entry: total misses and the Figure 3 metric line up.
		var mr *MatrixRaw
		for i := range raw.Results {
			if raw.Results[i].Spec.Name == e.Matrix {
				mr = &raw.Results[i]
			}
		}
		var m *MethodRaw
		switch e.Variant {
		case "FSAI":
			m = &mr.FSAI
		case "FSAIE(sp)":
			m = &mr.Sp[0]
		case "FSAIE(full)":
			m = &mr.Full[0]
		}
		if got := c.Sweeps[0].BaseMisses + c.Sweeps[0].FillMisses; got != m.MissG {
			t.Errorf("%s: attributed G misses %d != traced %d", e.Variant, got, m.MissG)
		}
		if got := c.Sweeps[1].BaseMisses + c.Sweeps[1].FillMisses; got != m.MissGT {
			t.Errorf("%s: attributed GT misses %d != traced %d", e.Variant, got, m.MissGT)
		}
		if diff := c.SimMissPerNNZ - m.MissPerNNZ; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: sim miss/nnz %g != %g", e.Variant, c.SimMissPerNNZ, m.MissPerNNZ)
		}
		if c.ModelLineVisitsPerNNZ <= 0 {
			t.Errorf("%s: model line visits per nnz not populated", e.Variant)
		}
		if e.Variant == "FSAI" && (c.Sweeps[0].FillEntries != 0 || c.Sweeps[1].FillEntries != 0) {
			t.Errorf("FSAI has no fill-in, got %+v", c.Sweeps)
		}
	}

	// The attribution series land in the shared registry.
	snap := reg.Snapshot()
	var sawAttrib bool
	for name := range snap.Counters {
		if strings.HasPrefix(name, "cachesim.x_misses{") {
			sawAttrib = true
		}
	}
	if !sawAttrib {
		t.Error("cachesim.x_misses counters missing from registry")
	}

	// Round trip preserves the cache section exactly.
	var buf bytes.Buffer
	if err := WriteRunReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Entries[0].Cache, got.Entries[0].Cache
	if b == nil || a.SimMissPerNNZ != b.SimMissPerNNZ || len(a.Sweeps) != len(b.Sweeps) ||
		a.Sweeps[0].BaseMisses != b.Sweeps[0].BaseMisses ||
		len(a.Sweeps[0].RowBlockMisses) != len(b.Sweeps[0].RowBlockMisses) {
		t.Fatalf("cache section round trip:\n  wrote %+v\n  read  %+v", a, b)
	}
}

func TestRunReportUpgradesV1(t *testing.T) {
	// A v1 document (no cache sections) must load and come back stamped with
	// the current schema version.
	v1 := `{
  "schema_version": 1,
  "tool": "fsaibench",
  "machine": "Skylake",
  "line_bytes": 64,
  "entries": [
    {
      "matrix_id": 1, "matrix": "lap2d", "rows": 100, "nnz": 460,
      "variant": "FSAI", "filter": 0, "nnz_g": 280, "ext_pct": 0,
      "iterations": 42, "converged": true,
      "setup_wall_ns": 1000, "solve_wall_ns": 2000
    }
  ]
}`
	r, err := ReadRunReport(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if r.Schema != RunReportSchemaVersion {
		t.Errorf("schema not upgraded: %d", r.Schema)
	}
	if len(r.Entries) != 1 || r.Entries[0].Iterations != 42 || r.Entries[0].Cache != nil {
		t.Errorf("v1 entry mangled: %+v", r.Entries)
	}
	// Versions outside [min, current] still fail loudly.
	if _, err := ReadRunReport(strings.NewReader(`{"schema_version": 0}`)); err == nil {
		t.Error("v0 must be rejected")
	}
	future := fmt.Sprintf(`{"schema_version": %d}`, RunReportSchemaVersion+1)
	if _, err := ReadRunReport(strings.NewReader(future)); err == nil {
		t.Error("future schema must be rejected")
	}
}

func TestWriteRunReportFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	rep := &RunReport{Tool: "t", Entries: []RunEntry{{Matrix: "m", Iterations: 5}}}
	if err := WriteRunReportFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].Iterations != 5 {
		t.Fatalf("read back: %+v", got)
	}

	// Failure mid-write must leave the existing file untouched: writing to a
	// path whose directory has vanished errors without clobbering anything,
	// and no temp litter remains after a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp file litter: %v", entries)
	}
	if err := WriteRunReportFile(filepath.Join(dir, "missing", "r.json"), rep); err == nil {
		t.Fatal("write into missing directory should fail")
	}
	if again, err := ReadRunReportFile(path); err != nil || again.Entries[0].Iterations != 5 {
		t.Fatalf("original report damaged: %v %+v", err, again)
	}
}

func TestRunReportUpgradesV2(t *testing.T) {
	// A v2 document (cache sections, no status/resilience) must load
	// unchanged: the v3 additions are optional.
	v2 := `{
  "schema_version": 2,
  "tool": "fsaibench",
  "entries": [
    {
      "matrix_id": 1, "matrix": "lap2d", "rows": 100, "nnz": 460,
      "variant": "FSAI", "filter": 0, "nnz_g": 280, "ext_pct": 0,
      "iterations": 42, "converged": true,
      "setup_wall_ns": 1000, "solve_wall_ns": 2000,
      "cache": {"line_bytes": 64, "block_rows": 1, "sweeps": [], "sim_miss_per_nnz": 0.5}
    }
  ]
}`
	r, err := ReadRunReport(strings.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 report rejected: %v", err)
	}
	if r.Schema != RunReportSchemaVersion {
		t.Errorf("schema not upgraded: %d", r.Schema)
	}
	e := r.Entries[0]
	if e.Cache == nil || e.Cache.SimMissPerNNZ != 0.5 {
		t.Errorf("v2 cache section mangled: %+v", e.Cache)
	}
	if e.Status != "" || e.Resilience != nil {
		t.Errorf("upgraded v2 entry invented v3 data: %+v", e)
	}
}

func TestRunReportResilienceSection(t *testing.T) {
	out := &resilience.Outcome{
		Precond:   "jacobi",
		Shift:     0,
		Recovered: true,
	}
	out.Log.Retries = 2
	out.Log.Fallbacks = 3
	out.Log.Attempts = []resilience.Attempt{
		{Stage: "setup", Precond: "fsaie", Status: "error:not-spd", Err: "boom", NS: 10},
		{Stage: "setup", Precond: "jacobi", Status: "ok", NS: 5},
		{Stage: "solve", Precond: "jacobi", Status: "converged", Iterations: 40, RelRes: 1e-9, NS: 100},
	}
	rep := &RunReport{
		Tool: "fsaisolve",
		Entries: []RunEntry{{
			Matrix:     "lap2d",
			Iterations: 40,
			Converged:  true,
			Status:     "converged",
			Resilience: RunResilienceOf("fsaie", out),
		}},
	}
	var buf bytes.Buffer
	if err := WriteRunReport(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e := got.Entries[0]
	if e.Status != "converged" {
		t.Errorf("status lost: %+v", e)
	}
	rs := e.Resilience
	if rs == nil || rs.Requested != "fsaie" || rs.Final != "jacobi" ||
		rs.Retries != 2 || rs.Fallbacks != 3 || !rs.Recovered {
		t.Fatalf("resilience section mangled: %+v", rs)
	}
	if len(rs.Attempts) != 3 || rs.Attempts[0].Status != "error:not-spd" ||
		rs.Attempts[2].Iterations != 40 {
		t.Fatalf("attempt log mangled: %+v", rs.Attempts)
	}
	if RunResilienceOf("fsaie", nil) != nil {
		t.Errorf("nil outcome should map to nil section")
	}
}
