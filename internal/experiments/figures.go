package experiments

import (
	"fmt"
	"strings"

	fsai "repro/internal/core"
	"repro/internal/stats"
)

// FigureTimeDecrease renders the per-matrix time-decrease chart of Figures
// 2 (Skylake), 5 (POWER9) and 6 (A64FX): for every matrix ID, the %
// time decrease of FSAIE(full) vs FSAI using the best filter per matrix and
// using the common reference filter.
func (c *PricedCampaign) FigureTimeDecrease() string {
	fi := c.RefIndex()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure (%s): time decrease of FSAIE(full) vs FSAI per matrix\n", c.Machine.Name)
	fmt.Fprintf(&sb, "%4s %-22s %10s %10s\n", "ID", "Matrix", "best-filter", fmt.Sprintf("f=%g", c.Filters[fi]))
	var labels []string
	var best []float64
	for i := range c.Results {
		r := &c.Results[i]
		bi := r.BestFilterIndex(fsai.VariantFull)
		bImp := r.TimeImprovementPct(fsai.VariantFull, bi)
		refImp := r.TimeImprovementPct(fsai.VariantFull, fi)
		fmt.Fprintf(&sb, "%4d %-22s %9.2f%% %9.2f%%\n", r.Spec.ID, r.Spec.Name, bImp, refImp)
		labels = append(labels, fmt.Sprintf("%d:%s", r.Spec.ID, r.Spec.Name))
		best = append(best, bImp)
	}
	sb.WriteString("\nBest-filter time decrease per matrix (bar chart):\n")
	sb.WriteString(stats.BarChart(labels, best, 60))
	return sb.String()
}

// Figure3 renders the histograms of L1 data-cache misses on p accesses in
// the GᵀGp operation, normalized to nnz(G), for the state-of-the-art FSAI
// patterns, the cache-friendly FSAIE(full) extensions and the random
// extensions (paper Figure 3). Requires WithRandom raw data.
func (c *PricedCampaign) Figure3() string {
	fi := c.RefIndex()
	var fsaiVals, extVals, randVals []float64
	for i := range c.Results {
		r := &c.Results[i]
		fsaiVals = append(fsaiVals, r.FSAI.MissPerNNZ)
		extVals = append(extVals, r.Full[fi].MissPerNNZ)
		if r.RandomMeasured {
			randVals = append(randVals, r.RandomMissPerNNZ)
		}
	}
	hi := stats.Max(append(append(append([]float64{}, fsaiVals...), extVals...), randVals...))
	if hi == 0 {
		hi = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3 (%s): L1 misses on p per nnz(G) in GᵀGp (histograms over matrices)\n", c.Machine.Name)
	fmt.Fprintf(&sb, "\nG_FSAI (mean %.4f):\n%s", stats.Mean(fsaiVals), stats.NewHistogram(fsaiVals, 10, 0, hi).Render(40))
	fmt.Fprintf(&sb, "\nG_FSAIE(full) (mean %.4f):\n%s", stats.Mean(extVals), stats.NewHistogram(extVals, 10, 0, hi).Render(40))
	if len(randVals) > 0 {
		fmt.Fprintf(&sb, "\nG_random (mean %.4f):\n%s", stats.Mean(randVals), stats.NewHistogram(randVals, 10, 0, hi).Render(40))
	}
	return sb.String()
}

// Figure4 renders the histograms of Gflop/s reached by the GᵀGp operation
// for the same three pattern constructions (paper Figure 4).
func (c *PricedCampaign) Figure4() string {
	fi := c.RefIndex()
	var fsaiVals, extVals, randVals []float64
	for i := range c.Results {
		r := &c.Results[i]
		fsaiVals = append(fsaiVals, r.FSAI.GFlops)
		extVals = append(extVals, r.Full[fi].GFlops)
		if r.RandomMeasured {
			randVals = append(randVals, r.RandomGFlops)
		}
	}
	hi := stats.Max(append(append(append([]float64{}, fsaiVals...), extVals...), randVals...))
	if hi == 0 {
		hi = 1
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4 (%s): Gflop/s of the GᵀGp operation (histograms over matrices)\n", c.Machine.Name)
	fmt.Fprintf(&sb, "\nG_FSAI (mean %.1f Gflop/s):\n%s", stats.Mean(fsaiVals), stats.NewHistogram(fsaiVals, 10, 0, hi).Render(40))
	fmt.Fprintf(&sb, "\nG_FSAIE(full) (mean %.1f Gflop/s):\n%s", stats.Mean(extVals), stats.NewHistogram(extVals, 10, 0, hi).Render(40))
	if len(randVals) > 0 {
		fmt.Fprintf(&sb, "\nG_random (mean %.1f Gflop/s):\n%s", stats.Mean(randVals), stats.NewHistogram(randVals, 10, 0, hi).Render(40))
	}
	return sb.String()
}

// Figure7 renders the cross-architecture comparison (paper Figure 7):
// histograms of the per-matrix time improvement of FSAIE(full) with the
// best filter, one histogram per machine, with the median marked.
func Figure7(campaigns []*PricedCampaign) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: % time improvement of FSAIE(full), best filter per matrix\n")
	for _, c := range campaigns {
		var vals []float64
		for i := range c.Results {
			bi := c.Results[i].BestFilterIndex(fsai.VariantFull)
			vals = append(vals, c.Results[i].TimeImprovementPct(fsai.VariantFull, bi))
		}
		fmt.Fprintf(&sb, "\n%s (median %.2f%%, mean %.2f%%):\n%s",
			c.Machine.Name, stats.Median(vals), stats.Mean(vals),
			stats.NewHistogram(vals, 12, -30, 90).Render(40))
	}
	return sb.String()
}
