// Package roofline situates the solver kernels on the roofline model of
// each machine: attainable performance = min(peak flops, AI × bandwidth),
// where AI is the kernel's arithmetic intensity (flops per byte of memory
// traffic).
//
// SpMV's AI is tiny (2 flops per 12-byte entry plus vector traffic →
// ≈ 0.1-0.15 flop/byte), which pins it deep in the bandwidth-bound region —
// the paper's premise that performance is governed by memory behaviour, not
// compute. The cache-aware extension raises *useful flops per cache line
// transferred*, i.e. effective AI, which is how Figure 4's Gflop/s gains
// arise without touching the roof.
package roofline

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/sparse"
)

// Kernel describes one computational kernel for roofline placement.
type Kernel struct {
	Name  string
	Flops float64 // floating-point operations per execution
	Bytes float64 // bytes moved to/from memory per execution
}

// AI returns the arithmetic intensity in flop/byte.
func (k Kernel) AI() float64 {
	if k.Bytes == 0 {
		return 0
	}
	return k.Flops / k.Bytes
}

// PeakFlops estimates the machine's double-precision peak: cores × freq ×
// 16 flops/cycle for the 512-bit-SIMD machines of the paper (2 FMA pipes ×
// 8 lanes).
func PeakFlops(a arch.Arch) float64 {
	return float64(a.Cores) * a.FreqHz * 16
}

// Attainable returns the roofline bound for the kernel on machine a, in
// flop/s: min(peak, AI × bandwidth).
func Attainable(k Kernel, a arch.Arch) float64 {
	bw := k.AI() * a.MemBandwidth
	peak := PeakFlops(a)
	if bw < peak {
		return bw
	}
	return peak
}

// BandwidthBound reports whether the kernel sits in the bandwidth-limited
// region of machine a's roofline.
func BandwidthBound(k Kernel, a arch.Arch) bool {
	return k.AI()*a.MemBandwidth < PeakFlops(a)
}

// SpMVKernel builds the kernel descriptor of one CSR SpMV y = Ax: 2 flops
// per stored entry; traffic = matrix entries (12 B each) + row pointers
// (4 B per row, amortized) + input gathers (one line per distinct line
// visit — pass the visit count) + output stream.
func SpMVKernel(m *sparse.CSR, lineVisits, lineBytes int) Kernel {
	return Kernel{
		Name:  "SpMV",
		Flops: 2 * float64(m.NNZ()),
		Bytes: float64(m.NNZ()*12+m.Rows*4) +
			float64(lineVisits*lineBytes) +
			float64(m.Rows*8),
	}
}

// PrecondKernel builds the kernel of the GᵀGp operation (two SpMV sweeps).
func PrecondKernel(g *sparse.CSR, lineVisitsG, lineVisitsGT, lineBytes int) Kernel {
	a := SpMVKernel(g, lineVisitsG, lineBytes)
	b := SpMVKernel(g, lineVisitsGT, lineBytes)
	return Kernel{Name: "GᵀGp", Flops: a.Flops + b.Flops, Bytes: a.Bytes + b.Bytes}
}

// DotKernel and AxpyKernel describe the vector kernels of CG (length n).
func DotKernel(n int) Kernel {
	return Kernel{Name: "dot", Flops: 2 * float64(n), Bytes: 16 * float64(n)}
}

// AxpyKernel describes y += a*x for vectors of length n.
func AxpyKernel(n int) Kernel {
	return Kernel{Name: "axpy", Flops: 2 * float64(n), Bytes: 24 * float64(n)}
}

// Report renders a roofline placement table for the kernels on machine a.
func Report(a arch.Arch, kernels []Kernel) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Roofline — %s: peak %.0f Gflop/s, bandwidth %.0f GB/s, ridge AI %.2f flop/B\n",
		a.Name, PeakFlops(a)/1e9, a.MemBandwidth/1e9, PeakFlops(a)/a.MemBandwidth)
	fmt.Fprintf(&sb, "%-10s %12s %14s %12s %s\n", "kernel", "AI (f/B)", "attainable", "% of peak", "bound")
	for _, k := range kernels {
		att := Attainable(k, a)
		bound := "compute"
		if BandwidthBound(k, a) {
			bound = "bandwidth"
		}
		fmt.Fprintf(&sb, "%-10s %12.3f %11.1f GF %11.2f%% %s\n",
			k.Name, k.AI(), att/1e9, 100*att/PeakFlops(a), bound)
	}
	return sb.String()
}
