package roofline

import (
	"repro/internal/arch"
	"repro/internal/sparse"
)

// Achieved places one kernel class of a *finished* solve on the machine's
// roofline: nominal work (the same accounting as the sparse op counters)
// divided by the measured wall time of that kernel class from
// krylov.Timing. This is the live counterpart of the offline Fig.-4 model —
// it shows per production solve how far each kernel sits from the
// bandwidth roof, and whether cache-aware fill-in is moving it.
type Achieved struct {
	// Kernel is "spmv" (y = Ap products), "apply_g" (z = GᵀGr, two sweeps
	// of the factor per application) or "blas1" (the fused vector kernels).
	Kernel string `json:"kernel"`
	// Calls is the number of kernel executions attributed (SpMV sweeps,
	// preconditioner applications, or CG iterations for blas1).
	Calls int64 `json:"calls"`
	// Flops and Bytes are the nominal totals over the solve.
	Flops float64 `json:"flops"`
	Bytes float64 `json:"bytes"`
	// Seconds is the measured wall time of the kernel class.
	Seconds float64 `json:"seconds"`
	// AchievedFlops is flops/Seconds — the value exported as the
	// roofline_achieved_flops gauge (flop/s).
	AchievedFlops float64 `json:"achieved_flops"`
	// AchievedBandwidthBytes is Bytes/Seconds — the value exported as the
	// roofline_achieved_bandwidth_bytes gauge (B/s).
	AchievedBandwidthBytes float64 `json:"achieved_bandwidth_bytes"`
	// AI is the nominal arithmetic intensity (flop/byte).
	AI float64 `json:"ai"`
	// AttainableFlops is the roofline bound min(peak, AI×bandwidth) on the
	// machine, in flop/s.
	AttainableFlops float64 `json:"attainable_flops"`
	// PctOfAttainable is 100×AchievedFlops/AttainableFlops.
	PctOfAttainable float64 `json:"pct_of_attainable"`
	// Bound is "bandwidth" or "compute" — which roof limits the kernel.
	Bound string `json:"bound"`
}

// kernel names used across gauges, run reports and /roofline.
const (
	KernelSpMV   = "spmv"
	KernelApplyG = "apply_g"
	KernelBLAS1  = "blas1"
)

// spmvSweep returns nominal flops and bytes of one sweep of m, matching
// sparse.countSpMV: 2 flops per stored entry; 12 B per entry + 4 B per row
// pointer of matrix traffic; nominal vector traffic (input read once,
// output written once).
func spmvSweep(m *sparse.CSR) (flops, bytes float64) {
	nnz := float64(m.NNZ())
	return 2 * nnz, 12*nnz + 4*float64(m.Rows) + 8*float64(m.Cols+m.Rows)
}

// SolveEstimate computes the achieved roofline placement of a finished PCG
// solve from its kernel-class wall times (krylov.Timing, in nanoseconds —
// plain int64s so this package needs no krylov import).
//
//   - spmv: iters sweeps of A
//   - apply_g: iters applications of M = GᵀG, two sweeps of the factor each
//     (g nil — e.g. Jacobi or identity preconditioning — omits the entry)
//   - blas1: per iteration the fused engine does 12n flops over 104n bytes
//     (dot 2n/16n, fused x/r update 6n/48n, dot 2n/16n, xpay 2n/24n)
//
// Kernel classes with zero measured time (timing not collected) are
// omitted, so an empty slice means "no attribution possible".
func SolveEstimate(a, g *sparse.CSR, iters int, spmvNS, precondNS, blas1NS int64, machine arch.Arch) []Achieved {
	if a == nil || iters <= 0 {
		return nil
	}
	out := make([]Achieved, 0, 3)
	add := func(name string, calls int64, flops, bytes float64, ns int64) {
		if ns <= 0 || flops <= 0 {
			return
		}
		sec := float64(ns) / 1e9
		k := Kernel{Name: name, Flops: flops, Bytes: bytes}
		att := Attainable(k, machine)
		e := Achieved{
			Kernel:                 name,
			Calls:                  calls,
			Flops:                  flops,
			Bytes:                  bytes,
			Seconds:                sec,
			AchievedFlops:          flops / sec,
			AchievedBandwidthBytes: bytes / sec,
			AI:                     k.AI(),
			AttainableFlops:        att,
			Bound:                  "compute",
		}
		if BandwidthBound(k, machine) {
			e.Bound = "bandwidth"
		}
		if att > 0 {
			e.PctOfAttainable = 100 * e.AchievedFlops / att
		}
		out = append(out, e)
	}

	it := float64(iters)
	af, ab := spmvSweep(a)
	add(KernelSpMV, int64(iters), it*af, it*ab, spmvNS)
	if g != nil {
		gf, gb := spmvSweep(g)
		add(KernelApplyG, int64(iters), it*2*gf, it*2*gb, precondNS)
	}
	n := float64(a.Rows)
	add(KernelBLAS1, int64(iters), it*12*n, it*104*n, blas1NS)
	return out
}

// KernelSpMM is the kernel-class name of the batched multi-vector product
// (one matrix stream serving k right-hand-side columns).
const KernelSpMM = "spmm"

// BlockSolveEstimate is the batched counterpart of SolveEstimate for a
// finished block-PCG solve: sweeps is the number of block iterations (matrix
// passes), colIters the sum of per-column iteration counts (≤ sweeps×k when
// columns deflate early). The matrix stream is charged once per sweep — the
// whole point of batching — while vector traffic and BLAS-1 work scale with
// colIters, so the spmm entry's AI reports the batch's achieved arithmetic
// intensity: it rises with the effective block width colIters/sweeps.
func BlockSolveEstimate(a, g *sparse.CSR, sweeps int, colIters int64, spmvNS, precondNS, blas1NS int64, machine arch.Arch) []Achieved {
	if a == nil || sweeps <= 0 || colIters <= 0 {
		return nil
	}
	out := make([]Achieved, 0, 3)
	add := func(name string, calls int64, flops, bytes float64, ns int64) {
		if ns <= 0 || flops <= 0 {
			return
		}
		sec := float64(ns) / 1e9
		k := Kernel{Name: name, Flops: flops, Bytes: bytes}
		att := Attainable(k, machine)
		e := Achieved{
			Kernel:                 name,
			Calls:                  calls,
			Flops:                  flops,
			Bytes:                  bytes,
			Seconds:                sec,
			AchievedFlops:          flops / sec,
			AchievedBandwidthBytes: bytes / sec,
			AI:                     k.AI(),
			AttainableFlops:        att,
			Bound:                  "compute",
		}
		if BandwidthBound(k, machine) {
			e.Bound = "bandwidth"
		}
		if att > 0 {
			e.PctOfAttainable = 100 * e.AchievedFlops / att
		}
		out = append(out, e)
	}

	sw := float64(sweeps)
	ci := float64(colIters)
	nnz := float64(a.NNZ())
	// Matrix stream once per sweep; per-column vector gathers per column-iter.
	matBytes := (12*nnz + 4*float64(a.Rows)) * sw
	vecBytes := 8 * float64(a.Cols+a.Rows) * ci
	add(KernelSpMM, int64(sweeps), 2*nnz*ci, matBytes+vecBytes, spmvNS)
	if g != nil {
		gnnz := float64(g.NNZ())
		gm := 2 * (12*gnnz + 4*float64(g.Rows)) * sw
		gv := 2 * 8 * float64(g.Cols+g.Rows) * ci
		add(KernelApplyG, int64(sweeps), 2*2*gnnz*ci, gm+gv, precondNS)
	}
	n := float64(a.Rows)
	add(KernelBLAS1, int64(sweeps), 12*n*ci, 104*n*ci, blas1NS)
	return out
}
