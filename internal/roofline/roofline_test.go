package roofline

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cachesim"
	fsai "repro/internal/core"
	"repro/internal/matgen"
	"repro/internal/pattern"
)

func TestAI(t *testing.T) {
	k := Kernel{Flops: 10, Bytes: 100}
	if k.AI() != 0.1 {
		t.Errorf("AI=%g", k.AI())
	}
	if (Kernel{Flops: 1}).AI() != 0 {
		t.Error("zero-byte kernel AI should be 0")
	}
}

func TestPeakMatchesPaper(t *testing.T) {
	// The paper quotes 3200 Gflop/s for the double-socket Skylake node.
	if p := PeakFlops(arch.Skylake()); p < 1.5e12 || p > 3.3e12 {
		t.Errorf("Skylake peak %.0f Gflop/s implausible vs paper's 3200", p/1e9)
	}
}

func TestSpMVIsBandwidthBoundEverywhere(t *testing.T) {
	m := matgen.Laplace2D(48, 48)
	p := pattern.FromCSR(m)
	for _, a := range arch.All() {
		lv := cachesim.CountLineVisits(p, a.ElemsPerLine(), 0)
		k := SpMVKernel(m, lv, a.LineBytes)
		if !BandwidthBound(k, a) {
			t.Errorf("%s: SpMV not bandwidth bound (AI %.3f)", a.Name, k.AI())
		}
		if k.AI() > 0.2 {
			t.Errorf("%s: SpMV AI %.3f unrealistically high", a.Name, k.AI())
		}
		if att := Attainable(k, a); att <= 0 || att >= PeakFlops(a) {
			t.Errorf("%s: attainable %.1f Gflop/s out of range", a.Name, att/1e9)
		}
	}
}

func TestExtensionRaisesEffectiveAI(t *testing.T) {
	// The cache-friendly extension adds flops without adding line visits:
	// the effective AI of the preconditioner kernel must rise.
	a := matgen.Laplace2D(48, 48)
	m := arch.Skylake()
	base, err := fsai.Compute(a, fsai.Options{Variant: fsai.VariantFSAI, LineBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := fsai.Compute(a, fsai.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ai := func(p *fsai.Preconditioner) float64 {
		gp := pattern.FromCSR(p.G)
		lvG := cachesim.CountLineVisits(gp, m.ElemsPerLine(), 0)
		lvGT := cachesim.CountLineVisits(gp.Transpose(), m.ElemsPerLine(), 0)
		return PrecondKernel(p.G, lvG, lvGT, m.LineBytes).AI()
	}
	if ai(ext) <= ai(base) {
		t.Errorf("extension did not raise effective AI: %.4f vs %.4f", ai(ext), ai(base))
	}
}

func TestVectorKernels(t *testing.T) {
	d := DotKernel(1000)
	x := AxpyKernel(1000)
	if d.AI() != 0.125 || x.AI() <= 0.08 || x.AI() >= 0.09 {
		t.Errorf("vector kernel AIs: dot=%g axpy=%g", d.AI(), x.AI())
	}
}

func TestReport(t *testing.T) {
	m := matgen.Laplace2D(24, 24)
	p := pattern.FromCSR(m)
	sky := arch.Skylake()
	lv := cachesim.CountLineVisits(p, sky.ElemsPerLine(), 0)
	out := Report(sky, []Kernel{SpMVKernel(m, lv, 64), DotKernel(m.Rows), AxpyKernel(m.Rows)})
	for _, want := range []string{"Roofline", "SpMV", "dot", "axpy", "bandwidth", "ridge"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
