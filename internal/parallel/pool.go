package parallel

import (
	"context"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// Pool is a persistent fork-join worker pool. Workers are spawned once and
// parked on per-worker channels; a dispatch wakes them, they drain a shared
// chunk cursor (static partition plus work stealing at chunk granularity),
// and a reusable barrier returns control to the caller. This removes the
// goroutine-spawn and sync.WaitGroup cost that For/ForErr paid on every call
// — a real cost in the solve hot path, where every CG iteration issues ~3
// SpMV dispatches plus the parallel BLAS-1 sweeps.
//
// Concurrency contract: one dispatch runs at a time. A Run issued while the
// pool is busy — from another goroutine, or a nested kernel on the same
// goroutine — degrades to inline execution on the caller, so the pool can
// never deadlock and correctness never depends on it being available. The
// caller always participates in its own dispatch, so a Pool of size 1 does
// all work inline with zero synchronization.
//
// Panic containment matches For: a panicking chunk never deadlocks the
// barrier; remaining chunks run to completion and the first panic is
// returned as a *PanicError.
type Pool struct {
	size int             // max participants per dispatch, caller included
	mu   sync.Mutex      // serializes dispatches; TryLock-degraded to inline
	wake []chan struct{} // one per parked worker goroutine (size-1 of them)
	done chan struct{}

	// Job state, valid for the duration of one dispatch.
	bounds  []int
	body    func(chunk, lo, hi int)
	labels  context.Context // pprof label context workers adopt, may be nil
	cursor  atomic.Int64
	pending atomic.Int64
	fail    atomic.Pointer[PanicError]

	dispatches atomic.Int64
	inlineRuns atomic.Int64
	closed     atomic.Bool
}

// NewPool returns a pool that runs dispatches with up to size concurrent
// participants (the calling goroutine plus size-1 persistent workers).
// size < 1 is treated as 1.
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{size: size, done: make(chan struct{})}
	p.wake = make([]chan struct{}, size-1)
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		go p.worker(ch)
	}
	return p
}

var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide pool, created on first use with
// MaxWorkers participants. All kernel layers share it; its TryLock-inline
// fallback keeps concurrent solves safe without serializing them.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(MaxWorkers()) })
	return defaultPool
}

// Size returns the maximum number of concurrent participants per dispatch.
func (p *Pool) Size() int { return p.size }

// Dispatches returns the number of pooled (non-inline) dispatches issued.
func (p *Pool) Dispatches() int64 { return p.dispatches.Load() }

// InlineRuns returns how many Run calls degraded to inline execution
// because the pool was busy with another dispatch.
func (p *Pool) InlineRuns() int64 { return p.inlineRuns.Load() }

// Close stops the worker goroutines. The pool must be idle; only tests that
// create throwaway pools need this — the Default pool lives for the process.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	for _, ch := range p.wake {
		close(ch)
	}
}

// worker is the parked goroutine loop: wake, drain the chunk cursor, strike
// the barrier, park again.
func (p *Pool) worker(ch chan struct{}) {
	for range ch {
		// Adopt the dispatch's pprof label context (job id, solver phase)
		// for the duration of the drain, so CPU samples taken on parked
		// workers attribute to the solve that dispatched them — goroutine
		// labels do not propagate to pre-spawned goroutines by themselves.
		// The submitting goroutine already carries its own labels. Reset
		// afterwards so idle workers never hold stale attributions.
		if lctx := p.labels; lctx != nil {
			pprof.SetGoroutineLabels(lctx)
			p.drain()
			pprof.SetGoroutineLabels(context.Background())
		} else {
			p.drain()
		}
		if p.pending.Add(-1) == 0 {
			p.done <- struct{}{}
		}
	}
}

// drain claims chunks off the shared cursor until none remain.
func (p *Pool) drain() {
	n := int64(len(p.bounds) / 2)
	for {
		c := p.cursor.Add(1) - 1
		if c >= n {
			return
		}
		if err := runPoolChunk(int(c), p.bounds[2*c], p.bounds[2*c+1], p.body); err != nil {
			p.fail.CompareAndSwap(nil, err)
		}
	}
}

// Run executes body once per (lo,hi) chunk of bounds (flattened pairs, as
// produced by Chunks or sparse partition plans), using up to Size
// participants including the caller. It returns when every chunk finished;
// the first contained panic is returned as a *PanicError.
//
// Run performs no allocations itself, so a caller that reuses a pre-bound
// body (see internal/kernels) pays zero heap traffic per dispatch.
func (p *Pool) Run(bounds []int, body func(chunk, lo, hi int)) error {
	return p.RunLabeled(bounds, body, nil)
}

// RunLabeled is Run with a pprof label context: worker goroutines adopt
// lctx's labels while draining this dispatch's chunks, so profile samples
// on the persistent workers attribute to the submitting solve. A nil lctx
// is exactly Run. The inline-degraded paths need no adoption — they run on
// the calling goroutine, which already carries its labels.
func (p *Pool) RunLabeled(bounds []int, body func(chunk, lo, hi int), lctx context.Context) error {
	nChunks := len(bounds) / 2
	if nChunks == 0 {
		return nil
	}
	participants := p.size
	if participants > nChunks {
		participants = nChunks
	}
	if participants <= 1 {
		return runInline(bounds, body)
	}
	if !p.mu.TryLock() {
		// Pool busy: another dispatch is in flight (possibly from this very
		// goroutine via a nested kernel). Degrade to inline execution —
		// correctness never depends on the pool being free.
		p.inlineRuns.Add(1)
		return runInline(bounds, body)
	}
	p.bounds, p.body, p.labels = bounds, body, lctx
	p.cursor.Store(0)
	p.fail.Store(nil)
	p.pending.Store(int64(participants))
	p.dispatches.Add(1)
	for i := 0; i < participants-1; i++ {
		p.wake[i] <- struct{}{}
	}
	p.drain()
	if p.pending.Add(-1) != 0 {
		<-p.done
	}
	err := p.fail.Load()
	p.bounds, p.body, p.labels = nil, nil, nil
	p.mu.Unlock()
	if err != nil {
		return err
	}
	return nil
}

// runInline executes every chunk on the calling goroutine, with the same
// hook and containment semantics as a pooled dispatch.
func runInline(bounds []int, body func(chunk, lo, hi int)) error {
	var first *PanicError
	for c := 0; 2*c < len(bounds); c++ {
		if err := runPoolChunk(c, bounds[2*c], bounds[2*c+1], body); err != nil && first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return nil
}

// runPoolChunk executes one chunk with the worker hook and panic containment.
func runPoolChunk(chunk, lo, hi int, body func(chunk, lo, hi int)) (err *PanicError) {
	defer func() {
		if v := recover(); v != nil {
			if pe, ok := v.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	runWorkerHook(chunk)
	body(chunk, lo, hi)
	return nil
}
