// Package parallel provides small fork-join helpers used by the sparse
// kernels and the FSAI setup. It mirrors the OpenMP "parallel for" structure
// used by the reference implementation: a loop range is split into
// contiguous chunks, each processed by one worker goroutine.
//
// All helpers are deterministic with respect to the work they produce: the
// chunking is purely a function of (n, workers), never of scheduling order.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// workerHook, when set, runs at the start of every worker chunk with the
// chunk index. It exists for deterministic fault injection (a delayed
// worker) without a build tag; the disabled cost is one atomic load per
// chunk. See internal/faultinject.
var workerHook atomic.Pointer[func(worker int)]

// SetWorkerHook installs (or, with nil, removes) the process-wide worker
// hook. Only the fault-injection harness should call this.
func SetWorkerHook(h func(worker int)) {
	if h == nil {
		workerHook.Store(nil)
		return
	}
	workerHook.Store(&h)
}

func runWorkerHook(worker int) {
	if h := workerHook.Load(); h != nil {
		(*h)(worker)
	}
}

// PanicError wraps a panic recovered from a worker goroutine, preserving the
// panic value and the worker's stack. Containing the panic (instead of
// letting it kill the process) lets setup pipelines convert a poisoned row
// task into a typed, recoverable error.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v", e.Value)
}

// MaxWorkers returns the default worker count used when a caller passes
// workers <= 0: the number of usable CPUs.
func MaxWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// clampWorkers normalizes a requested worker count for a loop of n
// iterations. It returns at least 1 and never more workers than iterations.
func clampWorkers(workers, n int) int {
	if workers <= 0 {
		workers = MaxWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Chunks splits the half-open range [0,n) into at most workers contiguous
// chunks of near-equal size. It returns the chunk boundaries as a slice of
// (lo,hi) pairs flattened into a []int of length 2*k. An empty range yields
// no chunks.
func Chunks(n, workers int) []int {
	if n <= 0 {
		return nil
	}
	workers = clampWorkers(workers, n)
	bounds := make([]int, 0, 2*workers)
	base := n / workers
	rem := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		hi := lo + size
		bounds = append(bounds, lo, hi)
		lo = hi
	}
	return bounds
}

// For runs body(lo, hi) over a chunked partition of [0,n) using the given
// number of workers (<=0 means MaxWorkers). body is invoked concurrently,
// once per chunk, and For returns when all chunks finish. The chunks are
// contiguous and disjoint, so body may write to disjoint slices of a shared
// output without synchronization.
//
// A panic in any chunk never deadlocks the pool: the remaining chunks run to
// completion and the first panic is re-raised on the caller's goroutine as a
// *PanicError, where a recover can turn it into an ordinary error (or use
// ForErr to get the error directly).
func For(n, workers int, body func(lo, hi int)) {
	if err := ForErr(n, workers, body); err != nil {
		panic(err)
	}
}

// ForErr is For with panic containment surfaced as a value: it returns the
// first worker panic as a *PanicError (nil when every chunk completes).
//
// Since the kernel-layer rewrite the chunks run on the persistent Default
// pool instead of freshly spawned goroutines; the chunking (and therefore
// the work each chunk produces) is unchanged.
func ForErr(n, workers int, body func(lo, hi int)) error {
	if n <= 0 {
		return nil
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		return runChunk(0, 0, n, body)
	}
	bounds := Chunks(n, workers)
	return Default().Run(bounds, func(_, lo, hi int) { body(lo, hi) })
}

// runChunk executes one chunk with the worker hook and panic containment.
func runChunk(worker, lo, hi int, body func(lo, hi int)) (err error) {
	defer func() {
		if v := recover(); v != nil {
			if pe, ok := v.(*PanicError); ok {
				err = pe // single-worker path re-entering: keep the original
				return
			}
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	runWorkerHook(worker)
	body(lo, hi)
	return nil
}

// ForEach runs body(i) for every i in [0,n), scheduling contiguous chunks on
// workers goroutines. It is a convenience wrapper over For for callers that
// do per-index work.
func ForEach(n, workers int, body func(i int)) {
	For(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Reduce runs body over chunks of [0,n) like For, where each chunk produces
// a float64 partial result; the partials are combined with combine in chunk
// order, starting from init. The combination order is deterministic.
func Reduce(n, workers int, init float64, body func(lo, hi int) float64, combine func(a, b float64) float64) float64 {
	if n <= 0 {
		return init
	}
	workers = clampWorkers(workers, n)
	if workers == 1 {
		runWorkerHook(0)
		return combine(init, body(0, n))
	}
	bounds := Chunks(n, workers)
	parts := make([]float64, len(bounds)/2)
	if err := Default().Run(bounds, func(c, lo, hi int) { parts[c] = body(lo, hi) }); err != nil {
		// Same containment contract as For: the pool never deadlocks,
		// the panic resurfaces on the caller's goroutine.
		panic(err)
	}
	acc := init
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}
