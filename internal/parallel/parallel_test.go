package parallel

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunksCoverRangeExactly(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 2000)
		ww := int(w%20) + 1
		b := Chunks(nn, ww)
		if nn == 0 {
			return len(b) == 0
		}
		// Contiguous, disjoint, covering [0,nn).
		prev := 0
		for c := 0; c < len(b); c += 2 {
			lo, hi := b[c], b[c+1]
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == nn
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChunksBalanced(t *testing.T) {
	b := Chunks(10, 3)
	sizes := []int{}
	for c := 0; c < len(b); c += 2 {
		sizes = append(sizes, b[c+1]-b[c])
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes=%v", sizes)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		n := 500
		counts := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 4950 {
		t.Errorf("sum=%d", sum)
	}
}

func TestReduceDeterministic(t *testing.T) {
	body := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	want := Reduce(1000, 1, 0, body, add)
	for _, w := range []int{2, 3, 8} {
		if got := Reduce(1000, w, 0, body, add); got != want {
			t.Errorf("workers=%d: %g != %g", w, got, want)
		}
	}
	if got := Reduce(0, 4, 42, body, add); got != 42 {
		t.Errorf("empty reduce = %g, want init", got)
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Error("MaxWorkers < 1")
	}
}

func TestForPanicContainment(t *testing.T) {
	var ran atomic.Int64
	var got error
	func() {
		defer func() {
			if v := recover(); v != nil {
				var ok bool
				if got, ok = v.(*PanicError); !ok {
					t.Fatalf("re-panic value is %T, want *PanicError", v)
				}
			}
		}()
		For(100, 4, func(lo, hi int) {
			if lo == 0 {
				panic("poisoned chunk")
			}
			ran.Add(int64(hi - lo))
		})
	}()
	if got == nil {
		t.Fatalf("panic was swallowed")
	}
	pe := got.(*PanicError)
	if pe.Value != "poisoned chunk" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError lost the panic: %+v", pe)
	}
	// The other chunks must have run to completion: no deadlock, no
	// abandoned work (100 total minus the first chunk of 25).
	if ran.Load() != 75 {
		t.Fatalf("surviving chunks ran %d iterations, want 75", ran.Load())
	}
}

func TestForErrReturnsPanic(t *testing.T) {
	err := ForErr(10, 2, func(lo, hi int) {
		if lo == 0 {
			panic(42)
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("ForErr = %v, want *PanicError{42}", err)
	}
	if err := ForErr(10, 2, func(lo, hi int) {}); err != nil {
		t.Fatalf("clean ForErr = %v", err)
	}
	// Single-worker path must contain panics the same way.
	err = ForErr(10, 1, func(lo, hi int) { panic("serial") })
	if !errors.As(err, &pe) || pe.Value != "serial" {
		t.Fatalf("serial ForErr = %v", err)
	}
}

func TestReducePanicContainment(t *testing.T) {
	defer func() {
		v := recover()
		if _, ok := v.(*PanicError); !ok {
			t.Fatalf("Reduce re-panic = %T(%v), want *PanicError", v, v)
		}
	}()
	Reduce(100, 4, 0, func(lo, hi int) float64 {
		if lo == 0 {
			panic("reduce chunk")
		}
		return 1
	}, func(a, b float64) float64 { return a + b })
	t.Fatalf("Reduce did not re-panic")
}

func TestWorkerHook(t *testing.T) {
	var starts atomic.Int64
	SetWorkerHook(func(worker int) { starts.Add(1) })
	For(64, 4, func(lo, hi int) {})
	if starts.Load() != 4 {
		t.Fatalf("hook ran %d times, want 4", starts.Load())
	}
	starts.Store(0)
	Reduce(64, 1, 0, func(lo, hi int) float64 { return 0 }, func(a, b float64) float64 { return a })
	if starts.Load() != 1 {
		t.Fatalf("single-worker Reduce hook ran %d times, want 1", starts.Load())
	}
	SetWorkerHook(nil)
	starts.Store(0)
	For(64, 4, func(lo, hi int) {})
	if starts.Load() != 0 {
		t.Fatalf("removed hook still ran %d times", starts.Load())
	}
}
