package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunksCoverRangeExactly(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n % 2000)
		ww := int(w%20) + 1
		b := Chunks(nn, ww)
		if nn == 0 {
			return len(b) == 0
		}
		// Contiguous, disjoint, covering [0,nn).
		prev := 0
		for c := 0; c < len(b); c += 2 {
			lo, hi := b[c], b[c+1]
			if lo != prev || hi < lo {
				return false
			}
			prev = hi
		}
		return prev == nn
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChunksBalanced(t *testing.T) {
	b := Chunks(10, 3)
	sizes := []int{}
	for c := 0; c < len(b); c += 2 {
		sizes = append(sizes, b[c+1]-b[c])
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes=%v", sizes)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		n := 500
		counts := make([]int32, n)
		For(n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, 4, func(lo, hi int) { called = true })
	For(-5, 4, func(lo, hi int) { called = true })
	if called {
		t.Error("body called for empty range")
	}
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) {
		atomic.AddInt64(&sum, int64(i))
	})
	if sum != 4950 {
		t.Errorf("sum=%d", sum)
	}
}

func TestReduceDeterministic(t *testing.T) {
	body := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	want := Reduce(1000, 1, 0, body, add)
	for _, w := range []int{2, 3, 8} {
		if got := Reduce(1000, w, 0, body, add); got != want {
			t.Errorf("workers=%d: %g != %g", w, got, want)
		}
	}
	if got := Reduce(0, 4, 42, body, add); got != 42 {
		t.Errorf("empty reduce = %g, want init", got)
	}
}

func TestMaxWorkersPositive(t *testing.T) {
	if MaxWorkers() < 1 {
		t.Error("MaxWorkers < 1")
	}
}
