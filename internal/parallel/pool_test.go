package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolRunCoversAllChunks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	n := 1000
	for _, workers := range []int{1, 2, 3, 4, 7} {
		bounds := Chunks(n, workers)
		seen := make([]int32, n)
		err := p.Run(bounds, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestPoolRunEmptyBounds(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if err := p.Run(nil, func(_, _, _ int) { t.Fatal("body called") }); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRunPanicContainment(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	bounds := Chunks(100, 4)
	var visited int32
	err := p.Run(bounds, func(chunk, lo, hi int) {
		if chunk == 1 {
			panic("boom")
		}
		atomic.AddInt32(&visited, int32(hi-lo))
	})
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != "boom" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	// The other three chunks (75 indices) must still have run: a panicking
	// chunk doesn't abort its siblings.
	if visited != 75 {
		t.Fatalf("surviving chunks covered %d indices, want 75", visited)
	}
}

func TestPoolNestedRunFallsBackInline(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	inner0 := p.InlineRuns()
	var innerSum int64
	err := p.Run(Chunks(4, 4), func(_, lo, hi int) {
		// A nested Run sees the pool busy and must execute inline rather
		// than deadlock waiting for workers that are waiting for us.
		_ = p.Run(Chunks(10, 2), func(_, l, h int) {
			for i := l; i < h; i++ {
				atomic.AddInt64(&innerSum, int64(i))
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 * (9 * 10 / 2)); innerSum != want {
		t.Fatalf("nested runs computed %d, want %d", innerSum, want)
	}
	if p.InlineRuns() == inner0 {
		t.Fatal("expected nested dispatches to be counted as inline runs")
	}
}

func TestPoolDispatchCounterAndGoroutineStability(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	// Warm up so the worker goroutines exist before we count.
	_ = p.Run(Chunks(64, 4), func(_, _, _ int) {})
	before := runtime.NumGoroutine()
	d0 := p.Dispatches()
	for k := 0; k < 50; k++ {
		if err := p.Run(Chunks(64, 4), func(_, _, _ int) {}); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Dispatches() - d0; got != 50 {
		t.Fatalf("dispatches advanced by %d, want 50", got)
	}
	after := runtime.NumGoroutine()
	// The whole point of the pool: repeated dispatches spawn no goroutines.
	if after > before+1 {
		t.Fatalf("goroutine count grew from %d to %d across 50 dispatches", before, after)
	}
}

func TestPoolConcurrentRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				n := 64 + c
				sum := make([]int64, 1)
				err := p.Run(Chunks(n, 4), func(_, lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&sum[0], 1)
					}
				})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if sum[0] != int64(n) {
					t.Errorf("client %d: covered %d of %d", c, sum[0], n)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestPoolRunWorkerHook(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var calls int32
	SetWorkerHook(func(int) { atomic.AddInt32(&calls, 1) })
	defer SetWorkerHook(nil)
	if err := p.Run(Chunks(64, 4), func(_, _, _ int) {}); err != nil {
		t.Fatal(err)
	}
	if calls != 4 {
		t.Fatalf("worker hook called %d times, want 4 (once per chunk)", calls)
	}
}

func TestDefaultPoolSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default() must return one process-wide pool")
	}
	if Default().Size() != MaxWorkers() {
		t.Fatalf("default pool size %d, want MaxWorkers=%d", Default().Size(), MaxWorkers())
	}
}
