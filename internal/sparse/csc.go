package sparse

import "fmt"

// CSC is a sparse matrix in Compressed Sparse Column format. Column j owns
// the index range [ColPtr[j], ColPtr[j+1]) of RowIdx and Val; row indices
// within a column are sorted ascending.
//
// Section 4 of the paper notes that traversing A in column order with CSC
// swaps the roles of x and y in the SpMV: the scattered accesses land on
// the *output* vector, and the cache-friendly fill-in applies symmetrically.
// CSC is provided for that dual formulation and for column-oriented
// assembly; the FSAI campaign itself runs on CSR.
type CSC struct {
	Rows, Cols int
	ColPtr     []int
	RowIdx     []int
	Val        []float64
}

// CSCFromCSR converts a CSR matrix to CSC. The conversion is the counting
// transpose without reinterpreting the shape.
func CSCFromCSR(m *CSR) *CSC {
	t := m.Transpose() // CSR of Aᵀ == CSC of A with rows/cols swapped back
	return &CSC{
		Rows:   m.Rows,
		Cols:   m.Cols,
		ColPtr: t.RowPtr,
		RowIdx: t.ColIdx,
		Val:    t.Val,
	}
}

// ToCSR converts back to CSR.
func (m *CSC) ToCSR() *CSR {
	// The CSC arrays are exactly the CSR arrays of Aᵀ; transpose again.
	at := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	return at.Transpose()
}

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.RowIdx) }

// Col returns the row indices and values of column j, aliasing storage.
func (m *CSC) Col(j int) (rows []int, vals []float64) {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	return m.RowIdx[lo:hi], m.Val[lo:hi]
}

// MulVec computes y = A x traversing A in column order: for each column j,
// x[j] is broadcast into the rows of the column (scattered writes into y).
// This is the dual access pattern discussed in Section 4: accesses on x are
// stride-1 and the irregular traffic hits y instead.
func (m *CSC) MulVec(y, x []float64) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: CSC.MulVec dimensions y=%d x=%d for %dx%d", len(y), len(x), m.Rows, m.Cols))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		for k := lo; k < hi; k++ {
			y[m.RowIdx[k]] += m.Val[k] * xj
		}
	}
}

// MulVecT computes y = Aᵀ x: with CSC storage this is the gather-style
// kernel (each column produces one output via a dot product).
func (m *CSC) MulVecT(y, x []float64) {
	if len(y) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("sparse: CSC.MulVecT dimensions y=%d x=%d for %dx%d", len(y), len(x), m.Rows, m.Cols))
	}
	for j := 0; j < m.Cols; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		s := 0.0
		for k := lo; k < hi; k++ {
			s += m.Val[k] * x[m.RowIdx[k]]
		}
		y[j] = s
	}
}

// Validate checks the structural invariants of the CSC matrix.
func (m *CSC) Validate() error {
	at := &CSR{Rows: m.Cols, Cols: m.Rows, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	if err := at.Validate(); err != nil {
		return fmt.Errorf("sparse: CSC (as transposed CSR): %w", err)
	}
	return nil
}

// String returns a short human-readable summary.
func (m *CSC) String() string {
	return fmt.Sprintf("CSC{%dx%d, nnz=%d}", m.Rows, m.Cols, m.NNZ())
}
