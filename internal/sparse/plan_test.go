package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// skewedCSR builds an n x n matrix whose first rows are far denser than the
// rest, the shape that defeats equal-row partitioning.
func skewedCSR(n, heavyRows, heavyNNZ, lightNNZ int) *CSR {
	rng := rand.New(rand.NewSource(7))
	cols := make([][]int, n)
	vals := make([][]float64, n)
	for i := 0; i < n; i++ {
		k := lightNNZ
		if i < heavyRows {
			k = heavyNNZ
		}
		seen := map[int]bool{}
		for len(cols[i]) < k && len(cols[i]) < n {
			j := rng.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			cols[i] = append(cols[i], j)
			vals[i] = append(vals[i], rng.NormFloat64())
		}
	}
	m, err := NewCSRFromRows(n, n, cols, vals)
	if err != nil {
		panic(err)
	}
	return m
}

func planChunkNNZ(m *CSR, pl *Plan) []int {
	var out []int
	for c := 0; c < pl.NChunks(); c++ {
		lo, hi := pl.Bounds[2*c], pl.Bounds[2*c+1]
		out = append(out, m.RowPtr[hi]-m.RowPtr[lo])
	}
	return out
}

func TestPartitionPlanCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 17, 100} {
		m := randomCSR(rng, n, n, 0.2)
		for _, w := range []int{1, 2, 3, 8, n + 5} {
			pl := m.PartitionPlan(w)
			next := 0
			for c := 0; c < pl.NChunks(); c++ {
				lo, hi := pl.Bounds[2*c], pl.Bounds[2*c+1]
				if lo != next {
					t.Fatalf("n=%d w=%d chunk %d starts at %d, want %d", n, w, c, lo, next)
				}
				if hi < lo {
					t.Fatalf("n=%d w=%d chunk %d negative extent", n, w, c)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d w=%d plan covers %d rows, want %d", n, w, next, n)
			}
			m.InvalidatePlan() // force a rebuild for the next worker count
		}
	}
}

func TestPartitionPlanBalancesSkewedMatrix(t *testing.T) {
	// 10 heavy rows with 200 nnz each, 990 light rows with 2 nnz: equal-row
	// chunking gives the first of 4 chunks ~2500 nnz vs a ~662 mean
	// (imbalance ~280%); the nnz-balanced plan must stay under 15%.
	m := skewedCSR(1000, 10, 200, 2)
	pl := m.PartitionPlan(4)
	nnz := planChunkNNZ(m, pl)
	total := 0
	maxC := 0
	for _, c := range nnz {
		total += c
		if c > maxC {
			maxC = c
		}
	}
	if total != m.NNZ() {
		t.Fatalf("chunks hold %d nnz, matrix has %d", total, m.NNZ())
	}
	mean := float64(total) / float64(len(nnz))
	imb := 100 * (float64(maxC)/mean - 1)
	if imb > 15 {
		t.Fatalf("nnz imbalance %.1f%% (chunks %v), want <= 15%%", imb, nnz)
	}
	if math.Abs(pl.ImbalancePct-imb) > 1e-9 {
		t.Fatalf("plan reports imbalance %.3f%%, measured %.3f%%", pl.ImbalancePct, imb)
	}
}

func TestPartitionPlanCachedAndInvalidated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 50, 50, 0.2)
	p1 := m.PartitionPlan(4)
	if p2 := m.PartitionPlan(4); p2 != p1 {
		t.Fatal("same worker count must return the cached plan")
	}
	p3 := m.PartitionPlan(2)
	if p3 == p1 {
		t.Fatal("different worker count must rebuild the plan")
	}
	// Structural mutation through sortDedupRows drops the cache.
	m.sortDedupRows()
	if p4 := m.PartitionPlan(2); p4 == p3 {
		t.Fatal("sortDedupRows must invalidate the cached plan")
	}
}

func TestPartitionPlanEmptyAndSingleRow(t *testing.T) {
	empty := &CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}
	if pl := empty.PartitionPlan(4); pl.NChunks() != 0 {
		t.Fatalf("empty matrix plan has %d chunks", pl.NChunks())
	}
	one, err := NewCSRFromRows(1, 3, [][]int{{0, 2}}, [][]float64{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	pl := one.PartitionPlan(4)
	if pl.NChunks() != 1 || pl.Bounds[0] != 0 || pl.Bounds[1] != 1 {
		t.Fatalf("single-row plan = %v", pl.Bounds)
	}
}

func TestMulVecTParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][2]int{{1, 1}, {1, 7}, {7, 1}, {40, 60}, {200, 150}}
	for _, sh := range shapes {
		m := randomCSR(rng, sh[0], sh[1], 0.3)
		x := make([]float64, m.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, m.Cols)
		m.MulVecT(want, x)
		for _, w := range []int{2, 3, 8} {
			got := make([]float64, m.Cols)
			m.MulVecTParallel(got, x, w)
			for j := range want {
				diff := math.Abs(got[j] - want[j])
				tol := 1e-13 * math.Max(1, math.Abs(want[j]))
				if diff > tol {
					t.Fatalf("%dx%d w=%d: col %d got %g want %g", sh[0], sh[1], w, j, got[j], want[j])
				}
			}
		}
	}
	// Skewed + large enough to clear the cost heuristic and actually fan out.
	m := skewedCSR(600, 20, 300, 3)
	x := make([]float64, m.Rows)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, m.Cols)
	got := make([]float64, m.Cols)
	m.MulVecT(want, x)
	m.MulVecTParallel(got, x, 4)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-13*math.Max(1, math.Abs(want[j])) {
			t.Fatalf("skewed col %d: got %g want %g", j, got[j], want[j])
		}
	}
}
