// Package sparse implements the sparse-matrix substrate of the FSAI
// reproduction: CSR/CSC/COO storage, sparse matrix-vector products (the
// SpMV kernel the paper's analysis revolves around), transposition,
// triangular extraction, thresholding and symbolic utilities.
//
// Matrices are real, double precision. Row/column indices are 0-based.
// CSR matrices keep the column indices of every row sorted ascending; all
// constructors in this package establish that invariant and all kernels
// rely on it.
package sparse

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
)

// CSR is a sparse matrix in Compressed Sparse Row format.
//
// Row i owns the half-open index range [RowPtr[i], RowPtr[i+1]) of ColIdx
// and Val. Column indices within a row are sorted ascending and unique.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64

	// plan caches the nnz-balanced row partition used by the parallel SpMV
	// kernels (see PartitionPlan). It is advisory state: a zero value is
	// always valid, and structural mutators drop it.
	plan atomic.Pointer[Plan]
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i as sub-slices that
// alias the matrix storage. Callers must not grow them.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the entry (i,j), or 0 if it is not stored. It runs in
// O(log nnz(row i)) using binary search over the sorted column indices.
func (m *CSR) At(i, j int) float64 {
	cols, vals := m.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// Has reports whether entry (i,j) is stored.
func (m *CSR) Has(i, j int) bool {
	cols, _ := m.Row(i)
	k := sort.SearchInts(cols, j)
	return k < len(cols) && cols[k] == j
}

// Clone returns a deep copy of the matrix.
func (m *CSR) Clone() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...),
	}
	return c
}

// String returns a short human-readable summary (not the full contents).
func (m *CSR) String() string {
	return fmt.Sprintf("CSR{%dx%d, nnz=%d}", m.Rows, m.Cols, m.NNZ())
}

// Validate checks the structural invariants of the CSR matrix: monotone row
// pointers, in-range sorted unique column indices and consistent lengths.
func (m *CSR) Validate() error {
	if m.Rows < 0 || m.Cols < 0 {
		return errors.New("sparse: negative dimension")
	}
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return errors.New("sparse: RowPtr[0] != 0")
	}
	if len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: len(ColIdx)=%d != len(Val)=%d", len(m.ColIdx), len(m.Val))
	}
	if m.RowPtr[m.Rows] != len(m.ColIdx) {
		return fmt.Errorf("sparse: RowPtr[last]=%d != nnz=%d", m.RowPtr[m.Rows], len(m.ColIdx))
	}
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: row %d has negative extent", i)
		}
		prev := -1
		for k := lo; k < hi; k++ {
			j := m.ColIdx[k]
			if j < 0 || j >= m.Cols {
				return fmt.Errorf("sparse: row %d column %d out of range [0,%d)", i, j, m.Cols)
			}
			if j <= prev {
				return fmt.Errorf("sparse: row %d columns not strictly ascending at %d", i, j)
			}
			prev = j
		}
	}
	return nil
}

// Triplet is one (row, column, value) coordinate entry.
type Triplet struct {
	Row, Col int
	Val      float64
}

// NewCSRFromTriplets builds an r x c CSR matrix from coordinate entries.
// Duplicate coordinates are summed. Entries out of range return an error.
func NewCSRFromTriplets(r, c int, ts []Triplet) (*CSR, error) {
	for _, t := range ts {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of %dx%d", t.Row, t.Col, r, c)
		}
	}
	// Count entries per row, then bucket-place, then sort+dedup each row.
	counts := make([]int, r+1)
	for _, t := range ts {
		counts[t.Row+1]++
	}
	for i := 0; i < r; i++ {
		counts[i+1] += counts[i]
	}
	cols := make([]int, len(ts))
	vals := make([]float64, len(ts))
	next := append([]int(nil), counts...)
	for _, t := range ts {
		k := next[t.Row]
		cols[k] = t.Col
		vals[k] = t.Val
		next[t.Row]++
	}
	m := &CSR{Rows: r, Cols: c, RowPtr: counts, ColIdx: cols, Val: vals}
	m.sortDedupRows()
	return m, nil
}

// sortDedupRows sorts each row by column and sums duplicates, compacting the
// storage in place.
func (m *CSR) sortDedupRows() {
	outPtr := make([]int, m.Rows+1)
	w := 0
	for i := 0; i < m.Rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		row := rowSorter{cols: m.ColIdx[lo:hi], vals: m.Val[lo:hi]}
		sort.Sort(row)
		outPtr[i] = w
		for k := lo; k < hi; k++ {
			if w > outPtr[i] && m.ColIdx[w-1] == m.ColIdx[k] {
				m.Val[w-1] += m.Val[k]
				continue
			}
			m.ColIdx[w] = m.ColIdx[k]
			m.Val[w] = m.Val[k]
			w++
		}
	}
	outPtr[m.Rows] = w
	m.RowPtr = outPtr
	m.ColIdx = m.ColIdx[:w]
	m.Val = m.Val[:w]
	m.InvalidatePlan()
}

type rowSorter struct {
	cols []int
	vals []float64
}

func (r rowSorter) Len() int           { return len(r.cols) }
func (r rowSorter) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r rowSorter) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// NewCSRFromRows builds a CSR matrix from per-row (cols, vals) pairs. The
// input rows need not be sorted; duplicates within a row are summed.
func NewCSRFromRows(r, c int, rowCols [][]int, rowVals [][]float64) (*CSR, error) {
	if len(rowCols) != r || len(rowVals) != r {
		return nil, fmt.Errorf("sparse: got %d/%d row slices, want %d", len(rowCols), len(rowVals), r)
	}
	nnz := 0
	for i := range rowCols {
		if len(rowCols[i]) != len(rowVals[i]) {
			return nil, fmt.Errorf("sparse: row %d cols/vals length mismatch", i)
		}
		nnz += len(rowCols[i])
	}
	m := &CSR{
		Rows:   r,
		Cols:   c,
		RowPtr: make([]int, r+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for i := 0; i < r; i++ {
		for k, j := range rowCols[i] {
			if j < 0 || j >= c {
				return nil, fmt.Errorf("sparse: row %d column %d out of range [0,%d)", i, j, c)
			}
			m.ColIdx = append(m.ColIdx, j)
			m.Val = append(m.Val, rowVals[i][k])
		}
		m.RowPtr[i+1] = len(m.ColIdx)
	}
	m.sortDedupRows()
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) *CSR {
	m := &CSR{
		Rows:   n,
		Cols:   n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, n),
		Val:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// Diag returns the diagonal of the matrix as a dense vector of length
// min(Rows, Cols); missing diagonal entries are zero.
func (m *CSR) Diag() []float64 {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}
