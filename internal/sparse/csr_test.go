package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCSR(t *testing.T, r, c int, ts []Triplet) *CSR {
	t.Helper()
	m, err := NewCSRFromTriplets(r, c, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid CSR: %v", err)
	}
	return m
}

func TestNewCSRFromTriplets(t *testing.T) {
	m := mustCSR(t, 3, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5},
	})
	if m.NNZ() != 5 {
		t.Fatalf("nnz=%d, want 5", m.NNZ())
	}
	if got := m.At(0, 2); got != 2 {
		t.Errorf("At(0,2)=%g, want 2", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Errorf("At(0,1)=%g, want 0", got)
	}
	if !m.Has(2, 0) || m.Has(1, 0) {
		t.Errorf("Has results wrong")
	}
}

func TestTripletsSumDuplicates(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{
		{0, 0, 1}, {0, 0, 2}, {1, 1, -1}, {1, 1, 4}, {0, 1, 0.5},
	})
	if m.NNZ() != 3 {
		t.Fatalf("nnz=%d, want 3 after dedup", m.NNZ())
	}
	if m.At(0, 0) != 3 || m.At(1, 1) != 3 {
		t.Errorf("duplicates not summed: %g %g", m.At(0, 0), m.At(1, 1))
	}
}

func TestTripletsUnsortedInput(t *testing.T) {
	m := mustCSR(t, 2, 4, []Triplet{
		{1, 3, 4}, {0, 2, 2}, {1, 0, 3}, {0, 3, 9}, {0, 0, 1},
	})
	cols, vals := m.Row(0)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 2 || cols[2] != 3 {
		t.Fatalf("row 0 cols=%v", cols)
	}
	if vals[0] != 1 || vals[1] != 2 || vals[2] != 9 {
		t.Fatalf("row 0 vals=%v", vals)
	}
}

func TestTripletsOutOfRange(t *testing.T) {
	if _, err := NewCSRFromTriplets(2, 2, []Triplet{{2, 0, 1}}); err == nil {
		t.Error("row out of range accepted")
	}
	if _, err := NewCSRFromTriplets(2, 2, []Triplet{{0, -1, 1}}); err == nil {
		t.Error("negative column accepted")
	}
}

func TestNewCSRFromRows(t *testing.T) {
	m, err := NewCSRFromRows(2, 3, [][]int{{2, 0}, {1}}, [][]float64{{5, 1}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(0, 2) != 5 || m.At(1, 1) != 7 {
		t.Errorf("wrong values")
	}
	if _, err := NewCSRFromRows(2, 3, [][]int{{0}}, [][]float64{{1}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := NewCSRFromRows(1, 3, [][]int{{3}}, [][]float64{{1}}); err == nil {
		t.Error("column out of range accepted")
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Fatalf("I(%d,%d)=%g", i, j, got)
			}
		}
	}
}

func TestDiag(t *testing.T) {
	m := mustCSR(t, 3, 3, []Triplet{{0, 0, 2}, {1, 0, 5}, {2, 2, -7}})
	d := m.Diag()
	if d[0] != 2 || d[1] != 0 || d[2] != -7 {
		t.Errorf("Diag=%v", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{{0, 0, 1}, {1, 1, 2}})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Error("Clone shares value storage")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := mustCSR(t, 2, 2, []Triplet{{0, 0, 1}, {1, 1, 2}})
	m.ColIdx[1] = 5
	if err := m.Validate(); err == nil {
		t.Error("out-of-range column not caught")
	}
	m = mustCSR(t, 2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}})
	m.ColIdx[1] = 0
	if err := m.Validate(); err == nil {
		t.Error("non-ascending columns not caught")
	}
	m = mustCSR(t, 2, 2, []Triplet{{0, 0, 1}})
	m.RowPtr[2] = 0
	if err := m.Validate(); err == nil {
		t.Error("bad row pointer not caught")
	}
}

// randomCSR builds a random r x c matrix with approximately density*r*c
// entries, for property tests.
func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	var ts []Triplet
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				ts = append(ts, Triplet{i, j, rng.NormFloat64()})
			}
		}
	}
	m, err := NewCSRFromTriplets(r, c, ts)
	if err != nil {
		panic(err)
	}
	return m
}

func TestQuickTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCSR(r, 1+int(rng.Int31n(20)), 1+int(rng.Int31n(20)), 0.3)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		for k := range m.Val {
			if m.ColIdx[k] != tt.ColIdx[k] || m.Val[k] != tt.Val[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickTriangleDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomCSR(r, 12, 12, 0.4)
		lo, up := m.Lower(), m.Upper()
		// Lower + Upper double-counts the diagonal; check elementwise.
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				want := m.At(i, j)
				got := lo.At(i, j) + up.At(i, j)
				if i == j {
					got -= m.At(i, j)
				}
				if math.Abs(got-want) > 1e-15 {
					return false
				}
			}
		}
		return lo.Validate() == nil && up.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
