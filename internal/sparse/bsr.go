package sparse

import "fmt"

// BSR is a Block Sparse Row matrix: an r×c matrix partitioned into dense
// b×b blocks, stored CSR-wise at block granularity. Structural-mechanics
// matrices (the dominant family of the paper's Table 1) have natural small
// dense blocks — one per node with several degrees of freedom — and BSR
// amortizes index storage and fixes the x-access granularity at b elements,
// a storage-level cousin of the paper's cache-line blocking.
type BSR struct {
	Rows, Cols int // element dimensions (multiples of B)
	B          int // block edge
	RowPtr     []int
	ColIdx     []int     // block column indices
	Val        []float64 // blocks of B*B values, row-major within the block
}

// BSRFromCSR converts a CSR matrix to BSR with block edge b. The matrix
// dimensions must be multiples of b; blocks with any stored entry are
// materialized fully (explicit zeros inside a block are the price of the
// format).
func BSRFromCSR(m *CSR, b int) (*BSR, error) {
	if b < 1 {
		return nil, fmt.Errorf("sparse: block edge %d < 1", b)
	}
	if m.Rows%b != 0 || m.Cols%b != 0 {
		return nil, fmt.Errorf("sparse: %dx%d not divisible into %dx%d blocks", m.Rows, m.Cols, b, b)
	}
	br := m.Rows / b
	out := &BSR{Rows: m.Rows, Cols: m.Cols, B: b, RowPtr: make([]int, br+1)}
	// Pass 1: which block columns appear per block row.
	marker := make([]int, m.Cols/b)
	for i := range marker {
		marker[i] = -1
	}
	var blockCols [][]int
	for bi := 0; bi < br; bi++ {
		var cols []int
		for i := bi * b; i < (bi+1)*b; i++ {
			rc, _ := m.Row(i)
			for _, j := range rc {
				bj := j / b
				if marker[bj] != bi {
					marker[bj] = bi
					cols = append(cols, bj)
				}
			}
		}
		sortInts(cols)
		blockCols = append(blockCols, cols)
		out.RowPtr[bi+1] = out.RowPtr[bi] + len(cols)
	}
	nblocks := out.RowPtr[br]
	out.ColIdx = make([]int, 0, nblocks)
	out.Val = make([]float64, nblocks*b*b)
	// Pass 2: fill values.
	pos := make(map[int]int, 8) // block column -> block index within row
	for bi := 0; bi < br; bi++ {
		for k := range pos {
			delete(pos, k)
		}
		for bk, bj := range blockCols[bi] {
			pos[bj] = out.RowPtr[bi] + bk
			out.ColIdx = append(out.ColIdx, bj)
		}
		for i := bi * b; i < (bi+1)*b; i++ {
			rc, rv := m.Row(i)
			for k, j := range rc {
				blk := pos[j/b]
				out.Val[blk*b*b+(i-bi*b)*b+(j-bj0(j, b))] = rv[k]
			}
		}
	}
	return out, nil
}

// bj0 returns the first element column of j's block.
func bj0(j, b int) int { return (j / b) * b }

func sortInts(xs []int) {
	// insertion sort: block rows hold few distinct block columns
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}

// NNZBlocks returns the number of stored blocks.
func (m *BSR) NNZBlocks() int { return len(m.ColIdx) }

// NNZ returns the number of stored values (including explicit block zeros).
func (m *BSR) NNZ() int { return len(m.Val) }

// MulVec computes y = A x with block-wise dense inner kernels.
func (m *BSR) MulVec(y, x []float64) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: BSR.MulVec dimensions y=%d x=%d for %dx%d", len(y), len(x), m.Rows, m.Cols))
	}
	b := m.B
	br := m.Rows / b
	for bi := 0; bi < br; bi++ {
		ybase := bi * b
		for i := 0; i < b; i++ {
			y[ybase+i] = 0
		}
		for k := m.RowPtr[bi]; k < m.RowPtr[bi+1]; k++ {
			xbase := m.ColIdx[k] * b
			blk := m.Val[k*b*b : (k+1)*b*b]
			for i := 0; i < b; i++ {
				s := 0.0
				row := blk[i*b : (i+1)*b]
				for j := 0; j < b; j++ {
					s += row[j] * x[xbase+j]
				}
				y[ybase+i] += s
			}
		}
	}
}

// ToCSR converts back to CSR, dropping explicit zeros that the blocking
// introduced (diagonal entries are kept as in DropZeros).
func (m *BSR) ToCSR() *CSR {
	b := m.B
	br := m.Rows / b
	builder := NewCOO(m.Rows, m.Cols, m.NNZ())
	for bi := 0; bi < br; bi++ {
		for k := m.RowPtr[bi]; k < m.RowPtr[bi+1]; k++ {
			blk := m.Val[k*b*b : (k+1)*b*b]
			for i := 0; i < b; i++ {
				for j := 0; j < b; j++ {
					if v := blk[i*b+j]; v != 0 {
						builder.Add(bi*b+i, m.ColIdx[k]*b+j, v)
					}
				}
			}
		}
	}
	out := builder.ToCSR()
	return out
}

// FillRatio returns stored-values / structurally-nonzero values: 1.0 means
// the blocking added no explicit zeros (perfectly blocked matrix).
func (m *BSR) FillRatio(original *CSR) float64 {
	if original.NNZ() == 0 {
		return 0
	}
	return float64(m.NNZ()) / float64(original.NNZ())
}
