package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestMulMatMatchesMulVec proves every column of the k-column block product
// is bit-identical to the single-vector product of that column, across odd
// widths that exercise the 4/2/1-column kernel groups.
func TestMulMatMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{40, 40}, {63, 31}, {17, 90}} {
		m := randomCSR(rng, dims[0], dims[1], 0.15)
		for _, k := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
			x := make([]float64, k*m.Cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y := make([]float64, k*m.Rows)
			m.MulMat(y, x, k)
			ref := make([]float64, m.Rows)
			for j := 0; j < k; j++ {
				m.MulVec(ref, x[j*m.Cols:(j+1)*m.Cols])
				for i, want := range ref {
					if got := y[j*m.Rows+i]; got != want {
						t.Fatalf("%dx%d k=%d col %d row %d: got %v want %v (not bit-identical)",
							dims[0], dims[1], k, j, i, got, want)
					}
				}
			}
		}
	}
}

// TestMulMatTMatchesMulVecT checks the transposed block product against
// per-column MulVecT within floating-point tolerance (the multi-column
// scatter does not skip individual zero rows, so accumulation may differ
// in the last bits only through signed zeros — values must agree exactly
// here because both paths add the same terms in the same row order).
func TestMulMatTMatchesMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 45, 60, 0.12)
	for _, k := range []int{1, 2, 4, 6, 9} {
		x := make([]float64, k*m.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, k*m.Cols)
		m.MulMatT(y, x, k)
		ref := make([]float64, m.Cols)
		for j := 0; j < k; j++ {
			m.MulVecT(ref, x[j*m.Rows:(j+1)*m.Rows])
			for i, want := range ref {
				got := y[j*m.Cols+i]
				if math.Abs(got-want) > 1e-13*math.Max(1, math.Abs(want)) {
					t.Fatalf("k=%d col %d entry %d: got %v want %v", k, j, i, got, want)
				}
			}
		}
	}
}

// TestMulMatRangeChunks proves range-chunked evaluation (the pooled
// dispatch pattern) assembles the same bits as the whole-matrix call.
func TestMulMatRangeChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 70, 70, 0.1)
	const k = 5
	x := make([]float64, k*m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, k*m.Rows)
	m.MulMat(want, x, k)
	got := make([]float64, k*m.Rows)
	for lo := 0; lo < m.Rows; lo += 13 {
		hi := lo + 13
		if hi > m.Rows {
			hi = m.Rows
		}
		m.MulMatRange(got, x, k, lo, hi)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d: got %v want %v", i, got[i], want[i])
		}
	}
}

// TestSpMMOpClassCounters checks the per-class counter split: an SpMM sweep
// charges the matrix stream once and the vector traffic k times, and lands
// in both the aggregate and the spmm class.
func TestSpMMOpClassCounters(t *testing.T) {
	m, err := NewCSRFromTriplets(3, 3, []Triplet{
		{0, 0, 2}, {0, 1, -1}, {1, 1, 2}, {2, 1, -1}, {2, 2, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	EnableOpCounters(true)
	defer EnableOpCounters(false)
	ResetOpCounters()
	const k = 4
	x := make([]float64, k*3)
	y := make([]float64, k*3)
	m.MulMat(y, x, k)
	m.MulVec(y[:3], x[:3])
	AccountBlas1(6, 48)

	nnz := int64(m.NNZ())
	cls := ReadOpClassCounters()
	if cls.SpMM.SpMVCalls != 1 || cls.SpMM.Flops != 2*nnz*k {
		t.Fatalf("spmm class: %+v", cls.SpMM)
	}
	if want := 12*nnz + 4*3; cls.SpMM.MatrixBytes != want {
		t.Fatalf("spmm matrix bytes: got %d want %d (must not scale with k)", cls.SpMM.MatrixBytes, want)
	}
	if want := int64(8*(3+3)) * k; cls.SpMM.VectorBytes != want {
		t.Fatalf("spmm vector bytes: got %d want %d", cls.SpMM.VectorBytes, want)
	}
	if cls.SpMV.SpMVCalls != 1 || cls.SpMV.Flops != 2*nnz {
		t.Fatalf("spmv class: %+v", cls.SpMV)
	}
	if cls.BLAS1.SpMVCalls != 1 || cls.BLAS1.Flops != 6 || cls.BLAS1.VectorBytes != 48 {
		t.Fatalf("blas1 class: %+v", cls.BLAS1)
	}
	agg := ReadOpCounters()
	if agg.Flops != cls.SpMV.Flops+cls.SpMM.Flops {
		t.Fatalf("aggregate flops %d != spmv+spmm %d", agg.Flops, cls.SpMV.Flops+cls.SpMM.Flops)
	}
	if agg.SpMVCalls != 2 {
		t.Fatalf("aggregate calls: %d", agg.SpMVCalls)
	}
}

// BenchmarkSpMM measures per-RHS SpMM throughput across block widths. The
// figure of merit is ns/op divided by k: at k=8 the matrix stream is read
// once for eight columns, so per-RHS time should drop well below the k=1
// (plain SpMV) cost — the acceptance gate asks for ≥1.5×.
func BenchmarkSpMM(b *testing.B) {
	m := benchMatrix(20000)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(benchName(k), func(b *testing.B) {
			x := make([]float64, k*m.Cols)
			y := make([]float64, k*m.Rows)
			for i := range x {
				x[i] = float64(i % 7)
			}
			b.ReportAllocs()
			b.SetBytes(int64(m.NNZ()*12) + int64(8*k*(m.Rows+m.Cols)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.MulMat(y, x, k)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/rhs")
		})
	}
}

func benchName(k int) string {
	return fmt.Sprintf("k=%d", k)
}
