package sparse

import (
	"testing"
)

func fpMatrix(t *testing.T, ts []Triplet) *CSR {
	t.Helper()
	m, err := NewCSRFromTriplets(3, 3, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFingerprintDeterministicAndDistinct(t *testing.T) {
	base := []Triplet{{0, 0, 4}, {1, 1, 5}, {2, 2, 6}, {1, 0, -1}, {0, 1, -1}}
	a := fpMatrix(t, base)
	b := fpMatrix(t, base)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical matrices disagree on fingerprint")
	}
	if got := a.Fingerprint(); got != a.Fingerprint() {
		t.Fatalf("fingerprint not stable: %s", got)
	}
	if len(a.Fingerprint()) != 64 {
		t.Fatalf("want 64 hex chars, got %d", len(a.Fingerprint()))
	}

	// A value change, a structure change and a shape change must all move
	// the fingerprint.
	valChanged := fpMatrix(t, []Triplet{{0, 0, 4.0000001}, {1, 1, 5}, {2, 2, 6}, {1, 0, -1}, {0, 1, -1}})
	structChanged := fpMatrix(t, []Triplet{{0, 0, 4}, {1, 1, 5}, {2, 2, 6}, {2, 0, -1}, {0, 1, -1}})
	shapeChanged, err := NewCSRFromTriplets(4, 4, base)
	if err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]*CSR{
		"value":     valChanged,
		"structure": structChanged,
		"shape":     shapeChanged,
	} {
		if other.Fingerprint() == a.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}

func TestFingerprintIgnoresAdvisoryState(t *testing.T) {
	a := fpMatrix(t, []Triplet{{0, 0, 2}, {1, 1, 2}, {2, 2, 2}, {1, 0, -1}, {0, 1, -1}})
	before := a.Fingerprint()
	a.PartitionPlan(2) // caches a plan; must not affect identity
	if after := a.Fingerprint(); after != before {
		t.Fatalf("partition plan changed fingerprint: %s -> %s", before, after)
	}
	if c := a.Clone(); c.Fingerprint() != before {
		t.Fatal("clone fingerprint differs")
	}
}

func TestFingerprintEmptyAndLarge(t *testing.T) {
	empty := &CSR{Rows: 0, Cols: 0, RowPtr: []int{0}}
	if len(empty.Fingerprint()) != 64 {
		t.Fatal("empty matrix fingerprint malformed")
	}
	// Exercise the buffer-flush path with > 8192 bytes of content.
	n := 3000
	ts := make([]Triplet, 0, n)
	for i := 0; i < n; i++ {
		ts = append(ts, Triplet{i, i, float64(i) + 0.5})
	}
	big, err := NewCSRFromTriplets(n, n, ts)
	if err != nil {
		t.Fatal(err)
	}
	if big.Fingerprint() == empty.Fingerprint() {
		t.Fatal("large and empty collide")
	}
	if big.Fingerprint() != big.Clone().Fingerprint() {
		t.Fatal("large fingerprint not stable across clone")
	}
}
