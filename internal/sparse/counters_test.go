package sparse

import "testing"

func counterMatrix(t *testing.T) *CSR {
	t.Helper()
	// 3x3 tridiagonal: 7 stored entries.
	a, err := NewCSRFromTriplets(3, 3, []Triplet{
		{Row: 0, Col: 0, Val: 2}, {Row: 0, Col: 1, Val: -1},
		{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 2}, {Row: 1, Col: 2, Val: -1},
		{Row: 2, Col: 1, Val: -1}, {Row: 2, Col: 2, Val: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestOpCountersDisabledByDefault(t *testing.T) {
	ResetOpCounters()
	a := counterMatrix(t)
	y, x := make([]float64, 3), []float64{1, 2, 3}
	a.MulVec(y, x)
	if c := ReadOpCounters(); c != (OpCounts{}) {
		t.Fatalf("counters collected while disabled: %+v", c)
	}
}

func TestOpCountersAccounting(t *testing.T) {
	EnableOpCounters(true)
	defer EnableOpCounters(false)
	ResetOpCounters()
	a := counterMatrix(t)
	y, x := make([]float64, 3), []float64{1, 2, 3}
	a.MulVec(y, x)
	a.MulVecParallel(y, x, 2)
	a.MulVecT(y, x)

	c := ReadOpCounters()
	if c.SpMVCalls != 3 {
		t.Errorf("calls = %d, want 3", c.SpMVCalls)
	}
	// Per sweep: flops = 2*7, matrix = 12*7 + 4*3, vector = 8*(3+3).
	if want := int64(3 * 2 * 7); c.Flops != want {
		t.Errorf("flops = %d, want %d", c.Flops, want)
	}
	if want := int64(3 * (12*7 + 4*3)); c.MatrixBytes != want {
		t.Errorf("matrix bytes = %d, want %d", c.MatrixBytes, want)
	}
	if want := int64(3 * 8 * 6); c.VectorBytes != want {
		t.Errorf("vector bytes = %d, want %d", c.VectorBytes, want)
	}
	if c.Bytes() != c.MatrixBytes+c.VectorBytes {
		t.Error("Bytes() inconsistent")
	}
	ai := c.AI()
	if ai <= 0 || ai > 0.2 {
		t.Errorf("SpMV AI = %g, expected a small bandwidth-bound value", ai)
	}

	ResetOpCounters()
	if got := ReadOpCounters(); got != (OpCounts{}) {
		t.Errorf("reset left counters: %+v", got)
	}
	if !OpCountersEnabled() {
		t.Error("reset must not disable counting")
	}
}

func TestOpCountsEmptyAI(t *testing.T) {
	if (OpCounts{}).AI() != 0 {
		t.Error("empty AI should be 0")
	}
}
