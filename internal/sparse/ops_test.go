package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// denseOf expands a CSR matrix to a dense [][]float64 for oracle checks.
func denseOf(m *CSR) [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		cols, vals := m.Row(i)
		for k, j := range cols {
			d[i][j] += vals[k]
		}
	}
	return d
}

func denseMulVec(d [][]float64, x []float64) []float64 {
	y := make([]float64, len(d))
	for i := range d {
		for j := range d[i] {
			y[i] += d[i][j] * x[j]
		}
	}
	return y
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m := randomCSR(rng, 5+rng.Intn(15), 5+rng.Intn(15), 0.3)
		x := make([]float64, m.Cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, m.Rows)
		m.MulVec(y, x)
		want := denseMulVec(denseOf(m), x)
		for i := range y {
			if math.Abs(y[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d: y[%d]=%g want %g", trial, i, y[i], want[i])
			}
		}
	}
}

func TestMulVecParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 200, 150, 0.1)
	x := make([]float64, m.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ys := make([]float64, m.Rows)
	yp := make([]float64, m.Rows)
	m.MulVec(ys, x)
	for _, workers := range []int{1, 2, 3, 8} {
		m.MulVecParallel(yp, x, workers)
		for i := range ys {
			if ys[i] != yp[i] {
				t.Fatalf("workers=%d: y[%d] %g != %g", workers, i, yp[i], ys[i])
			}
		}
	}
}

func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		m := randomCSR(rng, 10+rng.Intn(10), 10+rng.Intn(10), 0.3)
		x := make([]float64, m.Rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, m.Cols)
		y2 := make([]float64, m.Cols)
		m.MulVecT(y1, x)
		m.Transpose().MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				t.Fatalf("MulVecT mismatch at %d: %g vs %g", i, y1[i], y2[i])
			}
		}
	}
}

func TestMulVecPanicsOnBadSizes(t *testing.T) {
	m := Identity(3)
	defer func() {
		if recover() == nil {
			t.Error("no panic on mismatched lengths")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestTransposeKnown(t *testing.T) {
	m, _ := NewCSRFromTriplets(2, 3, []Triplet{{0, 1, 5}, {1, 2, 7}, {0, 0, 1}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(1, 0) != 5 || tr.At(2, 1) != 7 || tr.At(0, 0) != 1 {
		t.Errorf("transpose values wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestTriangles(t *testing.T) {
	m, _ := NewCSRFromTriplets(3, 3, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 0, 3}, {1, 1, 4}, {2, 1, 5}, {2, 2, 6},
	})
	lo := m.Lower()
	if lo.NNZ() != 5 || lo.Has(0, 2) {
		t.Errorf("Lower wrong: %v", lo)
	}
	sl := m.StrictLower()
	if sl.NNZ() != 2 || sl.Has(0, 0) {
		t.Errorf("StrictLower wrong: %v", sl)
	}
	up := m.Upper()
	if up.NNZ() != 4 || up.Has(1, 0) {
		t.Errorf("Upper wrong: %v", up)
	}
}

func TestThreshold(t *testing.T) {
	m, _ := NewCSRFromTriplets(2, 2, []Triplet{
		{0, 0, 4}, {1, 1, 1}, {0, 1, 0.1}, {1, 0, 0.1},
	})
	// scale for (0,1) is sqrt(4*1)=2; 0.1 < tau*2 for tau=0.1.
	th := m.Threshold(0.1)
	if th.Has(0, 1) || th.Has(1, 0) {
		t.Error("small entries not dropped")
	}
	if !th.Has(0, 0) || !th.Has(1, 1) {
		t.Error("diagonal dropped")
	}
	// tau=0.01: 0.1 >= 0.02 stays.
	th = m.Threshold(0.01)
	if !th.Has(0, 1) {
		t.Error("large entry dropped")
	}
}

func TestIsSymmetric(t *testing.T) {
	m, _ := NewCSRFromTriplets(2, 2, []Triplet{{0, 1, 3}, {1, 0, 3}, {0, 0, 1}, {1, 1, 1}})
	if !m.IsSymmetric(0) {
		t.Error("symmetric matrix reported asymmetric")
	}
	m2, _ := NewCSRFromTriplets(2, 2, []Triplet{{0, 1, 3}, {1, 0, 2.9}, {0, 0, 1}, {1, 1, 1}})
	if m2.IsSymmetric(0.01) {
		t.Error("asymmetric matrix reported symmetric")
	}
	if !m2.IsSymmetric(0.2) {
		t.Error("tolerance not respected")
	}
	m3, _ := NewCSRFromTriplets(2, 3, nil)
	if m3.IsSymmetric(0) {
		t.Error("non-square matrix reported symmetric")
	}
}

func TestNorms(t *testing.T) {
	m, _ := NewCSRFromTriplets(2, 2, []Triplet{{0, 0, -3}, {1, 1, 4}})
	if m.MaxNorm() != 4 {
		t.Errorf("MaxNorm=%g", m.MaxNorm())
	}
	if math.Abs(m.FrobNorm()-5) > 1e-15 {
		t.Errorf("FrobNorm=%g", m.FrobNorm())
	}
}

func TestScale(t *testing.T) {
	m, _ := NewCSRFromTriplets(1, 1, []Triplet{{0, 0, 2}})
	m.Scale(2.5)
	if m.At(0, 0) != 5 {
		t.Errorf("Scale result %g", m.At(0, 0))
	}
}

func TestAddDiag(t *testing.T) {
	// Matrix with some missing diagonal entries.
	m, _ := NewCSRFromTriplets(3, 3, []Triplet{{0, 1, 2}, {1, 1, 3}, {2, 0, 4}})
	s := m.AddDiag(1.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 1.5 || s.At(1, 1) != 4.5 || s.At(2, 2) != 1.5 {
		t.Errorf("AddDiag values: %g %g %g", s.At(0, 0), s.At(1, 1), s.At(2, 2))
	}
	if s.At(0, 1) != 2 || s.At(2, 0) != 4 {
		t.Error("AddDiag disturbed off-diagonal entries")
	}
}

func TestExtract(t *testing.T) {
	m, _ := NewCSRFromTriplets(4, 4, []Triplet{
		{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 2}, {2, 2, 4}, {3, 3, 5}, {2, 3, 6}, {3, 2, 6},
	})
	idx := []int{0, 2, 3}
	d := m.Extract(idx, nil)
	// Column-major 3x3 of rows/cols {0,2,3}.
	want := []float64{1, 2, 0 /*col 0*/, 2, 4, 6 /*col 1*/, 0, 6, 5 /*col 2*/}
	for k := range want {
		if d[k] != want[k] {
			t.Fatalf("Extract[%d]=%g want %g (all %v)", k, d[k], want[k], d)
		}
	}
	// Buffer reuse clears stale data.
	buf := make([]float64, 16)
	for i := range buf {
		buf[i] = 99
	}
	d2 := m.Extract(idx, buf)
	for k := range want {
		if d2[k] != want[k] {
			t.Fatalf("Extract reuse [%d]=%g want %g", k, d2[k], want[k])
		}
	}
}

func TestGatherRHS(t *testing.T) {
	e := []float64{9, 9, 9}
	GatherRHS(e, 1)
	if e[0] != 0 || e[1] != 1 || e[2] != 0 {
		t.Errorf("GatherRHS=%v", e)
	}
}

func TestQuickMulVecLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 15, 15, 0.3)
		x1 := make([]float64, 15)
		x2 := make([]float64, 15)
		for i := range x1 {
			x1[i], x2[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		a, b := rng.NormFloat64(), rng.NormFloat64()
		// y(a*x1 + b*x2) == a*y(x1) + b*y(x2)
		xc := make([]float64, 15)
		for i := range xc {
			xc[i] = a*x1[i] + b*x2[i]
		}
		y1 := make([]float64, 15)
		y2 := make([]float64, 15)
		yc := make([]float64, 15)
		m.MulVec(y1, x1)
		m.MulVec(y2, x2)
		m.MulVec(yc, xc)
		for i := range yc {
			if math.Abs(yc[i]-(a*y1[i]+b*y2[i])) > 1e-9*(1+math.Abs(yc[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDropZeros(t *testing.T) {
	m, _ := NewCSRFromTriplets(2, 2, []Triplet{{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {1, 1, 0}})
	d := m.DropZeros()
	// Diagonal zeros kept, off-diagonal zeros dropped (none off-diag zero here).
	if !d.Has(0, 0) || !d.Has(1, 1) {
		t.Error("diagonal zeros must be kept")
	}
	m2, _ := NewCSRFromTriplets(2, 2, []Triplet{{0, 1, 0}, {0, 0, 1}, {1, 1, 1}})
	d2 := m2.DropZeros()
	if d2.Has(0, 1) {
		t.Error("off-diagonal zero kept")
	}
}

func TestCOOBuilder(t *testing.T) {
	b := NewCOO(3, 3, 4)
	b.AddSym(0, 1, -1)
	b.Add(0, 0, 2)
	b.Add(1, 1, 2)
	b.Add(2, 2, 1)
	if b.NNZ() != 5 {
		t.Fatalf("COO nnz=%d", b.NNZ())
	}
	m := b.ToCSR()
	if !m.IsSymmetric(0) {
		t.Error("AddSym result not symmetric")
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Error("AddSym values wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("COO.Add out of range did not panic")
		}
	}()
	b.Add(3, 0, 1)
}
