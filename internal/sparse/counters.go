package sparse

import "sync/atomic"

// Op/byte counters for the SpMV kernels. When enabled, every MulVec /
// MulVecParallel / MulVecT call adds its nominal work — flops and memory
// traffic computed from the matrix shape, not measured per element — to a
// set of package-level atomics. The accounting matches the roofline
// descriptors of internal/roofline (2 flops per stored entry; 12 B per
// entry + 4 B per row pointer of matrix traffic) so measured totals can be
// laid against the perfmodel/roofline estimates and drift becomes visible.
//
// Vector traffic is counted at its *nominal* minimum (each input element
// read once, each output element written once). The model's line-visit and
// miss terms price the same traffic pessimistically; the gap between the
// two is exactly the cache behaviour the paper's extension optimizes.
//
// The disabled path costs one atomic load per kernel call, which is not
// measurable against a sweep over thousands of entries.
var opCounters struct {
	enabled     atomic.Bool
	calls       atomic.Int64
	flops       atomic.Int64
	matrixBytes atomic.Int64
	vectorBytes atomic.Int64
}

// classCounter is one per-kernel-class tally. The aggregate opCounters
// above keep the historical "everything the sparse kernels did" totals;
// the class counters split the same work by kernel family so the roofline
// attribution can distinguish single-vector SpMV sweeps from batched SpMM
// sweeps and from the dense BLAS-1 traffic the solver engine reports.
type classCounter struct {
	calls       atomic.Int64
	flops       atomic.Int64
	matrixBytes atomic.Int64
	vectorBytes atomic.Int64
}

func (c *classCounter) add(calls, flops, matrixBytes, vectorBytes int64) {
	c.calls.Add(calls)
	c.flops.Add(flops)
	c.matrixBytes.Add(matrixBytes)
	c.vectorBytes.Add(vectorBytes)
}

func (c *classCounter) read() OpCounts {
	return OpCounts{
		SpMVCalls:   c.calls.Load(),
		Flops:       c.flops.Load(),
		MatrixBytes: c.matrixBytes.Load(),
		VectorBytes: c.vectorBytes.Load(),
	}
}

func (c *classCounter) reset() {
	c.calls.Store(0)
	c.flops.Store(0)
	c.matrixBytes.Store(0)
	c.vectorBytes.Store(0)
}

var classCounters struct {
	spmv  classCounter
	spmm  classCounter
	blas1 classCounter
}

// OpCounts is a snapshot of the SpMV op/byte counters.
type OpCounts struct {
	SpMVCalls   int64 // kernel invocations (MulVec, MulVecParallel, MulVecT)
	Flops       int64 // 2 × stored entries per sweep
	MatrixBytes int64 // entry values+indices and row pointers streamed
	VectorBytes int64 // nominal input reads + output writes
}

// OpClassCounts splits the counted work by kernel class: single-vector
// SpMV sweeps, batched k-column SpMM sweeps, and BLAS-1 vector traffic
// reported by the solver engine via AccountBlas1. The aggregate counters
// of ReadOpCounters equal SpMV + SpMM (BLAS-1 is tallied only here: the
// aggregate is documented as sparse-kernel traffic and feeds the existing
// roofline drift comparison, which must not change meaning).
type OpClassCounts struct {
	SpMV  OpCounts
	SpMM  OpCounts
	BLAS1 OpCounts
}

// Bytes returns the total counted traffic.
func (c OpCounts) Bytes() int64 { return c.MatrixBytes + c.VectorBytes }

// AI returns the measured arithmetic intensity in flop/byte (0 when empty).
func (c OpCounts) AI() float64 {
	b := c.Bytes()
	if b == 0 {
		return 0
	}
	return float64(c.Flops) / float64(b)
}

// EnableOpCounters turns kernel op counting on or off.
func EnableOpCounters(on bool) { opCounters.enabled.Store(on) }

// OpCountersEnabled reports whether kernel op counting is on.
func OpCountersEnabled() bool { return opCounters.enabled.Load() }

// ResetOpCounters zeroes the aggregate and per-class counters (the enabled
// flag is unchanged).
func ResetOpCounters() {
	opCounters.calls.Store(0)
	opCounters.flops.Store(0)
	opCounters.matrixBytes.Store(0)
	opCounters.vectorBytes.Store(0)
	classCounters.spmv.reset()
	classCounters.spmm.reset()
	classCounters.blas1.reset()
}

// ReadOpCounters returns the current counter values.
func ReadOpCounters() OpCounts {
	return OpCounts{
		SpMVCalls:   opCounters.calls.Load(),
		Flops:       opCounters.flops.Load(),
		MatrixBytes: opCounters.matrixBytes.Load(),
		VectorBytes: opCounters.vectorBytes.Load(),
	}
}

// ReadOpClassCounters returns the current per-kernel-class counter values.
func ReadOpClassCounters() OpClassCounts {
	return OpClassCounts{
		SpMV:  classCounters.spmv.read(),
		SpMM:  classCounters.spmm.read(),
		BLAS1: classCounters.blas1.read(),
	}
}

// AccountBlas1 charges a dense BLAS-1 sweep (flops and bytes as counted by
// the roofline descriptors) to the blas1 class counter. The solver engine
// calls it per kernel invocation; no-op when counting is disabled. BLAS-1
// work is deliberately kept out of the aggregate SpMV counters, whose
// meaning (sparse-sweep traffic vs the perfmodel estimate) predates it.
func AccountBlas1(flops, bytes int64) {
	if !opCounters.enabled.Load() {
		return
	}
	classCounters.blas1.add(1, flops, 0, bytes)
}

// countSpMV charges one sweep of m to the op counters (no-op when disabled).
func (m *CSR) countSpMV() {
	if !opCounters.enabled.Load() {
		return
	}
	nnz := int64(m.NNZ())
	opCounters.calls.Add(1)
	opCounters.flops.Add(2 * nnz)
	opCounters.matrixBytes.Add(12*nnz + 4*int64(m.Rows))
	opCounters.vectorBytes.Add(8 * int64(m.Cols+m.Rows))
	classCounters.spmv.add(1, 2*nnz, 12*nnz+4*int64(m.Rows), 8*int64(m.Cols+m.Rows))
}

// countSpMM charges one k-column block sweep of m: the matrix stream is
// read once, the vector traffic scales with k. The same work lands in the
// aggregate counters (as one call) so existing totals keep covering all
// sparse sweeps.
func (m *CSR) countSpMM(k int) {
	if !opCounters.enabled.Load() {
		return
	}
	nnz := int64(m.NNZ())
	kk := int64(k)
	flops := 2 * nnz * kk
	mb := 12*nnz + 4*int64(m.Rows)
	vb := 8 * int64(m.Cols+m.Rows) * kk
	opCounters.calls.Add(1)
	opCounters.flops.Add(flops)
	opCounters.matrixBytes.Add(mb)
	opCounters.vectorBytes.Add(vb)
	classCounters.spmm.add(1, flops, mb, vb)
}
