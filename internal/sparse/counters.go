package sparse

import "sync/atomic"

// Op/byte counters for the SpMV kernels. When enabled, every MulVec /
// MulVecParallel / MulVecT call adds its nominal work — flops and memory
// traffic computed from the matrix shape, not measured per element — to a
// set of package-level atomics. The accounting matches the roofline
// descriptors of internal/roofline (2 flops per stored entry; 12 B per
// entry + 4 B per row pointer of matrix traffic) so measured totals can be
// laid against the perfmodel/roofline estimates and drift becomes visible.
//
// Vector traffic is counted at its *nominal* minimum (each input element
// read once, each output element written once). The model's line-visit and
// miss terms price the same traffic pessimistically; the gap between the
// two is exactly the cache behaviour the paper's extension optimizes.
//
// The disabled path costs one atomic load per kernel call, which is not
// measurable against a sweep over thousands of entries.
var opCounters struct {
	enabled     atomic.Bool
	calls       atomic.Int64
	flops       atomic.Int64
	matrixBytes atomic.Int64
	vectorBytes atomic.Int64
}

// OpCounts is a snapshot of the SpMV op/byte counters.
type OpCounts struct {
	SpMVCalls   int64 // kernel invocations (MulVec, MulVecParallel, MulVecT)
	Flops       int64 // 2 × stored entries per sweep
	MatrixBytes int64 // entry values+indices and row pointers streamed
	VectorBytes int64 // nominal input reads + output writes
}

// Bytes returns the total counted traffic.
func (c OpCounts) Bytes() int64 { return c.MatrixBytes + c.VectorBytes }

// AI returns the measured arithmetic intensity in flop/byte (0 when empty).
func (c OpCounts) AI() float64 {
	b := c.Bytes()
	if b == 0 {
		return 0
	}
	return float64(c.Flops) / float64(b)
}

// EnableOpCounters turns kernel op counting on or off.
func EnableOpCounters(on bool) { opCounters.enabled.Store(on) }

// OpCountersEnabled reports whether kernel op counting is on.
func OpCountersEnabled() bool { return opCounters.enabled.Load() }

// ResetOpCounters zeroes the counters (the enabled flag is unchanged).
func ResetOpCounters() {
	opCounters.calls.Store(0)
	opCounters.flops.Store(0)
	opCounters.matrixBytes.Store(0)
	opCounters.vectorBytes.Store(0)
}

// ReadOpCounters returns the current counter values.
func ReadOpCounters() OpCounts {
	return OpCounts{
		SpMVCalls:   opCounters.calls.Load(),
		Flops:       opCounters.flops.Load(),
		MatrixBytes: opCounters.matrixBytes.Load(),
		VectorBytes: opCounters.vectorBytes.Load(),
	}
}

// countSpMV charges one sweep of m to the op counters (no-op when disabled).
func (m *CSR) countSpMV() {
	if !opCounters.enabled.Load() {
		return
	}
	nnz := int64(m.NNZ())
	opCounters.calls.Add(1)
	opCounters.flops.Add(2 * nnz)
	opCounters.matrixBytes.Add(12*nnz + 4*int64(m.Rows))
	opCounters.vectorBytes.Add(8 * int64(m.Cols+m.Rows))
}
