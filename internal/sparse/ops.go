package sparse

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/parallel"
)

// MulVecRange computes y[lo:hi] = (A x)[lo:hi] for the row range [lo,hi)
// with a 4-way unrolled gather loop. It performs no dimension checks and no
// op-counting: it is the building block the pooled SpMV kernels (and
// internal/kernels) schedule over partition-plan chunks; such callers charge
// the sweep themselves via AccountSpMV.
//
// The unrolled accumulation order is shared by MulVec and MulVecParallel,
// so serial and parallel products are bit-identical for any worker count.
func (m *CSR) MulVecRange(y, x []float64, lo, hi int) {
	rp, ci, v := m.RowPtr, m.ColIdx, m.Val
	for i := lo; i < hi; i++ {
		k, end := rp[i], rp[i+1]
		var s0, s1, s2, s3 float64
		for ; k+4 <= end; k += 4 {
			s0 += v[k] * x[ci[k]]
			s1 += v[k+1] * x[ci[k+1]]
			s2 += v[k+2] * x[ci[k+2]]
			s3 += v[k+3] * x[ci[k+3]]
		}
		for ; k < end; k++ {
			s0 += v[k] * x[ci[k]]
		}
		y[i] = (s0 + s1) + (s2 + s3)
	}
}

// AccountSpMV charges one full SpMV sweep of m to the package op counters
// (no-op when counting is disabled). Callers that drive MulVecRange directly
// — one sweep split across chunks — use it to keep the measured op/byte
// totals consistent with MulVec.
func (m *CSR) AccountSpMV() { m.countSpMV() }

// MulVec computes y = A x serially. y must have length A.Rows and x length
// A.Cols. This is the reference SpMV kernel: it streams RowPtr/ColIdx/Val
// with stride-1 accesses and gathers from x at the column indices, which is
// exactly the access pattern whose cache behaviour the paper optimizes.
func (m *CSR) MulVec(y, x []float64) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVec dimensions y=%d x=%d for %s", len(y), len(x), m))
	}
	m.countSpMV()
	m.MulVecRange(y, x, 0, m.Rows)
}

// MulVecParallel computes y = A x using the given number of workers
// (<=0 means all CPUs). Rows are split by the cached nnz-balanced partition
// plan (see PartitionPlan) and dispatched on the persistent worker pool, so
// repeated products on the same matrix pay neither goroutine spawning nor
// partition recomputation. Results are bit-identical to MulVec.
func (m *CSR) MulVecParallel(y, x []float64, workers int) {
	if len(y) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVecParallel dimensions y=%d x=%d for %s", len(y), len(x), m))
	}
	m.countSpMV()
	pl := m.PartitionPlan(workers)
	if pl.NChunks() <= 1 {
		m.MulVecRange(y, x, 0, m.Rows)
		return
	}
	if err := parallel.Default().Run(pl.Bounds, func(_, lo, hi int) {
		m.MulVecRange(y, x, lo, hi)
	}); err != nil {
		panic(err)
	}
}

// MulVecT computes y = Aᵀ x without materializing the transpose, by
// scattering row contributions into y. y must have length A.Cols and x
// length A.Rows. Rows whose x entry is exactly zero are skipped — a real
// win when x is sparse (partially converged residuals, unit vectors).
func (m *CSR) MulVecT(y, x []float64) {
	if len(y) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecT dimensions y=%d x=%d for %s", len(y), len(x), m))
	}
	m.countSpMV()
	for i := range y {
		y[i] = 0
	}
	m.scatterRange(y, x, 0, m.Rows)
}

// scatterRange adds Σ_{i in [lo,hi)} x[i]·A(i,·) into y (no zeroing).
func (m *CSR) scatterRange(y, x []float64, lo, hi int) {
	rp, ci, v := m.RowPtr, m.ColIdx, m.Val
	for i := lo; i < hi; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := rp[i]; k < rp[i+1]; k++ {
			y[ci[k]] += v[k] * xi
		}
	}
}

// mulVecTScratch pools the per-chunk scatter buffers of MulVecTParallel so
// steady-state transposed products allocate nothing.
var mulVecTScratch = sync.Pool{New: func() any { return new([][]float64) }}

// MulVecTParallel computes y = Aᵀ x with the given worker count (<=0: all
// CPUs). The scatter races on y if rows are naively split, so each chunk
// scatters into a pooled private buffer and a second parallel pass reduces
// the buffers column-wise into y. That costs O(chunks × Cols) extra traffic,
// which only pays off when the matrix is dense enough; small or thin
// matrices (and workers == 1) fall back to the serial MulVecT.
func (m *CSR) MulVecTParallel(y, x []float64, workers int) {
	if len(y) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecTParallel dimensions y=%d x=%d for %s", len(y), len(x), m))
	}
	pl := m.PartitionPlan(workers)
	k := pl.NChunks()
	// The private-buffer scheme moves ~2k×Cols extra elements; demand the
	// scatter itself be comfortably larger before paying that.
	if k <= 1 || m.NNZ() < 4*k*m.Cols {
		m.MulVecT(y, x)
		return
	}
	m.countSpMV()
	bufs := *mulVecTScratch.Get().(*[][]float64)
	for len(bufs) < k {
		bufs = append(bufs, nil)
	}
	for c := 0; c < k; c++ {
		if len(bufs[c]) < m.Cols {
			bufs[c] = make([]float64, m.Cols)
		}
	}
	pool := parallel.Default()
	if err := pool.Run(pl.Bounds, func(c, lo, hi int) {
		buf := bufs[c][:m.Cols]
		for j := range buf {
			buf[j] = 0
		}
		m.scatterRange(buf, x, lo, hi)
	}); err != nil {
		panic(err)
	}
	colBounds := parallel.Chunks(m.Cols, k)
	if err := pool.Run(colBounds, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			s := bufs[0][j]
			for c := 1; c < k; c++ {
				s += bufs[c][j]
			}
			y[j] = s
		}
	}); err != nil {
		panic(err)
	}
	mulVecTScratch.Put(&bufs)
}

// Transpose returns Aᵀ as a new CSR matrix (equivalently, A reinterpreted
// in CSC). Column indices of the result are sorted because the counting
// transpose visits rows in order.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := append([]int(nil), t.RowPtr...)
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// Lower returns the lower triangle of A including the diagonal.
func (m *CSR) Lower() *CSR { return m.triangle(true, true) }

// StrictLower returns the strictly lower triangle of A.
func (m *CSR) StrictLower() *CSR { return m.triangle(true, false) }

// Upper returns the upper triangle of A including the diagonal.
func (m *CSR) Upper() *CSR { return m.triangle(false, true) }

func (m *CSR) triangle(lower, withDiag bool) *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	keep := func(i, j int) bool {
		switch {
		case i == j:
			return withDiag
		case lower:
			return j < i
		default:
			return j > i
		}
	}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if keep(i, m.ColIdx[k]) {
				out.ColIdx = append(out.ColIdx, m.ColIdx[k])
				out.Val = append(out.Val, m.Val[k])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Threshold returns a copy of A with off-diagonal entries dropped when
// |a_ij| < tau * sqrt(|a_ii| * |a_jj|). Diagonal entries are always kept.
// This is the "Threshold A to produce Ã" step of Algorithms 1/2/4; the
// scale-independent criterion matches the paper's relative dropping.
func (m *CSR) Threshold(tau float64) *CSR {
	d := m.Diag()
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			v := m.Val[k]
			if i != j {
				scale := math.Sqrt(math.Abs(d[i]) * math.Abs(d[j]))
				if scale > 0 && math.Abs(v) < tau*scale {
					continue
				}
				if scale == 0 && math.Abs(v) < tau {
					continue
				}
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, v)
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// IsSymmetric reports whether A is structurally and numerically symmetric
// within absolute tolerance tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	t := m.Transpose()
	if len(t.ColIdx) != len(m.ColIdx) {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i+1]-m.RowPtr[i] != t.RowPtr[i+1]-t.RowPtr[i] {
			return false
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] != t.ColIdx[k] {
				return false
			}
			if math.Abs(m.Val[k]-t.Val[k]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxNorm returns max |a_ij| over stored entries (0 for an empty matrix).
func (m *CSR) MaxNorm() float64 {
	max := 0.0
	for _, v := range m.Val {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobNorm returns the Frobenius norm of the stored entries.
func (m *CSR) FrobNorm() float64 {
	s := 0.0
	for _, v := range m.Val {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies every stored entry by s, in place.
func (m *CSR) Scale(s float64) {
	for k := range m.Val {
		m.Val[k] *= s
	}
}

// AddDiag returns A + s*I for a square matrix A, keeping sparsity (diagonal
// entries are created when missing).
func (m *CSR) AddDiag(s float64) *CSR {
	if m.Rows != m.Cols {
		panic("sparse: AddDiag on non-square matrix")
	}
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		placed := false
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if !placed && j > i {
				out.ColIdx = append(out.ColIdx, i)
				out.Val = append(out.Val, s)
				placed = true
			}
			v := m.Val[k]
			if j == i {
				v += s
				placed = true
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, v)
		}
		if !placed {
			out.ColIdx = append(out.ColIdx, i)
			out.Val = append(out.Val, s)
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Extract returns the dense symmetric restriction A(idx, idx) in column-major
// order (n = len(idx)), as used by the local FSAI systems A(S_i,S_i). idx
// must be sorted ascending. The result buffer out must have length n*n or be
// nil (then it is allocated).
func (m *CSR) Extract(idx []int, out []float64) []float64 {
	n := len(idx)
	if out == nil {
		out = make([]float64, n*n)
	} else {
		if len(out) < n*n {
			panic("sparse: Extract buffer too small")
		}
		out = out[:n*n]
		for k := range out {
			out[k] = 0
		}
	}
	// For each local row r (global row idx[r]) walk the sparse row and the
	// sorted idx list simultaneously.
	for r := 0; r < n; r++ {
		gi := idx[r]
		lo, hi := m.RowPtr[gi], m.RowPtr[gi+1]
		k, c := lo, 0
		for k < hi && c < n {
			j := m.ColIdx[k]
			switch {
			case j == idx[c]:
				out[c*n+r] = m.Val[k] // column-major: element (r,c)
				k++
				c++
			case j < idx[c]:
				k++
			default:
				c++
			}
		}
	}
	return out
}

// GatherRHS fills e with zeros and sets e[pos] = 1; a helper for building
// the local right-hand sides of the Frobenius minimization.
func GatherRHS(e []float64, pos int) {
	for i := range e {
		e[i] = 0
	}
	e[pos] = 1
}
