package sparse

import (
	"sort"

	"repro/internal/parallel"
)

// Plan is a static row partition of a CSR matrix for parallel SpMV: the
// half-open row ranges in Bounds (flattened (lo,hi) pairs, the same layout
// parallel.Chunks produces) split the matrix so every chunk carries a
// near-equal share of the stored entries, not of the rows. Equal-row
// chunking — what MulVecParallel used before the kernel-layer rewrite —
// assigns a worker whose rows happen to be dense several times the work of
// its neighbours; nnz-balancing removes that skew up to single-row
// granularity.
//
// A Plan is immutable once built. It is computed lazily by
// CSR.PartitionPlan, cached on the matrix, and invalidated when the
// matrix's structure changes.
type Plan struct {
	// Workers is the worker count the plan was built for (= number of
	// chunks, except when the matrix has fewer rows than workers).
	Workers int
	// Bounds holds the chunk row ranges as flattened (lo,hi) pairs.
	Bounds []int
	// ImbalancePct is the residual load imbalance of the plan:
	// 100 * (max chunk nnz / mean chunk nnz - 1). Zero for a perfectly
	// balanced plan; large values mean single rows dominate the matrix and
	// no static row partition can do better.
	ImbalancePct float64

	rows, nnz int // validity stamp against the matrix
}

// NChunks returns the number of row chunks in the plan.
func (p *Plan) NChunks() int { return len(p.Bounds) / 2 }

// PartitionPlan returns the cached nnz-balanced row partition of m for the
// given worker count (<=0: all CPUs), computing it on first use. The plan is
// invalidated automatically when the matrix's row structure changes (rows or
// stored-entry count); callers that mutate structure in place without
// changing either should call InvalidatePlan.
//
// Concurrent callers may race to build the same plan; all of them receive a
// structurally identical plan and one of the builds wins the cache.
func (m *CSR) PartitionPlan(workers int) *Plan {
	if workers <= 0 {
		workers = parallel.MaxWorkers()
	}
	if workers > m.Rows {
		workers = m.Rows
	}
	if workers < 1 {
		workers = 1
	}
	if pl := m.plan.Load(); pl != nil && pl.Workers == workers && pl.rows == m.Rows && pl.nnz == m.NNZ() {
		return pl
	}
	pl := buildPlan(m, workers)
	m.plan.Store(pl)
	return pl
}

// InvalidatePlan drops the cached partition plan. Constructors and the
// structural mutators of this package call it; external callers only need it
// after mutating RowPtr/ColIdx directly.
func (m *CSR) InvalidatePlan() { m.plan.Store(nil) }

// buildPlan computes the nnz-balanced partition. RowPtr is the prefix sum of
// per-row entry counts, so the boundary of chunk k is found by binary search
// for the row where the running nnz crosses k/workers of the total.
func buildPlan(m *CSR, workers int) *Plan {
	pl := &Plan{Workers: workers, rows: m.Rows, nnz: m.NNZ()}
	if m.Rows == 0 {
		return pl
	}
	nnz := m.NNZ()
	pl.Bounds = make([]int, 0, 2*workers)
	lo := 0
	for k := 1; k <= workers; k++ {
		var hi int
		if k == workers {
			hi = m.Rows
		} else {
			target := nnz * k / workers
			// First row boundary whose cumulative nnz reaches the target.
			hi = sort.SearchInts(m.RowPtr, target)
			if hi < lo {
				hi = lo
			}
			if hi > m.Rows {
				hi = m.Rows
			}
		}
		pl.Bounds = append(pl.Bounds, lo, hi)
		lo = hi
	}
	// Residual imbalance: how much the heaviest chunk exceeds the mean.
	chunks := pl.NChunks()
	if nnz > 0 && chunks > 0 {
		maxChunk := 0
		for c := 0; c < chunks; c++ {
			w := m.RowPtr[pl.Bounds[2*c+1]] - m.RowPtr[pl.Bounds[2*c]]
			if w > maxChunk {
				maxChunk = w
			}
		}
		mean := float64(nnz) / float64(chunks)
		pl.ImbalancePct = 100 * (float64(maxChunk)/mean - 1)
	}
	return pl
}
