package sparse

// COO is an append-friendly coordinate-format builder for sparse matrices.
// It is the construction interface used by the matrix generators: call Add
// repeatedly (duplicates allowed, they are summed) and finish with ToCSR.
type COO struct {
	Rows, Cols int
	ts         []Triplet
}

// NewCOO returns an empty r x c coordinate builder with capacity hint cap.
func NewCOO(r, c, cap int) *COO {
	return &COO{Rows: r, Cols: c, ts: make([]Triplet, 0, cap)}
}

// Add appends entry (i,j) += v. Out-of-range indices panic: generator bugs
// should fail loudly at construction time.
func (b *COO) Add(i, j int, v float64) {
	if i < 0 || i >= b.Rows || j < 0 || j >= b.Cols {
		panic("sparse: COO.Add index out of range")
	}
	b.ts = append(b.ts, Triplet{Row: i, Col: j, Val: v})
}

// AddSym appends (i,j) += v and, when i != j, (j,i) += v. Convenient for
// generators that emit one triangle of a symmetric matrix.
func (b *COO) AddSym(i, j int, v float64) {
	b.Add(i, j, v)
	if i != j {
		b.Add(j, i, v)
	}
}

// NNZ returns the number of accumulated triplets (before deduplication).
func (b *COO) NNZ() int { return len(b.ts) }

// ToCSR converts the accumulated triplets to CSR, summing duplicates and
// dropping exact zeros produced by cancellation.
func (b *COO) ToCSR() *CSR {
	m, err := NewCSRFromTriplets(b.Rows, b.Cols, b.ts)
	if err != nil {
		panic(err) // Add already range-checked; unreachable
	}
	return m.DropZeros()
}

// DropZeros returns a copy of the matrix without entries that are exactly
// zero. Diagonal entries are kept even when zero so that SPD-oriented
// algorithms can always address them.
func (m *CSR) DropZeros() *CSR {
	out := &CSR{Rows: m.Rows, Cols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.Val[k] == 0 && m.ColIdx[k] != i {
				continue
			}
			out.ColIdx = append(out.ColIdx, m.ColIdx[k])
			out.Val = append(out.Val, m.Val[k])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}
