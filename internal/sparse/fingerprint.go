package sparse

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a content fingerprint of the matrix: the hex SHA-256
// of its dimensions, row pointers, column indices and values. Two matrices
// share a fingerprint iff they are entry-for-entry identical (same shape,
// same sparsity structure, bit-identical values), which is exactly the
// equivalence the solve service's matrix registry and preconditioner cache
// key on: a cached G factor is reusable precisely when the operator bytes
// are the same.
//
// The fingerprint is independent of advisory state (partition plans) and of
// slice capacities; it depends only on the logical CSR content.
func (m *CSR) Fingerprint() string {
	h := sha256.New()
	var buf [8192]byte // multiple of 8; words never straddle a flush
	k := 0
	putU64 := func(v uint64) {
		if k == len(buf) {
			h.Write(buf[:k])
			k = 0
		}
		binary.LittleEndian.PutUint64(buf[k:], v)
		k += 8
	}
	// Length framing first, so (RowPtr, ColIdx, Val) section boundaries are
	// unambiguous and structurally different matrices cannot collide.
	putU64(uint64(m.Rows))
	putU64(uint64(m.Cols))
	putU64(uint64(len(m.RowPtr)))
	putU64(uint64(len(m.ColIdx)))
	for _, v := range m.RowPtr {
		putU64(uint64(v))
	}
	for _, v := range m.ColIdx {
		putU64(uint64(v))
	}
	for _, v := range m.Val {
		putU64(math.Float64bits(v))
	}
	h.Write(buf[:k])
	return hex.EncodeToString(h.Sum(nil))
}
