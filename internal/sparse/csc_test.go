package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randomCSR(rng, 15, 12, 0.3)
	c := CSCFromCSR(m)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != m.NNZ() || c.Rows != m.Rows || c.Cols != m.Cols {
		t.Fatalf("shape/nnz mismatch: %v vs %v", c, m)
	}
	back := c.ToCSR()
	if back.NNZ() != m.NNZ() {
		t.Fatal("round trip lost entries")
	}
	for k := range m.Val {
		if back.ColIdx[k] != m.ColIdx[k] || back.Val[k] != m.Val[k] {
			t.Fatal("round trip corrupted entries")
		}
	}
}

func TestCSCCol(t *testing.T) {
	m, _ := NewCSRFromTriplets(3, 3, []Triplet{
		{Row: 0, Col: 1, Val: 5}, {Row: 2, Col: 1, Val: 7}, {Row: 1, Col: 0, Val: 3},
	})
	c := CSCFromCSR(m)
	rows, vals := c.Col(1)
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 || vals[0] != 5 || vals[1] != 7 {
		t.Errorf("col 1 = %v %v", rows, vals)
	}
	if rows, _ := c.Col(2); len(rows) != 0 {
		t.Error("col 2 should be empty")
	}
}

func TestQuickCSCMulVecMatchesCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, cc := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rng, r, cc, 0.3)
		c := CSCFromCSR(m)
		x := make([]float64, cc)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, r)
		y2 := make([]float64, r)
		m.MulVec(y1, x)
		c.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				return false
			}
		}
		// Transpose product too.
		xt := make([]float64, r)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		z1 := make([]float64, cc)
		z2 := make([]float64, cc)
		m.MulVecT(z1, xt)
		c.MulVecT(z2, xt)
		for i := range z1 {
			if math.Abs(z1[i]-z2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCSCMulVecPanics(t *testing.T) {
	c := CSCFromCSR(Identity(3))
	defer func() {
		if recover() == nil {
			t.Error("no panic on bad sizes")
		}
	}()
	c.MulVec(make([]float64, 2), make([]float64, 3))
}
