package sparse

import (
	"math/rand"
	"testing"
)

// benchMatrix builds a banded-ish matrix with ~10 entries per row for SpMV
// benchmarking.
func benchMatrix(n int) *CSR {
	rng := rand.New(rand.NewSource(1))
	b := NewCOO(n, n, 11*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 10)
		for k := 0; k < 10; k++ {
			j := i - 50 + rng.Intn(101)
			if j < 0 || j >= n || j == i {
				continue
			}
			b.Add(i, j, -0.1)
		}
	}
	return b.ToCSR()
}

func BenchmarkSpMV(b *testing.B) {
	m := benchMatrix(20000)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

func BenchmarkSpMVT(b *testing.B) {
	m := benchMatrix(20000)
	x := make([]float64, m.Rows)
	y := make([]float64, m.Cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(y, x)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

func BenchmarkSpMVCSC(b *testing.B) {
	m := CSCFromCSR(benchMatrix(20000))
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkExtract(b *testing.B) {
	m := benchMatrix(5000)
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i * 70
	}
	buf := make([]float64, 64*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Extract(idx, buf)
	}
}
