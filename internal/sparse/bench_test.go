package sparse

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// benchMatrix builds a banded-ish matrix with ~10 entries per row for SpMV
// benchmarking.
func benchMatrix(n int) *CSR {
	rng := rand.New(rand.NewSource(1))
	b := NewCOO(n, n, 11*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 10)
		for k := 0; k < 10; k++ {
			j := i - 50 + rng.Intn(101)
			if j < 0 || j >= n || j == i {
				continue
			}
			b.Add(i, j, -0.1)
		}
	}
	return b.ToCSR()
}

func BenchmarkSpMV(b *testing.B) {
	m := benchMatrix(20000)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

// benchSkewedMatrix concentrates ~60% of the nnz in the first 2% of the
// rows, the shape where equal-row chunking starves all workers but one.
func benchSkewedMatrix(n int) *CSR {
	rng := rand.New(rand.NewSource(2))
	heavy := n / 50
	b := NewCOO(n, n, 6*n)
	for i := 0; i < n; i++ {
		b.Add(i, i, 10)
		per := 3
		if i < heavy {
			per = 150
		}
		for k := 0; k < per; k++ {
			j := rng.Intn(n)
			if j != i {
				b.Add(i, j, -0.01)
			}
		}
	}
	return b.ToCSR()
}

// BenchmarkSpMVSkewed compares the SpMV scheduling strategies on a matrix
// with heavy row skew: serial, the pre-plan equal-row chunking, and the
// cached nnz-balanced partition plan. All variants report allocs; the
// pooled paths must show zero in steady state.
func BenchmarkSpMVSkewed(b *testing.B) {
	m := benchSkewedMatrix(20000)
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = float64(i % 7)
	}
	w := parallel.MaxWorkers()
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			m.MulVec(y, x)
		}
	})
	b.Run("pool-equalrows", func(b *testing.B) {
		bounds := parallel.Chunks(m.Rows, w)
		body := func(_, lo, hi int) { m.MulVecRange(y, x, lo, hi) }
		b.ReportAllocs()
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			if err := parallel.Default().Run(bounds, body); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pool-nnzplan", func(b *testing.B) {
		m.PartitionPlan(w) // build once outside the timed region
		b.ReportAllocs()
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			m.MulVecParallel(y, x, w)
		}
	})
}

func BenchmarkSpMVT(b *testing.B) {
	m := benchMatrix(20000)
	x := make([]float64, m.Rows)
	y := make([]float64, m.Cols)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(y, x)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

// BenchmarkSpMVTZeroSkip measures MulVecT's zero-skip branch: with a mostly
// zero x the scatter loop body is skipped for the zero rows, so the sparse
// case should run far under the dense case.
func BenchmarkSpMVTZeroSkip(b *testing.B) {
	m := benchMatrix(20000)
	y := make([]float64, m.Cols)
	dense := make([]float64, m.Rows)
	for i := range dense {
		dense[i] = float64(i%7) + 1
	}
	mostlyZero := make([]float64, m.Rows)
	for i := 0; i < len(mostlyZero); i += 100 {
		mostlyZero[i] = 1
	}
	b.Run("dense-x", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			m.MulVecT(y, dense)
		}
	})
	b.Run("zero-skip-x", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(m.NNZ() * 12))
		for i := 0; i < b.N; i++ {
			m.MulVecT(y, mostlyZero)
		}
	})
}

func BenchmarkSpMVTParallel(b *testing.B) {
	m := benchMatrix(20000)
	x := make([]float64, m.Rows)
	y := make([]float64, m.Cols)
	for i := range x {
		x[i] = float64(i%7) + 1
	}
	w := parallel.MaxWorkers()
	m.PartitionPlan(w)
	b.ReportAllocs()
	b.SetBytes(int64(m.NNZ() * 12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecTParallel(y, x, w)
	}
}

func BenchmarkSpMVCSC(b *testing.B) {
	m := CSCFromCSR(benchMatrix(20000))
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
	b.SetBytes(int64(m.NNZ() * 12))
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkExtract(b *testing.B) {
	m := benchMatrix(5000)
	idx := make([]int, 64)
	for i := range idx {
		idx[i] = i * 70
	}
	buf := make([]float64, 64*64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Extract(idx, buf)
	}
}
