package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBSRFromCSRErrors(t *testing.T) {
	m := Identity(6)
	if _, err := BSRFromCSR(m, 0); err == nil {
		t.Error("block edge 0 accepted")
	}
	if _, err := BSRFromCSR(m, 4); err == nil {
		t.Error("non-divisible blocking accepted")
	}
}

func TestBSRIdentity(t *testing.T) {
	m := Identity(8)
	b, err := BSRFromCSR(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.NNZBlocks() != 4 {
		t.Errorf("blocks=%d, want 4 diagonal blocks", b.NNZBlocks())
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := make([]float64, 8)
	b.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec wrong at %d", i)
		}
	}
}

func TestQuickBSRMulVecMatchesCSR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := []int{1, 2, 3, 4}
		bsz := blocks[rng.Intn(len(blocks))]
		n := bsz * (2 + rng.Intn(8))
		m := randomCSR(rng, n, n, 0.2)
		bm, err := BSRFromCSR(m, bsz)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, n)
		y2 := make([]float64, n)
		m.MulVec(y1, x)
		bm.MulVec(y2, x)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12*(1+math.Abs(y1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomCSR(rng, 12, 12, 0.3)
	// Ensure a full diagonal so DropZeros keeps shape comparable.
	m = m.AddDiag(1)
	b, err := BSRFromCSR(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	back := b.ToCSR()
	if back.Rows != m.Rows || back.Cols != m.Cols {
		t.Fatal("shape changed")
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if math.Abs(back.At(i, j)-m.At(i, j)) > 1e-15 {
				t.Fatalf("(%d,%d): %g vs %g", i, j, back.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestBSRFillRatio(t *testing.T) {
	// A perfectly 2-blocked matrix: fill ratio exactly 1.
	bld := NewCOO(4, 4, 8)
	for blk := 0; blk < 2; blk++ {
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				bld.Add(blk*2+i, blk*2+j, 1+float64(i+j))
			}
		}
	}
	m := bld.ToCSR()
	b, err := BSRFromCSR(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := b.FillRatio(m); r != 1 {
		t.Errorf("fill ratio %g, want 1", r)
	}
	// A diagonal matrix blocked 2x2 doubles storage (ratio 2).
	d := Identity(4)
	bd, _ := BSRFromCSR(d, 2)
	if r := bd.FillRatio(d); r != 2 {
		t.Errorf("diagonal fill ratio %g, want 2", r)
	}
}

func BenchmarkSpMVBSR(b *testing.B) {
	// Elasticity-like 2x2-blocked matrix.
	n := 5000
	rng := rand.New(rand.NewSource(1))
	bld := NewCOO(2*n, 2*n, 20*n)
	for node := 0; node < n; node++ {
		for e := 0; e < 4; e++ {
			nbr := node - 25 + rng.Intn(51)
			if nbr < 0 || nbr >= n {
				continue
			}
			for i := 0; i < 2; i++ {
				for j := 0; j < 2; j++ {
					bld.Add(2*node+i, 2*nbr+j, rng.Float64())
				}
			}
		}
		bld.Add(2*node, 2*node, 10)
		bld.Add(2*node+1, 2*node+1, 10)
	}
	m := bld.ToCSR()
	bm, err := BSRFromCSR(m, 2)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.Cols)
	y := make([]float64, m.Rows)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.MulVec(y, x)
	}
	b.SetBytes(int64(bm.NNZ() * 8))
}
