package sparse

import "fmt"

// SpMM (multi-vector SpMV) kernels: Y = A X for a block X of k dense
// vectors stored column-major (column j of X is x[j*Cols:(j+1)*Cols], of Y
// is y[j*Rows:(j+1)*Rows]). One pass over the matrix serves all k columns,
// so the dominant CSR stream (values + column indices, 12 B per stored
// entry) is read once instead of k times — the same bandwidth→compute shift
// the paper's cache-aware patterns buy inside one SpMV, applied across
// right-hand sides. Per-RHS matrix traffic drops k-fold; only the k column
// gathers remain per-vector.
//
// Bit-identity: each column of MulMat uses exactly the accumulation order
// of MulVecRange (4-way unrolled over the row's entries, combined as
// (s0+s1)+(s2+s3)), so column j of a k-column product is bit-identical to
// the single-vector product with that column for every k. The batched solve
// paths rely on this to return the same bits as unbatched solves.

// MulMatRange computes Y[lo:hi, :] = (A X)[lo:hi, :] for the row range
// [lo,hi) over k column-major vectors. Like MulVecRange it performs no
// dimension checks and no op-counting; pooled callers schedule it over
// partition-plan chunks and charge the sweep via AccountSpMM.
//
// Columns are processed in groups of four so the row's value/index stream
// is loaded once per group; the remainder runs a two-column group and then
// delegates single columns to MulVecRange (which makes k = 1 trivially the
// scalar kernel).
func (m *CSR) MulMatRange(y, x []float64, k, lo, hi int) {
	rp, ci, v := m.RowPtr, m.ColIdx, m.Val
	rows, cols := m.Rows, m.Cols
	j := 0
	for ; j+4 <= k; j += 4 {
		x0 := x[j*cols : (j+1)*cols]
		x1 := x[(j+1)*cols : (j+2)*cols]
		x2 := x[(j+2)*cols : (j+3)*cols]
		x3 := x[(j+3)*cols : (j+4)*cols]
		y0 := y[j*rows : (j+1)*rows]
		y1 := y[(j+1)*rows : (j+2)*rows]
		y2 := y[(j+2)*rows : (j+3)*rows]
		y3 := y[(j+3)*rows : (j+4)*rows]
		for i := lo; i < hi; i++ {
			p, end := rp[i], rp[i+1]
			var a0, a1, a2, a3 float64
			var b0, b1, b2, b3 float64
			var c0, c1, c2, c3 float64
			var d0, d1, d2, d3 float64
			for ; p+4 <= end; p += 4 {
				v0, v1, v2, v3 := v[p], v[p+1], v[p+2], v[p+3]
				j0, j1, j2, j3 := ci[p], ci[p+1], ci[p+2], ci[p+3]
				a0 += v0 * x0[j0]
				a1 += v1 * x0[j1]
				a2 += v2 * x0[j2]
				a3 += v3 * x0[j3]
				b0 += v0 * x1[j0]
				b1 += v1 * x1[j1]
				b2 += v2 * x1[j2]
				b3 += v3 * x1[j3]
				c0 += v0 * x2[j0]
				c1 += v1 * x2[j1]
				c2 += v2 * x2[j2]
				c3 += v3 * x2[j3]
				d0 += v0 * x3[j0]
				d1 += v1 * x3[j1]
				d2 += v2 * x3[j2]
				d3 += v3 * x3[j3]
			}
			for ; p < end; p++ {
				vp, jp := v[p], ci[p]
				a0 += vp * x0[jp]
				b0 += vp * x1[jp]
				c0 += vp * x2[jp]
				d0 += vp * x3[jp]
			}
			y0[i] = (a0 + a1) + (a2 + a3)
			y1[i] = (b0 + b1) + (b2 + b3)
			y2[i] = (c0 + c1) + (c2 + c3)
			y3[i] = (d0 + d1) + (d2 + d3)
		}
	}
	if j+2 <= k {
		x0 := x[j*cols : (j+1)*cols]
		x1 := x[(j+1)*cols : (j+2)*cols]
		y0 := y[j*rows : (j+1)*rows]
		y1 := y[(j+1)*rows : (j+2)*rows]
		for i := lo; i < hi; i++ {
			p, end := rp[i], rp[i+1]
			var a0, a1, a2, a3 float64
			var b0, b1, b2, b3 float64
			for ; p+4 <= end; p += 4 {
				v0, v1, v2, v3 := v[p], v[p+1], v[p+2], v[p+3]
				j0, j1, j2, j3 := ci[p], ci[p+1], ci[p+2], ci[p+3]
				a0 += v0 * x0[j0]
				a1 += v1 * x0[j1]
				a2 += v2 * x0[j2]
				a3 += v3 * x0[j3]
				b0 += v0 * x1[j0]
				b1 += v1 * x1[j1]
				b2 += v2 * x1[j2]
				b3 += v3 * x1[j3]
			}
			for ; p < end; p++ {
				vp, jp := v[p], ci[p]
				a0 += vp * x0[jp]
				b0 += vp * x1[jp]
			}
			y0[i] = (a0 + a1) + (a2 + a3)
			y1[i] = (b0 + b1) + (b2 + b3)
		}
		j += 2
	}
	if j < k {
		m.MulVecRange(y[j*rows:(j+1)*rows], x[j*cols:(j+1)*cols], lo, hi)
	}
}

// AccountSpMM charges one k-column SpMM sweep of m to the package op
// counters (no-op when counting is disabled). Callers driving MulMatRange
// over partition-plan chunks use it exactly like AccountSpMV.
func (m *CSR) AccountSpMM(k int) { m.countSpMM(k) }

// MulMat computes Y = A X for k column-major vectors. y must have length
// k*A.Rows and x length k*A.Cols. Column j of the result is bit-identical
// to MulVec applied to column j of X.
func (m *CSR) MulMat(y, x []float64, k int) {
	if k < 1 || len(y) != k*m.Rows || len(x) != k*m.Cols {
		panic(fmt.Sprintf("sparse: MulMat dimensions y=%d x=%d k=%d for %s", len(y), len(x), k, m))
	}
	m.countSpMM(k)
	m.MulMatRange(y, x, k, 0, m.Rows)
}

// MulMatT computes Y = Aᵀ X for k column-major vectors without
// materializing the transpose, scattering row contributions into all k
// output columns in one pass over the matrix. y must have length k*A.Cols
// and x length k*A.Rows. Like MulVecT, rows whose x entries are all zero
// are skipped.
func (m *CSR) MulMatT(y, x []float64, k int) {
	if k < 1 || len(y) != k*m.Cols || len(x) != k*m.Rows {
		panic(fmt.Sprintf("sparse: MulMatT dimensions y=%d x=%d k=%d for %s", len(y), len(x), k, m))
	}
	m.countSpMM(k)
	for i := range y {
		y[i] = 0
	}
	rp, ci, v := m.RowPtr, m.ColIdx, m.Val
	rows, cols := m.Rows, m.Cols
	j := 0
	for ; j+4 <= k; j += 4 {
		x0 := x[j*rows : (j+1)*rows]
		x1 := x[(j+1)*rows : (j+2)*rows]
		x2 := x[(j+2)*rows : (j+3)*rows]
		x3 := x[(j+3)*rows : (j+4)*rows]
		y0 := y[j*cols : (j+1)*cols]
		y1 := y[(j+1)*cols : (j+2)*cols]
		y2 := y[(j+2)*cols : (j+3)*cols]
		y3 := y[(j+3)*cols : (j+4)*cols]
		for i := 0; i < rows; i++ {
			xi0, xi1, xi2, xi3 := x0[i], x1[i], x2[i], x3[i]
			if xi0 == 0 && xi1 == 0 && xi2 == 0 && xi3 == 0 {
				continue
			}
			for p := rp[i]; p < rp[i+1]; p++ {
				vp, c := v[p], ci[p]
				y0[c] += vp * xi0
				y1[c] += vp * xi1
				y2[c] += vp * xi2
				y3[c] += vp * xi3
			}
		}
	}
	for ; j < k; j++ {
		m.scatterRange(y[j*cols:(j+1)*cols], x[j*rows:(j+1)*rows], 0, rows)
	}
}
