// Package resilience wraps FSAI setup and the PCG solve with adaptive
// recovery: typed breakdowns (see krylov.Status and fsai.SetupError) are not
// returned to the caller as failures but met with an escalation chain —
// diagonal-shift setup retries first, then degradation to progressively
// cheaper, more robust preconditioners, re-solving from the best iterate
// after every breakdown:
//
//	FSAIE(full) → FSAIE(sp) → FSAI → Jacobi → plain CG
//
// Every attempt is recorded in a RecoveryLog and mirrored into telemetry
// ("resilience.retries", "resilience.fallbacks{from,to}"), so a recovered
// solve is never a silent one: the run report and /healthz both show what
// it took to converge.
//
// The adaptive-FSAI literature (Isotton/Janna/Bernaschi; Jia/Kang for
// residual-based SPAI) treats this kind of pattern/value fallback as part of
// a production preconditioner rather than an afterthought; this package is
// that layer for the reproduction.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	fsai "repro/internal/core"
	"repro/internal/krylov"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

// Canonical rung names, matching the cmd/fsaisolve -precond spelling.
const (
	PrecondFSAIEFull = "fsaie"
	PrecondFSAIESp   = "fsaie-sp"
	PrecondFSAI      = "fsai"
	PrecondJacobi    = "jacobi"
	PrecondNone      = "none"
)

// fullChain is the escalation order, strongest first.
var fullChain = []string{PrecondFSAIEFull, PrecondFSAIESp, PrecondFSAI, PrecondJacobi, PrecondNone}

// Chain returns the escalation chain starting at the given rung (a copy),
// or nil when the name is not a recognized rung.
func Chain(from string) []string {
	for i, r := range fullChain {
		if r == from {
			return append([]string(nil), fullChain[i:]...)
		}
	}
	return nil
}

// DefaultStagnationWindow is the stagnation guard armed on resilient solves
// when the caller did not choose one: 250 iterations without a 0.1% residual
// improvement end the attempt and trigger the next rung.
const DefaultStagnationWindow = 250

// ErrNotConverged reports that the solve ended without reaching the
// tolerance even after every recovery rung (or ran out of iteration budget).
// The Outcome still carries the best iterate and the full recovery log.
var ErrNotConverged = errors.New("resilience: solve did not converge")

// Options configures a resilient solve.
type Options struct {
	// Precond is the starting rung (default PrecondFSAIEFull). The chain
	// degrades from here; see Chain.
	Precond string
	// Setup configures the FSAI-family rungs. Variant is overridden per rung.
	Setup fsai.Options
	// Solve configures the PCG attempts. Ctx and Resume are managed by the
	// resilience loop; StagnationWindow defaults to DefaultStagnationWindow.
	Solve krylov.Options
	// SetupMatrix, when non-nil, is the matrix handed to preconditioner
	// setup, while the solve itself runs on the true operator. They differ
	// when the preconditioning pipeline works on corrupted, filtered or
	// stale data — exactly the scenario the recovery chain exists for.
	SetupMatrix *sparse.CSR
	// MaxShiftRetries bounds the diagonal-shift setup retries per FSAI rung
	// (default 4).
	MaxShiftRetries int
	// ShiftScale sets the first retry shift to ShiftScale × max|diag(A)|;
	// each further retry doubles it (default 1e-6).
	ShiftScale float64
	// Metrics, when non-nil, receives the recovery counters.
	Metrics *telemetry.Registry
	// OnAttempt, when non-nil, observes every attempt as it is recorded
	// (progress logging for CLIs).
	OnAttempt func(Attempt)
	// OnPrecond, when non-nil, observes every successfully built FSAI-family
	// preconditioner before its solve attempt. It exists as the seam where
	// the chaos suite corrupts a computed factor (faultinject.DropGRow) to
	// prove the stagnation guard catches a damaged preconditioner; it also
	// serves plain instrumentation.
	OnPrecond func(rung string, p *fsai.Preconditioner)
}

// Attempt is one recorded step of the recovery chain.
type Attempt struct {
	// Stage is "setup" or "solve".
	Stage string `json:"stage"`
	// Precond is the rung the attempt ran at.
	Precond string `json:"precond"`
	// Shift is the diagonal shift α in A + αI used for setup (0: none).
	Shift float64 `json:"shift,omitempty"`
	// Status is "ok" or the typed failure: a krylov.Status name for solve
	// attempts, "error:<reason>" for setup attempts.
	Status string `json:"status"`
	// Err is the error text of a failed setup attempt.
	Err string `json:"error,omitempty"`
	// Iterations / RelRes describe a solve attempt's end state.
	Iterations int     `json:"iterations,omitempty"`
	RelRes     float64 `json:"relres,omitempty"`
	// NS is the attempt's wall time.
	NS int64 `json:"ns"`
}

// RecoveryLog is the complete record of a resilient solve.
type RecoveryLog struct {
	// Attempts lists every setup and solve attempt in order.
	Attempts []Attempt `json:"attempts"`
	// Retries counts diagonal-shift setup retries.
	Retries int `json:"retries"`
	// Fallbacks counts rung degradations.
	Fallbacks int `json:"fallbacks"`
}

// Outcome is the result of a resilient solve.
type Outcome struct {
	// Result is the final PCG result (the last attempt's).
	Result krylov.Result
	// Precond is the rung that produced the final result; Shift the
	// diagonal shift its setup needed (0: none).
	Precond string
	Shift   float64
	// Recovered reports whether any retry, fallback or restart happened —
	// false for a clean first-attempt convergence.
	Recovered bool
	// FSAI is the final preconditioner when the final rung is FSAI-family.
	FSAI *fsai.Preconditioner
	// Log records every attempt.
	Log RecoveryLog
}

func (o *Outcome) record(opt *Options, a Attempt) {
	o.Log.Attempts = append(o.Log.Attempts, a)
	if opt.OnAttempt != nil {
		opt.OnAttempt(a)
	}
}

// Solve runs the fault-aware setup+solve pipeline on A x = b. The solution
// overwrites x. The returned Outcome is non-nil whenever the chain ran at
// all; the error is nil on convergence, ctx.Err() on cancellation and
// ErrNotConverged when every rung was exhausted.
func Solve(ctx context.Context, a *sparse.CSR, x, b []float64, opt Options) (*Outcome, error) {
	if opt.Precond == "" {
		opt.Precond = PrecondFSAIEFull
	}
	if opt.MaxShiftRetries <= 0 {
		opt.MaxShiftRetries = 4
	}
	if opt.ShiftScale <= 0 {
		opt.ShiftScale = 1e-6
	}
	chain := Chain(opt.Precond)
	if chain == nil {
		return nil, fmt.Errorf("resilience: %q is not a recovery rung (want one of %v)", opt.Precond, fullChain)
	}
	setupA := opt.SetupMatrix
	if setupA == nil {
		setupA = a
	}

	ko := opt.Solve
	ko.Ctx = ctx
	if ko.StagnationWindow <= 0 {
		ko.StagnationWindow = DefaultStagnationWindow
	}
	// A caller-provided checkpoint (resume after cancellation) seeds the
	// first attempt; later attempts replace it with their own restart state.
	cp := ko.Resume
	ko.Resume = nil

	reg := opt.Metrics
	reg.SetHelp("resilience_retries", "diagonal-shift FSAI setup retries")
	reg.SetHelp("resilience_fallbacks", "preconditioner rung degradations by from/to")
	reg.SetHelp("resilience_solves", "resilient solves by final status")

	out := &Outcome{}
	for ri, rung := range chain {
		if ri > 0 {
			out.Log.Fallbacks++
			reg.Counter(fmt.Sprintf(`resilience.fallbacks{from="%s",to="%s"}`, chain[ri-1], rung)).Inc()
		}
		m, g, shift, err := out.buildRung(setupA, rung, &opt, reg)
		if err != nil {
			// Setup attempts (including failed shift retries) are already
			// in the log; degrade to the next rung.
			continue
		}
		if g != nil && opt.OnPrecond != nil {
			opt.OnPrecond(rung, g)
		}
		ko2 := ko
		ko2.Resume = cp
		t0 := time.Now()
		res := krylov.Solve(a, x, b, m, ko2)
		out.record(&opt, Attempt{
			Stage: "solve", Precond: rung, Shift: shift,
			Status: res.Status.String(), Iterations: res.Iterations,
			RelRes: res.RelResidual, NS: time.Since(t0).Nanoseconds(),
		})
		out.Result = res
		out.Precond, out.Shift, out.FSAI = rung, shift, g
		out.Recovered = out.Log.Retries > 0 || out.Log.Fallbacks > 0
		switch {
		case res.Status == krylov.StatusConverged:
			reg.Counter(`resilience.solves{status="converged"}`).Inc()
			return out, nil
		case res.Status == krylov.StatusCancelled:
			reg.Counter(`resilience.solves{status="cancelled"}`).Inc()
			if err := ctx.Err(); err != nil {
				return out, err
			}
			return out, context.Canceled
		case res.Status == krylov.StatusMaxIter:
			// The iteration budget is shared across attempts; a weaker rung
			// cannot do better within the same budget, so stop here.
			reg.Counter(`resilience.solves{status="max-iter"}`).Inc()
			return out, ErrNotConverged
		}
		// Breakdown: restart the next rung from the best finite iterate.
		cp = res.Checkpoint
		if cp != nil {
			cp.P, cp.RZ = nil, 0 // the direction died with the old preconditioner
			if !krylov.AllFinite(cp.X) || (cp.R != nil && !krylov.AllFinite(cp.R)) {
				cp = nil // poisoned state: restart from zero
			}
		}
	}
	reg.Counter(`resilience.solves{status="exhausted"}`).Inc()
	return out, ErrNotConverged
}

// buildRung constructs the preconditioner for one rung, retrying FSAI-family
// setups with a doubling diagonal shift when the failure is retryable. All
// attempts land in the log; the returned error means the rung is unusable.
func (o *Outcome) buildRung(a *sparse.CSR, rung string, opt *Options, reg *telemetry.Registry) (krylov.Preconditioner, *fsai.Preconditioner, float64, error) {
	switch rung {
	case PrecondNone:
		o.record(opt, Attempt{Stage: "setup", Precond: rung, Status: "ok"})
		return krylov.Identity{}, nil, 0, nil
	case PrecondJacobi:
		t0 := time.Now()
		j := krylov.NewJacobi(a)
		j.PublishWarnings(reg)
		status := "ok"
		if n := j.NegDiag + j.ZeroDiag; n > 0 {
			status = fmt.Sprintf("ok (%d diagonal entries repaired)", n)
		}
		o.record(opt, Attempt{Stage: "setup", Precond: rung, Status: status, NS: time.Since(t0).Nanoseconds()})
		return j, nil, 0, nil
	}
	variant, ok := variantOf(rung)
	if !ok {
		return nil, nil, 0, fmt.Errorf("resilience: unknown rung %q", rung)
	}
	fo := opt.Setup
	fo.Variant = variant
	shift := 0.0
	as := a
	maxd := -1.0
	for try := 0; ; try++ {
		t0 := time.Now()
		p, err := fsai.Compute(as, fo)
		ns := time.Since(t0).Nanoseconds()
		if err == nil {
			o.record(opt, Attempt{Stage: "setup", Precond: rung, Shift: shift, Status: "ok", NS: ns})
			return p, p, shift, nil
		}
		reason := fsai.ReasonUnknown
		if se, ok := fsai.AsSetupError(err); ok {
			reason = se.Reason
		}
		o.record(opt, Attempt{
			Stage: "setup", Precond: rung, Shift: shift,
			Status: "error:" + reason.String(), Err: err.Error(), NS: ns,
		})
		if !reason.Retryable() || try >= opt.MaxShiftRetries {
			return nil, nil, shift, err
		}
		if shift == 0 {
			if maxd < 0 {
				maxd = maxAbsDiag(a)
				if maxd == 0 {
					maxd = 1
				}
			}
			shift = opt.ShiftScale * maxd
		} else {
			shift *= 2
		}
		o.Log.Retries++
		reg.Counter("resilience.retries").Inc()
		as = a.AddDiag(shift)
	}
}

func variantOf(rung string) (fsai.Variant, bool) {
	switch rung {
	case PrecondFSAIEFull:
		return fsai.VariantFull, true
	case PrecondFSAIESp:
		return fsai.VariantSp, true
	case PrecondFSAI:
		return fsai.VariantFSAI, true
	}
	return 0, false
}

func maxAbsDiag(a *sparse.CSR) float64 {
	maxd := 0.0
	for _, v := range a.Diag() {
		if av := math.Abs(v); av > maxd {
			maxd = av
		}
	}
	return maxd
}
