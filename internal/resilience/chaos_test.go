// The chaos suite: every fault class the taxonomy names is injected
// deterministically (seeded, see internal/faultinject), then the test asserts
// the three-step contract — the fault is *detected* with the right typed
// status, *attributed* in the recovery log and injector event log, and
// *recovered* to convergence by the escalation chain.
package resilience

import (
	"context"
	"strings"
	"testing"

	fsai "repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/krylov"
	"repro/internal/matgen"
	"repro/internal/sparse"
	"repro/internal/telemetry"
)

func testProblem() (*sparse.CSR, []float64, []float64) {
	a := matgen.Laplace2D(12, 12)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	return a, make([]float64, a.Rows), b
}

func solveStatuses(log RecoveryLog) []string {
	var out []string
	for _, at := range log.Attempts {
		if at.Stage == "solve" {
			out = append(out, at.Precond+":"+at.Status)
		}
	}
	return out
}

func TestChainOrder(t *testing.T) {
	full := Chain(PrecondFSAIEFull)
	want := []string{"fsaie", "fsaie-sp", "fsai", "jacobi", "none"}
	if len(full) != len(want) {
		t.Fatalf("chain %v", full)
	}
	for i, r := range want {
		if full[i] != r {
			t.Fatalf("chain %v, want %v", full, want)
		}
	}
	if got := Chain(PrecondJacobi); len(got) != 2 {
		t.Fatalf("jacobi chain %v", got)
	}
	if Chain("bogus") != nil {
		t.Fatalf("unknown rung must yield nil chain")
	}
}

func TestCleanSolveNoRecovery(t *testing.T) {
	a, x, b := testProblem()
	out, err := Solve(context.Background(), a, x, b, Options{})
	if err != nil {
		t.Fatalf("clean solve: %v", err)
	}
	if !out.Result.Converged || out.Result.Status != krylov.StatusConverged {
		t.Fatalf("status %v", out.Result.Status)
	}
	if out.Recovered || out.Log.Retries != 0 || out.Log.Fallbacks != 0 {
		t.Fatalf("clean solve flagged as recovered: %+v", out.Log)
	}
	if out.Precond != PrecondFSAIEFull || out.Shift != 0 || out.FSAI == nil {
		t.Fatalf("precond=%q shift=%g fsai=%v", out.Precond, out.Shift, out.FSAI != nil)
	}
	if len(out.Log.Attempts) != 2 {
		t.Fatalf("expected [setup, solve], got %+v", out.Log.Attempts)
	}
}

func TestUnknownPrecondRejected(t *testing.T) {
	a, x, b := testProblem()
	if _, err := Solve(context.Background(), a, x, b, Options{Precond: "ilu"}); err == nil {
		t.Fatalf("unknown rung accepted")
	}
}

// Fault class 1: a mildly corrupted matrix reaches preconditioner setup.
// Detection: typed not-spd SetupError. Recovery: diagonal-shift retries on
// the same rung — no degradation needed.
func TestChaosShiftRetryRepairsSetup(t *testing.T) {
	a, x, b := testProblem()
	in := faultinject.New(11)
	bad, row := in.PerturbDiagonal(a, -4.0000001) // a[row,row] goes slightly negative
	reg := telemetry.NewRegistry()
	out, err := Solve(context.Background(), a, x, b, Options{
		SetupMatrix: bad,
		ShiftScale:  0.25, // first retry shifts by 0.25 × max|diag| = 1
		Metrics:     reg,
	})
	if err != nil {
		t.Fatalf("solve: %v (log %+v)", err, out.Log)
	}
	if !out.Recovered || out.Log.Retries == 0 {
		t.Fatalf("expected shift retries, log %+v", out.Log)
	}
	if out.Log.Fallbacks != 0 || out.Precond != PrecondFSAIEFull {
		t.Fatalf("shift retry should rescue the first rung, got precond=%q fallbacks=%d",
			out.Precond, out.Log.Fallbacks)
	}
	if out.Shift <= 0 {
		t.Fatalf("recovered setup should report its shift, got %g", out.Shift)
	}
	var sawNotSPD bool
	for _, at := range out.Log.Attempts {
		if at.Stage == "setup" && at.Status == "error:not-spd" {
			sawNotSPD = true
		}
	}
	if !sawNotSPD {
		t.Fatalf("failure not attributed as not-spd: %+v", out.Log.Attempts)
	}
	if got := reg.Counter("resilience.retries").Value(); got != int64(out.Log.Retries) {
		t.Errorf("retries counter %d, log says %d", got, out.Log.Retries)
	}
	if len(in.Events()) == 0 || in.Events()[0].Index != row {
		t.Errorf("injector event log lost the corruption: %v", in.Events())
	}
}

// Fault class 2: a zeroed diagonal that no reasonable shift repairs.
// Detection: not-spd on every FSAI rung. Recovery: degradation down to
// Jacobi, whose zero-diagonal guard repairs the entry, solving on the true
// operator.
func TestChaosFallbackToJacobi(t *testing.T) {
	a, x, b := testProblem()
	in := faultinject.New(5)
	bad, _ := in.ZeroDiagonal(a)
	reg := telemetry.NewRegistry()
	out, err := Solve(context.Background(), a, x, b, Options{
		SetupMatrix:     bad,
		MaxShiftRetries: 1, // default tiny shifts cannot fix a zeroed diagonal
		Metrics:         reg,
	})
	if err != nil {
		t.Fatalf("solve: %v (attempts %v)", err, solveStatuses(out.Log))
	}
	if out.Precond != PrecondJacobi {
		t.Fatalf("expected recovery at jacobi, got %q (attempts %v)", out.Precond, solveStatuses(out.Log))
	}
	if !out.Recovered || out.Log.Fallbacks != 3 {
		t.Fatalf("expected 3 fallbacks (fsaie→fsaie-sp→fsai→jacobi), log %+v", out.Log)
	}
	var jacobiRepaired bool
	for _, at := range out.Log.Attempts {
		if at.Precond == PrecondJacobi && at.Stage == "setup" && strings.Contains(at.Status, "repaired") {
			jacobiRepaired = true
		}
	}
	if !jacobiRepaired {
		t.Errorf("jacobi setup did not report the diagonal repair: %+v", out.Log.Attempts)
	}
	if got := reg.Counter(`resilience.fallbacks{from="fsai",to="jacobi"}`).Value(); got != 1 {
		t.Errorf("fallback counter fsai→jacobi = %d", got)
	}
	if got := reg.Counter("krylov.jacobi.zero_diag_fixed").Value(); got != 1 {
		t.Errorf("jacobi guard counter = %d", got)
	}
}

// Fault class 3: a NaN lands in an SpMV output mid-solve. Detection:
// nan-or-inf breakdown at the injected iteration. Recovery: warm restart
// from the last good iterate on the next rung.
func TestChaosNaNSpMVWarmRestart(t *testing.T) {
	in := faultinject.New(21).WithSpMVNaN(4)
	restore := faultinject.Activate(in)
	defer restore()

	a, x, b := testProblem()
	out, err := Solve(context.Background(), a, x, b, Options{Precond: PrecondFSAI})
	if err != nil {
		t.Fatalf("solve: %v (attempts %v)", err, solveStatuses(out.Log))
	}
	statuses := solveStatuses(out.Log)
	if len(statuses) < 2 || statuses[0] != "fsai:nan-or-inf" {
		t.Fatalf("first attempt should break with nan-or-inf: %v", statuses)
	}
	if out.Precond != PrecondJacobi {
		t.Fatalf("expected recovery on the jacobi rung, got %q", out.Precond)
	}
	if !out.Recovered || !out.Result.Converged {
		t.Fatalf("not recovered: %+v", out.Log)
	}
	// The restart is warm, not from scratch: total iterations continue past
	// the breakdown point (iteration 4).
	if out.Result.Iterations <= 3 {
		t.Fatalf("final iteration count %d does not continue the first attempt", out.Result.Iterations)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Site != faultinject.SiteSpMVOut || ev[0].Iter != 4 {
		t.Fatalf("fault not attributed: %v", ev)
	}
}

// Fault class 4: a computed factor loses a row (zeroed values → GᵀG
// singular). Detection: the stagnation guard. Recovery: fallback rung from
// the stagnated iterate.
func TestChaosDroppedFactorRowStagnation(t *testing.T) {
	in := faultinject.New(42)
	a, x, b := testProblem()
	corrupted := false
	out, err := Solve(context.Background(), a, x, b, Options{
		Precond: PrecondFSAI,
		OnPrecond: func(rung string, p *fsai.Preconditioner) {
			if !corrupted {
				corrupted = true
				in.DropGRow(p.G)
				p.GT = p.G.Transpose()
			}
		},
		Solve: krylov.Options{StagnationWindow: 30},
	})
	if err != nil {
		t.Fatalf("solve: %v (attempts %v)", err, solveStatuses(out.Log))
	}
	statuses := solveStatuses(out.Log)
	if statuses[0] != "fsai:stagnation" {
		t.Fatalf("dropped row not detected as stagnation: %v", statuses)
	}
	if !out.Result.Converged || !out.Recovered {
		t.Fatalf("not recovered: %v", statuses)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Site != faultinject.SiteDropGRow {
		t.Fatalf("fault not attributed: %v", ev)
	}
}

// Cancellation is not a fault: the chain stops immediately, hands back a
// resumable checkpoint, and a later resilient solve picks it up and reaches
// the same tolerance as an uninterrupted run.
func TestChaosCancellationAndResume(t *testing.T) {
	a, xr, b := testProblem()
	ref, err := Solve(context.Background(), a, xr, b, Options{})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	x := make([]float64, a.Rows)
	opt := Options{}
	opt.Solve.CancelCheckEvery = 1
	opt.Solve.Progress = func(iter int, _ float64) {
		if iter == ref.Result.Iterations/2 {
			cancel()
		}
	}
	out, err := Solve(ctx, a, x, b, opt)
	if err != context.Canceled {
		t.Fatalf("err=%v want context.Canceled", err)
	}
	if out.Result.Status != krylov.StatusCancelled || out.Result.Checkpoint == nil {
		t.Fatalf("cancellation did not leave a checkpoint: %+v", out.Result.Status)
	}

	opt2 := Options{}
	opt2.Solve.Resume = out.Result.Checkpoint
	out2, err := Solve(context.Background(), a, x, b, opt2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if out2.Result.Iterations != ref.Result.Iterations {
		t.Errorf("resumed total iterations %d, uninterrupted %d",
			out2.Result.Iterations, ref.Result.Iterations)
	}
	if out2.Result.RelResidual > ref.Result.RelResidual*1.0000001 {
		t.Errorf("resumed solve worse than uninterrupted: %g vs %g",
			out2.Result.RelResidual, ref.Result.RelResidual)
	}
}

func TestMaxIterStopsChain(t *testing.T) {
	a, x, b := testProblem()
	opt := Options{}
	opt.Solve.MaxIter = 3
	out, err := Solve(context.Background(), a, x, b, opt)
	if err != ErrNotConverged {
		t.Fatalf("err=%v want ErrNotConverged", err)
	}
	if out.Result.Status != krylov.StatusMaxIter {
		t.Fatalf("status %v", out.Result.Status)
	}
	// Budget exhaustion must not degrade the preconditioner: one setup, one
	// solve, no fallbacks.
	if out.Log.Fallbacks != 0 || len(out.Log.Attempts) != 2 {
		t.Fatalf("max-iter triggered fallbacks: %+v", out.Log)
	}
}
