// Package reorder implements symmetric matrix reorderings, primarily
// reverse Cuthill-McKee (RCM). Orderings matter doubly for the cache-aware
// FSAI extension: the fill-in adds entries at *index-adjacent* columns, so
// the more the ordering correlates index distance with graph distance, the
// more numerically useful the added entries are. The reordering ablation
// (cmd/fsaibench -ablation order) quantifies this.
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Permutation maps new indices to old: perm[new] = old.
type Permutation []int

// Inverse returns the inverse permutation (old -> new).
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for newIdx, oldIdx := range p {
		inv[oldIdx] = newIdx
	}
	return inv
}

// Validate checks that p is a permutation of 0..n-1.
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("reorder: index %d out of range", v)
		}
		if seen[v] {
			return fmt.Errorf("reorder: duplicate index %d", v)
		}
		seen[v] = true
	}
	return nil
}

// RCM computes the reverse Cuthill-McKee ordering of a structurally
// symmetric matrix: a breadth-first traversal from a low-degree peripheral
// vertex, visiting neighbours in increasing-degree order, then reversed.
// The result typically minimizes bandwidth, concentrating the pattern near
// the diagonal. Disconnected components are handled by restarting from the
// lowest-degree unvisited vertex.
func RCM(a *sparse.CSR) Permutation {
	n := a.Rows
	degree := make([]int, n)
	for i := 0; i < n; i++ {
		degree[i] = a.RowNNZ(i)
	}
	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	// Process components, seeding each from its minimum-degree vertex (a
	// cheap pseudo-peripheral heuristic).
	for len(order) < n {
		seed := -1
		for i := 0; i < n; i++ {
			if !visited[i] && (seed == -1 || degree[i] < degree[seed]) {
				seed = i
			}
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			cols, _ := a.Row(v)
			// Collect unvisited neighbours, sorted by degree.
			nbrs := make([]int, 0, len(cols))
			for _, j := range cols {
				if j != v && !visited[j] {
					visited[j] = true
					nbrs = append(nbrs, j)
				}
			}
			sort.Slice(nbrs, func(x, y int) bool {
				if degree[nbrs[x]] != degree[nbrs[y]] {
					return degree[nbrs[x]] < degree[nbrs[y]]
				}
				return nbrs[x] < nbrs[y]
			})
			queue = append(queue, nbrs...)
		}
	}
	// Reverse (the "R" of RCM).
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// ApplySym returns P A Pᵀ for the permutation p (perm[new] = old): entry
// (i,j) of the result is a(p[i], p[j]). The result is CSR with sorted rows.
func ApplySym(a *sparse.CSR, p Permutation) *sparse.CSR {
	if len(p) != a.Rows || a.Rows != a.Cols {
		panic("reorder: permutation/matrix size mismatch")
	}
	inv := p.Inverse()
	out := &sparse.CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	// Count then place: row newI gets the entries of old row p[newI].
	for newI := 0; newI < a.Rows; newI++ {
		out.RowPtr[newI+1] = out.RowPtr[newI] + a.RowNNZ(p[newI])
	}
	out.ColIdx = make([]int, out.RowPtr[a.Rows])
	out.Val = make([]float64, out.RowPtr[a.Rows])
	type cv struct {
		c int
		v float64
	}
	var buf []cv
	for newI := 0; newI < a.Rows; newI++ {
		cols, vals := a.Row(p[newI])
		buf = buf[:0]
		for k, j := range cols {
			buf = append(buf, cv{inv[j], vals[k]})
		}
		sort.Slice(buf, func(x, y int) bool { return buf[x].c < buf[y].c })
		lo := out.RowPtr[newI]
		for k, e := range buf {
			out.ColIdx[lo+k] = e.c
			out.Val[lo+k] = e.v
		}
	}
	return out
}

// PermuteVec returns the vector x reordered to the new indexing:
// out[new] = x[p[new]].
func PermuteVec(x []float64, p Permutation) []float64 {
	out := make([]float64, len(x))
	for newI, oldI := range p {
		out[newI] = x[oldI]
	}
	return out
}

// UnpermuteVec is the inverse of PermuteVec: out[p[new]] = x[new].
func UnpermuteVec(x []float64, p Permutation) []float64 {
	out := make([]float64, len(x))
	for newI, oldI := range p {
		out[oldI] = x[newI]
	}
	return out
}

// Bandwidth returns the maximum |i-j| over stored entries (0 for diagonal
// or empty matrices) — the quantity RCM minimizes.
func Bandwidth(a *sparse.CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, j := range cols {
			d := i - j
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// Profile returns the sum over rows of (i - min column index of row i),
// the skyline profile — a finer locality metric than bandwidth.
func Profile(a *sparse.CSR) int {
	prof := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		if len(cols) == 0 {
			continue
		}
		if cols[0] < i {
			prof += i - cols[0]
		}
	}
	return prof
}
