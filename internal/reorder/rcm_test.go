package reorder

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestPermutationInverse(t *testing.T) {
	p := Permutation{2, 0, 1}
	inv := p.Inverse()
	for newI, oldI := range p {
		if inv[oldI] != newI {
			t.Fatalf("inverse wrong at %d", newI)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Permutation{0, 0, 1}).Validate(); err == nil {
		t.Error("duplicate accepted")
	}
	if err := (Permutation{0, 3}).Validate(); err == nil {
		t.Error("out of range accepted")
	}
}

func TestRCMIsPermutation(t *testing.T) {
	for _, a := range []*sparse.CSR{
		matgen.Laplace2D(10, 10),
		matgen.GraphLaplacian(200, 5, 0.1, 1),
		matgen.Wathen(5, 5, 2),
		sparse.Identity(7), // fully disconnected
	} {
		p := RCM(a)
		if len(p) != a.Rows {
			t.Fatalf("length %d", len(p))
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A randomly permuted banded matrix: RCM must recover most of the
	// band structure.
	rng := rand.New(rand.NewSource(3))
	band := matgen.BandedSPD(300, 5, 1, 7)
	scramble := make(Permutation, 300)
	for i := range scramble {
		scramble[i] = i
	}
	rng.Shuffle(300, func(i, j int) { scramble[i], scramble[j] = scramble[j], scramble[i] })
	scrambled := ApplySym(band, scramble)
	if Bandwidth(scrambled) < 100 {
		t.Skip("scramble did not destroy the band") // vanishingly unlikely
	}
	restored := ApplySym(scrambled, RCM(scrambled))
	if bw := Bandwidth(restored); bw > 4*Bandwidth(band) {
		t.Errorf("RCM bandwidth %d vs original %d", bw, Bandwidth(band))
	}
	if Profile(restored) >= Profile(scrambled) {
		t.Errorf("RCM did not reduce profile: %d vs %d", Profile(restored), Profile(scrambled))
	}
}

func TestApplySymSpectrumPreserved(t *testing.T) {
	// P A Pᵀ preserves symmetric structure, diagonal multiset and
	// Frobenius norm.
	a := matgen.JumpCoefficient2D(8, 8, 4, 100, 2)
	p := RCM(a)
	b := ApplySym(a, p)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if !b.IsSymmetric(1e-12) {
		t.Error("reordered matrix lost symmetry")
	}
	if math.Abs(a.FrobNorm()-b.FrobNorm()) > 1e-9 {
		t.Error("Frobenius norm changed")
	}
	if b.NNZ() != a.NNZ() {
		t.Error("nnz changed")
	}
	// Element check: b[i][j] == a[p[i]][p[j]].
	for i := 0; i < b.Rows; i++ {
		cols, vals := b.Row(i)
		for k, j := range cols {
			if got := a.At(p[i], p[j]); got != vals[k] {
				t.Fatalf("b(%d,%d)=%g != a(%d,%d)=%g", i, j, vals[k], p[i], p[j], got)
			}
		}
	}
}

func TestPermuteVecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		p := make(Permutation, n)
		for i := range p {
			p[i] = i
		}
		rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := UnpermuteVec(PermuteVec(x, p), p)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPermutedSolveMatchesOriginal(t *testing.T) {
	// Solving the permuted system and mapping back equals solving the
	// original: (PAPᵀ)(Px) = Pb.
	a := matgen.Laplace2D(8, 8)
	n := a.Rows
	p := RCM(a)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	// Direct dense solve of both systems via normal CG-quality check:
	// verify A x = b residual for x obtained through the permuted path.
	ap := ApplySym(a, p)
	bp := PermuteVec(b, p)
	// Solve permuted with plain dense-ish iteration (CG from krylov would
	// be an import cycle risk in tests? no — fine to use CG here, but keep
	// package deps minimal: simple Jacobi iterations suffice? Too slow.)
	// Instead verify operator consistency: for random v,
	// P(A v) == (PAPᵀ)(P v).
	rng := rand.New(rand.NewSource(4))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	av := make([]float64, n)
	a.MulVec(av, v)
	lhs := PermuteVec(av, p)
	rhs := make([]float64, n)
	ap.MulVec(rhs, PermuteVec(v, p))
	for i := range lhs {
		if math.Abs(lhs[i]-rhs[i]) > 1e-12 {
			t.Fatalf("operator mismatch at %d: %g vs %g", i, lhs[i], rhs[i])
		}
	}
	_ = bp
}

func TestBandwidthAndProfile(t *testing.T) {
	a, _ := sparse.NewCSRFromTriplets(4, 4, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
		{Row: 3, Col: 3, Val: 1}, {Row: 3, Col: 0, Val: 1}, {Row: 0, Col: 3, Val: 1},
	})
	if Bandwidth(a) != 3 {
		t.Errorf("bandwidth %d", Bandwidth(a))
	}
	if Profile(a) != 3 {
		t.Errorf("profile %d", Profile(a))
	}
	if Bandwidth(sparse.Identity(5)) != 0 {
		t.Error("identity bandwidth")
	}
}
