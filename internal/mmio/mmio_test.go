package mmio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/matgen"
	"repro/internal/sparse"
)

func TestRoundTripGeneral(t *testing.T) {
	m, _ := sparse.NewCSRFromTriplets(3, 4, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1.5}, {Row: 0, Col: 3, Val: -2}, {Row: 1, Col: 1, Val: 3.25}, {Row: 2, Col: 0, Val: 1e-12},
	})
	var buf bytes.Buffer
	if err := Write(&buf, m, false); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != 3 || back.Cols != 4 || back.NNZ() != 4 {
		t.Fatalf("shape %dx%d nnz=%d", back.Rows, back.Cols, back.NNZ())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(back.At(i, j)-m.At(i, j)) > 1e-18 {
				t.Fatalf("(%d,%d): %g vs %g", i, j, back.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestRoundTripSymmetric(t *testing.T) {
	m := matgen.Laplace2D(6, 6)
	var buf bytes.Buffer
	if err := Write(&buf, m, true); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "symmetric") {
		t.Error("missing symmetric header")
	}
	back, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Fatalf("nnz %d vs %d", back.NNZ(), m.NNZ())
	}
	if !back.IsSymmetric(0) {
		t.Error("mirrored matrix not symmetric")
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if back.At(i, j) != vals[k] {
				t.Fatalf("(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestReadComments(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
% another

2 2 2
1 1 1.0
2 2 2.0
`
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 1) != 2 {
		t.Error("values wrong")
	}
}

func TestReadIntegerField(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
	m, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 7 {
		t.Error("integer value wrong")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
		"%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
		"not a header\n1 1 1\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n", // truncated
		"%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n", // bad index
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",     // short line
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n", // out of range
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	m := matgen.Wathen(3, 3, 1)
	if err := WriteFile(path, m, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != m.NNZ() {
		t.Errorf("nnz %d vs %d", back.NNZ(), m.NNZ())
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Error("missing file accepted")
	}
}
