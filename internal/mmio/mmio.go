// Package mmio reads and writes Matrix Market coordinate files, the
// exchange format of the SuiteSparse collection the paper draws its test
// set from. Supporting it lets users run the reproduction's solvers and
// preconditioners on the original matrices when they have them locally.
//
// Supported header: "matrix coordinate real|integer general|symmetric".
// Pattern and complex files are rejected with a descriptive error.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sparse"
)

// Read parses a Matrix Market coordinate stream into CSR. For symmetric
// files the missing triangle is mirrored.
func Read(r io.Reader) (*sparse.CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("mmio: empty input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("mmio: missing %%%%MatrixMarket header")
	}
	if header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("mmio: only coordinate matrices supported, got %q %q", header[1], header[2])
	}
	field, sym := header[3], header[4]
	if field != "real" && field != "integer" {
		return nil, fmt.Errorf("mmio: unsupported field %q", field)
	}
	if sym != "general" && sym != "symmetric" {
		return nil, fmt.Errorf("mmio: unsupported symmetry %q", sym)
	}

	// Skip comments, read size line.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("mmio: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("mmio: bad size line %q: %w", line, err)
		}
		break
	}
	const maxDim = 1 << 31
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim {
		return nil, fmt.Errorf("mmio: implausible size line %d %d %d", rows, cols, nnz)
	}
	if int64(nnz) > int64(rows)*int64(cols) {
		return nil, fmt.Errorf("mmio: nnz %d exceeds %dx%d", nnz, rows, cols)
	}
	// Cap the preallocation: a hostile header must not drive allocation
	// beyond what the entry lines can actually justify.
	capHint := 1 << 20
	if nnz < capHint/2 {
		capHint = 2 * nnz
	}
	ts := make([]sparse.Triplet, 0, capHint)
	read := 0
	for sc.Scan() && read < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("mmio: bad entry line %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad row index %q", f[0])
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("mmio: bad column index %q", f[1])
		}
		v, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return nil, fmt.Errorf("mmio: bad value %q", f[2])
		}
		ts = append(ts, sparse.Triplet{Row: i - 1, Col: j - 1, Val: v})
		if sym == "symmetric" && i != j {
			ts = append(ts, sparse.Triplet{Row: j - 1, Col: i - 1, Val: v})
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("mmio: got %d entries, header promised %d", read, nnz)
	}
	return sparse.NewCSRFromTriplets(rows, cols, ts)
}

// ReadFile reads a Matrix Market file from disk.
func ReadFile(path string) (*sparse.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits m in Matrix Market coordinate format. When symmetric is true
// only the lower triangle is written with a "symmetric" header (m must be
// numerically symmetric; this is not re-verified here).
func Write(w io.Writer, m *sparse.CSR, symmetric bool) error {
	bw := bufio.NewWriter(w)
	kind := "general"
	if symmetric {
		kind = "symmetric"
	}
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real %s\n", kind); err != nil {
		return err
	}
	nnz := 0
	for i := 0; i < m.Rows; i++ {
		cols, _ := m.Row(i)
		for _, j := range cols {
			if symmetric && j > i {
				continue
			}
			nnz++
		}
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.Rows, m.Cols, nnz); err != nil {
		return err
	}
	for i := 0; i < m.Rows; i++ {
		cols, vals := m.Row(i)
		for k, j := range cols {
			if symmetric && j > i {
				continue
			}
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes m to a Matrix Market file on disk.
func WriteFile(path string, m *sparse.CSR, symmetric bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, m, symmetric); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
