package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the Matrix Market reader with arbitrary input: it must
// never panic, and whatever it accepts must be a structurally valid CSR
// matrix that survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 2.0\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1.0\n3 1 -2.5\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real general\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("accepted invalid matrix: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, m, false); err != nil {
			t.Fatalf("write of accepted matrix failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted matrix failed: %v", err)
		}
		if back.NNZ() != m.NNZ() || back.Rows != m.Rows || back.Cols != m.Cols {
			t.Fatalf("round trip changed shape/nnz")
		}
	})
}
