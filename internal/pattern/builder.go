package pattern

// The builder methods below let callers construct a pattern row by row in
// ascending row order without intermediate allocations. The intended use is
//
//	p := New(r, c)
//	for i := 0; i < r; i++ {
//	        ... p.AppendCol(j) in ascending j ...
//	        p.CloseRow(i)
//	}
//
// AppendRowMerge is a specialized two-way sorted merge used by the
// cache-friendly fill-in.

// AppendCol appends column j to the row currently under construction.
// Callers must append strictly ascending indices within a row.
func (p *Pattern) AppendCol(j int) { p.Cols = append(p.Cols, j) }

// CloseRow finishes row i, recording its extent. Rows must be closed in
// order 0..Rows-1.
func (p *Pattern) CloseRow(i int) {
	p.RowPtr[i+1] = len(p.Cols)
	p.closedRows = i + 1
}

// AppendRowMerge appends the sorted-merge (with deduplication) of two sorted
// index slices as the next row and closes it. The row index is inferred
// from how many rows have been closed so far.
func (p *Pattern) AppendRowMerge(a, b []int) {
	ka, kb := 0, 0
	for ka < len(a) || kb < len(b) {
		switch {
		case kb == len(b) || (ka < len(a) && a[ka] < b[kb]):
			p.appendDedup(a[ka])
			ka++
		case ka == len(a) || b[kb] < a[ka]:
			p.appendDedup(b[kb])
			kb++
		default:
			p.appendDedup(a[ka])
			ka++
			kb++
		}
	}
	// Find the first unclosed row: rows are closed in order, so it is the
	// first index whose pointer is still behind len(Cols) from a previous
	// close. We track it via the last closed row extent.
	row := p.closedRows
	p.RowPtr[row+1] = len(p.Cols)
	p.closedRows++
}

// appendDedup appends j unless it equals the last appended index of the
// current row (duplicates can arise when both merge inputs contain j).
func (p *Pattern) appendDedup(j int) {
	start := p.RowPtr[p.closedRows]
	if n := len(p.Cols); n > start && p.Cols[n-1] == j {
		return
	}
	p.Cols = append(p.Cols, j)
}
