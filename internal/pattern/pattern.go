// Package pattern implements sparsity patterns — the index structure of a
// sparse matrix without its values — and the symbolic operations the FSAI
// setup needs: triangular clipping, transposition, union, and the pattern
// power Ã^N used to seed a-priori FSAI patterns (Chow's method).
package pattern

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Pattern is a sparsity pattern stored like CSR without values: row i owns
// the column indices Cols[RowPtr[i]:RowPtr[i+1]], sorted ascending, unique.
type Pattern struct {
	Rows, NCols int
	RowPtr      []int
	Cols        []int

	// closedRows tracks builder progress (see builder.go); fully
	// constructed patterns have closedRows == Rows or 0 when built by
	// direct field assembly.
	closedRows int
}

// New returns an empty pattern with r rows and c columns.
func New(r, c int) *Pattern {
	return &Pattern{Rows: r, NCols: c, RowPtr: make([]int, r+1)}
}

// FromCSR extracts the sparsity pattern of a CSR matrix.
func FromCSR(m *sparse.CSR) *Pattern {
	return &Pattern{
		Rows:   m.Rows,
		NCols:  m.Cols,
		RowPtr: append([]int(nil), m.RowPtr...),
		Cols:   append([]int(nil), m.ColIdx...),
	}
}

// FromRows builds a pattern from per-row index slices; rows are sorted and
// deduplicated. Indices out of [0,c) panic.
func FromRows(r, c int, rows [][]int) *Pattern {
	p := New(r, c)
	for i := 0; i < r; i++ {
		row := append([]int(nil), rows[i]...)
		sort.Ints(row)
		prev := -1
		for _, j := range row {
			if j < 0 || j >= c {
				panic(fmt.Sprintf("pattern: index %d out of range [0,%d)", j, c))
			}
			if j == prev {
				continue
			}
			p.Cols = append(p.Cols, j)
			prev = j
		}
		p.RowPtr[i+1] = len(p.Cols)
	}
	return p
}

// NNZ returns the number of stored positions.
func (p *Pattern) NNZ() int { return len(p.Cols) }

// Row returns the column indices of row i, aliasing internal storage.
func (p *Pattern) Row(i int) []int { return p.Cols[p.RowPtr[i]:p.RowPtr[i+1]] }

// Contains reports whether position (i,j) is in the pattern.
func (p *Pattern) Contains(i, j int) bool {
	row := p.Row(i)
	k := sort.SearchInts(row, j)
	return k < len(row) && row[k] == j
}

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	return &Pattern{
		Rows:   p.Rows,
		NCols:  p.NCols,
		RowPtr: append([]int(nil), p.RowPtr...),
		Cols:   append([]int(nil), p.Cols...),
	}
}

// Equal reports whether two patterns are identical.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.Rows != q.Rows || p.NCols != q.NCols || len(p.Cols) != len(q.Cols) {
		return false
	}
	for i := range p.RowPtr {
		if p.RowPtr[i] != q.RowPtr[i] {
			return false
		}
	}
	for k := range p.Cols {
		if p.Cols[k] != q.Cols[k] {
			return false
		}
	}
	return true
}

// String returns a short summary.
func (p *Pattern) String() string {
	return fmt.Sprintf("Pattern{%dx%d, nnz=%d}", p.Rows, p.NCols, p.NNZ())
}

// Validate checks structural invariants (sorted unique in-range rows).
func (p *Pattern) Validate() error {
	if len(p.RowPtr) != p.Rows+1 || p.RowPtr[0] != 0 || p.RowPtr[p.Rows] != len(p.Cols) {
		return fmt.Errorf("pattern: inconsistent row pointers")
	}
	for i := 0; i < p.Rows; i++ {
		prev := -1
		for _, j := range p.Row(i) {
			if j < 0 || j >= p.NCols {
				return fmt.Errorf("pattern: row %d index %d out of range", i, j)
			}
			if j <= prev {
				return fmt.Errorf("pattern: row %d not strictly ascending at %d", i, j)
			}
			prev = j
		}
	}
	return nil
}

// Lower returns the lower-triangular clip of p (entries with j <= i).
func (p *Pattern) Lower() *Pattern {
	out := New(p.Rows, p.NCols)
	for i := 0; i < p.Rows; i++ {
		for _, j := range p.Row(i) {
			if j <= i {
				out.Cols = append(out.Cols, j)
			}
		}
		out.RowPtr[i+1] = len(out.Cols)
	}
	return out
}

// Transpose returns the transposed pattern.
func (p *Pattern) Transpose() *Pattern {
	t := New(p.NCols, p.Rows)
	t.Cols = make([]int, len(p.Cols))
	counts := make([]int, p.NCols+1)
	for _, j := range p.Cols {
		counts[j+1]++
	}
	for j := 0; j < p.NCols; j++ {
		counts[j+1] += counts[j]
	}
	copy(t.RowPtr, counts)
	next := append([]int(nil), counts...)
	for i := 0; i < p.Rows; i++ {
		for _, j := range p.Row(i) {
			t.Cols[next[j]] = i
			next[j]++
		}
	}
	return t
}

// Union returns the positionwise union of p and q (same shape required).
func (p *Pattern) Union(q *Pattern) *Pattern {
	if p.Rows != q.Rows || p.NCols != q.NCols {
		panic("pattern: Union shape mismatch")
	}
	out := New(p.Rows, p.NCols)
	for i := 0; i < p.Rows; i++ {
		a, b := p.Row(i), q.Row(i)
		ka, kb := 0, 0
		for ka < len(a) || kb < len(b) {
			switch {
			case kb == len(b) || (ka < len(a) && a[ka] < b[kb]):
				out.Cols = append(out.Cols, a[ka])
				ka++
			case ka == len(a) || b[kb] < a[ka]:
				out.Cols = append(out.Cols, b[kb])
				kb++
			default:
				out.Cols = append(out.Cols, a[ka])
				ka++
				kb++
			}
		}
		out.RowPtr[i+1] = len(out.Cols)
	}
	return out
}

// Minus returns the positions of p not present in q (same shape required) —
// e.g. the fill-in-only pattern of an extended factor, final minus base.
func (p *Pattern) Minus(q *Pattern) *Pattern {
	if p.Rows != q.Rows || p.NCols != q.NCols {
		panic("pattern: Minus shape mismatch")
	}
	out := New(p.Rows, p.NCols)
	for i := 0; i < p.Rows; i++ {
		b := q.Row(i)
		kb := 0
		for _, j := range p.Row(i) {
			for kb < len(b) && b[kb] < j {
				kb++
			}
			if kb < len(b) && b[kb] == j {
				continue
			}
			out.Cols = append(out.Cols, j)
		}
		out.RowPtr[i+1] = len(out.Cols)
	}
	return out
}

// WithDiagonal returns p with all diagonal positions (i,i) present (for
// square patterns). FSAI requires the diagonal in every row pattern.
func (p *Pattern) WithDiagonal() *Pattern {
	out := New(p.Rows, p.NCols)
	for i := 0; i < p.Rows; i++ {
		placed := false
		for _, j := range p.Row(i) {
			if !placed && j > i && i < p.NCols {
				out.Cols = append(out.Cols, i)
				placed = true
			}
			if j == i {
				placed = true
			}
			out.Cols = append(out.Cols, j)
		}
		if !placed && i < p.NCols {
			out.Cols = append(out.Cols, i)
		}
		out.RowPtr[i+1] = len(out.Cols)
	}
	return out
}

// Power returns the pattern of p^n for a square pattern p and n >= 1, the
// symbolic analogue of matrix powering used to build a-priori FSAI patterns
// (pattern of Ã^N). n == 1 returns a clone.
func (p *Pattern) Power(n int) *Pattern {
	if p.Rows != p.NCols {
		panic("pattern: Power of non-square pattern")
	}
	if n < 1 {
		panic("pattern: Power exponent must be >= 1")
	}
	out := p.Clone()
	for k := 1; k < n; k++ {
		out = out.MulPattern(p)
	}
	return out
}

// MulPattern returns the symbolic product pattern of p*q: position (i,j) is
// present iff some k has (i,k) in p and (k,j) in q.
func (p *Pattern) MulPattern(q *Pattern) *Pattern {
	if p.NCols != q.Rows {
		panic("pattern: MulPattern inner dimension mismatch")
	}
	out := New(p.Rows, q.NCols)
	marker := make([]int, q.NCols)
	for i := range marker {
		marker[i] = -1
	}
	var rowBuf []int
	for i := 0; i < p.Rows; i++ {
		rowBuf = rowBuf[:0]
		for _, k := range p.Row(i) {
			for _, j := range q.Row(k) {
				if marker[j] != i {
					marker[j] = i
					rowBuf = append(rowBuf, j)
				}
			}
		}
		sort.Ints(rowBuf)
		out.Cols = append(out.Cols, rowBuf...)
		out.RowPtr[i+1] = len(out.Cols)
	}
	return out
}

// SubsetOf reports whether every position of p is also in q.
func (p *Pattern) SubsetOf(q *Pattern) bool {
	if p.Rows != q.Rows || p.NCols != q.NCols {
		return false
	}
	for i := 0; i < p.Rows; i++ {
		a, b := p.Row(i), q.Row(i)
		kb := 0
		for _, j := range a {
			for kb < len(b) && b[kb] < j {
				kb++
			}
			if kb == len(b) || b[kb] != j {
				return false
			}
		}
	}
	return true
}

// ToCSR materializes the pattern as a CSR matrix with all stored values set
// to v (useful for visualization and for symbolic checks against sparse ops).
func (p *Pattern) ToCSR(v float64) *sparse.CSR {
	m := &sparse.CSR{
		Rows:   p.Rows,
		Cols:   p.NCols,
		RowPtr: append([]int(nil), p.RowPtr...),
		ColIdx: append([]int(nil), p.Cols...),
		Val:    make([]float64, len(p.Cols)),
	}
	for k := range m.Val {
		m.Val[k] = v
	}
	return m
}
