package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func randomPattern(rng *rand.Rand, r, c int, density float64) *Pattern {
	rows := make([][]int, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				rows[i] = append(rows[i], j)
			}
		}
	}
	return FromRows(r, c, rows)
}

func TestFromRowsSortsAndDedups(t *testing.T) {
	p := FromRows(2, 5, [][]int{{3, 1, 3, 0}, {4}})
	if got := p.Row(0); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("row 0 = %v", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCSRRoundTrip(t *testing.T) {
	m, _ := sparse.NewCSRFromTriplets(3, 3, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 2}, {Row: 1, Col: 1, Val: 3}, {Row: 2, Col: 2, Val: 4},
	})
	p := FromCSR(m)
	if p.NNZ() != 4 || !p.Contains(1, 0) || p.Contains(0, 1) {
		t.Fatalf("FromCSR wrong: %v", p)
	}
	back := p.ToCSR(1)
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 4 || back.At(1, 0) != 1 {
		t.Error("ToCSR wrong")
	}
}

func TestContains(t *testing.T) {
	p := FromRows(2, 4, [][]int{{0, 2}, {}})
	if !p.Contains(0, 2) || p.Contains(0, 1) || p.Contains(1, 0) {
		t.Error("Contains wrong")
	}
}

func TestLower(t *testing.T) {
	p := FromRows(3, 3, [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}})
	lo := p.Lower()
	if lo.NNZ() != 6 {
		t.Fatalf("lower nnz=%d", lo.NNZ())
	}
	if lo.Contains(0, 1) || !lo.Contains(1, 1) || !lo.Contains(2, 0) {
		t.Error("Lower clip wrong")
	}
}

func TestTransposeKnown(t *testing.T) {
	p := FromRows(2, 3, [][]int{{1, 2}, {0}})
	q := p.Transpose()
	if q.Rows != 3 || q.NCols != 2 {
		t.Fatalf("shape %dx%d", q.Rows, q.NCols)
	}
	if !q.Contains(1, 0) || !q.Contains(2, 0) || !q.Contains(0, 1) {
		t.Error("transpose positions wrong")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	a := FromRows(2, 4, [][]int{{0, 2}, {1}})
	b := FromRows(2, 4, [][]int{{1, 2}, {1, 3}})
	u := a.Union(b)
	if got := u.Row(0); len(got) != 3 {
		t.Fatalf("union row 0 = %v", got)
	}
	if got := u.Row(1); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("union row 1 = %v", got)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithDiagonal(t *testing.T) {
	p := FromRows(3, 3, [][]int{{1}, {0, 1}, {}})
	d := p.WithDiagonal()
	for i := 0; i < 3; i++ {
		if !d.Contains(i, i) {
			t.Errorf("diagonal (%d,%d) missing", i, i)
		}
	}
	if !d.Contains(0, 1) || !d.Contains(1, 0) {
		t.Error("original entries lost")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if !d.WithDiagonal().Equal(d) {
		t.Error("WithDiagonal not idempotent")
	}
}

func TestPowerTridiagonal(t *testing.T) {
	// Tridiagonal pattern: power 2 is pentadiagonal.
	n := 6
	rows := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i - 1; j <= i+1; j++ {
			if j >= 0 && j < n {
				rows[i] = append(rows[i], j)
			}
		}
	}
	p := FromRows(n, n, rows)
	p2 := p.Power(2)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := abs(i-j) <= 2
			if p2.Contains(i, j) != want {
				t.Fatalf("p2(%d,%d)=%v want %v", i, j, p2.Contains(i, j), want)
			}
		}
	}
	if !p.Power(1).Equal(p) {
		t.Error("Power(1) must clone")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMulPatternMatchesDenseBoolProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := randomPattern(rng, 8, 10, 0.3)
		b := randomPattern(rng, 10, 7, 0.3)
		c := a.MulPattern(b)
		for i := 0; i < 8; i++ {
			for j := 0; j < 7; j++ {
				want := false
				for k := 0; k < 10; k++ {
					if a.Contains(i, k) && b.Contains(k, j) {
						want = true
						break
					}
				}
				if c.Contains(i, j) != want {
					t.Fatalf("trial %d: c(%d,%d)=%v want %v", trial, i, j, c.Contains(i, j), want)
				}
			}
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromRows(2, 3, [][]int{{0}, {1}})
	b := FromRows(2, 3, [][]int{{0, 2}, {1}})
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Error("subset not reflexive")
	}
}

func TestBuilder(t *testing.T) {
	p := New(3, 5)
	p.AppendCol(1)
	p.AppendCol(3)
	p.CloseRow(0)
	p.CloseRow(1) // empty row
	p.AppendRowMerge([]int{0, 2}, []int{2, 4})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Row(2); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("merged row = %v", got)
	}
	if len(p.Row(1)) != 0 {
		t.Error("row 1 should be empty")
	}
}

func TestQuickTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomPattern(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.4)
		return p.Transpose().Transpose().Equal(p)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomPattern(rng, r, c, 0.3)
		b := randomPattern(rng, r, c, 0.3)
		u := a.Union(b)
		// Commutative, contains both operands, idempotent.
		return u.Equal(b.Union(a)) && a.SubsetOf(u) && b.SubsetOf(u) && u.Union(u).Equal(u)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickPowerMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		p := randomPattern(rng, n, n, 0.3).WithDiagonal()
		// With a full diagonal, pattern powers are monotone increasing.
		p2 := p.Power(2)
		p3 := p.Power(3)
		return p.SubsetOf(p2) && p2.SubsetOf(p3)
	}
	if err := quick.Check(f, &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMinus(t *testing.T) {
	p := FromRows(3, 4, [][]int{{0, 1, 2}, {1, 3}, {2}})
	q := FromRows(3, 4, [][]int{{1}, {1, 3}, {}})
	d := p.Minus(q)
	if got := d.Row(0); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("minus row 0 = %v", got)
	}
	if got := d.Row(1); len(got) != 0 {
		t.Fatalf("minus row 1 = %v", got)
	}
	if got := d.Row(2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("minus row 2 = %v", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Union of the difference and the intersection base reconstructs p when
	// q ⊆ p positions are removed: p = (p − q) ∪ (p ∩ q); with q ⊆ p this is
	// (p − q) ∪ q.
	if sub := FromRows(3, 4, [][]int{{1}, {1, 3}, {}}); !d.Union(sub).Equal(p) {
		t.Error("(p − q) ∪ q != p for q ⊆ p")
	}
	// Shape mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("Minus shape mismatch did not panic")
		}
	}()
	p.Minus(FromRows(2, 4, [][]int{{0}, {1}}))
}
