package faultinject

// HTTP and filesystem fault arms. These extend the seeded injector to the
// service's failure domains: delayed responses (slow network / GC pause),
// dropped responses (connection severed after the server did the work —
// the case idempotency keys exist for), short writes and bit flips on
// store entry files (torn writes, silent media corruption).
//
// The HTTP faults are applied by the HTTPFaults middleware; the filesystem
// faults by the store's write path through the MutateFileWrite hook, gated
// on Enabled() exactly like the solver-loop sites.

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Additional injection sites.
const (
	SiteHTTPDelay  = "http-delay"
	SiteHTTPDrop   = "http-drop"
	SiteShortWrite = "short-write"
	SiteBitFlip    = "bit-flip"
)

// WithHTTPDelay arms a sleep of d before handling each of the next count
// HTTP requests (count < 0: every request).
func (in *Injector) WithHTTPDelay(d time.Duration, count int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.httpDelay = d
	in.httpDelayN = count
	return in
}

// WithHTTPDrop arms dropping the response of the next count HTTP requests:
// the handler runs to completion server-side, then the connection is
// severed without writing a response. The client sees a transport error for
// work that actually happened — the exact race an idempotent retry must
// resolve to the original result.
func (in *Injector) WithHTTPDrop(count int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.httpDropN = count
	return in
}

// WithShortWrite arms truncating the next count store entry writes to frac
// of their length (a torn write at crash). frac is clamped to [0,1).
func (in *Injector) WithShortWrite(frac float64, count int) *Injector {
	if frac < 0 {
		frac = 0
	}
	if frac >= 1 {
		frac = 0.99
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.shortFrac = frac
	in.shortN = count
	return in
}

// WithBitFlip arms flipping one seeded bit in each of the next count store
// entry writes (silent corruption the checksum must catch).
func (in *Injector) WithBitFlip(count int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.bitFlipN = count
	return in
}

// HTTPFaults wraps an HTTP handler with the armed HTTP faults. With no
// injector active it forwards with zero added cost beyond one atomic load.
func HTTPFaults(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !Enabled() {
			next.ServeHTTP(w, r)
			return
		}
		mu.Lock()
		in := active
		mu.Unlock()
		if in == nil {
			next.ServeHTTP(w, r)
			return
		}
		if d := in.takeHTTPDelay(r); d > 0 {
			time.Sleep(d)
		}
		if in.takeHTTPDrop(r) {
			// Serve first so the server-side effect (job ran, result cached,
			// idempotency key completed) is real, THEN sever the connection so
			// the client never learns it.
			rec := &discardResponse{header: http.Header{}}
			next.ServeHTTP(rec, r)
			hj, ok := w.(http.Hijacker)
			if !ok {
				// Cannot sever (e.g. HTTP/2 test server); degrade to serving
				// the response normally rather than hanging the request.
				for k, vs := range rec.header {
					for _, v := range vs {
						w.Header().Add(k, v)
					}
				}
				w.WriteHeader(rec.status())
				_, _ = w.Write(rec.body)
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				if tc, ok := conn.(*net.TCPConn); ok {
					// RST instead of FIN so the client reliably sees an error
					// rather than a clean EOF it might interpret as a response.
					_ = tc.SetLinger(0)
				}
				_ = conn.Close()
			}
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (in *Injector) takeHTTPDelay(r *http.Request) time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.httpDelay <= 0 || in.httpDelayN == 0 {
		return 0
	}
	if in.httpDelayN > 0 {
		in.httpDelayN--
	}
	in.record(Event{Site: SiteHTTPDelay, Detail: fmt.Sprintf("%s %s delayed %v", r.Method, r.URL.Path, in.httpDelay)})
	return in.httpDelay
}

func (in *Injector) takeHTTPDrop(r *http.Request) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.httpDropN == 0 {
		return false
	}
	if in.httpDropN > 0 {
		in.httpDropN--
	}
	in.record(Event{Site: SiteHTTPDrop, Detail: fmt.Sprintf("%s %s response dropped", r.Method, r.URL.Path)})
	return true
}

// MutateFileWrite is the store's write-path hook: it returns the bytes that
// actually reach disk for the entry at rel. With short-write armed the data
// is truncated; with bit-flip armed one seeded bit is inverted. Only called
// when Enabled() is true; with nothing armed it returns data unchanged.
func MutateFileWrite(rel string, data []byte) []byte {
	mu.Lock()
	in := active
	mu.Unlock()
	if in == nil {
		return data
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.shortN != 0 && in.shortFrac < 1 && len(data) > 0 {
		if in.shortN > 0 {
			in.shortN--
		}
		n := int(float64(len(data)) * in.shortFrac)
		in.record(Event{Site: SiteShortWrite, Index: n, Detail: fmt.Sprintf("%s truncated %d -> %d bytes", rel, len(data), n)})
		return append([]byte(nil), data[:n]...)
	}
	if in.bitFlipN != 0 && len(data) > 0 {
		if in.bitFlipN > 0 {
			in.bitFlipN--
		}
		out := append([]byte(nil), data...)
		pos := in.rng.Intn(len(out))
		bit := uint(in.rng.Intn(8))
		out[pos] ^= 1 << bit
		in.record(Event{Site: SiteBitFlip, Index: pos, Detail: fmt.Sprintf("%s bit %d of byte %d flipped", rel, bit, pos)})
		return out
	}
	return data
}

// discardResponse captures a response that will never reach the client.
type discardResponse struct {
	header     http.Header
	statusCode int
	body       []byte
}

func (d *discardResponse) Header() http.Header { return d.header }

func (d *discardResponse) WriteHeader(code int) {
	if d.statusCode == 0 {
		d.statusCode = code
	}
}

func (d *discardResponse) Write(p []byte) (int, error) {
	if d.statusCode == 0 {
		d.statusCode = http.StatusOK
	}
	d.body = append(d.body, p...)
	return len(p), nil
}

func (d *discardResponse) status() int {
	if d.statusCode == 0 {
		return http.StatusOK
	}
	return d.statusCode
}
