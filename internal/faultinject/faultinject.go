// Package faultinject provides deterministic, seeded fault injection for the
// solver pipeline's chaos tests. It models the failure classes a production
// FSAI/PCG deployment meets in the wild — NaNs appearing in an SpMV output,
// corrupted matrix diagonals handed to the preconditioner setup, a dropped
// factor row, a stalled worker — and makes each reproducible from a seed so a
// failing chaos run can be replayed bit-for-bit.
//
// Injection sites are threaded through the library behind build-tag-free
// hooks: the hot paths (the krylov loop, the parallel pool) pay one atomic
// load when no injector is active. Matrix- and factor-level corruptions are
// applied directly by the test harness via the Injector methods, since they
// happen outside any hot loop.
//
// Every fired injection is recorded as an Event, so tests can assert not
// only that a fault was detected but that the detection is attributed to the
// fault actually injected.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
	"repro/internal/sparse"
)

// enabled is the global fast-path gate: hooks are no-ops unless an injector
// is active. A single atomic load keeps the disabled cost negligible.
var enabled atomic.Bool

var (
	mu     sync.Mutex
	active *Injector
)

// Enabled reports whether an injector is currently active. Library hooks
// check it before calling into the slow path.
func Enabled() bool { return enabled.Load() }

// Activate installs inj as the process-wide injector and returns a restore
// function that deactivates it (and uninstalls the worker-delay hook).
// Activations do not nest: the restore function of the most recent Activate
// must run before the next one.
func Activate(inj *Injector) func() {
	mu.Lock()
	active = inj
	mu.Unlock()
	parallel.SetWorkerHook(func(worker int) { WorkerStart(worker) })
	enabled.Store(true)
	return func() {
		enabled.Store(false)
		parallel.SetWorkerHook(nil)
		mu.Lock()
		active = nil
		mu.Unlock()
	}
}

// Site names of the injection points, as recorded in Events.
const (
	SiteSpMVOut     = "spmv-out"
	SiteDiagonal    = "diagonal"
	SiteDropGRow    = "drop-g-row"
	SiteWorkerDelay = "worker-delay"
)

// Event records one fired injection.
type Event struct {
	// Site is the injection point (Site* constants).
	Site string
	// Iter is the 1-based solver iteration for solver-loop sites, 0 otherwise.
	Iter int
	// Index is the affected vector index, matrix row or worker id.
	Index int
	// Detail describes the concrete corruption.
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%s@iter=%d idx=%d: %s", e.Site, e.Iter, e.Index, e.Detail)
}

// Injector is a seeded set of armed faults. Arm faults with the With*
// methods (chainable), then install with Activate for the hook-based sites.
// All randomness (which index to poison, which row to corrupt) derives from
// the seed, so two injectors with equal seed and arming produce identical
// corruption and identical Events.
type Injector struct {
	seed int64

	mu      sync.Mutex
	rng     *rand.Rand
	spmvNaN map[int]bool // 1-based iterations whose SpMV output gets a NaN
	delay   time.Duration
	delayN  int // remaining worker starts to delay (-1: every start)
	events  []Event

	// HTTP/filesystem arms (http.go).
	httpDelay  time.Duration
	httpDelayN int     // remaining requests to delay (-1: every request)
	httpDropN  int     // remaining responses to drop (-1: every response)
	shortFrac  float64 // short-write fraction of bytes kept
	shortN     int     // remaining entry writes to truncate (-1: every write)
	bitFlipN   int     // remaining entry writes to bit-flip (-1: every write)
}

// New returns an injector with the given seed and nothing armed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, rng: rand.New(rand.NewSource(seed)), spmvNaN: map[int]bool{}}
}

// Seed returns the injector's seed (for replay logs).
func (in *Injector) Seed() int64 { return in.seed }

// WithSpMVNaN arms a NaN write into the A·p SpMV output at each given
// 1-based solver iteration. The poisoned index is drawn from the seed.
func (in *Injector) WithSpMVNaN(iters ...int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, it := range iters {
		in.spmvNaN[it] = true
	}
	return in
}

// WithWorkerDelay arms a sleep of d at the start of the next count parallel
// worker bodies (count < 0: every worker start). This models a straggling
// core; it must never deadlock the pool, only slow it.
func (in *Injector) WithWorkerDelay(d time.Duration, count int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.delay = d
	in.delayN = count
	return in
}

// Events returns a copy of the fired-injection log.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

func (in *Injector) record(e Event) { in.events = append(in.events, e) }

// SpMVOut is the krylov-loop hook: called with the 1-based iteration and the
// freshly computed A·p product. Only reached when Enabled() is true.
func SpMVOut(iter int, y []float64) {
	mu.Lock()
	in := active
	mu.Unlock()
	if in == nil || len(y) == 0 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.spmvNaN[iter] {
		return
	}
	delete(in.spmvNaN, iter) // fire once per armed iteration
	idx := in.rng.Intn(len(y))
	y[idx] = math.NaN()
	in.record(Event{Site: SiteSpMVOut, Iter: iter, Index: idx, Detail: "NaN into SpMV output"})
}

// WorkerStart is the parallel-pool hook: called with the worker index at the
// start of each worker body while an injector is active.
func WorkerStart(worker int) {
	mu.Lock()
	in := active
	mu.Unlock()
	if in == nil {
		return
	}
	in.mu.Lock()
	if in.delay <= 0 || in.delayN == 0 {
		in.mu.Unlock()
		return
	}
	if in.delayN > 0 {
		in.delayN--
	}
	d := in.delay
	in.record(Event{Site: SiteWorkerDelay, Index: worker, Detail: fmt.Sprintf("delayed %v", d)})
	in.mu.Unlock()
	time.Sleep(d)
}

// PerturbDiagonal returns a copy of a with one seeded diagonal entry changed
// by delta (a negative delta of sufficient magnitude makes the local systems
// indefinite), along with the corrupted row. The input is not modified —
// the corruption models a bad matrix handed to the preconditioner *setup*,
// while the solve keeps the true operator.
func (in *Injector) PerturbDiagonal(a *sparse.CSR, delta float64) (*sparse.CSR, int) {
	in.mu.Lock()
	row := in.rng.Intn(a.Rows)
	in.record(Event{Site: SiteDiagonal, Index: row, Detail: fmt.Sprintf("a[%d,%d] += %g", row, row, delta)})
	in.mu.Unlock()
	out := a.Clone()
	setDiag(out, row, out.At(row, row)+delta)
	return out, row
}

// ZeroDiagonal returns a copy of a with one seeded diagonal entry set to
// zero, along with the corrupted row.
func (in *Injector) ZeroDiagonal(a *sparse.CSR) (*sparse.CSR, int) {
	in.mu.Lock()
	row := in.rng.Intn(a.Rows)
	in.record(Event{Site: SiteDiagonal, Index: row, Detail: fmt.Sprintf("a[%d,%d] = 0", row, row)})
	in.mu.Unlock()
	out := a.Clone()
	setDiag(out, row, 0)
	return out, row
}

// DropGRow zeroes every stored value of one seeded row of the factor g in
// place (the pattern stays, the values vanish), returning the row. This
// models a lost or corrupted block of the computed preconditioner: GᵀG
// becomes singular and PCG stagnates on the lost component.
func (in *Injector) DropGRow(g *sparse.CSR) int {
	in.mu.Lock()
	row := in.rng.Intn(g.Rows)
	in.record(Event{Site: SiteDropGRow, Index: row, Detail: "zeroed factor row"})
	in.mu.Unlock()
	for k := g.RowPtr[row]; k < g.RowPtr[row+1]; k++ {
		g.Val[k] = 0
	}
	return row
}

// setDiag overwrites the stored diagonal entry of row i (which must exist
// structurally, as it does for every SPD matrix in the suite).
func setDiag(m *sparse.CSR, i int, v float64) {
	for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
		if m.ColIdx[k] == i {
			m.Val[k] = v
			return
		}
	}
	panic(fmt.Sprintf("faultinject: row %d has no stored diagonal", i))
}
