package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestHTTPDelayFiresAndDecrements(t *testing.T) {
	in := New(1).WithHTTPDelay(30*time.Millisecond, 1)
	restore := Activate(in)
	defer restore()

	var served atomic.Int64
	h := HTTPFaults(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("first request not delayed (%v)", d)
	}
	// Arm is spent: second request is fast.
	start = time.Now()
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("second request still delayed (%v)", d)
	}
	if served.Load() != 2 {
		t.Fatalf("served %d requests, want 2", served.Load())
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Site != SiteHTTPDelay {
		t.Fatalf("events = %v", ev)
	}
}

func TestHTTPDropServesThenSevers(t *testing.T) {
	in := New(1).WithHTTPDrop(1)
	restore := Activate(in)
	defer restore()

	var served atomic.Int64
	h := HTTPFaults(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"ok":true}`)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	// The dropped request must still run the handler (the server-side work
	// happens; only the response is lost) and surface as a transport error.
	resp, err := http.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("dropped response reached the client")
	}
	if served.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1 (drop must serve before severing)", served.Load())
	}
	// Next request goes through normally.
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ev := in.Events()
	if len(ev) != 1 || ev[0].Site != SiteHTTPDrop {
		t.Fatalf("events = %v", ev)
	}
}

func TestHTTPFaultsNoInjectorPassthrough(t *testing.T) {
	h := HTTPFaults(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status = %d, want passthrough 418", resp.StatusCode)
	}
}

func TestMutateFileWriteUnarmedIsIdentity(t *testing.T) {
	in := New(1)
	restore := Activate(in)
	defer restore()
	data := []byte("hello world")
	out := MutateFileWrite("x.bin", data)
	if string(out) != string(data) {
		t.Fatal("unarmed MutateFileWrite changed the data")
	}
}
